package ninf_test

// Version negotiation and session-routing behavior of the multiplexed
// client, in both directions: a mux-capable client against a legacy
// (lockstep-only) server must degrade transparently, and a client
// pinned to lockstep must interoperate with a mux-capable server.

import (
	"sync"
	"testing"

	"ninf"
	"ninf/internal/server"
)

// callOnce runs one verified dmmul call.
func callOnce(t *testing.T, c *ninf.Client) {
	t.Helper()
	const n = 4
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	got := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i + 1)
		b[i] = float64((i % 5) + 1)
	}
	want := make([]float64, n*n)
	mmul(n, a, b, want)
	if _, err := c.Call("dmmul", n, a, b, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dmmul result differs at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestMuxNegotiationUpgrades: against a mux-capable server the first
// session verb negotiates protocol version 2 and later calls ride the
// multiplexed session.
func TestMuxNegotiationUpgrades(t *testing.T) {
	_, dial := startServer(t, server.Config{Hostname: "muxsrv"})
	c := newClient(t, dial)

	if c.Multiplexed() {
		t.Fatal("client claims a session before any verb ran")
	}
	callOnce(t, c)
	if !c.Multiplexed() {
		t.Fatal("call against a mux-capable server did not establish a session")
	}

	// Concurrent calls demultiplex correctly over the one session.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			callOnce(t, c)
		}()
	}
	wg.Wait()
}

// TestMuxClientAgainstLegacyServer: a lockstep-only server refuses the
// Hello like a pre-mux peer; the client pins itself to the lockstep
// paths and every verb keeps working.
func TestMuxClientAgainstLegacyServer(t *testing.T) {
	_, dial := startServer(t, server.Config{Hostname: "legacy", DisableMux: true})
	c := newClient(t, dial)

	callOnce(t, c)
	if c.Multiplexed() {
		t.Fatal("client claims a mux session against a DisableMux server")
	}
	// The refusal is sticky: no re-probe, still correct.
	callOnce(t, c)
	if c.Multiplexed() {
		t.Fatal("legacy pin did not stick")
	}

	// Two-phase transfer over the fallback path.
	n := 3
	in := []float64{1, 2, 3}
	out := make([]float64, n)
	job, err := c.Submit("echo", n, in, out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Fetch(true); err != nil {
		t.Fatal(err)
	}
	if out[2] != 3 {
		t.Fatalf("echo via legacy fallback = %v", out)
	}
}

// TestLockstepClientAgainstMuxServer: SetMultiplexing(false) pins the
// client to version-1 exchanges; a mux-capable server serves it like
// any legacy client.
func TestLockstepClientAgainstMuxServer(t *testing.T) {
	_, dial := startServer(t, server.Config{Hostname: "muxsrv"})
	c := newClient(t, dial)
	c.SetMultiplexing(false)

	callOnce(t, c)
	if c.Multiplexed() {
		t.Fatal("SetMultiplexing(false) client negotiated a session anyway")
	}

	// Re-enabling probes again and upgrades.
	c.SetMultiplexing(true)
	callOnce(t, c)
	if !c.Multiplexed() {
		t.Fatal("SetMultiplexing(true) did not re-probe the server")
	}

	// Turning it off tears the live session down mid-flight of nothing;
	// subsequent calls are lockstep again.
	c.SetMultiplexing(false)
	callOnce(t, c)
	if c.Multiplexed() {
		t.Fatal("SetMultiplexing(false) left a live session behind")
	}
}

// TestCallbacksPinLockstep: registering a client callback closes any
// live session and routes later calls over lockstep — the §2.3
// callback facility needs a quiet parked connection, which a stream
// of interleaved sequenced frames is not.
func TestCallbacksPinLockstep(t *testing.T) {
	_, dial := startServer(t, server.Config{Hostname: "muxsrv"})
	c := newClient(t, dial)

	callOnce(t, c)
	if !c.Multiplexed() {
		t.Fatal("no session before registering the callback")
	}
	c.RegisterCallback("progress", func(data []byte) ([]byte, error) { return nil, nil })
	if c.Multiplexed() {
		t.Fatal("registering a callback left the mux session live")
	}
	callOnce(t, c)
	if c.Multiplexed() {
		t.Fatal("a callback-holding client re-established a session")
	}
}
