package ninf_test

// BenchmarkMuxVsLockstep: the paper's §4 multi-client question asked
// of our own data plane. The sweep drives 1/4/16/64 concurrent callers
// with 8B/64KiB/8MiB argument vectors over loopback TCP against one
// server, once with the multiplexed session and once pinned to the
// lockstep pooled path, and reports calls/s per cell. The
// multiclient-mux experiment (cmd/ninfbench) runs the same sweep
// outside the testing harness and records BENCH_multiclient.json.

import (
	"sync"
	"testing"

	"ninf/internal/server"
)

var muxSweep = struct {
	callers []int
	sizes   []struct {
		name  string
		elems int
	}
}{
	callers: []int{1, 4, 16, 64},
	sizes: []struct {
		name  string
		elems int
	}{
		{"8B", 1},
		{"64KiB", 8 << 10},
		{"8MiB", 1 << 20},
	},
}

func BenchmarkMuxVsLockstep(b *testing.B) {
	for _, mode := range []struct {
		name string
		mux  bool
	}{{"mux", true}, {"lockstep", false}} {
		for _, nc := range muxSweep.callers {
			for _, size := range muxSweep.sizes {
				if size.elems >= 1<<20 && nc > 16 {
					// 64 callers × 8 MiB would hold half a GiB of
					// argument vectors in flight; the interesting
					// large-transfer contention shows by 16.
					continue
				}
				if testing.Short() && (size.elems > 1 || nc > 16) {
					continue
				}
				name := mode.name + "/c" + itoa(nc) + "/" + size.name
				b.Run(name, func(b *testing.B) {
					benchMuxCell(b, mode.mux, nc, size.elems)
				})
			}
		}
	}
}

// benchMuxCell runs b.N echo calls spread over nc concurrent callers.
func benchMuxCell(b *testing.B, mux bool, nc, elems int) {
	c, cleanup := benchClient(b, server.Config{PEs: 4})
	defer cleanup()
	c.SetMultiplexing(mux)
	if !mux {
		// Give the lockstep path its best shot: one pooled connection
		// per concurrent caller, so the comparison is mux vs a
		// fully-provisioned pool, not mux vs pool starvation.
		c.SetPoolSize(nc)
	}
	warm := make([]float64, elems)
	if _, err := c.Call("echo", elems, warm, make([]float64, elems)); err != nil {
		b.Fatal(err)
	}
	if c.Multiplexed() != mux {
		b.Fatalf("client multiplexed = %v, want %v", c.Multiplexed(), mux)
	}

	b.SetBytes(int64(2 * 8 * elems)) // echo moves the vector out and back
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < nc; w++ {
		calls := b.N / nc
		if w < b.N%nc {
			calls++
		}
		if calls == 0 {
			continue
		}
		wg.Add(1)
		go func(calls int) {
			defer wg.Done()
			in := make([]float64, elems)
			out := make([]float64, elems)
			for i := 0; i < calls; i++ {
				if _, err := c.Call("echo", elems, in, out); err != nil {
					b.Error(err)
					return
				}
			}
		}(calls)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
