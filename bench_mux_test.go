package ninf_test

// BenchmarkMuxVsLockstep: the paper's §4 multi-client question asked
// of our own data plane. The sweep drives 1/4/16/64 concurrent callers
// with 8B/64KiB/8MiB argument vectors over loopback TCP against one
// server, once with the multiplexed session and once pinned to the
// lockstep pooled path, and reports calls/s per cell. The
// multiclient-mux experiment (cmd/ninfbench) runs the same sweep
// outside the testing harness and records BENCH_multiclient.json.

import (
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ninf"
	"ninf/internal/emunet"
	"ninf/internal/library"
	"ninf/internal/server"
)

var muxSweep = struct {
	callers []int
	sizes   []struct {
		name  string
		elems int
	}
}{
	callers: []int{1, 4, 16, 64},
	sizes: []struct {
		name  string
		elems int
	}{
		{"8B", 1},
		{"64KiB", 8 << 10},
		{"8MiB", 1 << 20},
	},
}

func BenchmarkMuxVsLockstep(b *testing.B) {
	for _, mode := range []struct {
		name string
		mux  bool
	}{{"mux", true}, {"lockstep", false}} {
		for _, nc := range muxSweep.callers {
			for _, size := range muxSweep.sizes {
				if size.elems >= 1<<20 && nc > 16 {
					// 64 callers × 8 MiB would hold half a GiB of
					// argument vectors in flight; the interesting
					// large-transfer contention shows by 16.
					continue
				}
				if testing.Short() && (size.elems > 1 || nc > 16) {
					continue
				}
				name := mode.name + "/c" + itoa(nc) + "/" + size.name
				b.Run(name, func(b *testing.B) {
					benchMuxCell(b, mode.mux, nc, size.elems)
				})
			}
		}
	}
}

// benchMuxCell runs b.N echo calls spread over nc concurrent callers.
func benchMuxCell(b *testing.B, mux bool, nc, elems int) {
	c, cleanup := benchClient(b, server.Config{PEs: 4})
	defer cleanup()
	c.SetMultiplexing(mux)
	if !mux {
		// Give the lockstep path its best shot: one pooled connection
		// per concurrent caller, so the comparison is mux vs a
		// fully-provisioned pool, not mux vs pool starvation.
		c.SetPoolSize(nc)
	}
	warm := make([]float64, elems)
	if _, err := c.Call("echo", elems, warm, make([]float64, elems)); err != nil {
		b.Fatal(err)
	}
	if c.Multiplexed() != mux {
		b.Fatalf("client multiplexed = %v, want %v", c.Multiplexed(), mux)
	}

	b.SetBytes(int64(2 * 8 * elems)) // echo moves the vector out and back
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < nc; w++ {
		calls := b.N / nc
		if w < b.N%nc {
			calls++
		}
		if calls == 0 {
			continue
		}
		wg.Add(1)
		go func(calls int) {
			defer wg.Done()
			in := make([]float64, elems)
			out := make([]float64, elems)
			for i := 0; i < calls; i++ {
				if _, err := c.Call("echo", elems, in, out); err != nil {
					b.Error(err)
					return
				}
			}
		}(calls)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkMuxMixed is the tentpole's acceptance cell: 8-byte calls
// measured while a concurrent 8 MiB transfer occupies the same
// multiplexed session, on an emulated shared 100 MB/s access link
// (the paper's LAN regime — over raw loopback the wire is never the
// bottleneck and the cell would measure scheduler noise instead).
// "chunked" streams the large call as bounded interleaved bulk frames
// (protocol feature level 3); "monolithic" disables chunking, so the
// 8 MiB call holds the link as one frame and every small call queues
// behind it. p99-ms is the small calls' tail latency; bulkMB/s is the
// concurrent large-transfer throughput on the shared link.
func BenchmarkMuxMixed(b *testing.B) {
	for _, mode := range []struct {
		name string
		thr  int
	}{{"chunked", 0}, {"monolithic", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			benchMuxMixedCell(b, mode.thr)
		})
	}
}

func benchMuxMixedCell(b *testing.B, threshold int) {
	reg, err := library.NewRegistry()
	if err != nil {
		b.Fatal(err)
	}
	s := server.New(server.Config{PEs: 4, BulkThreshold: threshold}, reg)
	defer s.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	// One shared 100 MB/s access link, charged where the bytes enter
	// the wire: client writes upstream, server writes downstream. Both
	// endpoints pace to the link, as real NICs do — otherwise megabytes
	// of bulk chunks queue in kernel socket buffers ahead of the small
	// replies and the interleaving never reaches the wire.
	link := emunet.NewLink("lan", 100e6)
	opts := emunet.Options{Up: []*emunet.Link{link}}
	go s.Serve(&shapedListener{l, opts})
	addr := l.Addr().String()
	c, err := ninf.NewClient(emunet.Dialer(
		func() (net.Conn, error) { return net.Dial("tcp", addr) },
		opts,
	))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.SetBulkThreshold(threshold)

	const bulkElems = 1 << 20 // 8 MiB per direction
	smallIn := []float64{42}
	smallOut := make([]float64, 1)
	if _, err := c.Call("echo", 1, smallIn, smallOut); err != nil {
		b.Fatal(err)
	}

	stop := make(chan struct{})
	var bulkCalls atomic.Int64
	var bulkWG sync.WaitGroup
	bulkWG.Add(1)
	go func() {
		defer bulkWG.Done()
		in := make([]float64, bulkElems)
		out := make([]float64, bulkElems)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Call("echo", bulkElems, in, out); err != nil {
				b.Error(err)
				return
			}
			bulkCalls.Add(1)
		}
	}()

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := c.Call("echo", 1, smallIn, smallOut); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	elapsed := b.Elapsed()
	close(stop)
	bulkWG.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[min(len(lat)*99/100, len(lat)-1)]
	b.ReportMetric(float64(p99.Nanoseconds())/1e6, "p99-ms")
	b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds())/1e6, "p50-ms")
	b.ReportMetric(float64(bulkCalls.Load())*2*8*bulkElems/1e6/elapsed.Seconds(), "bulkMB/s")
}

// shapedListener wraps accepted connections in emunet shaping, so the
// server side of a benchmark link paces its writes like a real NIC.
type shapedListener struct {
	net.Listener
	opts emunet.Options
}

func (sl *shapedListener) Accept() (net.Conn, error) {
	c, err := sl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return emunet.Wrap(c, sl.opts), nil
}
