package ninf_test

import (
	"net"
	"strings"
	"testing"

	"ninf"
	"ninf/internal/protocol"
	"ninf/internal/server"
)

// misbehavingServer answers every frame with an unexpected type, to
// exercise the client's protocol-error paths.
func misbehavingServer(t *testing.T) func() (net.Conn, error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					if _, _, err := protocol.ReadFrame(conn, 0); err != nil {
						return
					}
					if protocol.WriteFrame(conn, protocol.MsgPong, nil) != nil {
						return
					}
				}
			}(conn)
		}
	}()
	addr := l.Addr().String()
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

func TestClientRejectsUnexpectedReplies(t *testing.T) {
	c := newClient(t, misbehavingServer(t))
	if err := c.Ping(); err != nil {
		t.Errorf("ping (the one legitimate pong): %v", err)
	}
	if _, err := c.List(); err == nil || !strings.Contains(err.Error(), "unexpected reply") {
		t.Errorf("List: %v", err)
	}
	if _, err := c.Stats(); err == nil || !strings.Contains(err.Error(), "unexpected reply") {
		t.Errorf("Stats: %v", err)
	}
	if _, err := c.Trace(); err == nil || !strings.Contains(err.Error(), "unexpected reply") {
		t.Errorf("Trace: %v", err)
	}
	if _, err := c.Interface("x"); err == nil || !strings.Contains(err.Error(), "unexpected reply") {
		t.Errorf("Interface: %v", err)
	}
	if _, err := c.Call("x", 1); err == nil {
		t.Error("Call against misbehaving server succeeded")
	}
	if _, err := c.Submit("x", 1); err == nil {
		t.Error("Submit against misbehaving server succeeded")
	}
}

func TestStoreResultDestinationErrors(t *testing.T) {
	_, dial := startServer(t, server.Config{})
	c := newClient(t, dial)
	n := 4
	data := make([]float64, n)
	// Wrong-size destination slice for an out array.
	if _, err := c.Call("echo", n, data, make([]float64, n-1)); err == nil {
		t.Error("short destination accepted")
	}
	// Wrong-type destination.
	if _, err := c.Call("echo", n, data, make([]int64, n)); err == nil {
		t.Error("wrong-typed destination accepted")
	}
	// Wrong destination for an out scalar.
	var wrong string
	if _, err := c.Call("ep", 4, 0, 16, &wrong, nil, nil, nil); err == nil {
		t.Error("string pointer for double scalar accepted")
	}
}

func TestServerClosedMidSession(t *testing.T) {
	s, dial := startServer(t, server.Config{})
	c := newClient(t, dial)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := c.Ping(); err == nil {
		t.Error("ping succeeded after server close")
	}
}

func TestSingleServerSchedulerExcludesItself(t *testing.T) {
	sched := ninf.SingleServer("only", func() (net.Conn, error) { return nil, nil })
	if _, err := sched.Place(ninf.SchedRequest{Routine: "r", Exclude: []string{"only"}}); err == nil {
		t.Error("excluded single server still placed")
	}
	pl, err := sched.Place(ninf.SchedRequest{Routine: "r"})
	if err != nil || pl.Name != "only" {
		t.Errorf("place: %+v %v", pl, err)
	}
	sched.Observe("only", 1, 1, false) // must not panic
}
