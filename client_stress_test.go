package ninf_test

import (
	"errors"
	"sync"
	"testing"

	"ninf"
	"ninf/internal/server"
)

// TestClientConcurrentStress hammers one shared Client with concurrent
// Call, CallAsync, and Submit/Fetch traffic. Run under -race it
// exercises the connection pool, the pooled frame buffers, and the
// interface cache for unsynchronized sharing.
func TestClientConcurrentStress(t *testing.T) {
	_, dial := startServer(t, server.Config{})
	c := newClient(t, dial)
	c.SetPoolSize(3)

	workers := 8
	iters := 12
	if testing.Short() {
		workers, iters = 4, 4
	}

	check := func(n int, in, out []float64) error {
		for i := range out {
			if out[i] != in[i] {
				return errors.New("echo mismatch")
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	errc := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				n := 1 + (w*iters+it)%64
				in := make([]float64, n)
				for i := range in {
					in[i] = float64(w*1000 + it*100 + i)
				}
				out := make([]float64, n)
				var err error
				switch (w + it) % 3 {
				case 0: // synchronous, shares the primary connection
					_, err = c.Call("echo", n, in, out)
				case 1: // async over the pool
					_, err = c.CallAsync("echo", n, in, out).Wait()
				default: // two-phase over the pool
					var job *ninf.Job
					job, err = c.Submit("echo", n, in, out)
					if err == nil {
						_, err = job.Fetch(true)
					}
				}
				if err == nil {
					err = check(n, in, out)
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
