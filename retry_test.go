package ninf

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"ninf/internal/protocol"
)

func TestRetryableClassification(t *testing.T) {
	opErr := &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	var timeoutErr net.Error = &net.OpError{Op: "read", Net: "tcp", Err: &timeoutError{}}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"eof", io.EOF, true},
		{"unexpected-eof", io.ErrUnexpectedEOF, true},
		{"closed-pipe", io.ErrClosedPipe, true},
		{"net-closed", net.ErrClosed, true},
		{"econnreset", syscall.ECONNRESET, true},
		{"wrapped-reset", fmt.Errorf("protocol: read header: %w", syscall.ECONNRESET), true},
		{"dial-refused", opErr, true},
		{"io-timeout", timeoutErr, true},
		{"remote-error", &protocol.RemoteError{Code: 1, Detail: "no such routine"}, false},
		{"wrapped-remote", fmt.Errorf("call: %w", &protocol.RemoteError{Code: 1, Detail: "x"}), false},
		{"ctx-canceled", context.Canceled, false},
		{"ctx-deadline", context.DeadlineExceeded, false},
		{"client-closed", ErrClientClosed, false},
		{"unknown", errors.New("some local bug"), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// timeoutError is a minimal net.Error with Timeout()==true, the shape
// a deadline-severed read produces.
type timeoutError struct{}

func (*timeoutError) Error() string   { return "i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return false }

func TestRetryPolicyDelayBounds(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	for k := 1; k <= 8; k++ {
		window := p.BaseDelay << uint(k-1)
		if window > p.MaxDelay {
			window = p.MaxDelay
		}
		for i := 0; i < 100; i++ {
			d := p.delay(k)
			if d < 0 || d >= window {
				t.Fatalf("delay(%d) = %v outside [0, %v)", k, d, window)
			}
		}
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p != DefaultRetryPolicy {
		t.Errorf("zero policy defaults to %+v, want %+v", p, DefaultRetryPolicy)
	}
	// NoRetry keeps MaxAttempts == 1 through a client's SetRetryPolicy.
	c := &Client{retry: DefaultRetryPolicy}
	c.SetRetryPolicy(NoRetry)
	if got := c.Retry().MaxAttempts; got != 1 {
		t.Errorf("NoRetry via SetRetryPolicy: MaxAttempts = %d, want 1", got)
	}
}

func TestBackoffHonorsContext(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 2, BaseDelay: time.Hour, MaxDelay: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.backoff(ctx, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("backoff under expired ctx: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("backoff ignored context for %v", elapsed)
	}
}

func TestRetryErrorUnwraps(t *testing.T) {
	inner := &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	err := error(&RetryError{Op: "call dmmul", Attempts: 4, Err: inner})
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("RetryError does not unwrap to the final attempt's cause: %v", err)
	}
	var re *RetryError
	if !errors.As(err, &re) || re.Attempts != 4 {
		t.Errorf("errors.As(*RetryError) failed on %v", err)
	}
}

func TestGuardConnSeversOnCancel(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	stop := guardConn(ctx, a)
	defer stop()
	readErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := a.Read(buf) // black hole: peer never writes
		readErr <- err
	}()
	cancel()
	select {
	case err := <-readErr:
		if err == nil {
			t.Error("read returned nil after guard severed the conn")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("guardConn did not sever a blocked read on cancel")
	}
}
