package ninf

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"ninf/internal/protocol"
)

func TestRetryableClassification(t *testing.T) {
	opErr := &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	var timeoutErr net.Error = &net.OpError{Op: "read", Net: "tcp", Err: &timeoutError{}}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"eof", io.EOF, true},
		{"unexpected-eof", io.ErrUnexpectedEOF, true},
		{"closed-pipe", io.ErrClosedPipe, true},
		{"net-closed", net.ErrClosed, true},
		{"econnreset", syscall.ECONNRESET, true},
		{"wrapped-reset", fmt.Errorf("protocol: read header: %w", syscall.ECONNRESET), true},
		{"dial-refused", opErr, true},
		{"io-timeout", timeoutErr, true},
		{"remote-error", &protocol.RemoteError{Code: 1, Detail: "no such routine"}, false},
		{"wrapped-remote", fmt.Errorf("call: %w", &protocol.RemoteError{Code: 1, Detail: "x"}), false},
		{"ctx-canceled", context.Canceled, false},
		{"ctx-deadline", context.DeadlineExceeded, false},
		{"client-closed", ErrClientClosed, false},
		{"unknown", errors.New("some local bug"), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRetryableOverloaded is the regression for the overload-control
// bugfix: CodeOverloaded is the one RemoteError the transport MAY
// retry — the server said "come back later", not "this cannot work".
// Every other remote code stays non-retryable.
func TestRetryableOverloaded(t *testing.T) {
	over := &protocol.RemoteError{Code: protocol.CodeOverloaded, Detail: "queue full", RetryAfterMillis: 50}
	if !Retryable(over) {
		t.Error("Retryable(CodeOverloaded) = false; overload rejections must invite retry")
	}
	if !Retryable(fmt.Errorf("call: %w", over)) {
		t.Error("wrapped overload rejection classified non-retryable")
	}
	for _, code := range []uint32{protocol.CodeUnknownRoutine, protocol.CodeBadArguments,
		protocol.CodeExecFailed, protocol.CodeInternal, protocol.CodeNotReady, protocol.CodeUnknownJob} {
		if Retryable(&protocol.RemoteError{Code: code}) {
			t.Errorf("Retryable(code %d) = true; only CodeOverloaded may retry", code)
		}
	}
}

func TestOverloadHint(t *testing.T) {
	if d, ok := overloadHint(&protocol.RemoteError{Code: protocol.CodeOverloaded, RetryAfterMillis: 120}); !ok || d != 120*time.Millisecond {
		t.Errorf("hint = %v, %v", d, ok)
	}
	// The cap defends against corrupt or hostile hints.
	if d, _ := overloadHint(&protocol.RemoteError{Code: protocol.CodeOverloaded, RetryAfterMillis: 600_000}); d != 5*time.Second {
		t.Errorf("uncapped hint: %v", d)
	}
	if _, ok := overloadHint(&protocol.RemoteError{Code: protocol.CodeOverloaded}); ok {
		t.Error("zero hint reported as present")
	}
	if _, ok := overloadHint(&protocol.RemoteError{Code: protocol.CodeExecFailed, RetryAfterMillis: 120}); ok {
		t.Error("hint extracted from a non-overload error")
	}
	if _, ok := overloadHint(io.EOF); ok {
		t.Error("hint extracted from a transport error")
	}
}

func TestRetryBudgetTake(t *testing.T) {
	now := time.Now()
	var b retryBudget
	b.configure(RetryBudget{Burst: 2, Rate: 0}, now)
	if !b.take(now) || !b.take(now) {
		t.Fatal("budget refused a retry within its burst")
	}
	if b.take(now) {
		t.Fatal("budget granted a retry beyond its non-replenishing burst")
	}

	// A positive rate refills tokens with time.
	b.configure(RetryBudget{Burst: 1, Rate: 10}, now)
	if !b.take(now) {
		t.Fatal("fresh budget empty")
	}
	if b.take(now) {
		t.Fatal("drained budget granted a retry with no time elapsed")
	}
	if !b.take(now.Add(150 * time.Millisecond)) {
		t.Error("budget did not refill at its rate")
	}

	// Negative burst disables the budget entirely.
	b.configure(NoRetryBudget, now)
	for i := 0; i < 100; i++ {
		if !b.take(now) {
			t.Fatal("disabled budget refused a retry")
		}
	}
}

// timeoutError is a minimal net.Error with Timeout()==true, the shape
// a deadline-severed read produces.
type timeoutError struct{}

func (*timeoutError) Error() string   { return "i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return false }

func TestRetryPolicyDelayBounds(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	for k := 1; k <= 8; k++ {
		window := p.BaseDelay << uint(k-1)
		if window > p.MaxDelay {
			window = p.MaxDelay
		}
		for i := 0; i < 100; i++ {
			d := p.delay(k)
			if d < 0 || d >= window {
				t.Fatalf("delay(%d) = %v outside [0, %v)", k, d, window)
			}
		}
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p != DefaultRetryPolicy {
		t.Errorf("zero policy defaults to %+v, want %+v", p, DefaultRetryPolicy)
	}
	// NoRetry keeps MaxAttempts == 1 through a client's SetRetryPolicy.
	c := &Client{retry: DefaultRetryPolicy}
	c.SetRetryPolicy(NoRetry)
	if got := c.Retry().MaxAttempts; got != 1 {
		t.Errorf("NoRetry via SetRetryPolicy: MaxAttempts = %d, want 1", got)
	}
}

func TestBackoffHonorsContext(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 2, BaseDelay: time.Hour, MaxDelay: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.backoff(ctx, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("backoff under expired ctx: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("backoff ignored context for %v", elapsed)
	}
}

func TestRetryErrorUnwraps(t *testing.T) {
	inner := &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	err := error(&RetryError{Op: "call dmmul", Attempts: 4, Err: inner})
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("RetryError does not unwrap to the final attempt's cause: %v", err)
	}
	var re *RetryError
	if !errors.As(err, &re) || re.Attempts != 4 {
		t.Errorf("errors.As(*RetryError) failed on %v", err)
	}
}

func TestGuardConnSeversOnCancel(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	stop := guardConn(ctx, a)
	defer stop()
	readErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := a.Read(buf) // black hole: peer never writes
		readErr <- err
	}()
	cancel()
	select {
	case err := <-readErr:
		if err == nil {
			t.Error("read returned nil after guard severed the conn")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("guardConn did not sever a blocked read on cancel")
	}
}
