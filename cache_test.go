package ninf_test

// End-to-end coverage for the content-addressed argument cache and
// persistent data handles (protocol feature level 4): warm calls ship
// 20-byte digest markers instead of megabyte operands, a mid-upload
// connection cut can never poison the cache, eviction behind the
// client's back degrades to one transparent re-upload, and level-3 or
// cache-disabled peers interoperate bit-identically with no digest
// framing on the wire.

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"syscall"
	"testing"

	"ninf"
	"ninf/internal/idl"
	"ninf/internal/metaserver"
	"ninf/internal/protocol"
	"ninf/internal/server"
)

// startCountingServer runs a server whose one routine, cdouble,
// doubles v into w and counts invocations — so exactly-once delivery
// under faults is asserted, not assumed.
func startCountingServer(t *testing.T, cfg server.Config) (*server.Server, func() (net.Conn, error), *atomic.Int64) {
	t.Helper()
	var count atomic.Int64
	reg := server.NewRegistry()
	err := reg.RegisterIDL(`
Define cdouble(mode_in int n, mode_in double v[n], mode_out double w[n])
    Calls "go" cdouble(n, v, w);
`, map[string]server.Handler{
		"cdouble": func(ctx context.Context, args []idl.Value) error {
			count.Add(1)
			v := args[1].([]float64)
			w := args[2].([]float64)
			for i := range v {
				w[i] = 2 * v[i]
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(cfg, reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	addr := l.Addr().String()
	return s, func() (net.Conn, error) { return net.Dial("tcp", addr) }, &count
}

func checkDoubled(t *testing.T, v, w []float64) {
	t.Helper()
	for i := range v {
		if w[i] != 2*v[i] {
			t.Fatalf("w[%d] = %g, want %g — stale or corrupt cached operand", i, w[i], 2*v[i])
		}
	}
}

const cacheTestN = 16 << 10 // 128 KiB of float64 per vector

// TestArgCacheWarmCall: the second call with the same operand ships
// digest markers instead of the vector, the server resolves it from
// cache, and the counters say so — end to end through the metaserver's
// polled Stats as well.
func TestArgCacheWarmCall(t *testing.T) {
	s, dial, count := startCountingServer(t, server.Config{
		Hostname: "cachesrv", BulkThreshold: 4096, CacheBudget: 1 << 20,
	})
	c := newClient(t, dial)
	c.SetBulkThreshold(4096)

	v := bulkVec(cacheTestN)
	w := make([]float64, cacheTestN)
	rep1, err := c.Call("cdouble", cacheTestN, v, w)
	if err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, v, w)

	clear(w)
	rep2, err := c.Call("cdouble", cacheTestN, v, w)
	if err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, v, w)
	if got := count.Load(); got != 2 {
		t.Fatalf("handler ran %d times, want 2", got)
	}
	if rep2.BytesOut*20 > rep1.BytesOut {
		t.Fatalf("warm call shipped %d bytes vs cold %d; want ≥20× smaller", rep2.BytesOut, rep1.BytesOut)
	}
	hits, misses, _, _, used := s.CacheCounters()
	if hits < 1 || used == 0 {
		t.Fatalf("cache counters after warm call: hits=%d used=%d", hits, used)
	}
	_ = misses

	// The counters ride the Stats wire into the metaserver's snapshot.
	m := metaserver.New(metaserver.Config{})
	if err := m.AddServer("cachesrv", "x", 100, dial); err != nil {
		t.Fatal(err)
	}
	if m.PollOnce() != 1 {
		t.Fatal("poll failed")
	}
	snap := m.Servers()[0]
	if snap.Stats.CacheHits < 1 || snap.Stats.CacheBudget != 1<<20 {
		t.Fatalf("snapshot cache counters = %+v", snap.Stats)
	}
}

// cutConn severs the connection once cumulative writes cross limit
// while armed, simulating a WAN drop mid-way through a bulk upload.
type cutConn struct {
	net.Conn
	armed *atomic.Bool
	limit int64
	n     int64
}

func (c *cutConn) Write(p []byte) (int, error) {
	if c.armed.Load() && c.n+int64(len(p)) > c.limit {
		if c.armed.CompareAndSwap(true, false) {
			c.Conn.Close()
			return 0, syscall.ECONNRESET
		}
	}
	c.n += int64(len(p))
	return c.Conn.Write(p)
}

// TestCacheMissUploadCutUnpoisoned: the connection dies mid-way
// through the cache-miss bulk upload. The partially received operand
// must never enter the cache (reassembly did not complete), the
// client's retry must complete the call exactly once, and a follow-up
// warm call must compute from correct bytes.
func TestCacheMissUploadCutUnpoisoned(t *testing.T) {
	s, dial, count := startCountingServer(t, server.Config{
		BulkThreshold: 4096, CacheBudget: 1 << 20,
	})
	var armed atomic.Bool
	armed.Store(true)
	cutDial := func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		return &cutConn{Conn: conn, armed: &armed, limit: 32 << 10}, nil
	}
	c := newClient(t, cutDial)
	c.SetBulkThreshold(4096)

	v := bulkVec(cacheTestN)
	w := make([]float64, cacheTestN)
	if _, err := c.Call("cdouble", cacheTestN, v, w); err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, v, w)
	if armed.Load() {
		t.Fatal("vacuous: the upload never crossed the cut limit")
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("handler ran %d times across the cut retry, want exactly 1", got)
	}

	// Warm follow-up: whatever the cache holds for this digest is what
	// the server computes from. Wrong bytes here = poisoned cache.
	clear(w)
	rep, err := c.Call("cdouble", cacheTestN, v, w)
	if err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, v, w)
	if rep.BytesOut > 8*cacheTestN/4 {
		t.Fatalf("follow-up call shipped %d bytes; cache should be warm after the retried upload", rep.BytesOut)
	}
	if got := count.Load(); got != 2 {
		t.Fatalf("handler ran %d times, want 2", got)
	}
	hits, _, _, _, _ := s.CacheCounters()
	if hits < 1 {
		t.Fatal("warm follow-up did not hit the cache")
	}
}

// TestCacheEvictionReupload: the server evicts behind the client's
// optimistic warm set. The digest-marker call answers CodeCacheMiss
// without executing; the client's retry re-queries, re-uploads, and
// the call completes — exactly once per logical call.
func TestCacheEvictionReupload(t *testing.T) {
	s, dial, count := startCountingServer(t, server.Config{
		// Budget fits one vector (plus slack), never two: the second
		// operand evicts the first.
		BulkThreshold: 4096, CacheBudget: 160 << 10,
	})
	c := newClient(t, dial)
	c.SetBulkThreshold(4096)

	a := bulkVec(cacheTestN)
	b := make([]float64, cacheTestN)
	for i := range b {
		b[i] = float64(i%97) + 0.25
	}
	w := make([]float64, cacheTestN)
	if _, err := c.Call("cdouble", cacheTestN, a, w); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("cdouble", cacheTestN, b, w); err != nil {
		t.Fatal(err)
	}
	// a is evicted; the client still believes it warm.
	clear(w)
	if _, err := c.Call("cdouble", cacheTestN, a, w); err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, a, w)
	if got := count.Load(); got != 3 {
		t.Fatalf("handler ran %d times, want 3 (the miss reply must not execute)", got)
	}
	_, misses, evictions, _, _ := s.CacheCounters()
	if evictions < 1 {
		t.Fatal("vacuous: budget pressure never evicted")
	}
	if misses < 1 {
		t.Fatal("stale warm set never produced a cache miss")
	}
}

// TestCacheDataHandles: with retention on, a call's large result stays
// server-resident; HandleFor + FetchData retrieve it by digest without
// re-running anything, and an unknown handle fails with a cache miss.
func TestCacheDataHandles(t *testing.T) {
	_, dial, count := startCountingServer(t, server.Config{
		BulkThreshold: 4096, CacheBudget: 1 << 20,
	})
	c := newClient(t, dial)
	c.SetBulkThreshold(4096)
	c.SetRetainResults(true)

	v := bulkVec(cacheTestN)
	w := make([]float64, cacheTestN)
	if _, err := c.Call("cdouble", cacheTestN, v, w); err != nil {
		t.Fatal(err)
	}
	h, ok := ninf.HandleFor(w)
	if !ok {
		t.Fatal("HandleFor refused a float64 slice")
	}
	var got []float64
	if err := c.FetchData(context.Background(), h, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(w) {
		t.Fatalf("fetched %d elements, want %d", len(got), len(w))
	}
	for i := range w {
		if got[i] != w[i] {
			t.Fatalf("fetched[%d] = %g, want %g", i, got[i], w[i])
		}
	}
	if count.Load() != 1 {
		t.Fatal("FetchData re-ran the routine")
	}

	// A digest the server never retained answers CodeCacheMiss.
	strange := make([]float64, cacheTestN)
	for i := range strange {
		strange[i] = -float64(i) * 3.5
	}
	hs, _ := ninf.HandleFor(strange)
	var dst []float64
	err := c.FetchData(context.Background(), hs, &dst)
	var re *protocol.RemoteError
	if !errors.As(err, &re) || re.Code != protocol.CodeCacheMiss {
		t.Fatalf("fetch of unknown handle: err = %v, want CodeCacheMiss", err)
	}
}

// TestCacheLevel3PeerInterop: against a server with no cache the
// session negotiates level 4 without the cache flag, so the client
// must emit no digest framing — the wire is the plain level-3 byte
// stream. The same holds with the cache disabled client-side, and the
// bytes shipped must be identical in both worlds.
func TestCacheLevel3PeerInterop(t *testing.T) {
	v := bulkVec(cacheTestN)

	// Cacheless server, cache-willing client.
	sPlain, dialPlain, _ := startCountingServer(t, server.Config{BulkThreshold: 4096})
	c1 := newClient(t, dialPlain)
	c1.SetBulkThreshold(4096)
	w := make([]float64, cacheTestN)
	repPlain, err := c1.Call("cdouble", cacheTestN, v, w)
	if err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, v, w)
	if !c1.Multiplexed() {
		t.Fatal("client did not negotiate a session")
	}
	if h, m, e, p, u := sPlain.CacheCounters(); h|m|e|p|u != 0 {
		t.Fatalf("cacheless server has cache counters %d/%d/%d/%d/%d", h, m, e, p, u)
	}

	// Cache-enabled server, client opted out: no digest query, no
	// digest markers, and byte-for-byte the same request size.
	sCache, dialCache, _ := startCountingServer(t, server.Config{
		BulkThreshold: 4096, CacheBudget: 1 << 20,
	})
	c2 := newClient(t, dialCache)
	c2.SetBulkThreshold(4096)
	c2.SetArgCache(false)
	clear(w)
	repOff, err := c2.Call("cdouble", cacheTestN, v, w)
	if err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, v, w)
	if hits, misses, _, _, _ := sCache.CacheCounters(); hits != 0 || misses != 0 {
		t.Fatalf("opted-out client produced digest traffic: hits=%d misses=%d", hits, misses)
	}
	if repOff.BytesOut != repPlain.BytesOut {
		t.Fatalf("level-3 fallback not bit-identical: %d bytes vs %d", repOff.BytesOut, repPlain.BytesOut)
	}

	// Re-enabled, the same client+server pair goes warm — proving the
	// opt-out was the only thing holding level 4 back.
	c2.SetArgCache(true)
	if _, err := c2.Call("cdouble", cacheTestN, v, w); err != nil {
		t.Fatal(err)
	}
	clear(w)
	repWarm, err := c2.Call("cdouble", cacheTestN, v, w)
	if err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, v, w)
	if repWarm.BytesOut*20 > repPlain.BytesOut {
		t.Fatalf("re-enabled cache never went warm: %d bytes", repWarm.BytesOut)
	}
}

// TestCacheTransactionAffinityChain: a transaction whose downstream
// call consumes an upstream result must (a) place the downstream call
// on the server holding that result — the affinity hint — and (b) bind
// the dependency via digest instead of re-uploading it, since
// transactions retain results.
func TestCacheTransactionAffinityChain(t *testing.T) {
	// Vectors above the client's default bulk threshold: transaction
	// clients run stock thresholds.
	const n = 64 << 10 // 512 KiB
	s1, dial1, count1 := startCountingServer(t, server.Config{
		Hostname: "srvA", BulkThreshold: 4096, CacheBudget: 4 << 20,
	})
	s2, dial2, count2 := startCountingServer(t, server.Config{
		Hostname: "srvB", BulkThreshold: 4096, CacheBudget: 4 << 20,
	})
	m := metaserver.New(metaserver.Config{})
	if err := m.AddServer("srvA", "x", 100, dial1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddServer("srvB", "x", 100, dial2); err != nil {
		t.Fatal(err)
	}

	v := bulkVec(n)
	mid := make([]float64, n)
	out := make([]float64, n)
	tx := ninf.BeginTransaction(m)
	tx.Call("cdouble", n, v, mid)
	tx.Call("cdouble", n, mid, out)
	if err := tx.End(); err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if out[i] != 4*v[i] {
			t.Fatalf("out[%d] = %g, want %g", i, out[i], 4*v[i])
		}
	}
	// Wherever the upstream call landed, affinity must have pulled the
	// downstream call to the same server...
	c1, c2 := count1.Load(), count2.Load()
	if !(c1 == 2 && c2 == 0) && !(c1 == 0 && c2 == 2) {
		t.Fatalf("dependency chain split across servers: srvA ran %d, srvB ran %d", c1, c2)
	}
	// ...where the retained upstream result made `mid` warm, so the
	// downstream call chained the handle instead of re-uploading.
	h1, _, _, _, _ := s1.CacheCounters()
	h2, _, _, _, _ := s2.CacheCounters()
	if h1+h2 < 1 {
		t.Fatal("downstream call re-uploaded instead of chaining the retained result")
	}
}
