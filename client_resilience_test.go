package ninf_test

// Regression tests for the resilience-layer review findings: the
// interface fetch must honor its context on a black-holed connection
// (and must not wedge the client while stalled), a submit retry must
// not execute the job twice, and a concurrent Close must not mask
// non-transport errors as ErrClientClosed.

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ninf"
	"ninf/internal/server"
)

// blackHoleDialer returns connections to a server that consumes every
// byte and never answers — the stalled-read fault a write deadline
// cannot cut.
func blackHoleDialer() func() (net.Conn, error) {
	return func() (net.Conn, error) {
		cc, sc := net.Pipe()
		go io.Copy(io.Discard, sc)
		return cc, nil
	}
}

// TestInterfaceContextDeadlineSeversBlackHole: the stage-one RPC must
// be severed by its context like every other verb. Before the fix the
// exchange ran with no connection guard while holding the client's
// mutex, so a black-holed read hung the fetch forever and wedged
// Close with it.
func TestInterfaceContextDeadlineSeversBlackHole(t *testing.T) {
	c, err := ninf.NewClient(blackHoleDialer())
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(ninf.NoRetry)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.InterfaceContext(ctx, "dmmul")
	if err == nil {
		t.Fatal("interface fetch from a black hole succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline did not sever the fetch: took %v", elapsed)
	}

	// The client must not be wedged: Close completes promptly.
	done := make(chan struct{})
	go func() {
		c.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung after a severed interface fetch")
	}
}

// replyDropConn swallows exactly one reply across all connections
// sharing the armed flag: the first guarded Read waits for the
// server's bytes (so the request is known to have been processed),
// discards them, and fails the connection — the delivered-but-
// unanswered transport fault.
type replyDropConn struct {
	net.Conn
	armed *atomic.Bool
}

func (c *replyDropConn) Read(p []byte) (int, error) {
	if c.armed.CompareAndSwap(true, false) {
		n, err := c.Conn.Read(p)
		if err != nil {
			return n, err
		}
		c.Conn.Close()
		return 0, io.ErrUnexpectedEOF
	}
	return c.Conn.Read(p)
}

// TestSubmitRetryExecutesOnce: a submit whose request was delivered
// but whose SubmitOK was lost is retried under the same idempotency
// key, and the server answers with the already-admitted job — one
// admission, one execution, one correct result.
func TestSubmitRetryExecutesOnce(t *testing.T) {
	s, dial := startServer(t, server.Config{})
	var armed atomic.Bool
	c := newClient(t, func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		return &replyDropConn{Conn: conn, armed: &armed}, nil
	})

	// Cache the interface first so arming hits the submit exchange,
	// not the stage-one RPC.
	if _, err := c.Interface("echo"); err != nil {
		t.Fatal(err)
	}

	n := 8
	in := make([]float64, n)
	for i := range in {
		in[i] = float64(i + 1)
	}
	out := make([]float64, n)

	armed.Store(true)
	job, err := c.Submit("echo", n, in, out)
	if err != nil {
		t.Fatalf("submit with one lost reply failed: %v", err)
	}
	if armed.Load() {
		t.Fatal("the fault never fired; the test proved nothing")
	}
	if _, err := job.Fetch(true); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out[%d] = %g, want %g", i, out[i], in[i])
		}
	}
	if total := s.Stats().TotalCalls; total != 1 {
		t.Fatalf("server admitted %d calls for one submission; the retry was not deduped", total)
	}
}

// TestCloseDoesNotMaskArgumentError: a deterministic local error on a
// closed client must surface as itself, not be rewrapped as
// ErrClientClosed.
func TestCloseDoesNotMaskArgumentError(t *testing.T) {
	_, dial := startServer(t, server.Config{})
	c := newClient(t, dial)
	if _, err := c.Interface("echo"); err != nil {
		t.Fatal(err)
	}
	c.Close()

	_, err := c.Call("echo", 1) // echo takes 3 arguments
	if err == nil {
		t.Fatal("bad-arity call succeeded")
	}
	if errors.Is(err, ninf.ErrClientClosed) {
		t.Fatalf("argument error masked as ErrClientClosed: %v", err)
	}
	if !strings.Contains(err.Error(), "arguments") {
		t.Fatalf("err = %v, want the arity error", err)
	}
}
