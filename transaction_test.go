package ninf_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"ninf"
	"ninf/internal/linpack"
	"ninf/internal/metaserver"
	"ninf/internal/server"
)

func TestTransactionEmpty(t *testing.T) {
	_, dial := startServer(t, server.Config{})
	tx := ninf.BeginTransaction(ninf.SingleServer("s", dial))
	if err := tx.End(); err != nil {
		t.Fatal(err)
	}
	if err := tx.End(); err == nil {
		t.Error("double End accepted")
	}
}

func TestTransactionDependencyChain(t *testing.T) {
	// dgefa writes (a, ipvt); dgesl reads them: the transaction must
	// order the two calls even though they were recorded together.
	_, dial := startServer(t, server.Config{PEs: 4})
	sched := ninf.SingleServer("s", dial)

	n := 48
	a := make([]float64, n*n)
	b := linpack.Matgen(a, n)
	orig := append([]float64(nil), a...)
	ipvt := make([]int64, n)
	x := append([]float64(nil), b...)

	tx := ninf.BeginTransaction(sched)
	tx.Call("dgefa", n, a, ipvt)
	tx.Call("dgesl", n, a, ipvt, x)
	if err := tx.End(); err != nil {
		t.Fatal(err)
	}
	if r := linpack.Residual(orig, n, x, b); r > 10 {
		t.Errorf("residual %g — dependency order violated?", r)
	}
	for i, v := range x {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("x[%d] = %g", i, v)
		}
	}
	reports := tx.Reports()
	if len(reports) != 2 || reports[0] == nil || reports[1] == nil {
		t.Fatalf("reports = %v", reports)
	}
	// The dependent call cannot have been submitted before the first
	// completed.
	if reports[1].Submit.Before(reports[0].Complete) {
		t.Error("dgesl submitted before dgefa completed")
	}
	for _, err := range tx.Errs() {
		if err != nil {
			t.Errorf("call error: %v", err)
		}
	}
}

func TestTransactionIndependentCallsOverlap(t *testing.T) {
	// Two busy(60) calls with no shared arguments on a 2-PE server
	// should overlap: total ≪ 2×60 ms is not guaranteed in CI, but
	// both reports must exist and both submissions must precede
	// either completion (i.e. they were launched together).
	_, dial := startServer(t, server.Config{PEs: 2})
	tx := ninf.BeginTransaction(ninf.SingleServer("s", dial))
	tx.Call("busy", 60)
	tx.Call("busy", 60)
	if err := tx.End(); err != nil {
		t.Fatal(err)
	}
	r := tx.Reports()
	if r[1].Submit.After(r[0].Complete) {
		t.Error("second call waited for the first despite independence")
	}
}

func TestTransactionWriteWriteConflictSerializes(t *testing.T) {
	// Two echo calls writing the same output buffer must execute in
	// program order.
	_, dial := startServer(t, server.Config{PEs: 4})
	n := 8
	in1 := make([]float64, n)
	in2 := make([]float64, n)
	for i := range in1 {
		in1[i] = 1
		in2[i] = 2
	}
	out := make([]float64, n)
	tx := ninf.BeginTransaction(ninf.SingleServer("s", dial))
	tx.Call("echo", n, in1, out)
	tx.Call("echo", n, in2, out)
	if err := tx.End(); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != 2 {
			t.Fatalf("out[%d] = %g; later write did not win", i, out[i])
		}
	}
	r := tx.Reports()
	if r[1].Submit.Before(r[0].Complete) {
		t.Error("conflicting calls overlapped")
	}
}

func TestTransactionDependencyFailurePropagates(t *testing.T) {
	s, dial := startServer(t, server.Config{})
	sched := ninf.SingleServer("s", dial)
	n := 4
	a := make([]float64, n*n)
	linpack.Matgen(a, n)
	ipvt := make([]int64, n)
	x := make([]float64, n)

	// Fail enough times that every retry of dgefa fails too.
	s.FailNextCalls(1 << 20)
	tx := ninf.BeginTransaction(sched)
	tx.SetMaxAttempts(2)
	tx.Call("dgefa", n, a, ipvt)
	tx.Call("dgesl", n, a, ipvt, x)
	if err := tx.End(); err == nil {
		t.Fatal("transaction succeeded with failing server")
	}
	errs := tx.Errs()
	if errs[0] == nil {
		t.Error("dgefa has no error")
	}
	if errs[1] == nil {
		t.Error("dependent dgesl did not inherit failure")
	}
}

// noServerScheduler reports "no eligible server" on every placement,
// the way the metaserver does while every breaker is open.
type noServerScheduler struct{ places int }

func (s *noServerScheduler) Place(ninf.SchedRequest) (ninf.Placement, error) {
	s.places++
	return ninf.Placement{}, metaserver.ErrNoServer
}

func (s *noServerScheduler) Observe(string, int64, time.Duration, bool) {}

// Regression: chaining placement failures across retry attempts must
// keep the sentinel reachable by errors.Is — an earlier version built
// the chain with %v, so after the second attempt the retry and
// failover layers could no longer classify the failure.
func TestTransactionPlacementErrorKeepsClass(t *testing.T) {
	sched := &noServerScheduler{}
	tx := ninf.BeginTransaction(sched)
	tx.SetMaxAttempts(3)
	tx.Call("pi", 1)
	err := tx.End()
	if err == nil {
		t.Fatal("End succeeded with no eligible server")
	}
	if !errors.Is(err, metaserver.ErrNoServer) {
		t.Fatalf("placement failure lost its class after chained retries: %v", err)
	}
	if sched.places < 2 {
		t.Fatalf("expected repeated placement attempts, got %d", sched.places)
	}
}
