package ninf_test

import (
	"strings"
	"testing"

	"ninf"
	"ninf/internal/library"
	"ninf/internal/linpack"
	"ninf/internal/server"
)

import "net"

func TestSplitURL(t *testing.T) {
	cases := []struct {
		url           string
		addr, routine string
	}{
		{"ninf://host:3000/dmmul", "host:3000", "dmmul"},
		{"http://host:3100/dgefa", "host:3100", "dgefa"},
		{"host:4000/ep", "host:4000", "ep"},
		{"host/linsolve", "host:3000", "linsolve"}, // default port
	}
	for _, tc := range cases {
		addr, routine, err := ninf.SplitURL(tc.url)
		if err != nil {
			t.Errorf("%s: %v", tc.url, err)
			continue
		}
		if addr != tc.addr || routine != tc.routine {
			t.Errorf("%s → %q %q, want %q %q", tc.url, addr, routine, tc.addr, tc.routine)
		}
	}
	for _, bad := range []string{
		"gopher://host/r", "hostonly", "host:3000/", "/routine", "host:1/a/b",
	} {
		if _, _, err := ninf.SplitURL(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestCallURL(t *testing.T) {
	reg, err := library.NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{}, reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()

	n := 8
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	linpack.Matgen(a, n)
	copy(b, a)
	got := make([]float64, n*n)
	// The paper's §2.2 URL form.
	rep, err := ninf.CallURL("http://"+l.Addr().String()+"/dmmul", n, a, b, got)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n*n)
	if err := linpack.Dmmul(n, a, b, want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("URL call result differs at %d", i)
		}
	}
	if rep.Routine != "dmmul" {
		t.Errorf("report routine %q", rep.Routine)
	}

	if _, err := ninf.CallURL("ninf://127.0.0.1:1/dmmul", n, a, b, got); err == nil {
		t.Error("dial to dead port succeeded")
	}
	if _, err := ninf.CallURL("bad url", 1); err == nil || !strings.Contains(err.Error(), "URL") {
		t.Errorf("bad URL: %v", err)
	}
}
