package ninf

import (
	"testing"

	"ninf/internal/testleak"
)

// TestMain fails the package if the client, pool, or stress tests
// leave goroutines running after they pass.
func TestMain(m *testing.M) { testleak.Main(m) }
