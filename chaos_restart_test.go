package ninf_test

// The restart chaos suite proves crash recovery end to end: a
// multi-client two-phase workload runs against a journaled server
// behind a seeded fault injector, the server is killed the hard way
// mid-run (listener gone, live connections partitioned, process state
// abandoned — never drained), and a fresh incarnation replays the
// journal on the same address. Every submission must still complete
// exactly once: replayed jobs keep their IDs and idempotency keys, so
// client retries re-attach instead of duplicating work, and nothing a
// client ever got a SubmitOK for may be lost. Separate regressions pin
// the epoch side: handles minted against the dead incarnation fail
// with ErrStaleHandle, the warm-digest set is flushed, and a fetch
// from a journal-less restart surfaces ErrJobNotFound — terminal, with
// Resubmit as the sanctioned recovery.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ninf"
	"ninf/internal/faultnet"
	"ninf/internal/idl"
	"ninf/internal/server"
	"ninf/internal/server/journal"
)

// tagCounter counts handler executions per submission tag, so
// duplicated execution after the restart is asserted away per job, not
// just in aggregate.
type tagCounter struct {
	mu sync.Mutex
	n  map[int]int
}

func (c *tagCounter) inc(tag int) {
	c.mu.Lock()
	if c.n == nil {
		c.n = make(map[int]int)
	}
	c.n[tag]++
	c.mu.Unlock()
}

func (c *tagCounter) get(tag int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n[tag]
}

func (c *tagCounter) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := 0
	for _, v := range c.n {
		t += v
	}
	return t
}

// restartRegistry builds a registry whose one routine, rdouble,
// doubles v into w and charges the execution to tag v[0].
func restartRegistry(t *testing.T, execs *tagCounter) *server.Registry {
	t.Helper()
	reg := server.NewRegistry()
	err := reg.RegisterIDL(`
Define rdouble(mode_in int n, mode_in double v[n], mode_out double w[n])
    Calls "go" rdouble(n, v, w);
`, map[string]server.Handler{
		"rdouble": func(_ context.Context, args []idl.Value) error {
			v := args[1].([]float64)
			w := args[2].([]float64)
			execs.inc(int(v[0]))
			for i := range v {
				w[i] = 2 * v[i]
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// relisten rebinds addr, retrying briefly: the dead incarnation's
// listener may take a moment to release the port.
func relisten(addr string) (net.Listener, error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err := net.Listen("tcp", addr)
		if err == nil || time.Now().After(deadline) {
			return l, err
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosRestartJournalExactlyOnce is the acceptance scenario: four
// clients push two-phase submissions through a seeded fault injector
// while the journaled server is crashed mid-run and restarted from its
// journal on the same address. Every submission must deliver exactly
// one verified result, no journaled job may be lost, and no job may
// execute twice in the surviving incarnation.
func TestChaosRestartJournalExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is seconds-long; skipped in -short")
	}
	const (
		clients = 4
		rounds  = 8
		n       = 64
	)
	dir := t.TempDir()
	var exec1, exec2 tagCounter

	s1 := server.New(server.Config{Hostname: "wal1", PEs: 4}, restartRegistry(t, &exec1))
	if _, err := s1.AttachJournal(dir, journal.Options{Fsync: journal.FsyncAlways}); err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s1.Serve(l1)
	// The crash below abandons s1 without draining; Close it only at
	// cleanup so straggling handlers stop. By then the new incarnation
	// owns the journal file (the replay rewrite renamed over it), so the
	// dead server's late appends land in an unlinked inode.
	t.Cleanup(func() { s1.Close() })
	addr := l1.Addr().String()

	in := faultnet.New(faultnet.Plan{
		Seed:             chaosSeed + 33,
		ResetProb:        1.0 / 40,
		PartialWriteProb: 1.0 / 40,
		StallProb:        1.0 / 60,
		StallDuration:    100 * time.Millisecond,
		SafeOps:          2,
	})
	dial := in.Dialer(func() (net.Conn, error) { return net.Dial("tcp", addr) })

	// Crash-and-restart monitor: once the first incarnation has
	// demonstrably executed work, partition it, abandon it, and bring up
	// a fresh incarnation from the journal on the same address.
	type restarted struct {
		rec server.Recovery
		s2  *server.Server
		err error
	}
	done := make(chan restarted, 1)
	go func() {
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			// Fire only while work is demonstrably in flight: with
			// acknowledged-but-unfinished jobs present at the partition,
			// the journal provably strands state for replay to recover —
			// a crash after everything was delivered would recover an
			// (correctly) empty journal and prove nothing.
			if st := s1.Stats(); st.TotalCalls >= 3 && st.Queued+st.Running > 0 {
				in.Partition()
				l1.Close()
				s2 := server.New(server.Config{Hostname: "wal2", PEs: 4}, restartRegistry(t, &exec2))
				rec, err := s2.AttachJournal(dir, journal.Options{Fsync: journal.FsyncAlways})
				if err != nil {
					done <- restarted{err: err}
					return
				}
				l2, err := relisten(addr)
				if err != nil {
					done <- restarted{err: err}
					return
				}
				go s2.Serve(l2)
				in.Heal()
				done <- restarted{rec: rec, s2: s2}
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
		done <- restarted{err: errors.New("workload drained before the crash fired")}
	}()

	ctx := testContext(t)
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := ninf.NewClient(dial)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			cl.SetRetryPolicy(ninf.RetryPolicy{MaxAttempts: 14, BaseDelay: 5 * time.Millisecond, MaxDelay: 150 * time.Millisecond})
			for r := 0; r < rounds; r++ {
				tag := c*1000 + r
				v := make([]float64, n)
				v[0] = float64(tag)
				for j := 1; j < n; j++ {
					v[j] = float64(tag + j)
				}
				w := make([]float64, n)
				j, err := cl.SubmitContext(ctx, "rdouble", n, v, w)
				if err != nil {
					errs <- fmt.Errorf("client %d round %d: submit: %w", c, r, err)
					return
				}
				_, err = j.FetchContext(ctx, true)
				if errors.Is(err, ninf.ErrJobNotFound) {
					// The server forgot the job (journal-less window or an
					// expired result): re-enter the same submission under its
					// original idempotency key and fetch again.
					if err = j.Resubmit(ctx); err == nil {
						_, err = j.FetchContext(ctx, true)
					}
				}
				if err != nil {
					errs <- fmt.Errorf("client %d round %d: fetch: %w", c, r, err)
					return
				}
				for i := range v {
					if w[i] != 2*v[i] {
						errs <- fmt.Errorf("client %d round %d: w[%d] = %g, want %g", c, r, i, w[i], 2*v[i])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var res restarted
	select {
	case res = <-done:
	case <-ctx.Done():
		t.Fatal("restart monitor never reported")
	}
	if res.err != nil {
		t.Fatalf("crash/restart failed: %v", res.err)
	}
	t.Cleanup(func() { res.s2.Close() })

	// The journal actually carried state across: the crash struck after
	// acknowledged work existed, so replay had something to recover.
	t.Logf("recovery: %+v; exec1 total %d, exec2 total %d; faults: %v",
		res.rec, exec1.total(), exec2.total(), in.Counters())
	if res.rec.Requeued+res.rec.Restored == 0 {
		t.Error("replay recovered nothing: the crash landed before any journaled work")
	}
	if res.rec.Dropped != 0 {
		t.Errorf("replay dropped %d journal records", res.rec.Dropped)
	}
	if in.Counters().Total() == 0 {
		t.Error("no faults injected: the chaos run proved nothing")
	}
	if exec2.total() == 0 {
		t.Error("second incarnation executed nothing; the restart never carried traffic")
	}

	// Exactly-once in the surviving incarnation: idempotency-key dedupe
	// (live and replayed alike) must keep every tag's execution count on
	// the restarted server at most one, however many submit retries the
	// faults forced. Executions the dead incarnation started and lost are
	// crash casualties — delivery, verified above, is what is exactly-once.
	for c := 0; c < clients; c++ {
		for r := 0; r < rounds; r++ {
			tag := c*1000 + r
			if got := exec2.get(tag); got > 1 {
				t.Errorf("tag %d executed %d times on the restarted server", tag, got)
			}
			if exec1.get(tag)+exec2.get(tag) == 0 {
				t.Errorf("tag %d delivered a result but never executed", tag)
			}
		}
	}
}

// TestRestartEpochInvalidatesHandles pins the epoch side of recovery:
// a restart mints a new incarnation epoch, and a client that observes
// it must flush its warm-digest set (the next call re-uploads full
// operands) and refuse data handles minted against the dead
// incarnation with ErrStaleHandle.
func TestRestartEpochInvalidatesHandles(t *testing.T) {
	const nv = 16 << 10
	dir := t.TempDir()
	var exec1, exec2 tagCounter

	s1 := server.New(server.Config{Hostname: "epoch1", PEs: 2, BulkThreshold: 4096, CacheBudget: 4 << 20}, restartRegistry(t, &exec1))
	if _, err := s1.AttachJournal(dir, journal.Options{Fsync: journal.FsyncAlways}); err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s1.Serve(l1)
	t.Cleanup(func() { s1.Close() })
	addr := l1.Addr().String()

	c := newClient(t, func() (net.Conn, error) { return net.Dial("tcp", addr) })
	c.SetBulkThreshold(4096)
	c.SetRetainResults(true)
	c.SetRetryPolicy(ninf.RetryPolicy{MaxAttempts: 10, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond})

	v := bulkVec(nv)
	v[0] = 1
	w := make([]float64, nv)
	rep1, err := c.Call("rdouble", nv, v, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ServerEpoch(); got != 1 {
		t.Fatalf("epoch after first call = %d, want 1", got)
	}
	// Warm the digest set and mint an epoch-bound handle to the result.
	clear(w)
	rep2, err := c.Call("rdouble", nv, v, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.BytesOut*4 > rep1.BytesOut {
		t.Fatalf("warm call shipped %d bytes vs cold %d; cache never warmed, the test is vacuous", rep2.BytesOut, rep1.BytesOut)
	}
	h, ok := c.HandleFor(w)
	if !ok {
		t.Fatal("HandleFor refused a float64 slice")
	}
	var got []float64
	if err := c.FetchData(context.Background(), h, &got); err != nil {
		t.Fatalf("FetchData against the minting incarnation: %v", err)
	}

	// Crash and restart on the same address: epoch 2, empty cache. Close
	// severs the client's live sessions too (this test runs no injector
	// to partition them), forcing a re-dial that meets the new epoch.
	l1.Close()
	s1.Close()
	s2 := server.New(server.Config{Hostname: "epoch2", PEs: 2, BulkThreshold: 4096, CacheBudget: 4 << 20}, restartRegistry(t, &exec2))
	if _, err := s2.AttachJournal(dir, journal.Options{Fsync: journal.FsyncAlways}); err != nil {
		t.Fatal(err)
	}
	l2, err := relisten(addr)
	if err != nil {
		t.Fatal(err)
	}
	go s2.Serve(l2)
	t.Cleanup(func() { s2.Close() })

	// Any exchange that renegotiates observes the new epoch. Stats is a
	// one-shot roundtrip, so the first attempt may just burn the dead
	// pooled connection; the next one re-dials and meets epoch 2.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Stats(); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("stats after restart: %v", err)
		}
	}
	if got := c.ServerEpoch(); got != 2 {
		t.Fatalf("epoch after restart = %d, want 2", got)
	}

	// The stale handle is refused client-side, with a classified error.
	err = c.FetchData(context.Background(), h, &got)
	if !errors.Is(err, ninf.ErrStaleHandle) {
		t.Fatalf("FetchData with a dead incarnation's handle = %v, want ErrStaleHandle", err)
	}

	// The warm set was flushed: the next call must ship full operands
	// again (digest markers alone would be ~KB against a 128 KiB vector).
	clear(w)
	rep3, err := c.Call("rdouble", nv, v, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.BytesOut*4 < rep1.BytesOut {
		t.Fatalf("post-restart call shipped only %d bytes (cold %d): warm set survived the epoch change", rep3.BytesOut, rep1.BytesOut)
	}
	for i := range v {
		if w[i] != 2*v[i] {
			t.Fatalf("post-restart result corrupt at %d", i)
		}
	}
	// A fresh handle minted at the new epoch works.
	h2, _ := c.HandleFor(w)
	if err := c.FetchData(context.Background(), h2, &got); err != nil {
		t.Fatalf("FetchData with a current-epoch handle: %v", err)
	}
}

// TestRestartUnknownJobResubmit pins client re-attachment without a
// journal: a fetch across a journal-less restart surfaces the terminal
// ErrJobNotFound (never retried as a transport fault), and Resubmit
// re-enters the submission under its original idempotency key so the
// job still executes exactly once per incarnation.
func TestRestartUnknownJobResubmit(t *testing.T) {
	var exec1, exec2 tagCounter
	s1 := server.New(server.Config{Hostname: "vol1", PEs: 2}, restartRegistry(t, &exec1))
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s1.Serve(l1)
	t.Cleanup(func() { s1.Close() })
	addr := l1.Addr().String()

	c := newClient(t, func() (net.Conn, error) { return net.Dial("tcp", addr) })
	c.SetRetryPolicy(ninf.RetryPolicy{MaxAttempts: 8, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond})

	const n = 8
	v := []float64{9, 1, 2, 3, 4, 5, 6, 7}
	w := make([]float64, n)
	ctx := testContext(t)
	j, err := c.SubmitContext(ctx, "rdouble", n, v, w)
	if err != nil {
		t.Fatal(err)
	}

	// Journal-less restart on the same address: the job is gone.
	l1.Close()
	s1.Close()
	s2 := server.New(server.Config{Hostname: "vol2", PEs: 2}, restartRegistry(t, &exec2))
	l2, err := relisten(addr)
	if err != nil {
		t.Fatal(err)
	}
	go s2.Serve(l2)
	t.Cleanup(func() { s2.Close() })

	_, err = j.FetchContext(ctx, true)
	if !errors.Is(err, ninf.ErrJobNotFound) {
		t.Fatalf("fetch across journal-less restart = %v, want ErrJobNotFound", err)
	}
	if ninf.Retryable(err) {
		t.Fatal("ErrJobNotFound classified retryable: fetch retries would spin on a terminal condition")
	}
	if errors.Is(err, ninf.ErrNotReady) {
		t.Fatal("ErrJobNotFound conflated with ErrNotReady")
	}

	if err := j.Resubmit(ctx); err != nil {
		t.Fatalf("Resubmit: %v", err)
	}
	if _, err := j.FetchContext(ctx, true); err != nil {
		t.Fatalf("fetch after Resubmit: %v", err)
	}
	for i := range v {
		if w[i] != 2*v[i] {
			t.Fatalf("resubmitted result corrupt at %d: %g", i, w[i])
		}
	}
	if got := exec2.get(9); got != 1 {
		t.Fatalf("resubmitted job executed %d times on the new server, want 1", got)
	}
}
