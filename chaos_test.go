package ninf_test

// The chaos suite proves the resilience layer end to end: a
// multi-client transaction workload runs against three in-process
// servers behind seeded fault injectors (connection resets, partial
// writes, read/write stalls, dial failures), one server is killed
// mid-run, and every call must still complete exactly once on a live
// server — with the circuit breaker and injected-fault counters
// asserted so the suite cannot pass vacuously. A control run with
// retries and failover disabled must fail under the same faults,
// proving the resilience machinery (not luck) carries the workload.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ninf"
	"ninf/internal/faultnet"
	"ninf/internal/library"
	"ninf/internal/metaserver"
	"ninf/internal/protocol"
	"ninf/internal/server"
)

const (
	chaosServers   = 3
	chaosClients   = 4
	chaosRounds    = 13
	chaosCallsPerT = 4 // calls per transaction
	chaosSeed      = 424242
)

// chaosWorld is three fault-wrapped servers behind one metaserver.
type chaosWorld struct {
	meta      *metaserver.Metaserver
	servers   []*server.Server
	injectors []*faultnet.Injector
	names     []string
}

// chaosPlan is the seeded fault plan each server's network runs under:
// roughly one fault per few hundred I/O operations, a sprinkle of
// failed dials, and short stalls so deadlines (not patience) cut
// black holes. SafeOps exempts each fresh connection's first
// operations, so the two-stage RPC's small interface fetch always
// lands and faults concentrate on call transfers — mid-transfer, where
// the paper's fault model lives.
func chaosPlan(seed int64) faultnet.Plan {
	return faultnet.Plan{
		Seed:             seed,
		DialFailProb:     0.05,
		ResetProb:        1.0 / 12,
		PartialWriteProb: 1.0 / 15,
		StallProb:        1.0 / 20,
		StallDuration:    150 * time.Millisecond,
		SafeOps:          2,
	}
}

func buildChaosWorld(t *testing.T, seed int64) *chaosWorld {
	t.Helper()
	w := &chaosWorld{
		meta: metaserver.New(metaserver.Config{
			Policy: metaserver.RoundRobin{},
			// Clients multiplex every concurrent call onto one session
			// per server, so a single injected reset fails every
			// in-flight call at once — consecutive breaker failures
			// arrive in correlated bursts. The threshold must exceed a
			// typical burst, or one fault opens the breaker of a
			// perfectly healthy server.
			FailThreshold:   8,
			BreakerCooldown: 300 * time.Millisecond,
		}),
	}
	for i := 0; i < chaosServers; i++ {
		name := fmt.Sprintf("srv%d", i)
		reg, err := library.NewRegistry()
		if err != nil {
			t.Fatal(err)
		}
		s := server.New(server.Config{Hostname: name, PEs: 4}, reg)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(l)
		t.Cleanup(func() { s.Close() })
		addr := l.Addr().String()
		in := faultnet.New(chaosPlan(seed + int64(i)))
		dial := in.Dialer(func() (net.Conn, error) { return net.Dial("tcp", addr) })
		if err := w.meta.AddServer(name, addr, 100, dial); err != nil {
			t.Fatal(err)
		}
		w.servers = append(w.servers, s)
		w.injectors = append(w.injectors, in)
		w.names = append(w.names, name)
	}
	return w
}

// kill takes server i down the hard way: its network partitions (live
// connections reset mid-transfer, dials refused) and the process
// closes.
func (w *chaosWorld) kill(i int) {
	w.injectors[i].Partition()
	w.servers[i].Close()
}

// chaosWorkload runs the multi-client transaction workload and
// returns every transaction's End error. Each call is dmmul with a
// caller-distinct input, verified against the expected product, so a
// lost or doubly-delivered result is detectable, not just a hang.
func chaosWorkload(t *testing.T, w *chaosWorld, resilient bool, kill func(round int)) (endErrs []error, verified int) {
	t.Helper()
	const n = 8
	type txResult struct {
		err      error
		servers  [][]string
		failover int
	}
	var (
		mu      sync.Mutex
		results []txResult
	)
	var wg sync.WaitGroup
	for c := 0; c < chaosClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < chaosRounds; r++ {
				if c == 0 && kill != nil {
					kill(r)
				}
				tx := ninf.BeginTransaction(w.meta)
				if resilient {
					tx.SetMaxAttempts(2 * chaosServers)
					// Five attempts, not three: on a multiplexed session a
					// call's retry budget also absorbs faults that struck
					// its neighbors' transfers (shared fate), so the budget
					// is sized for bursts, not independent per-call faults.
					tx.SetRetryPolicy(ninf.RetryPolicy{MaxAttempts: 5, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond})
					tx.SetCallTimeout(2 * time.Second)
				} else {
					tx.SetMaxAttempts(1)
					tx.SetRetryPolicy(ninf.NoRetry)
					tx.SetCallTimeout(2 * time.Second)
				}
				type expect struct {
					got  []float64
					want []float64
				}
				var expects []expect
				for k := 0; k < chaosCallsPerT; k++ {
					a := make([]float64, n*n)
					b := make([]float64, n*n)
					got := make([]float64, n*n)
					for j := range a {
						a[j] = float64((c+1)*(r+1) + j)
						b[j] = float64(j%7) + float64(k)
					}
					want := make([]float64, n*n)
					mmul(n, a, b, want)
					expects = append(expects, expect{got: got, want: want})
					tx.Call("dmmul", n, a, b, got)
				}
				err := tx.EndContext(testContext(t))
				res := txResult{err: err, servers: tx.Servers(), failover: tx.Failovers()}
				if err == nil {
					for _, e := range expects {
						for j := range e.want {
							if e.got[j] != e.want[j] {
								t.Errorf("client %d round %d: result differs at %d: %g vs %g", c, r, j, e.got[j], e.want[j])
								break
							}
						}
						mu.Lock()
						verified++
						mu.Unlock()
					}
				}
				mu.Lock()
				results = append(results, res)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	for _, res := range results {
		endErrs = append(endErrs, res.err)
	}
	return endErrs, verified
}

// mmul is the local reference product dmmul is checked against.
func mmul(n int, a, b, c []float64) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// TestChaosTransactionsSurviveFaults is the acceptance scenario: a
// 3-server / 4-client / 208-call seeded chaos run, including a
// mid-run server kill, completes every call exactly once with correct
// results, and the breaker plus the fault counters prove the faults
// happened and were survived.
func TestChaosTransactionsSurviveFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is seconds-long; skipped in -short")
	}
	w := buildChaosWorld(t, chaosSeed)

	var killOnce sync.Once
	killRound := chaosRounds / 2
	kill := func(round int) {
		if round >= killRound {
			killOnce.Do(func() { w.kill(2) })
		}
	}

	endErrs, verified := chaosWorkload(t, w, true, kill)

	total := chaosClients * chaosRounds * chaosCallsPerT
	if total < 200 {
		t.Fatalf("workload too small: %d calls", total)
	}
	for i, err := range endErrs {
		if err != nil {
			t.Errorf("transaction %d failed: %v", i, err)
		}
	}
	// Exactly-once delivery: every call's result verified exactly one
	// time (chaosWorkload verifies each expected output once per
	// call; a duplicated call would overwrite `got` harmlessly with
	// identical data, a lost call fails End and is counted above).
	if verified != total {
		t.Errorf("verified %d/%d call results", verified, total)
	}

	// The faults actually happened: across the three injectors, every
	// category fired.
	var agg faultnet.Counters
	for i, in := range w.injectors {
		c := in.Counters()
		t.Logf("%s: %v", w.names[i], c)
		agg.Dials += c.Dials
		agg.DialFailures += c.DialFailures
		agg.Resets += c.Resets
		agg.PartialWrites += c.PartialWrites
		agg.Stalls += c.Stalls
	}
	if agg.Total() == 0 {
		t.Fatal("no faults injected: the chaos run proved nothing")
	}
	if agg.DialFailures == 0 || agg.Resets == 0 {
		t.Errorf("fault mix missing a category: %v", agg)
	}

	// The killed server's breaker opened, and no call's final
	// (successful) attempt landed on it after the kill.
	killed := w.names[2]
	sawOpen := false
	for _, ev := range w.meta.BreakerEvents() {
		if ev.Server == killed && ev.To == metaserver.BreakerOpen {
			sawOpen = true
		}
	}
	if !sawOpen {
		t.Errorf("breaker for killed server %s never opened; events: %v", killed, w.meta.BreakerEvents())
	}
	for _, s := range w.meta.Servers() {
		if s.Name == killed && s.Breaker == metaserver.BreakerClosed {
			t.Errorf("killed server's breaker ended closed: %+v", s)
		}
	}
}

// TestChaosFailsWithoutRetries is the control: under the same seeded
// faults and mid-run kill, disabling the client retry policy and
// transaction failover makes the workload fail — demonstrating the
// resilience layer, not luck, carries the chaos suite.
func TestChaosFailsWithoutRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is seconds-long; skipped in -short")
	}
	w := buildChaosWorld(t, chaosSeed)
	var killOnce sync.Once
	kill := func(round int) {
		if round >= chaosRounds/2 {
			killOnce.Do(func() { w.kill(2) })
		}
	}
	endErrs, _ := chaosWorkload(t, w, false, kill)
	failed := 0
	for _, err := range endErrs {
		if err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("every transaction succeeded with retries disabled under chaos; the fault plan is too weak to prove anything")
	}
	t.Logf("without retries: %d/%d transactions failed (as expected)", failed, len(endErrs))
}

// TestChaosDeterministicInjection re-runs one injector's dial sequence
// twice under the same plan and requires identical fault decisions:
// the chaos suite's faults are a function of the seed, not the
// weather.
func TestChaosDeterministicInjection(t *testing.T) {
	run := func() []bool {
		in := faultnet.New(chaosPlan(chaosSeed))
		d := in.Dialer(func() (net.Conn, error) {
			a, b := net.Pipe()
			t.Cleanup(func() { a.Close(); b.Close() })
			return a, nil
		})
		var outcomes []bool
		for i := 0; i < 200; i++ {
			c, err := d()
			outcomes = append(outcomes, err == nil)
			if c != nil {
				c.Close()
			}
		}
		return outcomes
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("dial %d: outcome differs across identically-seeded runs", i)
		}
	}
}

// testContext bounds a whole chaos run so a regression hangs the
// suite for a minute, not forever.
func testContext(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestChaosMuxResetNoCorruption: a multiplexed session carries a
// 32-caller dmmul pipeline while the injector resets and cuts frames
// mid-transfer. Every fault kills the whole session — all in-flight
// sequences at once — so the retry layer must re-dial, renegotiate,
// and re-run without ever crossing one caller's reply into another's
// buffers. Per-caller-distinct inputs make demux corruption visible
// as a wrong product, not just a failed call.
func TestChaosMuxResetNoCorruption(t *testing.T) {
	reg, err := library.NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{Hostname: "muxchaos", PEs: 4}, reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	addr := l.Addr().String()

	in := faultnet.New(faultnet.Plan{
		Seed:             chaosSeed + 7,
		ResetProb:        1.0 / 80,
		PartialWriteProb: 1.0 / 80,
		SafeOps:          4, // let the Hello handshake land; faults hit call transfers
	})
	c, err := ninf.NewClient(in.Dialer(func() (net.Conn, error) { return net.Dial("tcp", addr) }))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	// Sized like the calibrated chaos policy: one fault fails every
	// in-flight call on the shared session, so budgets absorb bursts.
	c.SetRetryPolicy(ninf.RetryPolicy{MaxAttempts: 8, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond})

	const n, callers, rounds = 8, 32, 4
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				a := make([]float64, n*n)
				b := make([]float64, n*n)
				got := make([]float64, n*n)
				for j := range a {
					a[j] = float64((w+1)*(r+2) + j)
					b[j] = float64(j%5 + w)
				}
				want := make([]float64, n*n)
				mmul(n, a, b, want)
				if _, err := c.Call("dmmul", n, a, b, got); err != nil {
					errs[w] = fmt.Errorf("round %d: %w", r, err)
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errs[w] = fmt.Errorf("round %d: result differs at %d: %g vs %g", r, j, got[j], want[j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", w, err)
		}
	}

	cnt := in.Counters()
	t.Logf("injected: %v", cnt)
	if cnt.Resets+cnt.PartialWrites == 0 {
		t.Fatal("no resets or mid-frame cuts injected: the run proved nothing")
	}
	// The client is still multiplexing: the faults cost sessions, not
	// the protocol version.
	callOnce(t, c)
	if !c.Multiplexed() {
		t.Error("client fell off the mux path after session faults")
	}
}

// TestChaosMuxPartitionFailover: a 64-call transaction pipelines over
// one server's mux session; mid-pipeline the server partitions (live
// connections reset, new dials refused). Every call must complete
// exactly once — the severed ones re-dialed onto the surviving server
// by the metaserver's failover — with verified results and the
// injector's counters proving the partition actually struck.
func TestChaosMuxPartitionFailover(t *testing.T) {
	meta := metaserver.New(metaserver.Config{
		Policy:          metaserver.RoundRobin{},
		FailThreshold:   8, // correlated session-death bursts, as in buildChaosWorld
		BreakerCooldown: 300 * time.Millisecond,
	})
	var injectors []*faultnet.Injector
	var servers []*server.Server
	for i := 0; i < 2; i++ {
		reg, err := library.NewRegistry()
		if err != nil {
			t.Fatal(err)
		}
		// srv0 serializes execution (PEs: 1) so the 64-call pipeline is
		// still in flight when the partition strikes it.
		pes := 1
		if i == 1 {
			pes = 4
		}
		s := server.New(server.Config{Hostname: fmt.Sprintf("part%d", i), PEs: pes}, reg)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(l)
		t.Cleanup(func() { s.Close() })
		addr := l.Addr().String()
		in := faultnet.New(faultnet.Plan{}) // no probabilistic faults: the partition is the event
		if err := meta.AddServer(fmt.Sprintf("part%d", i), addr, 100, in.Dialer(func() (net.Conn, error) { return net.Dial("tcp", addr) })); err != nil {
			t.Fatal(err)
		}
		injectors = append(injectors, in)
		servers = append(servers, s)
	}

	const n, calls = 16, 64
	tx := ninf.BeginTransaction(meta)
	tx.SetMaxAttempts(4)
	tx.SetRetryPolicy(ninf.RetryPolicy{MaxAttempts: 8, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond})
	tx.SetCallTimeout(5 * time.Second)
	type expect struct{ got, want []float64 }
	var expects []expect
	for k := 0; k < calls; k++ {
		a := make([]float64, n*n)
		b := make([]float64, n*n)
		got := make([]float64, n*n)
		for j := range a {
			a[j] = float64(k + j)
			b[j] = float64(j%9 + 1)
		}
		want := make([]float64, n*n)
		mmul(n, a, b, want)
		expects = append(expects, expect{got: got, want: want})
		tx.Call("dmmul", n, a, b, got)
	}

	// Partition srv0 once the pipeline is demonstrably in flight on it.
	partitioned := make(chan struct{})
	go func() {
		defer close(partitioned)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if servers[0].Stats().TotalCalls >= 4 {
				injectors[0].Partition()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	if err := tx.EndContext(testContext(t)); err != nil {
		t.Fatalf("transaction failed across the partition: %v", err)
	}
	<-partitioned
	if !injectors[0].Partitioned() {
		t.Fatal("partition never fired: the pipeline drained before it was in flight")
	}

	for k, e := range expects {
		for j := range e.want {
			if e.got[j] != e.want[j] {
				t.Errorf("call %d: result differs at %d: %g vs %g", k, j, e.got[j], e.want[j])
				break
			}
		}
	}
	// The failover carried real traffic: the survivor executed calls,
	// and the partition refused at least one re-dial of the dead server.
	if got := servers[1].Stats().TotalCalls; got == 0 {
		t.Error("surviving server executed nothing; no failover happened")
	}
	cnt := injectors[0].Counters()
	t.Logf("partitioned server injected: %v", cnt)
	if cnt.DialFailures == 0 {
		t.Error("no re-dial of the partitioned server was refused; the retry layer never probed it")
	}
}

// TestChaosBulkMidStreamCutExactlyOnce (PR 6 satellite): a mixed
// pipeline — small 8-byte pings and multi-megabyte chunked echoes —
// runs over one multiplexed session while the injector resets and
// cuts connections mid-transfer. Large transfers span hundreds of
// chunk frames, so the seeded resets land inside bulk streams, not
// between them. Every call must still complete exactly once with
// byte-correct results after retry, and no half-reassembled bulk
// buffer may survive on either side (the gauge counts both).
func TestChaosBulkMidStreamCutExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is seconds-long; skipped in -short")
	}
	reg, err := library.NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{Hostname: "bulkchaos", PEs: 4, BulkThreshold: 4096}, reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	addr := l.Addr().String()

	// Transfers are long (a 2 MiB echo is ~16 chunk frames each way plus
	// the pings interleaved between them), so even a low per-op fault
	// rate strikes mid-bulk; SafeOps shields only the Hello handshake.
	in := faultnet.New(faultnet.Plan{
		Seed:             chaosSeed + 21,
		ResetProb:        1.0 / 300,
		PartialWriteProb: 1.0 / 300,
		SafeOps:          4,
	})
	c, err := ninf.NewClient(in.Dialer(func() (net.Conn, error) { return net.Dial("tcp", addr) }))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetBulkThreshold(4096)
	c.SetRetryPolicy(ninf.RetryPolicy{MaxAttempts: 10, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond})

	const bulkCallers, bulkRounds = 3, 3
	const smallCallers, smallRounds = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, bulkCallers*bulkRounds+smallCallers*smallRounds)
	for w := 0; w < bulkCallers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := 256 << 10 // 2 MiB per direction
			for r := 0; r < bulkRounds; r++ {
				data := make([]float64, n)
				for j := range data {
					data[j] = float64((w+1)*(r+1)) + float64(j%1021)
				}
				got := make([]float64, n)
				if _, err := c.Call("echo", n, data, got); err != nil {
					errs <- fmt.Errorf("bulk caller %d round %d: %w", w, r, err)
					return
				}
				for j := range data {
					if got[j] != data[j] {
						errs <- fmt.Errorf("bulk caller %d round %d: corrupted at %d", w, r, j)
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < smallCallers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < smallRounds; r++ {
				data := []float64{float64(w*1000 + r)} // 8-byte payload
				got := make([]float64, 1)
				if _, err := c.Call("echo", 1, data, got); err != nil {
					errs <- fmt.Errorf("small caller %d round %d: %w", w, r, err)
					return
				}
				if got[0] != data[0] {
					errs <- fmt.Errorf("small caller %d round %d: corrupted", w, r)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	cnt := in.Counters()
	t.Logf("injected: %v", cnt)
	if cnt.Resets+cnt.PartialWrites == 0 {
		t.Fatal("no mid-stream faults injected: the run proved nothing")
	}
	if g := protocol.OpenBulkReassemblies(); g != 0 {
		t.Fatalf("half-reassembled bulk buffers leaked across session deaths: gauge = %d", g)
	}
}

// TestChaosBulkPartitionHeals: the connection partitions outright in
// the middle of a mixed 8 B / multi-MiB pipeline, then heals. The
// in-flight bulk transfers die with the session; the retry layer must
// re-dial after the heal and finish every call exactly once, leaving
// no orphaned reassembly buffers from the severed streams.
func TestChaosBulkPartitionHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is seconds-long; skipped in -short")
	}
	reg, err := library.NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{Hostname: "bulkpart", PEs: 4, BulkThreshold: 4096}, reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	addr := l.Addr().String()

	in := faultnet.New(faultnet.Plan{}) // the partition is the only event
	c, err := ninf.NewClient(in.Dialer(func() (net.Conn, error) { return net.Dial("tcp", addr) }))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetBulkThreshold(4096)
	c.SetRetryPolicy(ninf.RetryPolicy{MaxAttempts: 12, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond})

	// Partition once bulk traffic is demonstrably flowing, heal shortly
	// after so retries can land.
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if s.Stats().TotalCalls >= 2 {
				in.Partition()
				time.Sleep(50 * time.Millisecond)
				in.Heal()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const bulkCallers = 2
	const smallCallers, smallRounds = 6, 10
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < bulkCallers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := 512 << 10 // 4 MiB per direction: in flight when the cut lands
			for r := 0; r < 2; r++ {
				data := make([]float64, n)
				for j := range data {
					data[j] = float64(w*7+r) + float64(j%509)
				}
				got := make([]float64, n)
				if _, err := c.Call("echo", n, data, got); err != nil {
					errs <- fmt.Errorf("bulk caller %d round %d: %w", w, r, err)
					return
				}
				for j := range data {
					if got[j] != data[j] {
						errs <- fmt.Errorf("bulk caller %d round %d: corrupted at %d", w, r, j)
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < smallCallers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < smallRounds; r++ {
				data := []float64{float64(w + r)}
				got := make([]float64, 1)
				if _, err := c.Call("echo", 1, data, got); err != nil {
					errs <- fmt.Errorf("small caller %d round %d: %w", w, r, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	cnt := in.Counters()
	t.Logf("partition injected: %v", cnt)
	if cnt.Resets == 0 && cnt.DialFailures == 0 {
		t.Fatal("partition never struck live traffic: the run proved nothing")
	}
	if g := protocol.OpenBulkReassemblies(); g != 0 {
		t.Fatalf("partition leaked reassembly buffers: gauge = %d", g)
	}
}
