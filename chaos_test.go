package ninf_test

// The chaos suite proves the resilience layer end to end: a
// multi-client transaction workload runs against three in-process
// servers behind seeded fault injectors (connection resets, partial
// writes, read/write stalls, dial failures), one server is killed
// mid-run, and every call must still complete exactly once on a live
// server — with the circuit breaker and injected-fault counters
// asserted so the suite cannot pass vacuously. A control run with
// retries and failover disabled must fail under the same faults,
// proving the resilience machinery (not luck) carries the workload.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ninf"
	"ninf/internal/faultnet"
	"ninf/internal/library"
	"ninf/internal/metaserver"
	"ninf/internal/server"
)

const (
	chaosServers   = 3
	chaosClients   = 4
	chaosRounds    = 13
	chaosCallsPerT = 4 // calls per transaction
	chaosSeed      = 424242
)

// chaosWorld is three fault-wrapped servers behind one metaserver.
type chaosWorld struct {
	meta      *metaserver.Metaserver
	servers   []*server.Server
	injectors []*faultnet.Injector
	names     []string
}

// chaosPlan is the seeded fault plan each server's network runs under:
// roughly one fault per few hundred I/O operations, a sprinkle of
// failed dials, and short stalls so deadlines (not patience) cut
// black holes. SafeOps exempts each fresh connection's first
// operations, so the two-stage RPC's small interface fetch always
// lands and faults concentrate on call transfers — mid-transfer, where
// the paper's fault model lives.
func chaosPlan(seed int64) faultnet.Plan {
	return faultnet.Plan{
		Seed:             seed,
		DialFailProb:     0.05,
		ResetProb:        1.0 / 12,
		PartialWriteProb: 1.0 / 15,
		StallProb:        1.0 / 20,
		StallDuration:    150 * time.Millisecond,
		SafeOps:          2,
	}
}

func buildChaosWorld(t *testing.T, seed int64) *chaosWorld {
	t.Helper()
	w := &chaosWorld{
		meta: metaserver.New(metaserver.Config{
			Policy:          metaserver.RoundRobin{},
			FailThreshold:   3,
			BreakerCooldown: 300 * time.Millisecond,
		}),
	}
	for i := 0; i < chaosServers; i++ {
		name := fmt.Sprintf("srv%d", i)
		reg, err := library.NewRegistry()
		if err != nil {
			t.Fatal(err)
		}
		s := server.New(server.Config{Hostname: name, PEs: 4}, reg)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(l)
		t.Cleanup(func() { s.Close() })
		addr := l.Addr().String()
		in := faultnet.New(chaosPlan(seed + int64(i)))
		dial := in.Dialer(func() (net.Conn, error) { return net.Dial("tcp", addr) })
		if err := w.meta.AddServer(name, addr, 100, dial); err != nil {
			t.Fatal(err)
		}
		w.servers = append(w.servers, s)
		w.injectors = append(w.injectors, in)
		w.names = append(w.names, name)
	}
	return w
}

// kill takes server i down the hard way: its network partitions (live
// connections reset mid-transfer, dials refused) and the process
// closes.
func (w *chaosWorld) kill(i int) {
	w.injectors[i].Partition()
	w.servers[i].Close()
}

// chaosWorkload runs the multi-client transaction workload and
// returns every transaction's End error. Each call is dmmul with a
// caller-distinct input, verified against the expected product, so a
// lost or doubly-delivered result is detectable, not just a hang.
func chaosWorkload(t *testing.T, w *chaosWorld, resilient bool, kill func(round int)) (endErrs []error, verified int) {
	t.Helper()
	const n = 8
	type txResult struct {
		err      error
		servers  [][]string
		failover int
	}
	var (
		mu      sync.Mutex
		results []txResult
	)
	var wg sync.WaitGroup
	for c := 0; c < chaosClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < chaosRounds; r++ {
				if c == 0 && kill != nil {
					kill(r)
				}
				tx := ninf.BeginTransaction(w.meta)
				if resilient {
					tx.SetMaxAttempts(2 * chaosServers)
					tx.SetRetryPolicy(ninf.RetryPolicy{MaxAttempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond})
					tx.SetCallTimeout(2 * time.Second)
				} else {
					tx.SetMaxAttempts(1)
					tx.SetRetryPolicy(ninf.NoRetry)
					tx.SetCallTimeout(2 * time.Second)
				}
				type expect struct {
					got  []float64
					want []float64
				}
				var expects []expect
				for k := 0; k < chaosCallsPerT; k++ {
					a := make([]float64, n*n)
					b := make([]float64, n*n)
					got := make([]float64, n*n)
					for j := range a {
						a[j] = float64((c+1)*(r+1) + j)
						b[j] = float64(j%7) + float64(k)
					}
					want := make([]float64, n*n)
					mmul(n, a, b, want)
					expects = append(expects, expect{got: got, want: want})
					tx.Call("dmmul", n, a, b, got)
				}
				err := tx.EndContext(testContext(t))
				res := txResult{err: err, servers: tx.Servers(), failover: tx.Failovers()}
				if err == nil {
					for _, e := range expects {
						for j := range e.want {
							if e.got[j] != e.want[j] {
								t.Errorf("client %d round %d: result differs at %d: %g vs %g", c, r, j, e.got[j], e.want[j])
								break
							}
						}
						mu.Lock()
						verified++
						mu.Unlock()
					}
				}
				mu.Lock()
				results = append(results, res)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	for _, res := range results {
		endErrs = append(endErrs, res.err)
	}
	return endErrs, verified
}

// mmul is the local reference product dmmul is checked against.
func mmul(n int, a, b, c []float64) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// TestChaosTransactionsSurviveFaults is the acceptance scenario: a
// 3-server / 4-client / 208-call seeded chaos run, including a
// mid-run server kill, completes every call exactly once with correct
// results, and the breaker plus the fault counters prove the faults
// happened and were survived.
func TestChaosTransactionsSurviveFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is seconds-long; skipped in -short")
	}
	w := buildChaosWorld(t, chaosSeed)

	var killOnce sync.Once
	killRound := chaosRounds / 2
	kill := func(round int) {
		if round >= killRound {
			killOnce.Do(func() { w.kill(2) })
		}
	}

	endErrs, verified := chaosWorkload(t, w, true, kill)

	total := chaosClients * chaosRounds * chaosCallsPerT
	if total < 200 {
		t.Fatalf("workload too small: %d calls", total)
	}
	for i, err := range endErrs {
		if err != nil {
			t.Errorf("transaction %d failed: %v", i, err)
		}
	}
	// Exactly-once delivery: every call's result verified exactly one
	// time (chaosWorkload verifies each expected output once per
	// call; a duplicated call would overwrite `got` harmlessly with
	// identical data, a lost call fails End and is counted above).
	if verified != total {
		t.Errorf("verified %d/%d call results", verified, total)
	}

	// The faults actually happened: across the three injectors, every
	// category fired.
	var agg faultnet.Counters
	for i, in := range w.injectors {
		c := in.Counters()
		t.Logf("%s: %v", w.names[i], c)
		agg.Dials += c.Dials
		agg.DialFailures += c.DialFailures
		agg.Resets += c.Resets
		agg.PartialWrites += c.PartialWrites
		agg.Stalls += c.Stalls
	}
	if agg.Total() == 0 {
		t.Fatal("no faults injected: the chaos run proved nothing")
	}
	if agg.DialFailures == 0 || agg.Resets == 0 {
		t.Errorf("fault mix missing a category: %v", agg)
	}

	// The killed server's breaker opened, and no call's final
	// (successful) attempt landed on it after the kill.
	killed := w.names[2]
	sawOpen := false
	for _, ev := range w.meta.BreakerEvents() {
		if ev.Server == killed && ev.To == metaserver.BreakerOpen {
			sawOpen = true
		}
	}
	if !sawOpen {
		t.Errorf("breaker for killed server %s never opened; events: %v", killed, w.meta.BreakerEvents())
	}
	for _, s := range w.meta.Servers() {
		if s.Name == killed && s.Breaker == metaserver.BreakerClosed {
			t.Errorf("killed server's breaker ended closed: %+v", s)
		}
	}
}

// TestChaosFailsWithoutRetries is the control: under the same seeded
// faults and mid-run kill, disabling the client retry policy and
// transaction failover makes the workload fail — demonstrating the
// resilience layer, not luck, carries the chaos suite.
func TestChaosFailsWithoutRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is seconds-long; skipped in -short")
	}
	w := buildChaosWorld(t, chaosSeed)
	var killOnce sync.Once
	kill := func(round int) {
		if round >= chaosRounds/2 {
			killOnce.Do(func() { w.kill(2) })
		}
	}
	endErrs, _ := chaosWorkload(t, w, false, kill)
	failed := 0
	for _, err := range endErrs {
		if err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("every transaction succeeded with retries disabled under chaos; the fault plan is too weak to prove anything")
	}
	t.Logf("without retries: %d/%d transactions failed (as expected)", failed, len(endErrs))
}

// TestChaosDeterministicInjection re-runs one injector's dial sequence
// twice under the same plan and requires identical fault decisions:
// the chaos suite's faults are a function of the seed, not the
// weather.
func TestChaosDeterministicInjection(t *testing.T) {
	run := func() []bool {
		in := faultnet.New(chaosPlan(chaosSeed))
		d := in.Dialer(func() (net.Conn, error) {
			a, b := net.Pipe()
			t.Cleanup(func() { a.Close(); b.Close() })
			return a, nil
		})
		var outcomes []bool
		for i := 0; i < 200; i++ {
			c, err := d()
			outcomes = append(outcomes, err == nil)
			if c != nil {
				c.Close()
			}
		}
		return outcomes
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("dial %d: outcome differs across identically-seeded runs", i)
		}
	}
}

// testContext bounds a whole chaos run so a regression hangs the
// suite for a minute, not forever.
func testContext(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}
