package ninf_test

import (
	"testing"
	"time"

	"ninf/internal/server"
)

func TestTraceAccumulates(t *testing.T) {
	_, dial := startServer(t, server.Config{})
	c := newClient(t, dial)

	// Fresh server: empty trace.
	ts, err := c.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 0 {
		t.Errorf("fresh trace = %v", ts)
	}

	for i := 0; i < 3; i++ {
		if _, err := c.Call("busy", 15); err != nil {
			t.Fatal(err)
		}
	}
	n := 64
	data := make([]float64, n)
	if _, err := c.Call("echo", n, data, nil); err != nil {
		t.Fatal(err)
	}

	ts, err = c.Trace()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]server.RoutineTrace{}
	for _, rt := range ts {
		byName[rt.Name] = rt
	}
	busy := byName["busy"]
	if busy.Count != 3 || busy.Failures != 0 {
		t.Errorf("busy trace = %+v", busy)
	}
	if busy.MeanCompute < 10*time.Millisecond {
		t.Errorf("busy mean compute %v, want ≥ 15ms-ish", busy.MeanCompute)
	}
	echo := byName["echo"]
	if echo.Count != 1 {
		t.Errorf("echo trace = %+v", echo)
	}
	if echo.MeanBytes < int64(8*n) {
		t.Errorf("echo mean bytes %d, want ≥ %d", echo.MeanBytes, 8*n)
	}

	// Failures are traced too.
	if _, err := c.Call("busy", -1); err == nil {
		t.Fatal("expected failure")
	}
	ts, _ = c.Trace()
	for _, rt := range ts {
		if rt.Name == "busy" && rt.Failures != 1 {
			t.Errorf("busy failures = %d, want 1", rt.Failures)
		}
	}
}

func TestTraceOrderedByName(t *testing.T) {
	_, dial := startServer(t, server.Config{})
	c := newClient(t, dial)
	if _, err := c.Call("echo", 1, []float64{1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("busy", 1); err != nil {
		t.Fatal(err)
	}
	ts, err := c.Trace()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i].Name < ts[i-1].Name {
			t.Errorf("trace not sorted: %v before %v", ts[i-1].Name, ts[i].Name)
		}
	}
}
