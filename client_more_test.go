package ninf_test

import (
	"errors"
	"net"
	"sync"
	"testing"

	"ninf"
	"ninf/internal/ep"
	"ninf/internal/server"
)

func TestConcurrentCallsOnOneClient(t *testing.T) {
	// A Client serializes blocking calls on its primary connection;
	// concurrent use must be safe and every call must succeed.
	_, dial := startServer(t, server.Config{PEs: 4})
	c := newClient(t, dial)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sx, sy float64
			var pairs int64
			_, err := c.Call("ep", 8, 0, int64(1)<<8, &sx, &sy, &pairs, nil)
			if err == nil && pairs == 0 {
				err = errors.New("no pairs")
			}
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAsyncDialFailure(t *testing.T) {
	// The primary dial works once, then the dialer fails: CallAsync
	// must surface the dial error via Wait, not hang or panic.
	_, realDial := startServer(t, server.Config{})
	calls := 0
	flaky := func() (net.Conn, error) {
		calls++
		if calls == 1 {
			return realDial()
		}
		return nil, errors.New("network down")
	}
	c, err := ninf.NewClient(flaky)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a := c.CallAsync("busy", 1)
	if _, err := a.Wait(); err == nil {
		t.Error("async call with failing dialer succeeded")
	}
}

func TestMaxPayloadEnforced(t *testing.T) {
	_, dial := startServer(t, server.Config{})
	c := newClient(t, dial)
	c.SetMaxPayload(512) // smaller than the echo reply below
	n := 4096
	data := make([]float64, n)
	out := make([]float64, n)
	if _, err := c.Call("echo", n, data, out); err == nil {
		t.Error("oversized reply accepted under MaxPayload")
	}
}

func TestInterfaceCachedAcrossCalls(t *testing.T) {
	_, dial := startServer(t, server.Config{})
	c := newClient(t, dial)
	first, err := c.Interface("busy")
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Interface("busy")
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("interface re-fetched instead of served from cache")
	}
	// The cache also backs calls made after the fetch.
	if _, err := c.Call("busy", 1); err != nil {
		t.Fatal(err)
	}
}

func TestReportDurations(t *testing.T) {
	_, dial := startServer(t, server.Config{})
	c := newClient(t, dial)
	rep, err := c.Call("busy", 25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ComputeTime().Milliseconds() < 20 {
		t.Errorf("compute time %v, want ≥ 25ms-ish", rep.ComputeTime())
	}
	if rep.Total() < rep.ComputeTime() {
		t.Error("total < compute")
	}
	if rep.Response() < 0 || rep.Wait() < 0 {
		t.Errorf("negative response/wait: %v %v", rep.Response(), rep.Wait())
	}
	if rep.Throughput() <= 0 {
		t.Error("non-positive throughput")
	}
}

func TestEPRangeMergeViaAsync(t *testing.T) {
	// Async fan-out over a single server must still merge exactly
	// (regression guard for interface-cache races between async
	// connections).
	_, dial := startServer(t, server.Config{PEs: 2})
	c := newClient(t, dial)
	m := 12
	total := int64(1) << m
	parts := 8
	sx := make([]float64, parts)
	sy := make([]float64, parts)
	pairs := make([]int64, parts)
	asyncs := make([]*ninf.AsyncCall, parts)
	for i := range asyncs {
		first := total * int64(i) / int64(parts)
		last := total * int64(i+1) / int64(parts)
		asyncs[i] = c.CallAsync("ep", m, first, last-first, &sx[i], &sy[i], &pairs[i], nil)
	}
	var sum int64
	for i, a := range asyncs {
		if _, err := a.Wait(); err != nil {
			t.Fatalf("part %d: %v", i, err)
		}
		sum += pairs[i]
	}
	want, err := ep.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if sum != want.Pairs {
		t.Errorf("merged pairs %d, want %d", sum, want.Pairs)
	}
}
