package ninf

import (
	"fmt"
	"net"
	"sync"

	"ninf/internal/protocol"
)

// A CallbackFunc is a client-side function a running Ninf executable
// may invoke during a blocking call (§2.3's "client callback
// functions"). The payload format is an agreement between the
// executable and the callback; return data travels back to the
// executable, and a returned error is surfaced there as a remote
// error.
type CallbackFunc func(data []byte) ([]byte, error)

// callbackRegistry is embedded in Client.
type callbackRegistry struct {
	mu  sync.RWMutex
	fns map[string]CallbackFunc
}

// RegisterCallback makes fn invokable by server executables under the
// given name during this client's blocking calls. Passing nil removes
// the registration. Callbacks need the quiet parked stream of a
// lockstep call, so registering one retires any live multiplexed
// session and pins subsequent calls to the lockstep paths until all
// callbacks are removed (see session.go).
func (c *Client) RegisterCallback(name string, fn CallbackFunc) {
	c.cb.mu.Lock()
	if c.cb.fns == nil {
		c.cb.fns = make(map[string]CallbackFunc)
	}
	if fn == nil {
		delete(c.cb.fns, name)
	} else {
		c.cb.fns[name] = fn
	}
	registered := len(c.cb.fns) > 0
	c.cb.mu.Unlock()
	if registered {
		c.closeSession()
	}
}

func (c *Client) lookupCallback(name string) CallbackFunc {
	c.cb.mu.RLock()
	defer c.cb.mu.RUnlock()
	return c.cb.fns[name]
}

// callRoundTrip performs the MsgCall exchange, answering any
// MsgCallback frames the server interleaves before the final reply.
// It consumes req (released once written) and returns the reply in a
// pooled buffer the caller must Release after decoding.
func (c *Client) callRoundTrip(conn net.Conn, req *protocol.Buffer) (protocol.MsgType, *protocol.Buffer, error) {
	if conn == nil {
		req.Release()
		return 0, nil, errClientClosed
	}
	err := protocol.WriteFrameBuf(conn, protocol.MsgCall, req)
	req.Release()
	if err != nil {
		return 0, nil, err
	}
	for {
		typ, fb, err := protocol.ReadFrameBuf(conn, c.maxPayload)
		if err != nil {
			return 0, nil, err
		}
		switch typ {
		case protocol.MsgCallback:
			err := c.answerCallback(conn, fb.Payload())
			fb.Release()
			if err != nil {
				return 0, nil, err
			}
		case protocol.MsgError:
			er, derr := protocol.DecodeErrorReply(fb.Payload())
			fb.Release()
			if derr != nil {
				return 0, nil, derr
			}
			return 0, nil, &protocol.RemoteError{Code: er.Code, Detail: er.Detail}
		default:
			return typ, fb, nil
		}
	}
}

// answerCallback runs the registered function and replies. Unknown
// names and function errors are reported to the server as MsgError;
// the call itself keeps waiting.
func (c *Client) answerCallback(conn net.Conn, payload []byte) error {
	req, err := protocol.DecodeCallbackRequest(payload)
	if err != nil {
		return err
	}
	fn := c.lookupCallback(req.Name)
	if fn == nil {
		return protocol.WriteFrame(conn, protocol.MsgError,
			protocol.EncodeErrorReply(protocol.CodeUnknownRoutine,
				fmt.Sprintf("no client callback %q", req.Name)))
	}
	data, err := fn(req.Data)
	if err != nil {
		return protocol.WriteFrame(conn, protocol.MsgError,
			protocol.EncodeErrorReply(protocol.CodeExecFailed, err.Error()))
	}
	reply := protocol.CallbackReply{Data: data}
	return protocol.WriteFrame(conn, protocol.MsgCallbackOK, reply.Encode())
}
