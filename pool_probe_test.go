package ninf

import (
	"io"
	"net"
	"testing"
	"time"
)

// timeoutErr mimics the net.Error a deadline-expired read returns.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// scriptedConn is a wrapped, non-*net.TCPConn connection (it does not
// implement syscall.Conn, so connAlive must take the fallback
// short-deadline probe path). It records every SetReadDeadline call.
type scriptedConn struct {
	net.Conn // nil; panics if an unscripted method is hit

	readN     int
	readErr   error
	deadlines []time.Time
	failSetAt int // 1-based index of the SetReadDeadline call to fail
}

func (c *scriptedConn) Read(p []byte) (int, error) { return c.readN, c.readErr }

func (c *scriptedConn) SetReadDeadline(t time.Time) error {
	c.deadlines = append(c.deadlines, t)
	if c.failSetAt == len(c.deadlines) {
		return timeoutErr{}
	}
	return nil
}

// requireRestored asserts the probe left the connection with its zero
// deadline restored as the final action.
func requireRestored(t *testing.T, c *scriptedConn) {
	t.Helper()
	if len(c.deadlines) < 2 {
		t.Fatalf("want probe-set and restore SetReadDeadline calls, got %d", len(c.deadlines))
	}
	if last := c.deadlines[len(c.deadlines)-1]; !last.IsZero() {
		t.Fatalf("final SetReadDeadline = %v, want zero time (deadline restored)", last)
	}
}

func TestConnAliveFallbackHealthy(t *testing.T) {
	c := &scriptedConn{readErr: timeoutErr{}}
	if !connAlive(c) {
		t.Fatal("idle connection whose probe read times out should be alive")
	}
	requireRestored(t, c)
}

func TestConnAliveFallbackEOF(t *testing.T) {
	c := &scriptedConn{readErr: io.EOF}
	if connAlive(c) {
		t.Fatal("connection reporting EOF should be dead")
	}
	requireRestored(t, c)
}

func TestConnAliveFallbackUnsolicitedData(t *testing.T) {
	c := &scriptedConn{readN: 1}
	if connAlive(c) {
		t.Fatal("connection with unsolicited pending data should be dead")
	}
	requireRestored(t, c)
}

func TestConnAliveFallbackRestoreFailure(t *testing.T) {
	// The probe read "succeeds" as a timeout (healthy), but the zero
	// deadline cannot be restored: the connection must be discarded,
	// or the stale deadline would fail the next real read.
	c := &scriptedConn{readErr: timeoutErr{}, failSetAt: 2}
	if connAlive(c) {
		t.Fatal("connection whose deadline cannot be restored must be discarded")
	}
}

func TestConnAliveFallbackProbeSetFailure(t *testing.T) {
	// If even the probe deadline cannot be set, the probe is skipped
	// and the connection given the benefit of the doubt — nothing was
	// left to restore.
	c := &scriptedConn{failSetAt: 1}
	if !connAlive(c) {
		t.Fatal("connection that cannot set deadlines should skip the probe")
	}
	if len(c.deadlines) != 1 {
		t.Fatalf("want exactly the failed probe-set call, got %d calls", len(c.deadlines))
	}
}

// TestConnAlivePipe exercises the fallback against a real (but
// non-TCP) net.Pipe connection end to end.
func TestConnAlivePipe(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	if !connAlive(a) {
		t.Fatal("quiet pipe connection should probe alive")
	}

	// Pending unsolicited data means the stream is out of frame sync.
	go b.Write([]byte{0xff})
	time.Sleep(10 * time.Millisecond)
	if connAlive(a) {
		t.Fatal("pipe with pending data should probe dead")
	}
}
