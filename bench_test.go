package ninf_test

// One benchmark per paper artifact: each runs the corresponding
// experiment from internal/experiments in quick mode (smaller sweeps,
// same scenarios). cmd/ninfbench runs the full-size versions and
// prints the paper-shaped rows; EXPERIMENTS.md records the comparison.

import (
	"bytes"
	"net"
	"testing"

	"ninf"
	"ninf/internal/experiments"
	"ninf/internal/library"
	"ninf/internal/linpack"
	"ninf/internal/machine"
	"ninf/internal/netmodel"
	"ninf/internal/ninfsim"
	"ninf/internal/server"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := e.Run(&buf, experiments.Options{Quick: true, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
		if buf.Len() == 0 {
			b.Fatal("experiment produced no output")
		}
	}
}

func BenchmarkFig3LANSingleSPARC(b *testing.B) { benchExperiment(b, "fig3-lan-single-sparc") }
func BenchmarkFig4LANSingleAlpha(b *testing.B) { benchExperiment(b, "fig4-lan-single-alpha") }
func BenchmarkFig5Throughput(b *testing.B)     { benchExperiment(b, "fig5-throughput") }
func BenchmarkTable3LAN1PE(b *testing.B)       { benchExperiment(b, "table3-lan-1pe") }
func BenchmarkTable4LAN4PE(b *testing.B)       { benchExperiment(b, "table4-lan-4pe") }
func BenchmarkTable5LANSMP(b *testing.B)       { benchExperiment(b, "table5-lan-smp") }
func BenchmarkFig7LANSurface(b *testing.B)     { benchExperiment(b, "fig7-lan-surface") }
func BenchmarkTable6WAN1PE(b *testing.B)       { benchExperiment(b, "table6-wan-1pe") }
func BenchmarkTable7WAN4PE(b *testing.B)       { benchExperiment(b, "table7-wan-4pe") }
func BenchmarkFig8WANSurface(b *testing.B)     { benchExperiment(b, "fig8-wan-surface") }
func BenchmarkFig10MultiSite(b *testing.B)     { benchExperiment(b, "fig10-multisite") }
func BenchmarkTable8EP(b *testing.B)           { benchExperiment(b, "table8-ep") }
func BenchmarkFig11EPMetaserver(b *testing.B)  { benchExperiment(b, "fig11-ep-metaserver") }
func BenchmarkAblationScheduling(b *testing.B) { benchExperiment(b, "ablation-scheduling") }
func BenchmarkAblationTwoPhase(b *testing.B)   { benchExperiment(b, "ablation-twophase") }

// BenchmarkNinfCallRoundTrip measures the end-to-end latency of a
// minimal Ninf_call on the real system over loopback TCP: two-stage
// RPC already resolved, 80-byte payloads.
func BenchmarkNinfCallRoundTrip(b *testing.B) {
	c, cleanup := benchClient(b, server.Config{})
	defer cleanup()
	in := make([]float64, 8)
	out := make([]float64, 8)
	if _, err := c.Call("echo", 8, in, out); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("echo", 8, in, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNinfCallMatrix measures a remote dmmul of order 64,
// including XDR marshalling of three 32 KiB matrices.
func BenchmarkNinfCallMatrix(b *testing.B) {
	c, cleanup := benchClient(b, server.Config{})
	defer cleanup()
	n := 64
	a := make([]float64, n*n)
	linpack.Matgen(a, n)
	bb := make([]float64, n*n)
	copy(bb, a)
	out := make([]float64, n*n)
	b.SetBytes(int64(3 * 8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("dmmul", n, a, bb, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCall measures end-to-end Ninf_call latency and allocation
// over loopback TCP across the payload spectrum: 8 B (control-plane
// floor), 64 KiB (typical argument vector), and 8 MiB (n=1000-class
// matrix traffic). With pooled frame buffers the steady-state alloc
// count is flat across sizes.
func BenchmarkCall(b *testing.B) {
	sizes := []struct {
		name string
		n    int // float64 elements: payload is 8*n bytes each way
	}{
		{"8B", 1},
		{"64KiB", 8192},
		{"8MiB", 1 << 20},
	}
	for _, sz := range sizes {
		b.Run(sz.name, func(b *testing.B) {
			c, cleanup := benchClient(b, server.Config{})
			defer cleanup()
			in := make([]float64, sz.n)
			for i := range in {
				in[i] = float64(i)
			}
			out := make([]float64, sz.n)
			if _, err := c.Call("echo", sz.n, in, out); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(2 * 8 * sz.n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Call("echo", sz.n, in, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCallAsync measures the same exchange through the pooled
// async path, one call in flight at a time, so the cost of pool
// checkout (health probe included) is visible.
func BenchmarkCallAsync(b *testing.B) {
	c, cleanup := benchClient(b, server.Config{})
	defer cleanup()
	in := make([]float64, 8)
	out := make([]float64, 8)
	if _, err := c.CallAsync("echo", 8, in, out).Wait(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CallAsync("echo", 8, in, out).Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorCell measures the discrete-event simulator on one
// Table 3 cell (n=1000, c=8, 1600 simulated seconds).
func BenchmarkSimulatorCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ninfsim.Run(ninfsim.Config{
			Server: machine.MustCatalog("j90"), Mode: ninfsim.TaskParallel,
			Net: netmodel.LANJ90(8), Workload: ninfsim.Linpack, N: 1000,
			Duration: 1600, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Times() == 0 {
			b.Fatal("no calls simulated")
		}
	}
}

func benchClient(b *testing.B, cfg server.Config) (*ninf.Client, func()) {
	b.Helper()
	reg, err := library.NewRegistry()
	if err != nil {
		b.Fatal(err)
	}
	s := server.New(cfg, reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go s.Serve(l)
	c, err := ninf.Dial("tcp", l.Addr().String())
	if err != nil {
		s.Close()
		b.Fatal(err)
	}
	return c, func() {
		c.Close()
		s.Close()
	}
}

func BenchmarkAblationMPPSched(b *testing.B) { benchExperiment(b, "ablation-mpp-sched") }

// BenchmarkTransactionFanOut measures a 4-call EP transaction through
// a metaserver-less single-server scheduler: dependency analysis,
// placement, async fan-out, and merge.
func BenchmarkTransactionFanOut(b *testing.B) {
	reg, err := library.NewRegistry()
	if err != nil {
		b.Fatal(err)
	}
	s := server.New(server.Config{PEs: 4}, reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()
	addr := l.Addr().String()
	sched := ninf.SingleServer("s", func() (net.Conn, error) { return net.Dial("tcp", addr) })

	m := 10
	total := int64(1) << m
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sx := make([]float64, 4)
		sy := make([]float64, 4)
		pairs := make([]int64, 4)
		tx := ninf.BeginTransaction(sched)
		for p := 0; p < 4; p++ {
			first := total * int64(p) / 4
			last := total * int64(p+1) / 4
			tx.Call("ep", m, first, last-first, &sx[p], &sy[p], &pairs[p], nil)
		}
		if err := tx.End(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSMPThreads(b *testing.B) { benchExperiment(b, "ablation-smp-threads") }
