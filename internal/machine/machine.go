// Package machine models the compute platforms of the paper's testbed
// as performance curves: per-PE LINPACK rate as a function of problem
// size (a vector machine ramps with n, a scalar workstation is nearly
// flat), data-parallel efficiency across PEs, EP kernel rates, and the
// fork&exec overhead of the Ninf server process.
//
// The catalog values are calibrated against the paper's own numbers:
// J90 Local ≈ 600 Mflops at n=1600 on 4 PEs (§3.2), client-observed
// single-client performance in Tables 3/4, the Local curves of
// Figures 3/4, and the EP rates of Table 8. The simulator consumes
// these curves; the unit tests pin the calibration points so drift is
// caught.
package machine

import "fmt"

// A Machine describes one platform.
type Machine struct {
	Name string
	// PEs is the processor count available to Ninf executables.
	PEs int
	// PeakMflops is the asymptotic per-PE LINPACK rate (large n).
	PeakMflops float64
	// HalfN is the problem size at which a PE reaches half its peak
	// (n_1/2): large for vector pipes, small for scalar machines.
	HalfN float64
	// ParallelEff is the efficiency of data-parallel execution on
	// all PEs (libSci-style sgetrf on the J90).
	ParallelEff float64
	// ParallelOverhead is the fixed per-call cost of a data-parallel
	// invocation in seconds (fork/join, vector startup).
	ParallelOverhead float64
	// EPMopsPerPE is the per-PE rate on the NAS EP kernel in
	// Mops/s (scalar-dominated, so vector machines are slow here).
	EPMopsPerPE float64
	// ForkOverhead is the fork&exec cost of launching a Ninf
	// executable, the floor of the paper's "wait" column.
	ForkOverhead float64
	// XDRMBps is the rate at which one PE marshals/unmarshals XDR
	// data, charging server CPU during transfers.
	XDRMBps float64
	// BaseUtil is the background CPU utilization of the OS plus the
	// Ninf server daemon.
	BaseUtil float64
}

// LinpackRate1 returns the one-PE LINPACK rate in flops/s for order n,
// following the classic pipeline model r(n) = R∞ · n/(n + n_1/2).
func (m *Machine) LinpackRate1(n int) float64 {
	fn := float64(n)
	return m.PeakMflops * 1e6 * fn / (fn + m.HalfN)
}

// LinpackRateAll returns the all-PE data-parallel LINPACK rate in
// flops/s for order n (excluding the fixed ParallelOverhead).
func (m *Machine) LinpackRateAll(n int) float64 {
	return m.LinpackRate1(n) * float64(m.PEs) * m.ParallelEff
}

// LocalMflops returns the machine's local (no Ninf) LINPACK
// performance in Mflops for order n — the "Local" curves of
// Figures 3 and 4, which use a single PE on workstations.
func (m *Machine) LocalMflops(n int) float64 {
	return m.LinpackRate1(n) / 1e6
}

// LocalMflopsAll returns the all-PE local performance in Mflops,
// matching the paper's "J90 Local achieves 600 Mflops when n=1600".
func (m *Machine) LocalMflopsAll(n int) float64 {
	return m.LinpackRateAll(n) / 1e6
}

// Catalog returns the named machine. Names: supersparc, ultrasparc,
// alpha, alpha-std, j90, sparc-smp, alpha-node.
func Catalog(name string) (*Machine, error) {
	m, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("machine: unknown machine %q", name)
	}
	c := *m
	return &c, nil
}

// MustCatalog is Catalog for known-good names in tests and examples.
func MustCatalog(name string) *Machine {
	m, err := Catalog(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Names lists the catalog entries.
func Names() []string {
	return []string{"supersparc", "ultrasparc", "alpha", "alpha-std", "j90", "sparc-smp", "alpha-node"}
}

var catalog = map[string]*Machine{
	// SuperSPARC (SPARCstation-class client, ~50 MHz). Figure 3:
	// Local ≈ 10 Mflops, nearly flat in n.
	"supersparc": {
		Name: "SuperSPARC", PEs: 1,
		PeakMflops: 11, HalfN: 40,
		ParallelEff: 1, EPMopsPerPE: 0.5,
		ForkOverhead: 0.02, XDRMBps: 4, BaseUtil: 0.02,
	},
	// UltraSPARC client. Figure 3: Local ≈ 35 Mflops.
	"ultrasparc": {
		Name: "UltraSPARC", PEs: 1,
		PeakMflops: 37, HalfN: 50,
		ParallelEff: 1, EPMopsPerPE: 1.2,
		ForkOverhead: 0.015, XDRMBps: 7, BaseUtil: 0.02,
	},
	// DEC Alpha with the blocked glub4/gslv4 routines. Figure 4:
	// crossover with J90 Ninf_call at n ≈ 800–1000 puts Local near
	// 90 Mflops at large n.
	"alpha": {
		Name: "Alpha", PEs: 1,
		PeakMflops: 95, HalfN: 90,
		ParallelEff: 1, EPMopsPerPE: 2.0,
		ForkOverhead: 0.01, XDRMBps: 8, BaseUtil: 0.02,
	},
	// The same Alpha running the standard, non-blocked LINPACK:
	// crossover at n ≈ 400–600 → Local near 50 Mflops.
	"alpha-std": {
		Name: "Alpha (standard Linpack)", PEs: 1,
		PeakMflops: 50, HalfN: 60,
		ParallelEff: 1, EPMopsPerPE: 2.0,
		ForkOverhead: 0.01, XDRMBps: 8, BaseUtil: 0.02,
	},
	// Cray J90, 4 vector PEs. Calibration (Tables 3/4): one-PE rate
	// ≈ 168 Mflops at n=600 and ≈ 184 at n=1400; 4-PE libSci rate
	// ≈ 510–560 Mflops at large n with ~0.13 s parallel startup;
	// Local(1600) on 4 PEs ≈ 600 Mflops (§3.2). EP runs on the
	// scalar unit: Table 8 gives 0.167 Mops per task.
	"j90": {
		Name: "Cray J90", PEs: 4,
		PeakMflops: 200, HalfN: 115,
		ParallelEff: 0.76, ParallelOverhead: 0.13,
		EPMopsPerPE:  0.168,
		ForkOverhead: 0.025, XDRMBps: 1.2, BaseUtil: 0.04,
	},
	// SuperSPARC SMP server (16 processors, Solaris 2.5). Table 5:
	// per-client performance ≈ 3.8 Mflops at n=600 → per-PE rate
	// ≈ 5 Mflops with the unblocked routine.
	"sparc-smp": {
		Name: "SuperSPARC SMP", PEs: 16,
		PeakMflops: 5.5, HalfN: 40,
		ParallelEff: 0.6, ParallelOverhead: 0.05,
		EPMopsPerPE:  0.5,
		ForkOverhead: 0.06, XDRMBps: 1.5, BaseUtil: 0.18,
	},
	// One node of the 32-node Alpha cluster used in the Figure 11
	// metaserver experiment.
	"alpha-node": {
		Name: "Alpha cluster node", PEs: 1,
		PeakMflops: 95, HalfN: 90,
		ParallelEff: 1, EPMopsPerPE: 2.0,
		ForkOverhead: 0.01, XDRMBps: 8, BaseUtil: 0.02,
	},
}
