package machine

import "testing"

func TestCatalogNames(t *testing.T) {
	for _, n := range Names() {
		m, err := Catalog(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if m.PEs < 1 || m.PeakMflops <= 0 || m.HalfN < 0 {
			t.Errorf("%s: implausible %+v", n, m)
		}
	}
	if _, err := Catalog("cray-3"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestCatalogReturnsCopies(t *testing.T) {
	a := MustCatalog("j90")
	a.PeakMflops = 1
	b := MustCatalog("j90")
	if b.PeakMflops == 1 {
		t.Error("catalog entries are shared, mutation leaked")
	}
}

// TestJ90Calibration pins the curves to the paper's measurements.
func TestJ90Calibration(t *testing.T) {
	j90 := MustCatalog("j90")

	// §3.2: "J90's Local achieves 600 Mflops when n=1600" (4 PE).
	if got := j90.LocalMflopsAll(1600); got < 500 || got > 650 {
		t.Errorf("J90 4-PE Local(1600) = %.0f Mflops, want ≈ 600", got)
	}
	// Table 3 back-calculation: one-PE rate ≈ 168 Mflops at n=600.
	if got := j90.LocalMflops(600); got < 150 || got > 185 {
		t.Errorf("J90 1-PE rate(600) = %.0f, want ≈ 168", got)
	}
	// and ≈ 185 Mflops at n=1400.
	if got := j90.LocalMflops(1400); got < 170 || got > 200 {
		t.Errorf("J90 1-PE rate(1400) = %.0f, want ≈ 185", got)
	}
	// Vector machine: strong ramp between n=100 and n=1600.
	if j90.LocalMflops(100)/j90.LocalMflops(1600) > 0.6 {
		t.Error("J90 curve too flat for a vector machine")
	}
}

func TestWorkstationsNearlyFlat(t *testing.T) {
	for _, name := range []string{"supersparc", "ultrasparc", "alpha"} {
		m := MustCatalog(name)
		ratio := m.LocalMflops(200) / m.LocalMflops(1600)
		if ratio < 0.7 {
			t.Errorf("%s: Local(200)/Local(1600) = %.2f, want nearly flat (Figure 3)", name, ratio)
		}
	}
}

func TestClientHierarchy(t *testing.T) {
	// Figure 3/4 ordering at n = 1000: SuperSPARC < UltraSPARC <
	// Alpha-std < Alpha-opt < J90 (4PE).
	ss := MustCatalog("supersparc").LocalMflops(1000)
	us := MustCatalog("ultrasparc").LocalMflops(1000)
	as := MustCatalog("alpha-std").LocalMflops(1000)
	ao := MustCatalog("alpha").LocalMflops(1000)
	j4 := MustCatalog("j90").LocalMflopsAll(1000)
	if !(ss < us && us < as && as < ao && ao < j4) {
		t.Errorf("hierarchy violated: ss=%.0f us=%.0f astd=%.0f aopt=%.0f j90=%.0f", ss, us, as, ao, j4)
	}
	// Figure 3 anchors.
	if ss < 8 || ss > 13 {
		t.Errorf("SuperSPARC local = %.1f, want ≈ 10", ss)
	}
	if us < 30 || us > 40 {
		t.Errorf("UltraSPARC local = %.1f, want ≈ 35", us)
	}
}

func TestEPRates(t *testing.T) {
	// Table 8: one EP task on the J90 delivers ≈ 0.167 Mops.
	j90 := MustCatalog("j90")
	if j90.EPMopsPerPE < 0.15 || j90.EPMopsPerPE > 0.18 {
		t.Errorf("J90 EP rate %.3f, want ≈ 0.167", j90.EPMopsPerPE)
	}
	// The Alpha nodes are much faster on the scalar EP kernel.
	if MustCatalog("alpha-node").EPMopsPerPE < 5*j90.EPMopsPerPE {
		t.Error("Alpha node should dominate J90 on EP")
	}
}

func TestDataParallelGain(t *testing.T) {
	j90 := MustCatalog("j90")
	// 4-PE rate must beat 1-PE by well over 2× (Table 4 vs Table 3
	// single-client performance edge).
	if j90.LinpackRateAll(1400) < 2.5*j90.LinpackRate1(1400) {
		t.Error("data-parallel gain too small")
	}
}
