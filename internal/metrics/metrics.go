// Package metrics provides the small statistical aggregates the
// paper's tables report: max/min/mean triples over per-call series,
// plus percentile helpers used by the ablation benchmarks.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// A Series accumulates scalar observations.
type Series struct {
	vals   []float64
	sorted []float64 // memoized sorted copy; nil when stale
}

// Add appends an observation.
func (s *Series) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = nil
}

// N is the number of observations.
func (s *Series) N() int { return len(s.vals) }

// Max returns the maximum (0 when empty).
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.vals {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Min returns the minimum (0 when empty).
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.vals {
		if v < m {
			m = v
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// Mean returns the arithmetic mean (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank
// on a sorted copy. The copy is memoized across calls and invalidated
// by Add, so reporting many percentiles from one series sorts once.
func (s *Series) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if s.sorted == nil {
		s.sorted = append([]float64(nil), s.vals...)
		sort.Float64s(s.sorted)
	}
	sorted := s.sorted
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Triple formats the paper's max/min/mean cell.
func (s *Series) Triple(format string) string {
	return fmt.Sprintf(format+"/"+format+"/"+format, s.Max(), s.Min(), s.Mean())
}
