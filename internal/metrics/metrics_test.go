package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptySeries(t *testing.T) {
	var s Series
	if s.Max() != 0 || s.Min() != 0 || s.Mean() != 0 || s.Percentile(50) != 0 || s.N() != 0 {
		t.Error("empty series not all-zero")
	}
}

func TestBasics(t *testing.T) {
	var s Series
	for _, v := range []float64{3, 1, 4, 1, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Max() != 5 || s.Min() != 1 {
		t.Errorf("n=%d max=%g min=%g", s.N(), s.Max(), s.Min())
	}
	if math.Abs(s.Mean()-2.8) > 1e-12 {
		t.Errorf("mean = %g", s.Mean())
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("p50 = %g", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %g", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 = %g", got)
	}
	if got := s.Triple("%.1f"); got != "5.0/1.0/2.8" {
		t.Errorf("triple = %q", got)
	}
}

func TestPercentileMemoInvalidatedByAdd(t *testing.T) {
	var s Series
	for _, v := range []float64{9, 2, 7} {
		s.Add(v)
	}
	if got := s.Percentile(100); got != 9 {
		t.Fatalf("p100 = %g, want 9", got)
	}
	if s.sorted == nil {
		t.Fatal("sorted copy not memoized after Percentile")
	}
	// A second call must reuse the cached slice, not re-sort.
	cached := &s.sorted[0]
	if got := s.Percentile(0); got != 2 {
		t.Fatalf("p0 = %g, want 2", got)
	}
	if &s.sorted[0] != cached {
		t.Error("Percentile re-sorted despite no intervening Add")
	}
	// Add must invalidate so new observations are seen.
	s.Add(11)
	if s.sorted != nil {
		t.Error("Add did not invalidate the memoized copy")
	}
	if got := s.Percentile(100); got != 11 {
		t.Errorf("p100 after Add = %g, want 11", got)
	}
	// The memo must never reorder the raw observations.
	if s.vals[0] != 9 || s.vals[3] != 11 {
		t.Errorf("vals reordered: %v", s.vals)
	}
}

func BenchmarkPercentile(b *testing.B) {
	var s Series
	for i := 0; i < 10000; i++ {
		s.Add(float64(i * 7919 % 10007))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Percentile(50)
		s.Percentile(95)
		s.Percentile(99)
	}
}

func TestProperties(t *testing.T) {
	f := func(vals []float64) bool {
		var s Series
		for _, v := range vals {
			// Exclude values whose sum could overflow: the mean of
			// near-MaxFloat64 inputs is legitimately ±Inf and the
			// ordering property does not apply.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
				return true
			}
			s.Add(v)
		}
		if len(vals) == 0 {
			return true
		}
		return s.Min() <= s.Mean() && s.Mean() <= s.Max() &&
			s.Percentile(50) >= s.Min() && s.Percentile(50) <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
