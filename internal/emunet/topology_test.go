package emunet

import (
	"net"
	"sync"
	"testing"
	"time"

	"ninf"
	"ninf/internal/library"
	"ninf/internal/metrics"
	"ninf/internal/netmodel"
	"ninf/internal/server"
)

func startLibServer(t *testing.T) func() (net.Conn, error) {
	t.Helper()
	reg, err := library.NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{PEs: 4}, reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	addr := l.Addr().String()
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

func TestBuildValidation(t *testing.T) {
	raw := startLibServer(t)
	if _, err := Build(netmodel.Spec{Name: "bad"}, raw, 1); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := Build(netmodel.LANJ90(1), nil, 1); err == nil {
		t.Error("nil dialer accepted")
	}
	n, err := Build(netmodel.MultiSiteWAN(2), raw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n.Clients() != 8 {
		t.Errorf("clients = %d", n.Clients())
	}
	if n.Site(0) != "Ocha-U" || n.Site(7) != "TITech" {
		t.Errorf("sites = %s … %s", n.Site(0), n.Site(7))
	}
	if n.Site(-1) != "" || n.Site(99) != "" {
		t.Error("out-of-range site not empty")
	}
	if _, err := n.Dialer(99); err == nil {
		t.Error("out-of-range dialer accepted")
	}
	if n.ServerLink() == nil || n.SharedLink("ochau-uplink") == nil {
		t.Error("links not exposed")
	}
	if n.SharedLink("nope") != nil {
		t.Error("unknown link not nil")
	}
}

// TestMultiSiteBeatsSingleSiteLive is the §4.2.3 result on the live
// network built straight from the netmodel spec: the same client count
// moves far more aggregate data from four sites than from one. Scaled
// 50× so the test runs in ~2 s while preserving the ratios.
func TestMultiSiteBeatsSingleSiteLive(t *testing.T) {
	raw := startLibServer(t)
	const scale = 50
	elems := 64 << 10 // 512 KiB per direction per call

	run := func(spec netmodel.Spec) (aggregateMBps float64) {
		nw, err := Build(spec, raw, scale)
		if err != nil {
			t.Fatal(err)
		}
		// Connect and resolve interfaces first so the timed window
		// contains only shaped transfers.
		clients := make([]*ninf.Client, nw.Clients())
		for i := range clients {
			dial, err := nw.Dialer(i)
			if err != nil {
				t.Fatal(err)
			}
			c, err := ninf.NewClient(dial)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Interface("echo"); err != nil {
				t.Fatal(err)
			}
			clients[i] = c
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var tput metrics.Series
		totalBytes := int64(0)
		start := time.Now()
		for _, c := range clients {
			wg.Add(1)
			go func(c *ninf.Client) {
				defer wg.Done()
				in := make([]float64, elems)
				rep, err := c.Call("echo", elems, in, nil)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				tput.Add(rep.Throughput())
				totalBytes += rep.BytesOut + rep.BytesIn
				mu.Unlock()
			}(c)
		}
		wg.Wait()
		return float64(totalBytes) / time.Since(start).Seconds() / netmodel.MB
	}

	single := run(netmodel.SingleSiteWAN(4))
	multi := run(netmodel.MultiSiteWAN(1))
	// Descale for reporting; compare the ratio, which is scale-free.
	if multi < 2*single {
		t.Errorf("multi-site aggregate %.2f not ≫ single-site %.2f (scaled MB/s)", multi, single)
	}
}
