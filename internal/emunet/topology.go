package emunet

import (
	"fmt"
	"net"
	"time"

	"ninf/internal/netmodel"
)

// A Network is a live realization of a netmodel.Spec: shared links are
// token buckets, and each client slot gets a dialer whose connections
// are shaped by its site's uplinks, the server link, and its own
// access capacity — so the same topology that drives the simulator can
// be exercised over real sockets.
type Network struct {
	spec       netmodel.Spec
	serverLink *Link
	shared     map[string]*Link
	clients    []clientSlot
}

type clientSlot struct {
	site    string
	dial    func() (net.Conn, error)
	access  *Link
	path    []*Link
	latency time.Duration
}

// Build realizes spec over the given raw dialer (typically a loopback
// TCP dial to an in-process server). Capacities are in the spec's
// MB/s, optionally scaled (scale > 1 speeds the whole network up so
// tests finish quickly while preserving every ratio; scale ≤ 0 means
// 1).
func Build(spec netmodel.Spec, rawDial func() (net.Conn, error), scale float64) (*Network, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if rawDial == nil {
		return nil, fmt.Errorf("emunet: nil dialer")
	}
	if scale <= 0 {
		scale = 1
	}
	n := &Network{
		spec:       spec,
		serverLink: NewLink("server", spec.ServerMBps*netmodel.MB*scale),
		shared:     make(map[string]*Link, len(spec.Links)),
	}
	for _, l := range spec.Links {
		n.shared[l.Name] = NewLink(l.Name, l.MBps*netmodel.MB*scale)
	}
	for _, g := range spec.Groups {
		for i := 0; i < g.Clients; i++ {
			slot := clientSlot{
				site:    g.Site,
				access:  NewLink(fmt.Sprintf("%s-access-%d", g.Site, i), g.AccessMBps*netmodel.MB*scale),
				latency: time.Duration(g.LatencySec * float64(time.Second) / scale),
			}
			for _, ln := range g.SharedLinks {
				slot.path = append(slot.path, n.shared[ln])
			}
			slot.path = append(slot.path, n.serverLink)
			links := append([]*Link{slot.access}, slot.path...)
			opts := Options{Up: links, Down: links, Latency: slot.latency}
			slot.dial = Dialer(rawDial, opts)
			n.clients = append(n.clients, slot)
		}
	}
	return n, nil
}

// Clients reports the number of client slots.
func (n *Network) Clients() int { return len(n.clients) }

// Dialer returns the shaped dialer of client slot i.
func (n *Network) Dialer(i int) (func() (net.Conn, error), error) {
	if i < 0 || i >= len(n.clients) {
		return nil, fmt.Errorf("emunet: client %d out of range [0,%d)", i, len(n.clients))
	}
	return n.clients[i].dial, nil
}

// Site reports which site client slot i belongs to.
func (n *Network) Site(i int) string {
	if i < 0 || i >= len(n.clients) {
		return ""
	}
	return n.clients[i].site
}

// ServerLink exposes the shared server ingress link (for tests that
// adjust capacity mid-run).
func (n *Network) ServerLink() *Link { return n.serverLink }

// SharedLink returns the named shared link, or nil.
func (n *Network) SharedLink(name string) *Link { return n.shared[name] }
