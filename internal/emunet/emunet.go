// Package emunet emulates LAN/WAN network conditions over real
// connections, so multi-client Ninf benchmarks can run on one machine
// while exhibiting the paper's bandwidth behaviour: per-link capacity,
// propagation latency, and — critically for §4.2.2 — *shared* access
// links, where every client at a site contends for the same capacity.
//
// A Link is a token bucket shared by any number of connections.
// Traffic is shaped in MTU-sized chunks, so concurrent streams
// crossing the same link converge to fair shares of its capacity,
// reproducing the single-site WAN saturation the paper measured
// (0.17 MB/s Ocha-U↔ETL split among c clients).
package emunet

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// DefaultChunk is the shaping granularity in bytes; smaller values
// share more fairly at more overhead. 8 KiB keeps the token-bucket
// mutex cool while still interleaving well below typical frame sizes.
const DefaultChunk = 8 << 10

// A Link models one network segment with finite capacity. All
// connections routed over the link share its bandwidth.
type Link struct {
	name string

	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // bucket depth in bytes
	tokens float64
	last   time.Time
}

// NewLink creates a link with the given capacity in bytes/second.
// A burst of one chunk is allowed so small messages are not over-
// delayed.
func NewLink(name string, bytesPerSec float64) *Link {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("emunet: link %q needs positive capacity", name))
	}
	return &Link{
		name:   name,
		rate:   bytesPerSec,
		burst:  2 * DefaultChunk,
		tokens: 2 * DefaultChunk,
		last:   time.Now(),
	}
}

// Name returns the link's label.
func (l *Link) Name() string { return l.name }

// Rate returns the configured capacity in bytes/second.
func (l *Link) Rate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

// SetRate changes the capacity, e.g. to emulate congestion changes.
func (l *Link) SetRate(bytesPerSec float64) {
	if bytesPerSec <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refill(time.Now())
	l.rate = bytesPerSec
}

// refill adds tokens for elapsed time. Callers hold mu.
func (l *Link) refill(now time.Time) {
	dt := now.Sub(l.last).Seconds()
	if dt > 0 {
		l.tokens += dt * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.last = now
	}
}

// acquire charges n bytes against the bucket and sleeps off any
// resulting debt. Tokens may go negative: the sender pays up front and
// waits until the debt would have drained at the link rate. Because
// the next refill credits real elapsed time, oversleeping (coarse OS
// timers under load) is automatically credited back, so the long-run
// rate converges to the configured capacity instead of below it.
// Concurrent acquirers interleave chunk by chunk, yielding approximate
// fair sharing.
func (l *Link) acquire(n int) {
	l.mu.Lock()
	l.refill(time.Now())
	l.tokens -= float64(n)
	var wait time.Duration
	if l.tokens < 0 {
		wait = time.Duration(-l.tokens / l.rate * float64(time.Second))
	}
	l.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// Options configure shaping for one connection direction pair.
type Options struct {
	// Up are the links crossed by data written on the wrapped conn
	// (client→server when wrapping the client side).
	Up []*Link
	// Down are the links crossed by data read from the wrapped conn.
	Down []*Link
	// Latency is the one-way propagation delay, charged once per
	// message burst in each direction.
	Latency time.Duration
	// Chunk overrides the shaping granularity (default DefaultChunk).
	Chunk int
}

// Conn is a traffic-shaped connection.
type Conn struct {
	net.Conn
	opts Options

	wMu       sync.Mutex
	lastWrite time.Time
	rMu       sync.Mutex
	lastRead  time.Time
}

// Wrap shapes an existing connection.
func Wrap(c net.Conn, opts Options) *Conn {
	if opts.Chunk <= 0 {
		opts.Chunk = DefaultChunk
	}
	return &Conn{Conn: c, opts: opts}
}

// Dialer shapes every connection produced by dial.
func Dialer(dial func() (net.Conn, error), opts Options) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		c, err := dial()
		if err != nil {
			return nil, err
		}
		return Wrap(c, opts), nil
	}
}

// idleGap is the silence after which the next transfer is charged a
// fresh propagation latency: it separates "messages" on a stream.
const idleGap = 2 * time.Millisecond

// Write shapes outgoing data through the up links.
func (c *Conn) Write(p []byte) (int, error) {
	c.wMu.Lock()
	defer c.wMu.Unlock()
	if c.opts.Latency > 0 {
		now := time.Now()
		if now.Sub(c.lastWrite) > idleGap {
			time.Sleep(c.opts.Latency)
		}
	}
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > c.opts.Chunk {
			n = c.opts.Chunk
		}
		for _, l := range c.opts.Up {
			l.acquire(n)
		}
		//lint:ninflint locknet — c.wMu models the emulated link's serialization point; chunked writes must not interleave
		w, err := c.Conn.Write(p[:n])
		total += w
		if err != nil {
			c.lastWrite = time.Now()
			return total, err
		}
		p = p[n:]
	}
	c.lastWrite = time.Now()
	return total, nil
}

// Read shapes incoming data through the down links. Shaping at the
// receiver models the far end's constrained sending rate: TCP flow
// control (or the pipe's synchrony) pushes the backpressure to the
// sender.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) > c.opts.Chunk {
		p = p[:c.opts.Chunk]
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.rMu.Lock()
		if c.opts.Latency > 0 {
			now := time.Now()
			if now.Sub(c.lastRead) > idleGap {
				time.Sleep(c.opts.Latency)
			}
		}
		for _, l := range c.opts.Down {
			l.acquire(n)
		}
		c.lastRead = time.Now()
		c.rMu.Unlock()
	}
	return n, err
}

// Pipe returns an in-memory shaped connection pair: data written on a
// is shaped by opts.Up before b reads it, and data written on b is
// shaped by opts.Down before a reads it. The pair shares the links, so
// several pipes over the same Options contend like clients on a LAN.
func Pipe(opts Options) (a, b net.Conn) {
	ca, cb := net.Pipe()
	up := Wrap(ca, Options{Up: opts.Up, Latency: opts.Latency, Chunk: opts.Chunk})
	down := Wrap(cb, Options{Up: opts.Down, Latency: opts.Latency, Chunk: opts.Chunk})
	return up, down
}
