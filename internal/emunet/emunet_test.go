package emunet

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// transfer pushes n bytes through a shaped pipe and returns the
// elapsed time.
func transfer(t *testing.T, w io.Writer, r io.Reader, n int) time.Duration {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := io.CopyN(io.Discard, r, int64(n))
		done <- err
	}()
	start := time.Now()
	if _, err := w.Write(make([]byte, n)); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

func TestLinkCapsThroughput(t *testing.T) {
	link := NewLink("lan", 1<<20) // 1 MiB/s
	a, b := net.Pipe()
	w := Wrap(a, Options{Up: []*Link{link}})
	n := 256 << 10 // 256 KiB → ≥ ~0.23 s at 1 MiB/s (minus burst)
	el := transfer(t, w, b, n)
	min := 150 * time.Millisecond
	max := 2 * time.Second
	if el < min || el > max {
		t.Errorf("256 KiB over 1 MiB/s took %v, want within [%v, %v]", el, min, max)
	}
}

func TestSharedLinkSplitsBandwidth(t *testing.T) {
	link := NewLink("backbone", 2<<20)
	n := 256 << 10

	// One stream alone.
	a1, b1 := net.Pipe()
	w1 := Wrap(a1, Options{Up: []*Link{link}})
	solo := transfer(t, w1, b1, n)

	// Two streams sharing the same link concurrently: the aggregate
	// cannot beat the link capacity, so total wall-clock for 2×n
	// bytes must be about twice the solo time. Chunk interleaving is
	// only approximately fair, so assert on the total, not on each
	// stream.
	link2 := NewLink("backbone2", 2<<20)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		a, b := net.Pipe()
		w := Wrap(a, Options{Up: []*Link{link2}})
		wg.Add(1)
		go func(w io.Writer, r io.Reader) {
			defer wg.Done()
			done := make(chan struct{})
			go func() { io.CopyN(io.Discard, r, int64(n)); close(done) }()
			w.Write(make([]byte, n))
			<-done
		}(w, b)
	}
	wg.Wait()
	total := time.Since(start)
	if total < time.Duration(float64(solo)*1.6) {
		t.Errorf("2×%d B over shared link took %v, solo %v — aggregate exceeded capacity", n, total, solo)
	}
}

func TestLatencyCharged(t *testing.T) {
	a, b := net.Pipe()
	w := Wrap(a, Options{Latency: 30 * time.Millisecond})
	el := transfer(t, w, b, 64)
	if el < 30*time.Millisecond {
		t.Errorf("64 B with 30 ms latency took %v", el)
	}
	if el > time.Second {
		t.Errorf("latency overhead too large: %v", el)
	}
}

func TestDataIntegrity(t *testing.T) {
	link := NewLink("l", 8<<20)
	a, b := Pipe(Options{Up: []*Link{link}, Down: []*Link{link}})
	payload := make([]byte, 70000) // crosses many chunks
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		a.Write(payload)
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted through shaped pipe")
	}

	// And the reverse direction.
	go func() {
		b.Write(payload[:1000])
	}()
	back := make([]byte, 1000)
	if _, err := io.ReadFull(a, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload[:1000]) {
		t.Error("reverse payload corrupted")
	}
}

func TestDialerWraps(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	link := NewLink("wan", 1<<20)
	dial := Dialer(func() (net.Conn, error) {
		return net.Dial("tcp", l.Addr().String())
	}, Options{Up: []*Link{link}})
	c, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Write(make([]byte, 256<<10)); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Errorf("shaped TCP write took only %v", el)
	}
}

func TestSetRate(t *testing.T) {
	link := NewLink("x", 1<<20)
	if link.Rate() != 1<<20 {
		t.Errorf("rate = %g", link.Rate())
	}
	link.SetRate(2 << 20)
	if link.Rate() != 2<<20 {
		t.Errorf("rate = %g after SetRate", link.Rate())
	}
	link.SetRate(-1) // ignored
	if link.Rate() != 2<<20 {
		t.Errorf("negative rate not ignored")
	}
	if link.Name() != "x" {
		t.Errorf("name = %q", link.Name())
	}
}

func TestNewLinkPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-positive capacity")
		}
	}()
	NewLink("bad", 0)
}
