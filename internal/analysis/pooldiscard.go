package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// PoolDiscard enforces the connection-pool hygiene rule of the client
// data plane (pool.go / client.go): once an exchange on a pooled
// connection has produced an error, the connection's stream may be out
// of frame sync, so it must be closed — never handed back to the pool
// with put/Put. A put is accepted only when it is guarded by a
// condition that consults the exchange error (err == nil, or a
// reusability predicate like connReusable(err)); a put on a branch
// taken when the error is non-nil, or an unguarded put after an
// erroring exchange, is reported.
var PoolDiscard = &Analyzer{
	Name: "pooldiscard",
	Doc: "connections must not be returned to the pool (put/Put) on " +
		"paths where a connection I/O error occurred",
	Run: runPoolDiscard,
}

// poolDiscardFiles are the base filenames the pass applies to — the
// files that own the pool checkout/return protocol.
var poolDiscardFiles = map[string]bool{
	"pool.go":   true,
	"client.go": true,
}

func runPoolDiscard(pass *Pass) error {
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if !poolDiscardFiles[name] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkPoolDiscard(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkPoolDiscard analyzes one function body: it collects error
// variables assigned from calls that involve a net.Conn (exchange
// errors) and then judges every put call on a connection against the
// guards between it and the function root.
func checkPoolDiscard(pass *Pass, body *ast.BlockStmt) {
	parents := parentMap(body)

	// Pass 1: error objects born from conn-involving calls.
	connErrs := make(map[types.Object]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !callInvolvesConn(pass, call) {
			return true
		}
		for _, lhs := range assign.Lhs {
			obj := exprObj(pass.TypesInfo, lhs)
			if obj != nil && obj.Type() != nil && isErrorType(obj.Type()) {
				connErrs[obj] = assign.Pos()
			}
		}
		return true
	})
	if len(connErrs) == 0 {
		return
	}

	// Pass 2: judge every put(conn) call.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPoolPut(pass, call) {
			return true
		}
		switch classifyPutGuards(pass, call, parents, connErrs) {
		case putOnErrorPath:
			pass.Reportf(call.Pos(),
				"connection returned to the pool on an error path; an I/O error leaves the stream out of frame sync — close it instead")
		case putUnguarded:
			if errGuardedBefore(pass, call, parents, connErrs) {
				return true
			}
			for obj, pos := range connErrs {
				if pos < call.Pos() {
					pass.Reportf(call.Pos(),
						"connection returned to the pool without consulting the I/O error %q from the preceding exchange",
						obj.Name())
					break
				}
			}
		}
		return true
	})
}

// parentMap records each node's enclosing node within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

type putVerdict int

const (
	putGuardedOK putVerdict = iota
	putOnErrorPath
	putUnguarded
)

// classifyPutGuards walks from the put call outward through enclosing
// if statements, deciding whether the put sits on a known-good branch
// (err == nil / connReusable(err)), a known-bad branch (err != nil),
// or no error-aware branch at all.
func classifyPutGuards(pass *Pass, call *ast.CallExpr, parents map[ast.Node]ast.Node, connErrs map[types.Object]token.Pos) putVerdict {
	var n ast.Node = call
	for n != nil {
		parent := parents[n]
		ifs, ok := parent.(*ast.IfStmt)
		if !ok {
			n = parent
			continue
		}
		inThen := containsNode(ifs.Body, n)
		switch classifyErrCond(pass, ifs.Cond, connErrs) {
		case condErrNonNil:
			if inThen {
				return putOnErrorPath
			}
			return putGuardedOK // else-branch of err != nil: error is nil
		case condErrNil, condReusable:
			if inThen {
				return putGuardedOK
			}
			return putOnErrorPath
		}
		n = parent
	}
	return putUnguarded
}

// errGuardedBefore recognizes the early-return idiom: an
// `if err != nil { ...; return }` statement ahead of the put, in its
// own or any enclosing statement list, means the error is nil when the
// put runs.
func errGuardedBefore(pass *Pass, call *ast.CallExpr, parents map[ast.Node]ast.Node, connErrs map[types.Object]token.Pos) bool {
	for n := ast.Node(call); n != nil; n = parents[n] {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			continue
		}
		for _, stmt := range list {
			if containsNode(stmt, call) {
				break
			}
			ifs, ok := stmt.(*ast.IfStmt)
			if !ok {
				continue
			}
			if classifyErrCond(pass, ifs.Cond, connErrs) == condErrNonNil && blockTerminates(ifs.Body) {
				return true
			}
		}
	}
	return false
}

// blockTerminates reports whether a block's fall-through edge is dead:
// its last statement returns or branches away.
func blockTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	}
	return false
}

func containsNode(root, target ast.Node) bool {
	if root == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

type condKind int

const (
	condOther condKind = iota
	condErrNonNil
	condErrNil
	condReusable
)

// classifyErrCond recognizes err != nil, err == nil, and
// reusability-predicate conditions that consult an exchange error.
func classifyErrCond(pass *Pass, cond ast.Expr, connErrs map[types.Object]token.Pos) condKind {
	cond = ast.Unparen(cond)
	if be, ok := cond.(*ast.BinaryExpr); ok && (be.Op == token.NEQ || be.Op == token.EQL) {
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		isNil := func(e ast.Expr) bool {
			id, ok := e.(*ast.Ident)
			return ok && id.Name == "nil"
		}
		isTracked := func(e ast.Expr) bool {
			obj := exprObj(pass.TypesInfo, e)
			_, ok := connErrs[obj]
			return obj != nil && ok
		}
		if (isTracked(x) && isNil(y)) || (isTracked(y) && isNil(x)) {
			if be.Op == token.NEQ {
				return condErrNonNil
			}
			return condErrNil
		}
		return condOther
	}
	// A predicate call whose arguments include a tracked exchange
	// error — or any error value (fields, async results) — counts as
	// consulting the error (connReusable(err) and friends).
	if ce, ok := cond.(*ast.CallExpr); ok {
		for _, arg := range ce.Args {
			if mentionsTracked(pass, arg, connErrs) {
				return condReusable
			}
		}
		for _, arg := range ce.Args {
			if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Type != nil && isErrorType(tv.Type) {
				return condReusable
			}
		}
	}
	return condOther
}

func mentionsTracked(pass *Pass, e ast.Expr, connErrs map[types.Object]token.Pos) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				if _, tracked := connErrs[obj]; tracked {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isPoolPut matches p.put(conn) / p.Put(conn): a method call named
// put/Put whose single argument is a net.Conn.
func isPoolPut(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "put" && sel.Sel.Name != "Put") {
		return false
	}
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	return ok && isNetConnType(tv.Type)
}

// callInvolvesConn reports whether a call reads from or writes to a
// connection: a method call on a net.Conn, or any net.Conn argument.
func callInvolvesConn(pass *Pass, call *ast.CallExpr) bool {
	if recv := receiverOf(call); recv != nil {
		if tv, ok := pass.TypesInfo.Types[recv]; ok && isNetConnType(tv.Type) {
			return true
		}
	}
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && isNetConnType(tv.Type) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
