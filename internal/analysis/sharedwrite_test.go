package analysis_test

import (
	"testing"

	"ninf/internal/analysis"
	"ninf/internal/analysis/analysistest"
)

func TestSharedWrite(t *testing.T) {
	analysistest.Run(t, "testdata/sharedwrite", analysis.SharedWrite)
}
