package analysis_test

import (
	"testing"

	"ninf/internal/analysis"
	"ninf/internal/analysis/analysistest"
)

func TestReleaseCheck(t *testing.T) {
	analysistest.Run(t, "testdata/releasecheck", analysis.ReleaseCheck)
}
