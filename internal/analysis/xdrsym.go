package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// XDRSym verifies that paired Encode*/Decode* functions drive the XDR
// wire format symmetrically: the same sequence of value kinds, and —
// where both sides name struct fields — the same fields in the same
// order. A swapped pair of writes, a field added on one side only, or
// an Int64 written where a Uint32 is read all show up as silent wire
// corruption at runtime; this pass catches them at lint time.
//
// Pairing is name-based within a package: a method Encode/EncodeBuf on
// type T pairs with DecodeT (or a Decode method on T), and a function
// EncodeX pairs with DecodeX, case-insensitively. Functions that issue
// no XDR calls themselves (wrappers like EncodeCallReply) do not
// participate.
var XDRSym = &Analyzer{
	Name: "xdrsym",
	Doc: "paired Encode*/Decode* functions must read and write the " +
		"same XDR value kinds and fields in the same order",
	Run: runXDRSym,
}

// xdrRec is one XDR data operation observed in source order: a value
// kind in the shared encode/decode namespace ("Uint32", "String", or
// "group:timings" for a call into a paired sub-codec), plus the struct
// field it touches when one is syntactically evident.
type xdrRec struct {
	kind  string
	field string
	pos   token.Pos
}

// xdrRun compresses consecutive records of one kind: a type-switch
// that writes the same kind from several arms and a decoder that reads
// it once are the same wire shape.
type xdrRun struct {
	kind   string
	fields []string
	pos    token.Pos
}

// xdrFn is one side of a candidate pair.
type xdrFn struct {
	decl *ast.FuncDecl
	runs []xdrRun
}

func runXDRSym(pass *Pass) error {
	encoders := make(map[string][]xdrFn)
	decoders := make(map[string][]xdrFn)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			key, enc, ok := xdrPairKey(fn)
			if !ok || key == "" {
				continue
			}
			recs := collectXDRRecs(pass, fn)
			if len(recs) == 0 {
				continue // wrapper: delegates, issues no XDR calls itself
			}
			entry := xdrFn{decl: fn, runs: compressRuns(recs)}
			if enc {
				encoders[key] = append(encoders[key], entry)
			} else {
				decoders[key] = append(decoders[key], entry)
			}
		}
	}
	for key, encs := range encoders {
		for _, enc := range encs {
			for _, dec := range decoders[key] {
				compareXDRPair(pass, enc, dec)
			}
		}
	}
	return nil
}

// xdrPairKey classifies a function as one side of an encode/decode
// pair and returns its case-folded pairing key: the receiver type for
// Encode/EncodeBuf/Decode methods, the name suffix for EncodeX/DecodeX
// functions (with a Buf suffix dropped, so EncodeCallRequestBuf and
// EncodeCallRequest share a key).
func xdrPairKey(fn *ast.FuncDecl) (key string, encode, ok bool) {
	name := fn.Name.Name
	if recv := receiverTypeName(fn); recv != "" {
		switch name {
		case "Encode", "EncodeBuf", "encode":
			return strings.ToLower(recv), true, true
		case "Decode", "decode":
			return strings.ToLower(recv), false, true
		}
	}
	lower := strings.ToLower(name)
	if rest, found := strings.CutPrefix(lower, "encode"); found && rest != "" {
		return strings.TrimSuffix(rest, "buf"), true, true
	}
	if rest, found := strings.CutPrefix(lower, "decode"); found && rest != "" {
		return rest, false, true
	}
	return "", false, false
}

// receiverTypeName returns the base type name of a method receiver.
func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// collectXDRRecs walks the function body in source order gathering XDR
// data operations: direct Encoder/Decoder method calls and calls into
// helper codecs that take an Encoder/Decoder argument.
func collectXDRRecs(pass *Pass, fn *ast.FuncDecl) []xdrRec {
	parents := parentMap(fn.Body)
	var recs []xdrRec
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, ok := xdrDataKind(pass, call); ok {
			recs = append(recs, xdrRec{
				kind:  kind,
				field: fieldOfDataCall(pass, call, parents),
				pos:   call.Pos(),
			})
			return true
		}
		if group, ok := xdrGroupCall(pass, call); ok {
			recs = append(recs, xdrRec{kind: "group:" + group, pos: call.Pos()})
		}
		return true
	})
	return recs
}

// encoderSkip / decoderSkip are the bookkeeping methods that move no
// wire data.
var encoderSkip = map[string]bool{"Reset": true, "Err": true, "Len": true}
var decoderSkip = map[string]bool{"Reset": true, "Err": true, "Len": true, "SetMaxBytes": true}

// xdrDataKind classifies a direct data-moving call on an XDR
// Encoder/Decoder and returns its normalized value kind, shared
// between the two sides (PutInt64 and Int64 both yield "Int64").
func xdrDataKind(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if !ast.IsExported(name) {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", false
	}
	switch {
	case isXDRCodecType(tv.Type, "Encoder"):
		if encoderSkip[name] || !strings.HasPrefix(name, "Put") {
			return "", false
		}
		return normalizeXDRKind(strings.TrimPrefix(name, "Put")), true
	case isXDRCodecType(tv.Type, "Decoder"):
		if decoderSkip[name] {
			return "", false
		}
		if name == "ReadFloat64sInto" {
			return "Float64s", true
		}
		return normalizeXDRKind(name), true
	}
	return "", false
}

// normalizeXDRKind folds width aliases: PutInt/Int are 8-byte on the
// wire, so they compare equal to PutInt64/Int64.
func normalizeXDRKind(kind string) string {
	if kind == "Int" {
		return "Int64"
	}
	return kind
}

// isXDRCodecType recognizes the xdr.Encoder/xdr.Decoder shape: a named
// type (possibly behind a pointer) with the given name that carries a
// data-moving method, so fixtures can model the codec locally.
func isXDRCodecType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != name {
		return false
	}
	probe := "Uint32"
	if name == "Encoder" {
		probe = "PutUint32"
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == probe {
			return true
		}
	}
	return false
}

// xdrGroupCall recognizes a call into a helper codec — any call that
// receives an Encoder or Decoder argument — and names the group it
// belongs to so the two sides can be aligned: encodeArg/decodeArg both
// become "arg", Timings.encode/Timings.decode both become "timings".
func xdrGroupCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	hasCodecArg := false
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok {
			if isXDRCodecType(tv.Type, "Encoder") || isXDRCodecType(tv.Type, "Decoder") {
				hasCodecArg = true
				break
			}
		}
	}
	if !hasCodecArg {
		return "", false
	}
	f := funcOf(pass.TypesInfo, call)
	if f == nil {
		return "", false
	}
	lower := strings.ToLower(f.Name())
	rest := lower
	if r, found := strings.CutPrefix(lower, "encode"); found {
		rest = r
	} else if r, found := strings.CutPrefix(lower, "decode"); found {
		rest = r
	}
	if rest != "" {
		return rest, true
	}
	// Bare encode/decode method: group by the receiver type.
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return strings.ToLower(named.Obj().Name()), true
		}
	}
	return lower, true
}

// fieldOfDataCall names the struct field a data call moves, when the
// syntax shows one: on the encode side a field selector among the call
// arguments, on the decode side the composite-literal key or
// assignment target the call's result lands in. Empty when the value
// flows through locals — then the field comparison is skipped.
func fieldOfDataCall(pass *Pass, call *ast.CallExpr, parents map[ast.Node]ast.Node) string {
	// Encode side: e.PutString(m.Hostname) — field read in the args.
	for _, arg := range call.Args {
		name := ""
		ast.Inspect(arg, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || name != "" {
				return name == ""
			}
			if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
				name = sel.Sel.Name
				return false
			}
			return true
		})
		if name != "" {
			return name
		}
	}
	// Decode side: walk outward to the enclosing composite-literal key
	// or assignment target.
	var n ast.Node = call
	for n != nil {
		parent := parents[n]
		switch p := parent.(type) {
		case *ast.KeyValueExpr:
			if p.Value == n || containsNode(p.Value, n) {
				if id, ok := p.Key.(*ast.Ident); ok {
					return id.Name
				}
			}
			return ""
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if rhs == n || containsNode(rhs, n) {
					lhs := p.Lhs[0]
					if len(p.Lhs) == len(p.Rhs) {
						lhs = p.Lhs[i]
					}
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						return sel.Sel.Name
					}
					return ""
				}
			}
			return ""
		case *ast.BlockStmt, *ast.FuncLit:
			return ""
		}
		n = parent
	}
	return ""
}

// compressRuns merges consecutive records of the same kind into runs.
// Run lengths are not compared across sides: an encoder type-switch
// may write one logical value from several arms.
func compressRuns(recs []xdrRec) []xdrRun {
	var runs []xdrRun
	for _, r := range recs {
		if n := len(runs); n > 0 && runs[n-1].kind == r.kind {
			if r.field != "" {
				runs[n-1].fields = append(runs[n-1].fields, r.field)
			}
			continue
		}
		run := xdrRun{kind: r.kind, pos: r.pos}
		if r.field != "" {
			run.fields = []string{r.field}
		}
		runs = append(runs, run)
	}
	return runs
}

// compareXDRPair checks one encoder against one decoder: the run kind
// sequences must match exactly; field lists are compared positionally
// where both sides name fields.
func compareXDRPair(pass *Pass, enc, dec xdrFn) {
	encName, decName := enc.decl.Name.Name, dec.decl.Name.Name
	for i := 0; i < len(enc.runs) || i < len(dec.runs); i++ {
		if i >= len(enc.runs) {
			pass.Reportf(dec.runs[i].pos,
				"xdr drift: %s reads %s here but %s writes nothing at this position",
				decName, dec.runs[i].kind, encName)
			return
		}
		if i >= len(dec.runs) {
			pass.Reportf(enc.runs[i].pos,
				"xdr drift: %s writes %s here but %s reads nothing at this position",
				encName, enc.runs[i].kind, decName)
			return
		}
		e, d := enc.runs[i], dec.runs[i]
		if e.kind != d.kind {
			pass.Reportf(d.pos,
				"xdr drift: %s writes %s at position %d but %s reads %s",
				encName, e.kind, i+1, decName, d.kind)
			return
		}
		if msg := compareFields(e.fields, d.fields); msg != "" {
			pass.Reportf(d.pos,
				"xdr drift: %s and %s disagree on %s fields: %s",
				encName, decName, e.kind, msg)
			return
		}
	}
}

// compareFields aligns the field names of one run. When both sides
// name every value the lists must match exactly; otherwise only
// positions where both sides name a field are compared.
func compareFields(enc, dec []string) string {
	if len(enc) == len(dec) {
		for i := range enc {
			if enc[i] != "" && dec[i] != "" && !strings.EqualFold(enc[i], dec[i]) {
				return fmt.Sprintf("writes %s where %s is read", enc[i], dec[i])
			}
		}
		return ""
	}
	// Unequal counts matter only when both sides name all their
	// fields — then a missing or extra field is real drift.
	if allNamed(enc) && allNamed(dec) {
		return fmt.Sprintf("writes %d fields (%s) but reads %d (%s)",
			len(enc), strings.Join(enc, ", "), len(dec), strings.Join(dec, ", "))
	}
	return ""
}

func allNamed(fields []string) bool {
	if len(fields) == 0 {
		return false
	}
	for _, f := range fields {
		if f == "" {
			return false
		}
	}
	return true
}
