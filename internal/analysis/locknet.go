package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockNet flags blocking network operations — conn reads and writes,
// dials, calls that are handed a net.Conn, and channel sends —
// performed while a sync.Mutex or sync.RWMutex is held. A slow or
// stalled peer then extends the critical section indefinitely and
// serializes every other client behind one WAN round-trip, which is
// exactly the multi-client collapse the paper's §6 measurements are
// about. Hold locks around state, not around sockets.
var LockNet = &Analyzer{
	Name: "locknet",
	Doc: "no blocking net I/O or channel send while holding a " +
		"sync.Mutex/RWMutex",
	Run: runLockNet,
}

func runLockNet(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					lockScanBlock(pass, fn.Body.List)
				}
			case *ast.FuncLit:
				lockScanBlock(pass, fn.Body.List)
			}
			return true
		})
	}
	return nil
}

// lockScanBlock finds Lock/RLock statements in one statement list and
// checks their critical sections. It recurses into nested compound
// statements; function literals are handled by the file-level walk.
func lockScanBlock(pass *Pass, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		if recv, ok := mutexCallIn(pass, stmt, "Lock", "RLock"); ok {
			checkLockedList(pass, criticalSection(pass, stmts[i+1:], recv), recv)
			continue
		}
		lockScanNested(pass, stmt)
	}
}

// lockScanNested descends into compound statements looking for
// further Lock calls.
func lockScanNested(pass *Pass, stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		lockScanBlock(pass, s.List)
	case *ast.IfStmt:
		lockScanBlock(pass, s.Body.List)
		if s.Else != nil {
			lockScanNested(pass, s.Else)
		}
	case *ast.ForStmt:
		lockScanBlock(pass, s.Body.List)
	case *ast.RangeStmt:
		lockScanBlock(pass, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lockScanBlock(pass, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lockScanBlock(pass, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lockScanBlock(pass, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		lockScanNested(pass, s.Stmt)
	}
}

// criticalSection returns the statements executed while the lock on
// recv is held: up to the matching same-level Unlock, or — when the
// unlock is deferred or absent — through the end of the list.
func criticalSection(pass *Pass, rest []ast.Stmt, recv string) []ast.Stmt {
	for i, stmt := range rest {
		if r, ok := mutexCallIn(pass, stmt, "Unlock", "RUnlock"); ok && r == recv {
			return rest[:i]
		}
		if d, ok := stmt.(*ast.DeferStmt); ok {
			if r, ok := mutexDeferTarget(pass, d); ok && r == recv {
				out := append([]ast.Stmt{}, rest[:i]...)
				return append(out, rest[i+1:]...)
			}
		}
	}
	return rest
}

// mutexCallIn matches an expression statement that is a sync mutex
// method call with one of the given names, returning the rendered
// receiver expression ("c.mu").
func mutexCallIn(pass *Pass, stmt ast.Stmt, names ...string) (string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	return mutexCall(pass, call, names...)
}

// mutexDeferTarget matches `defer x.Unlock()` / `defer x.RUnlock()`.
func mutexDeferTarget(pass *Pass, d *ast.DeferStmt) (string, bool) {
	return mutexCall(pass, d.Call, "Unlock", "RUnlock")
}

func mutexCall(pass *Pass, call *ast.CallExpr, names ...string) (string, bool) {
	f := funcOf(pass.TypesInfo, call)
	if f == nil || pkgPathOf(f) != "sync" {
		return "", false
	}
	ok := false
	for _, n := range names {
		if f.Name() == n {
			ok = true
		}
	}
	if !ok {
		return "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// checkLockedList walks the statements of a critical section. A
// same-receiver Unlock inside a branch ends the section for the
// remainder of that branch.
func checkLockedList(pass *Pass, stmts []ast.Stmt, recv string) {
	for _, stmt := range stmts {
		if r, ok := mutexCallIn(pass, stmt, "Unlock", "RUnlock"); ok && r == recv {
			return
		}
		checkLockedStmt(pass, stmt, recv)
	}
}

func checkLockedStmt(pass *Pass, stmt ast.Stmt, recv string) {
	switch s := stmt.(type) {
	case *ast.GoStmt:
		// Launching a goroutine does not block the lock holder.
		return
	case *ast.DeferStmt:
		// Deferred calls run after the function's own unlock path.
		return
	case *ast.SendStmt:
		pass.Reportf(s.Arrow,
			"channel send while holding %s; a full channel stalls every other holder of the lock", recv)
		return
	case *ast.BlockStmt:
		checkLockedList(pass, s.List, recv)
		return
	case *ast.IfStmt:
		if s.Init != nil {
			checkLockedStmt(pass, s.Init, recv)
		}
		flagNetIO(pass, s.Cond, recv)
		checkLockedList(pass, s.Body.List, recv)
		if s.Else != nil {
			checkLockedStmt(pass, s.Else, recv)
		}
		return
	case *ast.ForStmt:
		checkLockedList(pass, s.Body.List, recv)
		return
	case *ast.RangeStmt:
		checkLockedList(pass, s.Body.List, recv)
		return
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			body = sw.Body
		} else {
			body = s.(*ast.TypeSwitchStmt).Body
		}
		for _, c := range body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				checkLockedList(pass, cc.Body, recv)
			}
		}
		return
	case *ast.SelectStmt:
		// Comm clauses race against each other; the bodies still run
		// under the lock.
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				checkLockedList(pass, cc.Body, recv)
			}
		}
		return
	case *ast.LabeledStmt:
		checkLockedStmt(pass, s.Stmt, recv)
		return
	}
	flagNetIO(pass, stmt, recv)
}

// connArgExempt lists callee names that take a conn without blocking
// on it: bookkeeping, teardown, and pool returns.
var connArgExempt = map[string]bool{
	"Close": true, "close": true,
	"put": true, "Put": true,
	"LocalAddr": true, "RemoteAddr": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// flagNetIO inspects one statement or expression for blocking network
// operations. Function literals and deferred/goroutine subtrees are
// not entered.
func flagNetIO(pass *Pass, n ast.Node, recv string) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch nn := node.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			flagNetCall(pass, nn, recv)
		}
		return true
	})
}

func flagNetCall(pass *Pass, call *ast.CallExpr, recv string) {
	// conn.Read / conn.Write on a net.Conn receiver.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		if name == "Read" || name == "Write" || name == "ReadFrom" || name == "WriteTo" {
			if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isNetConnType(tv.Type) {
				pass.Reportf(call.Pos(),
					"conn.%s while holding %s; a stalled peer extends the critical section indefinitely", name, recv)
				return
			}
		}
	}
	// net.Dial* and (net.Dialer).Dial*.
	if f := funcOf(pass.TypesInfo, call); f != nil && pkgPathOf(f) == "net" &&
		strings.HasPrefix(f.Name(), "Dial") {
		pass.Reportf(call.Pos(),
			"%s while holding %s; dial latency (up to the WAN RTT) is spent inside the critical section", f.Name(), recv)
		return
	}
	// Helpers handed a live conn (WriteFrame(conn, ...), ReadFrameBuf(conn)).
	callee := ""
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		callee = sel.Sel.Name
	} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		callee = id.Name
		// Builtins (append, delete, len, ...) move no bytes.
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	if connArgExempt[callee] {
		return
	}
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && isNetConnType(tv.Type) {
			pass.Reportf(call.Pos(),
				"%s is handed a net.Conn while %s is held; if it blocks on the socket the lock blocks with it", callee, recv)
			return
		}
	}
}
