package analysis

// White-box tests for the suppression machinery: parseSuppressions'
// directive grammar, filterSuppressed's coverage window (own line +
// next line) and used-marking, and auditSuppressions' stale/unknown
// findings. The fixture-based tests exercise these end to end; the
// edge cases here (multiple directives on one finding, unknown pass
// names, justification stripping) are cheaper to pin directly.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSup(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sup.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func diagAt(line int, az string) Diagnostic {
	return Diagnostic{
		Analyzer: az,
		Pos:      token.Position{Filename: "sup.go", Line: line, Column: 2},
		Message:  "synthetic finding",
	}
}

func TestParseSuppressionsGrammar(t *testing.T) {
	fset, files := parseSup(t, `package p

//lint:ninflint
//lint:ninflint seqlife — channel received elsewhere
//lint:ninflint seqlife, errclass -- two passes, dashed reason
//lint:ninflintnotadirective
func f() {}
`)
	sups := parseSuppressions(fset, files[0])
	if len(sups) != 3 {
		t.Fatalf("parsed %d suppressions, want 3 (the glued prefix must not count): %+v", len(sups), sups)
	}
	if sups[0].passes != nil || len(sups[0].names) != 0 {
		t.Errorf("bare directive should suppress all passes, got names %v", sups[0].names)
	}
	if len(sups[1].names) != 1 || sups[1].names[0] != "seqlife" {
		t.Errorf("em-dash justification not stripped: names %v", sups[1].names)
	}
	if len(sups[2].names) != 2 || sups[2].names[0] != "seqlife" || sups[2].names[1] != "errclass" {
		t.Errorf("comma list mis-parsed: names %v", sups[2].names)
	}
	if !sups[2].passes["errclass"] {
		t.Error("comma list did not populate the pass set")
	}
}

func TestFilterSuppressedSameLineBare(t *testing.T) {
	fset, files := parseSup(t, `package p

func f() int {
	return 1 //lint:ninflint
}
`)
	out, unused := filterSuppressed(fset, files, []Diagnostic{diagAt(4, "errclass")})
	if len(out) != 0 {
		t.Errorf("bare same-line directive left %d finding(s): %v", len(out), out)
	}
	if len(unused) != 0 {
		t.Errorf("matching directive reported unused: %+v", unused)
	}
}

func TestFilterSuppressedNextLineNamed(t *testing.T) {
	fset, files := parseSup(t, `package p

//lint:ninflint seqlife — reply channel received by the pump goroutine
func f() {}
`)
	diags := []Diagnostic{diagAt(4, "seqlife"), diagAt(4, "errclass")}
	out, unused := filterSuppressed(fset, files, diags)
	if len(out) != 1 || out[0].Analyzer != "errclass" {
		t.Errorf("named next-line directive should drop only seqlife, got %v", out)
	}
	if len(unused) != 0 {
		t.Errorf("used directive reported unused: %+v", unused)
	}
}

func TestFilterSuppressedCommaList(t *testing.T) {
	fset, files := parseSup(t, `package p

//lint:ninflint seqlife, errclass -- both findings are intentional here
func f() {}
`)
	diags := []Diagnostic{diagAt(4, "seqlife"), diagAt(4, "errclass"), diagAt(4, "hotalloc")}
	out, unused := filterSuppressed(fset, files, diags)
	if len(out) != 1 || out[0].Analyzer != "hotalloc" {
		t.Errorf("comma list should drop exactly its two passes, got %v", out)
	}
	if len(unused) != 0 {
		t.Errorf("used directive reported unused: %+v", unused)
	}
}

func TestFilterSuppressedMarksAllMatching(t *testing.T) {
	// Two directives cover the same finding (one above, one at end of
	// line): both must be marked used, or the audit would flag a
	// directive that is in fact load-bearing.
	fset, files := parseSup(t, `package p

//lint:ninflint
func f() { //lint:ninflint errclass
}
`)
	out, unused := filterSuppressed(fset, files, []Diagnostic{diagAt(4, "errclass")})
	if len(out) != 0 {
		t.Errorf("finding survived two covering directives: %v", out)
	}
	if len(unused) != 0 {
		t.Errorf("%d covering directive(s) reported unused: %+v", len(unused), unused)
	}
}

func TestFilterSuppressedOutOfWindow(t *testing.T) {
	// The window is the directive's line and the next one — a finding
	// two lines down must survive and the directive must surface as
	// unused.
	fset, files := parseSup(t, `package p

//lint:ninflint errclass — aimed at the wrong line
func f() int {
	return 1
}
`)
	out, unused := filterSuppressed(fset, files, []Diagnostic{diagAt(5, "errclass")})
	if len(out) != 1 {
		t.Errorf("finding outside the window was dropped: %v", out)
	}
	if len(unused) != 1 {
		t.Fatalf("directive outside any finding window not reported unused: %+v", unused)
	}
}

func TestAuditSuppressionsStale(t *testing.T) {
	fset, files := parseSup(t, `package p

//lint:ninflint
func f() {}

//lint:ninflint seqlife, errclass — nothing fires here anymore
func g() {}
`)
	_, unused := filterSuppressed(fset, files, nil)
	if len(unused) != 2 {
		t.Fatalf("want 2 unused suppressions, got %+v", unused)
	}
	diags := auditSuppressions(unused, All())
	if len(diags) != 2 {
		t.Fatalf("want 2 audit findings, got %v", diags)
	}
	for _, d := range diags {
		if d.Analyzer != suppAuditName {
			t.Errorf("audit finding under analyzer %q, want %q", d.Analyzer, suppAuditName)
		}
	}
	if want := "stale suppression: no any pass finding on this or the next line"; diags[0].Message != want {
		t.Errorf("bare stale message = %q, want %q", diags[0].Message, want)
	}
	if want := "stale suppression: no seqlife, errclass finding on this or the next line"; diags[1].Message != want {
		t.Errorf("named stale message = %q, want %q", diags[1].Message, want)
	}
	if diags[0].Pos.Line != 3 || diags[1].Pos.Line != 6 {
		t.Errorf("audit findings misplaced: lines %d, %d", diags[0].Pos.Line, diags[1].Pos.Line)
	}
}

func TestAuditSuppressionsUnknownPass(t *testing.T) {
	fset, files := parseSup(t, `package p

//lint:ninflint nosuchpass — typo for a real pass name
func f() {}
`)
	_, unused := filterSuppressed(fset, files, nil)
	diags := auditSuppressions(unused, All())
	if len(diags) != 1 {
		t.Fatalf("want 1 audit finding, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "suppression names unknown pass nosuchpass") {
		t.Errorf("unknown-pass message = %q", diags[0].Message)
	}
}

func TestAuditSuppressionsUsedDirectiveSilent(t *testing.T) {
	fset, files := parseSup(t, `package p

//lint:ninflint errclass — matched below
func f() {}
`)
	_, unused := filterSuppressed(fset, files, []Diagnostic{diagAt(4, "errclass")})
	if diags := auditSuppressions(unused, All()); len(diags) != 0 {
		t.Errorf("used directive produced audit findings: %v", diags)
	}
}
