// Package analysistest runs a ninflint analyzer over a fixture
// directory and checks its findings against // want comments, in the
// spirit of golang.org/x/tools/go/analysis/analysistest:
//
//	v := acquire() // want `not Released on every path`
//
// Each `// want` comment carries one or more backquoted or quoted
// regular expressions; every diagnostic the analyzer reports on that
// line must match one of them, and every want must be matched by a
// diagnostic. Lines without a want comment must stay clean — which is
// how fixtures also prove //lint:ninflint suppressions are honored.
//
// A fixture may be multi-package: subdirectories holding Go files are
// loaded as dependency packages (in lexical order, so a later subdir
// may import an earlier one) before the root package, all sharing one
// fact store. The root files import them as "fixture/<dir>/<subdir>" —
// which is how fixtures prove cross-package summary propagation.
package analysistest

import (
	"bufio"
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"ninf/internal/analysis"
	"ninf/internal/analysis/load"
)

// Run analyzes the fixture package tree rooted at dir with the given
// analyzers and reports any mismatch against the // want comments via
// t.Errorf.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs, files := Load(t, dir)
	diags, err := analysis.RunAll(pkgs, analyzers, analysis.Options{})
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	checkWants(t, files, diags)
}

// Load parses and type-checks a fixture tree: subdirectory packages
// first (each importable by later ones and by the root under the path
// "fixture/<base>/<subdir>"), the root package last. It returns the
// packages in dependency order plus every fixture file, for want
// scanning.
func Load(t *testing.T, dir string) ([]*analysis.Package, []string) {
	t.Helper()
	rootFiles, err := fixtureFiles(dir)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	subdirs, err := fixtureSubdirs(dir)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	if len(rootFiles) == 0 && len(subdirs) == 0 {
		t.Fatalf("fixture %s: no Go files", dir)
	}

	prefix := "fixture/" + filepath.Base(dir)
	type unit struct {
		path  string
		files []string
	}
	var units []unit
	var allFiles []string
	for _, sub := range subdirs {
		files, err := fixtureFiles(filepath.Join(dir, sub))
		if err != nil {
			t.Fatalf("fixture %s/%s: %v", dir, sub, err)
		}
		if len(files) == 0 {
			continue
		}
		units = append(units, unit{path: prefix + "/" + sub, files: files})
		allFiles = append(allFiles, files...)
	}
	if len(rootFiles) > 0 {
		units = append(units, unit{path: prefix, files: rootFiles})
		allFiles = append(allFiles, rootFiles...)
	}

	fset := token.NewFileSet()
	std, err := load.Importer(fset, stdImportsOf(t, allFiles, prefix))
	if err != nil {
		t.Fatalf("fixture %s: resolving imports: %v", dir, err)
	}
	imp := &fixtureImporter{std: std, pkgs: make(map[string]*types.Package)}

	var pkgs []*analysis.Package
	for _, u := range units {
		pkg, err := load.Files(fset, imp, u.path, u.files)
		if err != nil {
			t.Fatalf("fixture %s: %v", dir, err)
		}
		pkg.Imports = fileImports(t, u.files)
		imp.pkgs[u.path] = pkg.Pkg
		pkgs = append(pkgs, pkg)
	}
	return pkgs, allFiles
}

// fixtureImporter resolves fixture-local packages from the ones already
// type-checked and everything else from build-cache export data.
type fixtureImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.pkgs[path]; ok {
		return p, nil
	}
	return fi.std.Import(path)
}

// fixtureFiles lists the non-test Go files of a fixture directory.
func fixtureFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	return files, nil
}

// fixtureSubdirs lists the subdirectories of a fixture directory, in
// lexical order.
func fixtureSubdirs(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var subs []string
	for _, e := range ents {
		if e.IsDir() {
			subs = append(subs, e.Name())
		}
	}
	sort.Strings(subs)
	return subs, nil
}

// stdImportsOf collects the non-fixture import paths of the fixture
// files so their export data can be resolved.
func stdImportsOf(t *testing.T, files []string, localPrefix string) []string {
	t.Helper()
	seen := make(map[string]bool)
	for _, path := range fileImportsAll(t, files) {
		if path != "C" && !strings.HasPrefix(path, localPrefix) {
			seen[path] = true
		}
	}
	var out []string
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// fileImports returns the import paths of a file set, deduplicated and
// sorted (the Package.Imports list RunAll schedules by).
func fileImports(t *testing.T, files []string) []string {
	t.Helper()
	seen := make(map[string]bool)
	for _, p := range fileImportsAll(t, files) {
		seen[p] = true
	}
	var out []string
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func fileImportsAll(t *testing.T, files []string) []string {
	t.Helper()
	fset := token.NewFileSet()
	var out []string
	for _, fn := range files {
		f, err := parser.ParseFile(fset, fn, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		for _, imp := range f.Imports {
			out = append(out, strings.Trim(imp.Path.Value, `"`))
		}
	}
	return out
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseWants scans one file for // want comments.
func parseWants(file string) ([]want, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var wants []want
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		m := wantRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		args := wantArgRE.FindAllStringSubmatch(m[1], -1)
		if len(args) == 0 {
			return nil, fmt.Errorf("%s:%d: malformed want comment", file, line)
		}
		for _, a := range args {
			pat := a[1]
			if pat == "" {
				pat = a[2]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern: %w", file, line, err)
			}
			wants = append(wants, want{file: file, line: line, re: re, raw: pat})
		}
	}
	return wants, sc.Err()
}

// checkWants matches diagnostics against expectations one-to-one.
func checkWants(t *testing.T, files []string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []want
	for _, fn := range files {
		w, err := parseWants(fn)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, w...)
	}
	for _, d := range diags {
		found := false
		for i := range wants {
			w := &wants[i]
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}
