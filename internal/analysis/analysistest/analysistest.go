// Package analysistest runs a ninflint analyzer over a fixture
// directory and checks its findings against // want comments, in the
// spirit of golang.org/x/tools/go/analysis/analysistest:
//
//	v := acquire() // want `not Released on every path`
//
// Each `// want` comment carries one or more backquoted or quoted
// regular expressions; every diagnostic the analyzer reports on that
// line must match one of them, and every want must be matched by a
// diagnostic. Lines without a want comment must stay clean — which is
// how fixtures also prove //lint:ninflint suppressions are honored.
package analysistest

import (
	"bufio"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"ninf/internal/analysis"
	"ninf/internal/analysis/load"
)

// Run analyzes the fixture package in dir with the given analyzers and
// reports any mismatch against the // want comments via t.Errorf.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	files, err := fixtureFiles(dir)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s: no Go files", dir)
	}
	fset := token.NewFileSet()
	imp, err := load.Importer(fset, importsOf(t, files))
	if err != nil {
		t.Fatalf("fixture %s: resolving imports: %v", dir, err)
	}
	pkg, err := load.Files(fset, imp, "fixture/"+filepath.Base(dir), files)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	checkWants(t, files, diags)
}

// fixtureFiles lists the non-test Go files of a fixture directory.
func fixtureFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	return files, nil
}

// importsOf collects the import paths of the fixture files so their
// export data can be resolved.
func importsOf(t *testing.T, files []string) []string {
	t.Helper()
	seen := make(map[string]bool)
	fset := token.NewFileSet()
	for _, fn := range files {
		f, err := parser.ParseFile(fset, fn, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "C" {
				seen[path] = true
			}
		}
	}
	var out []string
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseWants scans one file for // want comments.
func parseWants(file string) ([]want, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var wants []want
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		m := wantRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		args := wantArgRE.FindAllStringSubmatch(m[1], -1)
		if len(args) == 0 {
			return nil, fmt.Errorf("%s:%d: malformed want comment", file, line)
		}
		for _, a := range args {
			pat := a[1]
			if pat == "" {
				pat = a[2]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern: %v", file, line, err)
			}
			wants = append(wants, want{file: file, line: line, re: re, raw: pat})
		}
	}
	return wants, sc.Err()
}

// checkWants matches diagnostics against expectations one-to-one.
func checkWants(t *testing.T, files []string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []want
	for _, fn := range files {
		w, err := parseWants(fn)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, w...)
	}
	for _, d := range diags {
		found := false
		for i := range wants {
			w := &wants[i]
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}
