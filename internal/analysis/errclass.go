package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrClass enforces error-classification hygiene at the client
// transport boundary: the retry layer decides retryable vs terminal
// with errors.Is/errors.As over sentinel and typed causes, so any wrap
// that drops the error chain silently converts a retryable transport
// failure into a terminal one (the class of bug PR 3's review fixed by
// hand in the failover path). Two rules:
//
//  1. fmt.Errorf formatting an error argument must keep the chain:
//     a constant format with no %w verb but at least one error-typed
//     argument severs classification. The mechanical fix (-fix)
//     rewrites the first error argument's verb to %w.
//  2. errors must not be compared with == / != (except against nil):
//     wrapped sentinels — exactly what rule 1 produces more of — never
//     compare equal; use errors.Is.
var ErrClass = &Analyzer{
	Name: "errclass",
	Doc: "errors crossing the transport boundary must keep their class: " +
		"wrap with %w, compare with errors.Is",
	Run: runErrClass,
}

func runErrClass(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, x)
			case *ast.BinaryExpr:
				checkErrCompare(pass, x)
			}
			return true
		})
	}
	return nil
}

// isErrorIface reports whether t is the error interface (or an
// interface extending it). Concrete types are excluded on purpose:
// comparing two concrete pointers is identity by intent, and
// formatting a concrete error field may be deliberate display.
func isErrorIface(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Interface); !ok {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	return types.Identical(t, errType) || types.Implements(t, errType.Underlying().(*types.Interface))
}

// checkErrorfWrap applies rule 1 to one call.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	fn := funcOf(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Errorf" || pkgPathOf(fn) != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	errArg := -1 // index into the variadic args (0 = first after format)
	for i, arg := range call.Args[1:] {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && isErrorIface(tv.Type) {
			errArg = i
			break
		}
	}
	if errArg < 0 {
		return
	}
	pass.report(Diagnostic{
		Pos: pass.Fset.Position(call.Pos()),
		Message: "fmt.Errorf drops the error chain (no %w): " +
			"retry classification cannot see the cause; wrap the error argument with %w",
		Edits: rewrapVerbEdit(pass.Fset, lit, errArg),
	})
}

// rewrapVerbEdit builds the -fix edit replacing the verb consumed by
// variadic argument argIdx with %w inside the quoted format literal.
// Only simple %v / %s verbs are rewritten; anything fancier (indexed
// arguments, flags, width) yields no edit and the finding is manual.
func rewrapVerbEdit(fset *token.FileSet, lit *ast.BasicLit, argIdx int) []Edit {
	src := lit.Value // quoted source text: verb bytes map 1:1 to file bytes
	arg := 0
	for i := 0; i < len(src)-1; i++ {
		if src[i] != '%' {
			continue
		}
		c := src[i+1]
		if c == '%' {
			i++
			continue
		}
		if c == '[' || !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			return nil // indexed/flagged verb: no mechanical fix
		}
		if arg == argIdx {
			if c != 'v' && c != 's' {
				return nil
			}
			base := fset.Position(lit.Pos()).Offset
			return []Edit{{
				Filename: fset.Position(lit.Pos()).Filename,
				Start:    base + i + 1,
				End:      base + i + 2,
				New:      "w",
			}}
		}
		arg++
		i++
	}
	return nil
}

// checkErrCompare applies rule 2 to one comparison.
func checkErrCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	isNilIdent := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if isNilIdent(be.X) || isNilIdent(be.Y) {
		return
	}
	tx, okx := pass.TypesInfo.Types[be.X]
	ty, oky := pass.TypesInfo.Types[be.Y]
	if !okx || !oky || !isErrorIface(tx.Type) || !isErrorIface(ty.Type) {
		return
	}
	pass.Reportf(be.OpPos,
		"errors compared with %s never match wrapped causes; use errors.Is", be.Op)
}
