package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ReleaseCheck enforces the pooled-buffer ownership protocol of the
// data plane: every value obtained from a pool-returning call
// (ReadFrameBuf, EncodeCallRequestBuf, EncodeCallReplyBuf, EncodeBuf,
// AcquireBuffer, acquireDecoder — recognized structurally as any call
// returning a pointer type with a Release/release method) must reach a
// Release call, an ownership transfer (returned, passed to a consuming
// call, stored, sent, or captured by a closure), or a defer, on every
// control-flow path, including early error returns. Functions taking
// an owned buffer parameter inherit the same obligation; WriteFrameBuf
// is the one borrower that does not consume its buffer.
var ReleaseCheck = &Analyzer{
	Name: "releasecheck",
	Doc: "pooled frame buffers must be Released (or ownership transferred) " +
		"on every control-flow path, including error returns",
	Run: runReleaseCheck,
}

// borrowerFuncs take a pooled buffer argument without consuming it:
// the caller still owns the buffer afterwards. StampMux only writes
// the version-2 header into the buffer's reserved prefix.
var borrowerFuncs = map[string]bool{
	"WriteFrameBuf":    true,
	"WriteMuxFrameBuf": true,
	"StampMux":         true,
	// putBulkMarker reads the buffer's current length to record a patch
	// position for the chunked encoders; the caller keeps ownership.
	"putBulkMarker": true,
}

func runReleaseCheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				checkOwnedParams(pass, fn.Type, fn.Body, fn.Recv, fn.Name.Name)
				scanForAcquisitions(pass, fn.Body.List, false)
			case *ast.FuncLit:
				checkOwnedParams(pass, fn.Type, fn.Body, nil, "")
				scanForAcquisitions(pass, fn.Body.List, false)
			}
			return true
		})
	}
	return nil
}

// checkOwnedParams applies the release obligation to pooled-type
// parameters: a function that accepts an owned buffer must dispose of
// it on every path. Receivers are exempt (methods on the pooled type
// itself), as are the declared borrower functions.
func checkOwnedParams(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt, recv *ast.FieldList, name string) {
	if borrowerFuncs[name] || ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		for _, pname := range field.Names {
			obj := pass.TypesInfo.Defs[pname]
			if obj == nil || pname.Name == "_" || !isPooledType(obj.Type()) {
				continue
			}
			tr := &tracker{pass: pass, obj: obj}
			out := tr.stmts(body.List, flowState{})
			if !out.terminated && !out.released {
				pass.Reportf(pname.Pos(),
					"owned %s parameter %s may reach the end of %s without Release or ownership transfer",
					typeName(obj.Type()), pname.Name, funcLabel(name))
			}
		}
	}
}

func funcLabel(name string) string {
	if name == "" {
		return "the function literal"
	}
	return name
}

func typeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			return "*" + named.Obj().Name()
		}
	}
	return t.String()
}

// scanForAcquisitions walks every statement list of a function body,
// starting a path analysis at each pooled-value acquisition.
// Nested function literals are handled by the file-level walk, not
// here, so each function's variables are analyzed exactly once.
func scanForAcquisitions(pass *Pass, stmts []ast.Stmt, inLoop bool) {
	for i, stmt := range stmts {
		if assign, ok := stmt.(*ast.AssignStmt); ok {
			for _, acq := range acquisitionsIn(pass, assign) {
				tr := &tracker{pass: pass, obj: acq.obj, errObj: acq.errObj, inLoopBody: inLoop}
				out := tr.stmts(stmts[i+1:], flowState{})
				if !out.terminated && !out.released {
					if inLoop {
						pass.Reportf(acq.obj.Pos(),
							"%s acquired from %s may be overwritten by the next loop iteration without Release",
							acq.obj.Name(), acq.src)
					} else {
						pass.Reportf(acq.obj.Pos(),
							"%s acquired from %s is not Released (or ownership-transferred) on every path",
							acq.obj.Name(), acq.src)
					}
				}
			}
		}
		scanNested(pass, stmt, inLoop)
	}
}

// scanNested recurses into compound statements to find acquisitions in
// inner blocks. Function literals are deliberately skipped: the
// file-level walk visits them.
func scanNested(pass *Pass, stmt ast.Stmt, inLoop bool) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		scanForAcquisitions(pass, s.List, inLoop)
	case *ast.IfStmt:
		scanForAcquisitions(pass, s.Body.List, inLoop)
		if s.Else != nil {
			scanNested(pass, s.Else, inLoop)
		}
	case *ast.ForStmt:
		scanForAcquisitions(pass, s.Body.List, true)
	case *ast.RangeStmt:
		scanForAcquisitions(pass, s.Body.List, true)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanForAcquisitions(pass, cc.Body, inLoop)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanForAcquisitions(pass, cc.Body, inLoop)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				scanForAcquisitions(pass, cc.Body, inLoop)
			}
		}
	case *ast.LabeledStmt:
		scanNested(pass, s.Stmt, inLoop)
	}
}

// An acquisition is one tracked variable born from a pool-returning
// call, with the error variable (if any) assigned alongside it: on the
// err != nil branch the pooled result is nil by convention, so error
// guards release the obligation.
type acquisition struct {
	obj    types.Object
	errObj types.Object
	src    string
}

func acquisitionsIn(pass *Pass, assign *ast.AssignStmt) []acquisition {
	if len(assign.Rhs) != 1 {
		return nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion, not a call
	}
	src := "the call"
	if fn := funcOf(pass.TypesInfo, call); fn != nil {
		src = fn.Name()
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		src = sel.Sel.Name
	} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		src = id.Name
	}

	var acqs []acquisition
	var errObj types.Object
	for _, lhs := range assign.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
			errObj = obj
			continue
		}
		if isPooledType(obj.Type()) {
			acqs = append(acqs, acquisition{obj: obj, src: src})
		}
	}
	for i := range acqs {
		acqs[i].errObj = errObj
	}
	return acqs
}

// flowState is the per-path ownership state of one tracked variable.
type flowState struct {
	// released means the variable no longer carries an obligation on
	// this path: it was Released, transferred, deferred, or is known
	// nil (error-guard branch).
	released bool
}

// outcome summarizes the analysis of a statement list.
type outcome struct {
	released   bool // ownership discharged at fall-through exit
	terminated bool // no path falls through (return/branch on all paths)
}

// tracker runs the path-sensitive release analysis for one variable.
type tracker struct {
	pass   *Pass
	obj    types.Object
	errObj types.Object
	// inLoopBody marks a variable acquired inside a loop body: an
	// unlabeled continue then re-enters the acquisition and abandons
	// the live value, so the back edge carries the release obligation.
	inLoopBody bool
	// nestedLoop counts loops entered during the walk; a continue at
	// depth > 0 targets an inner loop, not the acquiring one.
	nestedLoop int
}

func (tr *tracker) stmts(list []ast.Stmt, st flowState) outcome {
	for _, stmt := range list {
		if st.released {
			return outcome{released: true}
		}
		var term bool
		st, term = tr.stmt(stmt, st)
		if term {
			return outcome{terminated: true}
		}
	}
	return outcome{released: st.released}
}

// stmt applies one statement to the state, returning the new state and
// whether every path through the statement terminates the enclosing
// list (return, branch, or exhaustive terminating branches).
func (tr *tracker) stmt(stmt ast.Stmt, st flowState) (flowState, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return tr.applyExpr(s.X, st), false

	case *ast.DeferStmt:
		// A deferred Release (or consuming call, or capturing closure)
		// discharges the obligation on every subsequent path.
		return tr.applyExpr(s.Call, st), false

	case *ast.GoStmt:
		return tr.applyExpr(s.Call, st), false

	case *ast.SendStmt:
		if tr.valueUse(s.Value) {
			st.released = true // handed to another goroutine
		}
		return tr.applyExpr(s.Chan, st), false

	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			st = tr.applyExpr(rhs, st)
			if !st.released && tr.valueUse(rhs) {
				st.released = true // stored somewhere: ownership moved
			}
		}
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && tr.isVar(id) {
				if !st.released {
					tr.pass.Reportf(s.Pos(), "%s reassigned before Release", tr.obj.Name())
				}
				st.released = true // old value gone either way
			} else {
				st = tr.applyExpr(lhs, st) // index exprs etc.
			}
		}
		return st, false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = tr.applyExpr(v, st)
						if !st.released && tr.valueUse(v) {
							st.released = true
						}
					}
				}
			}
		}
		return st, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if tr.valueUse(r) {
				return st, true // returned to the caller: transferred
			}
			st = tr.applyExpr(r, st)
		}
		if !st.released {
			tr.pass.Reportf(s.Pos(), "return without releasing %s", tr.obj.Name())
		}
		return st, true

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = tr.stmt(s.Init, st)
		}
		st = tr.applyExpr(s.Cond, st)
		thenSt, elseSt := st, st
		switch tr.guardKind(s.Cond) {
		case guardErrNonNil:
			thenSt.released = true // v is nil when err != nil
		case guardErrNil:
			elseSt.released = true
		case guardValNil:
			thenSt.released = true // v itself is nil in the then branch
		case guardValNonNil:
			// The chunked-encoder decline convention: below threshold the
			// encoder returns nil and the caller falls through to the
			// monolithic path with no obligation.
			elseSt.released = true
		}
		thenOut := tr.stmts(s.Body.List, thenSt)
		var elseOut outcome
		switch e := s.Else.(type) {
		case nil:
			elseOut = outcome{released: elseSt.released}
		case *ast.BlockStmt:
			elseOut = tr.stmts(e.List, elseSt)
		default: // else-if
			elseOut = tr.stmts([]ast.Stmt{e}, elseSt)
		}
		return mergeBranches([]outcome{thenOut, elseOut})

	case *ast.BlockStmt:
		out := tr.stmts(s.List, st)
		return flowState{released: out.released}, out.terminated

	case *ast.LabeledStmt:
		return tr.stmt(s.Stmt, st)

	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = tr.stmt(s.Init, st)
		}
		if s.Tag != nil {
			st = tr.applyExpr(s.Tag, st)
		}
		return tr.caseBodies(s.Body, st)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = tr.stmt(s.Init, st)
		}
		return tr.caseBodies(s.Body, st)

	case *ast.SelectStmt:
		var outs []outcome
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			ccSt := st
			if cc.Comm != nil {
				ccSt, _ = tr.stmt(cc.Comm, ccSt)
			}
			outs = append(outs, tr.stmts(cc.Body, ccSt))
		}
		if len(outs) == 0 {
			return st, false
		}
		return mergeBranches(outs)

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = tr.stmt(s.Init, st)
		}
		if s.Cond != nil {
			st = tr.applyExpr(s.Cond, st)
		}
		tr.nestedLoop++
		bodyOut := tr.stmts(s.Body.List, st)
		tr.nestedLoop--
		_ = bodyOut
		if s.Cond == nil {
			// for{}: code after the loop is unreachable (break edges
			// are not modelled; no data-plane code needs them).
			return st, true
		}
		return st, false // body may run zero times

	case *ast.RangeStmt:
		st = tr.applyExpr(s.X, st)
		tr.nestedLoop++
		tr.stmts(s.Body.List, st)
		tr.nestedLoop--
		return st, false

	case *ast.BranchStmt:
		// An unlabeled continue targeting the loop the value was
		// acquired in re-runs the acquisition: a retry loop must
		// release the pooled value on each failed attempt's path
		// before backing off.
		if s.Tok == token.CONTINUE && s.Label == nil &&
			tr.inLoopBody && tr.nestedLoop == 0 && !st.released {
			tr.pass.Reportf(s.Pos(), "continue without releasing %s", tr.obj.Name())
		}
		// break/goto (and labeled continue) leave this list; the
		// target edge is not modelled, so treat the path as handled
		// elsewhere.
		return st, true

	default:
		return st, false
	}
}

// caseBodies merges the branches of a switch body; a missing default
// contributes an implicit fall-through path.
func (tr *tracker) caseBodies(body *ast.BlockStmt, st flowState) (flowState, bool) {
	var outs []outcome
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		ccSt := st
		for _, e := range cc.List {
			ccSt = tr.applyExpr(e, ccSt)
		}
		outs = append(outs, tr.stmts(cc.Body, ccSt))
	}
	if !hasDefault {
		outs = append(outs, outcome{released: st.released})
	}
	if len(outs) == 0 {
		return st, false
	}
	return mergeBranches(outs)
}

// mergeBranches combines sibling control-flow branches: paths that
// terminate impose no fall-through obligation; every continuing path
// must agree the value is released for the merged state to be
// released.
func mergeBranches(outs []outcome) (flowState, bool) {
	allTerminated := true
	allReleased := true
	for _, o := range outs {
		if !o.terminated {
			allTerminated = false
			if !o.released {
				allReleased = false
			}
		}
	}
	if allTerminated {
		return flowState{}, true
	}
	return flowState{released: allReleased}, false
}

// applyExpr folds release/transfer effects of an expression into the
// state: an explicit v.Release() call, v passed to a consuming call,
// or v captured by a function literal.
func (tr *tracker) applyExpr(e ast.Expr, st flowState) flowState {
	if e == nil || st.released {
		return st
	}
	released := false
	ast.Inspect(e, func(n ast.Node) bool {
		if released {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if tr.releases(x) || tr.transfersIn(x) {
				released = true
				return false
			}
		case *ast.FuncLit:
			if usesIdentOf(tr.pass.TypesInfo, x, tr.obj) {
				released = true // closure capture: ownership escapes
			}
			return false
		}
		return true
	})
	st.released = st.released || released
	return st
}

// releases reports whether call is v.Release() / v.release().
func (tr *tracker) releases(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Release" && sel.Sel.Name != "release" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && tr.isVar(id)
}

// transfersIn reports whether the call consumes v: v appears as a
// plain argument value (not as the receiver of a method call on v, and
// not to a declared borrower function).
func (tr *tracker) transfersIn(call *ast.CallExpr) bool {
	if fn := funcOf(tr.pass.TypesInfo, call); fn != nil && borrowerFuncs[fn.Name()] {
		return false
	}
	for _, arg := range call.Args {
		if tr.valueUse(arg) {
			return true
		}
	}
	return false
}

// valueUse reports whether expr mentions v as a value (rather than as
// the base of a field access or method call, which merely borrows).
func (tr *tracker) valueUse(expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	// First pass: idents that are the direct base of a selector (v.f,
	// v.M(...)) are borrows, not value uses — and so are arguments of
	// declared borrower calls (WriteFrameBuf lends, it does not take).
	borrowBases := make(map[*ast.Ident]bool)
	ast.Inspect(expr, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				borrowBases[id] = true
			}
		case *ast.CallExpr:
			if fn := funcOf(tr.pass.TypesInfo, x); fn != nil && borrowerFuncs[fn.Name()] {
				for _, arg := range x.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							borrowBases[id] = true
						}
						return true
					})
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closure capture is handled by applyExpr
		}
		if id, ok := n.(*ast.Ident); ok && tr.isVar(id) && !borrowBases[id] {
			found = true
		}
		return true
	})
	return found
}

func (tr *tracker) isVar(id *ast.Ident) bool {
	info := tr.pass.TypesInfo
	return info.Uses[id] == tr.obj || info.Defs[id] == tr.obj
}

type guard int

const (
	guardNone guard = iota
	guardErrNonNil
	guardErrNil
	guardValNonNil
	guardValNil
)

// guardKind classifies nil-comparison conditions: against the error
// variable paired with the acquisition (err != nil means the pooled
// result is nil by convention), or against the tracked value itself
// (a nil value carries no obligation — Release is nil-safe, and the
// chunked encoders return nil below threshold by design).
func (tr *tracker) guardKind(cond ast.Expr) guard {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return guardNone
	}
	if be.Op != token.NEQ && be.Op != token.EQL {
		return guardNone
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	var operand ast.Expr
	switch {
	case isNil(y):
		operand = x
	case isNil(x):
		operand = y
	default:
		return guardNone
	}
	if tr.errObj != nil && exprObj(tr.pass.TypesInfo, operand) == tr.errObj {
		if be.Op == token.NEQ {
			return guardErrNonNil
		}
		return guardErrNil
	}
	if id, ok := operand.(*ast.Ident); ok && tr.isVar(id) {
		if be.Op == token.NEQ {
			return guardValNonNil
		}
		return guardValNil
	}
	return guardNone
}
