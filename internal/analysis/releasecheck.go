package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ReleaseCheck enforces the pooled-buffer ownership protocol of the
// data plane: every value obtained from a pool-returning call
// (ReadFrameBuf, EncodeCallRequestBuf, EncodeCallReplyBuf, EncodeBuf,
// AcquireBuffer, acquireDecoder — recognized structurally as any call
// returning a pointer type with a Release/release method) must reach a
// Release call, an ownership transfer (returned, passed to a consuming
// call, stored, sent, or captured by a closure), or a defer, on every
// control-flow path, including early error returns. Functions taking
// an owned buffer parameter inherit the same obligation. Callee
// behavior is interprocedural since v2: a callee annotated
// //ninflint:owner borrow (or recorded as borrowing in the fact store)
// does NOT discharge the caller's obligation, and a callee whose body
// provably releases its parameter on every path is summarized as
// consuming, so handing the buffer across internal/protocol ↔
// internal/mux ↔ internal/server boundaries is tracked end to end.
var ReleaseCheck = &Analyzer{
	Name: "releasecheck",
	Doc: "pooled frame buffers must be Released (or ownership transferred) " +
		"on every control-flow path, including error returns",
	Run: runReleaseCheck,
}

// borrowerFuncs take a pooled buffer argument without consuming it:
// the caller still owns the buffer afterwards. StampMux only writes
// the version-2 header into the buffer's reserved prefix. This name
// table predates the fact store and is kept as the fallback for
// drivers that analyze one package with no cross-package facts (vet
// unitchecker mode); //ninflint:owner annotations and inferred
// summaries supersede it when a FactStore is present.
var borrowerFuncs = map[string]bool{
	"WriteFrameBuf":    true,
	"WriteMuxFrameBuf": true,
	"StampMux":         true,
	// putBulkMarker reads the buffer's current length to record a patch
	// position for the chunked encoders; the caller keeps ownership.
	"putBulkMarker": true,
}

func runReleaseCheck(pass *Pass) error {
	for _, f := range pass.Files {
		dirs := funcDirectives(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				checkOwnedParams(pass, fn.Type, fn.Body, fn.Name.Name, dirs[fn])
				scanForAcquisitions(pass, fn.Body.List, false)
			case *ast.FuncLit:
				checkOwnedParams(pass, fn.Type, fn.Body, "", nil)
				scanForAcquisitions(pass, fn.Body.List, false)
			}
			return true
		})
	}
	return nil
}

// checkOwnedParams applies the release obligation to pooled-type
// parameters: a function that accepts an owned buffer must dispose of
// it on every path. Receivers are exempt (methods on the pooled type
// itself), as are declared borrowers — by legacy name table or by a
// //ninflint:owner borrow annotation, which shifts the obligation back
// to every caller.
func checkOwnedParams(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt, name string, dirs []directive) {
	if borrowerFuncs[name] || ft.Params == nil {
		return
	}
	if role, ok := ownerDirective(dirs); ok && role == RoleBorrow {
		return
	}
	for _, field := range ft.Params.List {
		for _, pname := range field.Names {
			obj := pass.TypesInfo.Defs[pname]
			if obj == nil || pname.Name == "_" || !isPooledType(obj.Type()) {
				continue
			}
			tr := newBufferTracker(pass, obj, nil, false)
			out := tr.stmts(body.List, flowState{})
			if !out.terminated && !out.released {
				pass.Reportf(pname.Pos(),
					"owned %s parameter %s may reach the end of %s without Release or ownership transfer",
					typeName(obj.Type()), pname.Name, funcLabel(name))
			}
		}
	}
}

func funcLabel(name string) string {
	if name == "" {
		return "the function literal"
	}
	return name
}

func typeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			return "*" + named.Obj().Name()
		}
	}
	return t.String()
}

// scanForAcquisitions walks every statement list of a function body,
// starting a path analysis at each pooled-value acquisition.
// Nested function literals are handled by the file-level walk, not
// here, so each function's variables are analyzed exactly once.
func scanForAcquisitions(pass *Pass, stmts []ast.Stmt, inLoop bool) {
	for i, stmt := range stmts {
		if assign, ok := stmt.(*ast.AssignStmt); ok {
			for _, acq := range acquisitionsIn(pass, assign) {
				tr := newBufferTracker(pass, acq.obj, acq.errObj, inLoop)
				out := tr.stmts(stmts[i+1:], flowState{})
				if !out.terminated && !out.released {
					if inLoop {
						pass.Reportf(acq.obj.Pos(),
							"%s acquired from %s may be overwritten by the next loop iteration without Release",
							acq.obj.Name(), acq.src)
					} else {
						pass.Reportf(acq.obj.Pos(),
							"%s acquired from %s is not Released (or ownership-transferred) on every path",
							acq.obj.Name(), acq.src)
					}
				}
			}
		}
		scanNested(pass, stmt, inLoop)
	}
}

// scanNested recurses into compound statements to find acquisitions in
// inner blocks. Function literals are deliberately skipped: the
// file-level walk visits them.
func scanNested(pass *Pass, stmt ast.Stmt, inLoop bool) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		scanForAcquisitions(pass, s.List, inLoop)
	case *ast.IfStmt:
		scanForAcquisitions(pass, s.Body.List, inLoop)
		if s.Else != nil {
			scanNested(pass, s.Else, inLoop)
		}
	case *ast.ForStmt:
		scanForAcquisitions(pass, s.Body.List, true)
	case *ast.RangeStmt:
		scanForAcquisitions(pass, s.Body.List, true)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanForAcquisitions(pass, cc.Body, inLoop)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanForAcquisitions(pass, cc.Body, inLoop)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				scanForAcquisitions(pass, cc.Body, inLoop)
			}
		}
	case *ast.LabeledStmt:
		scanNested(pass, s.Stmt, inLoop)
	}
}

// An acquisition is one tracked variable born from a pool-returning
// call, with the error variable (if any) assigned alongside it: on the
// err != nil branch the pooled result is nil by convention, so error
// guards release the obligation.
type acquisition struct {
	obj    types.Object
	errObj types.Object
	src    string
}

func acquisitionsIn(pass *Pass, assign *ast.AssignStmt) []acquisition {
	if len(assign.Rhs) != 1 {
		return nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion, not a call
	}
	src := "the call"
	if fn := funcOf(pass.TypesInfo, call); fn != nil {
		src = fn.Name()
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		src = sel.Sel.Name
	} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		src = id.Name
	}

	var acqs []acquisition
	var errObj types.Object
	for _, lhs := range assign.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
			errObj = obj
			continue
		}
		if isPooledType(obj.Type()) {
			acqs = append(acqs, acquisition{obj: obj, src: src})
		}
	}
	for i := range acqs {
		acqs[i].errObj = errObj
	}
	return acqs
}

// bufPolicy supplies the pooled-buffer semantics to the engine tracker
// for one tracked variable.
type bufPolicy struct {
	pass   *Pass
	obj    types.Object
	errObj types.Object
}

// newBufferTracker wires a tracker with the pooled-buffer policy:
// Release/release methods discharge, consuming calls transfer, value
// uses move ownership, err/nil guards cancel the obligation, and leaks
// report in releasecheck's PR 2 vocabulary. The return-leak diagnostic
// carries a suggested fix (insert obj.Release() before the return) for
// ninflint -fix.
func newBufferTracker(pass *Pass, obj, errObj types.Object, inLoop bool) *tracker {
	p := &bufPolicy{pass: pass, obj: obj, errObj: errObj}
	return &tracker{
		pass:        pass,
		inLoopBody:  inLoop,
		isVar:       p.isVar,
		releases:    p.releases,
		transfersIn: p.transfersIn,
		valueUse:    p.valueUse,
		captures:    p.captures,
		guardKind:   p.guardKind,
		onReturn: func(pos token.Pos) {
			pass.report(Diagnostic{
				Pos:     pass.Fset.Position(pos),
				Message: "return without releasing " + obj.Name(),
				Edits:   insertBefore(pass.Fset, pos, obj.Name()+".Release()"),
			})
		},
		onContinue: func(pos token.Pos) {
			pass.report(Diagnostic{
				Pos:     pass.Fset.Position(pos),
				Message: "continue without releasing " + obj.Name(),
				Edits:   insertBefore(pass.Fset, pos, obj.Name()+".Release()"),
			})
		},
		onReassign: func(pos token.Pos) {
			pass.Reportf(pos, "%s reassigned before Release", obj.Name())
		},
	}
}

// insertBefore builds the -fix edit that inserts stmt as a new line
// directly above the statement at pos, reproducing its indentation.
func insertBefore(fset *token.FileSet, pos token.Pos, stmt string) []Edit {
	p := fset.Position(pos)
	if !p.IsValid() || p.Column < 1 {
		return nil
	}
	indent := strings.Repeat("\t", p.Column-1)
	return []Edit{{
		Filename: p.Filename,
		Start:    p.Offset,
		End:      p.Offset,
		New:      stmt + "\n" + indent,
	}}
}

// isBorrower reports whether fn lends rather than takes its pooled
// arguments: the legacy name table, a cross-package RoleBorrow fact
// (annotation), but never an inferred-consume summary.
func (b *bufPolicy) isBorrower(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if borrowerFuncs[fn.Name()] {
		return true
	}
	return b.pass.Facts.Owner(fn) == RoleBorrow
}

// releases reports whether call is v.Release() / v.release().
func (b *bufPolicy) releases(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Release" && sel.Sel.Name != "release" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && b.isVar(id)
}

// transfersIn reports whether the call consumes v: v appears as a
// plain argument value (not as the receiver of a method call on v, and
// not to a borrower).
func (b *bufPolicy) transfersIn(call *ast.CallExpr) bool {
	if b.isBorrower(funcOf(b.pass.TypesInfo, call)) {
		return false
	}
	for _, arg := range call.Args {
		if b.valueUse(arg) {
			return true
		}
	}
	return false
}

func (b *bufPolicy) captures(fl *ast.FuncLit) bool {
	return usesIdentOf(b.pass.TypesInfo, fl, b.obj)
}

// valueUse reports whether expr mentions v as a value (rather than as
// the base of a field access or method call, which merely borrows).
func (b *bufPolicy) valueUse(expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	// First pass: idents that are the direct base of a selector (v.f,
	// v.M(...)) are borrows, not value uses — and so are arguments of
	// borrower calls (WriteFrameBuf lends, it does not take).
	borrowBases := make(map[*ast.Ident]bool)
	ast.Inspect(expr, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				borrowBases[id] = true
			}
		case *ast.CallExpr:
			if b.isBorrower(funcOf(b.pass.TypesInfo, x)) {
				for _, arg := range x.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							borrowBases[id] = true
						}
						return true
					})
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closure capture is handled by applyExpr
		}
		if id, ok := n.(*ast.Ident); ok && b.isVar(id) && !borrowBases[id] {
			found = true
		}
		return true
	})
	return found
}

func (b *bufPolicy) isVar(id *ast.Ident) bool {
	info := b.pass.TypesInfo
	return info.Uses[id] == b.obj || info.Defs[id] == b.obj
}

// guardKind classifies nil-comparison conditions: against the error
// variable paired with the acquisition (err != nil means the pooled
// result is nil by convention), or against the tracked value itself
// (a nil value carries no obligation — Release is nil-safe, and the
// chunked encoders return nil below threshold by design).
func (b *bufPolicy) guardKind(cond ast.Expr) guard {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return guardNone
	}
	if be.Op != token.NEQ && be.Op != token.EQL {
		return guardNone
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	var operand ast.Expr
	switch {
	case isNil(y):
		operand = x
	case isNil(x):
		operand = y
	default:
		return guardNone
	}
	if b.errObj != nil && exprObj(b.pass.TypesInfo, operand) == b.errObj {
		if be.Op == token.NEQ {
			return guardErrNonNil
		}
		return guardErrNil
	}
	if id, ok := operand.(*ast.Ident); ok && b.isVar(id) {
		if be.Op == token.NEQ {
			return guardValNonNil
		}
		return guardValNil
	}
	return guardNone
}
