package analysis

import (
	"go/ast"
	"go/token"
)

// The obligation tracker: the path-sensitive walker releasecheck
// introduced in PR 2, extracted and parameterized so other passes can
// run the same flow analysis over different resources. The walker
// understands the data plane's control-flow conventions — error-guard
// branches, nil-decline encoders, retry loops, select fan-in — and the
// pass supplies the semantics through hooks: what counts as the
// tracked variable, what discharges the obligation, how conditions
// guard it, and what to say when a path leaks. releasecheck
// instantiates it per pooled buffer; seqlife instantiates it per
// registered Seq.

// flowState is the per-path obligation state of one tracked resource.
type flowState struct {
	// released means the resource no longer carries an obligation on
	// this path: it was discharged, transferred, deferred, or is known
	// nil/absent (error-guard branch).
	released bool
}

// outcome summarizes the analysis of a statement list.
type outcome struct {
	released   bool // obligation discharged at fall-through exit
	terminated bool // no path falls through (return/branch on all paths)
}

// tracker runs the path-sensitive obligation analysis for one
// resource. The func fields are the pass-specific policy; nil report
// hooks make the corresponding violation silent.
type tracker struct {
	pass *Pass

	// inLoopBody marks a resource acquired inside a loop body: an
	// unlabeled continue then re-enters the acquisition and abandons
	// the live value, so the back edge carries the obligation.
	inLoopBody bool
	// nestedLoop counts loops entered during the walk; a continue at
	// depth > 0 targets an inner loop, not the acquiring one.
	nestedLoop int

	// silent suppresses all reports and counts them instead; the fact
	// prepass uses this to test "discharges on every path" without
	// emitting diagnostics.
	silent     bool
	violations int

	// isVar reports whether id denotes the tracked resource.
	isVar func(id *ast.Ident) bool
	// releases reports whether the call explicitly discharges the
	// obligation (v.Release(), s.deregister(seq), delete(m, seq)).
	releases func(call *ast.CallExpr) bool
	// transfersIn reports whether the call consumes the resource
	// (passed by value to a non-borrowing callee).
	transfersIn func(call *ast.CallExpr) bool
	// valueUse reports whether expr mentions the resource as a value
	// (stored, returned, sent: ownership moves).
	valueUse func(expr ast.Expr) bool
	// captures reports whether the function literal captures the
	// resource (ownership escapes into the closure).
	captures func(fl *ast.FuncLit) bool
	// discharges, if non-nil, recognizes additional discharging nodes
	// inside expressions (e.g. seqlife treats receiving from the
	// registered reply channel as the reply-path discharge).
	discharges func(n ast.Node) bool
	// guardKind classifies branch conditions relative to the resource.
	guardKind func(cond ast.Expr) guard

	// Report hooks for the three leak shapes.
	onReturn   func(pos token.Pos)
	onContinue func(pos token.Pos)
	onReassign func(pos token.Pos)
}

// guard classifies a branch condition's effect on the obligation.
type guard int

const (
	guardNone guard = iota
	// guardErrNonNil: condition is err != nil for the error paired
	// with the acquisition; the resource is nil/absent by convention
	// in the then branch.
	guardErrNonNil
	// guardErrNil: err == nil; the else branch carries no obligation.
	guardErrNil
	// guardValNonNil: v != nil; the else (nil) branch carries no
	// obligation — the chunked-encoder decline convention.
	guardValNonNil
	// guardValNil: v == nil; the then branch carries no obligation.
	guardValNil
)

func (tr *tracker) report(hook func(token.Pos), pos token.Pos) {
	if tr.silent {
		tr.violations++
		return
	}
	if hook != nil {
		hook(pos)
	}
}

func (tr *tracker) stmts(list []ast.Stmt, st flowState) outcome {
	for _, stmt := range list {
		if st.released {
			return outcome{released: true}
		}
		var term bool
		st, term = tr.stmt(stmt, st)
		if term {
			return outcome{terminated: true}
		}
	}
	return outcome{released: st.released}
}

// stmt applies one statement to the state, returning the new state and
// whether every path through the statement terminates the enclosing
// list (return, branch, or exhaustive terminating branches).
func (tr *tracker) stmt(stmt ast.Stmt, st flowState) (flowState, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return tr.applyExpr(s.X, st), false

	case *ast.DeferStmt:
		// A deferred discharge (Release, consuming call, capturing
		// closure) covers every subsequent path.
		return tr.applyExpr(s.Call, st), false

	case *ast.GoStmt:
		return tr.applyExpr(s.Call, st), false

	case *ast.SendStmt:
		if tr.valueUse(s.Value) {
			st.released = true // handed to another goroutine
		}
		return tr.applyExpr(s.Chan, st), false

	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			st = tr.applyExpr(rhs, st)
			if !st.released && tr.valueUse(rhs) {
				st.released = true // stored somewhere: ownership moved
			}
		}
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && tr.isVar(id) {
				if !st.released {
					tr.report(tr.onReassign, s.Pos())
				}
				st.released = true // old value gone either way
			} else {
				st = tr.applyExpr(lhs, st) // index exprs etc.
			}
		}
		return st, false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = tr.applyExpr(v, st)
						if !st.released && tr.valueUse(v) {
							st.released = true
						}
					}
				}
			}
		}
		return st, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if tr.valueUse(r) {
				return st, true // returned to the caller: transferred
			}
			st = tr.applyExpr(r, st)
		}
		if !st.released {
			tr.report(tr.onReturn, s.Pos())
		}
		return st, true

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = tr.stmt(s.Init, st)
		}
		st = tr.applyExpr(s.Cond, st)
		thenSt, elseSt := st, st
		switch tr.guardKind(s.Cond) {
		case guardErrNonNil:
			thenSt.released = true // v is nil when err != nil
		case guardErrNil:
			elseSt.released = true
		case guardValNil:
			thenSt.released = true // v itself is nil in the then branch
		case guardValNonNil:
			// The chunked-encoder decline convention: below threshold the
			// encoder returns nil and the caller falls through to the
			// monolithic path with no obligation.
			elseSt.released = true
		}
		thenOut := tr.stmts(s.Body.List, thenSt)
		var elseOut outcome
		switch e := s.Else.(type) {
		case nil:
			elseOut = outcome{released: elseSt.released}
		case *ast.BlockStmt:
			elseOut = tr.stmts(e.List, elseSt)
		default: // else-if
			elseOut = tr.stmts([]ast.Stmt{e}, elseSt)
		}
		return mergeBranches([]outcome{thenOut, elseOut})

	case *ast.BlockStmt:
		out := tr.stmts(s.List, st)
		return flowState{released: out.released}, out.terminated

	case *ast.LabeledStmt:
		return tr.stmt(s.Stmt, st)

	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = tr.stmt(s.Init, st)
		}
		if s.Tag != nil {
			st = tr.applyExpr(s.Tag, st)
		}
		return tr.caseBodies(s.Body, st)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = tr.stmt(s.Init, st)
		}
		return tr.caseBodies(s.Body, st)

	case *ast.SelectStmt:
		var outs []outcome
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			ccSt := st
			if cc.Comm != nil {
				ccSt, _ = tr.stmt(cc.Comm, ccSt)
			}
			outs = append(outs, tr.stmts(cc.Body, ccSt))
		}
		if len(outs) == 0 {
			return st, false
		}
		return mergeBranches(outs)

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = tr.stmt(s.Init, st)
		}
		if s.Cond != nil {
			st = tr.applyExpr(s.Cond, st)
		}
		tr.nestedLoop++
		bodyOut := tr.stmts(s.Body.List, st)
		tr.nestedLoop--
		_ = bodyOut
		if s.Cond == nil {
			// for{}: code after the loop is unreachable (break edges
			// are not modelled; no data-plane code needs them).
			return st, true
		}
		return st, false // body may run zero times

	case *ast.RangeStmt:
		st = tr.applyExpr(s.X, st)
		tr.nestedLoop++
		tr.stmts(s.Body.List, st)
		tr.nestedLoop--
		return st, false

	case *ast.BranchStmt:
		// An unlabeled continue targeting the loop the resource was
		// acquired in re-runs the acquisition: a retry loop must
		// discharge on each failed attempt's path before backing off.
		if s.Tok == token.CONTINUE && s.Label == nil &&
			tr.inLoopBody && tr.nestedLoop == 0 && !st.released {
			tr.report(tr.onContinue, s.Pos())
		}
		// break/goto (and labeled continue) leave this list; the
		// target edge is not modelled, so treat the path as handled
		// elsewhere.
		return st, true

	default:
		return st, false
	}
}

// caseBodies merges the branches of a switch body; a missing default
// contributes an implicit fall-through path.
func (tr *tracker) caseBodies(body *ast.BlockStmt, st flowState) (flowState, bool) {
	var outs []outcome
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		ccSt := st
		for _, e := range cc.List {
			ccSt = tr.applyExpr(e, ccSt)
		}
		outs = append(outs, tr.stmts(cc.Body, ccSt))
	}
	if !hasDefault {
		outs = append(outs, outcome{released: st.released})
	}
	if len(outs) == 0 {
		return st, false
	}
	return mergeBranches(outs)
}

// mergeBranches combines sibling control-flow branches: paths that
// terminate impose no fall-through obligation; every continuing path
// must agree the obligation is discharged for the merged state to be
// released.
func mergeBranches(outs []outcome) (flowState, bool) {
	allTerminated := true
	allReleased := true
	for _, o := range outs {
		if !o.terminated {
			allTerminated = false
			if !o.released {
				allReleased = false
			}
		}
	}
	if allTerminated {
		return flowState{}, true
	}
	return flowState{released: allReleased}, false
}

// applyExpr folds discharge effects of an expression into the state:
// an explicit discharge call, the resource passed to a consuming call,
// a capturing function literal, or a pass-specific discharging node.
func (tr *tracker) applyExpr(e ast.Expr, st flowState) flowState {
	if e == nil || st.released {
		return st
	}
	released := false
	ast.Inspect(e, func(n ast.Node) bool {
		if released {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if tr.releases(x) || tr.transfersIn(x) {
				released = true
				return false
			}
		case *ast.FuncLit:
			if tr.captures(x) {
				released = true // closure capture: ownership escapes
			}
			return false
		default:
			if tr.discharges != nil && tr.discharges(n) {
				released = true
				return false
			}
		}
		return true
	})
	st.released = st.released || released
	return st
}
