package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxDeadline checks that exported entry points which accept a
// context.Context actually honor it on the network path: a dial inside
// such a function must be context-aware (net.Dialer.DialContext, or a
// helper that is itself handed the context), and the context must not
// be dropped on the floor while the function does socket work. A
// WAN-side caller that sets a deadline and still waits the full TCP
// timeout is the failure mode the paper's WAN experiments (§6) exist
// to quantify.
var CtxDeadline = &Analyzer{
	Name: "ctxdeadline",
	Doc: "exported functions taking a context.Context must propagate " +
		"it to dials and deadlines on their network path",
	Run: runCtxDeadline,
}

func runCtxDeadline(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			ctxObj := contextParam(pass, fn)
			if ctxObj == nil {
				continue
			}
			checkCtxPropagation(pass, fn, ctxObj)
		}
	}
	return nil
}

// contextParam returns the object of the function's context.Context
// parameter, or nil.
func contextParam(pass *Pass, fn *ast.FuncDecl) types.Object {
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkCtxPropagation flags context-blind dials, and a context that is
// never consulted at all in a function that does network work.
func checkCtxPropagation(pass *Pass, fn *ast.FuncDecl, ctxObj types.Object) {
	ctxUsed := false
	netWork := false
	reportedDial := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctxObj {
			ctxUsed = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := funcOf(pass.TypesInfo, call); f != nil && pkgPathOf(f) == "net" &&
			strings.HasPrefix(f.Name(), "Dial") {
			netWork = true
			if f.Name() != "DialContext" {
				reportedDial = true
				pass.Reportf(call.Pos(),
					"%s ignores the ctx parameter; use (&net.Dialer{}).DialContext so cancellation and deadlines reach the dial", f.Name())
			}
			return true
		}
		// Conn methods and conn-consuming helpers mark the function as
		// doing network work.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isNetConnType(tv.Type) {
				netWork = true
			}
		}
		for _, arg := range call.Args {
			if tv, ok := pass.TypesInfo.Types[arg]; ok && isNetConnType(tv.Type) {
				netWork = true
			}
		}
		return true
	})
	if netWork && !ctxUsed && !reportedDial {
		pass.Reportf(fn.Name.Pos(),
			"%s takes a context.Context but never consults it on its network path; propagate it to dials or deadlines",
			fn.Name.Name)
	}
}
