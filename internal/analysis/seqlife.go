package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SeqLife is the per-Seq analogue of releasecheck: every mux sequence
// number registered in a session/dispatch map (pending replies, open
// reassemblies) must be removed on all paths — reply delivery,
// context abandonment, session teardown, bulk abort. A leaked entry is
// a leaked reply channel and an ever-growing map on a long-lived
// connection, exactly the lifecycle bug class the multi-client runs
// would only surface after hours.
//
// The pass works in two layers. Package hygiene: a seq-keyed map field
// (map with an unsigned key, inserted into under a *seq* key) must
// have both a delete site and a teardown (a nil/make reset or a range
// sweep) somewhere in its package. Path tracking: a call that
// registers a fresh seq and returns it (recognized by body shape and
// recorded as a fact) starts an obligation in the caller, discharged
// on every path by a deregistering call, a delete, receiving from the
// paired reply channel, or handing the seq onward (returned or sent).
var SeqLife = &Analyzer{
	Name: "seqlife",
	Doc: "mux sequences registered in session/dispatch maps must be removed " +
		"on all paths (reply, abandon, teardown, bulk abort)",
	Run: runSeqLife,
}

// seqMapUse inventories one seq-keyed map field within a package.
type seqMapUse struct {
	field     *types.Var
	inserts   []token.Pos
	deletes   int
	teardowns int
}

// seqSummaries is the per-package function classification the path
// layer consumes.
type seqSummaries struct {
	registers   map[*types.Func]*types.Var // inserts a fresh local key and returns it
	deregisters map[*types.Func]*types.Var // deletes a param key or tears the map down
}

func runSeqLife(pass *Pass) error {
	sums := &seqSummaries{
		registers:   make(map[*types.Func]*types.Var),
		deregisters: make(map[*types.Func]*types.Var),
	}
	inv := make(map[*types.Var]*seqMapUse)

	// Layer 1: inventory every seq-map field and classify functions.
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			classifySeqFunc(pass, fd, inv, sums)
		}
	}

	// Teardown by transitive call: Close() tears down by calling
	// fail(). One fixpoint sweep over direct in-package calls.
	for changed := true; changed; {
		changed = false
		for _, f := range pass.Files {
			if isTestFile(pass, f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil || sums.deregisters[fn] != nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := funcOf(pass.TypesInfo, call); callee != nil {
						if fld := sums.deregisters[callee]; fld != nil {
							sums.deregisters[fn] = fld
							changed = true
							return false
						}
					}
					return true
				})
			}
		}
	}

	// Publish summaries for dependent packages.
	for fn, fld := range sums.registers {
		pass.Facts.SetSeqMap(funcKey(fn), fld.String(), "")
	}
	for fn, fld := range sums.deregisters {
		pass.Facts.SetSeqMap(funcKey(fn), "", fld.String())
	}

	// Package-hygiene findings.
	for fld, use := range inv {
		switch {
		case use.deletes == 0:
			for _, pos := range use.inserts {
				pass.Reportf(pos,
					"seq registered in %s.%s is never deleted in this package (no delete site: reply, abandon, and abort paths all leak)",
					fieldOwnerName(fld), fld.Name())
			}
		case use.teardowns == 0:
			for _, pos := range use.inserts {
				pass.Reportf(pos,
					"seq map %s.%s has no teardown (nil/make reset or range sweep): entries in flight at close leak their waiters",
					fieldOwnerName(fld), fld.Name())
			}
		}
	}

	// Layer 2: path-track register-style acquisitions in callers.
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					scanSeqAcquisitions(pass, sums, fn.Body.List, false)
				}
			case *ast.FuncLit:
				scanSeqAcquisitions(pass, sums, fn.Body.List, false)
			}
			return true
		})
	}
	return nil
}

// isTestFile reports whether the file is a _test.go file; the runtime
// invariants the protocol passes enforce do not bind test scaffolding
// (tests legitimately leak seqs and skip gates to probe those paths).
func isTestFile(pass *Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// fieldOwnerName names the struct type a field belongs to, for
// diagnostics ("Session.pending").
func fieldOwnerName(fld *types.Var) string {
	if fld.Pkg() == nil {
		return "?"
	}
	// Scan the package scope for the named type owning the field.
	scope := fld.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fld {
				return tn.Name()
			}
		}
	}
	return fld.Pkg().Name()
}

// seqMapField resolves expr to a struct field of seq-map shape
// (map with an unsigned basic key), or nil.
func seqMapField(info *types.Info, expr ast.Expr) *types.Var {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj := info.Uses[sel.Sel]
	if s, found := info.Selections[sel]; found {
		obj = s.Obj()
	}
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	m, ok := v.Type().Underlying().(*types.Map)
	if !ok {
		return nil
	}
	b, ok := m.Key().Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsUnsigned == 0 {
		return nil
	}
	return v
}

// mentionsSeqIdent reports whether the expression mentions an
// identifier whose name contains "seq" — the convention every
// sequence-number variable in the data plane follows.
func mentionsSeqIdent(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok &&
			strings.Contains(strings.ToLower(id.Name), "seq") {
			found = true
		}
		return !found
	})
	return found
}

// classifySeqFunc inventories one function's seq-map effects and
// classifies it as a registering or deregistering function.
func classifySeqFunc(pass *Pass, fd *ast.FuncDecl, inv map[*types.Var]*seqMapUse, sums *seqSummaries) {
	info := pass.TypesInfo
	fn, _ := info.Defs[fd.Name].(*types.Func)

	// Parameter (and receiver) objects, to tell locally created keys
	// from caller-supplied ones.
	params := make(map[types.Object]bool)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)

	use := func(fld *types.Var) *seqMapUse {
		u := inv[fld]
		if u == nil {
			u = &seqMapUse{field: fld}
			inv[fld] = u
		}
		return u
	}

	var insertedLocalKey types.Object
	var insertedField *types.Var
	var deregField, teardownField *types.Var

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if fld := seqMapField(info, ix.X); fld != nil && mentionsSeqIdent(ix.Index) {
						use(fld).inserts = append(use(fld).inserts, ix.Pos())
						if id, ok := ast.Unparen(ix.Index).(*ast.Ident); ok {
							if obj := exprObj(info, id); obj != nil && !params[obj] {
								insertedLocalKey, insertedField = obj, fld
							}
						}
					}
					continue
				}
				// Teardown reset: field = nil, field = make(...).
				if fld := seqMapField(info, lhs); fld != nil && i < len(s.Rhs) {
					switch rhs := ast.Unparen(s.Rhs[i]).(type) {
					case *ast.Ident:
						if rhs.Name == "nil" {
							use(fld).teardowns++
							teardownField = fld
						}
					case *ast.CallExpr:
						if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && id.Name == "make" {
							use(fld).teardowns++
						}
					}
				}
				// Teardown by aliasing (waiters := s.pending; s.pending
				// = nil) is covered by the nil reset above.
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && id.Name == "delete" && len(s.Args) == 2 {
				if fld := seqMapField(info, s.Args[0]); fld != nil {
					use(fld).deletes++
					if obj := exprObj(info, s.Args[1]); obj != nil && params[obj] {
						deregField = fld
					}
				}
			}
		case *ast.RangeStmt:
			if fld := seqMapField(info, s.X); fld != nil {
				use(fld).teardowns++
				teardownField = fld
			}
		}
		return true
	})

	if fn == nil {
		return
	}
	if insertedLocalKey != nil && insertedField != nil && returnsObj(info, fd.Body, insertedLocalKey) {
		sums.registers[fn] = insertedField
	}
	if deregField != nil {
		sums.deregisters[fn] = deregField
	} else if teardownField != nil {
		sums.deregisters[fn] = teardownField
	}
}

// returnsObj reports whether some return statement hands obj back to
// the caller (directly in the top-level function body, not a nested
// literal).
func returnsObj(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if id, ok := ast.Unparen(r).(*ast.Ident); ok && exprObj(info, id) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// scanSeqAcquisitions walks a statement list for register-call
// acquisitions (seq, ch, err := s.register(...)) and path-tracks each,
// mirroring releasecheck's scan structure.
func scanSeqAcquisitions(pass *Pass, sums *seqSummaries, stmts []ast.Stmt, inLoop bool) {
	for i, stmt := range stmts {
		if assign, ok := stmt.(*ast.AssignStmt); ok {
			if acq := seqAcquisitionIn(pass, sums, assign); acq != nil {
				tr := newSeqTracker(pass, sums, acq, inLoop)
				out := tr.stmts(stmts[i+1:], flowState{})
				if !out.terminated && !out.released {
					pass.Reportf(acq.seqObj.Pos(),
						"seq %s registered via %s is not deregistered (or its reply channel received from) on every path",
						acq.seqObj.Name(), acq.src)
				}
			}
		}
		scanSeqNested(pass, sums, stmt, inLoop)
	}
}

func scanSeqNested(pass *Pass, sums *seqSummaries, stmt ast.Stmt, inLoop bool) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		scanSeqAcquisitions(pass, sums, s.List, inLoop)
	case *ast.IfStmt:
		scanSeqAcquisitions(pass, sums, s.Body.List, inLoop)
		if s.Else != nil {
			scanSeqNested(pass, sums, s.Else, inLoop)
		}
	case *ast.ForStmt:
		scanSeqAcquisitions(pass, sums, s.Body.List, true)
	case *ast.RangeStmt:
		scanSeqAcquisitions(pass, sums, s.Body.List, true)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanSeqAcquisitions(pass, sums, cc.Body, inLoop)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanSeqAcquisitions(pass, sums, cc.Body, inLoop)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				scanSeqAcquisitions(pass, sums, cc.Body, inLoop)
			}
		}
	case *ast.LabeledStmt:
		scanSeqNested(pass, sums, s.Stmt, inLoop)
	}
}

// seqAcquisition is one registered sequence being tracked: the key
// variable, its paired reply channel, and the error assigned alongside
// (err != nil means no registration happened).
type seqAcquisition struct {
	seqObj types.Object
	chObj  types.Object
	errObj types.Object
	src    string
}

// seqAcquisitionIn recognizes `seq, ch, err := x.register(...)` —
// a single call on the right whose callee carries a register summary
// (local classification or cross-package fact).
func seqAcquisitionIn(pass *Pass, sums *seqSummaries, assign *ast.AssignStmt) *seqAcquisition {
	if len(assign.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := funcOf(pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	if sums.registers[fn] == nil {
		if reg, _ := pass.Facts.SeqMap(fn); reg == "" {
			return nil
		}
	}
	acq := &seqAcquisition{src: fn.Name()}
	for _, lhs := range assign.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		switch t := obj.Type().Underlying().(type) {
		case *types.Basic:
			if t.Info()&types.IsUnsigned != 0 {
				acq.seqObj = obj
			}
		case *types.Chan:
			acq.chObj = obj
		default:
			if types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
				acq.errObj = obj
			}
		}
	}
	if acq.seqObj == nil {
		return nil
	}
	return acq
}

// seqPolicy supplies sequence-registration semantics to the engine
// tracker. Sequence numbers are plain values, so "mentions" is not
// transfer: only returning or sending the bare seq/channel hands the
// obligation onward. Discharges are a deregistering call (by summary),
// a direct delete, a teardown call, or a receive from the paired reply
// channel (the deliverer removed the entry before handing the result
// over).
type seqPolicy struct {
	pass *Pass
	sums *seqSummaries
	acq  *seqAcquisition
}

func newSeqTracker(pass *Pass, sums *seqSummaries, acq *seqAcquisition, inLoop bool) *tracker {
	p := &seqPolicy{pass: pass, sums: sums, acq: acq}
	return &tracker{
		pass:        pass,
		inLoopBody:  inLoop,
		isVar:       p.isVar,
		releases:    p.releases,
		transfersIn: func(*ast.CallExpr) bool { return false },
		valueUse:    p.valueUse,
		captures:    p.captures,
		discharges:  p.discharges,
		guardKind:   p.guardKind,
		onReturn: func(pos token.Pos) {
			pass.Reportf(pos, "return without deregistering seq %s (registered via %s)",
				acq.seqObj.Name(), acq.src)
		},
		onContinue: func(pos token.Pos) {
			pass.Reportf(pos, "continue without deregistering seq %s (registered via %s)",
				acq.seqObj.Name(), acq.src)
		},
		onReassign: func(pos token.Pos) {
			pass.Reportf(pos, "seq %s reassigned before deregistration", acq.seqObj.Name())
		},
	}
}

func (p *seqPolicy) isVar(id *ast.Ident) bool {
	obj := p.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = p.pass.TypesInfo.Defs[id]
	}
	return obj != nil && (obj == p.acq.seqObj || (p.acq.chObj != nil && obj == p.acq.chObj))
}

func (p *seqPolicy) mentionsSeq(expr ast.Expr) bool {
	return usesIdentOf(p.pass.TypesInfo, expr, p.acq.seqObj)
}

func (p *seqPolicy) releases(call *ast.CallExpr) bool {
	// delete(m, seq)
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
		return p.mentionsSeq(call.Args[1])
	}
	fn := funcOf(p.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if p.sums.deregisters[fn] != nil {
		return true
	}
	_, dereg := p.pass.Facts.SeqMap(fn)
	return dereg != ""
}

// valueUse: only the bare identifier counts — embedding the seq value
// in a struct or passing it to a stamping call copies the number
// without moving the registration obligation.
func (p *seqPolicy) valueUse(expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && p.isVar(id)
}

func (p *seqPolicy) captures(fl *ast.FuncLit) bool {
	return usesIdentOf(p.pass.TypesInfo, fl, p.acq.seqObj)
}

// discharges recognizes a receive from the paired reply channel.
func (p *seqPolicy) discharges(n ast.Node) bool {
	ue, ok := n.(*ast.UnaryExpr)
	if !ok || ue.Op != token.ARROW || p.acq.chObj == nil {
		return false
	}
	id, ok := ast.Unparen(ue.X).(*ast.Ident)
	return ok && exprObj(p.pass.TypesInfo, id) == p.acq.chObj
}

func (p *seqPolicy) guardKind(cond ast.Expr) guard {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return guardNone
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	var operand ast.Expr
	switch {
	case isNil(y):
		operand = x
	case isNil(x):
		operand = y
	default:
		return guardNone
	}
	if p.acq.errObj != nil && exprObj(p.pass.TypesInfo, operand) == p.acq.errObj {
		if be.Op == token.NEQ {
			return guardErrNonNil
		}
		return guardErrNil
	}
	return guardNone
}
