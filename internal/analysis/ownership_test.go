package analysis_test

import (
	"testing"

	"ninf/internal/analysis"
	"ninf/internal/analysis/analysistest"
)

// TestOwnershipInterprocedural proves releasecheck consults the fact
// store across package boundaries: the callee summaries (one inferred
// consume, one annotated borrow) live in the bufpkg subpackage, and
// the caller-side fixtures only pass when those summaries propagate.
func TestOwnershipInterprocedural(t *testing.T) {
	analysistest.Run(t, "testdata/ownership", analysis.ReleaseCheck)
}
