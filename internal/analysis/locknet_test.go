package analysis_test

import (
	"testing"

	"ninf/internal/analysis"
	"ninf/internal/analysis/analysistest"
)

func TestLockNet(t *testing.T) {
	analysistest.Run(t, "testdata/locknet", analysis.LockNet)
}
