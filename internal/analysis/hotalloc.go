package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc guards the annotated hot paths — mux writer/reader loops,
// XDR encode/decode, chunk reassembly — against per-iteration heap
// traffic. The paper's throughput plateaus (§5–6) are reproduced with
// steady-state loops that allocate nothing per frame; a stray
// fmt.Sprintf or escaping &T{} in one of them shows up as GC pressure
// under exactly the multi-client load being measured. The pass only
// looks inside functions annotated //ninflint:hotpath, and only at
// loop bodies within them; allocation in a block that exits the loop
// (an error path ending in return/break/panic) is cold and exempt.
//
// Flagged shapes: &T{...} and new/make, []byte<->string conversions,
// fmt.Sprint* calls, and function literals capturing enclosing
// variables (a per-iteration closure allocation).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "//ninflint:hotpath functions must not allocate per loop " +
		"iteration (escaping composites, conversions, Sprintf, capturing closures)",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		dirs := funcDirectives(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(dirs[fd]) {
				continue
			}
			hotStmts(pass, fd.Body.List, false)
		}
	}
	return nil
}

// hotStmts walks a statement list; inLoop marks statements executed
// once per iteration of some enclosing loop.
func hotStmts(pass *Pass, list []ast.Stmt, inLoop bool) {
	for _, stmt := range list {
		hotStmt(pass, stmt, inLoop)
	}
}

func hotStmt(pass *Pass, stmt ast.Stmt, inLoop bool) {
	switch s := stmt.(type) {
	case *ast.ForStmt:
		hotStmts(pass, s.Body.List, true)
	case *ast.RangeStmt:
		hotStmts(pass, s.Body.List, true)
	case *ast.BlockStmt:
		hotStmts(pass, s.List, inLoop)
	case *ast.IfStmt:
		// A branch that leaves the loop (or function) is a cold exit:
		// it runs at most once per loop lifetime, so its allocations
		// (error construction, teardown) don't count per iteration.
		if !inLoop || !terminatesBlock(s.Body) {
			hotStmts(pass, s.Body.List, inLoop)
		}
		if s.Else != nil {
			hotStmt(pass, s.Else, inLoop)
		}
		if inLoop && s.Init != nil {
			hotStmt(pass, s.Init, inLoop)
		}
		if inLoop {
			checkHotExpr(pass, s.Cond)
		}
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				if inLoop && terminatesStmts(cc.Body) {
					continue
				}
				hotStmts(pass, cc.Body, inLoop)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				if inLoop && terminatesStmts(cc.Body) {
					continue
				}
				hotStmts(pass, cc.Body, inLoop)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if inLoop && terminatesStmts(cc.Body) {
					continue
				}
				hotStmts(pass, cc.Body, inLoop)
			}
		}
	case *ast.LabeledStmt:
		hotStmt(pass, s.Stmt, inLoop)
	default:
		if inLoop {
			checkHotNode(pass, stmt)
		}
	}
}

// terminatesBlock reports whether the block's last statement leaves
// the loop or function.
func terminatesBlock(b *ast.BlockStmt) bool {
	return terminatesStmts(b.List)
}

func terminatesStmts(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// checkHotExpr flags allocation shapes in one expression.
func checkHotExpr(pass *Pass, e ast.Expr) {
	if e != nil {
		checkHotNode(pass, e)
	}
}

// checkHotNode walks a statement or expression for per-iteration
// allocation shapes.
func checkHotNode(pass *Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "per-iteration heap allocation in hotpath: &composite literal escapes")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, x)
		case *ast.FuncLit:
			if capturesOuter(pass, x) {
				pass.Reportf(x.Pos(), "per-iteration closure in hotpath captures enclosing variables (allocates each iteration)")
			}
			return false // inner bodies are the closure's problem
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr) {
	// Conversions: []byte(s) / string(b) copy per iteration.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := pass.TypesInfo.Types[call.Args[0]].Type
		if from != nil {
			if isByteSlice(to) && isString(from.Underlying()) {
				pass.Reportf(call.Pos(), "per-iteration []byte(string) conversion in hotpath copies the payload")
			}
			if isString(to) && isByteSlice(from.Underlying()) {
				pass.Reportf(call.Pos(), "per-iteration string([]byte) conversion in hotpath copies the payload")
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "make", "new":
			if pass.TypesInfo.Uses[id] == nil || pass.TypesInfo.Uses[id].Parent() == types.Universe {
				pass.Reportf(call.Pos(), "per-iteration %s in hotpath allocates each iteration; hoist or pool it", id.Name)
			}
		}
		return
	}
	if fn := funcOf(pass.TypesInfo, call); fn != nil && pkgPathOf(fn) == "fmt" {
		switch fn.Name() {
		case "Sprintf", "Sprint", "Sprintln", "Errorf":
			pass.Reportf(call.Pos(), "per-iteration fmt.%s in hotpath allocates; move formatting off the hot loop", fn.Name())
		}
	}
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturesOuter reports whether the function literal references a
// variable declared outside itself (a closure that must allocate its
// environment).
func capturesOuter(pass *Pass, fl *ast.FuncLit) bool {
	captured := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, isv := obj.(*types.Var)
		if !isv || v.IsField() {
			return true
		}
		// Declared before the literal and used inside it: captured.
		// (Package-level vars are static, not captured.)
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < fl.Pos() {
			captured = true
		}
		return true
	})
	return captured
}
