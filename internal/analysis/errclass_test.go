package analysis_test

import (
	"testing"

	"ninf/internal/analysis"
	"ninf/internal/analysis/analysistest"
)

func TestErrClass(t *testing.T) {
	analysistest.Run(t, "testdata/errclass", analysis.ErrClass)
}
