package analysis_test

import (
	"testing"

	"ninf/internal/analysis"
	"ninf/internal/analysis/analysistest"
)

func TestXDRSym(t *testing.T) {
	analysistest.Run(t, "testdata/xdrsym", analysis.XDRSym)
}
