package analysis_test

import (
	"testing"

	"ninf/internal/analysis"
	"ninf/internal/analysis/analysistest"
)

func TestPoolDiscard(t *testing.T) {
	analysistest.Run(t, "testdata/pooldiscard", analysis.PoolDiscard)
}
