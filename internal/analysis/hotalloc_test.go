package analysis_test

import (
	"testing"

	"ninf/internal/analysis"
	"ninf/internal/analysis/analysistest"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/hotalloc", analysis.HotAlloc)
}
