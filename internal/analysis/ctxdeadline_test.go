package analysis_test

import (
	"testing"

	"ninf/internal/analysis"
	"ninf/internal/analysis/analysistest"
)

func TestCtxDeadline(t *testing.T) {
	analysistest.Run(t, "testdata/ctxdeadline", analysis.CtxDeadline)
}
