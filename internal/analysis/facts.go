package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// Cross-package function summaries ("facts"). PR 2's passes were
// strictly intra-function: a pooled buffer handed to a callee was
// assumed consumed, because nothing recorded what the callee actually
// does with it. The fact store generalizes the releasecheck/pooldiscard
// ownership conventions into interprocedural summaries: while a driver
// analyzes packages in dependency order (RunAll), each package records
// what its functions do — this callee consumes its buffer argument,
// that one merely borrows it, this one registers a Seq in a session
// map, that one requires a negotiated feature level — and packages
// analyzed later consult those summaries at call sites. Summaries come
// from two sources: //ninflint: annotations on declarations, and
// inference over the callee's own body.
//
// Annotation vocabulary (placed in the doc comment of a declaration,
// conventionally as its last line; see docs/ninflint.md):
//
//	//ninflint:owner borrow — callers keep ownership of pooled args
//	//ninflint:owner consume — callee disposes of pooled args
//	//ninflint:hotpath — hotalloc flags per-iteration allocations here

// A ParamRole describes what a function does with an owned (pooled)
// pointer argument.
type ParamRole int

const (
	// RoleUnknown means no summary: callers assume the callee consumes
	// the value (the conservative PR 2 behavior).
	RoleUnknown ParamRole = iota
	// RoleConsume: the callee releases or transfers the argument on
	// every path; passing the value discharges the caller's obligation.
	RoleConsume
	// RoleBorrow: the callee uses the argument but the caller still
	// owns it afterwards and must release it.
	RoleBorrow
)

// A FuncFact is the recorded summary of one function.
type FuncFact struct {
	// Owner is the function's role toward pooled pointer arguments.
	Owner ParamRole
	// OwnerInferred marks an Owner derived from the body rather than
	// an annotation (diagnostics mention which).
	OwnerInferred bool
	// RequiresGate lists feature classes ("bulk", "mux") whose
	// negotiated-level check the function's callers must provide: the
	// body constructs or sends feature-gated messages undominated by a
	// gate of that class.
	RequiresGate []string
	// SeqRegisters names the seq-keyed map field (package-qualified)
	// the function inserts into, handing the registration obligation
	// to its caller.
	SeqRegisters string
	// SeqDeregisters names the seq-keyed map field the function
	// deletes from; calling it discharges a registration obligation.
	SeqDeregisters string
}

// A FactStore accumulates function summaries across one analysis run.
// It is safe for concurrent use: RunAll analyzes packages in
// dependency order, so a package's facts are complete before any
// dependent package reads them, but independent packages record facts
// in parallel.
type FactStore struct {
	mu    sync.Mutex
	funcs map[string]*FuncFact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{funcs: make(map[string]*FuncFact)}
}

// funcKey names a function uniquely across packages:
// "pkg/path.Func" or "(*pkg/path.Type).Method".
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	return fn.FullName()
}

// fact returns the (possibly empty) summary for key, creating it.
func (s *FactStore) fact(key string) *FuncFact {
	f := s.funcs[key]
	if f == nil {
		f = &FuncFact{}
		s.funcs[key] = f
	}
	return f
}

// SetOwner records an ownership role for a function.
func (s *FactStore) SetOwner(key string, role ParamRole, inferred bool) {
	if key == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.fact(key)
	// Annotations win over inference.
	if f.Owner != RoleUnknown && !f.OwnerInferred && inferred {
		return
	}
	f.Owner, f.OwnerInferred = role, inferred
}

// Owner returns the recorded ownership role of fn.
func (s *FactStore) Owner(fn *types.Func) ParamRole {
	if s == nil {
		return RoleUnknown
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.funcs[funcKey(fn)]; f != nil {
		return f.Owner
	}
	return RoleUnknown
}

// SetRequiresGate records that fn's callers must provide a negotiated
// feature-level check of the given class.
func (s *FactStore) SetRequiresGate(key, class string) {
	if key == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.fact(key)
	for _, c := range f.RequiresGate {
		if c == class {
			return
		}
	}
	f.RequiresGate = append(f.RequiresGate, class)
}

// RequiresGate returns the feature classes fn's callers must gate.
func (s *FactStore) RequiresGate(fn *types.Func) []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.funcs[funcKey(fn)]; f != nil {
		return append([]string(nil), f.RequiresGate...)
	}
	return nil
}

// SetSeqMap records seq-map registration effects of a function.
func (s *FactStore) SetSeqMap(key, registers, deregisters string) {
	if key == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.fact(key)
	if registers != "" {
		f.SeqRegisters = registers
	}
	if deregisters != "" {
		f.SeqDeregisters = deregisters
	}
}

// SeqMap returns the seq-map fields fn registers into / deregisters
// from ("" for neither).
func (s *FactStore) SeqMap(fn *types.Func) (registers, deregisters string) {
	if s == nil {
		return "", ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.funcs[funcKey(fn)]; f != nil {
		return f.SeqRegisters, f.SeqDeregisters
	}
	return "", ""
}

// directivePrefix introduces a ninflint annotation comment. Unlike
// //lint:ninflint suppressions (which silence findings), annotations
// feed the fact store.
const directivePrefix = "//ninflint:"

// A directive is one parsed //ninflint:name args annotation.
type directive struct {
	name string // e.g. "owner", "hotpath"
	args string // e.g. "borrow"; em-dash/-- justification stripped
	pos  token.Pos
}

// parseDirective parses one comment into a directive, or ok=false.
func parseDirective(c *ast.Comment) (directive, bool) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name := rest
	args := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, args = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if name == "" {
		return directive{}, false
	}
	// Everything after an em dash or "--" is free-form justification.
	if i := strings.Index(args, "—"); i >= 0 {
		args = strings.TrimSpace(args[:i])
	}
	if i := strings.Index(args, "--"); i >= 0 {
		args = strings.TrimSpace(args[:i])
	}
	return directive{name: name, args: args, pos: c.Pos()}, true
}

// funcDirectives collects the //ninflint: annotations attached to each
// function declaration of a file: directives inside the doc comment,
// or in a comment group ending on the line directly above the
// declaration (or its doc comment).
func funcDirectives(fset *token.FileSet, f *ast.File) map[*ast.FuncDecl][]directive {
	// Comment-group end line -> parsed directives within the group.
	byEndLine := make(map[int][]directive)
	for _, cg := range f.Comments {
		var ds []directive
		for _, c := range cg.List {
			if d, ok := parseDirective(c); ok {
				ds = append(ds, d)
			}
		}
		if len(ds) > 0 {
			byEndLine[fset.Position(cg.End()).Line] = ds
		}
	}
	if len(byEndLine) == 0 {
		return nil
	}
	out := make(map[*ast.FuncDecl][]directive)
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		top := fd.Pos()
		if fd.Doc != nil {
			top = fd.Doc.Pos()
			if ds := byEndLine[fset.Position(fd.Doc.End()).Line]; len(ds) > 0 {
				out[fd] = append(out[fd], ds...)
			}
		}
		if ds := byEndLine[fset.Position(top).Line-1]; len(ds) > 0 {
			out[fd] = append(out[fd], ds...)
		}
	}
	return out
}

// isHotpath reports whether the declaration carries //ninflint:hotpath.
func isHotpath(ds []directive) bool {
	for _, d := range ds {
		if d.name == "hotpath" {
			return true
		}
	}
	return false
}

// ownerDirective returns the annotated ownership role, if any.
func ownerDirective(ds []directive) (ParamRole, bool) {
	for _, d := range ds {
		if d.name != "owner" {
			continue
		}
		switch d.args {
		case "borrow":
			return RoleBorrow, true
		case "consume":
			return RoleConsume, true
		}
	}
	return RoleUnknown, false
}

// computeFacts records the summaries of one package into the store:
// annotated ownership roles, and inferred consume roles for functions
// whose body demonstrably discharges every pooled parameter. It runs
// before the package's analyzers, so same-package call sites see the
// same facts later packages will.
func computeFacts(pkg *Package, facts *FactStore) {
	for _, f := range pkg.Files {
		dirs := funcDirectives(pkg.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if role, ok := ownerDirective(dirs[fd]); ok {
				facts.SetOwner(funcKey(fn), role, false)
				continue
			}
			if role, ok := inferOwner(pkg, facts, fd); ok {
				facts.SetOwner(funcKey(fn), role, true)
			}
		}
	}
}

// inferOwner derives an ownership summary from a function body: when
// every pooled pointer parameter is released or transferred on every
// path, the function consumes its arguments and callers' obligations
// discharge at the call. Functions with no pooled parameters, or whose
// body leaves a parameter live on some path, get no inferred summary
// (the latter are flagged by releasecheck itself unless annotated).
func inferOwner(pkg *Package, facts *FactStore, fd *ast.FuncDecl) (ParamRole, bool) {
	if fd.Body == nil || fd.Type.Params == nil {
		return RoleUnknown, false
	}
	pooled := 0
	for _, field := range fd.Type.Params.List {
		for _, pname := range field.Names {
			obj := pkg.TypesInfo.Defs[pname]
			if obj == nil || pname.Name == "_" || !isPooledType(obj.Type()) {
				continue
			}
			pooled++
			pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, TypesInfo: pkg.TypesInfo, Facts: facts}
			tr := newBufferTracker(pass, obj, nil, false)
			tr.silent = true
			out := tr.stmts(fd.Body.List, flowState{})
			// A leak on any path — fall-through, early return, continue,
			// or reassignment — disqualifies the consume summary.
			if (!out.terminated && !out.released) || tr.violations > 0 {
				return RoleUnknown, false
			}
		}
	}
	if pooled == 0 {
		return RoleUnknown, false
	}
	return RoleConsume, true
}
