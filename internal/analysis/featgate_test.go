package analysis_test

import (
	"testing"

	"ninf/internal/analysis"
	"ninf/internal/analysis/analysistest"
)

func TestFeatGate(t *testing.T) {
	analysistest.Run(t, "testdata/featgate", analysis.FeatGate)
}
