// Package load turns Go package patterns into the type-checked
// analysis.Package bundles ninflint's passes consume. It deliberately
// avoids golang.org/x/tools/go/packages: the repository carries no
// third-party modules, so packages are enumerated with `go list
// -export -deps -json` and type-checked against the compiler export
// data the build cache already holds.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"

	"ninf/internal/analysis"
)

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	DepOnly    bool
	Standard   bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// golist enumerates packages, with export data forced.
func golist(patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, errb.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup function over the export
// files go list reported.
func exportLookup(pkgs []listedPkg) func(path string) (io.ReadCloser, error) {
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// Packages loads and type-checks every non-dependency package matched
// by the patterns, preserving `go list -deps` order — dependencies
// before dependents — so analysis.RunAll can schedule fact propagation
// without re-deriving the import graph. Each Package carries its
// import path and import list for that scheduling. Parsing is
// parallel per package (token.FileSet is internally locked); type
// checking stays serial because the shared export-data importer is
// not safe for concurrent use.
func Packages(patterns ...string) ([]*analysis.Package, error) {
	listed, err := golist(patterns)
	if err != nil {
		return nil, err
	}
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(listed))
	var out []*analysis.Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.Path = p.ImportPath
		pkg.Imports = append([]string(nil), p.Imports...)
		out = append(out, pkg)
	}
	return out, nil
}

// Files type-checks one package given explicit file paths and an
// importer — the entry point the analysistest fixture runner uses.
// Files are parsed concurrently.
func Files(fset *token.FileSet, imp types.Importer, path string, filenames []string) (*analysis.Package, error) {
	files := make([]*ast.File, len(filenames))
	errs := make([]error, len(filenames))
	var wg sync.WaitGroup
	for i, fn := range filenames {
		wg.Add(1)
		go func(i int, fn string) {
			defer wg.Done()
			files[i], errs[i] = parser.ParseFile(fset, fn, nil, parser.ParseComments)
		}(i, fn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &analysis.Package{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, Path: path}, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*analysis.Package, error) {
	filenames := make([]string, len(goFiles))
	for i, f := range goFiles {
		filenames[i] = filepath.Join(dir, f)
	}
	return Files(fset, imp, path, filenames)
}

// Importer returns a types.Importer resolving the transitive imports
// of the given packages from build-cache export data, building that
// data if needed.
func Importer(fset *token.FileSet, imports []string) (types.Importer, error) {
	if len(imports) == 0 {
		return importer.ForCompiler(fset, "gc", func(string) (io.ReadCloser, error) {
			return nil, fmt.Errorf("package imports nothing")
		}), nil
	}
	listed, err := golist(imports)
	if err != nil {
		return nil, err
	}
	return importer.ForCompiler(fset, "gc", exportLookup(listed)), nil
}
