// Fixture for the seqlife pass: Sess mirrors the mux session — a
// seq-keyed pending map with a registering call (fresh key inserted and
// returned), a deregistering call, and a teardown sweep. The path layer
// tracks each register-call acquisition; the hygiene layer checks every
// seq-keyed map has delete and teardown sites somewhere in the package.
package fixture

import "errors"

var errShut = errors.New("shut down")

// Sess is the well-kept session: register/deregister/fail cover every
// lifecycle edge, so its map draws no hygiene findings.
type Sess struct {
	next    uint32
	pending map[uint32]chan int
}

// register inserts a fresh seq and hands it to the caller — the shape
// the path layer recognizes as starting an obligation.
func (s *Sess) register() (uint32, chan int, error) {
	if s.pending == nil {
		return 0, nil, errShut
	}
	seq := s.next
	s.next++
	ch := make(chan int, 1)
	s.pending[seq] = ch
	return seq, ch, nil
}

// deregister removes one entry: the abandon-path discharge.
func (s *Sess) deregister(seq uint32) {
	delete(s.pending, seq)
}

// fail sweeps every waiter: the teardown discharge.
func (s *Sess) fail() {
	for seq, ch := range s.pending {
		delete(s.pending, seq)
		close(ch)
	}
	s.pending = nil
}

// Close tears down by calling fail — the transitive-teardown fixpoint.
func (s *Sess) Close() {
	s.fail()
}

// stamp stands in for embedding the seq in a frame header: copying the
// number does not move the registration obligation.
type stamp struct{ id uint32 }

// Negative: the roundtrip shape — the reply arm receives from the
// paired channel (the deliverer already removed the entry), the abandon
// arm deregisters by hand.
func goodRoundtrip(s *Sess, done chan struct{}) (int, error) {
	seq, ch, err := s.register()
	if err != nil {
		return 0, err
	}
	select {
	case v := <-ch:
		return v, nil
	case <-done:
		s.deregister(seq)
		return 0, errShut
	}
}

// Negative: session teardown discharges every registration, one call
// hop away (Close -> fail).
func goodTeardown(s *Sess) error {
	seq, _, err := s.register()
	if err != nil {
		return err
	}
	_ = stamp{id: seq}
	s.Close()
	return nil
}

// Positive: the early return abandons the registration.
func badEarlyReturn(s *Sess, decline bool) error {
	seq, ch, err := s.register()
	if err != nil {
		return err
	}
	if decline {
		return errShut // want `return without deregistering seq seq \(registered via register\)`
	}
	<-ch
	s.deregister(seq)
	return nil
}

// Positive: no path ever removes the entry.
func badFallThrough(s *Sess) {
	seq, _, _ := s.register() // want `seq seq registered via register is not deregistered \(or its reply channel received from\) on every path`
	_ = stamp{id: seq}
}

// Negative: suppressed intentional leak — the driver honors
// //lint:ninflint for seqlife findings too.
func suppressedLeak(s *Sess) {
	//lint:ninflint seqlife — fixture exercises the suppression syntax
	seq, _, _ := s.register()
	_ = stamp{id: seq}
}

// LeakyReg inserts but never deletes: every insert site is flagged.
type LeakyReg struct {
	open map[uint64]bool
}

func (r *LeakyReg) add(seq uint64) {
	r.open[seq] = true // want `seq registered in LeakyReg.open is never deleted in this package`
}

// NoTear deletes per entry but has no teardown sweep or reset: entries
// in flight at close leak their waiters.
type NoTear struct {
	open map[uint64]int
}

func (r *NoTear) add(seq uint64, v int) {
	r.open[seq] = v // want `seq map NoTear.open has no teardown`
}

func (r *NoTear) remove(seq uint64) {
	delete(r.open, seq)
}
