// Fixture for the xdrsym pass. Encoder and Decoder model the
// internal/xdr codec shape (the pass recognizes them structurally by
// name plus a PutUint32/Uint32 probe method).
package fixture

type Encoder struct{ n int }

func (e *Encoder) PutUint32(v uint32) {}
func (e *Encoder) PutInt64(v int64)   {}
func (e *Encoder) PutString(s string) {}
func (e *Encoder) Err() error         { return nil }

type Decoder struct{ n int }

func (d *Decoder) Uint32() uint32 { return 0 }
func (d *Decoder) Int64() int64   { return 0 }
func (d *Decoder) String() string { return "" }
func (d *Decoder) Err() error     { return nil }

// Negative: a fully symmetric pair with named fields on both sides.
type Stats struct {
	Name  string
	Count int64
	Flags uint32
}

func (m *Stats) Encode(e *Encoder) {
	e.PutString(m.Name)
	e.PutInt64(m.Count)
	e.PutUint32(m.Flags)
}

func DecodeStats(d *Decoder) Stats {
	return Stats{
		Name:  d.String(),
		Count: d.Int64(),
		Flags: d.Uint32(),
	}
}

// Negative: sub-codec groups pair by name (encodeMeta/decodeMeta).
type Wrapped struct {
	Kind uint32
}

func encodeMeta(e *Encoder, v int64) { e.PutInt64(v) }
func decodeMeta(d *Decoder) int64    { return d.Int64() }

func (m *Wrapped) Encode(e *Encoder) {
	e.PutUint32(m.Kind)
	encodeMeta(e, 0)
}

func DecodeWrapped(d *Decoder) Wrapped {
	var m Wrapped
	m.Kind = d.Uint32()
	decodeMeta(d)
	return m
}

// Positive: the decoder reads the values in the wrong order.
type Header struct {
	Magic uint32
	Seq   int64
}

func (m *Header) Encode(e *Encoder) {
	e.PutUint32(m.Magic)
	e.PutInt64(m.Seq)
}

func DecodeHeader(d *Decoder) Header {
	var m Header
	m.Seq = d.Int64() // want `xdr drift: Encode writes Uint32 at position 1 but DecodeHeader reads Int64`
	m.Magic = d.Uint32()
	return m
}

// Positive: same kinds, but the fields are crossed.
type Pair struct{ A, B int64 }

func (m *Pair) Encode(e *Encoder) {
	e.PutInt64(m.A)
	e.PutInt64(m.B)
}

func DecodePair(d *Decoder) Pair {
	var m Pair
	m.B = d.Int64() // want `xdr drift: Encode and DecodePair disagree on Int64 fields: writes A where B is read`
	m.A = d.Int64()
	return m
}

// Positive: the encoder writes a trailing value the decoder ignores.
type Tail struct {
	ID  uint32
	Pad int64
}

func (m *Tail) Encode(e *Encoder) {
	e.PutUint32(m.ID)
	e.PutInt64(m.Pad) // want `xdr drift: Encode writes Int64 here but DecodeTail reads nothing at this position`
}

func DecodeTail(d *Decoder) Tail {
	return Tail{ID: d.Uint32()}
}
