// Fixture for the ctxdeadline pass: exported entry points taking a
// context.Context must propagate it to their network path.
package fixture

import (
	"context"
	"net"
)

// Negative: context-aware dial.
func GoodDial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// Negative: the context deadline reaches the conn.
func GoodDeadline(ctx context.Context, c net.Conn, p []byte) error {
	if dl, ok := ctx.Deadline(); ok {
		c.SetWriteDeadline(dl)
	}
	_, err := c.Write(p)
	return err
}

// Negative: the context is forwarded to a context-aware helper.
func GoodForward(ctx context.Context, addr string) (net.Conn, error) {
	return GoodDial(ctx, addr)
}

// Positive: a context-blind dial ignores cancellation entirely.
func BadDial(ctx context.Context, addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want `Dial ignores the ctx parameter`
}

// Positive: the context is accepted and then dropped on the floor.
func BadIgnored(ctx context.Context, c net.Conn, p []byte) error { // want `BadIgnored takes a context\.Context but never consults it`
	_, err := c.Write(p)
	return err
}

// Negative: unexported functions are not entry points.
func quiet(ctx context.Context, c net.Conn, p []byte) error {
	_, err := c.Write(p)
	return err
}

// Negative: no network work, no obligation.
func Pure(ctx context.Context, a, b int) int { return a + b }
