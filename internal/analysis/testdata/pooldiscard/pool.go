// Fixture for the pooldiscard pass. The file is named pool.go because
// the pass only applies to the files that own the pool checkout/return
// protocol (pool.go and client.go).
package fixture

import "net"

type pool struct{ idle []net.Conn }

func (p *pool) put(c net.Conn) { p.idle = append(p.idle, c) }

func reusable(err error) bool { return err == nil }

// Negative: put guarded by err == nil; the error branch closes.
func goodGuarded(p *pool, c net.Conn, b []byte) {
	_, err := c.Write(b)
	if err == nil {
		p.put(c)
	} else {
		c.Close()
	}
}

// Negative: a reusability predicate consults the error.
func goodPredicate(p *pool, c net.Conn, b []byte) {
	_, err := c.Write(b)
	if reusable(err) {
		p.put(c)
	} else {
		c.Close()
	}
}

// Negative: the error branch returns before the put.
func goodEarlyReturn(p *pool, c net.Conn, b []byte) error {
	_, err := c.Read(b)
	if err != nil {
		c.Close()
		return err
	}
	p.put(c)
	return nil
}

// Positive: the connection goes back to the pool on the error branch.
func badErrorPath(p *pool, c net.Conn, b []byte) {
	_, err := c.Write(b)
	if err != nil {
		p.put(c) // want `connection returned to the pool on an error path`
	}
}

// Positive: put without consulting the exchange error at all.
func badUnguarded(p *pool, c net.Conn, b []byte) {
	_, err := c.Write(b)
	_ = err
	p.put(c) // want `without consulting the I/O error "err"`
}
