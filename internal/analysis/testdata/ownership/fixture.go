// Fixture for interprocedural ownership: the pooled type and the
// callees live in the bufpkg subpackage, so every obligation here is
// resolved through the fact store, not the legacy name table.
package fixture

import "fixture/ownership/bufpkg"

// Negative: the buffer is released only inside the callee — the
// inferred consume summary discharges the caller across the package
// boundary.
func goodCalleeReleases() {
	b := bufpkg.Acquire()
	bufpkg.Settle(b)
}

// Positive: Stamp is annotated borrow, so passing b transfers nothing;
// the forgetful caller still owns the buffer at return.
func badBorrowForgotten() int {
	b := bufpkg.Acquire()
	return bufpkg.Stamp(b) // want `return without releasing b`
}

// Negative: borrow then release is the contract.
func goodBorrowThenRelease() int {
	b := bufpkg.Acquire()
	n := bufpkg.Stamp(b)
	b.Release()
	return n
}

// Positive: a borrowed buffer leaking through a fall-through exit.
func badBorrowFallThrough() {
	b := bufpkg.Acquire() // want `b acquired from Acquire is not Released \(or ownership-transferred\) on every path`
	_ = bufpkg.Stamp(b)
}
