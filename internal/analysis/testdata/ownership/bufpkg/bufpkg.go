// Package bufpkg defines the pooled type plus callees whose ownership
// summaries releasecheck consumes across the package boundary: Settle
// is inferred RoleConsume from its body, Stamp is annotated borrow.
package bufpkg

type Buffer struct{ data []byte }

func (b *Buffer) Release() {}
func (b *Buffer) Len() int { return len(b.data) }

func Acquire() *Buffer { return &Buffer{} }

// Settle releases its argument on every path — including the nil
// decline — so the fact prepass infers a consume summary for it.
func Settle(b *Buffer) {
	if b == nil {
		return
	}
	b.Release()
}

// Stamp patches the buffer's header in place; the caller keeps
// ownership. Without the annotation its own body would be flagged
// (the parameter reaches the end unreleased) and callers would wrongly
// treat the call as a transfer.
//
//ninflint:owner borrow — reads and patches in place, never releases
func Stamp(b *Buffer) int {
	return b.Len()
}
