// Fixture for the releasecheck pass: the Buffer type stands in for
// protocol.Buffer (any pointer type with a niladic Release method is
// tracked), and WriteFrameBuf is the declared borrower.
package fixture

import "errors"

type Buffer struct{ data []byte }

func (b *Buffer) Release() {}
func (b *Buffer) Len() int { return len(b.data) }

func Acquire() *Buffer             { return &Buffer{} }
func AcquireErr() (*Buffer, error) { return &Buffer{}, nil }

// WriteFrameBuf borrows its argument: the caller still owns it after.
func WriteFrameBuf(b *Buffer) error { return nil }

// consume takes ownership and disposes of the buffer itself.
func consume(b *Buffer) { b.Release() }

var errBoom = errors.New("boom")

// Negative: released on the straight path.
func goodRelease() {
	b := Acquire()
	b.Release()
}

// Negative: deferred release covers every path.
func goodDefer(n int) int {
	b := Acquire()
	defer b.Release()
	if n > 0 {
		return n
	}
	return b.Len()
}

// Negative: on the err != nil branch the result is nil by convention.
func goodErrGuard() error {
	b, err := AcquireErr()
	if err != nil {
		return err
	}
	b.Release()
	return nil
}

// Negative: ownership transferred to the caller.
func goodTransferReturn() *Buffer {
	b := Acquire()
	return b
}

// Negative: lending to the borrower, then handing off to a consumer.
func goodBorrowThenConsume() {
	b := Acquire()
	_ = WriteFrameBuf(b)
	consume(b)
}

// Positive: the early error return leaks the buffer.
func badErrorPath() error {
	b := Acquire()
	if b.Len() > 0 {
		return errBoom // want `return without releasing b`
	}
	b.Release()
	return nil
}

// Positive: never released on any path.
func badLeak() {
	b := Acquire() // want `b acquired from Acquire is not Released \(or ownership-transferred\) on every path`
	_ = b.Len()
}

// Positive: lending is not disposal.
func badBorrowOnly() error {
	b := Acquire()
	return WriteFrameBuf(b) // want `return without releasing b`
}

// Positive: the first buffer is dropped by the rebind.
func badReassign() {
	b := Acquire()
	b = Acquire() // want `b reassigned before Release`
	b.Release()
}

// Positive: each iteration abandons the previous buffer.
func badLoop(n int) {
	for i := 0; i < n; i++ {
		b := Acquire() // want `b acquired from Acquire may be overwritten by the next loop iteration without Release`
		_ = b.Len()
	}
}

// Positive: an owned parameter carries the same obligation.
func badParam(b *Buffer) { // want `owned \*Buffer parameter b may reach the end of badParam without Release or ownership transfer`
	_ = b.Len()
}

// Negative: a retry loop that re-acquires per attempt and releases on
// every path, including each failed attempt before it backs off — the
// client retry contract.
func goodRetryLoop(n int) error {
	var lastErr error
	for i := 0; i < n; i++ {
		b := Acquire()
		if err := WriteFrameBuf(b); err != nil {
			b.Release()
			lastErr = err
			continue
		}
		b.Release()
		return nil
	}
	return lastErr
}

// Positive: the failed attempt's continue skips Release, leaking one
// buffer per retry.
func badRetryLoopLeak(n int) error {
	var lastErr error
	for i := 0; i < n; i++ {
		b := Acquire()
		if err := WriteFrameBuf(b); err != nil {
			lastErr = err
			continue // want `continue without releasing b`
		}
		b.Release()
		return nil
	}
	return lastErr
}

// Negative: suppressed intentional leak — proves the driver honors
// //lint:ninflint directives.
func suppressedLeak() {
	//lint:ninflint releasecheck — fixture exercises the suppression syntax
	b := Acquire()
	_ = b.Len()
}

// --- chunked bulk-path shapes (protocol feature level 3) ---

// BulkMsg stands in for protocol.BulkMsg: a pooled chunk-streamable
// message (any pointer type with a niladic Release is tracked).
type BulkMsg struct{ total int }

func (m *BulkMsg) Release() {}

// EncodeBegin hands back a pooled header buffer the caller owns.
func (m *BulkMsg) EncodeBegin() *Buffer { return Acquire() }

// EncodeChunks is the chunked-encoder shape: message plus error.
func EncodeChunks(n int) (*BulkMsg, error) {
	if n == 0 {
		return nil, errBoom
	}
	return &BulkMsg{total: n}, nil
}

// Negative: the streaming shape — the begin buffer is written, then
// released on both the error and success paths, and the message itself
// is settled before every return.
func goodChunkStream(n int) error {
	m, err := EncodeChunks(n)
	if err != nil {
		return err
	}
	fb := m.EncodeBegin()
	werr := WriteFrameBuf(fb)
	fb.Release()
	if werr != nil {
		m.Release()
		return werr
	}
	m.Release()
	return nil
}

// Positive: the early return on a failed begin write leaks the pooled
// header buffer (WriteFrameBuf only borrows it).
func badChunkBeginLeak(n int) error {
	m, err := EncodeChunks(n)
	if err != nil {
		return err
	}
	defer m.Release()
	fb := m.EncodeBegin()
	if err := WriteFrameBuf(fb); err != nil {
		return err // want `return without releasing fb`
	}
	fb.Release()
	return nil
}

// Positive: a declined send (never begun) returns without settling the
// bulk message — the abandonment path carries the same obligation as
// the streamed-to-completion path.
func badChunkAbandon(n int, begun bool) error {
	m, err := EncodeChunks(n)
	if err != nil {
		return err
	}
	if !begun {
		return errBoom // want `return without releasing m`
	}
	m.Release()
	return nil
}

// Negative: handing the message to the writer goroutine's queue
// transfers ownership (the session bulk-queue shape).
func goodChunkHandoff(q chan *BulkMsg, n int) error {
	m, err := EncodeChunks(n)
	if err != nil {
		return err
	}
	q <- m
	return nil
}

// Negative: the below-threshold decline — the chunked encoder returns
// nil and the caller falls through to the monolithic path with no
// obligation. The non-nil branch settles by hand-off.
func goodChunkDecline(q chan *BulkMsg, n int) error {
	m, err := EncodeChunks(n)
	if err != nil {
		return err
	}
	if m != nil {
		q <- m
		return nil
	}
	return errBoom // m is nil here: monolithic fallback, nothing owed
}

// Positive: the nil guard discharges only the nil side; the live value
// on the other branch still needs settling.
func badChunkDeclineLeak(n int) error {
	m, err := EncodeChunks(n)
	if err != nil {
		return err
	}
	if m == nil {
		return nil
	}
	return errBoom // want `return without releasing m`
}

// --- write-ahead journal shapes (crash recovery) ---

// walRecord stands in for protocol.JournalRecord: the WAL keeps its
// own copy of a submission's bytes, never pooled memory.
type walRecord struct{ payload []byte }

// appendWAL borrows the record by value; the journal takes no buffer
// ownership.
func appendWAL(r walRecord) error { return r.check() }

func (r walRecord) check() error {
	if r.payload == nil {
		return errBoom
	}
	return nil
}

// Negative: the journal shape — the submission is encoded into a
// pooled frame buffer, drained into the record's own copy, and the
// buffer released before the append; the WAL never retains pooled
// memory.
func goodJournalCopyOut() error {
	fb := Acquire()
	rec := walRecord{payload: append([]byte(nil), fb.data...)}
	fb.Release()
	return appendWAL(rec)
}

// Positive: journaling the pooled bytes directly and bailing on the
// append error leaks the frame buffer — and the WAL now aliases pooled
// memory the next acquire will scribble over.
func badJournalRetainPooled() error {
	fb := Acquire()
	rec := walRecord{payload: fb.data}
	if err := appendWAL(rec); err != nil {
		return err // want `return without releasing fb`
	}
	fb.Release()
	return nil
}
