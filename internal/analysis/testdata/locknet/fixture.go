// Fixture for the locknet pass: blocking network operations inside
// sync.Mutex critical sections.
package fixture

import (
	"net"
	"sync"
)

type state struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	conn net.Conn
	ch   chan int
	n    int
}

func writeAll(c net.Conn, p []byte) error {
	_, err := c.Write(p)
	return err
}

// Negative: the lock is dropped before the write.
func good(s *state, p []byte) error {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	_, err := s.conn.Write(p)
	return err
}

// Negative: only bookkeeping under the deferred lock.
func goodDefer(s *state) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Negative: the branch unlocks before its I/O.
func goodBranchUnlock(s *state, p []byte) error {
	s.mu.Lock()
	if s.n > 0 {
		s.mu.Unlock()
		_, err := s.conn.Write(p)
		return err
	}
	s.mu.Unlock()
	return nil
}

// Positive: conn write inside the critical section.
func badWrite(s *state, p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.conn.Write(p) // want `conn\.Write while holding s\.mu`
	return err
}

// Positive: read under an RLock is just as blocking.
func badRead(s *state, p []byte) error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	_, err := s.conn.Read(p) // want `conn\.Read while holding s\.rw`
	return err
}

// Positive: dial latency spent inside the critical section.
func badDial(s *state, addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := net.Dial("tcp", addr) // want `Dial while holding s\.mu`
	if err != nil {
		return err
	}
	s.conn = c
	return nil
}

// Positive: a blocking channel send stalls every waiter on the lock.
func badSend(s *state, v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while holding s\.mu`
	s.mu.Unlock()
}

// Positive: a helper handed the live conn can block on it.
func badHelper(s *state, p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return writeAll(s.conn, p) // want `writeAll is handed a net\.Conn while s\.mu is held`
}

// Negative: suppressed intentional serialization of a shared conn.
func suppressed(s *state, p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ninflint locknet — the mutex intentionally serializes this shared connection
	_, err := s.conn.Write(p)
	return err
}
