// Fixture for the featgate pass: construction/send of feature-gated
// messages must be dominated by a negotiated-level check. The protocol
// subpackage defines the roots (exempt at home); the wrap subpackage
// proves the gate obligation crosses package boundaries via facts.
package fixture

import (
	"fixture/featgate/protocol"
	"fixture/featgate/wrap"
)

type Sess struct{ level int }

// Bulk is the session's capability accessor.
func (s *Sess) Bulk() bool { return s.level >= protocol.MuxVersionBulk }

// Positive: ungated root call.
func badUngated(n int) error {
	m, err := protocol.EncodeCallRequestChunks(n) // want `EncodeCallRequestChunks requires negotiated feature level "bulk" but no gate`
	_ = m
	return err
}

// Negative: dominated by the capability accessor.
func goodGated(s *Sess, n int) error {
	if s.Bulk() {
		m, err := protocol.EncodeCallRequestChunks(n)
		_ = m
		return err
	}
	return nil
}

// Negative: gate variable plus the early-return form — once the !gate
// branch returns, the remainder of the body is gated.
func goodEarlyReturn(version, n int) error {
	bulkOK := version >= protocol.MuxVersionBulk
	if !bulkOK {
		return nil
	}
	m, err := protocol.EncodeCallRequestChunks(n)
	_ = m
	return err
}

// Negative: receive-side constant uses classify incoming frames, they
// do not construct outgoing ones.
func goodReceive(t protocol.MsgType) string {
	if t == protocol.MsgBulkAbort {
		return "abort"
	}
	switch t {
	case protocol.MsgBulkBegin, protocol.MsgBulkChunk:
		return "bulk"
	}
	return "other"
}

// Positive: construction-side constant use without a gate.
func badConstSend() error {
	return protocol.WriteMsg(protocol.MsgBulkBegin, nil) // want `MsgBulkBegin requires negotiated feature level "bulk" but no gate`
}

// Negative: the same send under a version comparison.
func goodConstSendGated(version int) error {
	if version >= protocol.MuxVersionBulk {
		return protocol.WriteMsg(protocol.MsgBulkBegin, nil)
	}
	return nil
}

// encodeReq is the in-package transparent-fallback shape: ungated here,
// every in-package call site gated — the gate lives one hop up.
func encodeReq(n int) (*protocol.BulkMsg, error) {
	return protocol.EncodeCallRequestChunks(n)
}

// goodFallbackCaller is encodeReq's (only) call site, dominated.
func goodFallbackCaller(s *Sess, n int) error {
	if s.Bulk() {
		m, err := encodeReq(n)
		_ = m
		return err
	}
	return nil
}

// Positive: wrap.EncodeReq was discharged inside its package but
// published as gate-requiring; an ungated cross-package call inherits
// the obligation through the fact store.
func badCrossPkg(c *wrap.Conn, n int) error {
	m, err := wrap.EncodeReq(c, n) // want `EncodeReq requires negotiated feature level "bulk" but no gate`
	_ = m
	return err
}

// Negative: the cross-package obligation met at this caller.
func goodCrossPkg(c *wrap.Conn, n int) error {
	if c.Bulk() {
		m, err := wrap.EncodeReq(c, n)
		_ = m
		return err
	}
	return nil
}

// Negative: suppressed deliberate ungated use.
func suppressed(n int) error {
	//lint:ninflint featgate — fixture exercises the suppression syntax
	m, err := protocol.EncodeCallRequestChunks(n)
	_ = m
	return err
}

// Cache is the level-4 capability accessor.
func (s *Sess) Cache() bool { return s.level >= protocol.MuxVersionCache }

// Positive: digest framing built with no level-4 gate.
func badUngatedDigest(digs []protocol.Digest) error {
	return protocol.WriteMsg(protocol.MsgCallDigest, protocol.EncodeDigestQueryBuf(digs).B()) // want `MsgCallDigest requires negotiated feature level "cache" but no gate` `EncodeDigestQueryBuf requires negotiated feature level "cache" but no gate`
}

// Negative: dominated by the level-4 capability accessor. A cache gate
// also discharges bulk obligations — level 4 implies level 3.
func goodGatedDigest(s *Sess, n int, digs []protocol.Digest) error {
	if s.Cache() {
		if err := protocol.WriteMsg(protocol.MsgCallDigest, protocol.EncodeDigestQueryBuf(digs).B()); err != nil {
			return err
		}
		m, _, err := protocol.EncodeCallRequestDigest(n, digs)
		_ = m
		return err
	}
	return nil
}

// Negative: cacheok gate variable with the early-return form.
func goodCacheEarlyReturn(version int, digs []protocol.Digest) error {
	cacheok := version >= protocol.MuxVersionCache
	if !cacheok {
		return nil
	}
	return protocol.WriteMsg(protocol.MsgDataHandle, protocol.EncodeDigestQueryBuf(digs).B())
}

// Positive: a bulk-only gate does not license level-4 framing.
func badBulkGateOnly(s *Sess, digs []protocol.Digest) error {
	if s.Bulk() {
		return protocol.WriteMsg(protocol.MsgCallDigest, protocol.EncodeDigestQueryBuf(digs).B()) // want `MsgCallDigest requires negotiated feature level "cache" but no gate` `EncodeDigestQueryBuf requires negotiated feature level "cache" but no gate`
	}
	return nil
}

// Negative: receive-side classification of cache frames.
func goodCacheReceive(t protocol.MsgType) string {
	switch t {
	case protocol.MsgDigestStatus, protocol.MsgDataHandle:
		return "cache"
	}
	return "other"
}
