// Package wrap holds a transparent-fallback wrapper: EncodeReq's
// chunked-path use is ungated in its own body, but every in-package
// call site is dominated by a gate, so it is clean here — and it is
// published as gate-requiring, so importers inherit the obligation
// through the fact store.
package wrap

import "fixture/featgate/protocol"

type Conn struct{ level int }

// Bulk is the capability accessor the gate recognizer looks for.
func (c *Conn) Bulk() bool { return c.level >= protocol.MuxVersionBulk }

// EncodeReq is the encodeRequestChunks shape: discharged one hop up.
func EncodeReq(c *Conn, n int) (*protocol.BulkMsg, error) {
	return protocol.EncodeCallRequestChunks(n)
}

func send(c *Conn, n int) error {
	if c.Bulk() {
		m, err := EncodeReq(c, n)
		_ = m
		return err
	}
	return nil
}
