// Package protocol stands in for the wire package: it defines the
// feature-gated roots. The defining package is exempt from its own
// gates — encoders must build the messages they encode.
package protocol

type MsgType uint8

const (
	MsgCallReply MsgType = 2
	MsgBulkBegin MsgType = 5
	MsgBulkChunk MsgType = 6
	MsgBulkAbort MsgType = 7
)

const (
	MuxVersion     = 2
	MuxVersionBulk = 3
)

type BulkMsg struct{ N int }

// EncodeCallRequestChunks is a class-"bulk" root by name.
func EncodeCallRequestChunks(n int) (*BulkMsg, error) {
	return &BulkMsg{N: n}, nil
}

// WriteMsg is the send-side sink the fixture passes wire constants to.
func WriteMsg(t MsgType, payload []byte) error {
	_ = t
	_ = payload
	return nil
}
