// Package protocol stands in for the wire package: it defines the
// feature-gated roots. The defining package is exempt from its own
// gates — encoders must build the messages they encode.
package protocol

type MsgType uint8

const (
	MsgCallReply    MsgType = 2
	MsgBulkBegin    MsgType = 5
	MsgBulkChunk    MsgType = 6
	MsgBulkAbort    MsgType = 7
	MsgCallDigest   MsgType = 10
	MsgDataHandle   MsgType = 11
	MsgDigestStatus MsgType = 12
)

const (
	MuxVersion      = 2
	MuxVersionBulk  = 3
	MuxVersionCache = 4
)

type BulkMsg struct{ N int }

// EncodeCallRequestChunks is a class-"bulk" root by name.
func EncodeCallRequestChunks(n int) (*BulkMsg, error) {
	return &BulkMsg{N: n}, nil
}

type Digest struct{ Hi, Lo uint64 }

type Buffer struct{ b []byte }

// B exposes the buffer's payload bytes.
func (f *Buffer) B() []byte { return f.b }

// EncodeDigestQueryBuf is a class-"cache" root by name.
func EncodeDigestQueryBuf(digs []Digest) *Buffer {
	return &Buffer{b: make([]byte, 16*len(digs))}
}

// EncodeCallRequestDigest is a class-"cache" root by name.
func EncodeCallRequestDigest(n int, digs []Digest) (*BulkMsg, *Buffer, error) {
	return &BulkMsg{N: n}, nil, nil
}

// WriteMsg is the send-side sink the fixture passes wire constants to.
func WriteMsg(t MsgType, payload []byte) error {
	_ = t
	_ = payload
	return nil
}
