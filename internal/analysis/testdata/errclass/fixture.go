// Fixture for the errclass pass: errors crossing the transport
// boundary must keep their class — wrap with %w so errors.Is can see
// the cause, and never compare error values with == / != (wrapped
// sentinels do not compare equal).
package fixture

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

// Negative: the chain is kept.
func goodWrap(err error) error {
	return fmt.Errorf("op failed: %w", err)
}

// Positive: %v severs the chain the retry layer classifies by.
func badWrap(err error) error {
	return fmt.Errorf("op failed: %v", err) // want `fmt.Errorf drops the error chain \(no %w\)`
}

// Positive: the error is the second argument; the verb index matters
// for the -fix rewrite but not for the finding.
func badWrapSecond(name string, err error) error {
	return fmt.Errorf("op %s failed: %v", name, err) // want `fmt.Errorf drops the error chain \(no %w\)`
}

// Negative: no error argument, nothing to wrap.
func goodNoError(name string, n int) error {
	return fmt.Errorf("op %s failed after %d tries", name, n)
}

// Negative: a dynamic format cannot be checked mechanically.
func goodDynamicFormat(format string, err error) error {
	return fmt.Errorf(format, err)
}

// Positive: wrapped sentinels never compare equal.
func badCompare(err error) bool {
	return err == errSentinel // want `errors compared with == never match wrapped causes; use errors.Is`
}

// Positive: same for inequality.
func badCompareNeq(err error) bool {
	return err != errSentinel // want `errors compared with != never match wrapped causes; use errors.Is`
}

// Negative: nil checks are the idiom, not a classification.
func goodNilCheck(err error) bool {
	return err != nil
}

// Negative: errors.Is is the fix, not a finding.
func goodIs(err error) bool {
	return errors.Is(err, errSentinel)
}

// Negative: concrete-type identity is deliberate (only interface-typed
// comparisons are flagged).
type myErr struct{ code int }

func (*myErr) Error() string { return "myErr" }

func goodConcreteIdentity(a, b *myErr) bool {
	return a == b
}

// Negative: suppressed identity check.
func suppressedCompare(err error) bool {
	//lint:ninflint errclass — identity semantics wanted here, not Is
	return err == errSentinel
}
