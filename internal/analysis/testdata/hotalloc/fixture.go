// Fixture for the hotalloc pass: only functions annotated
// //ninflint:hotpath are inspected, and only their loop bodies;
// cold exits (blocks that leave the loop) are exempt.
package fixture

import "fmt"

type frameHdr struct{ n int }

// Negative: identical body, no annotation — hotalloc stays out.
func coldLoop(frames [][]byte) {
	for _, f := range frames {
		_ = string(f)
		_ = make([]byte, len(f))
	}
}

//ninflint:hotpath — steady-state frame loop (justification is stripped)
func hotLoop(frames [][]byte, sink func(*frameHdr)) {
	scratch := make([]byte, 64) // clean: hoisted above the loop
	for _, f := range frames {
		buf := make([]byte, len(f)) // want `per-iteration make in hotpath allocates each iteration; hoist or pool it`
		copy(buf, f)
		s := string(f) // want `per-iteration string\(\[\]byte\) conversion in hotpath copies the payload`
		_ = s
		h := &frameHdr{n: len(f)} // want `per-iteration heap allocation in hotpath: &composite literal escapes`
		sink(h)
		msg := fmt.Sprintf("frame %d", len(f)) // want `per-iteration fmt.Sprintf in hotpath allocates; move formatting off the hot loop`
		_ = msg
		if len(f) == 0 {
			// Cold exit: the error path runs at most once per loop
			// lifetime, so its allocations are exempt.
			panic(fmt.Sprintf("empty frame with %d scratch bytes", len(scratch)))
		}
	}
}

//ninflint:hotpath
func hotBytes(lines []string, out chan<- []byte) {
	for _, l := range lines {
		b := []byte(l) // want `per-iteration \[\]byte\(string\) conversion in hotpath copies the payload`
		out <- b
	}
}

//ninflint:hotpath
func hotClosure(frames [][]byte, run func(func())) {
	for _, f := range frames {
		run(func() { _ = f }) // want `per-iteration closure in hotpath captures enclosing variables \(allocates each iteration\)`
	}
}

// Negative: a closure capturing nothing is a static function value.
//
//ninflint:hotpath
func hotStaticClosure(n int, run func(func())) {
	for i := 0; i < n; i++ {
		run(func() {})
	}
}

// Negative: suppressed startup-path allocation.
//
//ninflint:hotpath
func suppressedHot(frames [][]byte) {
	for range frames {
		//lint:ninflint hotalloc — warm-up iteration only, measured cold
		_ = make([]byte, 1)
	}
}
