// Fixture for the sharedwrite pass: connection writes from dispatch
// goroutines that bypass the connection's single serialized writer.
package fixture

import (
	"net"
	"sync"
)

type frame struct{ b []byte }

func WriteFrame(c net.Conn, f frame) error {
	_, err := c.Write(f.b)
	return err
}

func encode(f frame) []byte { return f.b }

type srv struct {
	mu      sync.Mutex
	replies chan frame
}

// Positive: the dispatch goroutine writes to the conn directly; its
// bytes interleave with every other in-flight reply.
func badDirect(conn net.Conn, reqs []frame) {
	for _, r := range reqs {
		r := r
		go func() {
			conn.Write(encode(r)) // want `conn\.Write from a dispatch goroutine`
		}()
	}
}

// Positive: a Write*-named helper handed the conn is the same bug one
// call deeper.
func badHelper(conn net.Conn, reqs []frame) {
	for _, r := range reqs {
		r := r
		go func() {
			WriteFrame(conn, r) // want `WriteFrame writes to a net\.Conn from a dispatch goroutine`
		}()
	}
}

// Positive: a vectored flush from a goroutine is still a conn write.
func badVectored(conn net.Conn, bufs net.Buffers) {
	go func() {
		bufs.WriteTo(conn) // want `WriteTo writes to a net\.Conn from a dispatch goroutine`
	}()
}

// Negative: writes under a held mutex are serialized.
func goodMutex(s *srv, conn net.Conn, reqs []frame) {
	for _, r := range reqs {
		r := r
		go func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			WriteFrame(conn, r)
		}()
	}
}

// Negative: an inline Lock/Unlock pair also serializes; the write
// after the Unlock is flagged.
func mixedMutex(s *srv, conn net.Conn, r frame) {
	go func() {
		s.mu.Lock()
		WriteFrame(conn, r)
		s.mu.Unlock()
		WriteFrame(conn, r) // want `WriteFrame writes to a net\.Conn from a dispatch goroutine`
	}()
}

// Negative: routing the reply through the writer goroutine's channel
// is the sanctioned shape.
func goodFunnel(s *srv, reqs []frame) {
	for _, r := range reqs {
		r := r
		go func() {
			s.replies <- r
		}()
	}
}

// Negative: the dedicated writer goroutine is the serialization point;
// the suppression names the design.
func goodWriterGoroutine(conn net.Conn, replies chan frame) {
	go func() {
		for r := range replies {
			//lint:ninflint sharedwrite — this goroutine IS the connection's single writer
			WriteFrame(conn, r)
		}
	}()
}

// Negative: synchronous writes outside any goroutine are the lockstep
// path; one frame is in flight at a time.
func goodLockstep(conn net.Conn, r frame) error {
	return WriteFrame(conn, r)
}

// --- chunked bulk-path shapes (protocol feature level 3) ---

// cursor stands in for protocol.BulkCursor: successive WriteChunk
// calls put one bounded chunk each on the conn.
type cursor struct{ off int }

func (c *cursor) WriteChunk(conn net.Conn, seq uint32) (bool, error) {
	_, err := conn.Write(nil)
	return true, err
}

// Positive: a dispatch goroutine streaming its own reply's chunks
// bypasses the connection's single writer; every chunk interleaves
// mid-frame with the other in-flight frames.
func badChunkStream(conn net.Conn, curs []*cursor) {
	for _, cu := range curs {
		cu := cu
		go func() {
			for {
				done, err := cu.WriteChunk(conn, 7) // want `WriteChunk writes to a net\.Conn from a dispatch goroutine`
				if done || err != nil {
					return
				}
			}
		}()
	}
}

// Negative: the writer goroutine streaming queued bulk messages
// chunk-by-chunk IS the serialization point; the suppression names
// the design (the muxWriteLoop shape).
func goodChunkWriterGoroutine(conn net.Conn, bulks chan *cursor) {
	go func() {
		for cu := range bulks {
			//lint:ninflint sharedwrite — this goroutine IS the connection's single writer
			cu.WriteChunk(conn, 7)
		}
	}()
}
