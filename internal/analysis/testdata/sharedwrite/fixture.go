// Fixture for the sharedwrite pass: connection writes from dispatch
// goroutines that bypass the connection's single serialized writer.
package fixture

import (
	"net"
	"sync"
)

type frame struct{ b []byte }

func WriteFrame(c net.Conn, f frame) error {
	_, err := c.Write(f.b)
	return err
}

func encode(f frame) []byte { return f.b }

type srv struct {
	mu      sync.Mutex
	replies chan frame
}

// Positive: the dispatch goroutine writes to the conn directly; its
// bytes interleave with every other in-flight reply.
func badDirect(conn net.Conn, reqs []frame) {
	for _, r := range reqs {
		r := r
		go func() {
			conn.Write(encode(r)) // want `conn\.Write from a dispatch goroutine`
		}()
	}
}

// Positive: a Write*-named helper handed the conn is the same bug one
// call deeper.
func badHelper(conn net.Conn, reqs []frame) {
	for _, r := range reqs {
		r := r
		go func() {
			WriteFrame(conn, r) // want `WriteFrame writes to a net\.Conn from a dispatch goroutine`
		}()
	}
}

// Positive: a vectored flush from a goroutine is still a conn write.
func badVectored(conn net.Conn, bufs net.Buffers) {
	go func() {
		bufs.WriteTo(conn) // want `WriteTo writes to a net\.Conn from a dispatch goroutine`
	}()
}

// Negative: writes under a held mutex are serialized.
func goodMutex(s *srv, conn net.Conn, reqs []frame) {
	for _, r := range reqs {
		r := r
		go func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			WriteFrame(conn, r)
		}()
	}
}

// Negative: an inline Lock/Unlock pair also serializes; the write
// after the Unlock is flagged.
func mixedMutex(s *srv, conn net.Conn, r frame) {
	go func() {
		s.mu.Lock()
		WriteFrame(conn, r)
		s.mu.Unlock()
		WriteFrame(conn, r) // want `WriteFrame writes to a net\.Conn from a dispatch goroutine`
	}()
}

// Negative: routing the reply through the writer goroutine's channel
// is the sanctioned shape.
func goodFunnel(s *srv, reqs []frame) {
	for _, r := range reqs {
		r := r
		go func() {
			s.replies <- r
		}()
	}
}

// Negative: the dedicated writer goroutine is the serialization point;
// the suppression names the design.
func goodWriterGoroutine(conn net.Conn, replies chan frame) {
	go func() {
		for r := range replies {
			//lint:ninflint sharedwrite — this goroutine IS the connection's single writer
			WriteFrame(conn, r)
		}
	}()
}

// Negative: synchronous writes outside any goroutine are the lockstep
// path; one frame is in flight at a time.
func goodLockstep(conn net.Conn, r frame) error {
	return WriteFrame(conn, r)
}
