package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FeatGate enforces negotiated-feature gating: constructing or sending
// a feature-gated message must be dominated by a check of the
// negotiated protocol level. Two classes exist today. Class "bulk"
// (feature level 3, protocol.MuxVersionBulk) covers the chunked
// streaming surface: the chunked encoders, RawBulkMsg, RoundtripBulk,
// and the MsgBulkBegin/MsgBulkChunk/MsgBulkAbort wire constants on
// their construction/send side (receive-side case labels and
// comparisons are exempt — decoding what a peer sent is always legal).
// Class "mux" (version 2) covers the v2 framing primitives that carry
// the multiplexed header and the deadline/RetryAfter trailers:
// StampMux, WriteMuxFrame(Buf), WriteStampedFrames, ReadMuxFrameBuf.
//
// A use is dominated when it sits under a recognized gate: a call to a
// niladic Bulk() method, an identifier matching bulkOK, or a
// comparison against MuxVersionBulk / MuxVersion — including gate
// variables assigned from such expressions, && conjunctions, and the
// early-return form (if !gate { return }). Transparent-fallback
// wrappers are whitelisted by shape, one hop interprocedurally: a
// function whose own uses are ungated is discharged when it has
// in-package callers and every call site is dominated (the
// encodeRequestChunks pattern), and it is published as requiring a
// gate so out-of-package callers inherit the obligation via facts.
//
// Exemptions: the defining package of a root (the protocol encoders
// must build their own messages), the negotiated planes themselves for
// class "mux" (packages mux/server/protocol run entirely post-
// negotiation), and _test.go files.
var FeatGate = &Analyzer{
	Name: "featgate",
	Doc: "feature-gated message construction/send must be dominated by a " +
		"negotiated-level check (Bulk(), bulkOK, version >= MuxVersionBulk)",
	Run: runFeatGate,
}

// featRoots maps root function/constant names to their feature class.
var featRoots = map[string]string{
	"EncodeCallRequestChunks":   "bulk",
	"EncodeSubmitRequestChunks": "bulk",
	"EncodeCallReplyChunks":     "bulk",
	"RawBulkMsg":                "bulk",
	"RoundtripBulk":             "bulk",
	"MsgBulkBegin":              "bulk",
	"MsgBulkChunk":              "bulk",
	"MsgBulkAbort":              "bulk",

	"StampMux":           "mux",
	"WriteMuxFrame":      "mux",
	"WriteMuxFrameBuf":   "mux",
	"WriteStampedFrames": "mux",
	"ReadMuxFrameBuf":    "mux",

	"EncodeCallRequestDigest":    "cache",
	"CallRequestDigests":         "cache",
	"EncodeDigestQueryBuf":       "cache",
	"EncodeDataHandleRequestBuf": "cache",
	"MsgCallDigest":              "cache",
	"MsgDigestStatus":            "cache",
	"MsgDataHandle":              "cache",
	"MsgDataHandleOK":            "cache",
}

// muxPlanePkgs are package names exempt from class "mux": they are the
// negotiated planes, entered only after a successful hello.
var muxPlanePkgs = map[string]bool{"mux": true, "server": true, "protocol": true}

// featUse is one occurrence of a gated root.
type featUse struct {
	pos   token.Pos
	class string
	name  string
}

// featFunc aggregates one function's gating picture.
type featFunc struct {
	fn        *types.Func
	ungated   []featUse       // uses not dominated within the body
	calls     map[string]bool // classes this fn's callers must provide
	callSites []featCallSite
}

// featCallSite is an in-package call of a tracked function and the
// gate classes active at that point.
type featCallSite struct {
	callee *types.Func
	gated  map[string]bool
}

func runFeatGate(pass *Pass) error {
	fns := make(map[*types.Func]*featFunc)
	var sites []featCallSite

	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			w := &featWalker{
				pass:     pass,
				gateVars: make(map[types.Object]map[string]bool),
				receive:  receiveSideUses(fd.Body),
			}
			w.stmts(fd.Body.List, nil)
			if len(w.ungated) > 0 && fn != nil {
				fns[fn] = &featFunc{fn: fn, ungated: w.ungated}
			}
			for i := range w.sites {
				sites = append(sites, w.sites[i])
			}
		}
	}

	// One-hop interprocedural discharge: a function with ungated uses
	// is clean when every in-package call site is dominated (and at
	// least one exists). Either way it is published as gate-requiring
	// so cross-package callers inherit the obligation.
	for fn, ff := range fns {
		classes := make(map[string]bool)
		for _, u := range ff.ungated {
			classes[u.class] = true
		}
		for class := range classes {
			pass.Facts.SetRequiresGate(funcKey(fn), class)
		}
		total, gated := 0, 0
		for _, cs := range sites {
			if cs.callee != fn {
				continue
			}
			total++
			ok := true
			for class := range classes {
				if !cs.gated[class] {
					ok = false
				}
			}
			if ok {
				gated++
			}
		}
		if total > 0 && gated == total {
			continue // transparent-fallback wrapper: gate lives one hop up
		}
		for _, u := range ff.ungated {
			pass.Reportf(u.pos,
				"%s requires negotiated feature level %q but no gate (Bulk()/bulkOK/version check) dominates this use",
				u.name, u.class)
		}
	}
	return nil
}

// receiveSideUses collects the positions of identifiers appearing in
// receive-side contexts — case-clause labels and ==/!= comparisons —
// where naming a wire constant classifies an incoming message rather
// than constructing one.
func receiveSideUses(body *ast.BlockStmt) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	mark := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			switch id := n.(type) {
			case *ast.Ident:
				out[id.Pos()] = true
			case *ast.SelectorExpr:
				out[id.Sel.Pos()] = true
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CaseClause:
			for _, e := range x.List {
				mark(e)
			}
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				mark(x.X)
				mark(x.Y)
			}
		}
		return true
	})
	return out
}

// featWalker performs the structural domination walk over one function
// body, tracking which feature classes are gated at each point.
type featWalker struct {
	pass     *Pass
	gateVars map[types.Object]map[string]bool
	receive  map[token.Pos]bool
	ungated  []featUse
	sites    []featCallSite
}

// gateClassesOf returns the feature classes a condition guarantees
// when it evaluates true.
func (w *featWalker) gateClassesOf(cond ast.Expr) map[string]bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			// a && b true implies both: union.
			return unionGates(w.gateClassesOf(e.X), w.gateClassesOf(e.Y))
		case token.LOR:
			// a || b true implies only what both guarantee.
			return intersectGates(w.gateClassesOf(e.X), w.gateClassesOf(e.Y))
		case token.GEQ, token.GTR, token.EQL, token.LEQ, token.LSS:
			// version >= MuxVersionBulk (and friends). A comparison that
			// mentions the level constant is treated as a gate of its
			// class; the pass checks presence, not direction — the
			// convention in-repo is always `have >= needed`. Level 4
			// implies the lower levels, so a cache gate discharges bulk
			// and mux obligations too.
			if mentionsName(e, "MuxVersionCache") {
				return map[string]bool{"cache": true, "bulk": true, "mux": true}
			}
			if mentionsName(e, "MuxVersionBulk") {
				return map[string]bool{"bulk": true}
			}
			if mentionsName(e, "MuxVersion") {
				return map[string]bool{"mux": true}
			}
		}
	case *ast.CallExpr:
		// A niladic method or function named Bulk: the session's own
		// capability accessor.
		if len(e.Args) == 0 {
			switch fun := ast.Unparen(e.Fun).(type) {
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Bulk" {
					return map[string]bool{"bulk": true, "mux": true}
				}
				if fun.Sel.Name == "Cache" {
					return map[string]bool{"cache": true, "bulk": true, "mux": true}
				}
			case *ast.Ident:
				if fun.Name == "Bulk" {
					return map[string]bool{"bulk": true, "mux": true}
				}
				if fun.Name == "Cache" {
					return map[string]bool{"cache": true, "bulk": true, "mux": true}
				}
			}
		}
	case *ast.Ident:
		if obj := exprObj(w.pass.TypesInfo, e); obj != nil {
			if g := w.gateVars[obj]; len(g) > 0 {
				return g
			}
		}
		if strings.Contains(strings.ToLower(e.Name), "bulkok") {
			return map[string]bool{"bulk": true, "mux": true}
		}
		if strings.Contains(strings.ToLower(e.Name), "cacheok") {
			return map[string]bool{"cache": true, "bulk": true, "mux": true}
		}
	case *ast.SelectorExpr:
		if strings.Contains(strings.ToLower(e.Sel.Name), "bulkok") {
			return map[string]bool{"bulk": true, "mux": true}
		}
		if strings.Contains(strings.ToLower(e.Sel.Name), "cacheok") {
			return map[string]bool{"cache": true, "bulk": true, "mux": true}
		}
	}
	return nil
}

// negatedGates returns the classes guaranteed when !cond is the
// branch condition and the true branch terminates.
func (w *featWalker) negatedGates(cond ast.Expr) map[string]bool {
	ue, ok := ast.Unparen(cond).(*ast.UnaryExpr)
	if !ok || ue.Op != token.NOT {
		return nil
	}
	return w.gateClassesOf(ue.X)
}

func unionGates(a, b map[string]bool) map[string]bool {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func intersectGates(a, b map[string]bool) map[string]bool {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make(map[string]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func mentionsName(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch id := n.(type) {
		case *ast.Ident:
			if id.Name == name {
				found = true
			}
		case *ast.SelectorExpr:
			if id.Sel.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// stmts walks a statement list with the given active gate set,
// handling the early-return form: once `if !gate { ...return }`
// passes, the remainder of the list is gated.
func (w *featWalker) stmts(list []ast.Stmt, gated map[string]bool) {
	for _, stmt := range list {
		if ifs, ok := stmt.(*ast.IfStmt); ok {
			if neg := w.negatedGates(ifs.Cond); len(neg) > 0 && terminatesBlock(ifs.Body) && ifs.Else == nil {
				if ifs.Init != nil {
					w.stmt(ifs.Init, gated)
				}
				w.checkExpr(ifs.Cond, gated)
				w.stmts(ifs.Body.List, gated) // the ungated fallback path
				gated = unionGates(gated, neg)
				continue
			}
		}
		w.stmt(stmt, gated)
	}
}

func (w *featWalker) stmt(stmt ast.Stmt, gated map[string]bool) {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, gated)
		}
		w.checkExpr(s.Cond, gated)
		w.stmts(s.Body.List, unionGates(gated, w.gateClassesOf(s.Cond)))
		if s.Else != nil {
			w.stmt(s.Else, gated)
		}
	case *ast.BlockStmt:
		w.stmts(s.List, gated)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, gated)
		}
		w.checkExpr(s.Cond, gated)
		if s.Post != nil {
			w.stmt(s.Post, gated)
		}
		w.stmts(s.Body.List, unionGates(gated, w.gateClassesOf(s.Cond)))
	case *ast.RangeStmt:
		w.checkExpr(s.X, gated)
		w.stmts(s.Body.List, gated)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, gated)
		}
		w.checkExpr(s.Tag, gated)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, gated)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, gated)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, gated)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm, gated)
				}
				w.stmts(cc.Body, gated)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, gated)
	case *ast.AssignStmt:
		// Gate variables: bulkOK := version >= MuxVersionBulk.
		for i, lhs := range s.Lhs {
			if i >= len(s.Rhs) {
				break
			}
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := exprObj(w.pass.TypesInfo, id); obj != nil {
					if g := w.gateClassesOf(s.Rhs[i]); len(g) > 0 {
						w.gateVars[obj] = g
					}
				}
			}
		}
		for _, rhs := range s.Rhs {
			w.checkExpr(rhs, gated)
		}
		for _, lhs := range s.Lhs {
			w.checkExpr(lhs, gated)
		}
	case *ast.ExprStmt:
		w.checkExpr(s.X, gated)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, gated)
		}
	case *ast.DeferStmt:
		w.checkExpr(s.Call, gated)
	case *ast.GoStmt:
		w.checkExpr(s.Call, gated)
	case *ast.SendStmt:
		w.checkExpr(s.Chan, gated)
		w.checkExpr(s.Value, gated)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, gated)
					}
				}
			}
		}
	}
}

// checkExpr scans one expression for root uses and tracked call sites.
// Function literals share the enclosing gate context (they run where
// they are written in every data-plane use).
func (w *featWalker) checkExpr(e ast.Expr, gated map[string]bool) {
	if e == nil {
		return
	}
	info := w.pass.TypesInfo
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if fn := funcOf(info, x); fn != nil {
				// Root functions by name (cross-package only: the
				// defining package builds its own messages).
				if class, ok := featRoots[fn.Name()]; ok && w.rootApplies(fn, class) {
					if !gated[class] {
						w.ungated = append(w.ungated, featUse{pos: x.Pos(), class: class, name: fn.Name()})
					}
				}
				// Fact-published gate requirements from other packages.
				for _, class := range w.pass.Facts.RequiresGate(fn) {
					if fn.Pkg() != nil && fn.Pkg() != w.pass.Pkg && !gated[class] {
						w.ungated = append(w.ungated, featUse{pos: x.Pos(), class: class, name: fn.Name()})
					}
				}
				// In-package call sites, for the one-hop discharge.
				if fn.Pkg() == w.pass.Pkg {
					w.sites = append(w.sites, featCallSite{callee: fn, gated: gated})
				}
			}
		case *ast.Ident:
			w.checkConstUse(x, x.Pos(), gated)
		case *ast.SelectorExpr:
			w.checkConstUse(x.Sel, x.Sel.Pos(), gated)
			// Visit the base but not the Sel again.
			w.checkExpr(x.X, gated)
			return false
		}
		return true
	})
}

// checkConstUse flags construction-side uses of root wire constants.
func (w *featWalker) checkConstUse(id *ast.Ident, pos token.Pos, gated map[string]bool) {
	class, ok := featRoots[id.Name]
	if !ok || w.receive[pos] {
		return
	}
	obj := w.pass.TypesInfo.Uses[id]
	c, isConst := obj.(*types.Const)
	if !isConst || !w.constApplies(c, class) {
		return
	}
	if !gated[class] {
		w.ungated = append(w.ungated, featUse{pos: pos, class: class, name: id.Name})
	}
}

// rootApplies applies the exemptions to a function root use.
func (w *featWalker) rootApplies(fn *types.Func, class string) bool {
	if fn.Pkg() == w.pass.Pkg {
		return false // defining package builds its own messages
	}
	if class == "mux" && muxPlanePkgs[w.pass.Pkg.Name()] {
		return false // the negotiated planes run post-hello
	}
	return true
}

func (w *featWalker) constApplies(c *types.Const, class string) bool {
	if c.Pkg() == w.pass.Pkg {
		return false
	}
	if class == "mux" && muxPlanePkgs[w.pass.Pkg.Name()] {
		return false
	}
	return true
}
