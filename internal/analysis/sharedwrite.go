package analysis

import (
	"go/ast"
	"strings"
)

// SharedWrite flags connection writes issued from goroutine-launched
// function literals without mutex serialization. The multiplexed
// data plane (PR 4) dispatches many requests concurrently per
// connection; its correctness rests on a single invariant: all frames
// leaving one connection funnel through one serialization point (a
// dedicated writer goroutine or a mutex-guarded writer). A dispatch
// goroutine writing to the conn directly interleaves its bytes with
// other replies mid-frame and corrupts the stream for every in-flight
// sequence — a bug the race detector cannot see (net.Conn.Write is
// documented as concurrency-safe; the corruption is at the framing
// layer, not the memory layer).
//
// A write is flagged when it appears inside a `go func(){...}()` body
// and no sync.Mutex/RWMutex is held at the write: either the write is
// a net.Conn method (Write, WriteTo), or the callee's name starts
// with Write and it is handed a net.Conn (WriteFrame(conn, ...),
// WriteMuxFrame(conn, ...)). Writer goroutines that ARE the
// serialization point carry a //lint:ninflint sharedwrite suppression
// naming the design.
var SharedWrite = &Analyzer{
	Name: "sharedwrite",
	Doc: "no unserialized net.Conn writes from goroutine-launched " +
		"function literals; frame streams need one writer",
	Run: runSharedWrite,
}

func runSharedWrite(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				swScanBlock(pass, lit.Body.List, map[string]bool{})
			}
			// Nested go statements inside the literal are found by the
			// continued file walk.
			return true
		})
	}
	return nil
}

// swScanBlock walks one statement list of a dispatch goroutine's body,
// tracking which mutexes are held, and flags unserialized writes. held
// is owned by the caller; nested scopes get copies.
func swScanBlock(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		if recv, ok := mutexCallIn(pass, stmt, "Lock", "RLock"); ok {
			held[recv] = true
			continue
		}
		if recv, ok := mutexCallIn(pass, stmt, "Unlock", "RUnlock"); ok {
			delete(held, recv)
			continue
		}
		if d, ok := stmt.(*ast.DeferStmt); ok {
			// `defer mu.Unlock()` keeps the lock held through the rest of
			// the function; any other defer is left unflagged (it runs
			// after the body, usually teardown).
			continueHeld(pass, d, held)
			continue
		}
		swScanStmt(pass, stmt, held)
	}
}

// continueHeld interprets a defer statement: a deferred Unlock means
// the matching Lock stays held for the remainder of the body, so the
// held set is untouched. (The deferred call itself performs no write
// we track: teardown helpers are out of scope.)
func continueHeld(pass *Pass, d *ast.DeferStmt, held map[string]bool) {
	// Deliberately empty beyond documentation: a deferred Unlock leaves
	// `held` as-is, which is exactly the conservative interpretation.
	_, _ = mutexDeferTarget(pass, d)
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// swScanStmt descends into one statement, flagging writes and
// recursing into compound statements.
func swScanStmt(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.GoStmt, *ast.DeferStmt:
		// Inner goroutines are scanned by the file-level walk (with a
		// fresh held set: locks do not transfer across goroutines);
		// deferred calls run after the body.
		return
	case *ast.BlockStmt:
		swScanBlock(pass, s.List, copyHeld(held))
		return
	case *ast.IfStmt:
		if s.Init != nil {
			swScanStmt(pass, s.Init, held)
		}
		swFlagWrites(pass, s.Cond, held)
		swScanBlock(pass, s.Body.List, copyHeld(held))
		if s.Else != nil {
			swScanStmt(pass, s.Else, held)
		}
		return
	case *ast.ForStmt:
		swScanBlock(pass, s.Body.List, copyHeld(held))
		return
	case *ast.RangeStmt:
		swScanBlock(pass, s.Body.List, copyHeld(held))
		return
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				swScanBlock(pass, cc.Body, copyHeld(held))
			}
		}
		return
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				swScanBlock(pass, cc.Body, copyHeld(held))
			}
		}
		return
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				swScanBlock(pass, cc.Body, copyHeld(held))
			}
		}
		return
	case *ast.LabeledStmt:
		swScanStmt(pass, s.Stmt, held)
		return
	}
	swFlagWrites(pass, stmt, held)
}

// swFlagWrites inspects one simple statement or expression for
// connection writes, reporting any found while no mutex is held.
func swFlagWrites(pass *Pass, n ast.Node, held map[string]bool) {
	if n == nil || len(held) > 0 {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch nn := node.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			swFlagCall(pass, nn)
		}
		return true
	})
}

// swFlagCall reports call expressions that put bytes on a connection:
// conn.Write/conn.WriteTo, x.WriteTo(conn), and Write*-named helpers
// handed a net.Conn.
func swFlagCall(pass *Pass, call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		if name == "Write" || name == "WriteTo" {
			if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isNetConnType(tv.Type) {
				pass.Reportf(call.Pos(),
					"conn.%s from a dispatch goroutine without serialization; concurrent writers interleave bytes mid-frame and corrupt the stream", name)
				return
			}
		}
	}
	callee := ""
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		callee = sel.Sel.Name
	} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		callee = id.Name
	}
	if !strings.HasPrefix(callee, "Write") {
		return
	}
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && isNetConnType(tv.Type) {
			pass.Reportf(call.Pos(),
				"%s writes to a net.Conn from a dispatch goroutine without serialization; route the frame through the connection's single writer", callee)
			return
		}
	}
}
