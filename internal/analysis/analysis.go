// Package analysis is ninflint's analyzer framework: a small,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis surface that the repository's vendored toolchain cannot
// provide. An Analyzer inspects one type-checked package at a time and
// reports Diagnostics; drivers (cmd/ninflint standalone, the vet -cfg
// protocol, and the analysistest fixture runner) supply the loaded
// packages and decide what to do with the findings.
//
// The analyzers enforce the data-plane invariants the PR 1 performance
// work introduced — pooled frame buffers that must be released on every
// control-flow path, pooled connections that must not be re-pooled
// after an I/O error, XDR encode/decode symmetry, no blocking network
// I/O under a mutex, and context propagation into dials — because the
// paper's multi-client throughput numbers (§5–6) are only trustworthy
// while those invariants hold under concurrency.
//
// Intentional violations are suppressed with a comment on the flagged
// line or the line above:
//
//	//lint:ninflint                          suppress every pass
//	//lint:ninflint locknet                  suppress one pass
//	//lint:ninflint locknet,releasecheck — reason
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one ninflint pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and suppressions.
	Name string
	// Doc is a one-paragraph description of what the pass enforces.
	Doc string
	// Run inspects one package via the Pass and reports findings.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Package bundles everything a driver loads for one package.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// NewTypesInfo allocates the types.Info maps every pass relies on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run applies every analyzer to the package and returns the surviving
// diagnostics: suppressed findings are dropped, the rest are sorted by
// position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	diags = filterSuppressed(pkg.Fset, pkg.Files, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// suppressionPrefix introduces a ninflint suppression comment.
const suppressionPrefix = "//lint:ninflint"

// suppression is one parsed //lint:ninflint comment.
type suppression struct {
	line   int
	passes map[string]bool // nil means all passes
}

// parseSuppressions extracts the suppression directives of one file.
func parseSuppressions(fset *token.FileSet, f *ast.File) []suppression {
	var sups []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, suppressionPrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, suppressionPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:ninflintfoo
			}
			// Everything up to an em dash or "--" is the pass list; the
			// remainder is free-form justification.
			rest = strings.TrimSpace(rest)
			if i := strings.IndexAny(rest, "—"); i >= 0 {
				rest = strings.TrimSpace(rest[:i])
			}
			if i := strings.Index(rest, "--"); i >= 0 {
				rest = strings.TrimSpace(rest[:i])
			}
			s := suppression{line: fset.Position(c.Pos()).Line}
			if rest != "" {
				s.passes = make(map[string]bool)
				for _, name := range strings.Split(rest, ",") {
					if name = strings.TrimSpace(name); name != "" {
						s.passes[name] = true
					}
				}
			}
			sups = append(sups, s)
		}
	}
	return sups
}

// filterSuppressed drops diagnostics whose line (or the line below a
// directive-only line) carries a matching //lint:ninflint comment.
func filterSuppressed(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	// filename -> line -> suppressions covering that line
	covered := make(map[string]map[int][]suppression)
	for _, f := range files {
		pos := fset.Position(f.Pos())
		m := covered[pos.Filename]
		if m == nil {
			m = make(map[int][]suppression)
			covered[pos.Filename] = m
		}
		for _, s := range parseSuppressions(fset, f) {
			// A directive suppresses findings on its own line and on
			// the following line (for directives placed above the code).
			m[s.line] = append(m[s.line], s)
			m[s.line+1] = append(m[s.line+1], s)
		}
	}
	out := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, s := range covered[d.Pos.Filename][d.Pos.Line] {
			if s.passes == nil || s.passes[d.Analyzer] {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

// All returns every ninflint analyzer in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		ReleaseCheck,
		PoolDiscard,
		XDRSym,
		LockNet,
		SharedWrite,
		CtxDeadline,
	}
}

// ByName resolves a comma-separated pass list.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown pass %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
