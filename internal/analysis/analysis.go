// Package analysis is ninflint's analyzer framework: a small,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis surface that the repository's vendored toolchain cannot
// provide. An Analyzer inspects one type-checked package at a time and
// reports Diagnostics; drivers (cmd/ninflint standalone, the vet -cfg
// protocol, and the analysistest fixture runner) supply the loaded
// packages and decide what to do with the findings.
//
// The analyzers enforce the data-plane invariants the PR 1 performance
// work introduced — pooled frame buffers that must be released on every
// control-flow path, pooled connections that must not be re-pooled
// after an I/O error, XDR encode/decode symmetry, no blocking network
// I/O under a mutex, and context propagation into dials — because the
// paper's multi-client throughput numbers (§5–6) are only trustworthy
// while those invariants hold under concurrency.
//
// Intentional violations are suppressed with a comment on the flagged
// line or the line above:
//
//	//lint:ninflint                          suppress every pass
//	//lint:ninflint locknet                  suppress one pass
//	//lint:ninflint locknet,releasecheck — reason
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// An Analyzer is one ninflint pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and suppressions.
	Name string
	// Doc is a one-paragraph description of what the pass enforces.
	Doc string
	// Run inspects one package via the Pass and reports findings.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the cross-package summary store of the enclosing RunAll
	// (nil for single-package drivers such as the vet unitchecker mode;
	// every FactStore accessor tolerates a nil receiver).
	Facts *FactStore

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// report records a fully built diagnostic, stamping the pass name.
func (p *Pass) report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Edits, if non-empty, is a mechanical fix ninflint -fix can apply:
	// non-overlapping byte-range replacements within single files.
	Edits []Edit
}

// An Edit is one textual replacement of a suggested fix: the bytes
// [Start, End) of Filename are replaced by New (Start == End inserts).
type Edit struct {
	Filename   string
	Start, End int
	New        string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Package bundles everything a driver loads for one package.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Path and Imports (import paths, possibly including packages
	// outside the analyzed set) drive RunAll's dependency-ordered
	// scheduling; single-package drivers may leave them empty.
	Path    string
	Imports []string
}

// NewTypesInfo allocates the types.Info maps every pass relies on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run applies every analyzer to one package and returns the surviving
// diagnostics: suppressed findings are dropped, the rest are sorted by
// position. It is the single-package form of RunAll.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAll([]*Package{pkg}, analyzers, Options{})
}

// Options configures a RunAll driver invocation.
type Options struct {
	// Facts is the cross-package summary store; nil allocates a fresh
	// one. Supplying a store lets drivers chain RunAll calls (the
	// analysistest runner propagates fixture-dependency summaries this
	// way).
	Facts *FactStore
	// Workers bounds concurrent package analysis; <= 0 means
	// GOMAXPROCS.
	Workers int
	// AuditSuppressions emits a "suppaudit" diagnostic for every
	// //lint:ninflint comment that suppressed nothing in this run, or
	// that names a pass that does not exist. Only meaningful when every
	// pass runs — a subset run would flag comments aimed at the passes
	// left out — so drivers enable it in all-passes mode only.
	AuditSuppressions bool
}

// suppAuditName is the pseudo-pass unused-suppression findings report
// under. It is not an Analyzer: audit findings are produced by the
// driver after suppression filtering, so they cannot themselves be
// suppressed.
const suppAuditName = "suppaudit"

// RunAll analyzes the packages in dependency order — a package is
// scheduled only after every listed import inside the set — so
// cross-package facts (ownership summaries, gate requirements) are
// complete before any dependent call site is inspected. Packages with
// no ordering edge between them run in parallel, bounded by
// opts.Workers. Diagnostics are merged and sorted by position.
func RunAll(pkgs []*Package, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	facts := opts.Facts
	if facts == nil {
		facts = NewFactStore()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// The first package to claim a path owns its done channel; Go
	// forbids import cycles, so waiting on in-set imports terminates.
	done := make(map[string]chan struct{})
	owner := make(map[string]int)
	for i, p := range pkgs {
		if p.Path != "" {
			if _, dup := done[p.Path]; !dup {
				done[p.Path] = make(chan struct{})
				owner[p.Path] = i
			}
		}
	}

	perPkg := make([][]Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range pkgs {
		wg.Add(1)
		go func(i int, p *Package) {
			defer wg.Done()
			defer func() {
				if owner[p.Path] == i && p.Path != "" {
					close(done[p.Path])
				}
			}()
			for _, imp := range p.Imports {
				if imp == p.Path {
					continue
				}
				if ch, ok := done[imp]; ok {
					<-ch
				}
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			perPkg[i], errs[i] = runPackage(p, analyzers, facts, opts.AuditSuppressions)
		}(i, pkgs[i])
	}
	wg.Wait()

	var diags []Diagnostic
	for i := range pkgs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		diags = append(diags, perPkg[i]...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// runPackage records the package's facts, runs every analyzer, and
// applies suppression filtering (optionally auditing the directives).
func runPackage(pkg *Package, analyzers []*Analyzer, facts *FactStore, audit bool) ([]Diagnostic, error) {
	computeFacts(pkg, facts)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			Facts:     facts,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	diags, unused := filterSuppressed(pkg.Fset, pkg.Files, diags)
	if audit {
		diags = append(diags, auditSuppressions(unused, analyzers)...)
	}
	return diags, nil
}

// auditSuppressions turns the suppressions that matched nothing (or
// that name nonexistent passes) into suppaudit findings.
func auditSuppressions(unused []*suppression, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, s := range unused {
		var bogus []string
		for _, name := range s.names {
			if !known[name] {
				bogus = append(bogus, name)
			}
		}
		switch {
		case len(bogus) > 0:
			out = append(out, Diagnostic{
				Analyzer: suppAuditName,
				Pos:      s.pos,
				Message:  fmt.Sprintf("suppression names unknown pass %s", strings.Join(bogus, ", ")),
			})
		default:
			what := "any pass"
			if len(s.names) > 0 {
				what = strings.Join(s.names, ", ")
			}
			out = append(out, Diagnostic{
				Analyzer: suppAuditName,
				Pos:      s.pos,
				Message:  fmt.Sprintf("stale suppression: no %s finding on this or the next line", what),
			})
		}
	}
	return out
}

// suppressionPrefix introduces a ninflint suppression comment.
const suppressionPrefix = "//lint:ninflint"

// suppression is one parsed //lint:ninflint comment.
type suppression struct {
	line   int
	pos    token.Position  // the comment itself, for audit findings
	names  []string        // declared pass list, in source order
	passes map[string]bool // nil means all passes
	used   bool            // matched at least one diagnostic this run
}

// parseSuppressions extracts the suppression directives of one file.
func parseSuppressions(fset *token.FileSet, f *ast.File) []*suppression {
	var sups []*suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, suppressionPrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, suppressionPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:ninflintfoo
			}
			// Everything up to an em dash or "--" is the pass list; the
			// remainder is free-form justification.
			rest = strings.TrimSpace(rest)
			if i := strings.IndexAny(rest, "—"); i >= 0 {
				rest = strings.TrimSpace(rest[:i])
			}
			if i := strings.Index(rest, "--"); i >= 0 {
				rest = strings.TrimSpace(rest[:i])
			}
			pos := fset.Position(c.Pos())
			s := &suppression{line: pos.Line, pos: pos}
			if rest != "" {
				s.passes = make(map[string]bool)
				for _, name := range strings.Split(rest, ",") {
					if name = strings.TrimSpace(name); name != "" {
						s.passes[name] = true
						s.names = append(s.names, name)
					}
				}
			}
			sups = append(sups, s)
		}
	}
	return sups
}

// filterSuppressed drops diagnostics whose line (or the line below a
// directive-only line) carries a matching //lint:ninflint comment, and
// returns the suppressions that matched nothing for the audit.
func filterSuppressed(fset *token.FileSet, files []*ast.File, diags []Diagnostic) ([]Diagnostic, []*suppression) {
	// filename -> line -> suppressions covering that line
	covered := make(map[string]map[int][]*suppression)
	var all []*suppression
	for _, f := range files {
		pos := fset.Position(f.Pos())
		m := covered[pos.Filename]
		if m == nil {
			m = make(map[int][]*suppression)
			covered[pos.Filename] = m
		}
		for _, s := range parseSuppressions(fset, f) {
			all = append(all, s)
			// A directive suppresses findings on its own line and on
			// the following line (for directives placed above the code).
			m[s.line] = append(m[s.line], s)
			m[s.line+1] = append(m[s.line+1], s)
		}
	}
	out := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, s := range covered[d.Pos.Filename][d.Pos.Line] {
			if s.passes == nil || s.passes[d.Analyzer] {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	var unused []*suppression
	for _, s := range all {
		if !s.used {
			unused = append(unused, s)
		}
	}
	return out, unused
}

// All returns every ninflint analyzer in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		ReleaseCheck,
		PoolDiscard,
		XDRSym,
		LockNet,
		SharedWrite,
		CtxDeadline,
		SeqLife,
		FeatGate,
		ErrClass,
		HotAlloc,
	}
}

// ByName resolves a comma-separated pass list.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown pass %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
