package analysis_test

import (
	"testing"

	"ninf/internal/analysis"
	"ninf/internal/analysis/analysistest"
)

func TestSeqLife(t *testing.T) {
	analysistest.Run(t, "testdata/seqlife", analysis.SeqLife)
}
