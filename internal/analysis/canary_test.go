package analysis_test

// Canary tests: one deliberately seeded bug per pass, built in a temp
// dir at test time. They are the CI tripwire for the failure mode the
// // want fixtures cannot catch — a pass that silently stops firing
// (e.g. a heuristic tightened until it matches nothing) still passes a
// fixture whose wants were deleted along with the detection, but a
// canary pins the expected finding text independently.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ninf/internal/analysis"
	"ninf/internal/analysis/analysistest"
)

// runCanary materializes files (paths relative to a fresh fixture dir;
// "@BASE@" in sources is replaced by the dir's basename so fixture
// subpackages can be imported), runs one analyzer, and requires at
// least one finding from it whose message contains wantSub.
func runCanary(t *testing.T, az *analysis.Analyzer, files map[string]string, wantSub string) {
	t.Helper()
	dir := t.TempDir()
	base := filepath.Base(dir)
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		src = strings.ReplaceAll(src, "@BASE@", base)
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, _ := analysistest.Load(t, dir)
	diags, err := analysis.RunAll(pkgs, []*analysis.Analyzer{az}, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == az.Name && strings.Contains(d.Message, wantSub) {
			return
		}
	}
	t.Fatalf("canary bug not detected: no %s finding containing %q; got %v", az.Name, wantSub, diags)
}

func TestCanarySeqLife(t *testing.T) {
	runCanary(t, analysis.SeqLife, map[string]string{
		"canary.go": `package canary

type sess struct {
	pending map[uint32]chan int
}

func (s *sess) open(seq uint32) chan int {
	ch := make(chan int, 1)
	s.pending[seq] = ch
	return ch
}
`,
	}, "never deleted in this package")
}

func TestCanaryFeatGate(t *testing.T) {
	runCanary(t, analysis.FeatGate, map[string]string{
		"proto/proto.go": `package proto

func EncodeCallRequestChunks(x int) []byte { return make([]byte, x) }
`,
		"canary.go": `package canary

import "fixture/@BASE@/proto"

func send() []byte {
	return proto.EncodeCallRequestChunks(1)
}
`,
	}, `requires negotiated feature level "bulk" but no gate`)
}

func TestCanaryErrClass(t *testing.T) {
	runCanary(t, analysis.ErrClass, map[string]string{
		"canary.go": `package canary

import "fmt"

func wrap(err error) error {
	return fmt.Errorf("call failed: %v", err)
}
`,
	}, "drops the error chain (no %w)")
}

func TestCanaryHotAlloc(t *testing.T) {
	runCanary(t, analysis.HotAlloc, map[string]string{
		"canary.go": `package canary

//ninflint:hotpath
func loop(n int) int {
	t := 0
	for i := 0; i < n; i++ {
		b := make([]byte, 16)
		t += len(b)
	}
	return t
}
`,
	}, "per-iteration make in hotpath")
}

func TestCanaryReleaseCheck(t *testing.T) {
	runCanary(t, analysis.ReleaseCheck, map[string]string{
		"canary.go": `package canary

type buffer struct{ n int }

func (b *buffer) Release() {}

func acquire() *buffer { return new(buffer) }

func leak(fail bool) int {
	b := acquire()
	if fail {
		return -1
	}
	b.Release()
	return 0
}
`,
	}, "return without releasing b")
}
