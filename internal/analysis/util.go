package analysis

import (
	"go/ast"
	"go/types"
)

// releaseMethodOf returns the Release (or unexported release) method a
// pointer-to-named-type carries, or nil. Types with such a method are
// treated as pooled resources whose ownership the releasecheck pass
// tracks.
func releaseMethodOf(t types.Type) *types.Func {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() == "Release" || m.Name() == "release" {
			sig := m.Type().(*types.Signature)
			if sig.Params().Len() == 0 {
				return m
			}
		}
	}
	return nil
}

// isPooledType reports whether t is a trackable pooled resource.
func isPooledType(t types.Type) bool { return releaseMethodOf(t) != nil }

// isNetConnType reports whether t is net.Conn, implements it, or is a
// type whose name is Conn in a package named net (so fixtures can
// model connections without dialing).
func isNetConnType(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Name() == "Conn" && obj.Pkg() != nil && obj.Pkg().Name() == "net" {
			return true
		}
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		return hasConnMethods(iface)
	}
	// Concrete types: look for the Conn shape in the method set.
	ms := types.NewMethodSet(t)
	found := 0
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Read", "Write", "SetReadDeadline", "RemoteAddr":
			found++
		}
	}
	return found == 4
}

// hasConnMethods reports whether an interface demands the net.Conn
// quartet used to recognize connection types structurally.
func hasConnMethods(iface *types.Interface) bool {
	found := 0
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Read", "Write", "SetReadDeadline", "RemoteAddr":
			found++
		}
	}
	return found == 4
}

// funcOf resolves the called function object of a call expression,
// looking through parentheses. It returns nil for builtins, type
// conversions, and calls of function-typed values.
func funcOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// pkgPathOf returns the defining package path of a function, "" for
// nil or builtin.
func pkgPathOf(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// receiverOf returns the receiver expression when call is a method
// call spelled x.M(...), else nil.
func receiverOf(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// usesIdentOf reports whether the expression tree mentions the object.
func usesIdentOf(info *types.Info, n ast.Node, obj types.Object) bool {
	if n == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// exprObj returns the variable object an identifier expression denotes,
// or nil when the expression is not a plain identifier.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
