// Package netmodel describes the network environments of the paper's
// testbed as plain topology specifications: link capacities, shared
// site links, and latencies. The specifications are pure data — the
// simulator (internal/ninfsim) instantiates them as fluid resources,
// and the emulation layer (internal/emunet) can realize them over real
// sockets.
//
// Calibration sources: Table 2 (client↔server FTP throughput), §4.1
// ("The FTP throughput between the client and the server was measured
// to be approximately 0.17 MB/s" for Ocha-U↔ETL), Figure 5 (Ninf_call
// saturation throughputs), and Figure 9 (the four-site WAN layout).
package netmodel

import "fmt"

// MB is one megabyte in bytes, the unit of Table 2.
const MB = 1e6

// NinfEfficiency is the fraction of raw FTP throughput that Ninf RPC
// achieves end to end (Figure 5 vs Table 2: XDR marshalling and
// framing cost a modest constant factor; "various communication
// overhead such as XDR marshalling is not affecting performance
// significantly").
const NinfEfficiency = 0.85

// PairFTPMBps returns the Table 2 FTP throughput in MB/s between a
// client and a server architecture. Names follow the machine catalog.
func PairFTPMBps(client, server string) (float64, error) {
	key := client + "->" + server
	if v, ok := pairFTP[key]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("netmodel: no Table 2 entry for %s", key)
}

var pairFTP = map[string]float64{
	"supersparc->ultrasparc": 4.0,
	"supersparc->alpha":      4.0,
	"supersparc->j90":        2.8,
	"ultrasparc->alpha":      7.4,
	"ultrasparc->j90":        2.7,
	"alpha->j90":             2.9,
	// Same-architecture pairs used by Figure 5's ≈6 MB/s lines.
	"ultrasparc->ultrasparc": 7.4,
	"alpha->alpha":           7.4,
}

// A LinkSpec names a shared segment with finite capacity.
type LinkSpec struct {
	Name string
	MBps float64
}

// A GroupSpec describes a set of identical clients at one place.
type GroupSpec struct {
	// Site labels the group (Ocha-U, U-Tokyo, …).
	Site string
	// Clients is the number of clients in the group.
	Clients int
	// AccessMBps is each client's dedicated access capacity.
	AccessMBps float64
	// SharedLinks names the links (defined in Spec.Links) that every
	// flow from this group traverses: the site's WAN uplink, the
	// backbone segment, etc.
	SharedLinks []string
	// LatencySec is the one-way client↔server propagation delay.
	LatencySec float64
}

// A Spec is a complete client/server network scenario.
type Spec struct {
	Name string
	// ServerMBps is the server's access-link capacity, shared by all
	// flows (the J90's network interface plus its protocol stack).
	ServerMBps float64
	// PerFlowMBps caps each individual transfer, modeling the
	// per-connection XDR/TCP processing rate at the server (the
	// Figure 5 saturation levels); 0 means no per-flow cap.
	PerFlowMBps float64
	// Links defines the shared segments referenced by groups.
	Links []LinkSpec
	// Groups places the clients.
	Groups []GroupSpec
}

// TotalClients sums the group sizes.
func (s *Spec) TotalClients() int {
	n := 0
	for _, g := range s.Groups {
		n += g.Clients
	}
	return n
}

// Validate checks internal consistency: positive capacities and
// resolvable link references.
func (s *Spec) Validate() error {
	if s.ServerMBps <= 0 {
		return fmt.Errorf("netmodel: %s: non-positive server capacity", s.Name)
	}
	links := make(map[string]bool, len(s.Links))
	for _, l := range s.Links {
		if l.MBps <= 0 {
			return fmt.Errorf("netmodel: %s: link %q has non-positive capacity", s.Name, l.Name)
		}
		if links[l.Name] {
			return fmt.Errorf("netmodel: %s: duplicate link %q", s.Name, l.Name)
		}
		links[l.Name] = true
	}
	for _, g := range s.Groups {
		if g.Clients <= 0 || g.AccessMBps <= 0 || g.LatencySec < 0 {
			return fmt.Errorf("netmodel: %s: group %q ill-formed", s.Name, g.Site)
		}
		for _, ln := range g.SharedLinks {
			if !links[ln] {
				return fmt.Errorf("netmodel: %s: group %q references unknown link %q", s.Name, g.Site, ln)
			}
		}
	}
	return nil
}

// LANJ90 is the §4.1 LAN setting: c Alpha-cluster clients and the J90
// server on the ETL LAN. Per-client access is fast; the J90's own
// interface (≈2.5 MB/s of achievable Ninf throughput, Figure 5)
// bounds each transfer and the aggregate.
func LANJ90(c int) Spec {
	return Spec{
		Name:        "lan-j90",
		ServerMBps:  4.0,
		PerFlowMBps: 2.5,
		Groups: []GroupSpec{{
			Site: "ETL-cluster", Clients: c,
			AccessMBps: 4.0, LatencySec: 0.001,
		}},
	}
}

// LANSMP is the Table 5 setting: the SuperSPARC SMP server on a slower
// departmental segment.
func LANSMP(c int) Spec {
	return Spec{
		Name:        "lan-smp",
		ServerMBps:  1.3,
		PerFlowMBps: 1.1,
		Groups: []GroupSpec{{
			Site: "ETL-cluster", Clients: c,
			AccessMBps: 4.0, LatencySec: 0.001,
		}},
	}
}

// SingleSiteWAN is the §4.1 WAN setting: c SuperSPARC clients at
// Ochanomizu University, 60 km from the ETL J90, all sharing the
// 0.17 MB/s measured path.
func SingleSiteWAN(c int) Spec {
	return Spec{
		Name:       "wan-single-site",
		ServerMBps: 2.5,
		Links:      []LinkSpec{{Name: "ochau-uplink", MBps: 0.17}},
		Groups: []GroupSpec{{
			Site: "Ocha-U", Clients: c,
			AccessMBps: 4.0, SharedLinks: []string{"ochau-uplink"},
			LatencySec: 0.015,
		}},
	}
}

// MultiSiteWAN is the §4.2.3 setting (Figure 9): clients at four
// university sites on different backbones, all calling the ETL J90.
// Each site has its own uplink near the measured 0.17 MB/s; the
// server's WAN ingress sustains most, but not all, of their sum —
// which is exactly why the paper sees aggregate bandwidth "deteriorate
// only by 9%~18%" for one client per site rather than collapse.
func MultiSiteWAN(perSite int) Spec {
	return Spec{
		Name:       "wan-multi-site",
		ServerMBps: 0.58,
		Links: []LinkSpec{
			{Name: "ochau-uplink", MBps: 0.17},
			{Name: "utokyo-uplink", MBps: 0.18},
			{Name: "nitech-uplink", MBps: 0.16},
			{Name: "titech-uplink", MBps: 0.17},
		},
		Groups: []GroupSpec{
			{Site: "Ocha-U", Clients: perSite, AccessMBps: 4, SharedLinks: []string{"ochau-uplink"}, LatencySec: 0.015},
			{Site: "U-Tokyo", Clients: perSite, AccessMBps: 4, SharedLinks: []string{"utokyo-uplink"}, LatencySec: 0.012},
			{Site: "NITech", Clients: perSite, AccessMBps: 4, SharedLinks: []string{"nitech-uplink"}, LatencySec: 0.025},
			{Site: "TITech", Clients: perSite, AccessMBps: 4, SharedLinks: []string{"titech-uplink"}, LatencySec: 0.014},
		},
	}
}

// SingleClientLAN is the §3 single-client benchmark environment for an
// arbitrary client/server pair: capacity from Table 2 scaled by the
// Ninf protocol efficiency.
func SingleClientLAN(client, server string) (Spec, error) {
	ftp, err := PairFTPMBps(client, server)
	if err != nil {
		return Spec{}, err
	}
	return Spec{
		Name:        "lan-" + client + "-" + server,
		ServerMBps:  ftp * NinfEfficiency,
		PerFlowMBps: ftp * NinfEfficiency,
		Groups: []GroupSpec{{
			Site: client, Clients: 1,
			AccessMBps: ftp, LatencySec: 0.001,
		}},
	}, nil
}
