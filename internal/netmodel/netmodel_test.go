package netmodel

import "testing"

func TestPairFTP(t *testing.T) {
	// Spot-check Table 2.
	cases := []struct {
		c, s string
		want float64
	}{
		{"supersparc", "ultrasparc", 4.0},
		{"supersparc", "j90", 2.8},
		{"ultrasparc", "alpha", 7.4},
		{"ultrasparc", "j90", 2.7},
		{"alpha", "j90", 2.9},
	}
	for _, tc := range cases {
		got, err := PairFTPMBps(tc.c, tc.s)
		if err != nil || got != tc.want {
			t.Errorf("PairFTPMBps(%s,%s) = %g, %v; want %g", tc.c, tc.s, got, err, tc.want)
		}
	}
	if _, err := PairFTPMBps("cray", "cray"); err == nil {
		t.Error("unknown pair accepted")
	}
}

func TestScenariosValidate(t *testing.T) {
	specs := []Spec{
		LANJ90(1), LANJ90(16), LANSMP(4),
		SingleSiteWAN(8), MultiSiteWAN(1), MultiSiteWAN(4),
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	sc, err := SingleClientLAN("supersparc", "j90")
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := SingleClientLAN("x", "y"); err == nil {
		t.Error("unknown pair accepted")
	}
}

func TestTotalClients(t *testing.T) {
	s := MultiSiteWAN(4)
	if s.TotalClients() != 16 {
		t.Errorf("clients = %d, want 16", s.TotalClients())
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	bad := []Spec{
		{Name: "no-server", ServerMBps: 0},
		{Name: "bad-link", ServerMBps: 1, Links: []LinkSpec{{Name: "l", MBps: 0}}},
		{Name: "dup-link", ServerMBps: 1, Links: []LinkSpec{{Name: "l", MBps: 1}, {Name: "l", MBps: 2}}},
		{Name: "bad-group", ServerMBps: 1, Groups: []GroupSpec{{Site: "s", Clients: 0, AccessMBps: 1}}},
		{Name: "dangling", ServerMBps: 1, Groups: []GroupSpec{{Site: "s", Clients: 1, AccessMBps: 1, SharedLinks: []string{"zz"}}}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", s.Name)
		}
	}
}

func TestMultiSiteAggregateExceedsSingleSite(t *testing.T) {
	// The §4.2.3 premise: the sum of the four site uplinks exceeds
	// any single uplink several-fold, and the server ingress admits
	// most of the aggregate (9–18% degradation, not 75%).
	ms := MultiSiteWAN(1)
	sum := 0.0
	for _, l := range ms.Links {
		sum += l.MBps
	}
	if sum < 3*0.17 {
		t.Errorf("aggregate uplink %g too small", sum)
	}
	degr := 1 - ms.ServerMBps/sum
	if degr < 0.05 || degr > 0.25 {
		t.Errorf("server ingress implies %.0f%% degradation, want 9–18%%", degr*100)
	}
}
