package protocol

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"ninf/internal/idl"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello ninf")
	if err := WriteFrame(&buf, MsgCall, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgCall || !bytes.Equal(got, payload) {
		t.Errorf("got %v %q", typ, got)
	}
}

func TestEmptyPayloadFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf, 0)
	if err != nil || typ != MsgPing || len(got) != 0 {
		t.Errorf("got %v %v %v", typ, got, err)
	}
}

func TestFrameErrors(t *testing.T) {
	// Clean EOF between frames.
	_, _, err := ReadFrame(bytes.NewReader(nil), 0)
	if err != io.EOF {
		t.Errorf("empty stream: %v, want io.EOF", err)
	}

	// Bad magic.
	_, _, err = ReadFrame(bytes.NewReader(make([]byte, 16)), 0)
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}

	// Bad version.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[7] = 99
	_, _, err = ReadFrame(bytes.NewReader(b), 0)
	if !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}

	// Oversized payload length.
	buf.Reset()
	if err := WriteFrame(&buf, MsgCall, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadFrame(bytes.NewReader(buf.Bytes()), 50)
	if !errors.Is(err, ErrOversized) {
		t.Errorf("oversized: %v", err)
	}

	// Truncated payload.
	buf.Reset()
	if err := WriteFrame(&buf, MsgCall, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadFrame(bytes.NewReader(buf.Bytes()[:18]), 0)
	if err == nil {
		t.Error("truncated payload not detected")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, typ := range []MsgType{MsgError, MsgPing, MsgPong, MsgList, MsgListReply,
		MsgInterface, MsgInterfaceOK, MsgCall, MsgCallOK, MsgSubmit, MsgSubmitOK,
		MsgFetch, MsgFetchOK, MsgStats, MsgStatsOK} {
		if s := typ.String(); strings.HasPrefix(s, "MsgType(") {
			t.Errorf("missing name for %d", uint32(typ))
		}
	}
	if s := MsgType(999).String(); !strings.HasPrefix(s, "MsgType(") {
		t.Errorf("unknown type string %q", s)
	}
}

const dmmulIDL = `
Define dmmul(mode_in int n,
             mode_in double A[n][n], mode_in double B[n][n],
             mode_out double C[n][n])
    "matrix multiply" Complexity 2*n^3
    Calls "go" dmmul(n, A, B, C);
`

func dmmulInfo(t *testing.T) *idl.Info {
	t.Helper()
	info, err := idl.ParseOne(dmmulIDL)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestCallRequestRoundTrip(t *testing.T) {
	info := dmmulInfo(t)
	n := 3
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i) * 2
	}
	req := &CallRequest{Name: "dmmul", Args: []idl.Value{int64(n), a, b, nil}}
	p, err := EncodeCallRequest(info, req)
	if err != nil {
		t.Fatal(err)
	}

	name, rest, err := DecodeCallName(p)
	if err != nil {
		t.Fatal(err)
	}
	if name != "dmmul" {
		t.Errorf("name = %q", name)
	}
	args, err := DecodeCallArgs(info, rest)
	if err != nil {
		t.Fatal(err)
	}
	if got := args[0].(int64); got != 3 {
		t.Errorf("n = %d", got)
	}
	if !reflect.DeepEqual(args[1], a) || !reflect.DeepEqual(args[2], b) {
		t.Error("array arguments corrupted")
	}
	// Out-only C must be allocated and zeroed with the right size.
	c, ok := args[3].([]float64)
	if !ok || len(c) != n*n {
		t.Fatalf("out arg C = %T len %d", args[3], len(c))
	}
	for _, v := range c {
		if v != 0 {
			t.Fatal("out arg not zeroed")
		}
	}
}

func TestCallReplyRoundTrip(t *testing.T) {
	info := dmmulInfo(t)
	n := 2
	callArgs := []idl.Value{int64(n), make([]float64, 4), make([]float64, 4), nil}
	c := []float64{1, 2, 3, 4}
	serverArgs := []idl.Value{int64(n), make([]float64, 4), make([]float64, 4), c}
	want := Timings{Enqueue: 10, Dequeue: 20, Complete: 30}
	p, err := EncodeCallReply(info, want, serverArgs)
	if err != nil {
		t.Fatal(err)
	}
	tm, out, err := DecodeCallReply(info, callArgs, p)
	if err != nil {
		t.Fatal(err)
	}
	if tm != want {
		t.Errorf("timings = %+v", tm)
	}
	if !reflect.DeepEqual(out[3], c) {
		t.Errorf("C = %v", out[3])
	}
	if out[0] != nil || out[1] != nil {
		t.Error("in-only args unexpectedly present in reply")
	}
}

func TestInoutShipsBothWays(t *testing.T) {
	info, err := idl.ParseOne(`Define dgefa(mode_in int n, mode_inout double a[n][n], mode_out int ipvt[n]) Calls "go" dgefa(n, a, ipvt);`)
	if err != nil {
		t.Fatal(err)
	}
	n := 2
	a := []float64{4, 3, 6, 3}
	req := &CallRequest{Name: "dgefa", Args: []idl.Value{int64(n), a, nil}}
	p, err := EncodeCallRequest(info, req)
	if err != nil {
		t.Fatal(err)
	}
	_, rest, err := DecodeCallName(p)
	if err != nil {
		t.Fatal(err)
	}
	args, err := DecodeCallArgs(info, rest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(args[1], a) {
		t.Error("inout did not ship in")
	}
	if ip, ok := args[2].([]int64); !ok || len(ip) != n {
		t.Errorf("ipvt = %#v", args[2])
	}

	// Server mutates and replies; the inout value must come back.
	args[1].([]float64)[0] = 99
	args[2].([]int64)[0] = 1
	reply, err := EncodeCallReply(info, Timings{}, args)
	if err != nil {
		t.Fatal(err)
	}
	_, out, err := DecodeCallReply(info, req.Args, reply)
	if err != nil {
		t.Fatal(err)
	}
	if out[1].([]float64)[0] != 99 {
		t.Error("inout did not ship back")
	}
	if out[2].([]int64)[0] != 1 {
		t.Error("out did not ship back")
	}
}

func TestEncodeCallRequestErrors(t *testing.T) {
	info := dmmulInfo(t)
	// Wrong arg count.
	if _, err := EncodeCallRequest(info, &CallRequest{Name: "dmmul", Args: []idl.Value{int64(2)}}); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Wrong array size vs dims.
	if _, err := EncodeCallRequest(info, &CallRequest{Name: "dmmul",
		Args: []idl.Value{int64(3), make([]float64, 4), make([]float64, 9), nil}}); err == nil {
		t.Error("size mismatch accepted")
	}
	// Wrong type.
	if _, err := EncodeCallRequest(info, &CallRequest{Name: "dmmul",
		Args: []idl.Value{"three", make([]float64, 9), make([]float64, 9), nil}}); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestDecodeCallArgsCorrupt(t *testing.T) {
	info := dmmulInfo(t)
	n := 2
	req := &CallRequest{Name: "dmmul", Args: []idl.Value{int64(n), make([]float64, 4), make([]float64, 4), nil}}
	p, err := EncodeCallRequest(info, req)
	if err != nil {
		t.Fatal(err)
	}
	_, rest, err := DecodeCallName(p)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-arguments.
	if _, err := DecodeCallArgs(info, rest[:len(rest)-6]); err == nil {
		t.Error("truncated args decoded")
	}
}

func TestErrorReplyRoundTrip(t *testing.T) {
	p := EncodeErrorReply(CodeUnknownRoutine, "no such routine")
	er, err := DecodeErrorReply(p)
	if err != nil {
		t.Fatal(err)
	}
	if er.Code != CodeUnknownRoutine || er.Detail != "no such routine" {
		t.Errorf("got %+v", er)
	}
	re := &RemoteError{Code: er.Code, Detail: er.Detail}
	if !strings.Contains(re.Error(), "no such routine") {
		t.Errorf("RemoteError text %q", re.Error())
	}
}

func TestInterfaceMessages(t *testing.T) {
	req := InterfaceRequest{Name: "dmmul"}
	got, err := DecodeInterfaceRequest(req.Encode())
	if err != nil || got.Name != "dmmul" {
		t.Errorf("got %+v err %v", got, err)
	}

	info := dmmulInfo(t)
	p, err := EncodeInterfaceReply(info)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeInterfaceReply(p)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != info.Name || len(back.Params) != len(info.Params) {
		t.Errorf("interface mangled: %+v", back)
	}
}

func TestListReplyRoundTrip(t *testing.T) {
	m := ListReply{Names: []string{"dgefa", "dgesl", "ep"}}
	got, err := DecodeListReply(m.Encode())
	if err != nil || !reflect.DeepEqual(got.Names, m.Names) {
		t.Errorf("got %+v err %v", got, err)
	}
	empty := ListReply{}
	got, err = DecodeListReply(empty.Encode())
	if err != nil || len(got.Names) != 0 {
		t.Errorf("empty: %+v err %v", got, err)
	}
}

func TestSubmitFetchStats(t *testing.T) {
	sr := SubmitReply{JobID: 42}
	gotSR, err := DecodeSubmitReply(sr.Encode())
	if err != nil || gotSR != sr {
		t.Errorf("submit: %+v err %v", gotSR, err)
	}

	fr := FetchRequest{JobID: 42, Wait: true}
	gotFR, err := DecodeFetchRequest(fr.Encode())
	if err != nil || gotFR != fr {
		t.Errorf("fetch: %+v err %v", gotFR, err)
	}

	st := Stats{Hostname: "j90.etl", PEs: 4, Running: 2, Queued: 7, TotalCalls: 100, LoadAverage: 3.5, CPUUtil: 0.92}
	gotST, err := DecodeStats(st.Encode())
	if err != nil || gotST != st {
		t.Errorf("stats: %+v err %v", gotST, err)
	}
}

func TestStringScalarParam(t *testing.T) {
	info, err := idl.ParseOne(`Define tag(mode_in string label, mode_in int n, mode_out double v[n]) Calls "go" tag(label, n, v);`)
	if err != nil {
		t.Fatal(err)
	}
	req := &CallRequest{Name: "tag", Args: []idl.Value{"hello", int64(4), nil}}
	p, err := EncodeCallRequest(info, req)
	if err != nil {
		t.Fatal(err)
	}
	_, rest, err := DecodeCallName(p)
	if err != nil {
		t.Fatal(err)
	}
	args, err := DecodeCallArgs(info, rest)
	if err != nil {
		t.Fatal(err)
	}
	if args[0].(string) != "hello" {
		t.Errorf("label = %v", args[0])
	}
	if v := args[2].([]float64); len(v) != 4 {
		t.Errorf("out len = %d", len(v))
	}
}
