package protocol

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Chunked bulk streaming (mux feature level 3). A monolithic v2 frame
// carrying an 8 MiB argument occupies the session's single writer end
// to end, head-of-line blocking every pipelined small call behind it —
// the paper's mixed LAN/WAN workload (EP-style calls sharing links with
// LINPACK matrices) made exactly this cost visible. Feature level 3
// keeps v2 framing but splits any payload over a negotiated threshold
// into three frame kinds, all tagged with the owning Seq:
//
//	MsgBulkBegin  inner type, flags, head length, total length
//	MsgBulkChunk  offset, CRC-32C, up to DefaultBulkChunk data bytes
//	MsgBulkAbort  sender gave up mid-stream; drop the reassembly
//
// The logical payload is the "head" (normal XDR with bulk arrays
// replaced by marker words) followed by the raw element segments the
// markers point into. Chunks must arrive contiguously from offset 0;
// the receiver reassembles them into one pooled buffer sized up front
// and validates each chunk's CRC, so a desynchronized or corrupted
// stream fails the connection instead of delivering garbage.
//
// Feature negotiation rides the existing Hello exchange: a level-3
// client sends MaxVersion 3 and a level-3 server answers with 3, while
// older peers answer 2 (or MsgError), pinning the connection to
// monolithic frames. The wire framing version stays 2 in every header.
const (
	// MuxVersionBulk is the negotiated feature level at which bulk
	// frames may appear on a mux connection.
	MuxVersionBulk = 3

	// MuxVersionCache is the negotiated feature level at which
	// content-addressed digest references and data handles may appear
	// (see digest.go). Below this level the wire is bit-identical to a
	// level-3 connection.
	MuxVersionCache = 4

	// DefaultBulkThreshold is the payload size at or above which
	// requests and replies switch to chunked bulk frames.
	DefaultBulkThreshold = 256 << 10

	// DefaultBulkChunk bounds one MsgBulkChunk's data bytes; small
	// frames interleave between chunks at this granularity, so it is
	// the head-of-line bound a small call can wait behind (~5 ms on a
	// 100 MB/s access link). Halving it costs measurable aggregate
	// throughput on concurrent transfers (per-chunk header reads
	// defeat the buffered reader's large-read pass-through).
	DefaultBulkChunk = 512 << 10

	// bulkChunkHdr is the chunk payload prologue: offset and CRC-32C.
	bulkChunkHdr = 8

	// bulkBeginLen is the fixed MsgBulkBegin payload length.
	bulkBeginLen = 16

	// bulkArgFlag marks a bulk-array count word in a head; the low 31
	// bits hold the element count and a u32 segment offset follows.
	// Counts stay below 2^31 because payloads are capped at 1 GiB.
	bulkArgFlag = 1 << 31

	// bulkFlagLE in MsgBulkBegin flags says segment data is
	// little-endian; clear means big-endian.
	bulkFlagLE = 1 << 0

	// bulkDigestFlag, set together with bulkArgFlag on a count word,
	// says the array's bytes are NOT in this message: two u64 words
	// follow holding the content digest of the (absent) segment, and
	// the receiver resolves them from its argument cache. Level ≥ 4
	// only; a lower-level decode rejects the marker.
	bulkDigestFlag = 1 << 30
)

// Bulk frame types (v2 framing only, never spoken before negotiation).
const (
	MsgBulkBegin MsgType = iota + 130
	MsgBulkChunk
	MsgBulkAbort
)

// crcBulk is the chunk checksum polynomial (CRC-32C/Castagnoli,
// hardware-accelerated on current amd64 and arm64).
var crcBulk = crc32.MakeTable(crc32.Castagnoli)

// A BulkMsg is an encoded message ready for chunked streaming: the
// logical payload is the concatenation of Spans, whose first HeadLen
// bytes are the XDR head and whose remainder are raw bulk segments
// aliasing the caller's argument slices (zero-copy — the caller must
// not mutate those slices until the send completes or is abandoned).
// Release returns the pooled head buffer; the segment spans are only
// borrowed and are never released here.
type BulkMsg struct {
	Type    MsgType  // inner message type (MsgCall, MsgSubmit, MsgCallOK, MsgFetchOK)
	Spans   [][]byte // logical payload in order
	headLen int
	total   int
	le      bool
	head    *Buffer // pooled backing of the head span; nil when caller-owned
}

// Total reports the logical payload length (head plus segments).
func (m *BulkMsg) Total() int { return m.total }

// HeadLen reports the head's length within the logical payload.
func (m *BulkMsg) HeadLen() int { return m.headLen }

// Release returns the pooled head buffer. Segment spans are borrowed
// from the caller and untouched. Idempotent, like Buffer.Release.
func (m *BulkMsg) Release() {
	if m == nil {
		return
	}
	m.head.Release()
	m.head = nil
	m.Spans = nil
}

// RawBulkMsg wraps an already-encoded monolithic payload for chunked
// streaming: the whole payload is the head (no markers, no segments),
// so the receiver decodes it exactly as it would a monolithic frame.
// The server's fetch path uses this to stream stored two-phase results
// without head-of-line blocking the session.
func RawBulkMsg(t MsgType, payload []byte) *BulkMsg {
	return &BulkMsg{
		Type:    t,
		Spans:   [][]byte{payload},
		headLen: len(payload),
		total:   len(payload),
		le:      hostLittle,
	}
}

// EncodeBegin builds the MsgBulkBegin payload in a pooled buffer. The
// caller owns the buffer and must Release it after the write.
func (m *BulkMsg) EncodeBegin() *Buffer {
	fb := AcquireBuffer(bulkBeginLen)
	e := fb.Encoder()
	e.PutUint32(uint32(m.Type))
	var flags uint32
	if m.le {
		flags |= bulkFlagLE
	}
	e.PutUint32(flags)
	e.PutUint32(uint32(m.headLen))
	e.PutUint32(uint32(m.total))
	return fb
}

// Cursor returns a chunk cursor positioned at the start of the message.
func (m *BulkMsg) Cursor() BulkCursor { return BulkCursor{m: m} }

// A BulkCursor walks a BulkMsg's logical payload in chunk-sized steps,
// tracking how much has reached the wire so a scheduler can interleave
// other frames between chunks.
type BulkCursor struct {
	m    *BulkMsg
	span int
	off  int // within the current span
	sent int // logical bytes written so far
}

// Done reports whether every byte has been written.
func (c *BulkCursor) Done() bool { return c.sent == c.m.total }

// Sent reports the logical bytes written so far.
func (c *BulkCursor) Sent() int { return c.sent }

// bulkWriter is pooled scratch for WriteChunk's vectored write: the
// 16-byte mux header and 8-byte chunk prologue share one contiguous
// block, followed by the data spans.
type bulkWriter struct {
	hdr [headerSize + bulkChunkHdr]byte
	vec net.Buffers
}

var bulkWriterPool = sync.Pool{New: func() any { return new(bulkWriter) }}

// WriteChunk writes the next chunk (at most limit data bytes, 0 means
// DefaultBulkChunk) of the cursor's message to w as one vectored write:
// the header from pooled scratch, the data straight from the message's
// spans — the caller's slices are never copied. It returns true once
// the final chunk is on the wire.
func (c *BulkCursor) WriteChunk(w io.Writer, seq uint32, limit int) (bool, error) {
	if limit <= 0 {
		limit = DefaultBulkChunk
	}
	n := c.m.total - c.sent
	if n > limit {
		n = limit
	}
	bw := bulkWriterPool.Get().(*bulkWriter)
	putU32(bw.hdr[0:], Magic)
	putU32(bw.hdr[4:], MuxVersion<<16|uint32(MsgBulkChunk)&maxMuxType)
	putU32(bw.hdr[8:], seq)
	putU32(bw.hdr[12:], uint32(n+bulkChunkHdr))
	putU32(bw.hdr[16:], uint32(c.sent))
	vec := append(bw.vec[:0], bw.hdr[:])
	crc := uint32(0)
	left, span, off := n, c.span, c.off
	for left > 0 {
		s := c.m.Spans[span][off:]
		take := len(s)
		if take > left {
			take = left
		}
		seg := s[:take]
		crc = crc32.Update(crc, crcBulk, seg)
		vec = append(vec, seg)
		left -= take
		off += take
		if off == len(c.m.Spans[span]) {
			span, off = span+1, 0
		}
	}
	putU32(bw.hdr[20:], crc)
	spans := len(vec)
	bw.vec = vec
	_, err := bw.vec.WriteTo(w)
	for i := 0; i < spans; i++ {
		vec[i] = nil // drop caller-slice references before pooling
	}
	bw.vec = vec[:0]
	bulkWriterPool.Put(bw)
	if err != nil {
		return false, fmt.Errorf("protocol: write bulk chunk: %w", err)
	}
	c.span, c.off, c.sent = span, off, c.sent+n
	return c.sent == c.m.total, nil
}

// BulkInfo accompanies a reassembled bulk payload through decode: Base
// is the full logical payload (head plus segments, aliasing the frame
// buffer), HeadLen bounds the sequentially-decoded head, and LE records
// the sender's segment byte order. A nil *BulkInfo in a decode call
// means "monolithic frame" and rejects bulk markers outright.
type BulkInfo struct {
	Base    []byte
	HeadLen int
	LE      bool

	// Resolver, when non-nil, supplies the bytes behind digest markers
	// (level-4 frames only): it returns the cached little-endian
	// element bytes for a digest, or ErrDigestMiss when the entry is
	// gone. A nil Resolver rejects digest markers, so pre-cache decode
	// paths are untouched.
	Resolver DigestResolver
}

// Head returns the sequentially-decoded portion of the payload.
func (b *BulkInfo) Head() []byte { return b.Base[:b.HeadLen] }

// BulkDone is one fully reassembled bulk message: the inner type, the
// pooled buffer holding the logical payload (the receiver owns it and
// must Release after decode), and the decode metadata.
type BulkDone struct {
	Type MsgType
	FB   *Buffer
	Bulk BulkInfo
}

// openBulk counts reassemblies currently holding a pooled buffer, on
// either side of any connection. Leak checks assert it returns to zero
// after chaos runs and teardowns.
var openBulk atomic.Int64

// OpenBulkReassemblies reports in-progress bulk reassemblies holding
// buffers, process-wide.
func OpenBulkReassemblies() int64 { return openBulk.Load() }

// A Reassembler rebuilds chunked bulk messages for one connection's
// read loop. It is not safe for concurrent use; exactly one read loop
// drives it. Close releases whatever is still half-assembled (the leak
// path the chaos tests cut connections to exercise).
type Reassembler struct {
	maxPayload int
	maxOpen    int
	open       map[uint32]*reassembly
	scratch    []byte
}

type reassembly struct {
	inner   MsgType
	fb      *Buffer // nil in discard mode
	headLen int
	le      bool
	got     int
	total   int
}

// NewReassembler builds a reassembler enforcing the connection's
// payload bound and a cap on concurrently-open reassemblies (a peer
// opening more is broken or hostile).
func NewReassembler(maxPayload, maxOpen int) *Reassembler {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if maxOpen <= 0 {
		maxOpen = 64
	}
	return &Reassembler{
		maxPayload: maxPayload,
		maxOpen:    maxOpen,
		open:       make(map[uint32]*reassembly),
	}
}

// Open reports reassemblies currently holding a buffer.
func (ra *Reassembler) Open() int {
	n := 0
	for _, re := range ra.open {
		if re.fb != nil {
			n++
		}
	}
	return n
}

// Begin opens a reassembly for seq from a MsgBulkBegin payload. With
// discard set the chunks are validated and dropped without buffering —
// the receiver no longer wants the message (abandoned Seq) but must
// stay in stream sync.
func (ra *Reassembler) Begin(seq uint32, payload []byte, discard bool) error {
	if len(payload) != bulkBeginLen {
		return fmt.Errorf("protocol: bulk begin payload %d bytes, want %d", len(payload), bulkBeginLen)
	}
	if _, dup := ra.open[seq]; dup {
		return fmt.Errorf("protocol: duplicate bulk begin for seq %d", seq)
	}
	if len(ra.open) >= ra.maxOpen {
		return fmt.Errorf("protocol: more than %d concurrent bulk reassemblies", ra.maxOpen)
	}
	inner := MsgType(getU32(payload[0:]))
	flags := getU32(payload[4:])
	headLen := int(getU32(payload[8:]))
	total := int(getU32(payload[12:]))
	if total > ra.maxPayload {
		return fmt.Errorf("%w: bulk total %d bytes", ErrOversized, total)
	}
	if headLen > total {
		return fmt.Errorf("protocol: bulk head %d exceeds total %d", headLen, total)
	}
	re := &reassembly{
		inner:   inner,
		headLen: headLen,
		le:      flags&bulkFlagLE != 0,
		total:   total,
	}
	if !discard {
		fb := AcquireBuffer(total)
		fb.b = fb.b[:headerSize+total]
		re.fb = fb
		openBulk.Add(1)
	}
	ra.open[seq] = re
	return nil
}

// ReadChunk consumes one MsgBulkChunk for seq whose payload is n bytes,
// reading the data directly from r into the reassembly buffer (no
// intermediate frame buffer). It validates strict offset contiguity and
// the chunk CRC; any violation is a protocol error that must fail the
// connection. A non-nil BulkDone means the message completed and the
// caller now owns its buffer; a discarded message completes silently.
func (ra *Reassembler) ReadChunk(r io.Reader, seq uint32, n int) (*BulkDone, error) {
	re, ok := ra.open[seq]
	if !ok {
		return nil, fmt.Errorf("protocol: bulk chunk for seq %d without begin", seq)
	}
	if n < bulkChunkHdr {
		return nil, fmt.Errorf("protocol: bulk chunk payload %d bytes, want at least %d", n, bulkChunkHdr)
	}
	var hdr [bulkChunkHdr]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("protocol: read bulk chunk header: %w", err)
	}
	off := int(getU32(hdr[0:]))
	want := getU32(hdr[4:])
	data := n - bulkChunkHdr
	if off != re.got {
		return nil, fmt.Errorf("protocol: bulk chunk offset %d for seq %d, want %d", off, seq, re.got)
	}
	if re.got+data > re.total {
		return nil, fmt.Errorf("protocol: bulk chunk overruns total %d for seq %d", re.total, seq)
	}
	var crc uint32
	if re.fb != nil {
		dst := re.fb.b[headerSize+re.got : headerSize+re.got+data]
		if _, err := io.ReadFull(r, dst); err != nil {
			return nil, fmt.Errorf("protocol: read bulk chunk: %w", err)
		}
		crc = crc32.Checksum(dst, crcBulk)
	} else {
		if ra.scratch == nil {
			ra.scratch = make([]byte, 32<<10)
		}
		for left := data; left > 0; {
			take := left
			if take > len(ra.scratch) {
				take = len(ra.scratch)
			}
			if _, err := io.ReadFull(r, ra.scratch[:take]); err != nil {
				return nil, fmt.Errorf("protocol: read bulk chunk: %w", err)
			}
			crc = crc32.Update(crc, crcBulk, ra.scratch[:take])
			left -= take
		}
	}
	if crc != want {
		return nil, fmt.Errorf("protocol: bulk chunk CRC mismatch for seq %d at offset %d", seq, off)
	}
	re.got += data
	if re.got < re.total {
		return nil, nil
	}
	delete(ra.open, seq)
	if re.fb == nil {
		return nil, nil // discarded message completed
	}
	openBulk.Add(-1)
	return &BulkDone{
		Type: re.inner,
		FB:   re.fb,
		Bulk: BulkInfo{Base: re.fb.Payload(), HeadLen: re.headLen, LE: re.le},
	}, nil
}

// Drop switches seq's reassembly to discard mode, releasing its buffer
// now: the receiver abandoned the message mid-stream but must keep
// consuming its chunks to stay in sync.
func (ra *Reassembler) Drop(seq uint32) {
	re, ok := ra.open[seq]
	if !ok || re.fb == nil {
		return
	}
	re.fb.Release()
	re.fb = nil
	openBulk.Add(-1)
}

// Abort removes seq's reassembly entirely (the sender gave up and will
// send no more chunks). Unknown seqs are ignored.
func (ra *Reassembler) Abort(seq uint32) {
	re, ok := ra.open[seq]
	if !ok {
		return
	}
	delete(ra.open, seq)
	if re.fb != nil {
		re.fb.Release()
		openBulk.Add(-1)
	}
}

// Close releases every half-assembled buffer; the connection is gone.
func (ra *Reassembler) Close() {
	for seq, re := range ra.open {
		delete(ra.open, seq)
		if re.fb != nil {
			re.fb.Release()
			openBulk.Add(-1)
		}
	}
}

// ReadMuxHeader reads and validates one v2 frame header, returning the
// type, sequence number, and payload length still unread on r. Bulk-
// aware read loops use it so chunk data can be read straight into the
// reassembly buffer; ReadMuxFrameBuf composes it for whole frames.
func ReadMuxHeader(r io.Reader, maxPayload int) (MsgType, uint32, int, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, 0, 0, io.EOF
		}
		return 0, 0, 0, fmt.Errorf("protocol: read mux header: %w", err)
	}
	if getU32(hdr[0:]) != Magic {
		return 0, 0, 0, ErrBadMagic
	}
	vt := getU32(hdr[4:])
	if v := vt >> 16; v != MuxVersion {
		return 0, 0, 0, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	t := MsgType(vt & maxMuxType)
	seq := getU32(hdr[8:])
	n := int(getU32(hdr[12:]))
	if n > maxPayload {
		return 0, 0, 0, fmt.Errorf("%w: %d bytes", ErrOversized, n)
	}
	return t, seq, n, nil
}

// ReadMuxPayload reads an n-byte payload (already validated by
// ReadMuxHeader) into a pooled buffer the caller must Release.
func ReadMuxPayload(r io.Reader, n int) (*Buffer, error) {
	fb := AcquireBuffer(n)
	fb.b = fb.b[:headerSize+n]
	if _, err := io.ReadFull(r, fb.b[headerSize:]); err != nil {
		fb.Release()
		return nil, fmt.Errorf("protocol: read mux payload: %w", err)
	}
	return fb, nil
}
