package protocol

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadFrame checks the frame reader never panics and never returns
// both a payload and an error.
func FuzzReadFrame(f *testing.F) {
	var ok bytes.Buffer
	WriteFrame(&ok, MsgCall, []byte("payload"))
	f.Add(ok.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data), 1<<20)
		if err != nil {
			return
		}
		// A successfully-read frame must re-serialize to a prefix of
		// the input.
		var out bytes.Buffer
		if werr := WriteFrame(&out, typ, payload); werr != nil {
			t.Fatal(werr)
		}
		if !bytes.HasPrefix(data, out.Bytes()) {
			t.Fatal("re-encoded frame is not a prefix of the input")
		}
	})
}

// FuzzDecodePayloads checks every payload decoder is panic-free on
// arbitrary bytes.
func FuzzDecodePayloads(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 'a', 'b', 'c', 'd'})
	f.Add(bytes.Repeat([]byte{0x7f}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		DecodeInterfaceRequest(data)
		DecodeListReply(data)
		DecodeSubmitReply(data)
		DecodeFetchRequest(data)
		DecodeStats(data)
		DecodeErrorReply(data)
		DecodeScheduleRequest(data)
		DecodeScheduleReply(data)
		DecodeObserveRequest(data)
		DecodeCallbackRequest(data)
		DecodeCallbackReply(data)
		if name, rest, err := DecodeCallName(data); err == nil {
			_ = name
			_ = rest
		}
	})
}

// FuzzJournalRecord checks the write-ahead journal record codec:
// decoding arbitrary bytes never panics, and any record that decodes
// round-trips bit-identically — replay after a crash must never
// reinterpret what admission wrote.
func FuzzJournalRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add((&JournalRecord{Kind: JournalSubmit, JobID: 7, Key: 42, Client: "c1", Payload: []byte("req")}).Encode())
	f.Add((&JournalRecord{Kind: JournalComplete, JobID: 7, ErrCode: 3, ErrDetail: "boom"}).Encode())
	f.Add((&JournalRecord{Kind: JournalFetched, JobID: 9}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeJournalRecord(data)
		if err != nil {
			return
		}
		re := rec.Encode()
		rec2, err := DecodeJournalRecord(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded record failed: %v", err)
		}
		if re2 := rec2.Encode(); !bytes.Equal(re, re2) {
			t.Fatal("journal record does not round-trip bit-identically")
		}
	})
}

// FuzzFrameStream feeds random bytes as a stream of frames; the reader
// must terminate (EOF or error) without panic.
func FuzzFrameStream(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, MsgPing, nil)
	WriteFrame(&buf, MsgList, nil)
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 100; i++ {
			if _, _, err := ReadFrame(r, 1<<16); err != nil {
				if err == io.EOF {
					return
				}
				return
			}
		}
	})
}
