// Package protocol implements the Ninf RPC wire protocol: framed,
// XDR-encoded messages over a byte stream (TCP in deployment, in-memory
// pipes in tests, shaped connections under emulation).
//
// The protocol is the paper's §2.1/§2.3 design: a client first asks the
// server for the compiled IDL of a routine (stage one of the two-stage
// RPC), then interprets that description to marshal a call (stage two).
// No stubs, headers, or linking exist on the client side.
//
// In addition to the classic blocking call, the package carries the
// §5.1 two-phase transaction: arguments are submitted and the
// connection may be dropped; the client later fetches results under a
// job handle.
package protocol

import (
	"errors"
	"fmt"
	"io"

	"ninf/internal/xdr"
)

// Frame constants.
const (
	// Magic identifies a Ninf RPC frame ("NINF").
	Magic = 0x4e494e46

	// Version is the protocol version spoken by this package.
	Version = 1

	// headerSize is the fixed frame header length in bytes:
	// magic, version, type, payload length — four uint32s.
	headerSize = 16

	// DefaultMaxPayload bounds the size of a single frame payload.
	// A 1600×1600 double matrix is ~20 MB; 1 GiB leaves ample room
	// while still rejecting corrupt lengths.
	DefaultMaxPayload = 1 << 30
)

// MsgType identifies the kind of a frame.
type MsgType uint32

// Frame types.
const (
	MsgError MsgType = iota + 1
	MsgPing
	MsgPong
	MsgList // request: none; reply: MsgListReply
	MsgListReply
	MsgInterface   // stage-one request: routine name
	MsgInterfaceOK // stage-one reply: compiled IDL
	MsgCall        // stage-two blocking call
	MsgCallOK      // blocking call reply with results
	MsgSubmit      // two-phase: ship arguments, get a job handle
	MsgSubmitOK
	MsgFetch // two-phase: poll/collect results by handle
	MsgFetchOK
	MsgStats // monitoring probe from the metaserver
	MsgStatsOK
	MsgTrace // execution-trace query (§5.1 predictor data)
	MsgTraceOK
)

// String returns a symbolic name for the message type.
func (t MsgType) String() string {
	switch t {
	case MsgError:
		return "Error"
	case MsgPing:
		return "Ping"
	case MsgPong:
		return "Pong"
	case MsgList:
		return "List"
	case MsgListReply:
		return "ListReply"
	case MsgInterface:
		return "Interface"
	case MsgInterfaceOK:
		return "InterfaceOK"
	case MsgCall:
		return "Call"
	case MsgCallOK:
		return "CallOK"
	case MsgSubmit:
		return "Submit"
	case MsgSubmitOK:
		return "SubmitOK"
	case MsgFetch:
		return "Fetch"
	case MsgFetchOK:
		return "FetchOK"
	case MsgStats:
		return "Stats"
	case MsgStatsOK:
		return "StatsOK"
	case MsgTrace:
		return "Trace"
	case MsgTraceOK:
		return "TraceOK"
	default:
		return fmt.Sprintf("MsgType(%d)", uint32(t))
	}
}

// Framing errors.
var (
	ErrBadMagic   = errors.New("protocol: bad frame magic")
	ErrBadVersion = errors.New("protocol: unsupported protocol version")
	ErrOversized  = errors.New("protocol: frame exceeds payload limit")
)

// WriteFrame writes one frame: header plus payload.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	var hdr [headerSize]byte
	putU32(hdr[0:], Magic)
	putU32(hdr[4:], Version)
	putU32(hdr[8:], uint32(t))
	putU32(hdr[12:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("protocol: write header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("protocol: write payload: %w", err)
		}
	}
	return nil
}

// ReadFrame reads one frame, enforcing the payload limit (0 means
// DefaultMaxPayload).
func ReadFrame(r io.Reader, maxPayload int) (MsgType, []byte, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		// EOF between frames is a clean close; pass it through
		// undecorated so callers can detect it.
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("protocol: read header: %w", err)
	}
	if getU32(hdr[0:]) != Magic {
		return 0, nil, ErrBadMagic
	}
	if v := getU32(hdr[4:]); v != Version {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	t := MsgType(getU32(hdr[8:]))
	n := int(getU32(hdr[12:]))
	if n > maxPayload {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrOversized, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("protocol: read payload: %w", err)
	}
	return t, payload, nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// An ErrorReply is the payload of MsgError: a code plus human-readable
// detail.
type ErrorReply struct {
	Code   uint32
	Detail string
}

// Error codes carried in MsgError frames.
const (
	CodeUnknownRoutine uint32 = iota + 1
	CodeBadArguments
	CodeExecFailed
	CodeOverloaded
	CodeUnknownJob
	CodeNotReady
	CodeInternal
)

// EncodeErrorReply serializes an error reply payload.
func EncodeErrorReply(code uint32, detail string) []byte {
	var buf writerBuf
	e := xdr.NewEncoder(&buf)
	e.PutUint32(code)
	e.PutString(detail)
	return buf.b
}

// DecodeErrorReply parses an error reply payload.
func DecodeErrorReply(p []byte) (ErrorReply, error) {
	d := xdr.NewDecoder(bytesReader(p))
	er := ErrorReply{Code: d.Uint32(), Detail: d.String()}
	return er, d.Err()
}

// RemoteError is the client-side representation of a MsgError frame.
type RemoteError struct {
	Code   uint32
	Detail string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("ninf: remote error %d: %s", e.Code, e.Detail)
}

// writerBuf is a minimal growable write buffer (bytes.Buffer without
// the read machinery).
type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
