// Package protocol implements the Ninf RPC wire protocol: framed,
// XDR-encoded messages over a byte stream (TCP in deployment, in-memory
// pipes in tests, shaped connections under emulation).
//
// The protocol is the paper's §2.1/§2.3 design: a client first asks the
// server for the compiled IDL of a routine (stage one of the two-stage
// RPC), then interprets that description to marshal a call (stage two).
// No stubs, headers, or linking exist on the client side.
//
// In addition to the classic blocking call, the package carries the
// §5.1 two-phase transaction: arguments are submitted and the
// connection may be dropped; the client later fetches results under a
// job handle.
package protocol

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net"
	"sync"

	"ninf/internal/xdr"
)

// Frame constants.
const (
	// Magic identifies a Ninf RPC frame ("NINF").
	Magic = 0x4e494e46

	// Version is the protocol version spoken by this package.
	Version = 1

	// headerSize is the fixed frame header length in bytes:
	// magic, version, type, payload length — four uint32s.
	headerSize = 16

	// DefaultMaxPayload bounds the size of a single frame payload.
	// A 1600×1600 double matrix is ~20 MB; 1 GiB leaves ample room
	// while still rejecting corrupt lengths.
	DefaultMaxPayload = 1 << 30
)

// MsgType identifies the kind of a frame.
type MsgType uint32

// Frame types.
const (
	MsgError MsgType = iota + 1
	MsgPing
	MsgPong
	MsgList // request: none; reply: MsgListReply
	MsgListReply
	MsgInterface   // stage-one request: routine name
	MsgInterfaceOK // stage-one reply: compiled IDL
	MsgCall        // stage-two blocking call
	MsgCallOK      // blocking call reply with results
	MsgSubmit      // two-phase: ship arguments, get a job handle
	MsgSubmitOK
	MsgFetch // two-phase: poll/collect results by handle
	MsgFetchOK
	MsgStats // monitoring probe from the metaserver
	MsgStatsOK
	MsgTrace // execution-trace query (§5.1 predictor data)
	MsgTraceOK
)

// String returns a symbolic name for the message type.
func (t MsgType) String() string {
	switch t {
	case MsgError:
		return "Error"
	case MsgPing:
		return "Ping"
	case MsgPong:
		return "Pong"
	case MsgList:
		return "List"
	case MsgListReply:
		return "ListReply"
	case MsgInterface:
		return "Interface"
	case MsgInterfaceOK:
		return "InterfaceOK"
	case MsgCall:
		return "Call"
	case MsgCallOK:
		return "CallOK"
	case MsgSubmit:
		return "Submit"
	case MsgSubmitOK:
		return "SubmitOK"
	case MsgFetch:
		return "Fetch"
	case MsgFetchOK:
		return "FetchOK"
	case MsgStats:
		return "Stats"
	case MsgStatsOK:
		return "StatsOK"
	case MsgTrace:
		return "Trace"
	case MsgTraceOK:
		return "TraceOK"
	case MsgSchedule:
		return "Schedule"
	case MsgScheduleOK:
		return "ScheduleOK"
	case MsgObserve:
		return "Observe"
	case MsgObserveOK:
		return "ObserveOK"
	case MsgGossip:
		return "Gossip"
	case MsgGossipOK:
		return "GossipOK"
	case MsgHello:
		return "Hello"
	case MsgHelloOK:
		return "HelloOK"
	case MsgBulkBegin:
		return "BulkBegin"
	case MsgBulkChunk:
		return "BulkChunk"
	case MsgBulkAbort:
		return "BulkAbort"
	case MsgCallDigest:
		return "CallDigest"
	case MsgDigestStatus:
		return "DigestStatus"
	case MsgDataHandle:
		return "DataHandle"
	case MsgDataHandleOK:
		return "DataHandleOK"
	default:
		return fmt.Sprintf("MsgType(%d)", uint32(t))
	}
}

// Framing errors.
var (
	ErrBadMagic   = errors.New("protocol: bad frame magic")
	ErrBadVersion = errors.New("protocol: unsupported protocol version")
	ErrOversized  = errors.New("protocol: frame exceeds payload limit")
)

// Buffer pooling. Frame buffers are recycled through size-classed
// sync.Pools so that steady-state calls assemble, write, and read
// frames without allocating. Capacities run in powers of two from
// 1 KiB to 64 MiB; buffers outside that range are not pooled.
const (
	minPoolBits = 10 // 1 KiB
	maxPoolBits = 26 // 64 MiB
)

var bufPools [maxPoolBits - minPoolBits + 1]sync.Pool

// poolClassFor returns the index of the smallest size class holding n
// bytes, or -1 when n exceeds the largest pooled capacity.
func poolClassFor(n int) int {
	if n <= 1<<minPoolBits {
		return 0
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	if c > maxPoolBits {
		return -1
	}
	return c - minPoolBits
}

// poolClassOf returns the index of the largest size class not
// exceeding capacity c, or -1 when c is below the smallest class.
func poolClassOf(c int) int {
	if c < 1<<minPoolBits {
		return -1
	}
	i := bits.Len(uint(c)) - 1 // floor(log2 c)
	if i > maxPoolBits {
		i = maxPoolBits
	}
	return i - minPoolBits
}

// A Buffer is a pooled frame-assembly buffer: headerSize bytes are
// reserved at the front for the frame header and the payload follows
// contiguously, so a finished frame goes to the wire with a single
// Write. Buffers come from AcquireBuffer and must be handed back with
// Release once the payload is no longer referenced; decoded values
// never alias the buffer, so releasing after decode is always safe.
type Buffer struct {
	b        []byte // b[:headerSize] header, b[headerSize:] payload
	enc      xdr.Encoder
	released bool
}

// AcquireBuffer returns a frame buffer with capacity for at least
// sizeHint payload bytes, drawing from the pool when possible. A hint
// of 0 is fine for small control messages; callers that know the
// payload size (the call encode/decode paths do) should pass it so the
// buffer lands in the right size class and is reused at steady state.
func AcquireBuffer(sizeHint int) *Buffer {
	need := headerSize + sizeHint
	ci := poolClassFor(need)
	if ci >= 0 {
		if v := bufPools[ci].Get(); v != nil {
			fb := v.(*Buffer)
			fb.b = fb.b[:headerSize]
			fb.released = false
			return fb
		}
	}
	size := need
	if ci >= 0 {
		size = 1 << (minPoolBits + ci)
	}
	return &Buffer{b: make([]byte, headerSize, size)}
}

// Release returns the buffer to its size-class pool. The buffer (and
// any slice of its payload) must not be used afterwards. Releasing nil
// or an already-released buffer is a no-op so single-owner cleanup
// paths stay simple; ownership still must not be shared.
func (fb *Buffer) Release() {
	if fb == nil || fb.released {
		return
	}
	fb.released = true
	ci := poolClassOf(cap(fb.b))
	if ci < 0 {
		return
	}
	bufPools[ci].Put(fb)
}

// Len reports the current payload length.
func (fb *Buffer) Len() int { return len(fb.b) - headerSize }

// Payload returns the payload bytes assembled (or read) so far. The
// slice aliases the buffer and dies with Release.
func (fb *Buffer) Payload() []byte { return fb.b[headerSize:] }

// Reset drops the payload, keeping capacity.
func (fb *Buffer) Reset() { fb.b = fb.b[:headerSize] }

// Write appends p to the payload, implementing io.Writer so XDR
// encoders can target the buffer directly.
func (fb *Buffer) Write(p []byte) (int, error) {
	fb.b = append(fb.b, p...)
	return len(p), nil
}

// Encoder returns the buffer's embedded XDR encoder, rearmed to append
// to the payload. The encoder is pooled with the buffer, so its bulk
// chunk storage is reused across frames.
func (fb *Buffer) Encoder() *xdr.Encoder {
	fb.enc.Reset(fb)
	return &fb.enc
}

// WriteFrameBuf stamps the frame header into the buffer's reserved
// prefix and writes header plus payload with a single Write call — one
// syscall on a TCP connection.
func WriteFrameBuf(w io.Writer, t MsgType, fb *Buffer) error {
	putU32(fb.b[0:], Magic)
	putU32(fb.b[4:], Version)
	putU32(fb.b[8:], uint32(t))
	putU32(fb.b[12:], uint32(fb.Len()))
	if _, err := w.Write(fb.b); err != nil {
		return fmt.Errorf("protocol: write frame: %w", err)
	}
	return nil
}

// ReadFrameBuf reads one frame into a pooled buffer (0 means
// DefaultMaxPayload, as for ReadFrame). The caller owns the buffer and
// must Release it once the payload has been decoded.
func ReadFrameBuf(r io.Reader, maxPayload int) (MsgType, *Buffer, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("protocol: read header: %w", err)
	}
	if getU32(hdr[0:]) != Magic {
		return 0, nil, ErrBadMagic
	}
	if v := getU32(hdr[4:]); v != Version {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	t := MsgType(getU32(hdr[8:]))
	n := int(getU32(hdr[12:]))
	if n > maxPayload {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrOversized, n)
	}
	fb := AcquireBuffer(n)
	fb.b = fb.b[:headerSize+n]
	if _, err := io.ReadFull(r, fb.b[headerSize:]); err != nil {
		fb.Release()
		return 0, nil, fmt.Errorf("protocol: read payload: %w", err)
	}
	return t, fb, nil
}

// frameWriter is the pooled scratch for WriteFrame's vectored path.
type frameWriter struct {
	hdr [headerSize]byte
	vec net.Buffers
	arr [2][]byte
}

var frameWriterPool = sync.Pool{New: func() any { return new(frameWriter) }}

// WriteFrame writes one frame: header plus payload. Header and payload
// go out in a single vectored write (writev on TCP connections), so a
// frame never straddles two syscalls. Callers that assemble payloads
// in a Buffer should prefer WriteFrameBuf, which skips the gather.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	fw := frameWriterPool.Get().(*frameWriter)
	putU32(fw.hdr[0:], Magic)
	putU32(fw.hdr[4:], Version)
	putU32(fw.hdr[8:], uint32(t))
	putU32(fw.hdr[12:], uint32(len(payload)))
	var err error
	if len(payload) == 0 {
		_, err = w.Write(fw.hdr[:])
	} else {
		fw.vec = append(net.Buffers(fw.arr[:0]), fw.hdr[:], payload)
		_, err = fw.vec.WriteTo(w)
		fw.arr[0], fw.arr[1] = nil, nil // drop the payload reference
	}
	frameWriterPool.Put(fw)
	if err != nil {
		return fmt.Errorf("protocol: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one frame, enforcing the payload limit (0 means
// DefaultMaxPayload).
func ReadFrame(r io.Reader, maxPayload int) (MsgType, []byte, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		// EOF between frames is a clean close; pass it through
		// undecorated so callers can detect it.
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("protocol: read header: %w", err)
	}
	if getU32(hdr[0:]) != Magic {
		return 0, nil, ErrBadMagic
	}
	if v := getU32(hdr[4:]); v != Version {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	t := MsgType(getU32(hdr[8:]))
	n := int(getU32(hdr[12:]))
	if n > maxPayload {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrOversized, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("protocol: read payload: %w", err)
	}
	return t, payload, nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// An ErrorReply is the payload of MsgError: a code plus human-readable
// detail. RetryAfterMillis is an optional trailing back-pressure hint
// (nonzero only on overload rejections from hint-aware servers): how
// long the sender suggests waiting before retrying. Old peers never
// emit it and ignore it when present, in both v1 and v2 framing.
type ErrorReply struct {
	Code             uint32
	Detail           string
	RetryAfterMillis uint32
}

// Error codes carried in MsgError frames.
const (
	CodeUnknownRoutine uint32 = iota + 1
	CodeBadArguments
	CodeExecFailed
	CodeOverloaded
	CodeUnknownJob
	CodeNotReady
	CodeInternal
	// CodeCacheMiss rejects a digest-referencing call whose referenced
	// cache entry is gone (evicted between the client's warmth check and
	// the call, or never present). The call was NOT executed; the client
	// retries with the full bytes.
	CodeCacheMiss
)

// EncodeErrorReply serializes an error reply payload.
func EncodeErrorReply(code uint32, detail string) []byte {
	return EncodeErrorReplyHint(code, detail, 0)
}

// EncodeErrorReplyHint serializes an error reply payload with an
// optional retry-after back-pressure hint. A zero hint produces the
// wire shape old decoders expect; a nonzero hint is appended as a
// trailing word that pre-hint decoders skip.
func EncodeErrorReplyHint(code uint32, detail string, retryAfterMillis uint32) []byte {
	size := 4 + xdr.SizeString(len(detail))
	if retryAfterMillis > 0 {
		size += 4
	}
	return encodePayload(size, func(e *xdr.Encoder) {
		e.PutUint32(code)
		e.PutString(detail)
		if retryAfterMillis > 0 {
			e.PutUint32(retryAfterMillis)
		}
	})
}

// DecodeErrorReply parses an error reply payload. The retry-after hint
// is read only when the sender appended one; its absence (an old peer)
// leaves RetryAfterMillis zero.
func DecodeErrorReply(p []byte) (ErrorReply, error) {
	pd := acquireDecoder(p)
	er := ErrorReply{Code: pd.d.Uint32(), Detail: pd.d.String()}
	if pd.d.Err() == nil && len(p)-int(pd.d.Len()) >= 4 {
		er.RetryAfterMillis = pd.d.Uint32()
	}
	err := pd.d.Err()
	pd.release()
	return er, err
}

// RemoteError is the client-side representation of a MsgError frame.
// RetryAfterMillis, when nonzero, carries the server's back-pressure
// hint from an overload rejection.
type RemoteError struct {
	Code             uint32
	Detail           string
	RetryAfterMillis uint32
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("ninf: remote error %d: %s", e.Code, e.Detail)
}
