package protocol

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"ninf/internal/idl"
	"ninf/internal/xdr"
)

func bytesReader(p []byte) io.Reader { return bytes.NewReader(p) }

// encodePayload runs fn against a pooled buffer's encoder and returns
// a compact copy of the resulting payload. It backs the []byte-
// returning Encode helpers; hot paths use the *Buf variants and skip
// the copy.
func encodePayload(sizeHint int, fn func(e *xdr.Encoder)) []byte {
	fb := AcquireBuffer(sizeHint)
	fn(fb.Encoder())
	p := append([]byte(nil), fb.Payload()...)
	fb.Release()
	return p
}

// payloadDecoder pairs a bytes.Reader with an XDR decoder so decode
// paths reuse both (and the decoder's bulk chunk buffer) across calls.
type payloadDecoder struct {
	br bytes.Reader
	d  xdr.Decoder
}

var decoderPool = sync.Pool{New: func() any { return new(payloadDecoder) }}

// acquireDecoder returns a pooled decoder positioned at the start of p.
func acquireDecoder(p []byte) *payloadDecoder {
	pd := decoderPool.Get().(*payloadDecoder)
	pd.br.Reset(p)
	pd.d.Reset(&pd.br)
	return pd
}

func (pd *payloadDecoder) release() {
	pd.br.Reset(nil)
	decoderPool.Put(pd)
}

// InterfaceRequest is the payload of MsgInterface.
type InterfaceRequest struct {
	Name string
}

// Encode serializes the request.
func (m *InterfaceRequest) Encode() []byte {
	return encodePayload(xdr.SizeString(len(m.Name)), func(e *xdr.Encoder) {
		e.PutString(m.Name)
	})
}

// DecodeInterfaceRequest parses a MsgInterface payload.
func DecodeInterfaceRequest(p []byte) (InterfaceRequest, error) {
	pd := acquireDecoder(p)
	m := InterfaceRequest{Name: pd.d.String()}
	err := pd.d.Err()
	pd.release()
	return m, err
}

// EncodeInterfaceReply serializes the compiled IDL for MsgInterfaceOK.
func EncodeInterfaceReply(info *idl.Info) ([]byte, error) {
	fb := AcquireBuffer(0)
	defer fb.Release()
	if err := idl.Encode(fb, info); err != nil {
		return nil, err
	}
	return append([]byte(nil), fb.Payload()...), nil
}

// DecodeInterfaceReply parses a MsgInterfaceOK payload.
func DecodeInterfaceReply(p []byte) (*idl.Info, error) {
	return idl.Decode(bytesReader(p))
}

// ListReply is the payload of MsgListReply: the registered routine
// names in registration order.
type ListReply struct {
	Names []string
}

// Encode serializes the reply.
func (m *ListReply) Encode() []byte {
	size := 4
	for _, n := range m.Names {
		size += xdr.SizeString(len(n))
	}
	return encodePayload(size, func(e *xdr.Encoder) {
		e.PutUint32(uint32(len(m.Names)))
		for _, n := range m.Names {
			e.PutString(n)
		}
	})
}

// DecodeListReply parses a MsgListReply payload.
func DecodeListReply(p []byte) (ListReply, error) {
	pd := acquireDecoder(p)
	defer pd.release()
	d := &pd.d
	n := int(d.Uint32())
	if err := d.Err(); err != nil {
		return ListReply{}, err
	}
	if n > 1<<20 {
		return ListReply{}, fmt.Errorf("protocol: implausible list length %d", n)
	}
	m := ListReply{Names: make([]string, 0, n)}
	for i := 0; i < n; i++ {
		m.Names = append(m.Names, d.String())
	}
	return m, d.Err()
}

// CallRequest is the payload of MsgCall and MsgSubmit: a routine name
// plus every in-shipping argument, positionally, encoded per the IDL.
// Scalar values that only matter server-side (mode_out) are never
// shipped.
type CallRequest struct {
	Name string
	// Args holds one entry per IDL parameter. Out-only parameters
	// may be nil; in-shipping entries must be concrete values.
	Args []idl.Value
	// Deadline is the caller's absolute deadline in Unix nanoseconds,
	// or zero for no deadline. It rides as an optional magic-tagged
	// trailer after the argument vector: old servers decode the args
	// and ignore the trailer, old clients simply never emit it, so the
	// field is compatible in both directions under v1 and v2 framing.
	Deadline int64
	// Retain asks a cache-enabled server to keep this call's large
	// out/inout results resident in its argument cache after the reply,
	// so a later call on the same server can reference them by digest.
	// It rides as a second magic-tagged trailer after the deadline;
	// pre-cache servers skip it.
	Retain bool
}

// callDeadlineMagic tags the optional deadline trailer on MsgCall and
// MsgSubmit payloads ("NFDL"). A bare trailing 12 bytes without the
// tag is not mistaken for a deadline.
const callDeadlineMagic uint32 = 0x4e46444c

// callRetainMagic tags the optional result-retention trailer ("NFRT"):
// the magic word plus a u32 flag. Encoded after any deadline trailer.
const callRetainMagic uint32 = 0x4e465254

// argSize returns the encoded size in bytes of one argument, used to
// pre-size frame buffers so steady-state calls stay in one size class.
func argSize(p *idl.Param, count int, v idl.Value) int {
	if p.IsScalar() {
		switch p.Type {
		case idl.Int, idl.Double:
			return 8
		case idl.Float:
			return 4
		case idl.String:
			if s, ok := v.(string); ok {
				return xdr.SizeString(len(s))
			}
			return 4
		}
		return 8
	}
	switch p.Type {
	case idl.Int, idl.Double:
		return 4 + 8*count
	case idl.Float:
		return 4 + 4*count
	}
	return 4
}

// EncodeCallRequestBuf serializes a call against its interface into a
// pooled frame buffer sized for the payload. The caller owns the
// buffer and must Release it (normally right after WriteFrameBuf).
func EncodeCallRequestBuf(info *idl.Info, req *CallRequest) (*Buffer, error) {
	return encodeCallRequestBuf(info, req, false, 0)
}

// EncodeSubmitRequestBuf serializes a MsgSubmit payload — the client's
// idempotency key followed by the call request — into a pooled frame
// buffer. The server dedupes re-submissions carrying the same key, so
// a transport-level retry of a delivered-but-unanswered submit is
// answered with the already-admitted job instead of executing twice.
func EncodeSubmitRequestBuf(info *idl.Info, req *CallRequest, key uint64) (*Buffer, error) {
	return encodeCallRequestBuf(info, req, true, key)
}

func encodeCallRequestBuf(info *idl.Info, req *CallRequest, keyed bool, key uint64) (*Buffer, error) {
	if len(req.Args) != len(info.Params) {
		return nil, fmt.Errorf("protocol: %s takes %d arguments, got %d", info.Name, len(info.Params), len(req.Args))
	}
	counts, err := info.DimSizes(req.Args)
	if err != nil {
		return nil, err
	}
	size := xdr.SizeString(len(req.Name))
	if keyed {
		size += 8
	}
	if req.Deadline != 0 {
		size += 12
	}
	if req.Retain {
		size += 8
	}
	for i := range info.Params {
		p := &info.Params[i]
		if p.Mode.Ships(false) {
			size += argSize(p, counts[i], req.Args[i])
		}
	}
	fb := AcquireBuffer(size)
	e := fb.Encoder()
	if keyed {
		e.PutUint64(key)
	}
	e.PutString(req.Name)
	for i := range info.Params {
		p := &info.Params[i]
		if !p.Mode.Ships(false) {
			continue
		}
		if err := encodeArg(e, p, counts[i], req.Args[i]); err != nil {
			fb.Release()
			return nil, fmt.Errorf("protocol: %s argument %q: %w", info.Name, p.Name, err)
		}
	}
	if req.Deadline != 0 {
		e.PutUint32(callDeadlineMagic)
		e.PutInt64(req.Deadline)
	}
	if req.Retain {
		e.PutUint32(callRetainMagic)
		e.PutUint32(1)
	}
	if err := e.Err(); err != nil {
		fb.Release()
		return nil, err
	}
	return fb, nil
}

// EncodeCallRequest serializes a call against its interface, returning
// a caller-owned byte slice. Hot paths should prefer
// EncodeCallRequestBuf, which reuses pooled buffers and avoids the
// copy made here.
func EncodeCallRequest(info *idl.Info, req *CallRequest) ([]byte, error) {
	fb, err := EncodeCallRequestBuf(info, req)
	if err != nil {
		return nil, err
	}
	p := append([]byte(nil), fb.Payload()...)
	fb.Release()
	return p, nil
}

// DecodeCallName peeks only the routine name from a MsgCall payload so
// the server can look up the interface before decoding arguments.
func DecodeCallName(p []byte) (name string, rest []byte, err error) {
	pd := acquireDecoder(p)
	name = pd.d.String()
	n := int(pd.d.Len())
	derr := pd.d.Err()
	pd.release()
	if derr != nil {
		return "", nil, derr
	}
	return name, p[n:], nil
}

// DecodeCallArgs decodes the in-shipping arguments of a call against
// its interface, allocating zeroed values for out-only parameters so
// the executable can fill them. Dimension expressions are evaluated
// left to right as scalars arrive, exactly as Ninf_call's interpreter
// does. Any deadline trailer is skipped; deadline-aware servers use
// DecodeCallArgsDeadline.
func DecodeCallArgs(info *idl.Info, rest []byte) ([]idl.Value, error) {
	args, _, err := DecodeCallArgsDeadline(info, rest)
	return args, err
}

// DecodeCallArgsDeadline is DecodeCallArgs plus the caller deadline
// from the optional trailer: the absolute Unix-nanosecond deadline, or
// zero when the client did not send one (older clients never do).
func DecodeCallArgsDeadline(info *idl.Info, rest []byte) ([]idl.Value, int64, error) {
	return DecodeCallArgsDeadlineBulk(info, rest, nil)
}

// DecodeCallArgsDeadlineBulk is DecodeCallArgsDeadline for a
// reassembled bulk payload: rest must be the head remainder after
// DecodeCallName (sliced to bulk.Head() by the caller) and bulk
// supplies the full payload that marker offsets resolve against. With a
// nil bulk it decodes monolithic payloads and rejects markers.
func DecodeCallArgsDeadlineBulk(info *idl.Info, rest []byte, bulk *BulkInfo) ([]idl.Value, int64, error) {
	return decodeCallArgsExt(info, rest, bulk, nil)
}

// DecodeCallArgsDeadlineRetainBulk is DecodeCallArgsDeadlineBulk plus
// the optional result-retention trailer, stored through retainOut
// (left false when the client sent none).
func DecodeCallArgsDeadlineRetainBulk(info *idl.Info, rest []byte, bulk *BulkInfo, retainOut *bool) ([]idl.Value, int64, error) {
	return decodeCallArgsExt(info, rest, bulk, retainOut)
}

func decodeCallArgsExt(info *idl.Info, rest []byte, bulk *BulkInfo, retainOut *bool) ([]idl.Value, int64, error) {
	pd := acquireDecoder(rest)
	defer pd.release()
	d := &pd.d
	args := make([]idl.Value, len(info.Params))
	// First pass: decode in-shipping values in order. Scalars land in
	// args as they are read so later dims can be evaluated.
	for i := range info.Params {
		p := &info.Params[i]
		if !p.Mode.Ships(false) {
			continue
		}
		count, err := paramCount(info, p, args)
		if err != nil {
			return nil, 0, err
		}
		v, err := decodeArg(d, p, count, bulk)
		if err != nil {
			return nil, 0, fmt.Errorf("protocol: %s argument %q: %w", info.Name, p.Name, err)
		}
		args[i] = v
	}
	// Second pass: allocate out-only parameters.
	for i := range info.Params {
		p := &info.Params[i]
		if p.Mode != idl.Out {
			continue
		}
		count, err := paramCount(info, p, args)
		if err != nil {
			return nil, 0, err
		}
		args[i] = zeroValue(p, count)
	}
	// Optional magic-tagged trailers after the args: the caller
	// deadline ("NFDL", 12 bytes) and the result-retention flag
	// ("NFRT", 8 bytes), in that encode order. Unknown magics end the
	// scan, so future trailers are skipped, not misparsed.
	var deadline int64
	var retain bool
trailers:
	for d.Err() == nil {
		switch rem := len(rest) - int(d.Len()); {
		case rem >= 12:
			switch d.Uint32() {
			case callDeadlineMagic:
				deadline = d.Int64()
			case callRetainMagic:
				retain = d.Uint32() != 0
			default:
				break trailers
			}
		case rem >= 8:
			if d.Uint32() != callRetainMagic {
				break trailers
			}
			retain = d.Uint32() != 0
		default:
			break trailers
		}
	}
	if err := d.Err(); err != nil {
		return nil, 0, err
	}
	if retainOut != nil {
		*retainOut = retain
	}
	return args, deadline, nil
}

// EncodeCallReplyBuf serializes a MsgCallOK payload — server-side
// timings followed by the out-shipping arguments — into a pooled frame
// buffer. The caller owns the buffer and must Release it.
func EncodeCallReplyBuf(info *idl.Info, t Timings, args []idl.Value) (*Buffer, error) {
	counts, err := info.DimSizes(args)
	if err != nil {
		return nil, err
	}
	size := 24 // three int64 timings
	for i := range info.Params {
		p := &info.Params[i]
		if p.Mode.Ships(true) {
			size += argSize(p, counts[i], args[i])
		}
	}
	fb := AcquireBuffer(size)
	e := fb.Encoder()
	t.encode(e)
	for i := range info.Params {
		p := &info.Params[i]
		if !p.Mode.Ships(true) {
			continue
		}
		if err := encodeArg(e, p, counts[i], args[i]); err != nil {
			fb.Release()
			return nil, fmt.Errorf("protocol: %s result %q: %w", info.Name, p.Name, err)
		}
	}
	if err := e.Err(); err != nil {
		fb.Release()
		return nil, err
	}
	return fb, nil
}

// EncodeCallReply serializes a MsgCallOK payload into a caller-owned
// byte slice; the server's blocking-call path uses EncodeCallReplyBuf
// instead and recycles the buffer after the write.
func EncodeCallReply(info *idl.Info, t Timings, args []idl.Value) ([]byte, error) {
	fb, err := EncodeCallReplyBuf(info, t, args)
	if err != nil {
		return nil, err
	}
	p := append([]byte(nil), fb.Payload()...)
	fb.Release()
	return p, nil
}

// DecodeCallReply decodes a MsgCallOK payload. The returned slice has
// one entry per parameter: out-shipping entries hold decoded values,
// others are nil. callArgs supplies the scalar inputs needed to size
// the out arrays.
func DecodeCallReply(info *idl.Info, callArgs []idl.Value, p []byte) (Timings, []idl.Value, error) {
	return DecodeCallReplyBulk(info, callArgs, p, nil)
}

// Timings carries the server-side timestamps the paper instruments
// (§4.1): when the call was accepted (enqueue), when the executable
// was invoked (dequeue), and when it completed. Times are nanoseconds
// on the server clock.
type Timings struct {
	Enqueue  int64
	Dequeue  int64
	Complete int64
}

func (t *Timings) encode(e *xdr.Encoder) {
	e.PutInt64(t.Enqueue)
	e.PutInt64(t.Dequeue)
	e.PutInt64(t.Complete)
}

func (t *Timings) decode(d *xdr.Decoder) {
	t.Enqueue = d.Int64()
	t.Dequeue = d.Int64()
	t.Complete = d.Int64()
}

// DecodeSubmitKey splits a MsgSubmit payload into the client's
// idempotency key and the embedded call request (the MsgCall-shaped
// remainder). A zero key means the submitter opted out of dedupe.
func DecodeSubmitKey(p []byte) (uint64, []byte, error) {
	pd := acquireDecoder(p)
	key := pd.d.Uint64()
	err := pd.d.Err()
	pd.release()
	if err != nil {
		return 0, nil, fmt.Errorf("protocol: submit payload lacks idempotency key: %w", err)
	}
	return key, p[8:], nil
}

// SubmitReply is the payload of MsgSubmitOK: a handle for the second
// phase.
type SubmitReply struct {
	JobID uint64
}

// Encode serializes the reply.
func (m *SubmitReply) Encode() []byte {
	return encodePayload(8, func(e *xdr.Encoder) { e.PutUint64(m.JobID) })
}

// DecodeSubmitReply parses a MsgSubmitOK payload.
func DecodeSubmitReply(p []byte) (SubmitReply, error) {
	pd := acquireDecoder(p)
	m := SubmitReply{JobID: pd.d.Uint64()}
	err := pd.d.Err()
	pd.release()
	return m, err
}

// FetchRequest is the payload of MsgFetch.
type FetchRequest struct {
	JobID uint64
	// Wait asks the server to block until the job finishes rather
	// than reply CodeNotReady immediately.
	Wait bool
}

// Encode serializes the request.
func (m *FetchRequest) Encode() []byte {
	return encodePayload(12, func(e *xdr.Encoder) {
		e.PutUint64(m.JobID)
		e.PutBool(m.Wait)
	})
}

// EncodeBuf serializes the request into a pooled frame buffer.
func (m *FetchRequest) EncodeBuf() *Buffer {
	fb := AcquireBuffer(12)
	e := fb.Encoder()
	e.PutUint64(m.JobID)
	e.PutBool(m.Wait)
	return fb
}

// DecodeFetchRequest parses a MsgFetch payload.
func DecodeFetchRequest(p []byte) (FetchRequest, error) {
	pd := acquireDecoder(p)
	m := FetchRequest{JobID: pd.d.Uint64(), Wait: pd.d.Bool()}
	err := pd.d.Err()
	pd.release()
	return m, err
}

// Stats is the payload of MsgStatsOK: the server self-report the
// metaserver polls for scheduling (§2.4).
type Stats struct {
	Hostname    string
	PEs         int64
	Running     int64
	Queued      int64
	TotalCalls  int64
	LoadAverage float64 // 1-minute style load average
	CPUUtil     float64 // fraction 0..1 since last probe window
	// Draining reports that the server is in graceful shutdown:
	// finishing queued work but rejecting new calls. It rides as an
	// optional trailing word — old pollers ignore it, old servers
	// never send it (leaving it false).
	Draining bool
	// Argument-cache counters (level-4 servers), riding as a second
	// optional trailer after Draining. All zero on cache-less servers;
	// old pollers ignore them, old servers never send them. The
	// metaserver gossips them with the rest of the snapshot, so every
	// replica sees which servers run warm caches.
	CacheHits        int64
	CacheMisses      int64
	CacheEvictions   int64
	CachePinnedBytes int64
	CacheUsedBytes   int64
	CacheBudget      int64
	// Epoch is the server's incarnation epoch (crash-recovery journal
	// servers mint a new one per start; see internal/server/journal).
	// It rides as a third optional trailer after the cache counters and
	// is omitted when zero, so journal-less servers keep today's byte
	// stream exactly. A changed epoch tells pollers the server
	// restarted and its volatile state (cache, breakers' evidence,
	// un-journaled jobs) is gone.
	Epoch uint64
}

// Encode serializes the stats.
func (m *Stats) Encode() []byte {
	return encodePayload(xdr.SizeString(len(m.Hostname))+108, func(e *xdr.Encoder) {
		e.PutString(m.Hostname)
		e.PutInt64(m.PEs)
		e.PutInt64(m.Running)
		e.PutInt64(m.Queued)
		e.PutInt64(m.TotalCalls)
		e.PutFloat64(m.LoadAverage)
		e.PutFloat64(m.CPUUtil)
		e.PutBool(m.Draining)
		e.PutInt64(m.CacheHits)
		e.PutInt64(m.CacheMisses)
		e.PutInt64(m.CacheEvictions)
		e.PutInt64(m.CachePinnedBytes)
		e.PutInt64(m.CacheUsedBytes)
		e.PutInt64(m.CacheBudget)
		if m.Epoch != 0 {
			e.PutUint64(m.Epoch)
		}
	})
}

// DecodeStats parses a MsgStatsOK payload.
func DecodeStats(p []byte) (Stats, error) {
	pd := acquireDecoder(p)
	d := &pd.d
	m := Stats{
		Hostname:    d.String(),
		PEs:         d.Int64(),
		Running:     d.Int64(),
		Queued:      d.Int64(),
		TotalCalls:  d.Int64(),
		LoadAverage: d.Float64(),
		CPUUtil:     d.Float64(),
	}
	if d.Err() == nil && len(p)-int(d.Len()) >= 4 {
		m.Draining = d.Bool()
	}
	if d.Err() == nil && len(p)-int(d.Len()) >= 48 {
		m.CacheHits = d.Int64()
		m.CacheMisses = d.Int64()
		m.CacheEvictions = d.Int64()
		m.CachePinnedBytes = d.Int64()
		m.CacheUsedBytes = d.Int64()
		m.CacheBudget = d.Int64()
	}
	if d.Err() == nil && len(p)-int(d.Len()) >= 8 {
		m.Epoch = d.Uint64()
	}
	err := d.Err()
	pd.release()
	return m, err
}

// envPool recycles the per-decode expression environments, mirroring
// the pool idl keeps for the encode side.
var envPool = sync.Pool{New: func() any { return make(map[string]int64, 8) }}

// paramCount evaluates one parameter's element count against the
// scalar arguments decoded so far.
func paramCount(info *idl.Info, p *idl.Param, args []idl.Value) (int, error) {
	count := 1
	env := scalarEnvSoFar(info, args)
	defer func() {
		clear(env)
		envPool.Put(env)
	}()
	for _, dim := range p.Dims {
		n, err := dim.Eval(env)
		if err != nil {
			return 0, fmt.Errorf("protocol: %s dimension of %q: %w", info.Name, p.Name, err)
		}
		if n < 0 {
			return 0, fmt.Errorf("protocol: %s dimension of %q is negative", info.Name, p.Name)
		}
		count *= int(n)
	}
	return count, nil
}

func scalarEnvSoFar(info *idl.Info, args []idl.Value) map[string]int64 {
	env := envPool.Get().(map[string]int64)
	for i := range info.Params {
		p := &info.Params[i]
		if !p.IsScalar() || p.Type != idl.Int {
			continue
		}
		switch v := args[i].(type) {
		case int64:
			env[p.Name] = v
		case int:
			env[p.Name] = int64(v)
		}
	}
	return env
}

// zeroValue allocates the zero value for an out-only parameter.
func zeroValue(p *idl.Param, count int) idl.Value {
	if p.IsScalar() {
		switch p.Type {
		case idl.Int:
			return int64(0)
		case idl.Double:
			return float64(0)
		case idl.Float:
			return float32(0)
		case idl.String:
			return ""
		}
	}
	switch p.Type {
	case idl.Int:
		return make([]int64, count)
	case idl.Double:
		return make([]float64, count)
	case idl.Float:
		return make([]float32, count)
	}
	return nil
}

// encodeArg writes one argument value per its IDL parameter.
func encodeArg(e *xdr.Encoder, p *idl.Param, count int, v idl.Value) error {
	if p.IsScalar() {
		switch p.Type {
		case idl.Int:
			switch x := v.(type) {
			case int64:
				e.PutInt64(x)
			case int:
				e.PutInt64(int64(x))
			default:
				return fmt.Errorf("want int, got %T", v)
			}
		case idl.Double:
			x, ok := v.(float64)
			if !ok {
				return fmt.Errorf("want float64, got %T", v)
			}
			e.PutFloat64(x)
		case idl.Float:
			switch x := v.(type) {
			case float32:
				e.PutFloat32(x)
			case float64:
				e.PutFloat32(float32(x))
			default:
				return fmt.Errorf("want float32, got %T", v)
			}
		case idl.String:
			x, ok := v.(string)
			if !ok {
				return fmt.Errorf("want string, got %T", v)
			}
			e.PutString(x)
		}
		return e.Err()
	}
	switch p.Type {
	case idl.Int:
		x, ok := v.([]int64)
		if !ok {
			return fmt.Errorf("want []int64, got %T", v)
		}
		if len(x) != count {
			return fmt.Errorf("array length %d, IDL dimensions give %d", len(x), count)
		}
		e.PutInt64s(x)
	case idl.Double:
		x, ok := v.([]float64)
		if !ok {
			return fmt.Errorf("want []float64, got %T", v)
		}
		if len(x) != count {
			return fmt.Errorf("array length %d, IDL dimensions give %d", len(x), count)
		}
		e.PutFloat64s(x)
	case idl.Float:
		x, ok := v.([]float32)
		if !ok {
			return fmt.Errorf("want []float32, got %T", v)
		}
		if len(x) != count {
			return fmt.Errorf("array length %d, IDL dimensions give %d", len(x), count)
		}
		e.PutFloat32s(x)
	default:
		return fmt.Errorf("unsupported array type %v", p.Type)
	}
	return e.Err()
}

// decodeArg reads one argument value per its IDL parameter. A non-nil
// bulk switches arrays to bulk-mode decoding, where a marker word may
// divert the element bytes to a segment of the reassembled payload.
func decodeArg(d *xdr.Decoder, p *idl.Param, count int, bulk *BulkInfo) (idl.Value, error) {
	if p.IsScalar() {
		switch p.Type {
		case idl.Int:
			return d.Int64(), d.Err()
		case idl.Double:
			return d.Float64(), d.Err()
		case idl.Float:
			return d.Float32(), d.Err()
		case idl.String:
			return d.String(), d.Err()
		}
		return nil, fmt.Errorf("unsupported scalar type %v", p.Type)
	}
	if bulk != nil {
		//lint:ninflint xdrsym — asymmetric by design: the matching marker is written by putBulkMarker in the chunked encoders, not by encodeArg
		return decodeBulkArray(d, p, count, bulk)
	}
	switch p.Type {
	case idl.Int:
		v := d.Int64s()
		if d.Err() == nil && len(v) != count {
			return nil, fmt.Errorf("array length %d, IDL dimensions give %d", len(v), count)
		}
		return v, d.Err()
	case idl.Double:
		v := d.Float64s()
		if d.Err() == nil && len(v) != count {
			return nil, fmt.Errorf("array length %d, IDL dimensions give %d", len(v), count)
		}
		return v, d.Err()
	case idl.Float:
		v := d.Float32s()
		if d.Err() == nil && len(v) != count {
			return nil, fmt.Errorf("array length %d, IDL dimensions give %d", len(v), count)
		}
		return v, d.Err()
	default:
		return nil, fmt.Errorf("unsupported array type %v", p.Type)
	}
}
