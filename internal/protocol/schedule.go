package protocol

import "ninf/internal/xdr"

// Scheduling frames, spoken between clients and the metaserver daemon
// (§2.4). They extend the base protocol: a metaserver answers MsgPing
// and MsgStats like a computational server, plus MsgSchedule.
const (
	// MsgSchedule asks the metaserver to place one Ninf_call.
	MsgSchedule MsgType = iota + 64
	// MsgScheduleOK carries the chosen server.
	MsgScheduleOK
	// MsgObserve reports a completed (or failed) call back to the
	// metaserver so it can track achievable bandwidth per client,
	// the quantity §4.2.3 shows must drive WAN placement.
	MsgObserve
	// MsgObserveOK acknowledges an observation.
	MsgObserveOK
)

// ScheduleRequest describes a pending call for placement. Byte counts
// are the client's own estimate from its argument sizes; Ops is the
// IDL-declared complexity when the client knows it, else 0.
type ScheduleRequest struct {
	Routine  string
	InBytes  int64
	OutBytes int64
	Ops      int64
	// Exclude lists server names the client wants avoided, used for
	// fault-tolerant retry on a different server.
	Exclude []string
	// Affinity names the server whose argument cache is warm for this
	// call (a transaction dependency's executing server), so placement
	// can bind downstream calls to the data. It rides as an optional
	// trailer after Exclude — old daemons ignore it, old clients never
	// send it. Advisory: an ineligible affinity server is skipped.
	Affinity string
}

// Encode serializes the request.
func (m *ScheduleRequest) Encode() []byte {
	size := xdr.SizeString(len(m.Routine)) + 28
	if m.Affinity != "" {
		size += xdr.SizeString(len(m.Affinity))
	}
	return encodePayload(size, func(e *xdr.Encoder) {
		e.PutString(m.Routine)
		e.PutInt64(m.InBytes)
		e.PutInt64(m.OutBytes)
		e.PutInt64(m.Ops)
		e.PutUint32(uint32(len(m.Exclude)))
		for i := range m.Exclude {
			e.PutString(m.Exclude[i])
		}
		if m.Affinity != "" {
			e.PutString(m.Affinity)
		}
	})
}

// DecodeScheduleRequest parses a MsgSchedule payload.
func DecodeScheduleRequest(p []byte) (ScheduleRequest, error) {
	pd := acquireDecoder(p)
	defer pd.release()
	d := &pd.d
	m := ScheduleRequest{
		Routine:  d.String(),
		InBytes:  d.Int64(),
		OutBytes: d.Int64(),
		Ops:      d.Int64(),
	}
	n := int(d.Uint32())
	if err := d.Err(); err != nil {
		return m, err
	}
	for i := 0; i < n && i < 1024; i++ {
		m.Exclude = append(m.Exclude, d.String())
	}
	if d.Err() == nil && len(p)-int(d.Len()) >= 4 {
		m.Affinity = d.String()
	}
	return m, d.Err()
}

// ScheduleReply names the chosen server and its dial address.
type ScheduleReply struct {
	Name string
	Addr string
}

// Encode serializes the reply.
func (m *ScheduleReply) Encode() []byte {
	return encodePayload(xdr.SizeString(len(m.Name))+xdr.SizeString(len(m.Addr)), func(e *xdr.Encoder) {
		e.PutString(m.Name)
		e.PutString(m.Addr)
	})
}

// DecodeScheduleReply parses a MsgScheduleOK payload.
func DecodeScheduleReply(p []byte) (ScheduleReply, error) {
	pd := acquireDecoder(p)
	m := ScheduleReply{Name: pd.d.String(), Addr: pd.d.String()}
	err := pd.d.Err()
	pd.release()
	return m, err
}

// ObserveRequest feeds a completed call back to the metaserver. The
// overload fields ride as an optional trailer so old daemons and old
// clients interoperate: Overloaded distinguishes back-pressure (the
// server answered, but rejected for load) from genuine failure, and
// RetryAfterMillis relays the server's hint so the metaserver can size
// its placement-penalty window.
type ObserveRequest struct {
	Name             string // server the call ran on
	Bytes            int64  // payload bytes both ways
	Nanos            int64  // wall-clock duration
	Failed           bool   // the call errored (server suspect)
	Overloaded       bool   // the failure was an overload rejection
	RetryAfterMillis uint32 // server's back-pressure hint, 0 if none
	// Origin and Seq, a second optional trailer, make the report
	// idempotent: a client that resends an unacknowledged observation
	// to another replica after a metaserver failover stamps both sends
	// identically, so the replica set counts the outcome once, not per
	// delivery. Zero Origin means a legacy (pre-HA) client.
	Origin string
	Seq    uint64
}

// Encode serializes the observation.
func (m *ObserveRequest) Encode() []byte {
	return encodePayload(xdr.SizeString(len(m.Name))+xdr.SizeString(len(m.Origin))+36, func(e *xdr.Encoder) {
		e.PutString(m.Name)
		e.PutInt64(m.Bytes)
		e.PutInt64(m.Nanos)
		e.PutBool(m.Failed)
		e.PutBool(m.Overloaded)
		e.PutUint32(m.RetryAfterMillis)
		e.PutString(m.Origin)
		e.PutUint64(m.Seq)
	})
}

// DecodeObserveRequest parses a MsgObserve payload.
func DecodeObserveRequest(p []byte) (ObserveRequest, error) {
	pd := acquireDecoder(p)
	d := &pd.d
	m := ObserveRequest{
		Name:   d.String(),
		Bytes:  d.Int64(),
		Nanos:  d.Int64(),
		Failed: d.Bool(),
	}
	if d.Err() == nil && len(p)-int(d.Len()) >= 8 {
		m.Overloaded = d.Bool()
		m.RetryAfterMillis = d.Uint32()
	}
	if d.Err() == nil && len(p)-int(d.Len()) >= 12 {
		m.Origin = d.String()
		m.Seq = d.Uint64()
	}
	err := d.Err()
	pd.release()
	return m, err
}
