package protocol

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"ninf/internal/idl"
)

// TestReleaseDoubleCall verifies Release is idempotent: the second and
// later calls are no-ops and do not corrupt the pool by inserting the
// same buffer twice.
func TestReleaseDoubleCall(t *testing.T) {
	fb := AcquireBuffer(64)
	fb.Write([]byte("payload"))
	fb.Release()
	fb.Release() // must be a no-op
	fb.Release()

	// If the double release had re-pooled fb, two successive acquires
	// from its size class could return the same *Buffer.
	a := AcquireBuffer(64)
	b := AcquireBuffer(64)
	if a == b {
		t.Fatal("double Release put the same buffer into the pool twice")
	}
	a.Release()
	b.Release()
}

// TestReleaseNil verifies the nil no-op contract cleanup paths rely on.
func TestReleaseNil(t *testing.T) {
	var fb *Buffer
	fb.Release() // must not panic
}

// TestReleaseResetsState verifies a recycled buffer comes back empty
// rather than carrying the previous frame's payload.
func TestReleaseResetsState(t *testing.T) {
	fb := AcquireBuffer(32)
	fb.Write([]byte("stale payload bytes"))
	fb.Release()

	got := AcquireBuffer(32)
	defer got.Release()
	if got.Len() != 0 {
		t.Fatalf("recycled buffer Len() = %d, want 0", got.Len())
	}
	if len(got.Payload()) != 0 {
		t.Fatalf("recycled buffer Payload() = %q, want empty", got.Payload())
	}
}

// TestReadFrameBufErrorReleases verifies the error paths of
// ReadFrameBuf: a truncated payload must release the pooled buffer
// internally and report the error, handing the caller nothing to
// release (and making a caller-side defensive Release harmless).
func TestReadFrameBufErrorReleases(t *testing.T) {
	var good bytes.Buffer
	src := AcquireBuffer(8)
	src.Write([]byte("12345678"))
	if err := WriteFrameBuf(&good, MsgPing, src); err != nil {
		t.Fatal(err)
	}
	src.Release()

	// Truncate mid-payload: header promises 8 bytes, stream has 3.
	truncated := good.Bytes()[:headerSize+3]
	typ, fb, err := ReadFrameBuf(strings.NewReader(string(truncated)), 0)
	if err == nil {
		t.Fatal("want error for truncated payload")
	}
	if fb != nil {
		t.Fatalf("want nil buffer on error, got %v (type %v)", fb, typ)
	}
	fb.Release() // the documented nil no-op: defensive cleanup is safe

	// The buffer released inside ReadFrameBuf must be reusable.
	again := AcquireBuffer(8)
	if again.Len() != 0 {
		t.Fatalf("buffer recycled from failed read has Len() = %d, want 0", again.Len())
	}
	again.Release()
}

// TestReadFrameBufHeaderErrors verifies no buffer is acquired (so none
// can leak) when the header itself is unusable.
func TestReadFrameBufHeaderErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, io.EOF},
		{"short header", []byte{0x4e, 0x49}, nil},
		{"bad magic", make([]byte, headerSize), ErrBadMagic},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, fb, err := ReadFrameBuf(bytes.NewReader(tc.data), 0)
			defer fb.Release() // nil no-op; keeps a failed assertion from leaking a buffer
			if err == nil {
				t.Fatal("want error")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if fb != nil {
				t.Fatal("want nil buffer on header error")
			}
		})
	}
}

// TestEncodeErrorPathReleases verifies the encode helpers release their
// pooled buffer on the error path instead of leaking it, by exercising
// an encode that fails after acquisition.
func TestEncodeErrorPathReleases(t *testing.T) {
	info := dmmulInfo(t)
	// Wrong argument type for the routine: encodeArg fails after the
	// buffer is acquired, so EncodeCallRequestBuf must clean up.
	req := &CallRequest{Name: "dmmul",
		Args: []idl.Value{"three", make([]float64, 9), make([]float64, 9), nil}}
	if _, err := EncodeCallRequest(info, req); err == nil {
		t.Fatal("want encode error for mistyped argument")
	}
	// The released buffer must come back clean.
	fb := AcquireBuffer(0)
	defer fb.Release()
	if fb.Len() != 0 {
		t.Fatalf("buffer recycled from failed encode has Len() = %d, want 0", fb.Len())
	}
}
