package protocol

import (
	"fmt"

	"ninf/internal/xdr"
)

// Journal records are the wire-independent encoding of the server's
// crash-recovery write-ahead log (internal/server/journal). Each record
// describes one transition in a two-phase job's life: admitted
// (JournalSubmit), finished (JournalComplete), delivered or expired
// (JournalFetched). Replaying the surviving records after a crash
// reconstructs exactly the jobs a client could still legitimately ask
// about — queued work re-executes, completed-but-unfetched results are
// re-served under their original job IDs and idempotency keys, and
// everything already delivered stays gone.
//
// The codec lives here rather than in the journal package because the
// payloads it wraps are protocol payloads (a plain-encoded call
// request, a pre-encoded MsgFetchOK reply), and because the framing
// fuzz targets for every other on-the-wire decoder already live in
// this package.

// JournalKind discriminates journal records.
type JournalKind uint32

// Journal record kinds.
const (
	// JournalSubmit records an admitted two-phase job: its server job
	// ID, the client's idempotency key, the fair-queueing client tag,
	// and the call request re-encoded in plain (digest-free, monolithic)
	// form so replay can decode it against an empty argument cache.
	JournalSubmit JournalKind = 1
	// JournalComplete records a finished job: the pre-encoded
	// MsgFetchOK reply when the result fit the journal's size cap (an
	// empty payload means it did not, and replay re-executes the job),
	// or the terminal error code and detail when execution failed.
	JournalComplete JournalKind = 2
	// JournalFetched records that the job's result was delivered to the
	// client (or expired); replay drops the job entirely.
	JournalFetched JournalKind = 3
)

// JournalRecord is one entry in the submit journal.
type JournalRecord struct {
	Kind  JournalKind
	JobID uint64
	// Key is the submit idempotency key (JournalSubmit; 0 = none).
	Key uint64
	// Client is the admitting connection's fair-queueing identity
	// (JournalSubmit). Restored so per-client accounting survives
	// replay.
	Client string
	// ErrCode and ErrDetail record a failed execution
	// (JournalComplete); ErrCode 0 means success.
	ErrCode   uint32
	ErrDetail string
	// Payload is kind-dependent: the plain call-request bytes
	// (JournalSubmit) or the pre-encoded reply (JournalComplete).
	Payload []byte
}

// Encode serializes the record.
func (r *JournalRecord) Encode() []byte {
	size := 4 + 8 + 8 + xdr.SizeString(len(r.Client)) + 4 +
		xdr.SizeString(len(r.ErrDetail)) + 4 + len(r.Payload) + 3
	return encodePayload(size, func(e *xdr.Encoder) {
		e.PutUint32(uint32(r.Kind))
		e.PutUint64(r.JobID)
		e.PutUint64(r.Key)
		e.PutString(r.Client)
		e.PutUint32(r.ErrCode)
		e.PutString(r.ErrDetail)
		e.PutOpaque(r.Payload)
	})
}

// DecodeJournalRecord parses one journal record body. The returned
// record owns its byte slices (nothing aliases p).
func DecodeJournalRecord(p []byte) (JournalRecord, error) {
	pd := acquireDecoder(p)
	d := &pd.d
	r := JournalRecord{
		Kind:  JournalKind(d.Uint32()),
		JobID: d.Uint64(),
		Key:   d.Uint64(),
	}
	r.Client = d.String()
	r.ErrCode = d.Uint32()
	r.ErrDetail = d.String()
	r.Payload = d.Opaque()
	err := d.Err()
	pd.release()
	if err != nil {
		return JournalRecord{}, err
	}
	switch r.Kind {
	case JournalSubmit, JournalComplete, JournalFetched:
	default:
		return JournalRecord{}, fmt.Errorf("protocol: unknown journal record kind %d", r.Kind)
	}
	if r.JobID == 0 {
		return JournalRecord{}, fmt.Errorf("protocol: journal record without job ID")
	}
	return r, nil
}
