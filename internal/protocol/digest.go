package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ninf/internal/idl"
	"ninf/internal/xdr"
)

// Content-addressed argument references (feature level 4). A repeated
// WAN workload re-ships the same matrices on every Ninf_call, so on the
// paper's 0.17 MB/s Ocha-U↔ETL link throughput is the link, not the
// server. Level 4 lets a call name a large argument by the digest of
// its element bytes instead of carrying the bytes: the server resolves
// the digest from its byte-budgeted argument cache, and only cache
// misses stream over the level-3 chunked bulk machinery. The digest is
// defined over the array's little-endian element bytes (the dominant
// host order, hashed zero-copy via the rawvec views) with the length
// folded in, so the same values always produce the same digest on both
// ends regardless of which host hashed them.
//
// None of these frames, markers or trailers appear on the wire unless
// both peers negotiated feature level ≥ 4 AND the server advertised an
// enabled cache in its HelloReply flags; below that the byte stream is
// bit-identical to a level-3 (or level-2, or v1) conversation.

// Cache frame types (v2 framing, level ≥ 4 only).
const (
	// MsgCallDigest asks which of a list of digests are warm in the
	// server's argument cache; reply is MsgDigestStatus.
	MsgCallDigest MsgType = iota + 140
	// MsgDigestStatus answers MsgCallDigest with per-digest warmth.
	MsgDigestStatus
	// MsgDataHandle fetches a cached value by digest — the persistent
	// remote data handle; reply is MsgDataHandleOK (or MsgError with
	// CodeCacheMiss).
	MsgDataHandle
	// MsgDataHandleOK carries the digest echo and the entry's
	// little-endian element bytes.
	MsgDataHandleOK
)

// A Digest is the 128-bit content hash of an array argument's
// little-endian element bytes. It is a fast non-cryptographic hash:
// collision resistance against adversaries is not a goal (the cache
// verifies full digests on its short-key buckets, and the server
// recomputes digests on insert rather than trusting the sender).
type Digest struct {
	Hi, Lo uint64
}

// IsZero reports the zero digest, which never names a cache entry.
func (d Digest) IsZero() bool { return d.Hi == 0 && d.Lo == 0 }

func (d Digest) String() string { return fmt.Sprintf("%016x%016x", d.Hi, d.Lo) }

// ErrDigestMiss reports a digest reference whose cache entry is absent;
// the server maps it to CodeCacheMiss without executing the call.
var ErrDigestMiss = errors.New("protocol: digest not in cache")

// A DigestResolver supplies the bytes behind digest markers and retains
// uploaded segments. Implemented by the server's per-call cache view;
// nil on every pre-cache decode path.
type DigestResolver interface {
	// ResolveDigest returns the cached little-endian element bytes for
	// d, or false on a miss. A successful resolve pins the entry until
	// the call completes, so eviction cannot yank an operand mid-call.
	ResolveDigest(d Digest) ([]byte, bool)
	// RetainSegment offers a received bulk segment (in sender byte
	// order le, elem bytes per element) for caching. Implementations
	// copy; seg aliases the reassembly buffer.
	RetainSegment(seg []byte, le bool, elem int)
}

// digestMix is the splitmix64 finalizer, the mixing core of the hash.
func digestMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const (
	digestK1 = 0x9e3779b97f4a7c15 // golden-ratio seed for the mixed lane
	digestK2 = 0xc2b2ae3d27d4eb4f // seed for the multiplicative lane
	digestK3 = 0x165667b19e3779f9 // per-word multiplier
)

// DigestBytesLE hashes element bytes already in little-endian order:
// one mixed lane and one multiplicative lane per 8-byte word, length
// folded into both seeds, a zero-padded tail, and a cross-mix
// finalizer. Word-at-a-time keeps it in the GB/s range without copies.
func DigestBytesLE(b []byte) Digest {
	h1 := uint64(digestK1) ^ uint64(len(b))
	h2 := uint64(digestK2) + uint64(len(b))*digestK3
	i := 0
	for ; i+8 <= len(b); i += 8 {
		w := binary.LittleEndian.Uint64(b[i:])
		h1 = digestMix(h1 ^ w)
		h2 = h2*digestK3 + w
	}
	if i < len(b) {
		var tail [8]byte
		copy(tail[:], b[i:])
		w := binary.LittleEndian.Uint64(tail[:])
		h1 = digestMix(h1 ^ w)
		h2 = h2*digestK3 + w
	}
	h2 = digestMix(h2 ^ h1)
	h1 = digestMix(h1 + h2)
	return Digest{Hi: h1, Lo: h2}
}

// DigestFloat64s hashes a []float64's little-endian element bytes,
// zero-copy on little-endian hosts.
func DigestFloat64s(v []float64) Digest {
	if hostLittle {
		return DigestBytesLE(f64Bytes(v))
	}
	buf := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
	}
	return DigestBytesLE(buf)
}

// DigestFloat32s hashes a []float32's little-endian element bytes.
func DigestFloat32s(v []float32) Digest {
	if hostLittle {
		return DigestBytesLE(f32Bytes(v))
	}
	buf := make([]byte, len(v)*4)
	for i, x := range v {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(x))
	}
	return DigestBytesLE(buf)
}

// DigestInt64s hashes a []int64's little-endian element bytes.
func DigestInt64s(v []int64) Digest {
	if hostLittle {
		return DigestBytesLE(i64Bytes(v))
	}
	buf := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(x))
	}
	return DigestBytesLE(buf)
}

// DigestValue hashes a bulk-capable array value; false for anything
// that cannot ride as a bulk segment.
func DigestValue(v idl.Value) (Digest, bool) {
	switch x := v.(type) {
	case []float64:
		return DigestFloat64s(x), true
	case []float32:
		return DigestFloat32s(x), true
	case []int64:
		return DigestInt64s(x), true
	default:
		return Digest{}, false
	}
}

// ValueLEBytes returns a bulk-capable array value's elements as
// little-endian bytes, zero-copy on little-endian hosts (the result
// then aliases v's backing array — callers must not mutate v while the
// bytes are retained). false for anything that cannot ride as a bulk
// segment.
func ValueLEBytes(v idl.Value) ([]byte, bool) {
	switch x := v.(type) {
	case []float64:
		if hostLittle {
			return f64Bytes(x), true
		}
		buf := make([]byte, len(x)*8)
		for i, f := range x {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(f))
		}
		return buf, true
	case []float32:
		if hostLittle {
			return f32Bytes(x), true
		}
		buf := make([]byte, len(x)*4)
		for i, f := range x {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(f))
		}
		return buf, true
	case []int64:
		if hostLittle {
			return i64Bytes(x), true
		}
		buf := make([]byte, len(x)*8)
		for i, n := range x {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(n))
		}
		return buf, true
	default:
		return nil, false
	}
}

// NormalizeSegmentLE returns seg's bytes in little-endian element
// order, copying into a fresh slice (seg usually aliases a transient
// reassembly buffer). elem is the element width in bytes.
func NormalizeSegmentLE(seg []byte, le bool, elem int) []byte {
	out := make([]byte, len(seg))
	if le {
		copy(out, seg)
		return out
	}
	switch elem {
	case 4:
		for i := 0; i+4 <= len(seg); i += 4 {
			binary.LittleEndian.PutUint32(out[i:], binary.BigEndian.Uint32(seg[i:]))
		}
	default:
		for i := 0; i+8 <= len(seg); i += 8 {
			binary.LittleEndian.PutUint64(out[i:], binary.BigEndian.Uint64(seg[i:]))
		}
	}
	return out
}

// CallRequestDigests computes the digests of the call's bulk-eligible
// arguments (encoded size ≥ threshold) in parameter order — the same
// traversal EncodeCallRequestDigest uses, so the returned list feeds
// straight back into it without hashing twice. Empty when nothing is
// bulk-eligible.
func CallRequestDigests(info *idl.Info, req *CallRequest, threshold int) ([]Digest, error) {
	if threshold <= 0 {
		return nil, nil
	}
	if len(req.Args) != len(info.Params) {
		return nil, fmt.Errorf("protocol: %s takes %d arguments, got %d", info.Name, len(info.Params), len(req.Args))
	}
	var digs []Digest
	for i := range info.Params {
		p := &info.Params[i]
		if !p.Mode.Ships(false) {
			continue
		}
		if s := bulkSpanFor(p, req.Args[i]); len(s) >= threshold {
			d, ok := DigestValue(req.Args[i])
			if !ok {
				return nil, fmt.Errorf("protocol: %s argument %q: not digestible", info.Name, p.Name)
			}
			digs = append(digs, d)
		}
	}
	return digs, nil
}

// EncodeCallRequestDigest serializes a level-4 call: bulk-eligible
// arguments whose digest the server already holds (warm) become digest
// markers carrying no bytes; cold ones ride as level-3 zero-copy bulk
// segments; everything else is normal XDR. digs must come from
// CallRequestDigests for the same request and threshold. Exactly one of
// the two returns is non-nil: a *BulkMsg when at least one cold segment
// must stream, else a monolithic *Buffer (possibly containing digest
// markers, which the server resolves via a synthesized BulkInfo).
func EncodeCallRequestDigest(info *idl.Info, req *CallRequest, keyed bool, key uint64, threshold int, digs []Digest, warm func(Digest) bool) (*BulkMsg, *Buffer, error) {
	if len(req.Args) != len(info.Params) {
		return nil, nil, fmt.Errorf("protocol: %s takes %d arguments, got %d", info.Name, len(info.Params), len(req.Args))
	}
	counts, err := info.DimSizes(req.Args)
	if err != nil {
		return nil, nil, err
	}
	size := xdr.SizeString(len(req.Name))
	if keyed {
		size += 8
	}
	if req.Deadline != 0 {
		size += 12
	}
	if req.Retain {
		size += 8
	}
	nbulk, ncold, di := 0, 0, 0
	for i := range info.Params {
		p := &info.Params[i]
		if !p.Mode.Ships(false) {
			continue
		}
		if s := bulkSpanFor(p, req.Args[i]); threshold > 0 && len(s) >= threshold {
			if di >= len(digs) {
				return nil, nil, fmt.Errorf("protocol: %s: digest list too short", info.Name)
			}
			nbulk++
			if warm != nil && warm(digs[di]) {
				size += 20 // marker word + 128-bit digest
			} else {
				ncold++
				size += 8 // marker word + offset
			}
			di++
		} else {
			size += argSize(p, counts[i], req.Args[i])
		}
	}
	if di != len(digs) {
		return nil, nil, fmt.Errorf("protocol: %s: digest list has %d entries, call has %d bulk arguments", info.Name, len(digs), di)
	}
	fb := AcquireBuffer(size)
	e := fb.Encoder()
	if keyed {
		e.PutUint64(key)
	}
	e.PutString(req.Name)
	spans := make([][]byte, 1, 1+ncold) // spans[0] becomes the head
	patches := make([]int, 0, ncold)
	di = 0
	for i := range info.Params {
		p := &info.Params[i]
		if !p.Mode.Ships(false) {
			continue
		}
		if s := bulkSpanFor(p, req.Args[i]); threshold > 0 && len(s) >= threshold {
			d := digs[di]
			di++
			if warm != nil && warm(d) {
				elem := bulkElemSize(p.Type)
				if n := len(s) / elem; n != counts[i] {
					fb.Release()
					return nil, nil, fmt.Errorf("protocol: %s argument %q: array length %d, IDL dimensions give %d", info.Name, p.Name, n, counts[i])
				}
				e.PutUint32(uint32(counts[i]) | bulkArgFlag | bulkDigestFlag)
				e.PutUint64(d.Hi)
				e.PutUint64(d.Lo)
				continue
			}
			if err := putBulkMarker(e, fb, p, counts[i], s, &spans, &patches); err != nil {
				fb.Release()
				return nil, nil, fmt.Errorf("protocol: %s argument %q: %w", info.Name, p.Name, err)
			}
			continue
		}
		if err := encodeArg(e, p, counts[i], req.Args[i]); err != nil {
			fb.Release()
			return nil, nil, fmt.Errorf("protocol: %s argument %q: %w", info.Name, p.Name, err)
		}
	}
	if req.Deadline != 0 {
		e.PutUint32(callDeadlineMagic)
		e.PutInt64(req.Deadline)
	}
	if req.Retain {
		e.PutUint32(callRetainMagic)
		e.PutUint32(1)
	}
	if ncold == 0 {
		// Everything warm (or inline): a monolithic frame. A zero-
		// segment BulkMsg would never complete reassembly, so head-only
		// level-4 calls always go monolithic.
		if err := e.Err(); err != nil {
			fb.Release()
			return nil, nil, err
		}
		return nil, fb, nil
	}
	t := MsgCall
	if keyed {
		t = MsgSubmit
	}
	bm, err := finishBulkMsg(t, fb, e, spans, patches)
	return bm, nil, err
}

// DecodeLEInto decodes little-endian element bytes (a data-handle
// reply) into dst: *[]float64, *[]float32 or *[]int64.
func DecodeLEInto(b []byte, dst any) error {
	switch p := dst.(type) {
	case *[]float64:
		if len(b)%8 != 0 {
			return fmt.Errorf("protocol: %d cached bytes are not a float64 array", len(b))
		}
		*p = decodeRawFloat64s(b, true)
	case *[]float32:
		if len(b)%4 != 0 {
			return fmt.Errorf("protocol: %d cached bytes are not a float32 array", len(b))
		}
		*p = decodeRawFloat32s(b, true)
	case *[]int64:
		if len(b)%8 != 0 {
			return fmt.Errorf("protocol: %d cached bytes are not an int64 array", len(b))
		}
		*p = decodeRawInt64s(b, true)
	default:
		return fmt.Errorf("protocol: unsupported data-handle destination %T", dst)
	}
	return nil
}

// EncodeDigestQueryBuf serializes a MsgCallDigest payload: the digests
// whose warmth the client wants to know.
func EncodeDigestQueryBuf(digs []Digest) *Buffer {
	fb := AcquireBuffer(4 + 16*len(digs))
	e := fb.Encoder()
	e.PutUint32(uint32(len(digs)))
	for _, d := range digs {
		e.PutUint64(d.Hi)
		e.PutUint64(d.Lo)
	}
	return fb
}

// DecodeDigestQuery parses a MsgCallDigest payload.
func DecodeDigestQuery(p []byte) ([]Digest, error) {
	pd := acquireDecoder(p)
	defer pd.release()
	d := &pd.d
	n := int(d.Uint32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > len(p)/16 {
		return nil, fmt.Errorf("protocol: digest query count %d exceeds payload", n)
	}
	digs := make([]Digest, n)
	for i := range digs {
		digs[i] = Digest{Hi: d.Uint64(), Lo: d.Uint64()}
	}
	return digs, d.Err()
}

// EncodeDigestStatusBuf serializes a MsgDigestStatus payload: one
// warmth word per queried digest, in query order.
func EncodeDigestStatusBuf(warm []bool) *Buffer {
	fb := AcquireBuffer(4 + 4*len(warm))
	e := fb.Encoder()
	e.PutUint32(uint32(len(warm)))
	for _, w := range warm {
		e.PutBool(w)
	}
	return fb
}

// DecodeDigestStatus parses a MsgDigestStatus payload.
func DecodeDigestStatus(p []byte) ([]bool, error) {
	pd := acquireDecoder(p)
	defer pd.release()
	d := &pd.d
	n := int(d.Uint32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > len(p)/4 {
		return nil, fmt.Errorf("protocol: digest status count %d exceeds payload", n)
	}
	warm := make([]bool, n)
	for i := range warm {
		warm[i] = d.Bool()
	}
	return warm, d.Err()
}

// EncodeDataHandleRequestBuf serializes a MsgDataHandle payload.
func EncodeDataHandleRequestBuf(d Digest) *Buffer {
	fb := AcquireBuffer(16)
	e := fb.Encoder()
	e.PutUint64(d.Hi)
	e.PutUint64(d.Lo)
	return fb
}

// DecodeDataHandleRequest parses a MsgDataHandle payload.
func DecodeDataHandleRequest(p []byte) (Digest, error) {
	pd := acquireDecoder(p)
	d := Digest{Hi: pd.d.Uint64(), Lo: pd.d.Uint64()}
	err := pd.d.Err()
	pd.release()
	return d, err
}

// EncodeDataHandleReplyBuf serializes a MsgDataHandleOK payload: the
// digest echo followed by the entry's little-endian element bytes.
func EncodeDataHandleReplyBuf(d Digest, b []byte) *Buffer {
	fb := AcquireBuffer(16 + 4 + len(b))
	e := fb.Encoder()
	e.PutUint64(d.Hi)
	e.PutUint64(d.Lo)
	e.PutOpaque(b)
	return fb
}

// DecodeDataHandleReply parses a MsgDataHandleOK payload. The returned
// bytes alias p; callers copy if they outlive the frame buffer.
func DecodeDataHandleReply(p []byte) (Digest, []byte, error) {
	pd := acquireDecoder(p)
	d := Digest{Hi: pd.d.Uint64(), Lo: pd.d.Uint64()}
	b := pd.d.Opaque()
	err := pd.d.Err()
	pd.release()
	return d, b, err
}
