package protocol

import (
	"fmt"

	"ninf/internal/idl"
	"ninf/internal/xdr"
)

// Chunked call encoding. A bulk-eligible argument (a []float64,
// []float32 or []int64 whose encoded size reaches the threshold) is not
// copied through the XDR encoder: its head position carries a marker
// word (count | bulkArgFlag) plus the absolute offset of its raw
// element bytes within the logical payload, and the slice itself rides
// as a zero-copy segment span streamed by the chunk writer. Everything
// else — scalars, strings, small arrays, the deadline trailer — is
// normal XDR in the head, so a bulk head decodes with the same
// machinery as a monolithic payload.

// bulkSpanFor returns the raw native-order view of an array value that
// can ship as a segment, or nil when the parameter cannot.
func bulkSpanFor(p *idl.Param, v idl.Value) []byte {
	if p.IsScalar() {
		return nil
	}
	switch p.Type {
	case idl.Double:
		if x, ok := v.([]float64); ok {
			return f64Bytes(x)
		}
	case idl.Float:
		if x, ok := v.([]float32); ok {
			return f32Bytes(x)
		}
	case idl.Int:
		if x, ok := v.([]int64); ok {
			return i64Bytes(x)
		}
	}
	return nil
}

// EncodeCallRequestChunks serializes a call for chunked streaming when
// at least one argument is bulk-eligible at the threshold; it returns
// (nil, nil) otherwise and the caller falls back to
// EncodeCallRequestBuf. The returned message's segment spans alias
// req.Args — the caller must not mutate those slices until the send
// completes — and its head buffer is released by BulkMsg.Release.
func EncodeCallRequestChunks(info *idl.Info, req *CallRequest, threshold int) (*BulkMsg, error) {
	return encodeCallRequestChunks(info, req, false, 0, threshold)
}

// EncodeSubmitRequestChunks is EncodeCallRequestChunks for MsgSubmit:
// the idempotency key leads the head, as in EncodeSubmitRequestBuf.
func EncodeSubmitRequestChunks(info *idl.Info, req *CallRequest, key uint64, threshold int) (*BulkMsg, error) {
	return encodeCallRequestChunks(info, req, true, key, threshold)
}

func encodeCallRequestChunks(info *idl.Info, req *CallRequest, keyed bool, key uint64, threshold int) (*BulkMsg, error) {
	if threshold <= 0 {
		return nil, nil
	}
	if len(req.Args) != len(info.Params) {
		return nil, fmt.Errorf("protocol: %s takes %d arguments, got %d", info.Name, len(info.Params), len(req.Args))
	}
	counts, err := info.DimSizes(req.Args)
	if err != nil {
		return nil, err
	}
	size := xdr.SizeString(len(req.Name))
	if keyed {
		size += 8
	}
	if req.Deadline != 0 {
		size += 12
	}
	nbulk := 0
	for i := range info.Params {
		p := &info.Params[i]
		if !p.Mode.Ships(false) {
			continue
		}
		if s := bulkSpanFor(p, req.Args[i]); len(s) >= threshold {
			nbulk++
			size += 8 // marker + offset
		} else {
			size += argSize(p, counts[i], req.Args[i])
		}
	}
	if nbulk == 0 {
		return nil, nil
	}
	fb := AcquireBuffer(size)
	e := fb.Encoder()
	if keyed {
		e.PutUint64(key)
	}
	e.PutString(req.Name)
	spans := make([][]byte, 1, 1+nbulk) // spans[0] becomes the head
	patches := make([]int, 0, nbulk)
	for i := range info.Params {
		p := &info.Params[i]
		if !p.Mode.Ships(false) {
			continue
		}
		if s := bulkSpanFor(p, req.Args[i]); len(s) >= threshold {
			if err := putBulkMarker(e, fb, p, counts[i], s, &spans, &patches); err != nil {
				fb.Release()
				return nil, fmt.Errorf("protocol: %s argument %q: %w", info.Name, p.Name, err)
			}
			continue
		}
		if err := encodeArg(e, p, counts[i], req.Args[i]); err != nil {
			fb.Release()
			return nil, fmt.Errorf("protocol: %s argument %q: %w", info.Name, p.Name, err)
		}
	}
	if req.Deadline != 0 {
		e.PutUint32(callDeadlineMagic)
		e.PutInt64(req.Deadline)
	}
	t := MsgCall
	if keyed {
		t = MsgSubmit
	}
	return finishBulkMsg(t, fb, e, spans, patches)
}

// EncodeCallReplyChunks serializes a MsgCallOK reply for chunked
// streaming when a result array is bulk-eligible; (nil, nil) falls the
// caller back to EncodeCallReplyBuf. Segment spans alias args, which
// must stay live and unmutated until the reply is fully written.
func EncodeCallReplyChunks(info *idl.Info, tm Timings, args []idl.Value, threshold int) (*BulkMsg, error) {
	if threshold <= 0 {
		return nil, nil
	}
	counts, err := info.DimSizes(args)
	if err != nil {
		return nil, err
	}
	size := 24 // three int64 timings
	nbulk := 0
	for i := range info.Params {
		p := &info.Params[i]
		if !p.Mode.Ships(true) {
			continue
		}
		if s := bulkSpanFor(p, args[i]); len(s) >= threshold {
			nbulk++
			size += 8
		} else {
			size += argSize(p, counts[i], args[i])
		}
	}
	if nbulk == 0 {
		return nil, nil
	}
	fb := AcquireBuffer(size)
	e := fb.Encoder()
	tm.encode(e)
	spans := make([][]byte, 1, 1+nbulk)
	patches := make([]int, 0, nbulk)
	for i := range info.Params {
		p := &info.Params[i]
		if !p.Mode.Ships(true) {
			continue
		}
		if s := bulkSpanFor(p, args[i]); len(s) >= threshold {
			if err := putBulkMarker(e, fb, p, counts[i], s, &spans, &patches); err != nil {
				fb.Release()
				return nil, fmt.Errorf("protocol: %s result %q: %w", info.Name, p.Name, err)
			}
			continue
		}
		if err := encodeArg(e, p, counts[i], args[i]); err != nil {
			fb.Release()
			return nil, fmt.Errorf("protocol: %s result %q: %w", info.Name, p.Name, err)
		}
	}
	return finishBulkMsg(MsgCallOK, fb, e, spans, patches)
}

// putBulkMarker writes one argument's marker word and offset
// placeholder, recording the patch position and the segment span.
func putBulkMarker(e *xdr.Encoder, fb *Buffer, p *idl.Param, count int, span []byte, spans *[][]byte, patches *[]int) error {
	elem := bulkElemSize(p.Type)
	if n := len(span) / elem; n != count {
		return fmt.Errorf("array length %d, IDL dimensions give %d", n, count)
	}
	e.PutUint32(uint32(count) | bulkArgFlag)
	*patches = append(*patches, fb.Len())
	e.PutUint32(0) // patched with the absolute segment offset below
	*spans = append(*spans, span)
	return nil
}

// finishBulkMsg patches segment offsets now that the head length is
// known and assembles the BulkMsg. It owns fb on the error path.
func finishBulkMsg(t MsgType, fb *Buffer, e *xdr.Encoder, spans [][]byte, patches []int) (*BulkMsg, error) {
	if err := e.Err(); err != nil {
		fb.Release()
		return nil, err
	}
	payload := fb.Payload()
	headLen := len(payload)
	off := headLen
	for i, pos := range patches {
		putU32(payload[pos:], uint32(off))
		off += len(spans[i+1])
	}
	spans[0] = payload
	return &BulkMsg{
		Type:    t,
		Spans:   spans,
		headLen: headLen,
		total:   off,
		le:      hostLittle,
		head:    fb,
	}, nil
}

// bulkElemSize maps an array parameter type to its raw element width.
func bulkElemSize(t idl.Type) int {
	if t == idl.Float {
		return 4
	}
	return 8
}

// DecodeCallArgsBulk is DecodeCallArgs for a reassembled bulk payload:
// rest is the head remainder after DecodeCallName (bulk.Head()-sliced
// by the caller) and bulk supplies the segment base. A nil bulk decodes
// monolithically and rejects markers.
func DecodeCallArgsBulk(info *idl.Info, rest []byte, bulk *BulkInfo) ([]idl.Value, error) {
	args, _, err := DecodeCallArgsDeadlineBulk(info, rest, bulk)
	return args, err
}

// DecodeCallReplyBulk is DecodeCallReply for a reassembled bulk reply:
// p must be the head portion (bulk.Head()) when bulk is non-nil.
func DecodeCallReplyBulk(info *idl.Info, callArgs []idl.Value, p []byte, bulk *BulkInfo) (Timings, []idl.Value, error) {
	pd := acquireDecoder(p)
	defer pd.release()
	d := &pd.d
	var t Timings
	t.decode(d)
	if err := d.Err(); err != nil {
		return t, nil, err
	}
	counts, err := info.DimSizes(callArgs)
	if err != nil {
		return t, nil, err
	}
	out := make([]idl.Value, len(info.Params))
	for i := range info.Params {
		pa := &info.Params[i]
		if !pa.Mode.Ships(true) {
			continue
		}
		v, err := decodeArg(d, pa, counts[i], bulk)
		if err != nil {
			return t, nil, fmt.Errorf("protocol: %s result %q: %w", info.Name, pa.Name, err)
		}
		out[i] = v
	}
	return t, out, d.Err()
}

// decodeBulkArray reads one array argument in bulk mode: the count word
// is read explicitly so a marker can divert to the raw segment, while
// unmarked arrays decode their elements from the head as usual.
func decodeBulkArray(d *xdr.Decoder, p *idl.Param, count int, bulk *BulkInfo) (idl.Value, error) {
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n&bulkArgFlag != 0 && n&bulkDigestFlag != 0 {
		// Digest marker: the bytes are not in this message. Two u64
		// words carry the content digest, resolved from the receiver's
		// argument cache (level ≥ 4 with a non-nil Resolver only).
		cnt := int(n &^ (bulkArgFlag | bulkDigestFlag))
		dig := Digest{Hi: d.Uint64(), Lo: d.Uint64()}
		if err := d.Err(); err != nil {
			return nil, err
		}
		if cnt != count {
			return nil, fmt.Errorf("array length %d, IDL dimensions give %d", cnt, count)
		}
		if bulk.Resolver == nil {
			return nil, fmt.Errorf("digest marker %v on a connection without an argument cache", dig)
		}
		elem := bulkElemSize(p.Type)
		src, ok := bulk.Resolver.ResolveDigest(dig)
		if !ok {
			return nil, fmt.Errorf("%w: %v", ErrDigestMiss, dig)
		}
		if len(src) != cnt*elem {
			return nil, fmt.Errorf("cached entry %v holds %d bytes, marker wants %d×%d", dig, len(src), cnt, elem)
		}
		// Cached bytes are normalized to little-endian at insert.
		switch p.Type {
		case idl.Double:
			return decodeRawFloat64s(src, true), nil
		case idl.Float:
			return decodeRawFloat32s(src, true), nil
		case idl.Int:
			return decodeRawInt64s(src, true), nil
		default:
			return nil, fmt.Errorf("unsupported bulk array type %v", p.Type)
		}
	}
	if n&bulkArgFlag != 0 {
		cnt := int(n &^ bulkArgFlag)
		off := int(d.Uint32())
		if err := d.Err(); err != nil {
			return nil, err
		}
		if cnt != count {
			return nil, fmt.Errorf("array length %d, IDL dimensions give %d", cnt, count)
		}
		elem := bulkElemSize(p.Type)
		if off < bulk.HeadLen || off > len(bulk.Base) || cnt > (len(bulk.Base)-off)/elem {
			return nil, fmt.Errorf("bulk segment at %d (%d×%d bytes) out of range", off, cnt, elem)
		}
		src := bulk.Base[off : off+cnt*elem]
		if bulk.Resolver != nil {
			// A cache-enabled receiver retains the uploaded bytes so
			// the next call can reference them by digest. The resolver
			// copies; src aliases the reassembly buffer.
			bulk.Resolver.RetainSegment(src, bulk.LE, elem)
		}
		switch p.Type {
		case idl.Double:
			return decodeRawFloat64s(src, bulk.LE), nil
		case idl.Float:
			return decodeRawFloat32s(src, bulk.LE), nil
		case idl.Int:
			return decodeRawInt64s(src, bulk.LE), nil
		default:
			return nil, fmt.Errorf("unsupported bulk array type %v", p.Type)
		}
	}
	cnt := int(n)
	if cnt != count {
		return nil, fmt.Errorf("array length %d, IDL dimensions give %d", cnt, count)
	}
	switch p.Type {
	case idl.Int:
		return d.Int64Vec(cnt), d.Err()
	case idl.Double:
		return d.Float64Vec(cnt), d.Err()
	case idl.Float:
		return d.Float32Vec(cnt), d.Err()
	default:
		return nil, fmt.Errorf("unsupported array type %v", p.Type)
	}
}
