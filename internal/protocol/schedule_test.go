package protocol

import (
	"reflect"
	"testing"

	"ninf/internal/idl"
)

func TestScheduleRequestRoundTrip(t *testing.T) {
	m := ScheduleRequest{
		Routine: "linsolve", InBytes: 2_880_000, OutBytes: 4800, Ops: 144_000_000,
		Exclude: []string{"j90", "smp"},
	}
	got, err := DecodeScheduleRequest(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("got %+v", got)
	}

	empty := ScheduleRequest{Routine: "ep"}
	got, err = DecodeScheduleRequest(empty.Encode())
	if err != nil || got.Routine != "ep" || len(got.Exclude) != 0 {
		t.Errorf("empty: %+v %v", got, err)
	}
}

func TestScheduleReplyRoundTrip(t *testing.T) {
	m := ScheduleReply{Name: "j90", Addr: "10.0.0.1:3000"}
	got, err := DecodeScheduleReply(m.Encode())
	if err != nil || got != m {
		t.Errorf("got %+v err %v", got, err)
	}
}

func TestObserveRequestRoundTrip(t *testing.T) {
	m := ObserveRequest{Name: "j90", Bytes: 123456, Nanos: 7_000_000_000, Failed: true}
	got, err := DecodeObserveRequest(m.Encode())
	if err != nil || got != m {
		t.Errorf("got %+v err %v", got, err)
	}
}

func TestScheduleDecodeGarbage(t *testing.T) {
	if _, err := DecodeScheduleRequest([]byte{1, 2}); err == nil {
		t.Error("garbage schedule request decoded")
	}
	if _, err := DecodeScheduleReply([]byte{0, 0, 0}); err == nil {
		t.Error("garbage schedule reply decoded")
	}
	if _, err := DecodeObserveRequest(nil); err == nil {
		t.Error("garbage observe request decoded")
	}
}

func TestFloat32AndInt64Args(t *testing.T) {
	info, err := idl.ParseOne(`
Define mix(mode_in int n,
           mode_in float f[n], mode_inout int q[n],
           mode_out float g[n],
           mode_in float scale, mode_out float total)
    Calls "go" mix(n, f, q, g, scale, total);`)
	if err != nil {
		t.Fatal(err)
	}
	n := 3
	f := []float32{1.5, -2, 3.25}
	q := []int64{7, 8, 9}
	args := []idl.Value{int64(n), f, q, nil, float32(2.5), nil}
	p, err := EncodeCallRequest(info, &CallRequest{Name: "mix", Args: args})
	if err != nil {
		t.Fatal(err)
	}
	_, rest, err := DecodeCallName(p)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeCallArgs(info, rest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded[1], f) || !reflect.DeepEqual(decoded[2], q) {
		t.Error("float32/int64 arrays corrupted")
	}
	if decoded[4].(float32) != 2.5 {
		t.Errorf("scale = %v", decoded[4])
	}
	g, ok := decoded[3].([]float32)
	if !ok || len(g) != n {
		t.Fatalf("out float array = %#v", decoded[3])
	}
	// Server fills and replies.
	for i := range g {
		g[i] = float32(i)
	}
	decoded[5] = float32(42)
	reply, err := EncodeCallReply(info, Timings{}, decoded)
	if err != nil {
		t.Fatal(err)
	}
	_, out, err := DecodeCallReply(info, args, reply)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out[3], g) || out[5].(float32) != 42 {
		t.Error("float32 results corrupted")
	}
	if !reflect.DeepEqual(out[2], q) {
		t.Error("inout int64 results corrupted")
	}
}

func TestFloat64ScalarAndFloat32Conversion(t *testing.T) {
	info, err := idl.ParseOne(`Define s(mode_in double x, mode_in float y) Calls "go" s(x, y);`)
	if err != nil {
		t.Fatal(err)
	}
	// float64 accepted for a float param (converted on encode).
	args := []idl.Value{float64(1.25), float64(0.5)}
	p, err := EncodeCallRequest(info, &CallRequest{Name: "s", Args: args})
	if err != nil {
		t.Fatal(err)
	}
	_, rest, _ := DecodeCallName(p)
	decoded, err := DecodeCallArgs(info, rest)
	if err != nil {
		t.Fatal(err)
	}
	if decoded[0].(float64) != 1.25 || decoded[1].(float32) != 0.5 {
		t.Errorf("decoded %v %v", decoded[0], decoded[1])
	}
	// Wrong scalar types rejected.
	if _, err := EncodeCallRequest(info, &CallRequest{Name: "s", Args: []idl.Value{"x", float32(1)}}); err == nil {
		t.Error("string for double accepted")
	}
	if _, err := EncodeCallRequest(info, &CallRequest{Name: "s", Args: []idl.Value{1.0, "y"}}); err == nil {
		t.Error("string for float accepted")
	}
}
