package protocol

import (
	"reflect"
	"testing"

	"ninf/internal/idl"
)

// The overload-control wire extensions — the retry-after hint on error
// replies, the caller deadline trailing a call request, the Draining
// stats flag, and the overload fields of an observation — all ride as
// optional trailers. These tests pin both directions of compatibility:
// new decoders read old payloads (fields default to zero) and old-style
// decoders are unaffected by the trailers new encoders append.

func TestErrorReplyHintRoundTrip(t *testing.T) {
	p := EncodeErrorReplyHint(CodeOverloaded, "queue full", 250)
	er, err := DecodeErrorReply(p)
	if err != nil {
		t.Fatal(err)
	}
	if er.Code != CodeOverloaded || er.Detail != "queue full" || er.RetryAfterMillis != 250 {
		t.Errorf("got %+v", er)
	}
}

func TestErrorReplyHintZeroOmitted(t *testing.T) {
	// A zero hint must not change the wire image: EncodeErrorReply and
	// EncodeErrorReplyHint(..., 0) are byte-identical, so an old peer
	// decoding either sees exactly the v1 payload.
	plain := EncodeErrorReply(CodeExecFailed, "boom")
	hinted := EncodeErrorReplyHint(CodeExecFailed, "boom", 0)
	if string(plain) != string(hinted) {
		t.Errorf("zero-hint encoding differs: %x vs %x", plain, hinted)
	}
	er, err := DecodeErrorReply(plain)
	if err != nil || er.RetryAfterMillis != 0 {
		t.Errorf("got %+v, %v", er, err)
	}
}

func TestErrorReplyOldPayloadDecodes(t *testing.T) {
	// Strip the trailer to emulate an old sender: the new decoder must
	// leave the hint zero.
	p := EncodeErrorReplyHint(CodeOverloaded, "busy", 99)
	old := p[:len(p)-4]
	er, err := DecodeErrorReply(old)
	if err != nil {
		t.Fatal(err)
	}
	if er.Code != CodeOverloaded || er.Detail != "busy" || er.RetryAfterMillis != 0 {
		t.Errorf("got %+v", er)
	}
}

func TestCallRequestDeadlineRoundTrip(t *testing.T) {
	info := dmmulInfo(t)
	n := 2
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	const deadline = int64(1234567890123456789)
	req := &CallRequest{Name: "dmmul", Args: []idl.Value{int64(n), a, b, nil}, Deadline: deadline}
	p, err := EncodeCallRequest(info, req)
	if err != nil {
		t.Fatal(err)
	}
	_, rest, err := DecodeCallName(p)
	if err != nil {
		t.Fatal(err)
	}
	args, got, err := DecodeCallArgsDeadline(info, rest)
	if err != nil {
		t.Fatal(err)
	}
	if got != deadline {
		t.Errorf("deadline = %d, want %d", got, deadline)
	}
	if !reflect.DeepEqual(args[1], a) || !reflect.DeepEqual(args[2], b) {
		t.Error("array arguments corrupted by deadline trailer")
	}

	// The old decoder path must still parse the args, ignoring the
	// trailer — a new client calling an old server loses the deadline
	// but not the call.
	oldArgs, err := DecodeCallArgs(info, rest)
	if err != nil {
		t.Fatalf("old-style decode with deadline trailer: %v", err)
	}
	if !reflect.DeepEqual(oldArgs[1], a) {
		t.Error("old-style decode corrupted args")
	}
}

func TestCallRequestNoDeadlineUnchanged(t *testing.T) {
	info := dmmulInfo(t)
	req := &CallRequest{Name: "dmmul", Args: []idl.Value{int64(2), make([]float64, 4), make([]float64, 4), nil}}
	p, err := EncodeCallRequest(info, req)
	if err != nil {
		t.Fatal(err)
	}
	_, rest, err := DecodeCallName(p)
	if err != nil {
		t.Fatal(err)
	}
	_, deadline, err := DecodeCallArgsDeadline(info, rest)
	if err != nil {
		t.Fatal(err)
	}
	if deadline != 0 {
		t.Errorf("deadline = %d, want 0 for a v1-shaped request", deadline)
	}
}

func TestStatsDrainingRoundTrip(t *testing.T) {
	in := Stats{Hostname: "h", PEs: 4, Queued: 2, Draining: true}
	out, err := DecodeStats(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Draining || out.Hostname != "h" || out.PEs != 4 {
		t.Errorf("got %+v", out)
	}

	// An old server's stats payload lacks the cache counters and the
	// draining word; the new decoder must default both trailers.
	p := in.Encode()
	old := p[:len(p)-52] // 48 cache-counter bytes + 4 draining bytes
	out, err = DecodeStats(old)
	if err != nil {
		t.Fatal(err)
	}
	if out.Draining {
		t.Error("Draining = true decoding an old-format payload")
	}

	// A PR 8-era payload carries Draining but no cache counters.
	mid := p[:len(p)-48]
	out, err = DecodeStats(mid)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Draining || out.CacheHits != 0 {
		t.Errorf("mid-format decode: got %+v", out)
	}
}

func TestStatsCacheCountersRoundTrip(t *testing.T) {
	in := Stats{Hostname: "h", PEs: 2, CacheHits: 10, CacheMisses: 3,
		CacheEvictions: 1, CachePinnedBytes: 4096, CacheUsedBytes: 1 << 20, CacheBudget: 1 << 24}
	out, err := DecodeStats(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("got %+v, want %+v", out, in)
	}
}

func TestObserveRequestOverloadRoundTrip(t *testing.T) {
	in := ObserveRequest{Name: "s0", Bytes: 7, Nanos: 9, Failed: true, Overloaded: true, RetryAfterMillis: 120}
	out, err := DecodeObserveRequest(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("got %+v, want %+v", out, in)
	}

	// A PR 5-era client stops after the overload trailer (no
	// origin/seq); the new daemon decodes it with a zero Origin,
	// marking a legacy, non-idempotent report.
	p := in.Encode()
	pr5 := p[:len(p)-12] // empty Origin (4) + Seq (8)
	out, err = DecodeObserveRequest(pr5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Origin != "" || out.Seq != 0 {
		t.Errorf("got %+v decoding PR5-format payload", out)
	}
	if !out.Overloaded || out.RetryAfterMillis != 120 {
		t.Errorf("overload trailer corrupted: %+v", out)
	}

	// Old clients stop after Failed; the new daemon decodes the short
	// payload with the overload fields zero.
	old := p[:len(p)-20]
	out, err = DecodeObserveRequest(old)
	if err != nil {
		t.Fatal(err)
	}
	if out.Overloaded || out.RetryAfterMillis != 0 {
		t.Errorf("got %+v decoding old-format payload", out)
	}
	if !out.Failed || out.Name != "s0" {
		t.Errorf("prefix fields corrupted: %+v", out)
	}
}

func TestObserveRequestOriginSeqRoundTrip(t *testing.T) {
	in := ObserveRequest{Name: "s1", Bytes: 3, Nanos: 5, Origin: "client-7", Seq: 42}
	out, err := DecodeObserveRequest(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("got %+v, want %+v", out, in)
	}
}
