package protocol

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

func TestMuxFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := []struct {
		t   MsgType
		seq uint32
		p   []byte
	}{
		{MsgCall, 1, []byte("hello")},
		{MsgPing, 0xffffffff, nil},
		{MsgCallOK, 7, bytes.Repeat([]byte{0xab}, 4096)},
	}
	for _, want := range payloads {
		fb := AcquireBuffer(len(want.p))
		fb.Write(want.p)
		if err := WriteMuxFrameBuf(&buf, want.t, want.seq, fb); err != nil {
			t.Fatal(err)
		}
		fb.Release()
	}
	for _, want := range payloads {
		typ, seq, fb, err := ReadMuxFrameBuf(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if typ != want.t || seq != want.seq || !bytes.Equal(fb.Payload(), want.p) {
			t.Fatalf("got (%v, %d, %d bytes), want (%v, %d, %d bytes)",
				typ, seq, fb.Len(), want.t, want.seq, len(want.p))
		}
		fb.Release()
	}
}

func TestMuxFramePlainWriter(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMuxFrame(&buf, MsgFetch, 42, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	typ, seq, fb, err := ReadMuxFrameBuf(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Release()
	if typ != MsgFetch || seq != 42 || string(fb.Payload()) != "xyz" {
		t.Fatalf("round trip mismatch: %v %d %q", typ, seq, fb.Payload())
	}
}

func TestWriteStampedFramesCoalesces(t *testing.T) {
	var buf bytes.Buffer
	var batch []*Buffer
	for i := 0; i < 5; i++ {
		fb := AcquireBuffer(8)
		fmt.Fprintf(fb, "req-%d", i)
		StampMux(fb, MsgCall, uint32(100+i))
		batch = append(batch, fb)
	}
	if err := WriteStampedFrames(&buf, batch); err != nil {
		t.Fatal(err)
	}
	for _, fb := range batch {
		fb.Release()
	}
	for i := 0; i < 5; i++ {
		typ, seq, fb, err := ReadMuxFrameBuf(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if typ != MsgCall || seq != uint32(100+i) || string(fb.Payload()) != fmt.Sprintf("req-%d", i) {
			t.Fatalf("frame %d: got (%v, %d, %q)", i, typ, seq, fb.Payload())
		}
		fb.Release()
	}
	if _, _, _, err := ReadMuxFrameBuf(&buf, 0); err != io.EOF {
		t.Fatalf("expected EOF after batch, got %v", err)
	}
}

// TestMuxRejectsLockstepFrame proves the version check: a version-1
// frame presented to the mux reader fails with ErrBadVersion (the
// packed version word reads as 0), not silent misparsing.
func TestMuxRejectsLockstepFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := ReadMuxFrameBuf(&buf, 0)
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("expected ErrBadVersion, got %v", err)
	}
}

// ...and the reverse: a mux frame presented to the lockstep reader is
// rejected as a bad version, so a framing mixup is loud.
func TestLockstepRejectsMuxFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMuxFrame(&buf, MsgPing, 9, nil); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadFrame(&buf, 0)
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("expected ErrBadVersion, got %v", err)
	}
}

func TestMuxOversizedRejected(t *testing.T) {
	var buf bytes.Buffer
	fb := AcquireBuffer(64)
	fb.Write(bytes.Repeat([]byte{1}, 64))
	if err := WriteMuxFrameBuf(&buf, MsgCall, 3, fb); err != nil {
		t.Fatal(err)
	}
	fb.Release()
	_, _, _, err := ReadMuxFrameBuf(&buf, 16)
	if !errors.Is(err, ErrOversized) {
		t.Fatalf("expected ErrOversized, got %v", err)
	}
}

func TestHelloPayloads(t *testing.T) {
	req := HelloRequest{MaxVersion: MuxVersion}
	got, err := DecodeHelloRequest(req.Encode())
	if err != nil || got != req {
		t.Fatalf("hello request round trip: %+v, %v", got, err)
	}
	rep := HelloReply{Version: MuxVersion}
	gotR, err := DecodeHelloReply(rep.Encode())
	if err != nil || gotR != rep {
		t.Fatalf("hello reply round trip: %+v, %v", gotR, err)
	}
}

func TestBufferFor(t *testing.T) {
	p := []byte("payload-bytes")
	fb := BufferFor(p)
	if !bytes.Equal(fb.Payload(), p) {
		t.Fatalf("BufferFor payload = %q", fb.Payload())
	}
	p[0] = 'X' // the buffer must hold a copy
	if fb.Payload()[0] == 'X' {
		t.Fatal("BufferFor aliases its input")
	}
	fb.Release()
}
