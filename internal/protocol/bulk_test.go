package protocol

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"ninf/internal/idl"
)

// streamBulk writes m as its begin frame plus chunks of at most limit
// data bytes, exactly as the serialized writers do.
func streamBulk(t *testing.T, w io.Writer, m *BulkMsg, seq uint32, limit int) {
	t.Helper()
	fb := m.EncodeBegin()
	if err := WriteMuxFrameBuf(w, MsgBulkBegin, seq, fb); err != nil {
		t.Fatal(err)
	}
	fb.Release()
	cur := m.Cursor()
	for {
		done, err := cur.WriteChunk(w, seq, limit)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return
		}
	}
}

// reassemble drives a Reassembler over the framed stream until the
// message for seq completes.
func reassemble(t *testing.T, r io.Reader, seq uint32, discard bool) *BulkDone {
	t.Helper()
	br := bufio.NewReader(r)
	ra := NewReassembler(0, 0)
	defer ra.Close()
	for {
		typ, gotSeq, n, err := ReadMuxHeader(br, 0)
		if err == io.EOF {
			if discard {
				return nil
			}
			t.Fatal("stream ended before bulk message completed")
		}
		if err != nil {
			t.Fatal(err)
		}
		if gotSeq != seq {
			t.Fatalf("frame for seq %d, want %d", gotSeq, seq)
		}
		switch typ {
		case MsgBulkBegin:
			fb, err := ReadMuxPayload(br, n)
			if err != nil {
				t.Fatal(err)
			}
			berr := ra.Begin(seq, fb.Payload(), discard)
			fb.Release()
			if berr != nil {
				t.Fatal(berr)
			}
		case MsgBulkChunk:
			bd, err := ra.ReadChunk(br, seq, n)
			if err != nil {
				t.Fatal(err)
			}
			if bd != nil {
				return bd
			}
		default:
			t.Fatalf("unexpected frame %v in bulk stream", typ)
		}
	}
}

// TestBulkCallRequestChunkedRoundTrip pins the tentpole equivalence:
// a call request streamed as chunked bulk frames must decode to
// exactly the same name, arguments, and deadline as the same request
// encoded monolithically.
func TestBulkCallRequestChunkedRoundTrip(t *testing.T) {
	info := dmmulInfo(t)
	n := 48
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i) * 0.5
		b[i] = float64(i%13) - 6
	}
	req := &CallRequest{
		Name:     "dmmul",
		Args:     []idl.Value{int64(n), a, b, nil},
		Deadline: 1234567890123,
	}

	m, err := EncodeCallRequestChunks(info, req, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("request above threshold not chunked")
	}
	if m.HeadLen() >= m.Total() {
		t.Fatalf("no segments: head %d, total %d", m.HeadLen(), m.Total())
	}

	var wire bytes.Buffer
	streamBulk(t, &wire, m, 7, 4096)
	bd := reassemble(t, &wire, 7, false)
	defer bd.FB.Release()
	if bd.Type != MsgCall {
		t.Fatalf("inner type %v", bd.Type)
	}

	name, rest, err := DecodeCallName(bd.Bulk.Head())
	if err != nil {
		t.Fatal(err)
	}
	if name != "dmmul" {
		t.Fatalf("name %q", name)
	}
	vals, deadline, err := DecodeCallArgsDeadlineBulk(info, rest, &bd.Bulk)
	if err != nil {
		t.Fatal(err)
	}
	if deadline != req.Deadline {
		t.Fatalf("deadline %d, want %d", deadline, req.Deadline)
	}
	if vals[0].(int64) != int64(n) {
		t.Fatalf("n = %v", vals[0])
	}
	if !reflect.DeepEqual(vals[1], a) || !reflect.DeepEqual(vals[2], b) {
		t.Fatal("bulk-decoded arrays differ from originals")
	}

	// Decoded arrays must be copies: the reassembly buffer is pooled
	// and reused after release, so aliasing it would corrupt results.
	base0 := bd.Bulk.Base[bd.Bulk.HeadLen]
	vals1 := vals[1].([]float64)
	bd.Bulk.Base[bd.Bulk.HeadLen] ^= 0xff
	if f64Bytes(vals1)[0] != base0^0xff && !reflect.DeepEqual(vals[1], a) {
		t.Fatal("unreachable")
	}
	if !reflect.DeepEqual(vals[1], a) {
		t.Fatal("decoded array aliases the reassembly buffer")
	}
	bd.Bulk.Base[bd.Bulk.HeadLen] = base0
}

// TestBulkSubmitRequestChunkedRoundTrip: the keyed (two-phase) variant
// carries its idempotency key in the head.
func TestBulkSubmitRequestChunkedRoundTrip(t *testing.T) {
	info := dmmulInfo(t)
	n := 32
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i)
		b[i] = 1
	}
	req := &CallRequest{Name: "dmmul", Args: []idl.Value{int64(n), a, b, nil}}
	m, err := EncodeSubmitRequestChunks(info, req, 0xdeadbeefcafe, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("submit above threshold not chunked")
	}
	var wire bytes.Buffer
	streamBulk(t, &wire, m, 3, 8192)
	bd := reassemble(t, &wire, 3, false)
	defer bd.FB.Release()
	if bd.Type != MsgSubmit {
		t.Fatalf("inner type %v", bd.Type)
	}
	key, rest, err := DecodeSubmitKey(bd.Bulk.Head())
	if err != nil {
		t.Fatal(err)
	}
	if key != 0xdeadbeefcafe {
		t.Fatalf("key %#x", key)
	}
	name, rest, err := DecodeCallName(rest)
	if err != nil {
		t.Fatal(err)
	}
	if name != "dmmul" {
		t.Fatalf("name %q", name)
	}
	vals, err := DecodeCallArgsBulk(info, rest, &bd.Bulk)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals[1], a) {
		t.Fatal("bulk-decoded submit args differ")
	}
}

// TestBulkCallReplyChunkedRoundTrip: replies chunk the same way, and
// the bulk decode must agree with the monolithic decode of the same
// reply.
func TestBulkCallReplyChunkedRoundTrip(t *testing.T) {
	info := dmmulInfo(t)
	n := 40
	c := make([]float64, n*n)
	for i := range c {
		c[i] = math.Sqrt(float64(i))
	}
	args := []idl.Value{int64(n), nil, nil, c}
	tm := Timings{Enqueue: 10, Dequeue: 20, Complete: 30}

	m, err := EncodeCallReplyChunks(info, tm, args, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("reply above threshold not chunked")
	}
	var wire bytes.Buffer
	streamBulk(t, &wire, m, 9, 2048)
	bd := reassemble(t, &wire, 9, false)
	defer bd.FB.Release()
	if bd.Type != MsgCallOK {
		t.Fatalf("inner type %v", bd.Type)
	}

	callArgs := []idl.Value{int64(n), nil, nil, nil}
	gotTm, out, err := DecodeCallReplyBulk(info, callArgs, bd.Bulk.Head(), &bd.Bulk)
	if err != nil {
		t.Fatal(err)
	}
	if gotTm != tm {
		t.Fatalf("timings %+v, want %+v", gotTm, tm)
	}
	if !reflect.DeepEqual(out[3], c) {
		t.Fatal("bulk-decoded reply array differs")
	}

	// Monolithic encode of the same reply must decode identically.
	mono, err := EncodeCallReplyBuf(info, tm, args)
	if err != nil {
		t.Fatal(err)
	}
	defer mono.Release()
	_, monoOut, err := DecodeCallReply(info, callArgs, mono.Payload())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(monoOut[3], out[3]) {
		t.Fatal("chunked and monolithic decodes disagree")
	}
}

// TestBulkBelowThresholdDeclined: small messages stay monolithic.
func TestBulkBelowThresholdDeclined(t *testing.T) {
	info := dmmulInfo(t)
	n := 4
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	req := &CallRequest{Name: "dmmul", Args: []idl.Value{int64(n), a, b, nil}}
	m, err := EncodeCallRequestChunks(info, req, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		m.Release()
		t.Fatal("small request chunked")
	}
	// Threshold 0 means chunking disabled outright.
	if m, _ := EncodeCallRequestChunks(info, req, 0); m != nil {
		m.Release()
		t.Fatal("threshold 0 chunked")
	}
}

// TestMonolithicDecodeRejectsMarkers: a bulk head handed to the plain
// decoder (no BulkInfo) must fail loudly, not misread marker words as
// array contents.
func TestMonolithicDecodeRejectsMarkers(t *testing.T) {
	info := dmmulInfo(t)
	n := 16
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	req := &CallRequest{Name: "dmmul", Args: []idl.Value{int64(n), a, b, nil}}
	m, err := EncodeCallRequestChunks(info, req, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("request not chunked")
	}
	defer m.Release()
	fb := m.EncodeBegin()
	fb.Release()
	head := make([]byte, m.HeadLen())
	// Reassemble just the head by streaming to a buffer once.
	var wire bytes.Buffer
	cur := m.Cursor()
	for {
		done, err := cur.WriteChunk(&wire, 1, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	// Chunk payloads start after the 16-byte mux header + 8-byte chunk
	// header; the head is the first HeadLen bytes of the message.
	copy(head, wire.Bytes()[16+8:16+8+m.HeadLen()])
	_, rest, err := DecodeCallName(head)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeCallArgsDeadline(info, rest); err == nil {
		t.Fatal("monolithic decode accepted a bulk-marker head")
	}
}

// TestBulkChunkCRCCorruption: a flipped payload bit must fail the
// chunk CRC and poison the connection, not deliver corrupt data.
func TestBulkChunkCRCCorruption(t *testing.T) {
	m := RawBulkMsg(MsgCall, bytes.Repeat([]byte{0xab}, 4096))
	var wire bytes.Buffer
	streamBulk(t, &wire, m, 5, 1024)
	raw := wire.Bytes()
	// Flip a data byte inside the second chunk (first chunk frame
	// starts after the begin frame; corrupt deep into the stream).
	raw[len(raw)-10] ^= 0x01

	br := bufio.NewReader(bytes.NewReader(raw))
	ra := NewReassembler(0, 0)
	defer ra.Close()
	var lastErr error
	for {
		typ, seq, n, err := ReadMuxHeader(br, 0)
		if err != nil {
			t.Fatalf("stream ended without CRC failure: %v", err)
		}
		if typ == MsgBulkBegin {
			fb, err := ReadMuxPayload(br, n)
			if err != nil {
				t.Fatal(err)
			}
			if err := ra.Begin(seq, fb.Payload(), false); err != nil {
				t.Fatal(err)
			}
			fb.Release()
			continue
		}
		if _, lastErr = ra.ReadChunk(br, seq, n); lastErr != nil {
			break
		}
	}
	if !strings.Contains(lastErr.Error(), "CRC") {
		t.Fatalf("corruption error %v, want CRC mismatch", lastErr)
	}
	if got := OpenBulkReassemblies(); got != 1 {
		t.Fatalf("open reassemblies before Close = %d, want 1", got)
	}
	ra.Close()
	if got := OpenBulkReassemblies(); got != 0 {
		t.Fatalf("open reassemblies after Close = %d, want 0", got)
	}
}

// TestBulkChunkOffsetViolation: chunks must arrive contiguously from
// offset 0; a gap or replay is a protocol error.
func TestBulkChunkOffsetViolation(t *testing.T) {
	m := RawBulkMsg(MsgCall, make([]byte, 2048))
	var wire bytes.Buffer
	streamBulk(t, &wire, m, 2, 1024)

	br := bufio.NewReader(bytes.NewReader(wire.Bytes()))
	ra := NewReassembler(0, 0)
	defer ra.Close()
	typ, seq, n, err := ReadMuxHeader(br, 0)
	if err != nil || typ != MsgBulkBegin {
		t.Fatalf("begin: %v %v", typ, err)
	}
	fb, err := ReadMuxPayload(br, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.Begin(seq, fb.Payload(), false); err != nil {
		t.Fatal(err)
	}
	fb.Release()
	// Skip the first chunk frame entirely, then feed the second: its
	// offset (1024) no longer matches the expected position (0).
	if _, _, n, err = ReadMuxHeader(br, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := io.CopyN(io.Discard, br, int64(n)); err != nil {
		t.Fatal(err)
	}
	if _, _, n, err = ReadMuxHeader(br, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ra.ReadChunk(br, seq, n); err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("gap error %v, want offset violation", err)
	}
}

// TestBulkChunkWithoutBegin: a chunk for an unknown seq is a protocol
// error.
func TestBulkChunkWithoutBegin(t *testing.T) {
	m := RawBulkMsg(MsgCall, make([]byte, 512))
	var wire bytes.Buffer
	cur := m.Cursor()
	if _, err := cur.WriteChunk(&wire, 11, 1024); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(bytes.NewReader(wire.Bytes()))
	ra := NewReassembler(0, 0)
	defer ra.Close()
	_, seq, n, err := ReadMuxHeader(br, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ra.ReadChunk(br, seq, n); err == nil {
		t.Fatal("chunk without begin accepted")
	}
}

// TestBulkDiscardMode: an abandoned seq's chunks are validated and
// dropped without ever holding a buffer.
func TestBulkDiscardMode(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5c}, 200<<10)
	m := RawBulkMsg(MsgFetchOK, payload)
	var wire bytes.Buffer
	streamBulk(t, &wire, m, 4, 64<<10)
	before := OpenBulkReassemblies()
	if bd := reassemble(t, &wire, 4, true); bd != nil {
		t.Fatal("discard mode delivered a message")
	}
	if got := OpenBulkReassemblies(); got != before {
		t.Fatalf("discard mode leaked a reassembly buffer: %d != %d", got, before)
	}
}

// TestReassemblerAbortAndClose: Abort and Close release buffers and
// settle the process-wide gauge.
func TestReassemblerAbortAndClose(t *testing.T) {
	m := RawBulkMsg(MsgCall, make([]byte, 4096))
	fb := m.EncodeBegin()
	begin := append([]byte(nil), fb.Payload()...)
	fb.Release()
	m.Release()

	base := OpenBulkReassemblies()
	ra := NewReassembler(0, 0)
	if err := ra.Begin(21, begin, false); err != nil {
		t.Fatal(err)
	}
	if got := OpenBulkReassemblies(); got != base+1 {
		t.Fatalf("gauge after begin = %d, want %d", got, base+1)
	}
	ra.Abort(21)
	if got := OpenBulkReassemblies(); got != base {
		t.Fatalf("gauge after abort = %d, want %d", got, base)
	}
	if err := ra.Begin(22, begin, false); err != nil {
		t.Fatal(err)
	}
	if err := ra.Begin(22, begin, false); err == nil {
		t.Fatal("duplicate begin accepted")
	}
	ra.Close()
	if got := OpenBulkReassemblies(); got != base {
		t.Fatalf("gauge after close = %d, want %d", got, base)
	}
}

// TestReassemblerOpenCap: a peer opening unbounded concurrent
// reassemblies is cut off.
func TestReassemblerOpenCap(t *testing.T) {
	m := RawBulkMsg(MsgCall, make([]byte, 64))
	fb := m.EncodeBegin()
	begin := append([]byte(nil), fb.Payload()...)
	fb.Release()
	m.Release()
	ra := NewReassembler(0, 2)
	defer ra.Close()
	if err := ra.Begin(1, begin, false); err != nil {
		t.Fatal(err)
	}
	if err := ra.Begin(2, begin, false); err != nil {
		t.Fatal(err)
	}
	if err := ra.Begin(3, begin, false); err == nil {
		t.Fatal("reassembly flood accepted")
	}
}

// TestRawVecForeignEndian pins receiver-makes-it-right: the same
// logical vector decodes identically whether the wire bytes are
// little- or big-endian.
func TestRawVecForeignEndian(t *testing.T) {
	v := []float64{1.5, -2.25, math.Pi, 0, math.Inf(1)}
	le := make([]byte, 8*len(v))
	be := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(le[8*i:], math.Float64bits(f))
		binary.BigEndian.PutUint64(be[8*i:], math.Float64bits(f))
	}
	if got := decodeRawFloat64s(le, true); !reflect.DeepEqual(got, v) {
		t.Fatalf("LE decode %v", got)
	}
	if got := decodeRawFloat64s(be, false); !reflect.DeepEqual(got, v) {
		t.Fatalf("BE decode %v", got)
	}

	iv := []int64{1, -1, 1 << 40, math.MinInt64}
	ile := make([]byte, 8*len(iv))
	ibe := make([]byte, 8*len(iv))
	for i, x := range iv {
		binary.LittleEndian.PutUint64(ile[8*i:], uint64(x))
		binary.BigEndian.PutUint64(ibe[8*i:], uint64(x))
	}
	if got := decodeRawInt64s(ile, true); !reflect.DeepEqual(got, iv) {
		t.Fatalf("LE int decode %v", got)
	}
	if got := decodeRawInt64s(ibe, false); !reflect.DeepEqual(got, iv) {
		t.Fatalf("BE int decode %v", got)
	}

	fv := []float32{1.5, -0.25, 3e7}
	fle := make([]byte, 4*len(fv))
	fbe := make([]byte, 4*len(fv))
	for i, f := range fv {
		binary.LittleEndian.PutUint32(fle[4*i:], math.Float32bits(f))
		binary.BigEndian.PutUint32(fbe[4*i:], math.Float32bits(f))
	}
	if got := decodeRawFloat32s(fle, true); !reflect.DeepEqual(got, fv) {
		t.Fatalf("LE f32 decode %v", got)
	}
	if got := decodeRawFloat32s(fbe, false); !reflect.DeepEqual(got, fv) {
		t.Fatalf("BE f32 decode %v", got)
	}
}

// TestBulkEncodeZeroCopy pins the perf_opt acceptance: chunk-encoding
// a call request must not copy the bulk argument. The head buffer and
// bookkeeping are small; allocated bytes per op must stay far below
// the 8 MiB argument.
func TestBulkEncodeZeroCopy(t *testing.T) {
	info := dmmulInfo(t)
	n := 1024 // 8 MiB per matrix
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	req := &CallRequest{Name: "dmmul", Args: []idl.Value{int64(n), a, b, nil}}

	res := testing.Benchmark(func(bm *testing.B) {
		bm.ReportAllocs()
		for i := 0; i < bm.N; i++ {
			m, err := EncodeCallRequestChunks(info, req, DefaultBulkThreshold)
			if err != nil || m == nil {
				bm.Fatalf("encode: %v %v", m, err)
			}
			cur := m.Cursor()
			for {
				done, err := cur.WriteChunk(io.Discard, 1, DefaultBulkChunk)
				if err != nil {
					bm.Fatal(err)
				}
				if done {
					break
				}
			}
		}
	})
	if bpo := res.AllocedBytesPerOp(); bpo > 64<<10 {
		t.Fatalf("chunked encode allocates %d B/op for a 16 MiB call — the bulk argument is being copied", bpo)
	}
}
