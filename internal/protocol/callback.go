package protocol

import "ninf/internal/xdr"

// Callback frames implement the §2.3 "client callback functions"
// facility: while a Ninf executable runs a blocking call, the server
// may invoke a function registered on the client — progress reporting,
// steering, pulling extra data — over the same connection. The client,
// which is waiting for MsgCallOK, answers MsgCallback frames inline
// and keeps waiting.
const (
	// MsgCallback is sent server→client during a blocking call.
	MsgCallback MsgType = iota + 96
	// MsgCallbackOK carries the client's reply payload.
	MsgCallbackOK
)

// CallbackRequest is the payload of MsgCallback: a callback name plus
// an opaque argument blob (the executable and the client agree on its
// format; numerical callbacks typically use XDR vectors).
type CallbackRequest struct {
	Name string
	Data []byte
}

// Encode serializes the request.
func (m *CallbackRequest) Encode() []byte {
	var buf writerBuf
	e := xdr.NewEncoder(&buf)
	e.PutString(m.Name)
	e.PutOpaque(m.Data)
	return buf.b
}

// DecodeCallbackRequest parses a MsgCallback payload.
func DecodeCallbackRequest(p []byte) (CallbackRequest, error) {
	d := xdr.NewDecoder(bytesReader(p))
	m := CallbackRequest{Name: d.String(), Data: d.Opaque()}
	return m, d.Err()
}

// CallbackReply is the payload of MsgCallbackOK.
type CallbackReply struct {
	Data []byte
}

// Encode serializes the reply.
func (m *CallbackReply) Encode() []byte {
	var buf writerBuf
	e := xdr.NewEncoder(&buf)
	e.PutOpaque(m.Data)
	return buf.b
}

// DecodeCallbackReply parses a MsgCallbackOK payload.
func DecodeCallbackReply(p []byte) (CallbackReply, error) {
	d := xdr.NewDecoder(bytesReader(p))
	m := CallbackReply{Data: d.Opaque()}
	return m, d.Err()
}
