package protocol

import "ninf/internal/xdr"

// Callback frames implement the §2.3 "client callback functions"
// facility: while a Ninf executable runs a blocking call, the server
// may invoke a function registered on the client — progress reporting,
// steering, pulling extra data — over the same connection. The client,
// which is waiting for MsgCallOK, answers MsgCallback frames inline
// and keeps waiting.
const (
	// MsgCallback is sent server→client during a blocking call.
	MsgCallback MsgType = iota + 96
	// MsgCallbackOK carries the client's reply payload.
	MsgCallbackOK
)

// CallbackRequest is the payload of MsgCallback: a callback name plus
// an opaque argument blob (the executable and the client agree on its
// format; numerical callbacks typically use XDR vectors).
type CallbackRequest struct {
	Name string
	Data []byte
}

// Encode serializes the request.
func (m *CallbackRequest) Encode() []byte {
	return encodePayload(xdr.SizeString(len(m.Name))+xdr.SizeOpaque(len(m.Data)), func(e *xdr.Encoder) {
		e.PutString(m.Name)
		e.PutOpaque(m.Data)
	})
}

// DecodeCallbackRequest parses a MsgCallback payload.
func DecodeCallbackRequest(p []byte) (CallbackRequest, error) {
	pd := acquireDecoder(p)
	m := CallbackRequest{Name: pd.d.String(), Data: pd.d.Opaque()}
	err := pd.d.Err()
	pd.release()
	return m, err
}

// CallbackReply is the payload of MsgCallbackOK.
type CallbackReply struct {
	Data []byte
}

// Encode serializes the reply.
func (m *CallbackReply) Encode() []byte {
	return encodePayload(xdr.SizeOpaque(len(m.Data)), func(e *xdr.Encoder) {
		e.PutOpaque(m.Data)
	})
}

// DecodeCallbackReply parses a MsgCallbackOK payload.
func DecodeCallbackReply(p []byte) (CallbackReply, error) {
	pd := acquireDecoder(p)
	m := CallbackReply{Data: pd.d.Opaque()}
	err := pd.d.Err()
	pd.release()
	return m, err
}
