package protocol

import "ninf/internal/xdr"

// Replication frames, spoken between metaserver replicas (and only
// them). A replica set keeps compatible placement views by
// anti-entropy gossip: every state change — a server registration, a
// client's call outcome, a poll result — is a GossipRecord stamped
// with its origin and a per-origin sequence number, so replicas can
// exchange exactly the records the other is missing and apply each
// record at most once. The exchange is a single round trip: the caller
// sends its digest plus records it believes the peer lacks; the peer
// applies them, then answers with its own digest plus the records the
// caller's digest proves the caller lacks.
const (
	// MsgGossip carries one anti-entropy exchange from a peer replica.
	MsgGossip MsgType = iota + 68
	// MsgGossipOK answers with the receiver's digest and the records
	// the sender was missing.
	MsgGossipOK
)

// Gossip record kinds.
const (
	// GossipObserve is a call outcome (success, failure, or overload
	// rejection) reported by a client; its origin is the client, so a
	// report replayed to a second replica after failover deduplicates.
	GossipObserve uint32 = 1
	// GossipRegister adds a computational server to the replica set's
	// shared view.
	GossipRegister uint32 = 2
	// GossipDeregister removes one.
	GossipDeregister uint32 = 3
	// GossipStats is one replica's successful poll of a server:
	// self-reported stats plus the poll time, applied freshest-wins.
	GossipStats uint32 = 4
)

// GossipRecord is one replicated state change. Fields beyond Kind,
// Origin, Seq, and Name are meaningful per kind; unused ones ride as
// zeros (records are small control messages, and a fixed shape keeps
// the codec symmetric and dumb).
type GossipRecord struct {
	Origin string // who created the record (replica ID or client ID)
	Seq    uint64 // per-origin sequence number, 1-based
	Kind   uint32
	Name   string // server the record concerns

	// GossipRegister:
	Addr  string
	Power float64

	// GossipObserve:
	Bytes            int64
	Nanos            int64
	Failed           bool
	Overloaded       bool
	RetryAfterMillis uint32

	// GossipStats (and freshness for conflict resolution):
	AtUnixNanos int64
	Stats       []byte // encoded Stats, empty unless Kind is GossipStats
}

// sizeHint approximates the record's encoded size.
func (m *GossipRecord) sizeHint() int {
	return xdr.SizeString(len(m.Origin)) + xdr.SizeString(len(m.Name)) +
		xdr.SizeString(len(m.Addr)) + len(m.Stats) + 72
}

func (m *GossipRecord) encodeInto(e *xdr.Encoder) {
	e.PutString(m.Origin)
	e.PutUint64(m.Seq)
	e.PutUint32(m.Kind)
	e.PutString(m.Name)
	e.PutString(m.Addr)
	e.PutFloat64(m.Power)
	e.PutInt64(m.Bytes)
	e.PutInt64(m.Nanos)
	e.PutBool(m.Failed)
	e.PutBool(m.Overloaded)
	e.PutUint32(m.RetryAfterMillis)
	e.PutInt64(m.AtUnixNanos)
	e.PutOpaque(m.Stats)
}

func decodeGossipRecord(d *xdr.Decoder) GossipRecord {
	return GossipRecord{
		Origin:           d.String(),
		Seq:              d.Uint64(),
		Kind:             d.Uint32(),
		Name:             d.String(),
		Addr:             d.String(),
		Power:            d.Float64(),
		Bytes:            d.Int64(),
		Nanos:            d.Int64(),
		Failed:           d.Bool(),
		Overloaded:       d.Bool(),
		RetryAfterMillis: d.Uint32(),
		AtUnixNanos:      d.Int64(),
		Stats:            d.Opaque(),
	}
}

// GossipDigest summarizes one origin's records as held by a replica:
// every record with Seq <= Low is held (or was held and applied before
// pruning), and Max is the highest sequence seen. Records in (Low,
// Max] may have gaps — a client that failed over mid-stream leaves its
// early records on one replica and its late ones on another — so a
// peer answering a digest sends everything above Low it has;
// duplicates are discarded by the (origin, seq) identity.
type GossipDigest struct {
	Origin string
	Low    uint64
	Max    uint64
}

// maxGossipEntries bounds digest and record list lengths accepted from
// the wire, so a corrupt length cannot balloon an allocation.
const maxGossipEntries = 4096

// GossipRequest is the payload of MsgGossip.
type GossipRequest struct {
	// From is the sending replica's origin ID.
	From string
	// Digest summarizes the sender's log, one entry per origin.
	Digest []GossipDigest
	// Records are records the sender believes the receiver is missing
	// (empty on a first exchange, when the peer's digest is unknown).
	Records []GossipRecord
}

// SizeHint approximates the request's encoded size, for pooled-buffer
// acquisition.
func (m *GossipRequest) SizeHint() int {
	size := xdr.SizeString(len(m.From)) + 8
	for i := range m.Digest {
		size += xdr.SizeString(len(m.Digest[i].Origin)) + 16
	}
	for i := range m.Records {
		size += m.Records[i].sizeHint()
	}
	return size
}

// EncodeInto appends the request to e — the zero-copy path for callers
// encoding straight into a pooled frame buffer.
func (m *GossipRequest) EncodeInto(e *xdr.Encoder) {
	e.PutString(m.From)
	e.PutUint32(uint32(len(m.Digest)))
	for i := range m.Digest {
		e.PutString(m.Digest[i].Origin)
		e.PutUint64(m.Digest[i].Low)
		e.PutUint64(m.Digest[i].Max)
	}
	e.PutUint32(uint32(len(m.Records)))
	for i := range m.Records {
		m.Records[i].encodeInto(e)
	}
}

// Encode serializes the request.
func (m *GossipRequest) Encode() []byte {
	return encodePayload(m.SizeHint(), m.EncodeInto)
}

// DecodeGossipRequest parses a MsgGossip payload.
func DecodeGossipRequest(p []byte) (GossipRequest, error) {
	pd := acquireDecoder(p)
	defer pd.release()
	d := &pd.d
	m := GossipRequest{From: d.String()}
	nd := int(d.Uint32())
	if err := d.Err(); err != nil {
		return m, err
	}
	for i := 0; i < nd && i < maxGossipEntries; i++ {
		m.Digest = append(m.Digest, GossipDigest{
			Origin: d.String(),
			Low:    d.Uint64(),
			Max:    d.Uint64(),
		})
	}
	nr := int(d.Uint32())
	if err := d.Err(); err != nil {
		return m, err
	}
	for i := 0; i < nr && i < maxGossipEntries; i++ {
		m.Records = append(m.Records, decodeGossipRecord(d))
	}
	return m, d.Err()
}

// GossipReply is the payload of MsgGossipOK.
type GossipReply struct {
	// Digest summarizes the receiver's log after applying the request.
	Digest []GossipDigest
	// Records are the records the request's digest showed the sender
	// to be missing.
	Records []GossipRecord
}

// SizeHint approximates the reply's encoded size, for pooled-buffer
// acquisition.
func (m *GossipReply) SizeHint() int {
	size := 8
	for i := range m.Digest {
		size += xdr.SizeString(len(m.Digest[i].Origin)) + 16
	}
	for i := range m.Records {
		size += m.Records[i].sizeHint()
	}
	return size
}

// EncodeInto appends the reply to e — the zero-copy path for callers
// encoding straight into a pooled frame buffer.
func (m *GossipReply) EncodeInto(e *xdr.Encoder) {
	e.PutUint32(uint32(len(m.Digest)))
	for i := range m.Digest {
		e.PutString(m.Digest[i].Origin)
		e.PutUint64(m.Digest[i].Low)
		e.PutUint64(m.Digest[i].Max)
	}
	e.PutUint32(uint32(len(m.Records)))
	for i := range m.Records {
		m.Records[i].encodeInto(e)
	}
}

// Encode serializes the reply.
func (m *GossipReply) Encode() []byte {
	return encodePayload(m.SizeHint(), m.EncodeInto)
}

// DecodeGossipReply parses a MsgGossipOK payload.
func DecodeGossipReply(p []byte) (GossipReply, error) {
	pd := acquireDecoder(p)
	defer pd.release()
	d := &pd.d
	var m GossipReply
	nd := int(d.Uint32())
	if err := d.Err(); err != nil {
		return m, err
	}
	for i := 0; i < nd && i < maxGossipEntries; i++ {
		m.Digest = append(m.Digest, GossipDigest{
			Origin: d.String(),
			Low:    d.Uint64(),
			Max:    d.Uint64(),
		})
	}
	nr := int(d.Uint32())
	if err := d.Err(); err != nil {
		return m, err
	}
	for i := 0; i < nr && i < maxGossipEntries; i++ {
		m.Records = append(m.Records, decodeGossipRecord(d))
	}
	return m, d.Err()
}
