package protocol

import (
	"fmt"
	"io"
	"net"

	"ninf/internal/xdr"
)

// Multiplexed framing (protocol version 2). The lockstep protocol
// (version 1) carries one exchange at a time per connection: the
// client writes a request frame and blocks until the reply frame
// arrives. Version 2 multiplexes many in-flight exchanges over one
// connection by tagging every frame with a client-assigned sequence
// number, so a session layer can pipeline requests and demultiplex
// replies — the request-coalescing shape the paper's §4 multi-client
// measurements call for once per-call connection overhead dominates.
//
// A version-2 frame keeps the 16-byte header (and thus the Buffer
// layout) of version 1 but repacks the second and third words:
//
//	word 0  Magic
//	word 1  MuxVersion<<16 | MsgType   (type must fit 16 bits)
//	word 2  Seq
//	word 3  payload length
//
// Version 1 peers never see version-2 frames: both sides speak
// lockstep framing until a MsgHello/MsgHelloOK exchange negotiates the
// upgrade, and peers that predate MsgHello answer it with MsgError,
// which the session layer takes as "legacy, stay lockstep".
const (
	// MuxVersion is the multiplexed protocol version negotiated by
	// MsgHello.
	MuxVersion = 2

	// maxMuxType bounds message types representable in a mux header's
	// packed version/type word.
	maxMuxType = 1<<16 - 1
)

// Hello frames, spoken in version-1 framing before any upgrade.
const (
	// MsgHello asks the peer to switch the connection to the highest
	// protocol version both sides speak.
	MsgHello MsgType = iota + 120
	// MsgHelloOK accepts: its payload names the chosen version, and
	// every subsequent frame on the connection uses that framing.
	MsgHelloOK
)

// HelloRequest is the payload of MsgHello.
type HelloRequest struct {
	// MaxVersion is the highest protocol version the sender speaks.
	MaxVersion uint32
}

// Encode serializes the request.
func (m *HelloRequest) Encode() []byte {
	return encodePayload(4, func(e *xdr.Encoder) {
		e.PutUint32(m.MaxVersion)
	})
}

// DecodeHelloRequest parses a MsgHello payload.
func DecodeHelloRequest(p []byte) (HelloRequest, error) {
	pd := acquireDecoder(p)
	m := HelloRequest{MaxVersion: pd.d.Uint32()}
	err := pd.d.Err()
	pd.release()
	return m, err
}

// HelloFlagArgCache in HelloReply flags advertises that the server
// runs an enabled argument cache, so a level-4 client may send digest
// references and retain requests. Absent (or a cache-less server), a
// level-4 connection behaves bit-identically to level 3.
const HelloFlagArgCache uint32 = 1 << 0

// HelloReply is the payload of MsgHelloOK.
type HelloReply struct {
	// Version is the protocol version the connection switches to.
	Version uint32
	// Flags advertises optional server capabilities at the negotiated
	// version. It rides as an optional trailing word: pre-cache servers
	// never send it and pre-cache clients never read it.
	Flags uint32
	// Epoch is the server's incarnation epoch, minted per start by
	// crash-recovery journal servers (see internal/server/journal). It
	// rides as a second optional trailer after Flags — journal-less
	// servers omit it (keeping their byte stream exactly as before) and
	// pre-epoch clients never read it. A client that sees the epoch
	// change across reconnects knows the server restarted: warm-digest
	// sets and data handles minted against the old incarnation are
	// stale.
	Epoch uint64
}

// Encode serializes the reply.
func (m *HelloReply) Encode() []byte {
	// The epoch trailer is positional after Flags, so a nonzero epoch
	// forces the Flags word onto the wire even when zero.
	size := 4
	if m.Flags != 0 || m.Epoch != 0 {
		size += 4
	}
	if m.Epoch != 0 {
		size += 8
	}
	return encodePayload(size, func(e *xdr.Encoder) {
		e.PutUint32(m.Version)
		if m.Flags != 0 || m.Epoch != 0 {
			e.PutUint32(m.Flags)
		}
		if m.Epoch != 0 {
			e.PutUint64(m.Epoch)
		}
	})
}

// DecodeHelloReply parses a MsgHelloOK payload.
func DecodeHelloReply(p []byte) (HelloReply, error) {
	pd := acquireDecoder(p)
	m := HelloReply{Version: pd.d.Uint32()}
	if pd.d.Err() == nil && len(p)-int(pd.d.Len()) >= 4 {
		m.Flags = pd.d.Uint32()
	}
	if pd.d.Err() == nil && len(p)-int(pd.d.Len()) >= 8 {
		m.Epoch = pd.d.Uint64()
	}
	err := pd.d.Err()
	pd.release()
	return m, err
}

// StampMux writes a version-2 header for the buffer's current payload
// into its reserved prefix. The buffer is then a complete wire frame
// (Frame) ready for WriteStampedFrames or a direct write.
func StampMux(fb *Buffer, t MsgType, seq uint32) {
	putU32(fb.b[0:], Magic)
	putU32(fb.b[4:], MuxVersion<<16|uint32(t)&maxMuxType)
	putU32(fb.b[8:], seq)
	putU32(fb.b[12:], uint32(fb.Len()))
}

// Frame returns the assembled wire frame — header plus payload — of a
// stamped buffer. The slice aliases the buffer and dies with Release;
// it exists so session layers can gather several stamped frames into
// one vectored write.
func (fb *Buffer) Frame() []byte { return fb.b }

// BufferFor copies an already-encoded payload into a pooled buffer, so
// []byte-producing encode paths can feed buffer-consuming writers.
func BufferFor(payload []byte) *Buffer {
	fb := AcquireBuffer(len(payload))
	fb.b = append(fb.b, payload...)
	return fb
}

// WriteMuxFrameBuf stamps a version-2 header and writes the frame with
// a single Write call.
func WriteMuxFrameBuf(w io.Writer, t MsgType, seq uint32, fb *Buffer) error {
	StampMux(fb, t, seq)
	if _, err := w.Write(fb.b); err != nil {
		return fmt.Errorf("protocol: write mux frame: %w", err)
	}
	return nil
}

// WriteMuxFrame writes one version-2 frame from a plain payload slice,
// header and payload in a single vectored write.
func WriteMuxFrame(w io.Writer, t MsgType, seq uint32, payload []byte) error {
	fw := frameWriterPool.Get().(*frameWriter)
	putU32(fw.hdr[0:], Magic)
	putU32(fw.hdr[4:], MuxVersion<<16|uint32(t)&maxMuxType)
	putU32(fw.hdr[8:], seq)
	putU32(fw.hdr[12:], uint32(len(payload)))
	var err error
	if len(payload) == 0 {
		_, err = w.Write(fw.hdr[:])
	} else {
		fw.vec = append(net.Buffers(fw.arr[:0]), fw.hdr[:], payload)
		_, err = fw.vec.WriteTo(w)
		fw.arr[0], fw.arr[1] = nil, nil
	}
	frameWriterPool.Put(fw)
	if err != nil {
		return fmt.Errorf("protocol: write mux frame: %w", err)
	}
	return nil
}

// WriteStampedFrames gathers already-stamped frames into a single
// vectored write (writev on TCP connections), so a burst of queued
// small requests costs one syscall instead of one each. The caller
// retains ownership of the buffers and releases them afterwards.
func WriteStampedFrames(w io.Writer, fbs []*Buffer) error {
	if len(fbs) == 0 {
		return nil
	}
	if len(fbs) == 1 {
		if _, err := w.Write(fbs[0].b); err != nil {
			return fmt.Errorf("protocol: write mux frames: %w", err)
		}
		return nil
	}
	vec := make(net.Buffers, len(fbs))
	for i, fb := range fbs {
		vec[i] = fb.b
	}
	if _, err := vec.WriteTo(w); err != nil {
		return fmt.Errorf("protocol: write mux frames: %w", err)
	}
	return nil
}

// ReadMuxFrameBuf reads one version-2 frame into a pooled buffer
// (maxPayload 0 means DefaultMaxPayload). The caller owns the buffer
// and must Release it after decoding. A clean EOF between frames is
// returned as io.EOF undecorated.
func ReadMuxFrameBuf(r io.Reader, maxPayload int) (MsgType, uint32, *Buffer, error) {
	t, seq, n, err := ReadMuxHeader(r, maxPayload)
	if err != nil {
		return 0, 0, nil, err
	}
	fb, err := ReadMuxPayload(r, n)
	if err != nil {
		return 0, 0, nil, err
	}
	return t, seq, fb, nil
}
