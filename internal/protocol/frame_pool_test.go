package protocol

import (
	"bytes"
	"io"
	"testing"
)

func TestPoolClassRounding(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{0, 0}, {1, 0}, {1024, 0}, {1025, 1}, {2048, 1},
		{64 << 10, 6}, {(64 << 10) + 1, 7},
		{64 << 20, maxPoolBits - minPoolBits},
		{(64 << 20) + 1, -1},
	}
	for _, c := range cases {
		if got := poolClassFor(c.n); got != c.class {
			t.Errorf("poolClassFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
	// Capacity released at class k must come back from an acquire of
	// the same class.
	if got := poolClassOf(2048); got != 1 {
		t.Errorf("poolClassOf(2048) = %d, want 1", got)
	}
	if got := poolClassOf(3000); got != 1 {
		t.Errorf("poolClassOf(3000) = %d, want 1 (floor)", got)
	}
	if got := poolClassOf(512); got != -1 {
		t.Errorf("poolClassOf(512) = %d, want -1 (below smallest class)", got)
	}
}

func TestBufferLifecycle(t *testing.T) {
	fb := AcquireBuffer(100)
	if fb.Len() != 0 {
		t.Errorf("fresh buffer Len = %d", fb.Len())
	}
	fb.Write([]byte("hello"))
	if fb.Len() != 5 || string(fb.Payload()) != "hello" {
		t.Errorf("after write: len=%d payload=%q", fb.Len(), fb.Payload())
	}
	fb.Reset()
	if fb.Len() != 0 {
		t.Errorf("after reset: len=%d", fb.Len())
	}
	e := fb.Encoder()
	e.PutString("xdr")
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if fb.Len() != 8 { // 4-byte length + "xdr" + 1 pad
		t.Errorf("encoded len = %d, want 8", fb.Len())
	}
	fb.Release()
	fb.Release() // second release must be a no-op, not a double-put
}

func TestWriteReadFrameBuf(t *testing.T) {
	fb := AcquireBuffer(64)
	payload := []byte("pooled frame payload")
	fb.Write(payload)

	var wire bytes.Buffer
	if err := WriteFrameBuf(&wire, MsgCall, fb); err != nil {
		t.Fatal(err)
	}
	fb.Release()
	if wire.Len() != headerSize+len(payload) {
		t.Errorf("wire length = %d, want %d", wire.Len(), headerSize+len(payload))
	}

	// The pooled reader must interoperate with the legacy writer and
	// vice versa: both speak the same frame format.
	typ, rfb, err := ReadFrameBuf(bytes.NewReader(wire.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rfb.Release()
	if typ != MsgCall || !bytes.Equal(rfb.Payload(), payload) {
		t.Errorf("round trip: type=%v payload=%q", typ, rfb.Payload())
	}

	typ2, p2, err := ReadFrame(bytes.NewReader(wire.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ2 != MsgCall || !bytes.Equal(p2, payload) {
		t.Errorf("legacy read of pooled frame: type=%v payload=%q", typ2, p2)
	}
}

func TestReadFrameBufRespectsMaxPayload(t *testing.T) {
	var wire bytes.Buffer
	if err := WriteFrame(&wire, MsgCall, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrameBuf(bytes.NewReader(wire.Bytes()), 100); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestReadFrameBufTruncated(t *testing.T) {
	var wire bytes.Buffer
	if err := WriteFrame(&wire, MsgCall, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	trunc := wire.Bytes()[:wire.Len()-10]
	if _, _, err := ReadFrameBuf(bytes.NewReader(trunc), 0); err == nil {
		t.Error("truncated frame accepted")
	} else if err == io.EOF {
		t.Errorf("truncated payload should not be plain EOF, got %v", err)
	}
}

func TestBufferGrowsPastHint(t *testing.T) {
	fb := AcquireBuffer(8)
	defer fb.Release()
	big := make([]byte, 100<<10)
	fb.Write(big)
	if fb.Len() != len(big) {
		t.Errorf("len = %d, want %d", fb.Len(), len(big))
	}
	var wire bytes.Buffer
	if err := WriteFrameBuf(&wire, MsgSubmit, fb); err != nil {
		t.Fatal(err)
	}
	typ, p, err := ReadFrame(bytes.NewReader(wire.Bytes()), 0)
	if err != nil || typ != MsgSubmit || len(p) != len(big) {
		t.Errorf("grown buffer round trip: %v %v len=%d", err, typ, len(p))
	}
}

func TestAcquireReusesReleasedCapacity(t *testing.T) {
	// Not guaranteed by sync.Pool in general, but single-goroutine
	// acquire/release of the same class reliably round-trips through
	// the private pool cache; regression-guards the recycle wiring.
	fb := AcquireBuffer(2000)
	fb.Write(make([]byte, 2000))
	ptr := &fb.b[0]
	fb.Release()
	fb2 := AcquireBuffer(1500) // same 2 KiB class
	defer fb2.Release()
	if &fb2.b[0] != ptr {
		t.Skip("pool did not return the same backing array (GC ran?)")
	}
	if fb2.Len() != 0 {
		t.Errorf("reused buffer not reset: len = %d", fb2.Len())
	}
}
