package protocol

import (
	"reflect"
	"testing"
)

// normStats maps empty Stats blobs to nil so round-trip comparisons
// don't distinguish nil from zero-length.
func normStats(recs []GossipRecord) {
	for i := range recs {
		if len(recs[i].Stats) == 0 {
			recs[i].Stats = nil
		}
	}
}

func TestGossipRequestRoundTrip(t *testing.T) {
	st := Stats{Hostname: "s0", PEs: 4, LoadAverage: 1.5}
	in := GossipRequest{
		From: "meta-a",
		Digest: []GossipDigest{
			{Origin: "meta-a", Low: 10, Max: 10},
			{Origin: "client-1", Low: 3, Max: 7},
		},
		Records: []GossipRecord{
			{Origin: "meta-a", Seq: 9, Kind: GossipRegister, Name: "s0", Addr: "127.0.0.1:3000", Power: 100},
			{Origin: "client-1", Seq: 7, Kind: GossipObserve, Name: "s0", Bytes: 512, Nanos: 1e6, Failed: true},
			{Origin: "client-2", Seq: 1, Kind: GossipObserve, Name: "s0", Overloaded: true, RetryAfterMillis: 250},
			{Origin: "meta-a", Seq: 10, Kind: GossipStats, Name: "s0", AtUnixNanos: 12345, Stats: st.Encode()},
		},
	}
	out, err := DecodeGossipRequest(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	normStats(out.Records)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n got %+v\nwant %+v", out, in)
	}
	gotStats, err := DecodeStats(out.Records[3].Stats)
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != st {
		t.Errorf("nested stats = %+v, want %+v", gotStats, st)
	}
}

func TestGossipReplyRoundTrip(t *testing.T) {
	in := GossipReply{
		Digest: []GossipDigest{{Origin: "meta-b", Low: 4, Max: 9}},
		Records: []GossipRecord{
			{Origin: "meta-b", Seq: 5, Kind: GossipDeregister, Name: "s1"},
		},
	}
	out, err := DecodeGossipReply(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	normStats(out.Records)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n got %+v\nwant %+v", out, in)
	}
}

func TestGossipDecodeTruncated(t *testing.T) {
	in := GossipRequest{
		From:    "meta-a",
		Records: []GossipRecord{{Origin: "meta-a", Seq: 1, Kind: GossipRegister, Name: "s0", Addr: "a:1"}},
	}
	p := in.Encode()
	for cut := 1; cut < len(p); cut++ {
		if _, err := DecodeGossipRequest(p[:cut]); err == nil {
			// A prefix that still parses completely must at least not
			// panic; most cuts land mid-field and must error.
			continue
		}
	}
}
