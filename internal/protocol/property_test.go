package protocol

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ninf/internal/idl"
)

// randomInterface builds a random but valid Ninf interface: a few
// scalar int inputs first (so dimension expressions have referents),
// then a mix of scalars and arrays in all modes.
func randomInterface(r *rand.Rand) *idl.Info {
	in := &idl.Info{Name: "r", Language: "go", Target: "r"}
	nScalars := 1 + r.Intn(3)
	var scalarNames []string
	for i := 0; i < nScalars; i++ {
		name := fmt.Sprintf("s%d", i)
		in.Params = append(in.Params, idl.Param{Name: name, Mode: idl.In, Type: idl.Int})
		scalarNames = append(scalarNames, name)
	}
	nRest := r.Intn(5)
	for i := 0; i < nRest; i++ {
		p := idl.Param{
			Name: fmt.Sprintf("a%d", i),
			Mode: []idl.Mode{idl.In, idl.Out, idl.InOut}[r.Intn(3)],
			Type: []idl.Type{idl.Int, idl.Double, idl.Float}[r.Intn(3)],
		}
		dims := 1 + r.Intn(2)
		for d := 0; d < dims; d++ {
			ref := scalarNames[r.Intn(len(scalarNames))]
			var e idl.Expr = idl.Ref(ref)
			if r.Intn(2) == 0 {
				e = &idl.BinOp{Op: idl.OpAdd, L: e, R: idl.Num(int64(r.Intn(3)))}
			}
			p.Dims = append(p.Dims, e)
		}
		in.Params = append(in.Params, p)
	}
	if err := idl.Check(in); err != nil {
		panic(err)
	}
	return in
}

// randomArgs builds a matching argument vector with small scalar
// values so arrays stay tiny.
func randomArgs(r *rand.Rand, in *idl.Info) []idl.Value {
	args := make([]idl.Value, len(in.Params))
	for i := range in.Params {
		p := &in.Params[i]
		if p.IsScalar() && p.Type == idl.Int {
			args[i] = int64(1 + r.Intn(4))
		}
	}
	counts, err := in.DimSizes(args)
	if err != nil {
		panic(err)
	}
	for i := range in.Params {
		p := &in.Params[i]
		if p.IsScalar() || !p.Mode.Ships(false) {
			continue
		}
		switch p.Type {
		case idl.Int:
			v := make([]int64, counts[i])
			for j := range v {
				v[j] = r.Int63n(1000) - 500
			}
			args[i] = v
		case idl.Double:
			v := make([]float64, counts[i])
			for j := range v {
				v[j] = r.NormFloat64()
			}
			args[i] = v
		case idl.Float:
			v := make([]float32, counts[i])
			for j := range v {
				v[j] = float32(r.NormFloat64())
			}
			args[i] = v
		}
	}
	return args
}

// TestRandomInterfaceRoundTrips is the protocol's end-to-end property:
// for random interfaces and arguments, the full server-side pipeline
// (encode request → decode name → decode args → encode reply → decode
// reply) preserves every shipped value and allocates out arguments at
// the right sizes.
func TestRandomInterfaceRoundTrips(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		info := randomInterface(r)
		args := randomArgs(r, info)

		payload, err := EncodeCallRequest(info, &CallRequest{Name: info.Name, Args: args})
		if err != nil {
			t.Fatalf("trial %d: encode: %v\n%s", trial, err, info)
		}
		name, rest, err := DecodeCallName(payload)
		if err != nil || name != info.Name {
			t.Fatalf("trial %d: name: %v %q", trial, err, name)
		}
		decoded, err := DecodeCallArgs(info, rest)
		if err != nil {
			t.Fatalf("trial %d: decode args: %v\n%s", trial, err, info)
		}
		counts, err := info.DimSizes(args)
		if err != nil {
			t.Fatal(err)
		}
		for i := range info.Params {
			p := &info.Params[i]
			if p.Mode.Ships(false) {
				if !reflect.DeepEqual(decoded[i], args[i]) {
					t.Fatalf("trial %d: in-arg %s corrupted\n%s", trial, p.Name, info)
				}
			} else if !p.IsScalar() {
				if lv := reflect.ValueOf(decoded[i]).Len(); lv != counts[i] {
					t.Fatalf("trial %d: out-arg %s allocated %d, want %d", trial, p.Name, lv, counts[i])
				}
			}
		}

		// Server "executes" by filling out args with recognizable
		// values, then replies.
		for i := range info.Params {
			p := &info.Params[i]
			if !p.Mode.Ships(true) {
				continue
			}
			switch v := decoded[i].(type) {
			case []int64:
				for j := range v {
					v[j] = int64(i*1000 + j)
				}
			case []float64:
				for j := range v {
					v[j] = float64(i) + float64(j)/16
				}
			case []float32:
				for j := range v {
					v[j] = float32(i)
				}
			case int64:
				decoded[i] = int64(i)
			case float64:
				decoded[i] = float64(i)
			case float32:
				decoded[i] = float32(i)
			}
		}
		reply, err := EncodeCallReply(info, Timings{Enqueue: 1, Dequeue: 2, Complete: 3}, decoded)
		if err != nil {
			t.Fatalf("trial %d: encode reply: %v", trial, err)
		}
		tm, out, err := DecodeCallReply(info, args, reply)
		if err != nil {
			t.Fatalf("trial %d: decode reply: %v", trial, err)
		}
		if tm.Enqueue != 1 || tm.Complete != 3 {
			t.Fatalf("trial %d: timings %+v", trial, tm)
		}
		for i := range info.Params {
			p := &info.Params[i]
			if !p.Mode.Ships(true) {
				if out[i] != nil {
					t.Fatalf("trial %d: non-out %s present in reply", trial, p.Name)
				}
				continue
			}
			if !reflect.DeepEqual(out[i], decoded[i]) {
				t.Fatalf("trial %d: out-arg %s corrupted", trial, p.Name)
			}
		}
	}
}
