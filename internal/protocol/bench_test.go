package protocol

import (
	"bytes"
	"io"
	"testing"

	"ninf/internal/idl"
)

// benchInfo is a dmmul-shaped interface used by the marshalling
// benchmarks.
func benchInfo(b *testing.B) *idl.Info {
	b.Helper()
	info, err := idl.ParseOne(`
Define dmmul(mode_in int n, mode_in double A[n][n], mode_in double B[n][n], mode_out double C[n][n])
    Complexity 2*n^3 Calls "go" dmmul(n, A, B, C);`)
	if err != nil {
		b.Fatal(err)
	}
	return info
}

func BenchmarkEncodeCallRequest(b *testing.B) {
	info := benchInfo(b)
	n := 128
	a := make([]float64, n*n)
	bb := make([]float64, n*n)
	args := []idl.Value{int64(n), a, bb, nil}
	b.SetBytes(int64(2 * 8 * n * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeCallRequest(info, &CallRequest{Name: "dmmul", Args: args}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeCallRequestBuf is the pooled counterpart of
// BenchmarkEncodeCallRequest: the frame buffer is recycled, so the
// steady state runs at zero allocations per call.
func BenchmarkEncodeCallRequestBuf(b *testing.B) {
	info := benchInfo(b)
	n := 128
	a := make([]float64, n*n)
	bb := make([]float64, n*n)
	args := []idl.Value{int64(n), a, bb, nil}
	b.SetBytes(int64(2 * 8 * n * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb, err := EncodeCallRequestBuf(info, &CallRequest{Name: "dmmul", Args: args})
		if err != nil {
			b.Fatal(err)
		}
		fb.Release()
	}
}

// discardWriter swallows frames without retaining them, isolating the
// framing layer's own cost from the transport.
type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkFrameRoundTrip writes a call-request frame and reads it
// back through the pooled framing path (WriteFrameBuf/ReadFrameBuf),
// the code path a loopback Ninf_call exercises on both sides.
func BenchmarkFrameRoundTrip(b *testing.B) {
	info := benchInfo(b)
	n := 128
	args := []idl.Value{int64(n), make([]float64, n*n), make([]float64, n*n), nil}
	sizes := []struct {
		name string
		run  func(b *testing.B)
	}{
		{"pooled", func(b *testing.B) {
			var wire bytes.Buffer
			for i := 0; i < b.N; i++ {
				fb, err := EncodeCallRequestBuf(info, &CallRequest{Name: "dmmul", Args: args})
				if err != nil {
					b.Fatal(err)
				}
				wire.Reset()
				if err := WriteFrameBuf(&wire, MsgCall, fb); err != nil {
					b.Fatal(err)
				}
				fb.Release()
				t, rfb, err := ReadFrameBuf(&wire, 0)
				if err != nil || t != MsgCall {
					b.Fatalf("read: %v (%v)", err, t)
				}
				rfb.Release()
			}
		}},
		{"legacy", func(b *testing.B) {
			var wire bytes.Buffer
			for i := 0; i < b.N; i++ {
				p, err := EncodeCallRequest(info, &CallRequest{Name: "dmmul", Args: args})
				if err != nil {
					b.Fatal(err)
				}
				wire.Reset()
				if err := WriteFrame(&wire, MsgCall, p); err != nil {
					b.Fatal(err)
				}
				t, rp, err := ReadFrame(&wire, 0)
				if err != nil || t != MsgCall || rp == nil {
					b.Fatalf("read: %v (%v)", err, t)
				}
			}
		}},
	}
	for _, s := range sizes {
		b.Run(s.name, func(b *testing.B) {
			b.SetBytes(int64(2*8*n*n + headerSize))
			b.ReportAllocs()
			s.run(b)
		})
	}
}

// BenchmarkWriteFrame measures the header+payload write alone: the
// pooled path issues one contiguous write, the legacy path a vectored
// one; neither allocates.
func BenchmarkWriteFrame(b *testing.B) {
	payload := make([]byte, 64<<10)
	b.Run("pooled", func(b *testing.B) {
		fb := AcquireBuffer(len(payload))
		fb.Write(payload)
		defer fb.Release()
		b.SetBytes(int64(len(payload) + headerSize))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := WriteFrameBuf(io.Discard, MsgCall, fb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("legacy", func(b *testing.B) {
		b.SetBytes(int64(len(payload) + headerSize))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := WriteFrame(discardWriter{}, MsgCall, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDecodeCallArgs(b *testing.B) {
	info := benchInfo(b)
	n := 128
	args := []idl.Value{int64(n), make([]float64, n*n), make([]float64, n*n), nil}
	p, err := EncodeCallRequest(info, &CallRequest{Name: "dmmul", Args: args})
	if err != nil {
		b.Fatal(err)
	}
	_, rest, err := DecodeCallName(p)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(rest)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeCallArgs(info, rest); err != nil {
			b.Fatal(err)
		}
	}
}
