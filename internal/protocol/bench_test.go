package protocol

import (
	"testing"

	"ninf/internal/idl"
)

// benchInfo is a dmmul-shaped interface used by the marshalling
// benchmarks.
func benchInfo(b *testing.B) *idl.Info {
	b.Helper()
	info, err := idl.ParseOne(`
Define dmmul(mode_in int n, mode_in double A[n][n], mode_in double B[n][n], mode_out double C[n][n])
    Complexity 2*n^3 Calls "go" dmmul(n, A, B, C);`)
	if err != nil {
		b.Fatal(err)
	}
	return info
}

func BenchmarkEncodeCallRequest(b *testing.B) {
	info := benchInfo(b)
	n := 128
	a := make([]float64, n*n)
	bb := make([]float64, n*n)
	args := []idl.Value{int64(n), a, bb, nil}
	b.SetBytes(int64(2 * 8 * n * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeCallRequest(info, &CallRequest{Name: "dmmul", Args: args}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeCallArgs(b *testing.B) {
	info := benchInfo(b)
	n := 128
	args := []idl.Value{int64(n), make([]float64, n*n), make([]float64, n*n), nil}
	p, err := EncodeCallRequest(info, &CallRequest{Name: "dmmul", Args: args})
	if err != nil {
		b.Fatal(err)
	}
	_, rest, err := DecodeCallName(p)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(rest)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeCallArgs(info, rest); err != nil {
			b.Fatal(err)
		}
	}
}
