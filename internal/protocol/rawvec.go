package protocol

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// Raw vector views for the chunked bulk path. XDR ships arrays
// big-endian, which forces the encoder to copy every element through a
// byte-swapping loop — exactly the grow-and-copy cost the bulk frames
// exist to avoid. A bulk segment instead carries the caller's slice
// memory verbatim, in the sender's native byte order, with the order
// recorded in the MsgBulkBegin flags; the receiver memmoves when the
// orders match and swaps per element when they do not ("receiver makes
// it right"). Monolithic frames never use these views, so v1 peers and
// pre-bulk mux peers only ever see canonical XDR.

// hostLittle reports this machine's byte order, probed once.
var hostLittle = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// f64Bytes views a []float64 as its raw native-order bytes. The view
// aliases v: the caller must not let it outlive v or mutate v while the
// view is referenced by an in-flight write.
func f64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*8)
}

// f32Bytes views a []float32 as its raw native-order bytes.
func f32Bytes(v []float32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*4)
}

// i64Bytes views a []int64 as its raw native-order bytes.
func i64Bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*8)
}

// decodeRawFloat64s materializes doubles from a bulk segment holding
// raw element bytes in the sender's order (le). Matching orders cost
// one memmove; a foreign order decodes element-wise.
func decodeRawFloat64s(src []byte, le bool) []float64 {
	n := len(src) / 8
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if le == hostLittle {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(out))), n*8), src)
		return out
	}
	ord := foreignOrder(le)
	for i := range out {
		out[i] = math.Float64frombits(ord.Uint64(src[i*8:]))
	}
	return out
}

// decodeRawFloat32s materializes single floats from a bulk segment.
func decodeRawFloat32s(src []byte, le bool) []float32 {
	n := len(src) / 4
	out := make([]float32, n)
	if n == 0 {
		return out
	}
	if le == hostLittle {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(out))), n*4), src)
		return out
	}
	ord := foreignOrder(le)
	for i := range out {
		out[i] = math.Float32frombits(ord.Uint32(src[i*4:]))
	}
	return out
}

// decodeRawInt64s materializes 64-bit integers from a bulk segment.
func decodeRawInt64s(src []byte, le bool) []int64 {
	n := len(src) / 8
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	if le == hostLittle {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(out))), n*8), src)
		return out
	}
	ord := foreignOrder(le)
	for i := range out {
		out[i] = int64(ord.Uint64(src[i*8:]))
	}
	return out
}

// foreignOrder returns the binary.ByteOrder for segment data whose
// sender order (le) differs from the host's.
func foreignOrder(le bool) binary.ByteOrder {
	if le {
		return binary.LittleEndian
	}
	return binary.BigEndian
}
