package idl

import (
	"bytes"
	"testing"
)

// FuzzParse checks the parser never panics and that anything it
// accepts survives String→reparse and wire round trips.
func FuzzParse(f *testing.F) {
	f.Add(dmmulIDL)
	f.Add(linpackIDL)
	f.Add(`Define f(mode_in int n) Calls "C" f(n);`)
	f.Add(`Define f(mode_in int n, mode_out double v[n*n+2]) Complexity 2^n Calls "go" f(n, v);`)
	f.Add(`Define f() Calls "x" f();`)
	f.Add("Define f(mode_in int n) /* unterminated")
	f.Add("Define f(mode_in int \xff) Calls \"C\" f();")
	f.Add(`Define 日本(mode_in int n) Calls "C" 日本(n);`)
	f.Fuzz(func(t *testing.T, src string) {
		infos, err := Parse(src)
		if err != nil {
			return
		}
		for _, in := range infos {
			// Accepted IDL must reparse from its String form…
			re, err := ParseOne(in.String())
			if err != nil {
				t.Fatalf("String() does not reparse: %v\n%s", err, in.String())
			}
			if re.Name != in.Name || len(re.Params) != len(in.Params) {
				t.Fatalf("reparse changed interface: %v vs %v", re, in)
			}
			// …and round-trip the wire form.
			var buf bytes.Buffer
			if err := Encode(&buf, in); err != nil {
				t.Fatalf("encode: %v", err)
			}
			if _, err := Decode(&buf); err != nil {
				t.Fatalf("decode: %v", err)
			}
		}
	})
}

// FuzzDecode checks the wire decoder never panics on arbitrary bytes.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	info, _ := ParseOne(dmmulIDL)
	_ = Encode(&buf, info)
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := Decode(bytes.NewReader(data))
		if err == nil && info.Name == "" {
			t.Fatal("decoder accepted an interface with no name")
		}
	})
}
