package idl

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind classifies lexical tokens of the IDL.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokSemi
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokCaret
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokPercent:
		return "'%'"
	case tokCaret:
		return "'^'"
	default:
		return fmt.Sprintf("tokKind(%d)", int(k))
	}
}

// A token is one lexical unit with its source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

// A SyntaxError describes a lexical or grammatical error with its
// position in the IDL source.
type SyntaxError struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("idl: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// lexer scans IDL source into tokens. Comments run from // or # to end
// of line; /* */ block comments are also accepted.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return r
}

func (l *lexer) advance() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(l.src[l.pos:])
	l.pos += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() error {
	for {
		r := l.peek()
		switch {
		case r == -1:
			return nil
		case unicode.IsSpace(r):
			l.advance()
		case r == '#':
			for l.peek() != '\n' && l.peek() != -1 {
				l.advance()
			}
		case r == '/' && strings.HasPrefix(l.src[l.pos:], "//"):
			for l.peek() != '\n' && l.peek() != -1 {
				l.advance()
			}
		case r == '/' && strings.HasPrefix(l.src[l.pos:], "/*"):
			start := *l
			l.advance()
			l.advance()
			for !strings.HasPrefix(l.src[l.pos:], "*/") {
				if l.peek() == -1 {
					return start.errorf("unterminated block comment")
				}
				l.advance()
			}
			l.advance()
			l.advance()
		default:
			return nil
		}
	}
}

// hexDigits consumes exactly n hex digits and returns their value.
func (l *lexer) hexDigits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		r := l.advance()
		var d uint32
		switch {
		case r >= '0' && r <= '9':
			d = uint32(r - '0')
		case r >= 'a' && r <= 'f':
			d = uint32(r-'a') + 10
		case r >= 'A' && r <= 'F':
			d = uint32(r-'A') + 10
		default:
			return 0, l.errorf("invalid hex digit %q in escape", r)
		}
		v = v<<4 | d
	}
	return v, nil
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	tok := token{line: l.line, col: l.col}
	r := l.peek()
	switch {
	case r == -1:
		tok.kind = tokEOF
		return tok, nil
	case r == '_' || unicode.IsLetter(r):
		start := l.pos
		for {
			r := l.peek()
			if r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) {
				l.advance()
				continue
			}
			break
		}
		tok.kind = tokIdent
		tok.text = l.src[start:l.pos]
		return tok, nil
	case unicode.IsDigit(r):
		start := l.pos
		for unicode.IsDigit(l.peek()) {
			l.advance()
		}
		tok.kind = tokNumber
		tok.text = l.src[start:l.pos]
		return tok, nil
	case r == '"':
		l.advance()
		var sb strings.Builder
		for {
			r := l.advance()
			switch r {
			case -1, '\n':
				return token{}, &SyntaxError{Line: tok.line, Col: tok.col, Msg: "unterminated string literal"}
			case '\\':
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				case 'v':
					sb.WriteByte('\v')
				case 'f':
					sb.WriteByte('\f')
				case 'a':
					sb.WriteByte('\a')
				case 'b':
					sb.WriteByte('\b')
				case '0':
					sb.WriteByte(0)
				case '"', '\\', '\'':
					sb.WriteRune(esc)
				case 'x':
					v, err := l.hexDigits(2)
					if err != nil {
						return token{}, err
					}
					sb.WriteByte(byte(v))
				case 'u':
					v, err := l.hexDigits(4)
					if err != nil {
						return token{}, err
					}
					sb.WriteRune(rune(v))
				case 'U':
					v, err := l.hexDigits(8)
					if err != nil {
						return token{}, err
					}
					sb.WriteRune(rune(v))
				default:
					return token{}, l.errorf("unknown escape \\%c", esc)
				}
			case '"':
				tok.kind = tokString
				tok.text = sb.String()
				return tok, nil
			default:
				sb.WriteRune(r)
			}
		}
	}
	l.advance()
	switch r {
	case '(':
		tok.kind = tokLParen
	case ')':
		tok.kind = tokRParen
	case '[':
		tok.kind = tokLBracket
	case ']':
		tok.kind = tokRBracket
	case ',':
		tok.kind = tokComma
	case ';':
		tok.kind = tokSemi
	case '+':
		tok.kind = tokPlus
	case '-':
		tok.kind = tokMinus
	case '*':
		tok.kind = tokStar
	case '/':
		tok.kind = tokSlash
	case '%':
		tok.kind = tokPercent
	case '^':
		tok.kind = tokCaret
	default:
		return token{}, &SyntaxError{Line: tok.line, Col: tok.col, Msg: fmt.Sprintf("unexpected character %q", r)}
	}
	tok.text = string(r)
	return tok, nil
}
