package idl

import (
	"fmt"
	"io"

	"ninf/internal/xdr"
)

// Wire form of an Info. This is what a Ninf server returns in the first
// stage of the two-stage RPC: a self-contained description the client
// interprets to marshal the call, with dimension and complexity
// expressions lowered to stack-machine bytecode (see expr.go).
//
// Layout (all XDR):
//
//	string  name
//	string  description
//	string  required
//	string  language
//	string  target
//	uint32  nTargetArgs, then that many strings
//	uint32  nParams, then per param:
//	    string  name
//	    uint32  mode
//	    uint32  type
//	    uint32  nDims, then per dim: opaque bytecode
//	bool    hasComplexity, then: opaque bytecode
const wireVersion = 1

// Encode writes the interface description to w in wire form.
func Encode(w io.Writer, in *Info) error {
	nameToIndex := make(map[string]int, len(in.Params))
	for i := range in.Params {
		nameToIndex[in.Params[i].Name] = i
	}

	e := xdr.NewEncoder(w)
	e.PutUint32(wireVersion)
	e.PutString(in.Name)
	e.PutString(in.Description)
	e.PutString(in.Required)
	e.PutString(in.Language)
	e.PutString(in.Target)
	e.PutUint32(uint32(len(in.TargetArgs)))
	for _, a := range in.TargetArgs {
		e.PutString(a)
	}
	e.PutUint32(uint32(len(in.Params)))
	for i := range in.Params {
		p := &in.Params[i]
		e.PutString(p.Name)
		e.PutUint32(uint32(p.Mode))
		e.PutUint32(uint32(p.Type))
		e.PutUint32(uint32(len(p.Dims)))
		for _, d := range p.Dims {
			code, err := CompileExpr(d, nameToIndex)
			if err != nil {
				return fmt.Errorf("idl: encode %s: %w", in.Name, err)
			}
			e.PutOpaque(code)
		}
	}
	if in.Complexity != nil {
		e.PutBool(true)
		code, err := CompileExpr(in.Complexity, nameToIndex)
		if err != nil {
			return fmt.Errorf("idl: encode %s: %w", in.Name, err)
		}
		e.PutOpaque(code)
	} else {
		e.PutBool(false)
	}
	return e.Err()
}

// Decode reads a wire-form interface description. The reconstructed
// Info has expression trees rebuilt from the bytecode, so it satisfies
// the same invariants as a parsed one (Check is re-run).
func Decode(r io.Reader) (*Info, error) {
	d := xdr.NewDecoder(r)
	if v := d.Uint32(); d.Err() == nil && v != wireVersion {
		return nil, fmt.Errorf("idl: unsupported wire version %d", v)
	}
	in := &Info{
		Name:        d.String(),
		Description: d.String(),
		Required:    d.String(),
		Language:    d.String(),
		Target:      d.String(),
	}
	nArgs := int(d.Uint32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if nArgs > maxWireItems {
		return nil, fmt.Errorf("idl: implausible target-arg count %d", nArgs)
	}
	for i := 0; i < nArgs; i++ {
		in.TargetArgs = append(in.TargetArgs, d.String())
	}

	nParams := int(d.Uint32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if nParams > maxWireItems {
		return nil, fmt.Errorf("idl: implausible parameter count %d", nParams)
	}
	type pendingDim struct {
		param int
		code  []byte
	}
	var dims []pendingDim
	names := make([]string, 0, nParams)
	for i := 0; i < nParams; i++ {
		p := Param{
			Name: d.String(),
			Mode: Mode(d.Uint32()),
			Type: Type(d.Uint32()),
		}
		nDims := int(d.Uint32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		if nDims > maxWireDims {
			return nil, fmt.Errorf("idl: implausible dimension count %d", nDims)
		}
		for j := 0; j < nDims; j++ {
			dims = append(dims, pendingDim{param: i, code: d.Opaque()})
		}
		in.Params = append(in.Params, p)
		names = append(names, p.Name)
	}
	var complexityCode []byte
	if d.Bool() {
		complexityCode = d.Opaque()
	}
	if d.Err() != nil {
		return nil, d.Err()
	}

	// Rebuild expression trees now that all parameter names are known.
	for _, pd := range dims {
		e, err := DecompileExpr(pd.code, names)
		if err != nil {
			return nil, fmt.Errorf("idl: decode %s: %w", in.Name, err)
		}
		in.Params[pd.param].Dims = append(in.Params[pd.param].Dims, e)
	}
	if complexityCode != nil {
		e, err := DecompileExpr(complexityCode, names)
		if err != nil {
			return nil, fmt.Errorf("idl: decode %s complexity: %w", in.Name, err)
		}
		in.Complexity = e
	}
	if err := Check(in); err != nil {
		return nil, err
	}
	return in, nil
}

const (
	maxWireItems = 1 << 16
	maxWireDims  = 16
)
