package idl

import (
	"errors"
	"fmt"
)

// ErrInvalid is wrapped by all semantic-check failures.
var ErrInvalid = errors.New("idl: invalid interface")

func checkErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Check validates an interface description:
//
//   - parameter names are unique and non-empty;
//   - every dimension expression references only scalar, in-shipping
//     (mode_in or mode_inout) integer parameters declared *earlier* in
//     the signature, so a left-to-right marshaller always has the
//     values it needs;
//   - string parameters are scalar (no string arrays);
//   - the Complexity expression references only scalar in-shipping
//     integer parameters;
//   - the Calls clause names only declared parameters;
//   - a Calls target is present.
//
// Parse runs Check automatically; servers run it again on registration
// so hand-built Info values get the same screening.
func Check(in *Info) error {
	if in.Name == "" {
		return checkErrf("missing interface name")
	}
	if in.Target == "" {
		return checkErrf("%s: missing Calls target", in.Name)
	}

	seen := make(map[string]int, len(in.Params))
	// scalarIn collects parameters legal to reference from dimension
	// and complexity expressions.
	scalarIn := make(map[string]bool)
	for i := range in.Params {
		p := &in.Params[i]
		if p.Name == "" {
			return checkErrf("%s: parameter %d has no name", in.Name, i)
		}
		if prev, dup := seen[p.Name]; dup {
			return checkErrf("%s: duplicate parameter %q (positions %d and %d)", in.Name, p.Name, prev, i)
		}
		seen[p.Name] = i
		if p.Mode < In || p.Mode > InOut {
			return checkErrf("%s: parameter %q has invalid mode %d", in.Name, p.Name, int(p.Mode))
		}
		if p.Type < Int || p.Type > String {
			return checkErrf("%s: parameter %q has invalid type %d", in.Name, p.Name, int(p.Type))
		}
		if p.Type == String && !p.IsScalar() {
			return checkErrf("%s: parameter %q: string arrays are not supported", in.Name, p.Name)
		}
		for di, d := range p.Dims {
			for _, ref := range Refs(d) {
				if !scalarIn[ref] {
					return checkErrf("%s: parameter %q dimension %d references %q, which is not an earlier scalar in-mode integer parameter",
						in.Name, p.Name, di, ref)
				}
			}
		}
		if p.IsScalar() && p.Type == Int && p.Mode.Ships(false) {
			scalarIn[p.Name] = true
		}
	}

	if in.Complexity != nil {
		for _, ref := range Refs(in.Complexity) {
			if !scalarIn[ref] {
				return checkErrf("%s: Complexity references %q, which is not a scalar in-mode integer parameter", in.Name, ref)
			}
		}
	}

	for _, arg := range in.TargetArgs {
		if _, ok := seen[arg]; !ok {
			return checkErrf("%s: Calls argument %q is not a declared parameter", in.Name, arg)
		}
	}
	return nil
}
