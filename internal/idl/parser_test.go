package idl

import (
	"errors"
	"strings"
	"testing"
)

// dmmulIDL is the paper's §2.3 example, including the vestigial "long"
// before the first parameter's mode keyword, which we tolerate.
const dmmulIDL = `
Define dmmul(long mode_in int n,
             mode_in double A[n][n],
             mode_in double B[n][n],
             mode_out double C[n][n])
    "dmmul is double precision matrix multiply",
    Required "libxxx.o"
    Calls "C" mmul(n, A, B, C);
`

func TestParseDmmul(t *testing.T) {
	in, err := ParseOne(dmmulIDL)
	if err != nil {
		t.Fatal(err)
	}
	if in.Name != "dmmul" {
		t.Errorf("Name = %q", in.Name)
	}
	if in.Description != "dmmul is double precision matrix multiply" {
		t.Errorf("Description = %q", in.Description)
	}
	if in.Required != "libxxx.o" {
		t.Errorf("Required = %q", in.Required)
	}
	if in.Language != "C" || in.Target != "mmul" {
		t.Errorf("Calls = %q %q", in.Language, in.Target)
	}
	if len(in.TargetArgs) != 4 {
		t.Fatalf("TargetArgs = %v", in.TargetArgs)
	}
	if len(in.Params) != 4 {
		t.Fatalf("got %d params", len(in.Params))
	}
	n := in.Params[0]
	if n.Name != "n" || n.Mode != In || n.Type != Int || !n.IsScalar() {
		t.Errorf("param n = %+v", n)
	}
	a := in.Params[1]
	if a.Name != "A" || a.Mode != In || a.Type != Double || len(a.Dims) != 2 {
		t.Errorf("param A = %+v", a)
	}
	c := in.Params[3]
	if c.Mode != Out {
		t.Errorf("param C mode = %v", c.Mode)
	}
}

const linpackIDL = `
# LINPACK LU factor + solve, registered together as in §3.1.
Define dgefa(mode_in int n,
             mode_inout double a[n][n],
             mode_out int ipvt[n])
    "LU decomposition with partial pivoting"
    Complexity 2*n^3/3 + 2*n^2
    Calls "go" dgefa(n, a, ipvt);

Define dgesl(mode_in int n,
             mode_in double a[n][n],
             mode_in int ipvt[n],
             mode_inout double b[n])
    "backward substitution"
    Complexity 2*n^2
    Calls "go" dgesl(n, a, ipvt, b);
`

func TestParseMultipleDefines(t *testing.T) {
	infos, err := Parse(linpackIDL)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("got %d defines", len(infos))
	}
	if infos[0].Name != "dgefa" || infos[1].Name != "dgesl" {
		t.Errorf("names = %q, %q", infos[0].Name, infos[1].Name)
	}
	if infos[0].Complexity == nil {
		t.Fatal("dgefa has no complexity")
	}
	ops, ok := infos[0].PredictedOps([]Value{int64(100), nil, nil})
	if !ok {
		t.Fatal("PredictedOps failed")
	}
	// 2*100^3/3 + 2*100^2 = 666666 + 20000
	if want := int64(2*100*100*100/3 + 2*100*100); ops != want {
		t.Errorf("ops = %d, want %d", ops, want)
	}
}

func TestDimSizesAndTransferBytes(t *testing.T) {
	in, err := ParseOne(dmmulIDL)
	if err != nil {
		t.Fatal(err)
	}
	args := []Value{int64(10), nil, nil, nil}
	sizes, err := in.DimSizes(args)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 100, 100, 100}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("sizes[%d] = %d, want %d", i, sizes[i], want[i])
		}
	}
	inB, outB, err := in.TransferBytes(args)
	if err != nil {
		t.Fatal(err)
	}
	// in: scalar n (8) + A (800) + B (800); out: C (800).
	if inB != 1608 || outB != 800 {
		t.Errorf("transfer = %d in, %d out", inB, outB)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"empty", "", "no Define"},
		{"not define", "Became dmmul();", "expected 'Define'"},
		{"missing mode", "Define f(int n) Calls \"C\" f(n);", "access mode"},
		{"bad type", "Define f(mode_in quux n) Calls \"C\" f(n);", "element type"},
		{"unterminated string", "Define f(mode_in int n) \"oops\nCalls \"C\" f(n);", "unterminated string"},
		{"no calls", "Define f(mode_in int n)", "expected 'Required'"},
		{"missing semi", `Define f(mode_in int n) Calls "C" f(n)`, "';'"},
		{"bad char", "Define f(mode_in int n) Calls \"C\" f(n)@;", "unexpected character"},
		{"unterminated comment", "/* hi Define f();", "unterminated block comment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("Define f(\n  mode_in quux n) Calls \"C\" f(n);")
	var serr *SyntaxError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %T, want *SyntaxError", err)
	}
	if serr.Line != 2 {
		t.Errorf("line = %d, want 2", serr.Line)
	}
}

func TestCheckRules(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"dup param", `Define f(mode_in int n, mode_in int n) Calls "C" f(n);`},
		{"forward dim ref", `Define f(mode_in double a[n], mode_in int n) Calls "C" f(a, n);`},
		{"out scalar dim ref", `Define f(mode_out int n, mode_in double a[n]) Calls "C" f(n, a);`},
		{"array dim ref", `Define f(mode_in int m, mode_in int v[m], mode_in double a[v]) Calls "C" f(m, v, a);`},
		{"string array", `Define f(mode_in int n, mode_in string s[n]) Calls "C" f(n, s);`},
		{"complexity bad ref", `Define f(mode_in int n) Complexity n*m Calls "C" f(n);`},
		{"calls unknown arg", `Define f(mode_in int n) Calls "C" f(bogus);`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("err = %v, want ErrInvalid", err)
			}
		})
	}
}

func TestCheckInvalidModeType(t *testing.T) {
	in := &Info{Name: "f", Target: "f", Params: []Param{{Name: "x", Mode: Mode(9), Type: Int}}}
	if err := Check(in); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad mode: err = %v", err)
	}
	in = &Info{Name: "f", Target: "f", Params: []Param{{Name: "x", Mode: In, Type: Type(9)}}}
	if err := Check(in); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad type: err = %v", err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, src := range []string{dmmulIDL, linpackIDL} {
		infos, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range infos {
			re, err := ParseOne(in.String())
			if err != nil {
				t.Fatalf("reparse %s: %v\nsource:\n%s", in.Name, err, in.String())
			}
			if re.String() != in.String() {
				t.Errorf("String round trip changed:\n%s\nvs\n%s", in.String(), re.String())
			}
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
// line comment
# hash comment
/* block
   comment */
Define f(mode_in int n /* inline */, mode_out double v[n]) // trailing
    Calls "go" f(n, v);
`
	in, err := ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	if in.Name != "f" || len(in.Params) != 2 {
		t.Errorf("parsed %+v", in)
	}
}

func TestScalarOnlySignature(t *testing.T) {
	in, err := ParseOne(`Define ep(mode_in int m, mode_out double sx, mode_out double sy, mode_out int q[10]) Complexity 2^(m+1) Calls "go" ep(m, sx, sy, q);`)
	if err != nil {
		t.Fatal(err)
	}
	ops, ok := in.PredictedOps([]Value{int64(24), nil, nil, nil})
	if !ok || ops != 1<<25 {
		t.Errorf("ops = %d, ok=%v, want %d", ops, ok, 1<<25)
	}
	sizes, err := in.DimSizes([]Value{int64(24), nil, nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	if sizes[3] != 10 {
		t.Errorf("fixed dim = %d", sizes[3])
	}
}

func TestNegativeDimension(t *testing.T) {
	in, err := ParseOne(`Define f(mode_in int n, mode_in double a[n-10]) Calls "C" f(n, a);`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.DimSizes([]Value{int64(5), nil}); err == nil {
		t.Error("negative dimension not rejected")
	}
}

func TestStringEscapesRoundTrip(t *testing.T) {
	// Descriptions may contain arbitrary bytes; String() quotes them
	// with Go escapes and the lexer must read them all back (found by
	// FuzzParse).
	weird := "tab\t nl\n cr\r vt\v bell\a quote\" back\\ nul\x00 high\xff é"
	in := &Info{
		Name: "f", Language: "C", Target: "f",
		Description: weird,
		Params:      []Param{{Name: "n", Mode: In, Type: Int}},
	}
	if err := Check(in); err != nil {
		t.Fatal(err)
	}
	re, err := ParseOne(in.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, in.String())
	}
	if re.Description != weird {
		t.Errorf("description changed: %q vs %q", re.Description, weird)
	}
}

func TestLexerEscapeErrors(t *testing.T) {
	for _, src := range []string{
		`Define f(mode_in int n) "\q" Calls "C" f(n);`,
		`Define f(mode_in int n) "\xZZ" Calls "C" f(n);`,
		`Define f(mode_in int n) "\u12" Calls "C" f(n);`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("bad escape accepted: %s", src)
		}
	}
}
