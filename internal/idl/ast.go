// Package idl implements the Ninf Interface Description Language.
//
// Ninf executables are registered on a computational server together
// with an IDL description of their calling interface, for example:
//
//	Define dmmul(mode_in int n,
//	             mode_in double A[n][n], mode_in double B[n][n],
//	             mode_out double C[n][n])
//	    "dmmul is double precision matrix multiply"
//	    Required "libxxx.o"
//	    Complexity 2*n*n*n
//	    Calls "C" mmul(n, A, B, C);
//
// The package provides the lexer and parser for this language, semantic
// checking, and a compiled form (Info) whose array-dimension expressions
// are lowered to a small stack-machine bytecode. That bytecode is the
// "interpretable code" of the paper's two-stage RPC: the server ships it
// to the client at call time, and the client interprets it to marshal
// arguments without any client-side stub generation, header files or
// linking.
//
// The optional Complexity clause declares the operation count of the
// routine as a function of its scalar inputs (the facility the paper
// credits to NetSolve in §6 and proposes for SJF scheduling in §5.2).
package idl

import (
	"fmt"
	"strings"
	"sync"
)

// Mode is an argument access mode.
type Mode int

// Argument access modes. In arguments are shipped client→server, Out
// arguments server→client, and InOut both ways.
const (
	In Mode = iota
	Out
	InOut
)

// String returns the IDL spelling of the mode.
func (m Mode) String() string {
	switch m {
	case In:
		return "mode_in"
	case Out:
		return "mode_out"
	case InOut:
		return "mode_inout"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Ships reports whether data moves in the given direction for this mode.
func (m Mode) Ships(out bool) bool {
	if out {
		return m == Out || m == InOut
	}
	return m == In || m == InOut
}

// Type is an IDL element type.
type Type int

// Element types supported by Ninf RPC.
const (
	Int Type = iota // 64-bit signed integer on the wire
	Double
	Float
	String
)

// String returns the IDL spelling of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Double:
		return "double"
	case Float:
		return "float"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// WireSize reports the encoded size in bytes of one element of the type.
// Strings report 0 because their size is data-dependent.
func (t Type) WireSize() int {
	switch t {
	case Int, Double:
		return 8
	case Float:
		return 4
	default:
		return 0
	}
}

// A Param describes one formal parameter of a Ninf executable.
type Param struct {
	Name string
	Mode Mode
	Type Type
	// Dims holds one expression per array dimension, outermost first.
	// A scalar parameter has no dims. Expressions may reference any
	// mode_in scalar parameter declared earlier in the signature.
	Dims []Expr
}

// IsScalar reports whether the parameter is a scalar.
func (p *Param) IsScalar() bool { return len(p.Dims) == 0 }

// String returns the IDL spelling of the parameter.
func (p *Param) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s", p.Mode, p.Type, p.Name)
	for _, d := range p.Dims {
		fmt.Fprintf(&b, "[%s]", d)
	}
	return b.String()
}

// An Info is the compiled interface of one Ninf executable: everything
// a client needs to marshal a call and everything a scheduler needs to
// predict its cost. Info is what the server returns in the first stage
// of the two-stage RPC.
type Info struct {
	Name        string
	Description string
	Required    string // module needed at link time, informational
	Language    string // implementation language named in the Calls clause
	Target      string // local routine the server invokes
	TargetArgs  []string
	Params      []Param
	// Complexity is the declared operation count as a function of the
	// scalar in-arguments; nil when the IDL omits the clause.
	Complexity Expr
}

// ParamIndex returns the position of the named parameter, or -1.
func (in *Info) ParamIndex(name string) int {
	for i := range in.Params {
		if in.Params[i].Name == name {
			return i
		}
	}
	return -1
}

// envPool recycles expression environments: the maps are built and
// discarded on every marshalling call, so pooling keeps the per-call
// data path free of map allocations. Cleared maps keep their buckets.
var envPool = sync.Pool{New: func() any { return make(map[string]int64, 8) }}

func releaseEnv(env map[string]int64) {
	clear(env)
	envPool.Put(env)
}

// scalarEnv builds the expression environment from the scalar in-mode
// arguments of a call. args must be positional, one value per Param;
// non-scalar and out-only entries are ignored. The caller must return
// the environment with releaseEnv.
func (in *Info) scalarEnv(args []Value) (map[string]int64, error) {
	env := envPool.Get().(map[string]int64)
	for i := range in.Params {
		p := &in.Params[i]
		if !p.IsScalar() || !p.Mode.Ships(false) {
			continue
		}
		if i >= len(args) {
			releaseEnv(env)
			return nil, fmt.Errorf("idl: %s: missing argument %q", in.Name, p.Name)
		}
		switch v := args[i].(type) {
		case int64:
			env[p.Name] = v
		case int:
			env[p.Name] = int64(v)
		case float64:
			env[p.Name] = int64(v)
		case nil:
			releaseEnv(env)
			return nil, fmt.Errorf("idl: %s: scalar argument %q is nil", in.Name, p.Name)
		default:
			// Non-integer scalars (strings, doubles that are not
			// used in dims) simply do not enter the environment.
		}
	}
	return env, nil
}

// DimSizes evaluates every dimension expression of every parameter
// against the scalar arguments of a call and returns, per parameter,
// the total element count (product of dims; 1 for scalars).
func (in *Info) DimSizes(args []Value) ([]int, error) {
	env, err := in.scalarEnv(args)
	if err != nil {
		return nil, err
	}
	defer releaseEnv(env)
	counts := make([]int, len(in.Params))
	for i := range in.Params {
		p := &in.Params[i]
		count := int64(1)
		for _, d := range p.Dims {
			n, err := d.Eval(env)
			if err != nil {
				return nil, fmt.Errorf("idl: %s: dimension of %q: %w", in.Name, p.Name, err)
			}
			if n < 0 {
				return nil, fmt.Errorf("idl: %s: dimension of %q is negative (%d)", in.Name, p.Name, n)
			}
			count *= n
		}
		counts[i] = int(count)
	}
	return counts, nil
}

// PredictedOps evaluates the Complexity clause for a call. It returns
// 0, false when the IDL declares no complexity.
func (in *Info) PredictedOps(args []Value) (int64, bool) {
	if in.Complexity == nil {
		return 0, false
	}
	env, err := in.scalarEnv(args)
	if err != nil {
		return 0, false
	}
	defer releaseEnv(env)
	n, err := in.Complexity.Eval(env)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// TransferBytes predicts the XDR payload bytes shipped in each
// direction for a call, from the dimension expressions alone. String
// parameters are counted as 0 (size is data-dependent). This is the
// information the metaserver uses to weigh communication against
// computation when placing calls (§5.1).
func (in *Info) TransferBytes(args []Value) (inBytes, outBytes int64, err error) {
	counts, err := in.DimSizes(args)
	if err != nil {
		return 0, 0, err
	}
	for i := range in.Params {
		p := &in.Params[i]
		sz := int64(counts[i]) * int64(p.Type.WireSize())
		if p.Mode.Ships(false) {
			inBytes += sz
		}
		if p.Mode.Ships(true) {
			outBytes += sz
		}
	}
	return inBytes, outBytes, nil
}

// String reconstructs IDL source for the interface. The output parses
// back to an equivalent Info, which the tests verify.
func (in *Info) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Define %s(", in.Name)
	for i := range in.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(in.Params[i].String())
	}
	b.WriteString(")")
	if in.Description != "" {
		fmt.Fprintf(&b, "\n    %q", in.Description)
	}
	if in.Required != "" {
		fmt.Fprintf(&b, "\n    Required %q", in.Required)
	}
	if in.Complexity != nil {
		fmt.Fprintf(&b, "\n    Complexity %s", in.Complexity)
	}
	fmt.Fprintf(&b, "\n    Calls %q %s(%s);", in.Language, in.Target, strings.Join(in.TargetArgs, ", "))
	return b.String()
}

// Value is a dynamically-typed argument to a Ninf call. The concrete
// types accepted on the client side are int, int64, float64, string,
// []float64, []int64 and []float32; the protocol layer normalizes int
// to int64.
type Value any
