package idl

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse compiles IDL source containing one or more Define declarations
// into checked interface descriptions.
//
// Grammar (keywords are case-insensitive):
//
//	file       = { define } .
//	define     = "Define" ident "(" [ param { "," param } ] ")"
//	             [ string [","] ]            // description
//	             [ "Required" string ]
//	             [ "Complexity" expr ]
//	             "Calls" string ident "(" [ ident { "," ident } ] ")" ";" .
//	param      = [ "long" ] mode type ident { "[" expr "]" } .
//	mode       = "mode_in" | "mode_out" | "mode_inout" | "IN" | "OUT" | "INOUT" .
//	type       = "int" | "long" | "double" | "float" | "string" .
//	expr       = term { ("+"|"-") term } .
//	term       = power { ("*"|"/"|"%") power } .
//	power      = factor [ "^" power ] .
//	factor     = number | ident | "(" expr ")" | "-" factor .
//
// The vestigial "long" before the mode keyword, seen in the paper's
// dmmul example, is accepted and ignored.
func Parse(src string) ([]*Info, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var out []*Info
	for p.tok.kind != tokEOF {
		in, err := p.parseDefine()
		if err != nil {
			return nil, err
		}
		if err := Check(in); err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("idl: no Define declarations found")
	}
	return out, nil
}

// ParseOne parses IDL source that must contain exactly one Define.
func ParseOne(src string) (*Info, error) {
	infos, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(infos) != 1 {
		return nil, fmt.Errorf("idl: expected exactly one Define, found %d", len(infos))
	}
	return infos[0], nil
}

// ParseExpr parses a standalone dimension/complexity expression, used
// by tests and by tools that evaluate complexity formulas.
func ParseExpr(src string) (Expr, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.tok.kind)
	}
	return e, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) errorf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

// keyword reports whether the current token is the given keyword,
// case-insensitively.
func (p *parser) keyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) expect(kind tokKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errorf("expected %s, found %s %q", kind, p.tok.kind, p.tok.text)
	}
	tok := p.tok
	return tok, p.advance()
}

func (p *parser) parseDefine() (*Info, error) {
	if !p.keyword("Define") {
		return nil, p.errorf("expected 'Define', found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	in := &Info{Name: name.text}

	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if p.tok.kind != tokRParen {
		for {
			param, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			in.Params = append(in.Params, param)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}

	// Optional description string, optionally followed by a comma as
	// in the paper's example.
	if p.tok.kind == tokString {
		in.Description = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}

	for {
		switch {
		case p.keyword("Required"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			s, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			in.Required = s.text
		case p.keyword("Complexity") || p.keyword("CalcOrder"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.Complexity = e
		case p.keyword("Calls"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			lang, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			in.Language = lang.text
			target, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			in.Target = target.text
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			if p.tok.kind != tokRParen {
				for {
					arg, err := p.expect(tokIdent)
					if err != nil {
						return nil, err
					}
					in.TargetArgs = append(in.TargetArgs, arg.text)
					if p.tok.kind == tokComma {
						if err := p.advance(); err != nil {
							return nil, err
						}
						continue
					}
					break
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
			return in, nil
		default:
			return nil, p.errorf("expected 'Required', 'Complexity' or 'Calls', found %q", p.tok.text)
		}
	}
}

func (p *parser) parseParam() (Param, error) {
	// Tolerate the vestigial leading "long" storage-class seen in the
	// paper's published IDL example ("long mode_in int n").
	if p.keyword("long") {
		saveLex, saveTok := *p.lex, p.tok
		if err := p.advance(); err != nil {
			return Param{}, err
		}
		if _, ok := parseMode(p.tok.text); !ok {
			// It was the element type, not a storage class; restore.
			*p.lex, p.tok = saveLex, saveTok
		}
	}
	mode, ok := parseMode(p.tok.text)
	if p.tok.kind != tokIdent || !ok {
		return Param{}, p.errorf("expected access mode (mode_in/mode_out/mode_inout), found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return Param{}, err
	}

	typ, ok := parseType(p.tok.text)
	if p.tok.kind != tokIdent || !ok {
		return Param{}, p.errorf("expected element type (int/long/float/double/string), found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return Param{}, err
	}

	name, err := p.expect(tokIdent)
	if err != nil {
		return Param{}, err
	}
	param := Param{Name: name.text, Mode: mode, Type: typ}

	for p.tok.kind == tokLBracket {
		if err := p.advance(); err != nil {
			return Param{}, err
		}
		dim, err := p.parseExpr()
		if err != nil {
			return Param{}, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return Param{}, err
		}
		param.Dims = append(param.Dims, dim)
	}
	return param, nil
}

func parseMode(s string) (Mode, bool) {
	switch strings.ToLower(s) {
	case "mode_in", "in":
		return In, true
	case "mode_out", "out":
		return Out, true
	case "mode_inout", "inout":
		return InOut, true
	}
	return 0, false
}

func parseType(s string) (Type, bool) {
	switch strings.ToLower(s) {
	case "int", "long":
		return Int, true
	case "double":
		return Double, true
	case "float":
		return Float, true
	case "string":
		return String, true
	}
	return 0, false
}

func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		op := OpAdd
		if p.tok.kind == tokMinus {
			op = OpSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parsePower()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokStar || p.tok.kind == tokSlash || p.tok.kind == tokPercent {
		var op Op
		switch p.tok.kind {
		case tokStar:
			op = OpMul
		case tokSlash:
			op = OpDiv
		case tokPercent:
			op = OpMod
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePower()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parsePower() (Expr, error) {
	base, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokCaret {
		if err := p.advance(); err != nil {
			return nil, err
		}
		exp, err := p.parsePower() // right-associative
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: OpPow, L: base, R: exp}, nil
	}
	return base, nil
}

func (p *parser) parseFactor() (Expr, error) {
	switch p.tok.kind {
	case tokNumber:
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q: %v", p.tok.text, err)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return Num(v), nil
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return Ref(name), nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: OpSub, L: Num(0), R: f}, nil
	default:
		return nil, p.errorf("expected expression, found %s %q", p.tok.kind, p.tok.text)
	}
}
