package idl

import (
	"bytes"
	"testing"
)

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(dmmulIDL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeDecode(b *testing.B) {
	info, err := ParseOne(dmmulIDL)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Encode(&buf, info); err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalBytecode(b *testing.B) {
	e, err := ParseExpr("2*n^3/3 + 2*n^2")
	if err != nil {
		b.Fatal(err)
	}
	code, err := CompileExpr(e, map[string]int{"n": 0})
	if err != nil {
		b.Fatal(err)
	}
	argAt := func(int) (int64, error) { return 1400, nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalBytecode(code, argAt); err != nil {
			b.Fatal(err)
		}
	}
}
