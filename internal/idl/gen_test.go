package idl

import (
	goparser "go/parser"
	gotoken "go/token"
	"strings"
	"testing"
)

func TestGenerateStubsParses(t *testing.T) {
	infos, err := Parse(`
Define dmmul(mode_in int n, mode_in double A[n][n], mode_in double B[n][n], mode_out double C[n][n])
    "matrix multiply" Required "libxxx.o" Complexity 2*n^3
    Calls "C" mmul(n, A, B, C);
Define ep_kernel(mode_in int m, mode_out double sx, mode_out int q[10])
    Calls "go" ep(m, sx, q);
Define tagit(mode_in string label, mode_in int len, mode_inout double v[len])
    Calls "go" tag(label, len, v);
`)
	if err != nil {
		t.Fatal(err)
	}
	src := GenerateStubs(infos, "mylib")

	// The generated source must be syntactically valid Go.
	fset := gotoken.NewFileSet()
	if _, err := goparser.ParseFile(fset, "stubs.go", src, 0); err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, src)
	}

	for _, want := range []string{
		"package mylib",
		"func Register(reg *server.Registry) error",
		`"dmmul": dmmulHandler`,
		"func dmmulHandler(ctx context.Context, args []idl.Value) error",
		"n := args[0].(int64)",
		"A := args[1].([]float64)",
		// ep_kernel's underscore is stripped for the Go identifier.
		"func epkernelHandler",
		// out scalars get an assignment hint, not a cast.
		"assign args[1] = <double sx result>",
		// reserved-ish names are renamed.
		"lenArg := args[1].(int64)",
		"label := args[0].(string)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q\n%s", want, src)
		}
	}

	// The embedded IDL must reparse to the same interfaces.
	start := strings.Index(src, "const idlSource = `")
	end := strings.LastIndex(src, "`")
	if start < 0 || end <= start {
		t.Fatal("no embedded IDL found")
	}
	embedded := src[start+len("const idlSource = `") : end]
	back, err := Parse(embedded)
	if err != nil {
		t.Fatalf("embedded IDL does not reparse: %v", err)
	}
	if len(back) != len(infos) {
		t.Errorf("embedded IDL has %d defines, want %d", len(back), len(infos))
	}
}
