package idl

import (
	"bytes"
	"reflect"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	for _, src := range []string{dmmulIDL, linpackIDL} {
		infos, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range infos {
			var buf bytes.Buffer
			if err := Encode(&buf, in); err != nil {
				t.Fatalf("encode %s: %v", in.Name, err)
			}
			back, err := Decode(&buf)
			if err != nil {
				t.Fatalf("decode %s: %v", in.Name, err)
			}
			if !reflect.DeepEqual(in, back) {
				t.Errorf("%s: wire round trip changed Info:\n%+v\nvs\n%+v", in.Name, in, back)
			}
		}
	}
}

func TestWireRoundTripPreservesSemantics(t *testing.T) {
	in, err := ParseOne(dmmulIDL)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	args := []Value{int64(37), nil, nil, nil}
	s1, err1 := in.DimSizes(args)
	s2, err2 := back.DimSizes(args)
	if err1 != nil || err2 != nil || !reflect.DeepEqual(s1, s2) {
		t.Errorf("DimSizes diverge after round trip: %v/%v vs %v/%v", s1, err1, s2, err2)
	}
}

func TestDecodeGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0, 0, 0, 99},              // wrong version
		{0, 0, 0, 1, 0, 0, 0, 200}, // version ok, then absurd string length… truncated
	}
	for i, b := range cases {
		if _, err := Decode(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: garbage decoded without error", i)
		}
	}
}

func TestDecodeImplausibleCounts(t *testing.T) {
	// Hand-craft a frame with a huge parameter count to hit the
	// plausibility guard rather than OOM.
	var buf bytes.Buffer
	in := &Info{Name: "f", Language: "C", Target: "f"}
	if err := Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// The param count is the last uint32 before the hasComplexity
	// bool: locate it by structure — name "f" (8) + 3 empty strings
	// (12) + lang "C" (8) + target "f" (8) + nTargetArgs (4) = offset
	// 4+8+12+8+8+4 = 44; params count at 44.
	copy(b[44:48], []byte{0xff, 0xff, 0xff, 0xff})
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Error("implausible parameter count accepted")
	}
}
