package idl

import (
	"errors"
	"fmt"
	"strings"
)

// An Expr is an integer expression over scalar in-mode arguments:
// array dimensions and complexity declarations are Exprs.
type Expr interface {
	// Eval computes the expression given values for the scalar
	// arguments it references.
	Eval(env map[string]int64) (int64, error)
	// refs appends the names of referenced arguments.
	refs(dst []string) []string
	fmt.Stringer
}

// ErrUnboundRef reports a reference to a scalar argument absent from
// the evaluation environment.
var ErrUnboundRef = errors.New("idl: unbound argument reference")

// ErrDivByZero reports division (or modulo) by zero during expression
// evaluation.
var ErrDivByZero = errors.New("idl: division by zero")

// Num is an integer literal.
type Num int64

// Eval implements Expr.
func (n Num) Eval(map[string]int64) (int64, error) { return int64(n), nil }

func (n Num) refs(dst []string) []string { return dst }

// String implements fmt.Stringer.
func (n Num) String() string { return fmt.Sprintf("%d", int64(n)) }

// Ref is a reference to a scalar in-mode argument by name.
type Ref string

// Eval implements Expr.
func (r Ref) Eval(env map[string]int64) (int64, error) {
	v, ok := env[string(r)]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnboundRef, string(r))
	}
	return v, nil
}

func (r Ref) refs(dst []string) []string { return append(dst, string(r)) }

// String implements fmt.Stringer.
func (r Ref) String() string { return string(r) }

// Op identifies a binary operator.
type Op byte

// Binary operators, in increasing precedence order of their groups.
const (
	OpAdd Op = '+'
	OpSub Op = '-'
	OpMul Op = '*'
	OpDiv Op = '/'
	OpMod Op = '%'
	OpPow Op = '^'
)

// BinOp is a binary operation node.
type BinOp struct {
	Op   Op
	L, R Expr
}

// Eval implements Expr.
func (b *BinOp) Eval(env map[string]int64) (int64, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return 0, err
	}
	return applyOp(b.Op, l, r)
}

func applyOp(op Op, l, r int64) (int64, error) {
	switch op {
	case OpAdd:
		return l + r, nil
	case OpSub:
		return l - r, nil
	case OpMul:
		return l * r, nil
	case OpDiv:
		if r == 0 {
			return 0, ErrDivByZero
		}
		return l / r, nil
	case OpMod:
		if r == 0 {
			return 0, ErrDivByZero
		}
		return l % r, nil
	case OpPow:
		// Dimension and complexity formulas never need exponents
		// beyond the width of int64; larger values are certainly a
		// bug (and would loop for years), so reject them.
		if r < 0 || r > 63 {
			return 0, fmt.Errorf("idl: exponent %d outside [0,63]", r)
		}
		out := int64(1)
		for i := int64(0); i < r; i++ {
			out *= l
		}
		return out, nil
	default:
		return 0, fmt.Errorf("idl: unknown operator %q", byte(op))
	}
}

func (b *BinOp) refs(dst []string) []string { return b.R.refs(b.L.refs(dst)) }

func opPrec(op Op) int {
	switch op {
	case OpAdd, OpSub:
		return 1
	case OpMul, OpDiv, OpMod:
		return 2
	case OpPow:
		return 3
	default:
		return 0
	}
}

// String implements fmt.Stringer, parenthesizing only where required.
func (b *BinOp) String() string {
	var sb strings.Builder
	writeOperand(&sb, b.L, opPrec(b.Op), false)
	fmt.Fprintf(&sb, "%c", byte(b.Op))
	writeOperand(&sb, b.R, opPrec(b.Op), true)
	return sb.String()
}

func writeOperand(sb *strings.Builder, e Expr, parentPrec int, isRight bool) {
	if sub, ok := e.(*BinOp); ok {
		p := opPrec(sub.Op)
		// Right operands of equal precedence need parens because
		// the operators are left-associative (except ^, which is
		// emitted fully parenthesized on the right by this rule
		// only when precedence demands; for simplicity we
		// parenthesize equal-precedence right children).
		if p < parentPrec || (p == parentPrec && isRight) {
			sb.WriteByte('(')
			sb.WriteString(sub.String())
			sb.WriteByte(')')
			return
		}
	}
	sb.WriteString(e.String())
}

// Refs returns the distinct argument names referenced by the
// expression, in first-appearance order.
func Refs(e Expr) []string {
	all := e.refs(nil)
	seen := make(map[string]bool, len(all))
	var out []string
	for _, n := range all {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Bytecode: the wire form of an Expr, a stack-machine program. This is
// the "interpretable code" shipped to clients in the two-stage RPC.
// Programs are sequences of instructions:
//
//	opPushConst <int64>   push a constant
//	opPushArg   <uint32>  push the value of scalar parameter #n
//	opAdd..opPow          pop two, apply, push
//
// Argument references are compiled to parameter indices so the client
// need not ship names back and forth.
const (
	opPushConst byte = 0x01
	opPushArg   byte = 0x02
	opAdd       byte = 0x10
	opSub       byte = 0x11
	opMul       byte = 0x12
	opDiv       byte = 0x13
	opMod       byte = 0x14
	opPow       byte = 0x15
)

func opToByte(op Op) byte {
	switch op {
	case OpAdd:
		return opAdd
	case OpSub:
		return opSub
	case OpMul:
		return opMul
	case OpDiv:
		return opDiv
	case OpMod:
		return opMod
	case OpPow:
		return opPow
	}
	return 0
}

func byteToOp(b byte) (Op, bool) {
	switch b {
	case opAdd:
		return OpAdd, true
	case opSub:
		return OpSub, true
	case opMul:
		return OpMul, true
	case opDiv:
		return OpDiv, true
	case opMod:
		return OpMod, true
	case opPow:
		return OpPow, true
	}
	return 0, false
}

// CompileExpr lowers an expression to bytecode, resolving argument
// references through nameToIndex (parameter name → position).
func CompileExpr(e Expr, nameToIndex map[string]int) ([]byte, error) {
	var out []byte
	var walk func(Expr) error
	walk = func(e Expr) error {
		switch v := e.(type) {
		case Num:
			out = append(out, opPushConst)
			out = appendInt64(out, int64(v))
		case Ref:
			idx, ok := nameToIndex[string(v)]
			if !ok {
				return fmt.Errorf("%w: %q", ErrUnboundRef, string(v))
			}
			out = append(out, opPushArg)
			out = appendUint32(out, uint32(idx))
		case *BinOp:
			if err := walk(v.L); err != nil {
				return err
			}
			if err := walk(v.R); err != nil {
				return err
			}
			b := opToByte(v.Op)
			if b == 0 {
				return fmt.Errorf("idl: cannot compile operator %q", byte(v.Op))
			}
			out = append(out, b)
		default:
			return fmt.Errorf("idl: cannot compile %T", e)
		}
		return nil
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompileExpr rebuilds an expression tree from bytecode, mapping
// argument indices back to names through indexToName. It is the exact
// inverse of CompileExpr, which the property tests verify.
func DecompileExpr(code []byte, indexToName []string) (Expr, error) {
	var stack []Expr
	i := 0
	for i < len(code) {
		op := code[i]
		i++
		switch op {
		case opPushConst:
			if i+8 > len(code) {
				return nil, errors.New("idl: truncated constant in bytecode")
			}
			stack = append(stack, Num(readInt64(code[i:])))
			i += 8
		case opPushArg:
			if i+4 > len(code) {
				return nil, errors.New("idl: truncated argument index in bytecode")
			}
			idx := int(readUint32(code[i:]))
			i += 4
			if idx < 0 || idx >= len(indexToName) {
				return nil, fmt.Errorf("idl: bytecode argument index %d out of range", idx)
			}
			stack = append(stack, Ref(indexToName[idx]))
		default:
			o, ok := byteToOp(op)
			if !ok {
				return nil, fmt.Errorf("idl: unknown opcode %#x", op)
			}
			if len(stack) < 2 {
				return nil, errors.New("idl: stack underflow in bytecode")
			}
			l, r := stack[len(stack)-2], stack[len(stack)-1]
			stack = stack[:len(stack)-2]
			stack = append(stack, &BinOp{Op: o, L: l, R: r})
		}
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("idl: bytecode leaves %d values on stack, want 1", len(stack))
	}
	return stack[0], nil
}

// EvalBytecode interprets compiled dimension code directly against
// positional scalar argument values, the way Ninf_call does on the
// client: no tree reconstruction, just the stack machine.
func EvalBytecode(code []byte, argAt func(i int) (int64, error)) (int64, error) {
	var stack [16]int64
	sp := 0
	push := func(v int64) error {
		if sp >= len(stack) {
			return errors.New("idl: bytecode stack overflow")
		}
		stack[sp] = v
		sp++
		return nil
	}
	i := 0
	for i < len(code) {
		op := code[i]
		i++
		switch op {
		case opPushConst:
			if i+8 > len(code) {
				return 0, errors.New("idl: truncated constant in bytecode")
			}
			if err := push(readInt64(code[i:])); err != nil {
				return 0, err
			}
			i += 8
		case opPushArg:
			if i+4 > len(code) {
				return 0, errors.New("idl: truncated argument index in bytecode")
			}
			v, err := argAt(int(readUint32(code[i:])))
			if err != nil {
				return 0, err
			}
			if err := push(v); err != nil {
				return 0, err
			}
			i += 4
		default:
			o, ok := byteToOp(op)
			if !ok {
				return 0, fmt.Errorf("idl: unknown opcode %#x", op)
			}
			if sp < 2 {
				return 0, errors.New("idl: stack underflow in bytecode")
			}
			v, err := applyOp(o, stack[sp-2], stack[sp-1])
			if err != nil {
				return 0, err
			}
			sp -= 2
			if err := push(v); err != nil {
				return 0, err
			}
		}
	}
	if sp != 1 {
		return 0, fmt.Errorf("idl: bytecode leaves %d values on stack, want 1", sp)
	}
	return stack[0], nil
}

func appendInt64(b []byte, v int64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func readInt64(b []byte) int64 {
	return int64(b[0])<<56 | int64(b[1])<<48 | int64(b[2])<<40 | int64(b[3])<<32 |
		int64(b[4])<<24 | int64(b[5])<<16 | int64(b[6])<<8 | int64(b[7])
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func readUint32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
