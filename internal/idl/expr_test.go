package idl

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustExpr(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestExprEval(t *testing.T) {
	env := map[string]int64{"n": 10, "m": 3}
	cases := []struct {
		src  string
		want int64
	}{
		{"1", 1},
		{"n", 10},
		{"n+1", 11},
		{"n*n", 100},
		{"2*n^3/3 + 2*n^2", 866},
		{"(n+m)*2", 26},
		{"n-m*2", 4},
		{"n%m", 1},
		{"-n+20", 10},
		{"2^10", 1024},
		{"n/m", 3},
		{"8*n^2 + 20*n", 1000},
	}
	for _, tc := range cases {
		got, err := mustExpr(t, tc.src).Eval(env)
		if err != nil {
			t.Errorf("%q: %v", tc.src, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%q = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	env := map[string]int64{"n": 10}
	if _, err := mustExpr(t, "x+1").Eval(env); !errors.Is(err, ErrUnboundRef) {
		t.Errorf("unbound ref: %v", err)
	}
	if _, err := mustExpr(t, "n/0").Eval(env); !errors.Is(err, ErrDivByZero) {
		t.Errorf("div by zero: %v", err)
	}
	if _, err := mustExpr(t, "n%0").Eval(env); !errors.Is(err, ErrDivByZero) {
		t.Errorf("mod by zero: %v", err)
	}
	if _, err := mustExpr(t, "2^(0-1)").Eval(env); err == nil {
		t.Error("negative exponent accepted")
	}
}

func TestExprStringReparse(t *testing.T) {
	srcs := []string{
		"2*n^3/3 + 2*n^2",
		"8*n^2 + 20*n",
		"(n+m)*(n-m)",
		"n-(m-1)",
		"n/m/2",
		"n-m-1",
		"2^n",
	}
	env := map[string]int64{"n": 7, "m": 2}
	for _, src := range srcs {
		e := mustExpr(t, src)
		re := mustExpr(t, e.String())
		v1, err1 := e.Eval(env)
		v2, err2 := re.Eval(env)
		if err1 != nil || err2 != nil || v1 != v2 {
			t.Errorf("%q → %q: %d/%v vs %d/%v", src, e.String(), v1, err1, v2, err2)
		}
	}
}

func TestRefs(t *testing.T) {
	e := mustExpr(t, "n*m + n*2 + k")
	got := Refs(e)
	want := []string{"n", "m", "k"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Refs = %v, want %v", got, want)
	}
}

// randomExpr builds a random expression over the given names for
// property testing of compile/decompile.
func randomExpr(r *rand.Rand, names []string, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return Num(r.Int63n(1000))
		}
		return Ref(names[r.Intn(len(names))])
	}
	ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpMod, OpPow}
	return &BinOp{
		Op: ops[r.Intn(len(ops))],
		L:  randomExpr(r, names, depth-1),
		R:  randomExpr(r, names, depth-1),
	}
}

func TestCompileDecompileProperty(t *testing.T) {
	names := []string{"n", "m", "k"}
	idx := map[string]int{"n": 0, "m": 1, "k": 2}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		e := randomExpr(r, names, 4)
		code, err := CompileExpr(e, idx)
		if err != nil {
			t.Fatalf("compile %s: %v", e, err)
		}
		back, err := DecompileExpr(code, names)
		if err != nil {
			t.Fatalf("decompile %s: %v", e, err)
		}
		if !reflect.DeepEqual(e, back) {
			t.Fatalf("round trip changed tree: %s vs %s", e, back)
		}
		// The bytecode interpreter must agree with tree evaluation.
		env := map[string]int64{"n": 5, "m": 7, "k": 2}
		v1, err1 := e.Eval(env)
		v2, err2 := EvalBytecode(code, func(i int) (int64, error) {
			return env[names[i]], nil
		})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: eval err %v vs bytecode err %v", e, err1, err2)
		}
		if err1 == nil && v1 != v2 {
			t.Fatalf("%s: eval %d vs bytecode %d", e, v1, v2)
		}
	}
}

func TestEvalBytecodeQuick(t *testing.T) {
	// Constant-only expressions must survive compile→eval for any
	// int64 pair under addition.
	f := func(a, b int64) bool {
		e := &BinOp{Op: OpAdd, L: Num(a), R: Num(b)}
		code, err := CompileExpr(e, nil)
		if err != nil {
			return false
		}
		v, err := EvalBytecode(code, func(int) (int64, error) { return 0, nil })
		return err == nil && v == a+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecompileMalformed(t *testing.T) {
	cases := [][]byte{
		{opAdd},                 // stack underflow
		{opPushConst, 1, 2},     // truncated constant
		{opPushArg, 0, 0, 0, 9}, // arg index out of range
		{0x7f},                  // unknown opcode
		{},                      // empty program
		{opPushConst, 0, 0, 0, 0, 0, 0, 0, 1, opPushConst, 0, 0, 0, 0, 0, 0, 0, 2}, // 2 values left
	}
	argAt := func(i int) (int64, error) {
		if i != 0 {
			return 0, errors.New("argument index out of range")
		}
		return 1, nil
	}
	for i, code := range cases {
		if _, err := DecompileExpr(code, []string{"n"}); err == nil {
			t.Errorf("case %d: malformed bytecode accepted", i)
		}
		if _, err := EvalBytecode(code, argAt); err == nil {
			t.Errorf("case %d: malformed bytecode evaluated", i)
		}
	}
}

func TestCompileUnboundRef(t *testing.T) {
	if _, err := CompileExpr(Ref("zz"), map[string]int{"n": 0}); !errors.Is(err, ErrUnboundRef) {
		t.Errorf("err = %v", err)
	}
}
