package server

import (
	"bytes"
	"fmt"
	"time"

	"ninf/internal/xdr"
)

// Trace returns the server's execution history per routine.
func (s *Server) Trace() []RoutineTrace { return s.trace.snapshot() }

// encodeTraces serializes the history for MsgTraceOK.
func encodeTraces(ts []RoutineTrace) []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.PutUint32(uint32(len(ts)))
	for i := range ts {
		t := &ts[i]
		e.PutString(t.Name)
		e.PutInt64(t.Count)
		e.PutInt64(t.Failures)
		e.PutInt64(int64(t.MeanCompute))
		e.PutInt64(int64(t.MeanWait))
		e.PutInt64(t.MeanBytes)
	}
	return buf.Bytes()
}

// DecodeTraces parses a MsgTraceOK payload. It lives here rather than
// in protocol because RoutineTrace is the server's type; the client
// API re-exports it.
func DecodeTraces(p []byte) ([]RoutineTrace, error) {
	d := xdr.NewDecoder(bytes.NewReader(p))
	n := int(d.Uint32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("server: implausible trace count %d", n)
	}
	out := make([]RoutineTrace, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, RoutineTrace{
			Name:        d.String(),
			Count:       d.Int64(),
			Failures:    d.Int64(),
			MeanCompute: time.Duration(d.Int64()),
			MeanWait:    time.Duration(d.Int64()),
			MeanBytes:   d.Int64(),
		})
	}
	return out, d.Err()
}
