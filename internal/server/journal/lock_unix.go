//go:build unix

package journal

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// lockFile takes the journal directory's advisory writer lock: a POSIX
// fcntl record lock on the lock file, held for the life of the journal
// and released by the kernel the moment the owning process exits — so
// a crash never leaves a stale lock behind, which is the whole point
// of a crash-recovery log. fcntl locks are per-process, not per-file-
// descriptor: a second Open in the same process (an in-process restart,
// as the chaos suite and the restart experiment do) succeeds, while a
// second server *process* pointed at the same -journal-dir fails fast
// instead of interleaving appends and double-replaying jobs.
func lockFile(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: lock: %w", err)
	}
	lk := syscall.Flock_t{Type: syscall.F_WRLCK, Whence: io.SeekStart}
	if err := syscall.FcntlFlock(f.Fd(), syscall.F_SETLK, &lk); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: directory locked by another server process: %w", err)
	}
	return f, nil
}
