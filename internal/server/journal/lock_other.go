//go:build !unix

package journal

import "os"

// lockFile is a no-op on platforms without POSIX record locks: the
// journal still works, but two processes sharing a directory are not
// excluded. All deployment targets are unix.
func lockFile(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
}
