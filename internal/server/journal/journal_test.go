package journal

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ninf/internal/protocol"
)

func openT(t *testing.T, dir string, opts Options) (*Journal, []protocol.JournalRecord) {
	t.Helper()
	j, recs, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, recs
}

func TestEpochAdvancesPerOpen(t *testing.T) {
	dir := t.TempDir()
	for want := uint64(1); want <= 3; want++ {
		j, _ := openT(t, dir, Options{})
		if got := j.Epoch(); got != want {
			t.Fatalf("open %d: epoch = %d, want %d", want, got, want)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

func TestEpochCorruptRestartsAtOne(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	j.Close()
	if err := os.WriteFile(filepath.Join(dir, "epoch"), []byte("not a number"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, _ = openT(t, dir, Options{})
	defer j.Close()
	if got := j.Epoch(); got != 1 {
		t.Fatalf("epoch after corruption = %d, want 1", got)
	}
}

func TestAppendSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	j, recs := openT(t, dir, Options{Fsync: FsyncAlways})
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	sub := &protocol.JournalRecord{Kind: protocol.JournalSubmit, JobID: 7, Key: 42, Client: "c1", Payload: []byte("req")}
	if err := j.Append(sub); err != nil {
		t.Fatalf("Append: %v", err)
	}
	com := &protocol.JournalRecord{Kind: protocol.JournalComplete, JobID: 7, Payload: []byte("reply")}
	if err := j.Append(com); err != nil {
		t.Fatalf("Append: %v", err)
	}
	j.Close()

	j, recs = openT(t, dir, Options{})
	defer j.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	if recs[0].Kind != protocol.JournalSubmit || recs[0].JobID != 7 || recs[0].Key != 42 ||
		recs[0].Client != "c1" || string(recs[0].Payload) != "req" {
		t.Fatalf("submit record corrupted: %+v", recs[0])
	}
	if recs[1].Kind != protocol.JournalComplete || string(recs[1].Payload) != "reply" {
		t.Fatalf("complete record corrupted: %+v", recs[1])
	}
}

func TestFetchedJobsCompactAway(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncAlways})
	for id := uint64(1); id <= 3; id++ {
		j.Append(&protocol.JournalRecord{Kind: protocol.JournalSubmit, JobID: id, Key: id * 10})
		j.Append(&protocol.JournalRecord{Kind: protocol.JournalComplete, JobID: id, Payload: []byte("r")})
	}
	// Jobs 1 and 3 delivered; job 2 still fetchable.
	j.Append(&protocol.JournalRecord{Kind: protocol.JournalFetched, JobID: 1})
	j.Append(&protocol.JournalRecord{Kind: protocol.JournalFetched, JobID: 3})
	j.Close()

	j, recs := openT(t, dir, Options{})
	j.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2 (submit+complete of job 2): %+v", len(recs), recs)
	}
	for _, r := range recs {
		if r.JobID != 2 {
			t.Fatalf("record for delivered job %d survived compaction", r.JobID)
		}
	}

	// The rewrite shrank the on-disk log to just the survivors: a third
	// open sees the same two records without rescanning history.
	j, recs = openT(t, dir, Options{})
	j.Close()
	if len(recs) != 2 {
		t.Fatalf("after compaction replay got %d records, want 2", len(recs))
	}
}

// TestCompactKeepsLastCompletion pins last-wins for completion
// records. A job can complete more than once — an oversized result
// journals payload-less, replay re-executes, and the re-execution
// appends a fresh completion — and only the newest record reflects the
// job's final state: keeping the first would re-execute the job on
// every subsequent restart even after it reached a terminal error.
func TestCompactKeepsLastCompletion(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncAlways})
	j.Append(&protocol.JournalRecord{Kind: protocol.JournalSubmit, JobID: 1, Key: 11, Payload: []byte("req")})
	// Oversized success: completed-without-payload.
	j.Append(&protocol.JournalRecord{Kind: protocol.JournalComplete, JobID: 1})
	// Re-execution after a restart ends in a terminal error.
	j.Append(&protocol.JournalRecord{Kind: protocol.JournalComplete, JobID: 1, ErrCode: 3, ErrDetail: "boom"})
	j.Close()

	j, recs := openT(t, dir, Options{})
	j.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want submit+last completion: %+v", len(recs), recs)
	}
	if recs[0].Kind != protocol.JournalSubmit {
		t.Fatalf("first surviving record = %+v, want the submit", recs[0])
	}
	if recs[1].Kind != protocol.JournalComplete || recs[1].ErrCode != 3 || recs[1].ErrDetail != "boom" {
		t.Fatalf("surviving completion = %+v, want the later terminal error, not the payload-less first", recs[1])
	}
}

// TestLockExcludesSecondProcess proves two server processes cannot
// share a journal directory: the child process (this test binary
// re-run with the directory in the environment) must fail to Open
// while the parent holds the lock, and succeed once it is released.
func TestLockExcludesSecondProcess(t *testing.T) {
	if dir := os.Getenv("NINF_JOURNAL_LOCK_DIR"); dir != "" {
		// Child mode: report the Open outcome on stdout for the parent.
		j, _, err := Open(dir, Options{})
		if err != nil {
			fmt.Println("CHILD-LOCKED")
			return
		}
		j.Close()
		fmt.Println("CHILD-ACQUIRED")
		return
	}
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	child := func() string {
		cmd := exec.Command(os.Args[0], "-test.run", "^TestLockExcludesSecondProcess$", "-test.v")
		cmd.Env = append(os.Environ(), "NINF_JOURNAL_LOCK_DIR="+dir)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("child process: %v\n%s", err, out)
		}
		return string(out)
	}
	if out := child(); !strings.Contains(out, "CHILD-LOCKED") {
		t.Fatalf("second process opened a held journal directory:\n%s", out)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if out := child(); !strings.Contains(out, "CHILD-ACQUIRED") {
		t.Fatalf("lock not released by Close:\n%s", out)
	}
}

// TestLockAllowsSameProcessReopen pins the fcntl lock's per-process
// scope: reopening the directory within one process — how the chaos
// suite and the restart experiment simulate a crash+restart while the
// abandoned journal's descriptors are still open — must succeed.
func TestLockAllowsSameProcessReopen(t *testing.T) {
	dir := t.TempDir()
	j1, _ := openT(t, dir, Options{})
	defer j1.Close()
	j2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("same-process reopen: %v", err)
	}
	j2.Close()
}

func TestTornTailStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncAlways})
	j.Append(&protocol.JournalRecord{Kind: protocol.JournalSubmit, JobID: 1, Key: 1})
	j.Append(&protocol.JournalRecord{Kind: protocol.JournalSubmit, JobID: 2, Key: 2})
	j.Close()

	// Simulate a crash mid-append: a record header promising more bytes
	// than the file holds.
	path := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x01, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01})
	f.Close()

	j, recs := openT(t, dir, Options{})
	j.Close()
	if len(recs) != 2 {
		t.Fatalf("replay across torn tail got %d records, want 2", len(recs))
	}

	// The compaction rewrite dropped the torn bytes: the log now ends at
	// the last whole record.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, off := ScanRecords(b); off != len(b) {
		t.Fatalf("rewritten log still has %d trailing bytes past the clean prefix", len(b)-off)
	}
}

func TestCorruptCRCStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncAlways})
	j.Append(&protocol.JournalRecord{Kind: protocol.JournalSubmit, JobID: 1, Key: 1, Payload: []byte("aaaa")})
	j.Append(&protocol.JournalRecord{Kind: protocol.JournalSubmit, JobID: 2, Key: 2, Payload: []byte("bbbb")})
	j.Close()

	path := filepath.Join(dir, "wal.log")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff // flip a byte in the last record's body
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	j, recs := openT(t, dir, Options{})
	j.Close()
	if len(recs) != 1 || recs[0].JobID != 1 {
		t.Fatalf("replay past corrupt record got %+v, want only job 1", recs)
	}
}

func TestScanRecordsRejectsBadHeader(t *testing.T) {
	if recs, off := ScanRecords([]byte("NOTAWAL!....")); recs != nil || off != 0 {
		t.Fatalf("scan of bad header returned %d records at offset %d", len(recs), off)
	}
	if recs, _ := ScanRecords(nil); recs != nil {
		t.Fatalf("scan of empty input returned records")
	}
}

func TestFsyncIntervalBatches(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: FsyncInterval, SyncEvery: time.Hour})
	defer j.Close()
	// With a huge interval no append syncs; this only asserts the policy
	// path executes without error and Sync flushes on demand.
	for id := uint64(1); id <= 10; id++ {
		if err := j.Append(&protocol.JournalRecord{Kind: protocol.JournalSubmit, JobID: id, Key: id}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	j.Close()
	if err := j.Append(&protocol.JournalRecord{Kind: protocol.JournalSubmit, JobID: 1}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"always": FsyncAlways, "never": FsyncNever, "interval": FsyncInterval,
		"": FsyncInterval, " Always ": FsyncAlways,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
	for _, p := range []Policy{FsyncAlways, FsyncNever, FsyncInterval} {
		if rt, err := ParsePolicy(p.String()); err != nil || rt != p {
			t.Errorf("round trip %v -> %q -> %v, %v", p, p.String(), rt, err)
		}
	}
}

// FuzzScanRecords hammers the replay scanner with arbitrary bytes: it
// must neither panic nor over-allocate, and whatever clean prefix it
// reports must itself rescan to the same records.
func FuzzScanRecords(f *testing.F) {
	f.Add([]byte(fileHeader))
	dir := f.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncAlways})
	if err == nil {
		j.Append(&protocol.JournalRecord{Kind: protocol.JournalSubmit, JobID: 1, Key: 9, Client: "c", Payload: []byte("xyz")})
		j.Append(&protocol.JournalRecord{Kind: protocol.JournalComplete, JobID: 1, ErrCode: 3, ErrDetail: "boom"})
		j.Close()
		if b, err := os.ReadFile(filepath.Join(dir, walName)); err == nil {
			f.Add(b)
			f.Add(b[:len(b)-3]) // torn tail
		}
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		recs, off := ScanRecords(b)
		if off < 0 || off > len(b) {
			t.Fatalf("offset %d out of range [0,%d]", off, len(b))
		}
		recs2, off2 := ScanRecords(b[:off])
		if off2 != off || len(recs2) != len(recs) {
			t.Fatalf("clean prefix rescan: %d records at %d, want %d at %d", len(recs2), off2, len(recs), off)
		}
	})
}
