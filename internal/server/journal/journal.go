// Package journal implements the computational server's crash-recovery
// write-ahead log and incarnation-epoch store.
//
// A server started with a journal directory appends one record per
// two-phase job transition — admitted, completed, delivered — to an
// append-only log (wal.log). After a crash, Open replays the log:
// records for delivered jobs cancel out, and what survives is exactly
// the set of jobs a client could still legitimately ask about. The
// server re-queues unfinished submits for execution and re-serves
// completed-but-unfetched results under their original job IDs and
// idempotency keys, so a client's retried Submit or Fetch lands on the
// same job across the crash (GridFTP's restart-marker idea applied to
// RPC jobs rather than transfers).
//
// Open also mints the incarnation epoch: a monotonic counter persisted
// beside the log (epoch file), incremented once per open. The epoch
// rides in hello negotiation and Stats so clients and the metaserver
// can tell "same server, still alive" from "restarted, volatile state
// gone".
//
// On-disk format. The log is a stream of length-prefixed,
// CRC-protected records:
//
//	file header:  "NINFWAL1" (8 bytes)
//	record:       u32 body length | u32 CRC-32 (IEEE) of body | body
//
// Body encoding is protocol.JournalRecord (XDR). A torn tail — a
// partial record from a crash mid-append — fails the length or CRC
// check; replay stops there and the file is truncated to the last
// whole record, which is the correct recovery: the append that tore
// never acknowledged its SubmitOK. On every open the log is compacted:
// surviving records are rewritten to a temporary file that atomically
// replaces the old log, so delivered jobs do not accrete forever.
//
// Durability is configurable (Options.Fsync): FsyncAlways flushes
// after every append and loses nothing a crash-stopped kernel had
// acknowledged; FsyncInterval (the default) bounds loss to the
// configured window; FsyncNever leaves flushing to the OS. The journal
// never retains caller buffers: Append copies the encoded record into
// its own scratch buffer before writing.
//
// Open holds a POSIX fcntl lock (lock file) for the journal's
// lifetime, so a second server *process* pointed at the same directory
// fails fast instead of corrupting the log; the kernel releases the
// lock on process death, so a crash never wedges the directory. The
// lock is per-process: reopening the journal within one process (an
// in-process restart, as tests do) is allowed.
//
// Recovery is exactly-once-effect only for results the journal could
// retain inline: a completed result above Options.ResultCap journals
// payload-less, and replay re-executes the job — repeating its side
// effects — to recover the reply (see Options.ResultCap).
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"ninf/internal/protocol"
)

// Policy selects when appends reach stable storage.
type Policy int

// Fsync policies.
const (
	// FsyncInterval flushes at most once per Options.SyncEvery; a crash
	// loses at most that window of acknowledged submits. The default.
	FsyncInterval Policy = iota
	// FsyncAlways flushes after every append, before the caller
	// acknowledges the client. Durable, and on the admission path.
	FsyncAlways
	// FsyncNever never calls fsync; the OS flushes when it pleases. A
	// process crash (the common case) still loses nothing — the
	// written bytes survive in the page cache — but a machine crash
	// can lose acknowledged work.
	FsyncNever
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParsePolicy parses a -fsync flag value.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("journal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// Options parameterizes a journal. The zero value is usable.
type Options struct {
	// Fsync is the durability policy (default FsyncInterval).
	Fsync Policy
	// SyncEvery bounds how stale the log may be under FsyncInterval
	// (default 100ms).
	SyncEvery time.Duration
	// ResultCap is the largest completed result (encoded reply bytes)
	// journaled inline (default 1 MiB). Bigger results are recorded as
	// completed-without-payload, and replay re-executes the job instead
	// of re-serving it — an at-least-once caveat: the re-execution
	// repeats any side effects the routine has, so recovery is
	// exactly-once-effect only for replies at or below the cap. Size
	// ResultCap above the largest reply of side-effecting routines.
	ResultCap int
}

const (
	fileHeader       = "NINFWAL1"
	walName          = "wal.log"
	epochName        = "epoch"
	lockName         = "lock"
	defaultSyncEvery = 100 * time.Millisecond
	// DefaultResultCap is the default Options.ResultCap.
	DefaultResultCap = 1 << 20
	// maxRecord bounds one record body, a corruption guard for the
	// replay scanner: plainly impossible lengths stop the scan rather
	// than attempting a multi-gigabyte allocation.
	maxRecord = 64 << 20
)

// Journal is an open write-ahead log. Append is safe for concurrent
// use; in the server every append happens under the server mutex, so
// the log's record order is the order the server observed.
type Journal struct {
	dir   string
	opts  Options
	epoch uint64

	mu       sync.Mutex
	f        *os.File
	lock     *os.File // held fcntl lock on the directory's lock file
	scratch  []byte   // header+body assembly, reused across appends
	lastSync time.Time
	closed   bool
}

// Open creates (or opens) the journal in dir, advances and persists
// the incarnation epoch, compacts the existing log, and returns the
// surviving records in log order for the server to replay.
func Open(dir string, opts Options) (*Journal, []protocol.JournalRecord, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = defaultSyncEvery
	}
	if opts.ResultCap <= 0 {
		opts.ResultCap = DefaultResultCap
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	// Exclude other server processes before touching epoch or log: two
	// servers sharing a directory would both mint epochs, interleave
	// appends, and double-replay (and re-execute) the same jobs.
	lock, err := lockFile(filepath.Join(dir, lockName))
	if err != nil {
		return nil, nil, err
	}
	epoch, err := advanceEpoch(dir)
	if err != nil {
		lock.Close()
		return nil, nil, err
	}
	recs, err := readLog(filepath.Join(dir, walName))
	if err != nil {
		lock.Close()
		return nil, nil, err
	}
	live := compact(recs)
	if err := rewriteLog(dir, live); err != nil {
		lock.Close()
		return nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		lock.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts, epoch: epoch, f: f, lock: lock, lastSync: time.Now()}
	return j, live, nil
}

// Epoch returns the incarnation epoch minted by Open (always >= 1).
func (j *Journal) Epoch() uint64 { return j.epoch }

// ResultCap returns the resolved inline-result size cap.
func (j *Journal) ResultCap() int { return j.opts.ResultCap }

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Append encodes and writes one record, flushing per the fsync policy.
// The record's byte slices are copied before the call returns; the
// caller keeps ownership of whatever they alias.
func (j *Journal) Append(rec *protocol.JournalRecord) error {
	body := rec.Encode()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	need := 8 + len(body)
	if cap(j.scratch) < need {
		j.scratch = make([]byte, 0, need)
	}
	b := j.scratch[:8]
	binary.BigEndian.PutUint32(b[0:], uint32(len(body)))
	binary.BigEndian.PutUint32(b[4:], crc32.ChecksumIEEE(body))
	b = append(b, body...)
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	switch j.opts.Fsync {
	case FsyncAlways:
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	case FsyncInterval:
		if now := time.Now(); now.Sub(j.lastSync) >= j.opts.SyncEvery {
			if err := j.f.Sync(); err != nil {
				return fmt.Errorf("journal: sync: %w", err)
			}
			j.lastSync = now
		}
	}
	return nil
}

// Sync flushes the log to stable storage regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.f.Sync()
}

// Close flushes and closes the log. The epoch file stays; the next
// Open mints the next incarnation.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	serr := j.f.Sync()
	cerr := j.f.Close()
	if j.lock != nil {
		j.lock.Close() // releases the fcntl directory lock
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// advanceEpoch reads, increments, and atomically rewrites the epoch
// file. A missing or corrupt file restarts the count at 1 — epochs
// need only change across restarts, not be gap-free.
func advanceEpoch(dir string) (uint64, error) {
	path := filepath.Join(dir, epochName)
	var prev uint64
	if b, err := os.ReadFile(path); err == nil {
		if v, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64); perr == nil {
			prev = v
		}
	}
	next := prev + 1
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, []byte(strconv.FormatUint(next, 10)+"\n")); err != nil {
		return 0, fmt.Errorf("journal: epoch: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("journal: epoch: %w", err)
	}
	syncDir(dir)
	return next, nil
}

// writeFileSync writes b to path and fsyncs it before closing.
func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed file survives a crash;
// best-effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// readLog scans the log, decoding whole records until EOF, a torn
// tail, or corruption; scanning stops at the first bad record (all
// later bytes are unreachable by the append-only writer's ordering).
func readLog(path string) ([]protocol.JournalRecord, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	recs, _ := ScanRecords(b)
	return recs, nil
}

// ScanRecords decodes the record stream of a journal file (header plus
// length/CRC-framed bodies), stopping at the first torn or corrupt
// record. It returns the whole records and the byte offset where the
// clean prefix ends. Exported for the fuzz target and tests; the
// scanner must never panic or over-allocate on adversarial input.
func ScanRecords(b []byte) ([]protocol.JournalRecord, int) {
	if len(b) < len(fileHeader) || string(b[:len(fileHeader)]) != fileHeader {
		return nil, 0
	}
	off := len(fileHeader)
	var recs []protocol.JournalRecord
	for {
		if len(b)-off < 8 {
			return recs, off
		}
		n := int(binary.BigEndian.Uint32(b[off:]))
		sum := binary.BigEndian.Uint32(b[off+4:])
		if n < 0 || n > maxRecord || len(b)-off-8 < n {
			return recs, off
		}
		body := b[off+8 : off+8+n]
		if crc32.ChecksumIEEE(body) != sum {
			return recs, off
		}
		rec, err := protocol.DecodeJournalRecord(body)
		if err != nil {
			return recs, off
		}
		recs = append(recs, rec)
		off += 8 + n
	}
}

// compact reduces a record stream to the records still worth
// replaying: jobs with a fetched record vanish entirely, and each
// surviving job keeps its first submit record and (when present) its
// last completion record, in original log order. Last wins for
// completions because a job can legitimately complete more than once —
// an oversized result journals payload-less, the replay re-executes,
// and the re-execution appends a fresh completion; only the newest one
// (possibly a terminal error, or a reply that now fits the cap)
// reflects the job's final state.
func compact(recs []protocol.JournalRecord) []protocol.JournalRecord {
	fetched := make(map[uint64]bool)
	lastComplete := make(map[uint64]int)
	for i, r := range recs {
		switch r.Kind {
		case protocol.JournalFetched:
			fetched[r.JobID] = true
		case protocol.JournalComplete:
			lastComplete[r.JobID] = i
		}
	}
	var out []protocol.JournalRecord
	seenSubmit := make(map[uint64]bool)
	for i, r := range recs {
		if fetched[r.JobID] || r.Kind == protocol.JournalFetched {
			continue
		}
		switch r.Kind {
		case protocol.JournalSubmit:
			if seenSubmit[r.JobID] {
				continue // duplicated submit (e.g. replayed append); first wins
			}
			seenSubmit[r.JobID] = true
		case protocol.JournalComplete:
			if lastComplete[r.JobID] != i {
				continue
			}
		}
		out = append(out, r)
	}
	return out
}

// rewriteLog atomically replaces the log with exactly recs.
func rewriteLog(dir string, recs []protocol.JournalRecord) error {
	path := filepath.Join(dir, walName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	err = writeRecords(f, recs)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	syncDir(dir)
	return nil
}

// writeRecords writes the file header and framed records.
func writeRecords(w io.Writer, recs []protocol.JournalRecord) error {
	if _, err := io.WriteString(w, fileHeader); err != nil {
		return err
	}
	var hdr [8]byte
	for i := range recs {
		body := recs[i].Encode()
		binary.BigEndian.PutUint32(hdr[0:], uint32(len(body)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}
