package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"ninf/internal/idl"
	"ninf/internal/protocol"
)

// TestStressMixedWorkload hammers one server with many concurrent
// connections mixing blocking calls, two-phase jobs, interface
// queries, stats probes and deliberate failures. Run with -race this
// is the package's main concurrency soak.
func TestStressMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	reg := NewRegistry()
	var executed atomic.Int64
	err := reg.RegisterIDL(`
Define work(mode_in int n, mode_in double v[n], mode_out double w[n]) Complexity n Calls "go" work(n, v, w);
Define fail(mode_in int n) Calls "go" fail(n);
`, map[string]Handler{
		"work": func(_ context.Context, args []idl.Value) error {
			executed.Add(1)
			v := args[1].([]float64)
			w := args[2].([]float64)
			for i := range v {
				w[i] = v[i] * 2
			}
			return nil
		},
		"fail": func(_ context.Context, _ []idl.Value) error {
			return fmt.Errorf("always fails")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{PEs: 4}, reg)
	defer s.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)

	const clients = 20
	const iters = 25
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errCh <- err
				return
			}
			defer conn.Close()
			workEx := reg.Lookup("work")
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0, 1: // blocking call
					n := 1 + (ci+i)%64
					v := make([]float64, n)
					for j := range v {
						v[j] = float64(j)
					}
					p, err := protocol.EncodeCallRequest(workEx.Info,
						&protocol.CallRequest{Name: "work", Args: []idl.Value{int64(n), v, nil}})
					if err != nil {
						errCh <- err
						return
					}
					typ, rp, err := callNB(conn, protocol.MsgCall, p)
					if err != nil || typ != protocol.MsgCallOK {
						errCh <- fmt.Errorf("call: %v %v", typ, err)
						return
					}
					_, out, err := protocol.DecodeCallReply(workEx.Info,
						[]idl.Value{int64(n), v, nil}, rp)
					if err != nil {
						errCh <- err
						return
					}
					w := out[2].([]float64)
					for j := range v {
						if w[j] != 2*v[j] {
							errCh <- fmt.Errorf("corrupted result")
							return
						}
					}
				case 2: // two-phase
					p, _ := protocol.EncodeCallRequest(workEx.Info,
						&protocol.CallRequest{Name: "work", Args: []idl.Value{int64(4), make([]float64, 4), nil}})
					typ, rp, err := callNB(conn, protocol.MsgSubmit, submitPayload(uint64(1+ci*iters+i), p))
					if err != nil || typ != protocol.MsgSubmitOK {
						errCh <- fmt.Errorf("submit: %v %v", typ, err)
						return
					}
					sr, _ := protocol.DecodeSubmitReply(rp)
					fr := protocol.FetchRequest{JobID: sr.JobID, Wait: true}
					typ, _, err = callNB(conn, protocol.MsgFetch, fr.Encode())
					if err != nil || typ != protocol.MsgFetchOK {
						errCh <- fmt.Errorf("fetch: %v %v", typ, err)
						return
					}
				case 3: // error path
					failEx := reg.Lookup("fail")
					p, _ := protocol.EncodeCallRequest(failEx.Info,
						&protocol.CallRequest{Name: "fail", Args: []idl.Value{int64(1)}})
					typ, _, err := callNB(conn, protocol.MsgCall, p)
					if err != nil || typ != protocol.MsgError {
						errCh <- fmt.Errorf("fail call: %v %v", typ, err)
						return
					}
				case 4: // metadata
					if typ, _, err := callNB(conn, protocol.MsgStats, nil); err != nil || typ != protocol.MsgStatsOK {
						errCh <- fmt.Errorf("stats: %v %v", typ, err)
						return
					}
					if typ, _, err := callNB(conn, protocol.MsgTrace, nil); err != nil || typ != protocol.MsgTraceOK {
						errCh <- fmt.Errorf("trace: %v %v", typ, err)
						return
					}
				}
			}
			errCh <- nil
		}(ci)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := executed.Load(); got < clients*iters/2 {
		t.Errorf("only %d executions recorded", got)
	}
	st := s.Stats()
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("leftover work after soak: %+v", st)
	}
}
