package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ninf/internal/idl"
	"ninf/internal/protocol"
	"ninf/internal/server/sched"
)

// testRegistry builds a registry with simple routines driven entirely
// through channels so tests control execution timing.
func testRegistry(t *testing.T) (*Registry, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	reg := NewRegistry()
	err := reg.RegisterIDL(`
Define double_it(mode_in int n, mode_in double v[n], mode_out double w[n])
    Complexity n
    Calls "go" double_it(n, v, w);
Define block(mode_in int n)
    Calls "go" block(n);
Define boom(mode_in int n)
    Calls "go" boom(n);
Define panics(mode_in int n)
    Calls "go" panics(n);
`, map[string]Handler{
		"double_it": func(_ context.Context, args []idl.Value) error {
			v := args[1].([]float64)
			w := args[2].([]float64)
			for i := range v {
				w[i] = 2 * v[i]
			}
			return nil
		},
		"block": func(ctx context.Context, _ []idl.Value) error {
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
		"boom": func(_ context.Context, _ []idl.Value) error {
			return errors.New("deliberate failure")
		},
		"panics": func(_ context.Context, _ []idl.Value) error {
			panic("deliberate panic")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg, release
}

// pipeConn returns a connected client conn served by s.
func pipeConn(t *testing.T, s *Server) net.Conn {
	t.Helper()
	cc, sc := net.Pipe()
	go s.ServeConn(sc)
	t.Cleanup(func() { cc.Close(); sc.Close() })
	return cc
}

func call(t *testing.T, conn net.Conn, typ protocol.MsgType, payload []byte) (protocol.MsgType, []byte) {
	t.Helper()
	if err := protocol.WriteFrame(conn, typ, payload); err != nil {
		t.Fatal(err)
	}
	rt, rp, err := protocol.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	return rt, rp
}

// callNB is the goroutine-safe variant of call: it reports failures as
// errors instead of t.Fatal.
func callNB(conn net.Conn, typ protocol.MsgType, payload []byte) (protocol.MsgType, []byte, error) {
	if err := protocol.WriteFrame(conn, typ, payload); err != nil {
		return 0, nil, err
	}
	return protocol.ReadFrame(conn, 0)
}

func encodeCall(t *testing.T, reg *Registry, name string, args ...idl.Value) []byte {
	t.Helper()
	ex := reg.Lookup(name)
	if ex == nil {
		t.Fatalf("no routine %q", name)
	}
	p, err := protocol.EncodeCallRequest(ex.Info, &protocol.CallRequest{Name: name, Args: args})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// submitPayload prefixes a call payload with the submit idempotency
// key the MsgSubmit wire format carries.
func submitPayload(key uint64, call []byte) []byte {
	p := make([]byte, 8+len(call))
	binary.BigEndian.PutUint64(p, key)
	copy(p[8:], call)
	return p
}

func TestPingListStatsInterface(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{Hostname: "unit"}, reg)
	defer s.Close()
	conn := pipeConn(t, s)

	if typ, _ := call(t, conn, protocol.MsgPing, nil); typ != protocol.MsgPong {
		t.Errorf("ping → %v", typ)
	}

	typ, p := call(t, conn, protocol.MsgList, nil)
	if typ != protocol.MsgListReply {
		t.Fatalf("list → %v", typ)
	}
	lr, err := protocol.DecodeListReply(p)
	if err != nil || len(lr.Names) != 4 {
		t.Errorf("list = %v, %v", lr.Names, err)
	}

	typ, p = call(t, conn, protocol.MsgStats, nil)
	if typ != protocol.MsgStatsOK {
		t.Fatalf("stats → %v", typ)
	}
	st, err := protocol.DecodeStats(p)
	if err != nil || st.Hostname != "unit" || st.PEs != 1 {
		t.Errorf("stats = %+v, %v", st, err)
	}

	req := protocol.InterfaceRequest{Name: "double_it"}
	typ, p = call(t, conn, protocol.MsgInterface, req.Encode())
	if typ != protocol.MsgInterfaceOK {
		t.Fatalf("interface → %v", typ)
	}
	info, err := protocol.DecodeInterfaceReply(p)
	if err != nil || info.Name != "double_it" {
		t.Errorf("interface = %+v, %v", info, err)
	}

	// Unknown routine.
	req = protocol.InterfaceRequest{Name: "nope"}
	typ, p = call(t, conn, protocol.MsgInterface, req.Encode())
	if typ != protocol.MsgError {
		t.Fatalf("unknown interface → %v", typ)
	}
	er, _ := protocol.DecodeErrorReply(p)
	if er.Code != protocol.CodeUnknownRoutine {
		t.Errorf("code = %d", er.Code)
	}
}

func TestBlockingCall(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{}, reg)
	defer s.Close()
	conn := pipeConn(t, s)

	payload := encodeCall(t, reg, "double_it", int64(3), []float64{1, 2, 3}, nil)
	typ, p := call(t, conn, protocol.MsgCall, payload)
	if typ != protocol.MsgCallOK {
		t.Fatalf("call → %v: %s", typ, p)
	}
	info := reg.Lookup("double_it").Info
	tm, out, err := protocol.DecodeCallReply(info, []idl.Value{int64(3), []float64{1, 2, 3}, nil}, p)
	if err != nil {
		t.Fatal(err)
	}
	w := out[2].([]float64)
	if w[0] != 2 || w[1] != 4 || w[2] != 6 {
		t.Errorf("w = %v", w)
	}
	if tm.Enqueue == 0 || tm.Dequeue < tm.Enqueue || tm.Complete < tm.Dequeue {
		t.Errorf("timings not monotone: %+v", tm)
	}
}

func TestCallErrors(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{}, reg)
	defer s.Close()
	conn := pipeConn(t, s)

	// Execution failure.
	typ, p := call(t, conn, protocol.MsgCall, encodeCall(t, reg, "boom", int64(1)))
	if typ != protocol.MsgError {
		t.Fatalf("boom → %v", typ)
	}
	er, _ := protocol.DecodeErrorReply(p)
	if er.Code != protocol.CodeExecFailed {
		t.Errorf("code = %d", er.Code)
	}

	// Panic recovery: server must answer and stay alive.
	typ, p = call(t, conn, protocol.MsgCall, encodeCall(t, reg, "panics", int64(1)))
	if typ != protocol.MsgError {
		t.Fatalf("panic → %v", typ)
	}
	er, _ = protocol.DecodeErrorReply(p)
	if er.Code != protocol.CodeExecFailed {
		t.Errorf("code = %d", er.Code)
	}
	if typ, _ := call(t, conn, protocol.MsgPing, nil); typ != protocol.MsgPong {
		t.Error("server dead after handler panic")
	}
}

func TestFaultInjection(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{}, reg)
	defer s.Close()
	conn := pipeConn(t, s)
	s.FailNextCalls(1)
	typ, _ := call(t, conn, protocol.MsgCall, encodeCall(t, reg, "double_it", int64(1), []float64{1}, nil))
	if typ != protocol.MsgError {
		t.Fatalf("injected fault → %v", typ)
	}
	typ, _ = call(t, conn, protocol.MsgCall, encodeCall(t, reg, "double_it", int64(1), []float64{1}, nil))
	if typ != protocol.MsgCallOK {
		t.Errorf("second call → %v", typ)
	}
}

func TestTaskParallelRunsConcurrently(t *testing.T) {
	reg, release := testRegistry(t)
	s := New(Config{PEs: 4, Mode: TaskParallel}, reg)
	defer s.Close()

	var wg sync.WaitGroup
	results := make(chan protocol.MsgType, 4)
	for i := 0; i < 4; i++ {
		conn := pipeConn(t, s)
		wg.Add(1)
		go func(c net.Conn) {
			defer wg.Done()
			typ, _, _ := callNB(c, protocol.MsgCall, encodeCall(t, reg, "block", int64(1)))
			results <- typ
		}(conn)
	}
	// All four must be running concurrently (1 PE each on 4 PEs).
	waitFor(t, func() bool {
		st := s.Stats()
		return st.Running == 4
	}, "4 concurrent tasks")
	close(release)
	wg.Wait()
	for i := 0; i < 4; i++ {
		if typ := <-results; typ != protocol.MsgCallOK {
			t.Errorf("call %d → %v", i, typ)
		}
	}
}

func TestDataParallelSerializes(t *testing.T) {
	reg, release := testRegistry(t)
	s := New(Config{PEs: 4, Mode: DataParallel}, reg)
	defer s.Close()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		conn := pipeConn(t, s)
		wg.Add(1)
		go func(c net.Conn) {
			defer wg.Done()
			callNB(c, protocol.MsgCall, encodeCall(t, reg, "block", int64(1)))
		}(conn)
	}
	// Only one job may run at a time; the others queue.
	waitFor(t, func() bool {
		st := s.Stats()
		return st.Running == 1 && st.Queued == 2
	}, "1 running, 2 queued")
	release <- struct{}{} // finish first
	waitFor(t, func() bool {
		st := s.Stats()
		return st.Running == 1 && st.Queued == 1
	}, "second dispatched")
	close(release)
	wg.Wait()
}

func TestMaxQueueOverload(t *testing.T) {
	reg, release := testRegistry(t)
	defer close(release)
	s := New(Config{PEs: 1, MaxQueue: 1}, reg)
	defer s.Close()

	// First call occupies the PE; it dequeues immediately so the
	// queue is empty again.
	c1 := pipeConn(t, s)
	p1 := encodeCall(t, reg, "block", int64(1))
	go callNB(c1, protocol.MsgCall, p1)
	waitFor(t, func() bool { return s.Stats().Running == 1 }, "first running")

	// Second waits in queue (MaxQueue=1 allows it)…
	c2 := pipeConn(t, s)
	p2 := encodeCall(t, reg, "block", int64(1))
	go callNB(c2, protocol.MsgCall, p2)
	waitFor(t, func() bool { return s.Stats().Queued == 1 }, "second queued")

	// …third must be rejected.
	c3 := pipeConn(t, s)
	typ, p := call(t, c3, protocol.MsgCall, encodeCall(t, reg, "block", int64(1)))
	if typ != protocol.MsgError {
		t.Fatalf("third → %v", typ)
	}
	er, _ := protocol.DecodeErrorReply(p)
	if er.Code != protocol.CodeOverloaded {
		t.Errorf("code = %d, want overloaded", er.Code)
	}
}

func TestTwoPhaseSubmitFetch(t *testing.T) {
	reg, release := testRegistry(t)
	s := New(Config{}, reg)
	defer s.Close()
	conn := pipeConn(t, s)

	typ, p := call(t, conn, protocol.MsgSubmit, submitPayload(1, encodeCall(t, reg, "block", int64(1))))
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("submit → %v", typ)
	}
	sr, err := protocol.DecodeSubmitReply(p)
	if err != nil {
		t.Fatal(err)
	}

	// Immediate fetch: not ready.
	fr := protocol.FetchRequest{JobID: sr.JobID}
	typ, p = call(t, conn, protocol.MsgFetch, fr.Encode())
	if typ != protocol.MsgError {
		t.Fatalf("early fetch → %v", typ)
	}
	if er, _ := protocol.DecodeErrorReply(p); er.Code != protocol.CodeNotReady {
		t.Errorf("code = %d, want not-ready", er.Code)
	}

	close(release)
	fr.Wait = true
	typ, _ = call(t, conn, protocol.MsgFetch, fr.Encode())
	if typ != protocol.MsgFetchOK {
		t.Fatalf("fetch → %v", typ)
	}

	// Delivery does not consume the job on the spot: it lingers
	// re-fetchable for DeliveredTTL, covering a reply lost in transit
	// after a locally successful write.
	typ, _ = call(t, conn, protocol.MsgFetch, fr.Encode())
	if typ != protocol.MsgFetchOK {
		t.Fatalf("refetch during delivered linger → %v, want the retained result", typ)
	}

	// Once the linger expires the job is gone for good.
	if n := s.ExpireJobs(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("expired %d jobs, want the delivered one", n)
	}
	typ, p = call(t, conn, protocol.MsgFetch, fr.Encode())
	if typ != protocol.MsgError {
		t.Fatalf("refetch after linger → %v", typ)
	}
	if er, _ := protocol.DecodeErrorReply(p); er.Code != protocol.CodeUnknownJob {
		t.Errorf("code = %d, want unknown job", er.Code)
	}
}

// TestSubmitIdempotencyKeyDedupe proves the exactly-once admission
// contract of the two-phase protocol: re-sending a submission under
// the same idempotency key (the client's transport-fault retry) is
// answered with the already-admitted job, not executed again — through
// the delivered linger too, so a client whose FetchOK was lost and who
// re-submits under its original key re-attaches instead of executing
// the work a second time. Only once the linger expires is the key
// released for a fresh admission.
func TestSubmitIdempotencyKeyDedupe(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{}, reg)
	defer s.Close()
	conn := pipeConn(t, s)

	p := submitPayload(77, encodeCall(t, reg, "double_it", int64(1), []float64{3}, nil))
	typ, rp := call(t, conn, protocol.MsgSubmit, p)
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("submit → %v", typ)
	}
	sr1, err := protocol.DecodeSubmitReply(rp)
	if err != nil {
		t.Fatal(err)
	}

	// The retry re-sends the identical payload: same job, no second
	// admission.
	typ, rp = call(t, conn, protocol.MsgSubmit, p)
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("duplicate submit → %v", typ)
	}
	sr2, err := protocol.DecodeSubmitReply(rp)
	if err != nil {
		t.Fatal(err)
	}
	if sr1.JobID != sr2.JobID {
		t.Fatalf("duplicate submit admitted a new job: %d then %d", sr1.JobID, sr2.JobID)
	}
	if total := s.Stats().TotalCalls; total != 1 {
		t.Fatalf("server admitted %d calls for one deduped submission", total)
	}

	fr := protocol.FetchRequest{JobID: sr1.JobID, Wait: true}
	if typ, _ = call(t, conn, protocol.MsgFetch, fr.Encode()); typ != protocol.MsgFetchOK {
		t.Fatalf("fetch → %v", typ)
	}

	// During the delivered linger the key still dedupes: a re-submit
	// (the lost-FetchOK recovery) re-attaches to the delivered job.
	typ, rp = call(t, conn, protocol.MsgSubmit, p)
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("post-fetch submit → %v", typ)
	}
	sr3, err := protocol.DecodeSubmitReply(rp)
	if err != nil {
		t.Fatal(err)
	}
	if sr3.JobID != sr1.JobID {
		t.Fatalf("re-submit during delivered linger admitted a new job: %d, want %d", sr3.JobID, sr1.JobID)
	}
	if total := s.Stats().TotalCalls; total != 1 {
		t.Fatalf("lost-reply re-submit executed again: %d total calls", total)
	}

	// Linger expiry releases the key: the same key now admits fresh.
	if n := s.ExpireJobs(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("expired %d jobs, want 1", n)
	}
	typ, rp = call(t, conn, protocol.MsgSubmit, p)
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("post-expiry submit → %v", typ)
	}
	sr4, err := protocol.DecodeSubmitReply(rp)
	if err != nil {
		t.Fatal(err)
	}
	if sr4.JobID == sr1.JobID {
		t.Fatalf("key 77 still pinned to expired job %d", sr1.JobID)
	}
}

// TestFetchReplyLostKeepsJob proves the at-most-once window the
// delete-before-reply ordering used to open is closed: a fetch whose
// reply is lost in transit leaves the job in the table, so the
// client's retried fetch re-reads the retained result instead of
// getting CodeUnknownJob.
func TestFetchReplyLostKeepsJob(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{}, reg)
	defer s.Close()

	conn := pipeConn(t, s)
	typ, rp := call(t, conn, protocol.MsgSubmit, submitPayload(9, encodeCall(t, reg, "double_it", int64(1), []float64{2}, nil)))
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("submit → %v", typ)
	}
	sr, err := protocol.DecodeSubmitReply(rp)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		st := s.Stats()
		return st.Running == 0 && st.Queued == 0
	}, "job done")

	// Deliver the fetch request, then kill the connection before the
	// reply can be read: net.Pipe writes are synchronous, so the reply
	// write is guaranteed to fail.
	fr := protocol.FetchRequest{JobID: sr.JobID, Wait: true}
	if err := protocol.WriteFrame(conn, protocol.MsgFetch, fr.Encode()); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The retried fetch on a fresh connection must still find the job
	// and its retained result.
	conn2 := pipeConn(t, s)
	typ, _ = call(t, conn2, protocol.MsgFetch, fr.Encode())
	if typ != protocol.MsgFetchOK {
		t.Fatalf("refetch after lost reply → %v, want the retained result", typ)
	}
}

func TestExpireJobs(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{JobTTL: time.Millisecond}, reg)
	defer s.Close()
	conn := pipeConn(t, s)

	typ, _ := call(t, conn, protocol.MsgSubmit, submitPayload(2, encodeCall(t, reg, "double_it", int64(1), []float64{1}, nil)))
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("submit → %v", typ)
	}
	waitFor(t, func() bool { return s.Stats().Running == 0 && s.Stats().Queued == 0 }, "job done")
	if n := s.ExpireJobs(time.Now().Add(time.Hour)); n != 1 {
		t.Errorf("expired %d jobs, want 1", n)
	}
}

func TestCloseFailsQueuedJobs(t *testing.T) {
	reg, release := testRegistry(t)
	defer close(release)
	s := New(Config{PEs: 1}, reg)

	c1 := pipeConn(t, s)
	errs := make(chan protocol.MsgType, 2)
	pb := encodeCall(t, reg, "block", int64(1))
	go func() {
		typ, _, _ := callNB(c1, protocol.MsgCall, pb)
		errs <- typ
	}()
	waitFor(t, func() bool { return s.Stats().Running == 1 }, "first running")

	c2 := pipeConn(t, s)
	go func() {
		typ, _, _ := callNB(c2, protocol.MsgCall, pb)
		errs <- typ
	}()
	waitFor(t, func() bool { return s.Stats().Queued == 1 }, "second queued")

	go s.Close() // cancels the running ctx, fails the queued job
	for i := 0; i < 2; i++ {
		select {
		case typ := <-errs:
			if typ != protocol.MsgError {
				t.Errorf("call %d → %v, want error after Close", i, typ)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout waiting for calls to fail")
		}
	}
}

func TestServeOnTCP(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{}, reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	typ, _ := call(t, conn, protocol.MsgCall, encodeCall(t, reg, "double_it", int64(2), []float64{1, 5}, nil))
	if typ != protocol.MsgCallOK {
		t.Errorf("tcp call → %v", typ)
	}
}

func TestSJFPolicyOrdersByComplexity(t *testing.T) {
	// One PE, SJF: among queued jobs the cheap ones run first.
	reg := NewRegistry()
	var mu sync.Mutex
	var order []int64
	release := make(chan struct{})
	err := reg.RegisterIDL(`
Define gate(mode_in int n) Calls "go" gate(n);
Define work(mode_in int n) Complexity n Calls "go" work(n);
`, map[string]Handler{
		"gate": func(ctx context.Context, _ []idl.Value) error {
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
		"work": func(_ context.Context, args []idl.Value) error {
			mu.Lock()
			order = append(order, args[0].(int64))
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{PEs: 1, Policy: sched.SJF{}}, reg)
	defer s.Close()

	gateConn := pipeConn(t, s)
	pg := encodeCall(t, reg, "gate", int64(0))
	go callNB(gateConn, protocol.MsgCall, pg)
	waitFor(t, func() bool { return s.Stats().Running == 1 }, "gate running")

	var wg sync.WaitGroup
	for _, n := range []int64{900, 100, 500} {
		conn := pipeConn(t, s)
		wg.Add(1)
		pw := encodeCall(t, reg, "work", n)
		go func(c net.Conn, p []byte) {
			defer wg.Done()
			callNB(c, protocol.MsgCall, p)
		}(conn, pw)
		// Deterministic arrival order.
		waitFor(t, func() bool {
			mu.Lock()
			defer mu.Unlock()
			return s.Stats().Queued >= 1
		}, "queued")
		time.Sleep(10 * time.Millisecond)
	}
	waitFor(t, func() bool { return s.Stats().Queued == 3 }, "3 queued")
	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	want := []int64{100, 500, 900}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("SJF order = %v, want %v", order, want)
		}
	}
}

func TestRegistryValidation(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(nil); err == nil {
		t.Error("nil executable accepted")
	}
	info, err := idl.ParseOne(`Define f(mode_in int n) Calls "go" f(n);`)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(&Executable{Info: info}); err == nil {
		t.Error("nil handler accepted")
	}
	h := func(context.Context, []idl.Value) error { return nil }
	if err := reg.Register(&Executable{Info: info, Handler: h, PEs: -1}); err == nil {
		t.Error("negative PEs accepted")
	}
	if err := reg.Register(&Executable{Info: info, Handler: h}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(&Executable{Info: info, Handler: h}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if got := reg.Lookup("f"); got == nil {
		t.Error("lookup failed")
	}
	if got := reg.SortedNames(); len(got) != 1 || got[0] != "f" {
		t.Errorf("names = %v", got)
	}
}

func TestRegisterIDLMismatch(t *testing.T) {
	reg := NewRegistry()
	h := func(context.Context, []idl.Value) error { return nil }
	err := reg.RegisterIDL(`Define f(mode_in int n) Calls "go" f(n);`,
		map[string]Handler{"g": h})
	if err == nil {
		t.Error("handler/IDL name mismatch accepted")
	}
	err = reg.RegisterIDL(`Define f(mode_in int n) Calls "go" f(n);`,
		map[string]Handler{"f": h, "g": h})
	if err == nil {
		t.Error("handler count mismatch accepted")
	}
}

func TestPEOverrideClamped(t *testing.T) {
	reg := NewRegistry()
	info, err := idl.ParseOne(`Define wide(mode_in int n) Calls "go" wide(n);`)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(&Executable{
		Info:    info,
		Handler: func(context.Context, []idl.Value) error { return nil },
		PEs:     16,
	}); err != nil {
		t.Fatal(err)
	}
	s := New(Config{PEs: 4}, reg)
	defer s.Close()
	conn := pipeConn(t, s)
	typ, _ := call(t, conn, protocol.MsgCall, encodeCall(t, reg, "wide", int64(1)))
	if typ != protocol.MsgCallOK {
		t.Errorf("over-wide job did not run: %v", typ)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestExecModeString(t *testing.T) {
	if TaskParallel.String() != "task-parallel" || DataParallel.String() != "data-parallel" {
		t.Error("mode names wrong")
	}
	if s := ExecMode(9).String(); s == "" {
		t.Error("unknown mode empty")
	}
	_ = fmt.Sprintf("%v %v", TaskParallel, DataParallel)
}
