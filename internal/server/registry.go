package server

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"ninf/internal/idl"
)

// A Handler is the Go implementation behind a Ninf executable. It
// receives the decoded argument vector (one entry per IDL parameter;
// out-only entries pre-allocated and zeroed) and mutates out and inout
// values in place. The context is cancelled if the client disconnects
// or the server shuts down.
type Handler func(ctx context.Context, args []idl.Value) error

// An Executable is a registered routine: its compiled interface plus
// its implementation. It corresponds to the paper's "Ninf executable",
// the semi-automatically generated binary registered on the server
// process (§2.1) — here the stub generator output is a Go Handler.
type Executable struct {
	Info    *idl.Info
	Handler Handler
	// PEs overrides the server's execution-mode processor allocation
	// for this routine; 0 means use the server default.
	PEs int
}

// A Registry maps routine names to executables. It is safe for
// concurrent use; registration after the server starts is allowed
// (tools may add routines at run time).
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Executable
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Executable)}
}

// Register adds an executable, validating its interface. Registering a
// name twice is an error: the paper's servers treat names as stable
// identities that metaservers cache.
func (r *Registry) Register(ex *Executable) error {
	if ex == nil || ex.Info == nil {
		return fmt.Errorf("server: nil executable")
	}
	if ex.Handler == nil {
		return fmt.Errorf("server: %s: nil handler", ex.Info.Name)
	}
	if err := idl.Check(ex.Info); err != nil {
		return err
	}
	if ex.PEs < 0 {
		return fmt.Errorf("server: %s: negative PE override", ex.Info.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[ex.Info.Name]; dup {
		return fmt.Errorf("server: %s: already registered", ex.Info.Name)
	}
	r.byName[ex.Info.Name] = ex
	r.order = append(r.order, ex.Info.Name)
	return nil
}

// RegisterIDL parses IDL source and binds each Define to the handler of
// the same name from handlers. Every Define must have a handler and
// every handler a Define.
func (r *Registry) RegisterIDL(src string, handlers map[string]Handler) error {
	infos, err := idl.Parse(src)
	if err != nil {
		return err
	}
	if len(infos) != len(handlers) {
		return fmt.Errorf("server: IDL defines %d routines, %d handlers supplied", len(infos), len(handlers))
	}
	for _, info := range infos {
		h, ok := handlers[info.Name]
		if !ok {
			return fmt.Errorf("server: no handler for IDL routine %q", info.Name)
		}
		if err := r.Register(&Executable{Info: info, Handler: h}); err != nil {
			return err
		}
	}
	return nil
}

// Lookup returns the executable for name, or nil.
func (r *Registry) Lookup(name string) *Executable {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[name]
}

// Names returns the registered routine names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// SortedNames returns the names sorted, for stable display.
func (r *Registry) SortedNames() []string {
	n := r.Names()
	sort.Strings(n)
	return n
}
