package server

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"ninf/internal/idl"
	"ninf/internal/mux"
	"ninf/internal/protocol"
)

// muxSession negotiates a mux session against a served pipe conn.
func muxSession(t *testing.T, s *Server) *mux.Session {
	t.Helper()
	cc, sc := net.Pipe()
	go s.ServeConn(sc)
	t.Cleanup(func() { sc.Close() })
	version, err := mux.Negotiate(cc, 0)
	if err != nil {
		t.Fatalf("negotiate: %v", err)
	}
	sess := mux.New(cc, 0, version)
	t.Cleanup(func() { sess.Close() })
	return sess
}

func emptyReq() *protocol.Buffer { return protocol.AcquireBuffer(0) }

func callReq(t *testing.T, info *idl.Info, name string, vals []idl.Value) *protocol.Buffer {
	t.Helper()
	fb, err := protocol.EncodeCallRequestBuf(info, &protocol.CallRequest{Name: name, Args: vals})
	if err != nil {
		t.Fatal(err)
	}
	return fb
}

func TestMuxUpgradeAndPing(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{PEs: 2}, reg)
	defer s.Close()
	sess := muxSession(t, s)
	rt, fb, _, err := sess.Roundtrip(context.Background(), protocol.MsgPing, emptyReq())
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Release()
	if rt != protocol.MsgPong {
		t.Fatalf("ping over mux: got %v", rt)
	}
}

// TestMuxNoHeadOfLineBlocking pins the tentpole property: with a
// blocking call in flight on the connection, a ping pipelined behind
// it must be answered while the call still runs — the lockstep loop
// would park on the call and starve it.
func TestMuxNoHeadOfLineBlocking(t *testing.T) {
	reg, release := testRegistry(t)
	s := New(Config{PEs: 2}, reg)
	defer s.Close()
	sess := muxSession(t, s)

	blockInfo := reg.Lookup("block").Info
	callDone := make(chan error, 1)
	go func() {
		rt, fb, _, err := sess.Roundtrip(context.Background(), protocol.MsgCall,
			callReq(t, blockInfo, "block", []idl.Value{int64(1)}))
		if err == nil {
			fb.Release()
			if rt != protocol.MsgCallOK {
				err = errors.New("block reply " + rt.String())
			}
		}
		callDone <- err
	}()

	// The ping must complete while the call is parked on `release`.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rt, fb, _, err := sess.Roundtrip(ctx, protocol.MsgPing, emptyReq())
	if err != nil {
		t.Fatalf("ping behind a blocking call: %v", err)
	}
	fb.Release()
	if rt != protocol.MsgPong {
		t.Fatalf("ping behind a blocking call: got %v", rt)
	}
	select {
	case err := <-callDone:
		t.Fatalf("blocking call finished before release: %v", err)
	default:
	}
	close(release)
	if err := <-callDone; err != nil {
		t.Fatal(err)
	}
}

// TestMuxConcurrentCallsDemux runs many concurrent calls with distinct
// arguments over one session and checks each reply against its own
// request — a demux or shared-writer bug would cross the streams.
func TestMuxConcurrentCallsDemux(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{PEs: 4}, reg)
	defer s.Close()
	sess := muxSession(t, s)
	info := reg.Lookup("double_it").Info

	const callers = 24
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		i := i
		go func() {
			n := 4
			v := make([]float64, n)
			for k := range v {
				v[k] = float64(i*100 + k)
			}
			vals := []idl.Value{int64(n), v, nil}
			rt, fb, _, err := sess.Roundtrip(context.Background(), protocol.MsgCall,
				callReq(t, info, "double_it", vals))
			if err != nil {
				errs <- err
				return
			}
			defer fb.Release()
			if rt != protocol.MsgCallOK {
				errs <- errors.New("reply " + rt.String())
				return
			}
			_, out, err := protocol.DecodeCallReply(info, vals, fb.Payload())
			if err != nil {
				errs <- err
				return
			}
			w := out[2].([]float64)
			for k := range v {
				if w[k] != 2*v[k] {
					errs <- errors.New("cross-Seq corruption: wrong result payload")
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestMuxDisabledAnswersLikeLegacy: a DisableMux server must answer
// Hello exactly as a pre-mux binary would, so new clients fall back.
func TestMuxDisabledAnswersLikeLegacy(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{PEs: 1, DisableMux: true}, reg)
	defer s.Close()
	cc, sc := net.Pipe()
	defer cc.Close()
	go s.ServeConn(sc)
	defer sc.Close()
	if _, err := mux.Negotiate(cc, 0); !errors.Is(err, mux.ErrLegacy) {
		t.Fatalf("negotiate against DisableMux server = %v, want ErrLegacy", err)
	}
	// The connection must still carry lockstep traffic afterwards.
	if err := protocol.WriteFrame(cc, protocol.MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	typ, _, err := protocol.ReadFrame(cc, 0)
	if err != nil || typ != protocol.MsgPong {
		t.Fatalf("lockstep ping after refused hello: %v %v", typ, err)
	}
}

// TestMuxFetchLostReplyRefetchable: a mux fetch whose session dies
// before the reply is read must leave the job fetchable on a fresh
// session (the lost-reply guarantee, satellite of PR 3).
func TestMuxSubmitFetch(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{PEs: 2}, reg)
	defer s.Close()
	sess := muxSession(t, s)
	info := reg.Lookup("double_it").Info

	n := 3
	v := []float64{1, 2, 3}
	vals := []idl.Value{int64(n), v, nil}
	req, err := protocol.EncodeSubmitRequestBuf(info, &protocol.CallRequest{Name: "double_it", Args: vals}, 77)
	if err != nil {
		t.Fatal(err)
	}
	rt, fb, _, err := sess.Roundtrip(context.Background(), protocol.MsgSubmit, req)
	if err != nil {
		t.Fatal(err)
	}
	if rt != protocol.MsgSubmitOK {
		t.Fatalf("submit over mux: %v", rt)
	}
	sr, err := protocol.DecodeSubmitReply(fb.Payload())
	fb.Release()
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		fr := protocol.FetchRequest{JobID: sr.JobID, Wait: false}
		rt, fb, _, err := sess.Roundtrip(context.Background(), protocol.MsgFetch, fr.EncodeBuf())
		if err != nil {
			t.Fatal(err)
		}
		if rt == protocol.MsgError {
			er, derr := protocol.DecodeErrorReply(fb.Payload())
			fb.Release()
			if derr != nil {
				t.Fatal(derr)
			}
			if er.Code != protocol.CodeNotReady {
				t.Fatalf("fetch error %d: %s", er.Code, er.Detail)
			}
			if time.Now().After(deadline) {
				t.Fatal("job never became ready")
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if rt != protocol.MsgFetchOK {
			t.Fatalf("fetch over mux: %v", rt)
		}
		_, out, err := protocol.DecodeCallReply(info, vals, fb.Payload())
		fb.Release()
		if err != nil {
			t.Fatal(err)
		}
		w := out[2].([]float64)
		if w[0] != 2 || w[1] != 4 || w[2] != 6 {
			t.Fatalf("fetched result %v", w)
		}
		break
	}
}
