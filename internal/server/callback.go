package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"ninf/internal/protocol"
)

// A CallbackInvoker lets a running Ninf executable call back into the
// client that issued the current blocking call (§2.3's "client
// callback functions"): progress reporting, computational steering, or
// pulling additional data mid-call. The payload format is private to
// the executable/callback pair.
type CallbackInvoker func(name string, data []byte) ([]byte, error)

type callbackKeyType struct{}

var callbackKey callbackKeyType

// CallbackFrom extracts the invoker from a handler's context. It is
// absent for two-phase (submit/fetch) executions, where no client
// connection exists while the job runs.
func CallbackFrom(ctx context.Context) (CallbackInvoker, bool) {
	inv, ok := ctx.Value(callbackKey).(CallbackInvoker)
	return inv, ok
}

// ErrNoCallback is returned by Callback when the execution has no
// client connection to call back on.
var ErrNoCallback = errors.New("server: no client callback channel (two-phase job?)")

// Callback is the convenience form of CallbackFrom: it invokes the
// named client callback or fails with ErrNoCallback.
func Callback(ctx context.Context, name string, data []byte) ([]byte, error) {
	inv, ok := CallbackFrom(ctx)
	if !ok {
		return nil, ErrNoCallback
	}
	return inv(name, data)
}

// connInvoker builds the invoker bound to a blocking call's
// connection. The connection is otherwise quiet while the executable
// runs — the serving goroutine is parked on the task — so the invoker
// may write its frame and read the reply directly. A mutex serializes
// invocations from executables that spawn internal goroutines.
func (s *Server) connInvoker(conn net.Conn) CallbackInvoker {
	var mu sync.Mutex
	return func(name string, data []byte) ([]byte, error) {
		mu.Lock()
		defer mu.Unlock()
		req := protocol.CallbackRequest{Name: name, Data: data}
		//lint:ninflint locknet — mu intentionally serializes callback exchanges from concurrent executable goroutines on one conn
		if err := protocol.WriteFrame(conn, protocol.MsgCallback, req.Encode()); err != nil {
			return nil, fmt.Errorf("server: callback %s: %w", name, err)
		}
		//lint:ninflint locknet — the matching reply is read under the same serialization as the request
		typ, p, err := protocol.ReadFrame(conn, s.cfg.MaxPayload)
		if err != nil {
			return nil, fmt.Errorf("server: callback %s: %w", name, err)
		}
		switch typ {
		case protocol.MsgCallbackOK:
			reply, err := protocol.DecodeCallbackReply(p)
			if err != nil {
				return nil, err
			}
			return reply.Data, nil
		case protocol.MsgError:
			er, derr := protocol.DecodeErrorReply(p)
			if derr != nil {
				return nil, derr
			}
			return nil, &protocol.RemoteError{Code: er.Code, Detail: er.Detail}
		default:
			return nil, fmt.Errorf("server: callback %s: unexpected reply %v", name, typ)
		}
	}
}
