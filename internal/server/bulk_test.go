package server

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"ninf/internal/idl"
	"ninf/internal/mux"
	"ninf/internal/protocol"
)

// bulkSession negotiates a feature-level-3 session against a served
// conn for a server with the given config.
func bulkSession(t *testing.T, s *Server) *mux.Session {
	t.Helper()
	sess := muxSession(t, s)
	if !sess.Bulk() {
		t.Fatal("server did not negotiate bulk feature level")
	}
	return sess
}

func bigVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i%101) - 50
	}
	return v
}

// TestMuxBulkCallRoundTrip drives the full server bulk path over the
// wire: a chunked request reassembles server-side, the handler runs on
// decoded (copied) arguments, and the large result streams back as a
// chunked reply the client reassembles and decodes.
func TestMuxBulkCallRoundTrip(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{PEs: 2, BulkThreshold: 1024}, reg)
	defer s.Close()
	sess := bulkSession(t, s)
	info := reg.Lookup("double_it").Info

	n := 64 << 10 // 512 KiB vector: chunked both directions
	v := bigVec(n)
	vals := []idl.Value{int64(n), v, nil}
	m, err := protocol.EncodeCallRequestChunks(info,
		&protocol.CallRequest{Name: "double_it", Args: vals}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("request not chunked")
	}
	rt, fb, bulk, err := sess.RoundtripBulk(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Release()
	if rt != protocol.MsgCallOK {
		t.Fatalf("reply %v", rt)
	}
	if bulk == nil {
		t.Fatal("large reply was not chunked")
	}
	p := bulk.Head()
	_, out, err := protocol.DecodeCallReplyBulk(info, vals, p, bulk)
	if err != nil {
		t.Fatal(err)
	}
	w := out[2].([]float64)
	for i := range v {
		if w[i] != 2*v[i] {
			t.Fatalf("result[%d] = %g, want %g", i, w[i], 2*v[i])
		}
	}
	if gauge := protocol.OpenBulkReassemblies(); gauge != 0 {
		t.Fatalf("open reassemblies after round trip = %d", gauge)
	}
}

// TestMuxBulkReplyDisabled: a negative threshold keeps replies
// monolithic while chunked requests are still accepted.
func TestMuxBulkReplyDisabled(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{PEs: 2, BulkThreshold: -1}, reg)
	defer s.Close()
	sess := bulkSession(t, s)
	info := reg.Lookup("double_it").Info

	n := 32 << 10
	v := bigVec(n)
	vals := []idl.Value{int64(n), v, nil}
	m, err := protocol.EncodeCallRequestChunks(info,
		&protocol.CallRequest{Name: "double_it", Args: vals}, 1024)
	if err != nil || m == nil {
		t.Fatalf("encode: %v %v", m, err)
	}
	rt, fb, bulk, err := sess.RoundtripBulk(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Release()
	if rt != protocol.MsgCallOK {
		t.Fatalf("reply %v", rt)
	}
	if bulk != nil {
		t.Fatal("reply chunked despite disabled threshold")
	}
	_, out, err := protocol.DecodeCallReply(info, vals, fb.Payload())
	if err != nil {
		t.Fatal(err)
	}
	if w := out[2].([]float64); w[1] != 2*v[1] {
		t.Fatalf("result %g", w[1])
	}
}

// TestMuxBulkSubmitFetch: a chunked two-phase submit, with the stored
// result streaming back chunked on fetch.
func TestMuxBulkSubmitFetch(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{PEs: 2, BulkThreshold: 1024}, reg)
	defer s.Close()
	sess := bulkSession(t, s)
	info := reg.Lookup("double_it").Info

	n := 48 << 10
	v := bigVec(n)
	vals := []idl.Value{int64(n), v, nil}
	m, err := protocol.EncodeSubmitRequestChunks(info,
		&protocol.CallRequest{Name: "double_it", Args: vals}, 42, 1024)
	if err != nil || m == nil {
		t.Fatalf("encode: %v %v", m, err)
	}
	rt, fb, _, err := sess.RoundtripBulk(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if rt != protocol.MsgSubmitOK {
		t.Fatalf("submit reply %v", rt)
	}
	sr, err := protocol.DecodeSubmitReply(fb.Payload())
	fb.Release()
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		fr := protocol.FetchRequest{JobID: sr.JobID, Wait: false}
		rt, fb, bulk, err := sess.Roundtrip(context.Background(), protocol.MsgFetch, fr.EncodeBuf())
		if err != nil {
			t.Fatal(err)
		}
		if rt == protocol.MsgError {
			er, derr := protocol.DecodeErrorReply(fb.Payload())
			fb.Release()
			if derr != nil || er.Code != protocol.CodeNotReady {
				t.Fatalf("fetch error: %v %+v", derr, er)
			}
			if time.Now().After(deadline) {
				t.Fatal("job never became ready")
			}
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if rt != protocol.MsgFetchOK {
			t.Fatalf("fetch reply %v", rt)
		}
		if bulk == nil {
			t.Fatal("large fetch reply was not chunked")
		}
		_, out, err := protocol.DecodeCallReply(info, vals, bulk.Head())
		fb.Release()
		if err != nil {
			t.Fatal(err)
		}
		w := out[2].([]float64)
		if w[7] != 2*v[7] {
			t.Fatalf("fetched result %g, want %g", w[7], 2*v[7])
		}
		break
	}
}

// TestMuxBulkMixedPipeline: small pings stay live while several large
// chunked calls stream in both directions on one connection — the
// interleaved writer must not let a 512 KiB reply starve them, and
// every reply must match its own request.
func TestMuxBulkMixedPipeline(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{PEs: 4, BulkThreshold: 1024}, reg)
	defer s.Close()
	sess := bulkSession(t, s)
	info := reg.Lookup("double_it").Info

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 3; i++ {
		salt := float64(i + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 64 << 10
			v := make([]float64, n)
			for k := range v {
				v[k] = salt * float64(k%17)
			}
			vals := []idl.Value{int64(n), v, nil}
			m, err := protocol.EncodeCallRequestChunks(info,
				&protocol.CallRequest{Name: "double_it", Args: vals}, 1024)
			if err != nil || m == nil {
				errs <- err
				return
			}
			rt, fb, bulk, err := sess.RoundtripBulk(context.Background(), m)
			if err != nil {
				errs <- err
				return
			}
			defer fb.Release()
			if rt != protocol.MsgCallOK || bulk == nil {
				errs <- errStr("mixed: bulk call reply " + rt.String())
				return
			}
			_, out, err := protocol.DecodeCallReplyBulk(info, vals, bulk.Head(), bulk)
			if err != nil {
				errs <- err
				return
			}
			w := out[2].([]float64)
			for k := range v {
				if w[k] != 2*v[k] {
					errs <- errStr("mixed: cross-Seq corruption in bulk result")
					return
				}
			}
		}()
	}
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				rt, fb, _, err := sess.Roundtrip(context.Background(), protocol.MsgPing, emptyReq())
				if err != nil {
					errs <- err
					return
				}
				fb.Release()
				if rt != protocol.MsgPong {
					errs <- errStr("mixed: ping reply " + rt.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if gauge := protocol.OpenBulkReassemblies(); gauge != 0 {
		t.Fatalf("open reassemblies after mixed pipeline = %d", gauge)
	}
}

// TestMuxBulkConnCutMidReassembly severs the connection after a bulk
// begin but before its chunks: the server's reassembler must release
// the half-assembled buffer on teardown (the leak the chaos tests
// also guard).
func TestMuxBulkConnCutMidReassembly(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{PEs: 1}, reg)
	defer s.Close()
	cc, sc := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeConn(sc)
	}()
	version, err := mux.Negotiate(cc, 0)
	if err != nil || version < protocol.MuxVersionBulk {
		t.Fatalf("negotiate: %d %v", version, err)
	}
	// Hand-write a begin for a 1 MiB message, one chunk, then cut.
	m := protocol.RawBulkMsg(protocol.MsgCall, make([]byte, 1<<20))
	fb := m.EncodeBegin()
	if err := protocol.WriteMuxFrameBuf(cc, protocol.MsgBulkBegin, 1, fb); err != nil {
		t.Fatal(err)
	}
	fb.Release()
	cur := m.Cursor()
	if _, err := cur.WriteChunk(cc, 1, 64<<10); err != nil {
		t.Fatal(err)
	}
	cc.Close()
	<-done
	m.Release()
	if gauge := protocol.OpenBulkReassemblies(); gauge != 0 {
		t.Fatalf("server leaked a half-assembled bulk buffer: gauge = %d", gauge)
	}
}

type errStr string

func (e errStr) Error() string { return string(e) }
