package server

import (
	"context"
	"testing"
	"time"

	"ninf/internal/idl"
	"ninf/internal/protocol"
	"ninf/internal/server/sched"
)

func TestTracerAccumulation(t *testing.T) {
	tr := newTracer()
	if got := tr.snapshot(); len(got) != 0 {
		t.Errorf("fresh tracer = %v", got)
	}
	if d := tr.predictCompute("x"); d != 0 {
		t.Errorf("prediction with no history = %v", d)
	}
	tr.record("x", time.Millisecond, 10*time.Millisecond, 100, false)
	tr.record("x", 3*time.Millisecond, 30*time.Millisecond, 300, true)
	tr.record("a", 0, time.Second, 8, false)

	if d := tr.predictCompute("x"); d != 20*time.Millisecond {
		t.Errorf("predictCompute = %v, want 20ms", d)
	}
	snap := tr.snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "x" {
		t.Fatalf("snapshot = %v", snap)
	}
	x := snap[1]
	if x.Count != 2 || x.Failures != 1 || x.MeanWait != 2*time.Millisecond || x.MeanBytes != 200 {
		t.Errorf("x = %+v", x)
	}
}

func TestTraceWireRoundTrip(t *testing.T) {
	ts := []RoutineTrace{
		{Name: "dgefa", Count: 10, Failures: 1, MeanCompute: time.Second, MeanWait: time.Millisecond, MeanBytes: 2880000},
		{Name: "ep", Count: 3, MeanCompute: 200 * time.Second},
	}
	back, err := DecodeTraces(encodeTraces(ts))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != ts[0] || back[1] != ts[1] {
		t.Errorf("round trip = %v", back)
	}
	if _, err := DecodeTraces([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("implausible count accepted")
	}
}

// TestSJFLearnsFromTrace exercises the §5.1 predictor path: routines
// WITHOUT Complexity clauses get ordered by SJF using the execution
// trace after a warm-up run.
func TestSJFLearnsFromTrace(t *testing.T) {
	reg := NewRegistry()
	spin := func(_ context.Context, args []idl.Value) error {
		time.Sleep(time.Duration(args[0].(int64)) * time.Millisecond)
		return nil
	}
	// Note: no Complexity clauses.
	err := reg.RegisterIDL(`
Define slow(mode_in int ms) Calls "go" spin(ms);
Define quick(mode_in int ms) Calls "go" spin(ms);
`, map[string]Handler{"slow": spin, "quick": spin})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{PEs: 1, Policy: sched.SJF{}}, reg)
	defer s.Close()
	conn := pipeConn(t, s)

	// Warm-up: teach the trace that slow ≫ quick.
	call(t, conn, protocol.MsgCall, encodeCall(t, reg, "slow", int64(120)))
	call(t, conn, protocol.MsgCall, encodeCall(t, reg, "quick", int64(5)))

	// Occupy the PE, then queue slow before quick; SJF must run
	// quick first based on learned history.
	gateConn := pipeConn(t, s)
	pg := encodeCall(t, reg, "slow", int64(150))
	go callNB(gateConn, protocol.MsgCall, pg)
	waitFor(t, func() bool { return s.Stats().Running == 1 }, "gate running")

	slowConn := pipeConn(t, s)
	ps := encodeCall(t, reg, "slow", int64(120))
	slowDone := make(chan int64, 1)
	go func() {
		callNB(slowConn, protocol.MsgCall, ps)
		slowDone <- time.Now().UnixNano()
	}()
	waitFor(t, func() bool { return s.Stats().Queued == 1 }, "slow queued")

	quickConn := pipeConn(t, s)
	pq := encodeCall(t, reg, "quick", int64(5))
	quickDone := make(chan int64, 1)
	go func() {
		callNB(quickConn, protocol.MsgCall, pq)
		quickDone <- time.Now().UnixNano()
	}()
	waitFor(t, func() bool { return s.Stats().Queued == 2 }, "both queued")

	qt := <-quickDone
	st := <-slowDone
	if qt >= st {
		t.Error("SJF did not prioritize the historically-quick routine")
	}
}
