package server

import (
	"container/list"
	"sync"

	"ninf/internal/idl"
	"ninf/internal/protocol"
)

// The argument cache (feature level 4) keeps large array operands and
// results resident between calls, keyed by content digest, so repeated
// WAN workloads stop re-shipping the same matrices on every Ninf_call.
// It is byte-budgeted (Config.CacheBudget, default off), evicts LRU,
// and ref-counts entries pinned by in-flight calls so eviction can
// never yank an operand mid-dispatch. Entries live keyed by the short
// key Digest.Lo in small buckets; every lookup verifies the full
// 128-bit digest, so a short-key collision costs a bucket scan, never
// a wrong answer.

// cacheEntry is one resident value: its digest, its little-endian
// element bytes, and the pin count of in-flight calls using it.
type cacheEntry struct {
	dig   protocol.Digest
	bytes []byte
	pins  int
	el    *list.Element
}

// argCache is the server's digest-keyed byte-budgeted LRU store.
type argCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	pinned  int64
	lru     *list.List // of *cacheEntry; front = most recently used
	buckets map[uint64][]*cacheEntry

	hits      int64
	misses    int64
	evictions int64
}

func newArgCache(budget int64) *argCache {
	return &argCache{
		budget:  budget,
		lru:     list.New(),
		buckets: make(map[uint64][]*cacheEntry),
	}
}

// cacheStats is a point-in-time counter snapshot for Stats reporting.
type cacheStats struct {
	Hits, Misses, Evictions int64
	PinnedBytes, UsedBytes  int64
	Budget                  int64
}

func (c *argCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		PinnedBytes: c.pinned, UsedBytes: c.used, Budget: c.budget,
	}
}

// findLocked returns the entry for d, verifying the full digest within
// the short-key bucket. Callers hold mu.
func (c *argCache) findLocked(d protocol.Digest) *cacheEntry {
	for _, e := range c.buckets[d.Lo] {
		if e.dig == d {
			return e
		}
	}
	return nil
}

// contains answers a warmth query without pinning or counting: the
// client's digest-status probe must not skew the hit ratio.
func (c *argCache) contains(d protocol.Digest) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.findLocked(d) != nil
}

// insert takes ownership of b (little-endian element bytes) under
// digest d, evicting LRU unpinned entries until the budget holds. An
// existing entry is refreshed in place (b dropped); a value larger than
// the whole budget is not cached. Insertion is the only point where a
// partial upload could poison the cache — and it is unreachable for
// one: callers insert only bytes from fully reassembled, CRC-verified
// messages.
func (c *argCache) insert(d protocol.Digest, b []byte) {
	if int64(len(b)) > c.budget || len(b) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.findLocked(d); e != nil {
		c.lru.MoveToFront(e.el)
		return
	}
	for c.used+int64(len(b)) > c.budget {
		if !c.evictOneLocked() {
			return // everything left is pinned; don't cache
		}
	}
	e := &cacheEntry{dig: d, bytes: b}
	e.el = c.lru.PushFront(e)
	c.buckets[d.Lo] = append(c.buckets[d.Lo], e)
	c.used += int64(len(b))
}

// evictOneLocked drops the least-recently-used unpinned entry; false
// means every resident entry is pinned by an in-flight call. Callers
// hold mu.
func (c *argCache) evictOneLocked() bool {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		if e.pins > 0 {
			continue
		}
		c.lru.Remove(el)
		b := c.buckets[e.dig.Lo]
		for i, be := range b {
			if be == e {
				b[i] = b[len(b)-1]
				b = b[:len(b)-1]
				break
			}
		}
		if len(b) == 0 {
			delete(c.buckets, e.dig.Lo)
		} else {
			c.buckets[e.dig.Lo] = b
		}
		c.used -= int64(len(e.bytes))
		c.evictions++
		return true
	}
	return false
}

// resolvePin looks d up and pins the entry for an in-flight call; the
// caller must unpin via unpin (normally through callPins.release).
func (c *argCache) resolvePin(d protocol.Digest) ([]byte, *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.findLocked(d)
	if e == nil {
		c.misses++
		return nil, nil
	}
	c.hits++
	if e.pins == 0 {
		c.pinned += int64(len(e.bytes))
	}
	e.pins++
	c.lru.MoveToFront(e.el)
	return e.bytes, e
}

// get is resolvePin without the pin, for the data-handle fetch path:
// the returned slice stays valid after eviction (eviction drops the
// reference, not the memory), and the caller copies it into the reply
// frame immediately.
func (c *argCache) get(d protocol.Digest) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.findLocked(d)
	if e == nil {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(e.el)
	return e.bytes, true
}

// unpin releases one call's pin on an entry.
func (c *argCache) unpin(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.pins--
	if e.pins == 0 {
		c.pinned -= int64(len(e.bytes))
	}
}

// retainLE inserts already-normalized little-endian bytes, computing
// the digest server-side: the cache never trusts a sender's digest for
// insertion, so a mislabeled upload cannot poison later resolves.
func (c *argCache) retainLE(b []byte) {
	c.insert(protocol.DigestBytesLE(b), b)
}

// retainResults inserts a completed call's large out/inout arrays, so
// a retention-requesting client can reference them by digest from a
// later call on this server (the transaction handle-chaining path).
func (c *argCache) retainResults(info *idl.Info, args []idl.Value, threshold int) {
	for i := range info.Params {
		p := &info.Params[i]
		if !p.Mode.Ships(true) {
			continue
		}
		b, ok := protocol.ValueLEBytes(args[i])
		if !ok || len(b) < threshold {
			continue
		}
		c.retainLE(b)
	}
}

// callPins is one call's view of the cache: it implements
// protocol.DigestResolver for the decode of that call's frames,
// accumulating the entries it pinned so task completion releases them
// all. Decode runs on one goroutine but release can race a concurrent
// shed, so the entry list carries its own lock.
type callPins struct {
	c  *argCache
	mu sync.Mutex
	es []*cacheEntry
}

// ResolveDigest implements protocol.DigestResolver: a hit pins the
// entry until release.
func (p *callPins) ResolveDigest(d protocol.Digest) ([]byte, bool) {
	b, e := p.c.resolvePin(d)
	if e == nil {
		return nil, false
	}
	p.mu.Lock()
	p.es = append(p.es, e)
	p.mu.Unlock()
	return b, true
}

// RetainSegment implements protocol.DigestResolver: uploaded bulk
// segments are normalized to little-endian, digested server-side, and
// inserted, making the next call's digest reference warm.
func (p *callPins) RetainSegment(seg []byte, le bool, elem int) {
	p.c.retainLE(protocol.NormalizeSegmentLE(seg, le, elem))
}

// release unpins everything this call resolved. Idempotent.
func (p *callPins) release() {
	p.mu.Lock()
	es := p.es
	p.es = nil
	p.mu.Unlock()
	for _, e := range es {
		p.c.unpin(e)
	}
}
