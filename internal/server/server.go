// Package server implements the Ninf computational server (§2.1): a
// process that services remote computing requests by managing the
// communication and activation of registered Ninf executables.
//
// Requests arrive as Ninf RPC frames. The server answers interface
// queries (stage one of the two-stage RPC), executes blocking calls,
// and supports the §5.1 two-phase submit/fetch protocol. Execution is
// governed by a processor pool and a pluggable scheduling policy
// (FCFS as deployed; SJF/FPFS/FPMPFS as the paper's proposed
// improvements), with the choice between task-parallel (one PE per
// call) and data-parallel (all PEs per call) library execution that
// §4.1 benchmarks.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ninf/internal/idl"
	"ninf/internal/protocol"
	"ninf/internal/server/journal"
	"ninf/internal/server/sched"
)

// ExecMode selects how many processors each Ninf_call occupies.
type ExecMode int

// Execution modes (§4.1).
const (
	// TaskParallel serves each call with one PE, up to PEs calls
	// concurrently — the conventional approach of non-numerical
	// servers.
	TaskParallel ExecMode = iota
	// DataParallel allocates all processors to each call in
	// sequence, the optimized-parallel-library approach.
	DataParallel
)

// String returns a symbolic name for the mode.
func (m ExecMode) String() string {
	switch m {
	case TaskParallel:
		return "task-parallel"
	case DataParallel:
		return "data-parallel"
	default:
		return fmt.Sprintf("ExecMode(%d)", int(m))
	}
}

// Config parameterizes a Server. The zero value is usable: one PE,
// task-parallel, FCFS.
type Config struct {
	// Hostname labels the server in stats replies.
	Hostname string
	// PEs is the processor count (default 1).
	PEs int
	// Mode picks task- or data-parallel execution.
	Mode ExecMode
	// Policy schedules queued jobs; nil means FCFS.
	Policy sched.Policy
	// MaxQueue rejects new calls with CodeOverloaded once this many
	// jobs are waiting; 0 means unlimited.
	MaxQueue int
	// JobTTL bounds how long two-phase results are retained after
	// completion before being dropped (default 5 minutes).
	JobTTL time.Duration
	// DeliveredTTL bounds how long a fetched two-phase result lingers
	// re-fetchable after its reply frame was written (default 30s,
	// capped at JobTTL). The linger covers the lost-reply window: a
	// write that succeeded locally can still be eaten by the network
	// before the client reads it, and the retried fetch must re-read
	// the retained result — were the job consumed on write, the retry
	// would get CodeUnknownJob and the client's idempotent re-Submit
	// (its key released with the job) would execute the work a second
	// time on the same incarnation.
	DeliveredTTL time.Duration
	// MaxPayload bounds incoming frame payloads (default 1 GiB).
	MaxPayload int
	// DisableMux refuses the MsgHello protocol upgrade, keeping every
	// connection on the version-1 lockstep exchange. Useful for
	// benchmarking the two paths and for emulating pre-mux servers.
	DisableMux bool
	// MuxConcurrency bounds concurrently-dispatched requests per
	// multiplexed connection (default DefaultMuxConcurrency).
	MuxConcurrency int
	// BulkThreshold is the reply payload size at which a bulk-capable
	// mux connection streams results as chunked frames instead of one
	// monolithic frame. 0 means protocol.DefaultBulkThreshold; negative
	// disables chunked replies (requests may still arrive chunked).
	BulkThreshold int
	// MaxPerClient bounds one client's (connection's) share of the
	// queue so a greedy client cannot starve the rest. 0 derives
	// max(1, MaxQueue/2) when MaxQueue is set, unlimited otherwise;
	// negative means explicitly unlimited.
	MaxPerClient int
	// DisableShedding turns off deadline-based admission control and
	// dispatch-time shedding of expired jobs — the A/B switch the
	// overload experiment measures against.
	DisableShedding bool
	// CacheBudget bounds the content-addressed argument/result cache
	// (feature level 4) in bytes. 0 or negative disables caching: the
	// server then negotiates level 4 without the cache flag and the
	// byte stream stays bit-identical to level 3.
	CacheBudget int64
	// Logger receives diagnostics; nil disables logging.
	Logger *log.Logger
}

// Server is a Ninf computational server.
type Server struct {
	cfg      Config
	registry *Registry
	policy   sched.Policy
	acct     *accounting
	trace    *tracer
	cache    *argCache // nil unless Config.CacheBudget > 0

	// journal is the crash-recovery write-ahead log (nil unless
	// AttachJournal was called); epoch is the incarnation epoch it
	// minted, 0 for journal-less servers. Appends happen under mu, so
	// the log's record order is the order the server observed.
	journal *journal.Journal
	epoch   atomic.Uint64

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []*task
	freePEs    int
	seq        uint64
	jobs       map[uint64]*task  // two-phase jobs by ID
	submitKeys map[uint64]uint64 // submit idempotency key → job ID
	closed     bool

	// Overload control (all under mu unless noted).
	draining       bool           // Drain in progress: admit rejects
	pendingReplies int            // request frames read but replies not yet written
	clientQueued   map[string]int // queued jobs per client identity
	svcNanos       float64        // EWMA of per-job service time

	// nextJob mints two-phase job IDs. On a journal-less server it
	// counts from 0 (IDs 1, 2, 3, …), exactly as before journals
	// existed. AttachJournal rebases it to epoch<<jobIDEpochShift so
	// journaled job IDs are incarnation-scoped: an ID minted by one
	// incarnation can never be re-minted by a later one — even when the
	// journal records that proved it was issued were compacted away or
	// never fsynced — so a pre-crash client's stale Fetch maps to
	// CodeUnknownJob instead of silently reading another job's result.
	nextJob  atomic.Uint64
	failNext atomic.Int64  // fault injection: calls to fail
	connSeq  atomic.Uint64 // client identity serial per connection

	// Overload counters, exported via Overload().
	shedExpired      atomic.Int64
	rejectedDeadline atomic.Int64
	rejectedQueue    atomic.Int64
	rejectedClient   atomic.Int64
	rejectedDraining atomic.Int64

	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup

	baseCtx    context.Context
	cancelBase context.CancelFunc
}

// task is one queued or running Ninf_call.
type task struct {
	job  sched.Job
	ex   *Executable
	args []idl.Value
	ctx  context.Context

	timings protocol.Timings
	err     error
	done    chan struct{}

	reqBytes int64  // request payload size, for the execution trace
	deadline int64  // caller's absolute deadline (UnixNano), 0 = none
	client   string // admitting connection's identity, for fair queueing

	// errCode/retryAfter refine how t.err is reported: the MsgError
	// code (CodeExecFailed when zero) and an optional back-pressure
	// hint. Set before close(done); read only after it.
	errCode    uint32
	retryAfter uint32

	// two-phase bookkeeping
	twoPhase  bool
	key       uint64 // submit idempotency key (0 = none)
	reply     []byte
	expire    time.Time
	delivered bool // reply frame written at least once (under server mu)

	// Argument-cache bookkeeping (level 4). pins holds the cache
	// entries this call resolved by digest, released on every terminal
	// path so eviction is never blocked by a finished call. retain asks
	// the server to cache large results for later digest reference.
	pins   *callPins
	retain bool
}

// releasePins unpins this task's resolved cache entries. Called on
// every terminal path; idempotent.
func (t *task) releasePins() {
	if t.pins != nil {
		t.pins.release()
		t.pins = nil
	}
}

// failCode is the MsgError code for a failed task.
func (t *task) failCode() uint32 {
	if t.errCode != 0 {
		return t.errCode
	}
	return protocol.CodeExecFailed
}

// New creates a server around a registry.
func New(cfg Config, reg *Registry) *Server {
	if cfg.PEs <= 0 {
		cfg.PEs = 1
	}
	if cfg.JobTTL <= 0 {
		cfg.JobTTL = 5 * time.Minute
	}
	if cfg.DeliveredTTL <= 0 {
		cfg.DeliveredTTL = 30 * time.Second
	}
	if cfg.DeliveredTTL > cfg.JobTTL {
		cfg.DeliveredTTL = cfg.JobTTL
	}
	if cfg.Hostname == "" {
		cfg.Hostname = "ninf-server"
	}
	pol := cfg.Policy
	if pol == nil {
		pol = sched.FCFS{}
	}
	s := &Server{
		cfg:          cfg,
		registry:     reg,
		policy:       pol,
		acct:         newAccounting(cfg.PEs, time.Now()),
		trace:        newTracer(),
		freePEs:      cfg.PEs,
		jobs:         make(map[uint64]*task),
		submitKeys:   make(map[uint64]uint64),
		clientQueued: make(map[string]int),
		listeners:    make(map[net.Listener]struct{}),
		conns:        make(map[net.Conn]struct{}),
	}
	if cfg.CacheBudget > 0 {
		s.cache = newArgCache(cfg.CacheBudget)
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	return s
}

// Registry exposes the server's registry, e.g. for late registration.
func (s *Server) Registry() *Registry { return s.registry }

// Epoch returns the server's incarnation epoch: 0 for a journal-less
// (volatile) server, otherwise the monotonic count of starts minted by
// the attached journal. It rides in hello negotiation and Stats so
// clients and the metaserver can tell a restart from continued life.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// Recovery summarizes one journal replay.
type Recovery struct {
	// Epoch is the incarnation epoch minted for this start.
	Epoch uint64
	// Requeued counts unfinished journaled jobs re-entered into the run
	// queue for (re-)execution.
	Requeued int
	// Restored counts completed-but-unfetched jobs whose retained
	// results (or terminal errors) are fetchable again.
	Restored int
	// Dropped counts journaled jobs that could not be reconstructed
	// (routine no longer registered, undecodable arguments).
	Dropped int
}

// AttachJournal opens (creating if needed) the crash-recovery journal
// in dir, mints this incarnation's epoch, and replays the surviving
// records: unfinished submits re-enter the queue for execution, and
// completed-but-unfetched results become fetchable again under their
// original job IDs and idempotency keys — so a client's retried Submit
// or Fetch lands on the same job across the crash. Subsequent
// two-phase admissions, completions, and deliveries are appended to
// the log.
//
// Recovery is exactly-once-effect for every job whose result fit the
// journal's inline cap; a larger completed result was journaled
// payload-less and is recovered by re-executing the job, repeating its
// side effects (see journal.Options.ResultCap).
//
// Must be called once, before Serve. Without it the server behaves
// exactly as before journals existed: no files, no fsyncs, epoch 0.
func (s *Server) AttachJournal(dir string, opts journal.Options) (Recovery, error) {
	j, recs, err := journal.Open(dir, opts)
	if err != nil {
		return Recovery{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		j.Close()
		return Recovery{}, errors.New("server: closed")
	case s.journal != nil:
		j.Close()
		return Recovery{}, errors.New("server: journal already attached")
	case len(s.jobs) > 0 || len(s.queue) > 0:
		j.Close()
		return Recovery{}, errors.New("server: attach the journal before admitting work")
	}
	s.journal = j
	s.epoch.Store(j.Epoch())
	rec := Recovery{Epoch: j.Epoch()}

	// Group the compacted log per job: at most one submit and one
	// completion each survive compaction.
	type jobRecs struct {
		submit, complete *protocol.JournalRecord
	}
	byID := make(map[uint64]*jobRecs)
	var order []uint64
	maxID := uint64(0)
	for i := range recs {
		r := &recs[i]
		if r.JobID > maxID {
			maxID = r.JobID
		}
		jr := byID[r.JobID]
		if jr == nil {
			jr = &jobRecs{}
			byID[r.JobID] = jr
			order = append(order, r.JobID)
		}
		switch r.Kind {
		case protocol.JournalSubmit:
			jr.submit = r
		case protocol.JournalComplete:
			jr.complete = r
		}
	}
	now := time.Now()
	for _, id := range order {
		jr := byID[id]
		switch {
		case jr.complete != nil && (jr.complete.ErrCode != 0 || len(jr.complete.Payload) > 0):
			// Done: re-serve the retained reply (or terminal error).
			t := &task{twoPhase: true, done: make(chan struct{}), expire: now.Add(s.cfg.JobTTL)}
			if jr.submit != nil {
				t.key = jr.submit.Key
				t.client = jr.submit.Client
			}
			if jr.complete.ErrCode != 0 {
				t.err = errors.New(jr.complete.ErrDetail)
				t.errCode = jr.complete.ErrCode
			} else {
				t.reply = jr.complete.Payload
			}
			close(t.done)
			t.job.ID = id
			s.jobs[id] = t
			if t.key != 0 {
				s.submitKeys[t.key] = id
			}
			rec.Restored++
		case jr.submit != nil:
			// Unfinished (or finished with a result too big to journal):
			// decode the plain-encoded request and re-queue it.
			t, err := s.replayTaskLocked(jr.submit)
			if err != nil {
				s.logf("ninf server: journal: drop job %d: %v", id, err)
				rec.Dropped++
				continue
			}
			t.job.ID = id
			s.seq++
			t.job.Seq = s.seq
			t.timings.Enqueue = now.UnixNano()
			s.queue = append(s.queue, t)
			if t.client != "" {
				s.clientQueued[t.client]++
			}
			s.jobs[id] = t
			if t.key != 0 {
				s.submitKeys[t.key] = id
			}
			s.acct.jobQueued(now)
			rec.Requeued++
		default:
			rec.Dropped++
		}
	}
	// Rebase the job-ID counter into this incarnation's range. Seeding
	// from the journal's max surviving ID alone would not do: delivered
	// jobs compact away and (under interval fsync) the newest
	// acknowledged submits may have no record at all, so a counter
	// restarted from the survivors can re-mint IDs already issued to
	// pre-crash clients, whose retried Fetch would then silently read a
	// different job's result.
	base := j.Epoch() << jobIDEpochShift
	if maxID > base {
		// Only possible when the epoch file was reset (corrupt, deleted)
		// while higher-epoch IDs survive in the WAL; stay above the
		// survivors so replayed and re-minted IDs cannot collide.
		base = maxID
	}
	s.nextJob.Store(base)
	s.schedule()
	return rec, nil
}

// jobIDEpochShift places the incarnation epoch in the high 24 bits of
// a journaled server's job IDs, leaving a 40-bit per-incarnation
// counter (~10^12 jobs per start, ~16M restarts — both unreachable in
// practice). Clients treat job IDs as opaque uint64s, so the split is
// invisible on the wire; replayed jobs keep their original (old-epoch)
// IDs, which sort strictly below every new-incarnation ID.
const jobIDEpochShift = 40

// replayTaskLocked reconstructs a queued task from a journaled submit
// record, exactly as admit would have built it. Callers hold mu.
func (s *Server) replayTaskLocked(r *protocol.JournalRecord) (*task, error) {
	name, rest, err := protocol.DecodeCallName(r.Payload)
	if err != nil {
		return nil, err
	}
	ex := s.registry.Lookup(name)
	if ex == nil {
		return nil, fmt.Errorf("no routine %q", name)
	}
	var retain bool
	args, deadline, err := protocol.DecodeCallArgsDeadlineRetainBulk(ex.Info, rest, nil, &retain)
	if err != nil {
		return nil, err
	}
	t := &task{
		ex:       ex,
		args:     args,
		ctx:      s.baseCtx,
		done:     make(chan struct{}),
		twoPhase: true,
		reqBytes: int64(len(r.Payload)),
		deadline: deadline,
		client:   r.Client,
		key:      r.Key,
		retain:   retain && s.cache != nil,
	}
	t.job.PEs = s.peAllocation(ex)
	if ops, ok := ex.Info.PredictedOps(args); ok {
		t.job.PredictedOps = ops
	} else if d := s.trace.predictCompute(name); d > 0 {
		t.job.PredictedOps = int64(d)
	}
	return t, nil
}

// journalSubmitRecord re-encodes an admitted submission in plain form
// (digest references resolved, bulk segments folded in) so replay can
// decode it against an empty cache, and copies the encoded bytes out
// of the pooled frame buffer into the record.
//
//ninflint:owner borrow — fb is drained into the record's copy and Released here; the WAL never retains it
func journalSubmitRecord(info *idl.Info, req *protocol.CallRequest, key uint64, client string) (*protocol.JournalRecord, error) {
	fb, err := protocol.EncodeCallRequestBuf(info, req)
	if err != nil {
		return nil, err
	}
	payload := append([]byte(nil), fb.Payload()...)
	fb.Release()
	return &protocol.JournalRecord{
		Kind:    protocol.JournalSubmit,
		Key:     key,
		Client:  client,
		Payload: payload,
	}, nil
}

// journalAppendLocked appends one record, best-effort: a failing log
// (disk full, torn device) degrades durability, not availability.
// Callers hold mu.
func (s *Server) journalAppendLocked(rec *protocol.JournalRecord) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		s.logf("ninf server: journal: %v", err)
	}
}

// logf logs through the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// Serve accepts connections on l until the listener is closed or the
// server shut down. Each connection is handled on its own goroutine;
// requests on one connection are processed in order, matching the
// blocking semantics of Ninf_call.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.ServeConn(conn)
		}()
	}
}

// Close shuts the server down: stops listeners, severs connections,
// cancels running handlers, and wakes waiters.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cancelBase()
	s.wg.Wait()
	// All runners are done, so no append can race the close. The final
	// flush makes everything acknowledged so far replayable.
	if s.journal != nil {
		if err := s.journal.Close(); err != nil {
			s.logf("ninf server: journal: close: %v", err)
		}
	}
	return nil
}

// Drain performs a graceful shutdown: the server immediately stops
// admitting new calls (they get CodeOverloaded with a retry-after
// hint, steering clients to another server), lets every queued and
// running job finish, waits for all in-flight replies to flush to
// their connections — including replies routed through the mux
// serialized writers — and then closes. The metaserver learns of the
// drain passively: Stats reports Draining, which excludes the server
// from placement on the next poll.
//
// ctx bounds the wait; on expiry the server is closed hard (exactly
// Close's semantics) and ctx's error returned. Completed two-phase
// jobs whose results were never fetched are dropped at close, same as
// any other shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.mu.Lock()
		for !s.closed && (len(s.queue) > 0 || s.freePEs != s.cfg.PEs || s.pendingReplies > 0) {
			s.cond.Wait()
		}
		s.mu.Unlock()
	}()
	var derr error
	select {
	case <-done:
	case <-ctx.Done():
		derr = ctx.Err()
	}
	cerr := s.Close()
	<-done // Close set closed and broadcast, so the waiter exits
	if derr != nil {
		return derr
	}
	return cerr
}

// Draining reports whether Drain has been invoked.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// replyPending records a request frame whose reply has not yet been
// written; Drain waits for the count to reach zero.
func (s *Server) replyPending() {
	s.mu.Lock()
	s.pendingReplies++
	s.mu.Unlock()
}

// replyDone marks one pending reply flushed (or its connection dead).
func (s *Server) replyDone() {
	s.mu.Lock()
	s.pendingReplies--
	if s.pendingReplies == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// FailNextCalls arranges for the next n executions to fail with an
// execution error — the fault-injection hook used to exercise
// metaserver retry.
func (s *Server) FailNextCalls(n int) { s.failNext.Store(int64(n)) }

// Stats returns the server's current self-report.
func (s *Server) Stats() protocol.Stats {
	load, util, queued, running, total := s.acct.snapshot(time.Now())
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	st := protocol.Stats{
		Hostname:    s.cfg.Hostname,
		PEs:         int64(s.cfg.PEs),
		Running:     int64(running),
		Queued:      int64(queued),
		TotalCalls:  total,
		LoadAverage: load,
		CPUUtil:     util,
		Draining:    draining,
		Epoch:       s.epoch.Load(),
	}
	if s.cache != nil {
		cs := s.cache.stats()
		st.CacheHits = cs.Hits
		st.CacheMisses = cs.Misses
		st.CacheEvictions = cs.Evictions
		st.CachePinnedBytes = cs.PinnedBytes
		st.CacheUsedBytes = cs.UsedBytes
		st.CacheBudget = cs.Budget
	}
	return st
}

// CacheCounters reports the argument cache's hit/miss/eviction and
// byte counters; zeros when caching is disabled.
func (s *Server) CacheCounters() (hits, misses, evictions, pinnedBytes, usedBytes int64) {
	if s.cache == nil {
		return 0, 0, 0, 0, 0
	}
	cs := s.cache.stats()
	return cs.Hits, cs.Misses, cs.Evictions, cs.PinnedBytes, cs.UsedBytes
}

// cacheThreshold is the minimum encoded size for digest-addressed
// retention, mirroring the client's bulk threshold so both ends agree
// on which arguments are cache-worthy even when chunked replies are
// disabled.
func (s *Server) cacheThreshold() int {
	if thr := s.bulkThreshold(); thr > 0 {
		return thr
	}
	return protocol.DefaultBulkThreshold
}

// OverloadStats counts the overload-control decisions the server has
// made since start: jobs shed at dispatch because their deadline had
// already expired, and admissions rejected per cause.
type OverloadStats struct {
	ShedExpired      int64 // dequeued past-deadline, never executed
	RejectedDeadline int64 // admission: deadline expired or unmeetable
	RejectedQueue    int64 // admission: MaxQueue full
	RejectedClient   int64 // admission: per-client share exhausted
	RejectedDraining int64 // admission: server draining
}

// Overload reports the overload-control counters.
func (s *Server) Overload() OverloadStats {
	return OverloadStats{
		ShedExpired:      s.shedExpired.Load(),
		RejectedDeadline: s.rejectedDeadline.Load(),
		RejectedQueue:    s.rejectedQueue.Load(),
		RejectedClient:   s.rejectedClient.Load(),
		RejectedDraining: s.rejectedDraining.Load(),
	}
}

// ServeConn processes frames from one connection until EOF or error.
// Exported so tests and the emulation layer can drive the server over
// arbitrary net.Conns (pipes, shaped links). Request frames are read
// into pooled buffers that dispatch recycles as soon as the payload is
// decoded, so steady-state serving allocates no framing memory.
//
// A connection starts in the version-1 lockstep exchange. When the
// client negotiates the protocol upgrade (MsgHello), the connection
// switches to the multiplexed loop (serveMux), which dispatches
// sequenced requests concurrently instead of one at a time.
func (s *Server) ServeConn(conn net.Conn) {
	client := s.clientID(conn)
	for {
		typ, fb, err := protocol.ReadFrameBuf(conn, s.cfg.MaxPayload)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("ninf server: read: %v", err)
			}
			return
		}
		s.replyPending()
		err = s.dispatch(conn, client, typ, fb)
		s.replyDone()
		if err != nil {
			var up *muxUpgrade
			if errors.As(err, &up) {
				s.serveMux(conn, client, up.version)
				return
			}
			s.logf("ninf server: %v", err)
			return
		}
	}
}

// clientID derives the fair-queueing identity for one connection: the
// peer address plus a per-connection serial. The serial matters
// because distinct clients can share an address (loopback tests,
// net.Pipe's constant "pipe", NATed sites), so identity is really
// per-connection — one multiplexed session is one client, which is
// the data plane's norm; a lockstep client gets one identity per
// pooled connection.
func (s *Server) clientID(conn net.Conn) string {
	addr := "conn"
	if ra := conn.RemoteAddr(); ra != nil {
		addr = ra.String()
	}
	return fmt.Sprintf("%s#%d", addr, s.connSeq.Add(1))
}

// dispatch handles one request frame. It owns fb and releases it once
// the payload has been decoded — before waiting on execution, so a
// large argument frame is not pinned while the executable runs.
//
// Shared-writer audit: dispatch (and the helpers it calls — sendError,
// fetch, connInvoker) writes to conn directly. That is safe on the
// lockstep path only because ServeConn services one frame at a time on
// one goroutine, so at most one writer exists per connection. The mux
// path runs dispatches concurrently and must instead route every reply
// through serveMux's serialized writer; the ninflint sharedwrite pass
// flags conn writes from dispatch goroutines.
func (s *Server) dispatch(conn net.Conn, client string, typ protocol.MsgType, fb *protocol.Buffer) error {
	payload := fb.Payload()
	switch typ {
	case protocol.MsgHello:
		defer fb.Release()
		return s.hello(conn, payload)
	case protocol.MsgPing:
		fb.Release()
		return protocol.WriteFrame(conn, protocol.MsgPong, nil)

	case protocol.MsgList:
		fb.Release()
		reply := protocol.ListReply{Names: s.registry.Names()}
		return protocol.WriteFrame(conn, protocol.MsgListReply, reply.Encode())

	case protocol.MsgStats:
		fb.Release()
		st := s.Stats()
		return protocol.WriteFrame(conn, protocol.MsgStatsOK, st.Encode())

	case protocol.MsgTrace:
		fb.Release()
		return protocol.WriteFrame(conn, protocol.MsgTraceOK, encodeTraces(s.Trace()))

	case protocol.MsgInterface:
		req, err := protocol.DecodeInterfaceRequest(payload)
		fb.Release()
		if err != nil {
			return s.sendError(conn, protocol.CodeBadArguments, err.Error())
		}
		ex := s.registry.Lookup(req.Name)
		if ex == nil {
			return s.sendError(conn, protocol.CodeUnknownRoutine, fmt.Sprintf("no routine %q", req.Name))
		}
		p, err := protocol.EncodeInterfaceReply(ex.Info)
		if err != nil {
			return s.sendError(conn, protocol.CodeInternal, err.Error())
		}
		return protocol.WriteFrame(conn, protocol.MsgInterfaceOK, p)

	case protocol.MsgCall:
		// Blocking calls carry a callback channel: the executable can
		// invoke client-registered functions over this connection
		// while it runs (§2.3).
		ctx := context.WithValue(s.baseCtx, callbackKey, s.connInvoker(conn))
		t, code, hint, err := s.admit(payload, nil, false, ctx, 0, client)
		fb.Release() // arguments are decoded and copied by admit
		if err != nil {
			return s.sendErrorHint(conn, code, err.Error(), hint)
		}
		<-t.done
		if t.err != nil {
			return s.sendErrorHint(conn, t.failCode(), t.err.Error(), t.retryAfter)
		}
		reply, err := protocol.EncodeCallReplyBuf(t.ex.Info, t.timings, t.args)
		if err != nil {
			return s.sendError(conn, protocol.CodeInternal, err.Error())
		}
		werr := protocol.WriteFrameBuf(conn, protocol.MsgCallOK, reply)
		reply.Release()
		return werr

	case protocol.MsgSubmit:
		key, rest, err := protocol.DecodeSubmitKey(payload)
		if err != nil {
			fb.Release()
			return s.sendError(conn, protocol.CodeBadArguments, err.Error())
		}
		t, code, hint, err := s.admit(rest, nil, true, nil, key, client)
		fb.Release()
		if err != nil {
			return s.sendErrorHint(conn, code, err.Error(), hint)
		}
		reply := protocol.SubmitReply{JobID: t.job.ID}
		return protocol.WriteFrame(conn, protocol.MsgSubmitOK, reply.Encode())

	case protocol.MsgFetch:
		req, err := protocol.DecodeFetchRequest(payload)
		fb.Release()
		if err != nil {
			return s.sendError(conn, protocol.CodeBadArguments, err.Error())
		}
		return s.fetch(conn, req)

	default:
		fb.Release()
		return s.sendError(conn, protocol.CodeInternal, fmt.Sprintf("unexpected frame %v", typ))
	}
}

// sendError writes a MsgError frame. Lockstep path only: it writes to
// conn directly, which is safe solely because the serving goroutine is
// the connection's one writer. Mux dispatches use muxErrReply, which
// routes through the serialized writer instead.
func (s *Server) sendError(conn net.Conn, code uint32, detail string) error {
	return s.sendErrorHint(conn, code, detail, 0)
}

// sendErrorHint is sendError with an optional retry-after hint on
// overload rejections. Same lockstep-only writer caveat.
func (s *Server) sendErrorHint(conn net.Conn, code uint32, detail string, retryAfterMillis uint32) error {
	return protocol.WriteFrame(conn, protocol.MsgError, protocol.EncodeErrorReplyHint(code, detail, retryAfterMillis))
}

// admit decodes a call payload, runs admission control, enqueues the
// job, and (for two-phase submissions) records it in the job table. It
// returns the task; for blocking calls the caller waits on task.done.
// A nonzero key is the submitter's idempotency key: a payload re-sent
// with a key already in the job table is a transport-level retry,
// answered with the already-admitted job instead of being executed a
// second time. client is the connection's fair-queueing identity.
//
// On rejection the third return is a retry-after hint in milliseconds
// (nonzero only for overload rejections), sized from the current queue
// depth and the observed per-job service time.
//
// A non-nil bulk means payload came from a reassembled chunked
// request: payload is then the XDR head (already sliced by the caller)
// and bulk supplies the raw segments its marker words point into. The
// decoded arguments are always copies, so the caller may release the
// reassembly buffer as soon as admit returns.
func (s *Server) admit(payload []byte, bulk *protocol.BulkInfo, twoPhase bool, ctx context.Context, key uint64, client string) (*task, uint32, uint32, error) {
	if ctx == nil {
		ctx = s.baseCtx
	}
	// Cache entries resolved (and pinned) during decode belong to the
	// admitted task; every path that does not hand them to a task must
	// unpin, or a rejected call would block eviction forever.
	var pins *callPins
	if bulk != nil {
		pins, _ = bulk.Resolver.(*callPins)
	}
	adopted := false
	defer func() {
		if !adopted && pins != nil {
			pins.release()
		}
	}()
	name, rest, err := protocol.DecodeCallName(payload)
	if err != nil {
		return nil, protocol.CodeBadArguments, 0, err
	}
	ex := s.registry.Lookup(name)
	if ex == nil {
		return nil, protocol.CodeUnknownRoutine, 0, fmt.Errorf("no routine %q", name)
	}
	var retain bool
	args, deadline, err := protocol.DecodeCallArgsDeadlineRetainBulk(ex.Info, rest, bulk, &retain)
	if err != nil {
		if errors.Is(err, protocol.ErrDigestMiss) {
			// The referenced cache entry was evicted between the client's
			// warmth check and this call. Not executed; the client retries
			// with the full bytes.
			return nil, protocol.CodeCacheMiss, 0, err
		}
		return nil, protocol.CodeBadArguments, 0, err
	}

	reqBytes := int64(len(payload))
	if bulk != nil {
		reqBytes = int64(len(bulk.Base)) // head plus segments
	}
	// Build the WAL record before taking the lock: the re-encode is the
	// expensive part, and the append itself must happen under mu (after
	// the job ID is assigned, before the job can complete) so the log
	// order matches the server's.
	var jrec *protocol.JournalRecord
	if twoPhase && s.journal != nil {
		var jerr error
		jrec, jerr = journalSubmitRecord(ex.Info,
			&protocol.CallRequest{Name: name, Args: args, Deadline: deadline, Retain: retain},
			key, client)
		if jerr != nil {
			s.logf("ninf server: journal: encode submit: %v", jerr)
		}
	}
	pes := s.peAllocation(ex)
	t := &task{
		ex:       ex,
		args:     args,
		ctx:      ctx,
		done:     make(chan struct{}),
		twoPhase: twoPhase,
		reqBytes: reqBytes,
		deadline: deadline,
		client:   client,
		pins:     pins,
		retain:   retain && s.cache != nil,
	}
	t.job.PEs = pes
	if ops, ok := ex.Info.PredictedOps(args); ok {
		t.job.PredictedOps = ops
	} else if d := s.trace.predictCompute(name); d > 0 {
		// §5.1 fallback: no Complexity clause in the IDL, so predict
		// from the server execution trace. Nanoseconds serve as the
		// ops currency; SJF only compares magnitudes.
		t.job.PredictedOps = int64(d)
	}

	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, protocol.CodeInternal, 0, errors.New("server shutting down")
	}
	if twoPhase && key != 0 {
		if id, ok := s.submitKeys[key]; ok {
			if prev, ok := s.jobs[id]; ok {
				// Duplicate submission: the original request arrived but
				// its SubmitOK was lost in transit. Hand back the job
				// already admitted under this key — even under overload,
				// since its slot was already granted.
				s.mu.Unlock()
				return prev, 0, 0, nil
			}
			delete(s.submitKeys, key)
		}
	}
	if s.draining {
		hint := s.retryAfterLocked()
		s.mu.Unlock()
		s.rejectedDraining.Add(1)
		return nil, protocol.CodeOverloaded, hint, errors.New("server draining")
	}
	if !s.cfg.DisableShedding && deadline != 0 {
		if deadline <= now.UnixNano() {
			hint := s.retryAfterLocked()
			s.mu.Unlock()
			s.rejectedDeadline.Add(1)
			return nil, protocol.CodeOverloaded, hint, errors.New("deadline already expired on arrival")
		}
		if wait := s.queueWaitLocked(); wait > 0 && now.Add(wait).UnixNano() > deadline {
			hint := s.retryAfterLocked()
			s.mu.Unlock()
			s.rejectedDeadline.Add(1)
			return nil, protocol.CodeOverloaded, hint,
				fmt.Errorf("deadline unmeetable: est queue wait %v", wait.Round(time.Millisecond))
		}
	}
	if s.cfg.MaxQueue > 0 && len(s.queue) >= s.cfg.MaxQueue {
		hint := s.retryAfterLocked()
		s.mu.Unlock()
		s.rejectedQueue.Add(1)
		return nil, protocol.CodeOverloaded, hint, fmt.Errorf("queue full (%d jobs)", s.cfg.MaxQueue)
	}
	if share := s.maxPerClient(); share > 0 && client != "" && s.clientQueued[client] >= share {
		hint := s.retryAfterLocked()
		s.mu.Unlock()
		s.rejectedClient.Add(1)
		return nil, protocol.CodeOverloaded, hint,
			fmt.Errorf("per-client queue share exhausted (%d jobs)", share)
	}
	s.seq++
	t.job.Seq = s.seq
	t.job.ID = s.nextJob.Add(1)
	t.timings.Enqueue = now.UnixNano()
	s.queue = append(s.queue, t)
	if client != "" {
		s.clientQueued[client]++
	}
	if twoPhase {
		t.key = key
		s.jobs[t.job.ID] = t
		if key != 0 {
			s.submitKeys[key] = t.job.ID
		}
		if jrec != nil {
			jrec.JobID = t.job.ID
			s.journalAppendLocked(jrec)
		}
	}
	s.acct.jobQueued(now)
	s.schedule()
	s.mu.Unlock()
	adopted = true
	return t, 0, 0, nil
}

// maxPerClient resolves the per-client queue share.
func (s *Server) maxPerClient() int {
	switch {
	case s.cfg.MaxPerClient > 0:
		return s.cfg.MaxPerClient
	case s.cfg.MaxPerClient < 0 || s.cfg.MaxQueue <= 0:
		return 0 // unlimited
	default:
		return max(1, s.cfg.MaxQueue/2)
	}
}

// clientDequeuedLocked releases a task's per-client queue share when
// it leaves the queue (dispatched, shed, or failed at shutdown).
// Callers hold mu.
func (s *Server) clientDequeuedLocked(t *task) {
	if t.client == "" {
		return
	}
	if n := s.clientQueued[t.client]; n <= 1 {
		delete(s.clientQueued, t.client)
	} else {
		s.clientQueued[t.client] = n - 1
	}
}

// queueWaitLocked estimates how long a job admitted now would wait
// before starting, from the queue depth and the service-time EWMA.
// Zero when the server has no execution history yet (admission stays
// optimistic). Callers hold mu.
func (s *Server) queueWaitLocked() time.Duration {
	if s.svcNanos <= 0 {
		return 0
	}
	return time.Duration(s.svcNanos * float64(len(s.queue)) / float64(s.cfg.PEs))
}

// retryAfterLocked sizes the back-pressure hint sent with an overload
// rejection: roughly how long until the present queue has been worked
// off, clamped to [10ms, 5s]. With no service-time history a small
// default keeps retries from hammering. Callers hold mu.
func (s *Server) retryAfterLocked() uint32 {
	svc := s.svcNanos
	if svc <= 0 {
		svc = float64(50 * time.Millisecond)
	}
	est := time.Duration(svc * float64(len(s.queue)+1) / float64(s.cfg.PEs))
	if est < 10*time.Millisecond {
		est = 10 * time.Millisecond
	}
	if est > 5*time.Second {
		est = 5 * time.Second
	}
	return uint32(est / time.Millisecond)
}

// peAllocation resolves how many processors a call occupies.
func (s *Server) peAllocation(ex *Executable) int {
	pes := ex.PEs
	if pes == 0 {
		if s.cfg.Mode == DataParallel {
			pes = s.cfg.PEs
		} else {
			pes = 1
		}
	}
	if pes > s.cfg.PEs {
		pes = s.cfg.PEs
	}
	return pes
}

// schedule dispatches queued jobs while the policy finds one that fits.
// Callers hold mu.
func (s *Server) schedule() {
	for {
		if s.closed {
			// Fail queued jobs so waiters do not hang.
			for _, t := range s.queue {
				t.err = errors.New("server: shut down before execution")
				s.acct.jobAbandoned(time.Now())
				s.clientDequeuedLocked(t)
				t.releasePins()
				close(t.done)
			}
			s.queue = nil
			return
		}
		s.shedExpiredLocked()
		jobs := make([]*sched.Job, len(s.queue))
		for i, t := range s.queue {
			jobs[i] = &t.job
		}
		idx := s.policy.Next(jobs, s.freePEs)
		if idx < 0 || idx >= len(s.queue) {
			return
		}
		t := s.queue[idx]
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
		s.clientDequeuedLocked(t)
		s.freePEs -= t.job.PEs
		now := time.Now()
		t.timings.Dequeue = now.UnixNano()
		s.acct.jobStarted(now, t.job.PEs)
		s.wg.Add(1)
		go s.run(t)
	}
}

// shedExpiredLocked drops queued jobs whose caller deadline has
// already passed: executing them is dead work — the caller has given
// up — so they fail immediately with an overload error instead of
// occupying a PE. Callers hold mu.
func (s *Server) shedExpiredLocked() {
	if s.cfg.DisableShedding {
		return
	}
	nowNS := time.Now().UnixNano()
	kept := s.queue[:0]
	shed := false
	for _, t := range s.queue {
		if t.deadline == 0 || t.deadline > nowNS {
			kept = append(kept, t)
			continue
		}
		t.err = errors.New("shed: caller deadline expired before execution")
		t.errCode = protocol.CodeOverloaded
		t.retryAfter = s.retryAfterLocked()
		s.clientDequeuedLocked(t)
		s.acct.jobAbandoned(time.Now())
		s.shedExpired.Add(1)
		if t.twoPhase {
			t.expire = time.Now().Add(s.cfg.JobTTL)
			t.args = nil
		}
		t.releasePins()
		close(t.done)
		shed = true
	}
	// Zero the freed tail so shed tasks are not pinned by the backing
	// array.
	for i := len(kept); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = kept
	if shed {
		s.cond.Broadcast()
	}
}

// run executes one job and returns its processors.
func (s *Server) run(t *task) {
	defer s.wg.Done()
	err := s.execute(t)
	now := time.Now()
	t.timings.Complete = now.UnixNano()
	t.err = err
	if err == nil && t.retain && s.cache != nil {
		// The client asked for result retention: cache large out/inout
		// arrays so its next call here can reference them by digest
		// (transaction handle chaining) before twoPhase drops t.args.
		s.cache.retainResults(t.ex.Info, t.args, s.cacheThreshold())
	}
	s.trace.record(t.ex.Info.Name,
		time.Duration(t.timings.Dequeue-t.timings.Enqueue),
		time.Duration(t.timings.Complete-t.timings.Dequeue),
		t.reqBytes, err != nil)

	s.mu.Lock()
	s.freePEs += t.job.PEs
	s.acct.jobFinished(now, t.job.PEs)
	// Fold the observed service time into the EWMA that drives
	// deadline admission and retry-after hints.
	if svc := float64(t.timings.Complete - t.timings.Dequeue); svc > 0 {
		if s.svcNanos <= 0 {
			s.svcNanos = svc
		} else {
			s.svcNanos = 0.7*s.svcNanos + 0.3*svc
		}
	}
	if t.twoPhase {
		t.expire = now.Add(s.cfg.JobTTL)
		// Pre-encode the reply so fetch is cheap and argument
		// buffers can be released.
		if err == nil {
			if p, encErr := protocol.EncodeCallReply(t.ex.Info, t.timings, t.args); encErr == nil {
				t.reply = p
			} else {
				t.err = encErr
			}
		}
		t.args = nil
		if s.journal != nil {
			jrec := &protocol.JournalRecord{Kind: protocol.JournalComplete, JobID: t.job.ID}
			if t.err != nil {
				jrec.ErrCode = t.failCode()
				jrec.ErrDetail = t.err.Error()
			} else if len(t.reply) <= s.journal.ResultCap() {
				jrec.Payload = t.reply
			}
			// An oversized success journals as completed-without-payload;
			// replay re-executes the job rather than bloating the WAL.
			s.journalAppendLocked(jrec)
		}
	}
	s.schedule()
	s.cond.Broadcast()
	s.mu.Unlock()
	t.releasePins()
	close(t.done)
}

// execute invokes the handler, honouring fault injection and panics.
func (s *Server) execute(t *task) (err error) {
	if n := s.failNext.Load(); n > 0 && s.failNext.CompareAndSwap(n, n-1) {
		return errors.New("injected fault")
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("executable %s panicked: %v", t.ex.Info.Name, r)
		}
	}()
	return t.ex.Handler(t.ctx, t.args)
}

// fetch answers a MsgFetch: not-ready, error, or the retained reply.
// A delivered job is not consumed on the spot: a locally successful
// write can still be lost in transit, so the job lingers re-fetchable
// for Config.DeliveredTTL (see markDeliveredLocked) and only then
// leaves the table, so the client's retried fetch re-reads the
// retained result instead of getting CodeUnknownJob and re-executing
// the work through an idempotent re-Submit.
func (s *Server) fetch(conn net.Conn, req protocol.FetchRequest) error {
	s.mu.Lock()
	t, ok := s.jobs[req.JobID]
	s.mu.Unlock()
	if !ok {
		return s.sendError(conn, protocol.CodeUnknownJob, fmt.Sprintf("no job %d", req.JobID))
	}
	if req.Wait {
		<-t.done
	}
	select {
	case <-t.done:
	default:
		return s.sendError(conn, protocol.CodeNotReady, fmt.Sprintf("job %d still running", req.JobID))
	}
	var werr error
	if t.err != nil {
		werr = s.sendErrorHint(conn, t.failCode(), t.err.Error(), t.retryAfter)
	} else {
		werr = protocol.WriteFrame(conn, protocol.MsgFetchOK, t.reply)
	}
	if werr != nil {
		return werr
	}
	s.mu.Lock()
	s.markDeliveredLocked(req.JobID, t)
	s.mu.Unlock()
	return nil
}

// markDeliveredLocked records that a job's reply frame was written:
// the journal learns the job is done with (the fetched record compacts
// it away on the next open — a post-crash retry re-submits, which is
// one execution on the new incarnation), while in memory the job
// lingers re-fetchable until the shortened DeliveredTTL expiry covers
// the window where the written reply was lost in transit. Idempotent;
// callers hold mu.
func (s *Server) markDeliveredLocked(id uint64, t *task) {
	if t.delivered {
		return
	}
	t.delivered = true
	if exp := time.Now().Add(s.cfg.DeliveredTTL); exp.Before(t.expire) {
		t.expire = exp
	}
	s.journalAppendLocked(&protocol.JournalRecord{Kind: protocol.JournalFetched, JobID: id})
}

// removeJobLocked drops a completed two-phase job and its submit
// idempotency key. Jobs that were never delivered (TTL expiry of an
// unfetched result) journal their fetched record here so replay does
// not resurrect them; delivered jobs already journaled it. Callers
// hold mu.
func (s *Server) removeJobLocked(id uint64, t *task) {
	delete(s.jobs, id)
	if t.key != 0 && s.submitKeys[t.key] == id {
		delete(s.submitKeys, t.key)
	}
	if !t.delivered {
		s.journalAppendLocked(&protocol.JournalRecord{Kind: protocol.JournalFetched, JobID: id})
	}
}

// ExpireJobs drops completed two-phase jobs whose TTL passed; servers
// embedded in long-running processes call this periodically (the
// ninfserver command runs it on a ticker).
func (s *Server) ExpireJobs(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, t := range s.jobs {
		select {
		case <-t.done:
			if !t.expire.IsZero() && now.After(t.expire) {
				s.removeJobLocked(id, t)
				n++
			}
		default:
		}
	}
	return n
}
