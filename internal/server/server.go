// Package server implements the Ninf computational server (§2.1): a
// process that services remote computing requests by managing the
// communication and activation of registered Ninf executables.
//
// Requests arrive as Ninf RPC frames. The server answers interface
// queries (stage one of the two-stage RPC), executes blocking calls,
// and supports the §5.1 two-phase submit/fetch protocol. Execution is
// governed by a processor pool and a pluggable scheduling policy
// (FCFS as deployed; SJF/FPFS/FPMPFS as the paper's proposed
// improvements), with the choice between task-parallel (one PE per
// call) and data-parallel (all PEs per call) library execution that
// §4.1 benchmarks.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ninf/internal/idl"
	"ninf/internal/protocol"
	"ninf/internal/server/sched"
)

// ExecMode selects how many processors each Ninf_call occupies.
type ExecMode int

// Execution modes (§4.1).
const (
	// TaskParallel serves each call with one PE, up to PEs calls
	// concurrently — the conventional approach of non-numerical
	// servers.
	TaskParallel ExecMode = iota
	// DataParallel allocates all processors to each call in
	// sequence, the optimized-parallel-library approach.
	DataParallel
)

// String returns a symbolic name for the mode.
func (m ExecMode) String() string {
	switch m {
	case TaskParallel:
		return "task-parallel"
	case DataParallel:
		return "data-parallel"
	default:
		return fmt.Sprintf("ExecMode(%d)", int(m))
	}
}

// Config parameterizes a Server. The zero value is usable: one PE,
// task-parallel, FCFS.
type Config struct {
	// Hostname labels the server in stats replies.
	Hostname string
	// PEs is the processor count (default 1).
	PEs int
	// Mode picks task- or data-parallel execution.
	Mode ExecMode
	// Policy schedules queued jobs; nil means FCFS.
	Policy sched.Policy
	// MaxQueue rejects new calls with CodeOverloaded once this many
	// jobs are waiting; 0 means unlimited.
	MaxQueue int
	// JobTTL bounds how long two-phase results are retained after
	// completion before being dropped (default 5 minutes).
	JobTTL time.Duration
	// MaxPayload bounds incoming frame payloads (default 1 GiB).
	MaxPayload int
	// DisableMux refuses the MsgHello protocol upgrade, keeping every
	// connection on the version-1 lockstep exchange. Useful for
	// benchmarking the two paths and for emulating pre-mux servers.
	DisableMux bool
	// MuxConcurrency bounds concurrently-dispatched requests per
	// multiplexed connection (default DefaultMuxConcurrency).
	MuxConcurrency int
	// Logger receives diagnostics; nil disables logging.
	Logger *log.Logger
}

// Server is a Ninf computational server.
type Server struct {
	cfg      Config
	registry *Registry
	policy   sched.Policy
	acct     *accounting
	trace    *tracer

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []*task
	freePEs    int
	seq        uint64
	jobs       map[uint64]*task  // two-phase jobs by ID
	submitKeys map[uint64]uint64 // submit idempotency key → job ID
	closed     bool

	nextJob  atomic.Uint64
	failNext atomic.Int64 // fault injection: calls to fail

	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup

	baseCtx    context.Context
	cancelBase context.CancelFunc
}

// task is one queued or running Ninf_call.
type task struct {
	job  sched.Job
	ex   *Executable
	args []idl.Value
	ctx  context.Context

	timings protocol.Timings
	err     error
	done    chan struct{}

	reqBytes int64 // request payload size, for the execution trace

	// two-phase bookkeeping
	twoPhase bool
	key      uint64 // submit idempotency key (0 = none)
	reply    []byte
	expire   time.Time
}

// New creates a server around a registry.
func New(cfg Config, reg *Registry) *Server {
	if cfg.PEs <= 0 {
		cfg.PEs = 1
	}
	if cfg.JobTTL <= 0 {
		cfg.JobTTL = 5 * time.Minute
	}
	if cfg.Hostname == "" {
		cfg.Hostname = "ninf-server"
	}
	pol := cfg.Policy
	if pol == nil {
		pol = sched.FCFS{}
	}
	s := &Server{
		cfg:        cfg,
		registry:   reg,
		policy:     pol,
		acct:       newAccounting(cfg.PEs, time.Now()),
		trace:      newTracer(),
		freePEs:    cfg.PEs,
		jobs:       make(map[uint64]*task),
		submitKeys: make(map[uint64]uint64),
		listeners:  make(map[net.Listener]struct{}),
		conns:      make(map[net.Conn]struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	return s
}

// Registry exposes the server's registry, e.g. for late registration.
func (s *Server) Registry() *Registry { return s.registry }

// logf logs through the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// Serve accepts connections on l until the listener is closed or the
// server shut down. Each connection is handled on its own goroutine;
// requests on one connection are processed in order, matching the
// blocking semantics of Ninf_call.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.ServeConn(conn)
		}()
	}
}

// Close shuts the server down: stops listeners, severs connections,
// cancels running handlers, and wakes waiters.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cancelBase()
	s.wg.Wait()
	return nil
}

// FailNextCalls arranges for the next n executions to fail with an
// execution error — the fault-injection hook used to exercise
// metaserver retry.
func (s *Server) FailNextCalls(n int) { s.failNext.Store(int64(n)) }

// Stats returns the server's current self-report.
func (s *Server) Stats() protocol.Stats {
	load, util, queued, running, total := s.acct.snapshot(time.Now())
	return protocol.Stats{
		Hostname:    s.cfg.Hostname,
		PEs:         int64(s.cfg.PEs),
		Running:     int64(running),
		Queued:      int64(queued),
		TotalCalls:  total,
		LoadAverage: load,
		CPUUtil:     util,
	}
}

// ServeConn processes frames from one connection until EOF or error.
// Exported so tests and the emulation layer can drive the server over
// arbitrary net.Conns (pipes, shaped links). Request frames are read
// into pooled buffers that dispatch recycles as soon as the payload is
// decoded, so steady-state serving allocates no framing memory.
//
// A connection starts in the version-1 lockstep exchange. When the
// client negotiates the protocol upgrade (MsgHello), the connection
// switches to the multiplexed loop (serveMux), which dispatches
// sequenced requests concurrently instead of one at a time.
func (s *Server) ServeConn(conn net.Conn) {
	for {
		typ, fb, err := protocol.ReadFrameBuf(conn, s.cfg.MaxPayload)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("ninf server: read: %v", err)
			}
			return
		}
		if err := s.dispatch(conn, typ, fb); err != nil {
			if err == errUpgradeMux {
				s.serveMux(conn)
				return
			}
			s.logf("ninf server: %v", err)
			return
		}
	}
}

// dispatch handles one request frame. It owns fb and releases it once
// the payload has been decoded — before waiting on execution, so a
// large argument frame is not pinned while the executable runs.
//
// Shared-writer audit: dispatch (and the helpers it calls — sendError,
// fetch, connInvoker) writes to conn directly. That is safe on the
// lockstep path only because ServeConn services one frame at a time on
// one goroutine, so at most one writer exists per connection. The mux
// path runs dispatches concurrently and must instead route every reply
// through serveMux's serialized writer; the ninflint sharedwrite pass
// flags conn writes from dispatch goroutines.
func (s *Server) dispatch(conn net.Conn, typ protocol.MsgType, fb *protocol.Buffer) error {
	payload := fb.Payload()
	switch typ {
	case protocol.MsgHello:
		defer fb.Release()
		return s.hello(conn, payload)
	case protocol.MsgPing:
		fb.Release()
		return protocol.WriteFrame(conn, protocol.MsgPong, nil)

	case protocol.MsgList:
		fb.Release()
		reply := protocol.ListReply{Names: s.registry.Names()}
		return protocol.WriteFrame(conn, protocol.MsgListReply, reply.Encode())

	case protocol.MsgStats:
		fb.Release()
		st := s.Stats()
		return protocol.WriteFrame(conn, protocol.MsgStatsOK, st.Encode())

	case protocol.MsgTrace:
		fb.Release()
		return protocol.WriteFrame(conn, protocol.MsgTraceOK, encodeTraces(s.Trace()))

	case protocol.MsgInterface:
		req, err := protocol.DecodeInterfaceRequest(payload)
		fb.Release()
		if err != nil {
			return s.sendError(conn, protocol.CodeBadArguments, err.Error())
		}
		ex := s.registry.Lookup(req.Name)
		if ex == nil {
			return s.sendError(conn, protocol.CodeUnknownRoutine, fmt.Sprintf("no routine %q", req.Name))
		}
		p, err := protocol.EncodeInterfaceReply(ex.Info)
		if err != nil {
			return s.sendError(conn, protocol.CodeInternal, err.Error())
		}
		return protocol.WriteFrame(conn, protocol.MsgInterfaceOK, p)

	case protocol.MsgCall:
		// Blocking calls carry a callback channel: the executable can
		// invoke client-registered functions over this connection
		// while it runs (§2.3).
		ctx := context.WithValue(s.baseCtx, callbackKey, s.connInvoker(conn))
		t, code, err := s.admit(payload, false, ctx, 0)
		fb.Release() // arguments are decoded and copied by admit
		if err != nil {
			return s.sendError(conn, code, err.Error())
		}
		<-t.done
		if t.err != nil {
			return s.sendError(conn, protocol.CodeExecFailed, t.err.Error())
		}
		reply, err := protocol.EncodeCallReplyBuf(t.ex.Info, t.timings, t.args)
		if err != nil {
			return s.sendError(conn, protocol.CodeInternal, err.Error())
		}
		werr := protocol.WriteFrameBuf(conn, protocol.MsgCallOK, reply)
		reply.Release()
		return werr

	case protocol.MsgSubmit:
		key, rest, err := protocol.DecodeSubmitKey(payload)
		if err != nil {
			fb.Release()
			return s.sendError(conn, protocol.CodeBadArguments, err.Error())
		}
		t, code, err := s.admit(rest, true, nil, key)
		fb.Release()
		if err != nil {
			return s.sendError(conn, code, err.Error())
		}
		reply := protocol.SubmitReply{JobID: t.job.ID}
		return protocol.WriteFrame(conn, protocol.MsgSubmitOK, reply.Encode())

	case protocol.MsgFetch:
		req, err := protocol.DecodeFetchRequest(payload)
		fb.Release()
		if err != nil {
			return s.sendError(conn, protocol.CodeBadArguments, err.Error())
		}
		return s.fetch(conn, req)

	default:
		fb.Release()
		return s.sendError(conn, protocol.CodeInternal, fmt.Sprintf("unexpected frame %v", typ))
	}
}

// sendError writes a MsgError frame. Lockstep path only: it writes to
// conn directly, which is safe solely because the serving goroutine is
// the connection's one writer. Mux dispatches use muxErrReply, which
// routes through the serialized writer instead.
func (s *Server) sendError(conn net.Conn, code uint32, detail string) error {
	return protocol.WriteFrame(conn, protocol.MsgError, protocol.EncodeErrorReply(code, detail))
}

// admit decodes a call payload, enqueues the job, and (for two-phase
// submissions) records it in the job table. It returns the task; for
// blocking calls the caller waits on task.done. A nonzero key is the
// submitter's idempotency key: a payload re-sent with a key already in
// the job table is a transport-level retry, answered with the
// already-admitted job instead of being executed a second time.
func (s *Server) admit(payload []byte, twoPhase bool, ctx context.Context, key uint64) (*task, uint32, error) {
	if ctx == nil {
		ctx = s.baseCtx
	}
	name, rest, err := protocol.DecodeCallName(payload)
	if err != nil {
		return nil, protocol.CodeBadArguments, err
	}
	ex := s.registry.Lookup(name)
	if ex == nil {
		return nil, protocol.CodeUnknownRoutine, fmt.Errorf("no routine %q", name)
	}
	args, err := protocol.DecodeCallArgs(ex.Info, rest)
	if err != nil {
		return nil, protocol.CodeBadArguments, err
	}

	pes := s.peAllocation(ex)
	t := &task{
		ex:       ex,
		args:     args,
		ctx:      ctx,
		done:     make(chan struct{}),
		twoPhase: twoPhase,
		reqBytes: int64(len(payload)),
	}
	t.job.PEs = pes
	if ops, ok := ex.Info.PredictedOps(args); ok {
		t.job.PredictedOps = ops
	} else if d := s.trace.predictCompute(name); d > 0 {
		// §5.1 fallback: no Complexity clause in the IDL, so predict
		// from the server execution trace. Nanoseconds serve as the
		// ops currency; SJF only compares magnitudes.
		t.job.PredictedOps = int64(d)
	}

	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, protocol.CodeInternal, errors.New("server shutting down")
	}
	if twoPhase && key != 0 {
		if id, ok := s.submitKeys[key]; ok {
			if prev, ok := s.jobs[id]; ok {
				// Duplicate submission: the original request arrived but
				// its SubmitOK was lost in transit. Hand back the job
				// already admitted under this key.
				s.mu.Unlock()
				return prev, 0, nil
			}
			delete(s.submitKeys, key)
		}
	}
	if s.cfg.MaxQueue > 0 && len(s.queue) >= s.cfg.MaxQueue {
		s.mu.Unlock()
		return nil, protocol.CodeOverloaded, fmt.Errorf("queue full (%d jobs)", s.cfg.MaxQueue)
	}
	s.seq++
	t.job.Seq = s.seq
	t.job.ID = s.nextJob.Add(1)
	t.timings.Enqueue = now.UnixNano()
	s.queue = append(s.queue, t)
	if twoPhase {
		t.key = key
		s.jobs[t.job.ID] = t
		if key != 0 {
			s.submitKeys[key] = t.job.ID
		}
	}
	s.acct.jobQueued(now)
	s.schedule()
	s.mu.Unlock()
	return t, 0, nil
}

// peAllocation resolves how many processors a call occupies.
func (s *Server) peAllocation(ex *Executable) int {
	pes := ex.PEs
	if pes == 0 {
		if s.cfg.Mode == DataParallel {
			pes = s.cfg.PEs
		} else {
			pes = 1
		}
	}
	if pes > s.cfg.PEs {
		pes = s.cfg.PEs
	}
	return pes
}

// schedule dispatches queued jobs while the policy finds one that fits.
// Callers hold mu.
func (s *Server) schedule() {
	for {
		if s.closed {
			// Fail queued jobs so waiters do not hang.
			for _, t := range s.queue {
				t.err = errors.New("server: shut down before execution")
				s.acct.jobAbandoned(time.Now())
				close(t.done)
			}
			s.queue = nil
			return
		}
		jobs := make([]*sched.Job, len(s.queue))
		for i, t := range s.queue {
			jobs[i] = &t.job
		}
		idx := s.policy.Next(jobs, s.freePEs)
		if idx < 0 || idx >= len(s.queue) {
			return
		}
		t := s.queue[idx]
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
		s.freePEs -= t.job.PEs
		now := time.Now()
		t.timings.Dequeue = now.UnixNano()
		s.acct.jobStarted(now, t.job.PEs)
		s.wg.Add(1)
		go s.run(t)
	}
}

// run executes one job and returns its processors.
func (s *Server) run(t *task) {
	defer s.wg.Done()
	err := s.execute(t)
	now := time.Now()
	t.timings.Complete = now.UnixNano()
	t.err = err
	s.trace.record(t.ex.Info.Name,
		time.Duration(t.timings.Dequeue-t.timings.Enqueue),
		time.Duration(t.timings.Complete-t.timings.Dequeue),
		t.reqBytes, err != nil)

	s.mu.Lock()
	s.freePEs += t.job.PEs
	s.acct.jobFinished(now, t.job.PEs)
	if t.twoPhase {
		t.expire = now.Add(s.cfg.JobTTL)
		// Pre-encode the reply so fetch is cheap and argument
		// buffers can be released.
		if err == nil {
			if p, encErr := protocol.EncodeCallReply(t.ex.Info, t.timings, t.args); encErr == nil {
				t.reply = p
			} else {
				t.err = encErr
			}
		}
		t.args = nil
	}
	s.schedule()
	s.cond.Broadcast()
	s.mu.Unlock()
	close(t.done)
}

// execute invokes the handler, honouring fault injection and panics.
func (s *Server) execute(t *task) (err error) {
	if n := s.failNext.Load(); n > 0 && s.failNext.CompareAndSwap(n, n-1) {
		return errors.New("injected fault")
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("executable %s panicked: %v", t.ex.Info.Name, r)
		}
	}()
	return t.ex.Handler(t.ctx, t.args)
}

// fetch answers a MsgFetch: not-ready, error, or the retained reply.
// The job is dropped from the table only after its reply frame was
// written successfully: a reply lost to a transport fault (reset,
// partial write) leaves the job fetchable, so the client's retried
// fetch re-reads the retained result instead of getting CodeUnknownJob
// and losing it forever.
func (s *Server) fetch(conn net.Conn, req protocol.FetchRequest) error {
	s.mu.Lock()
	t, ok := s.jobs[req.JobID]
	s.mu.Unlock()
	if !ok {
		return s.sendError(conn, protocol.CodeUnknownJob, fmt.Sprintf("no job %d", req.JobID))
	}
	if req.Wait {
		<-t.done
	}
	select {
	case <-t.done:
	default:
		return s.sendError(conn, protocol.CodeNotReady, fmt.Sprintf("job %d still running", req.JobID))
	}
	var werr error
	if t.err != nil {
		werr = s.sendError(conn, protocol.CodeExecFailed, t.err.Error())
	} else {
		werr = protocol.WriteFrame(conn, protocol.MsgFetchOK, t.reply)
	}
	if werr != nil {
		return werr
	}
	s.mu.Lock()
	s.removeJobLocked(req.JobID, t)
	s.mu.Unlock()
	return nil
}

// removeJobLocked drops a completed two-phase job and its submit
// idempotency key. Callers hold mu.
func (s *Server) removeJobLocked(id uint64, t *task) {
	delete(s.jobs, id)
	if t.key != 0 && s.submitKeys[t.key] == id {
		delete(s.submitKeys, t.key)
	}
}

// ExpireJobs drops completed two-phase jobs whose TTL passed; servers
// embedded in long-running processes call this periodically (the
// ninfserver command runs it on a ticker).
func (s *Server) ExpireJobs(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, t := range s.jobs {
		select {
		case <-t.done:
			if !t.expire.IsZero() && now.After(t.expire) {
				s.removeJobLocked(id, t)
				n++
			}
		default:
		}
	}
	return n
}
