package server

import (
	"math"
	"sync"
	"time"
)

// accounting tracks the quantities the paper instruments on the server
// side: a Unix-style exponentially-damped load average over the run
// queue, cumulative busy processor-time for CPU utilization, and call
// counters.
type accounting struct {
	mu        sync.Mutex
	pes       int
	start     time.Time
	lastLoad  time.Time
	load      float64       // damped load average
	busy      time.Duration // accumulated PE-busy time
	runningPE int           // PEs currently busy
	lastBusy  time.Time     // last time runningPE changed
	queued    int
	running   int
	total     int64
}

// loadTau is the damping constant of the load average, matching the
// classic 1-minute Unix loadavg.
const loadTau = 60 * time.Second

func newAccounting(pes int, now time.Time) *accounting {
	return &accounting{pes: pes, start: now, lastLoad: now, lastBusy: now}
}

// advance folds elapsed time into the damped load average and the busy
// accumulator. Callers hold mu.
func (a *accounting) advance(now time.Time) {
	if dt := now.Sub(a.lastLoad); dt > 0 {
		k := float64(a.running + a.queued)
		decay := math.Exp(-dt.Seconds() / loadTau.Seconds())
		a.load = a.load*decay + k*(1-decay)
		a.lastLoad = now
	}
	if dt := now.Sub(a.lastBusy); dt > 0 {
		a.busy += time.Duration(float64(dt) * float64(a.runningPE))
		a.lastBusy = now
	}
}

func (a *accounting) jobQueued(now time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.advance(now)
	a.queued++
	a.total++
}

func (a *accounting) jobStarted(now time.Time, pes int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.advance(now)
	a.queued--
	a.running++
	a.runningPE += pes
}

func (a *accounting) jobAbandoned(now time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.advance(now)
	a.queued--
}

func (a *accounting) jobFinished(now time.Time, pes int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.advance(now)
	a.running--
	a.runningPE -= pes
}

// snapshot returns (load average, cumulative CPU utilization in [0,1],
// queued, running, total calls).
func (a *accounting) snapshot(now time.Time) (load, util float64, queued, running int, total int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.advance(now)
	up := now.Sub(a.start)
	if up > 0 && a.pes > 0 {
		util = float64(a.busy) / (float64(up) * float64(a.pes))
		if util > 1 {
			util = 1
		}
	}
	return a.load, util, a.queued, a.running, a.total
}
