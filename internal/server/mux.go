package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"

	"ninf/internal/protocol"
)

// Multiplexed serving (protocol version 2). A lockstep connection
// reads a frame, fully services it, writes the reply, and only then
// reads the next — so one long dgefa call head-of-line-blocks every
// ping, list, and small call pipelined behind it, and N concurrent
// calls cost N connections. After a client negotiates the upgrade
// (MsgHello), the connection switches to serveMux: a read loop
// dispatches each sequenced request to the existing schedule/run
// machinery concurrently, bounded by a semaphore, and a single writer
// goroutine serializes (and coalesces) the replies.
//
// Shared-writer invariant: dispatch goroutines must NEVER write to the
// connection themselves — interleaved writes would corrupt the frame
// stream for every in-flight Seq. Every reply travels through the
// replies channel to muxWriteLoop, the connection's one serialization
// point. The ninflint sharedwrite pass enforces this shape.

// DefaultMuxConcurrency bounds how many requests one multiplexed
// connection services concurrently when Config.MuxConcurrency is 0.
// The bound is per connection: it caps dispatch goroutines (and
// admitted-but-queued jobs) a single pipelining client can hold open,
// while the PE pool still governs actual execution parallelism.
const DefaultMuxConcurrency = 64

// muxReply is one sequenced reply awaiting the serialized writer.
// sent, when non-nil, runs after the reply is confirmed written — the
// hook fetch uses to keep its job until the reply is really on the
// wire (a reply lost with the session must leave the job fetchable).
type muxReply struct {
	seq  uint32
	t    protocol.MsgType
	fb   *protocol.Buffer
	sent func()
}

// errUpgradeMux is the dispatch sentinel that switches ServeConn from
// the lockstep loop to serveMux after a successful Hello exchange.
var errUpgradeMux = errors.New("server: upgrade to mux framing")

// hello answers a MsgHello. With multiplexing enabled it accepts the
// highest common version and signals the upgrade; a server configured
// lockstep-only answers like a pre-mux server (MsgError), which the
// client takes as "legacy peer, stay lockstep".
func (s *Server) hello(conn net.Conn, payload []byte) error {
	req, err := protocol.DecodeHelloRequest(payload)
	if err != nil {
		return s.sendError(conn, protocol.CodeBadArguments, err.Error())
	}
	if s.cfg.DisableMux || req.MaxVersion < protocol.MuxVersion {
		return s.sendError(conn, protocol.CodeInternal,
			fmt.Sprintf("unexpected frame %v", protocol.MsgHello))
	}
	rep := protocol.HelloReply{Version: protocol.MuxVersion}
	if err := protocol.WriteFrame(conn, protocol.MsgHelloOK, rep.Encode()); err != nil {
		return err
	}
	return errUpgradeMux
}

// muxConcurrency resolves the per-connection dispatch bound.
func (s *Server) muxConcurrency() int {
	if s.cfg.MuxConcurrency > 0 {
		return s.cfg.MuxConcurrency
	}
	return DefaultMuxConcurrency
}

// serveMux services one upgraded connection until EOF or error. The
// read loop acquires a semaphore slot per request — backpressure on a
// client pipelining more than MuxConcurrency calls — and hands the
// frame to a dispatch goroutine; replies funnel through muxWriteLoop.
func (s *Server) serveMux(conn net.Conn, client string) {
	replies := make(chan muxReply, s.muxConcurrency())
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	sem := make(chan struct{}, s.muxConcurrency())
	outstanding := func() int { return len(sem) }
	go func() {
		defer writerWG.Done()
		s.muxWriteLoop(conn, replies, outstanding)
	}()

	var wg sync.WaitGroup
	// Pipelined small requests arrive many to a segment; the buffered
	// reader amortizes their header/payload reads into one syscall.
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		typ, seq, fb, err := protocol.ReadMuxFrameBuf(br, s.cfg.MaxPayload)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("ninf server: mux read: %v", err)
			}
			break
		}
		sem <- struct{}{}
		// Every accepted frame owes the writer one reply; the pending
		// count pairs with muxWriteLoop's replyDone so Drain can wait
		// for the wire to flush.
		s.replyPending()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t, rb, sent := s.muxReplyFor(client, typ, fb)
			replies <- muxReply{seq: seq, t: t, fb: rb, sent: sent}
		}()
	}
	wg.Wait()
	close(replies)
	writerWG.Wait()
}

// muxWriteLoop is the connection's single serialized writer: it drains
// the replies channel, coalescing whatever is queued into one vectored
// write. After a write error it keeps draining — releasing buffers so
// dispatch goroutines can finish — until the channel closes.
//
// outstanding reports how many dispatch goroutines are still running.
// While more work is in flight than is sitting in the batch, the
// writer yields the processor (bounded) before flushing: near-done
// handlers get to finish and their replies join this vectored write
// instead of each costing a syscall — on a loaded single-core box the
// difference between one write per reply and one write per burst.
func (s *Server) muxWriteLoop(conn net.Conn, replies <-chan muxReply, outstanding func() int) {
	batch := make([]muxReply, 0, maxMuxWriteBatch)
	bufs := make([]*protocol.Buffer, 0, maxMuxWriteBatch)
	broken := false
	for r := range replies {
		batch = append(batch[:0], r)
		for yields := 0; ; {
		gather:
			for len(batch) < maxMuxWriteBatch {
				select {
				case more, ok := <-replies:
					if !ok {
						break gather
					}
					batch = append(batch, more)
				default:
					break gather
				}
			}
			if yields >= 2 || len(batch) >= maxMuxWriteBatch || outstanding() <= len(batch) {
				break
			}
			yields++
			runtime.Gosched()
		}
		bufs = bufs[:0]
		for i := range batch {
			bufs = append(bufs, stampReply(batch[i]))
		}
		if !broken {
			//lint:ninflint sharedwrite — muxWriteLoop IS the connection's serialization point
			if err := protocol.WriteStampedFrames(conn, bufs); err != nil {
				broken = true
				s.logf("ninf server: mux write: %v", err)
				conn.Close() // wake the read loop so the conn tears down
			}
		}
		for i := range batch {
			if !broken && batch[i].sent != nil {
				batch[i].sent()
			}
			bufs[i].Release()
			// Written or lost with the connection, this reply is no
			// longer pending; on a broken conn the client's retry path
			// owns recovery and Drain must not wait for it.
			s.replyDone()
		}
	}
}

// maxMuxWriteBatch bounds one coalesced reply write; see mux.maxWriteBatch.
const maxMuxWriteBatch = 64

// stampReply stamps one reply's mux header, materializing an empty
// buffer for payload-less replies (Pong).
func stampReply(r muxReply) *protocol.Buffer {
	//lint:ninflint releasecheck — a materialized empty buffer's ownership flows out through the return
	fb := r.fb
	if fb == nil {
		fb = protocol.AcquireBuffer(0)
	}
	protocol.StampMux(fb, r.t, r.seq)
	return fb
}

// muxErrReply builds a MsgError reply buffer (nil sent hook).
func muxErrReply(code uint32, detail string) (protocol.MsgType, *protocol.Buffer, func()) {
	return muxErrReplyHint(code, detail, 0)
}

// muxErrReplyHint is muxErrReply carrying a retry-after hint on
// overload rejections.
func muxErrReplyHint(code uint32, detail string, retryAfterMillis uint32) (protocol.MsgType, *protocol.Buffer, func()) {
	return protocol.MsgError, protocol.BufferFor(protocol.EncodeErrorReplyHint(code, detail, retryAfterMillis)), nil
}

// muxReplyFor services one sequenced request and returns its reply
// frame. It owns fb and releases it once the payload is decoded. It
// runs on a dispatch goroutine: any number of these proceed
// concurrently on one connection, so nothing here may touch the
// connection — replies go back through the serialized writer.
//
// Blocking calls run without a callback invoker: the connection
// carries interleaved sequenced frames, not the quiet parked stream
// the §2.3 callback facility needs, so executables that call back get
// ErrNoCallback (clients with registered callbacks stay on the
// lockstep path).
func (s *Server) muxReplyFor(client string, typ protocol.MsgType, fb *protocol.Buffer) (protocol.MsgType, *protocol.Buffer, func()) {
	payload := fb.Payload()
	switch typ {
	case protocol.MsgPing:
		fb.Release()
		return protocol.MsgPong, nil, nil

	case protocol.MsgList:
		fb.Release()
		reply := protocol.ListReply{Names: s.registry.Names()}
		return protocol.MsgListReply, protocol.BufferFor(reply.Encode()), nil

	case protocol.MsgStats:
		fb.Release()
		st := s.Stats()
		return protocol.MsgStatsOK, protocol.BufferFor(st.Encode()), nil

	case protocol.MsgTrace:
		fb.Release()
		return protocol.MsgTraceOK, protocol.BufferFor(encodeTraces(s.Trace())), nil

	case protocol.MsgInterface:
		req, err := protocol.DecodeInterfaceRequest(payload)
		fb.Release()
		if err != nil {
			return muxErrReply(protocol.CodeBadArguments, err.Error())
		}
		ex := s.registry.Lookup(req.Name)
		if ex == nil {
			return muxErrReply(protocol.CodeUnknownRoutine, fmt.Sprintf("no routine %q", req.Name))
		}
		p, err := protocol.EncodeInterfaceReply(ex.Info)
		if err != nil {
			return muxErrReply(protocol.CodeInternal, err.Error())
		}
		return protocol.MsgInterfaceOK, protocol.BufferFor(p), nil

	case protocol.MsgCall:
		t, code, hint, err := s.admit(payload, false, nil, 0, client)
		fb.Release() // arguments are decoded and copied by admit
		if err != nil {
			return muxErrReplyHint(code, err.Error(), hint)
		}
		<-t.done
		if t.err != nil {
			return muxErrReplyHint(t.failCode(), t.err.Error(), t.retryAfter)
		}
		reply, err := protocol.EncodeCallReplyBuf(t.ex.Info, t.timings, t.args)
		if err != nil {
			return muxErrReply(protocol.CodeInternal, err.Error())
		}
		return protocol.MsgCallOK, reply, nil

	case protocol.MsgSubmit:
		key, rest, err := protocol.DecodeSubmitKey(payload)
		if err != nil {
			fb.Release()
			return muxErrReply(protocol.CodeBadArguments, err.Error())
		}
		t, code, hint, err := s.admit(rest, true, nil, key, client)
		fb.Release()
		if err != nil {
			return muxErrReplyHint(code, err.Error(), hint)
		}
		reply := protocol.SubmitReply{JobID: t.job.ID}
		return protocol.MsgSubmitOK, protocol.BufferFor(reply.Encode()), nil

	case protocol.MsgFetch:
		req, err := protocol.DecodeFetchRequest(payload)
		fb.Release()
		if err != nil {
			return muxErrReply(protocol.CodeBadArguments, err.Error())
		}
		return s.muxFetch(req)

	default:
		fb.Release()
		return muxErrReply(protocol.CodeInternal, fmt.Sprintf("unexpected frame %v", typ))
	}
}

// muxFetch is fetch for the mux path. Like the lockstep fetch it must
// not remove the job until the reply frame is on the wire — a reply
// lost with the session must leave the job fetchable for the client's
// retried fetch on a fresh session. The writer owns the wire here, so
// removal rides the reply's sent hook: muxWriteLoop runs it only
// after a successful write. Wait:true degrades to not-ready polling,
// as the client wire protocol always sets Wait:false.
func (s *Server) muxFetch(req protocol.FetchRequest) (protocol.MsgType, *protocol.Buffer, func()) {
	s.mu.Lock()
	t, ok := s.jobs[req.JobID]
	s.mu.Unlock()
	if !ok {
		return muxErrReply(protocol.CodeUnknownJob, fmt.Sprintf("no job %d", req.JobID))
	}
	if req.Wait {
		<-t.done
	}
	select {
	case <-t.done:
	default:
		return muxErrReply(protocol.CodeNotReady, fmt.Sprintf("job %d still running", req.JobID))
	}
	if t.err != nil {
		return muxErrReplyHint(t.failCode(), t.err.Error(), t.retryAfter)
	}
	reply := protocol.BufferFor(t.reply)
	sent := func() {
		s.mu.Lock()
		s.removeJobLocked(req.JobID, t)
		s.mu.Unlock()
	}
	return protocol.MsgFetchOK, reply, sent
}
