package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"

	"ninf/internal/protocol"
)

// Multiplexed serving (protocol version 2). A lockstep connection
// reads a frame, fully services it, writes the reply, and only then
// reads the next — so one long dgefa call head-of-line-blocks every
// ping, list, and small call pipelined behind it, and N concurrent
// calls cost N connections. After a client negotiates the upgrade
// (MsgHello), the connection switches to serveMux: a read loop
// dispatches each sequenced request to the existing schedule/run
// machinery concurrently, bounded by a semaphore, and a single writer
// goroutine serializes (and coalesces) the replies.
//
// At feature level 3 (protocol.MuxVersionBulk) large requests arrive
// as chunked bulk frames — the read loop reassembles them straight off
// the buffered reader — and large replies stream back the same way,
// the writer interleaving one bounded chunk per turn between flushes of
// complete small replies, so a LINPACK-sized result no longer
// head-of-line-blocks pipelined pings behind it.
//
// Shared-writer invariant: dispatch goroutines must NEVER write to the
// connection themselves — interleaved writes would corrupt the frame
// stream for every in-flight Seq. Every reply travels through the
// replies channel to muxWriteLoop, the connection's one serialization
// point. The ninflint sharedwrite pass enforces this shape.

// DefaultMuxConcurrency bounds how many requests one multiplexed
// connection services concurrently when Config.MuxConcurrency is 0.
// The bound is per connection: it caps dispatch goroutines (and
// admitted-but-queued jobs) a single pipelining client can hold open,
// while the PE pool still governs actual execution parallelism.
const DefaultMuxConcurrency = 64

// muxReply is one sequenced reply awaiting the serialized writer.
// Exactly one of fb (complete frame, possibly nil for payload-less
// replies) or bulk (chunk-streamed reply) is used; bulk wins when set.
// sent, when non-nil, runs after the reply is confirmed written — the
// hook fetch uses to keep its job until the reply is really on the
// wire (a reply lost with the session must leave the job fetchable).
type muxReply struct {
	seq  uint32
	t    protocol.MsgType
	fb   *protocol.Buffer
	bulk *protocol.BulkMsg
	sent func()
}

// muxUpgrade is the dispatch error that switches ServeConn from the
// lockstep loop to serveMux after a successful Hello exchange,
// carrying the negotiated protocol feature level.
type muxUpgrade struct{ version int }

func (u *muxUpgrade) Error() string { return "server: upgrade to mux framing" }

// hello answers a MsgHello. With multiplexing enabled it accepts the
// highest common version and signals the upgrade; a server configured
// lockstep-only answers like a pre-mux server (MsgError), which the
// client takes as "legacy peer, stay lockstep".
func (s *Server) hello(conn net.Conn, payload []byte) error {
	req, err := protocol.DecodeHelloRequest(payload)
	if err != nil {
		return s.sendError(conn, protocol.CodeBadArguments, err.Error())
	}
	if s.cfg.DisableMux || req.MaxVersion < protocol.MuxVersion {
		return s.sendError(conn, protocol.CodeInternal,
			fmt.Sprintf("unexpected frame %v", protocol.MsgHello))
	}
	version := req.MaxVersion
	if version > protocol.MuxVersionCache {
		version = protocol.MuxVersionCache
	}
	rep := protocol.HelloReply{Version: version, Epoch: s.epoch.Load()}
	if version >= protocol.MuxVersionCache && s.cache != nil {
		// Digest references are only legal once the server says its
		// cache is live; without the flag a level-4 connection is
		// bit-identical to level 3.
		rep.Flags |= protocol.HelloFlagArgCache
	}
	if err := protocol.WriteFrame(conn, protocol.MsgHelloOK, rep.Encode()); err != nil {
		return err
	}
	return &muxUpgrade{version: int(version)}
}

// muxConcurrency resolves the per-connection dispatch bound.
func (s *Server) muxConcurrency() int {
	if s.cfg.MuxConcurrency > 0 {
		return s.cfg.MuxConcurrency
	}
	return DefaultMuxConcurrency
}

// bulkThreshold resolves the reply-chunking threshold; 0 disables.
func (s *Server) bulkThreshold() int {
	switch {
	case s.cfg.BulkThreshold < 0:
		return 0
	case s.cfg.BulkThreshold == 0:
		return protocol.DefaultBulkThreshold
	default:
		return s.cfg.BulkThreshold
	}
}

// serveMux services one upgraded connection until EOF or error. The
// read loop acquires a semaphore slot per request — backpressure on a
// client pipelining more than MuxConcurrency calls — and hands the
// frame to a dispatch goroutine; replies funnel through muxWriteLoop.
// Chunked bulk requests reassemble inline in the read loop (chunk data
// is read straight into the per-sequence buffer) and dispatch once
// complete, exactly like a monolithic frame plus segment metadata.
//
//ninflint:hotpath
func (s *Server) serveMux(conn net.Conn, client string, version int) {
	bulkOK := version >= protocol.MuxVersionBulk
	cacheOK := version >= protocol.MuxVersionCache && s.cache != nil
	replies := make(chan muxReply, s.muxConcurrency())
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	sem := make(chan struct{}, s.muxConcurrency())
	outstanding := func() int { return len(sem) }
	go func() {
		defer writerWG.Done()
		s.muxWriteLoop(conn, replies, outstanding)
	}()

	var wg sync.WaitGroup
	dispatch := func(typ protocol.MsgType, seq uint32, fb *protocol.Buffer, bulk *protocol.BulkInfo) {
		sem <- struct{}{}
		// Every accepted frame owes the writer one reply; the pending
		// count pairs with muxWriteLoop's replyDone so Drain can wait
		// for the wire to flush.
		s.replyPending()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t, rb, bm, sent := s.muxReplyFor(client, typ, fb, bulk, bulkOK, cacheOK)
			replies <- muxReply{seq: seq, t: t, fb: rb, bulk: bm, sent: sent}
		}()
	}

	// Pipelined small requests arrive many to a segment; the buffered
	// reader amortizes their header/payload reads into one syscall.
	br := bufio.NewReaderSize(conn, 64<<10)
	// The reassembler caps concurrently-open bulk requests at the
	// dispatch bound; Close releases anything half-assembled when the
	// connection dies mid-stream (the chaos tests' leak path).
	ra := protocol.NewReassembler(s.cfg.MaxPayload, s.muxConcurrency())
	defer ra.Close()
read:
	for {
		typ, seq, n, err := protocol.ReadMuxHeader(br, s.cfg.MaxPayload)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("ninf server: mux read: %v", err)
			}
			break
		}
		switch typ {
		case protocol.MsgBulkBegin:
			fb, err := protocol.ReadMuxPayload(br, n)
			if err != nil {
				s.logf("ninf server: mux read: %v", err)
				break read
			}
			berr := ra.Begin(seq, fb.Payload(), false)
			fb.Release()
			if berr != nil {
				// Duplicate seq, oversize, or reassembly flood: the
				// stream is unsound, tear the connection down.
				s.logf("ninf server: mux read: %v", berr)
				break read
			}
		case protocol.MsgBulkChunk:
			bd, err := ra.ReadChunk(br, seq, n)
			if err != nil {
				s.logf("ninf server: mux read: %v", err)
				break read
			}
			if bd != nil {
				dispatch(bd.Type, seq, bd.FB, &bd.Bulk)
			}
		case protocol.MsgBulkAbort:
			// The client gave up mid-stream (context ended); drop the
			// partial reassembly and move on. No reply is owed.
			if n > 0 {
				fb, err := protocol.ReadMuxPayload(br, n)
				if err != nil {
					s.logf("ninf server: mux read: %v", err)
					break read
				}
				fb.Release()
			}
			ra.Abort(seq)
		default:
			fb, err := protocol.ReadMuxPayload(br, n)
			if err != nil {
				s.logf("ninf server: mux read: %v", err)
				break read
			}
			dispatch(typ, seq, fb, nil)
		}
	}
	wg.Wait()
	close(replies)
	writerWG.Wait()
}

// bulkFlight is one chunk-streamed reply in progress in the writer.
type bulkFlight struct {
	r     muxReply
	cur   protocol.BulkCursor
	begun bool
}

// muxWriteLoop is the connection's single serialized writer: it drains
// the replies channel, coalescing whatever is queued into one vectored
// write, and streams bulk replies a chunk at a time between those
// flushes — round-robin across concurrent bulk replies, so several
// large results share the wire and small replies never wait behind a
// whole payload. Active bulk replies are finished (streamed to
// completion) even after the replies channel closes: a graceful drain
// must flush partially-sent results, not truncate them. After a write
// error it keeps draining — releasing buffers so dispatch goroutines
// can finish — until the channel closes and the actives are settled.
//
// outstanding reports how many dispatch goroutines are still running.
// While more work is in flight than is sitting in the batch, the
// writer yields the processor (bounded) before flushing: near-done
// handlers get to finish and their replies join this vectored write
// instead of each costing a syscall — on a loaded single-core box the
// difference between one write per reply and one write per burst. With
// bulk chunks pending the writer never yields; the chunk write itself
// is the pause that lets replies accumulate.
//
//ninflint:hotpath
func (s *Server) muxWriteLoop(conn net.Conn, replies <-chan muxReply, outstanding func() int) {
	batch := make([]muxReply, 0, maxMuxWriteBatch)
	bufs := make([]*protocol.Buffer, 0, maxMuxWriteBatch)
	var active []*bulkFlight
	rr, burst := 0, 0
	broken := false
	open := true
	for open || len(active) > 0 {
		batch = batch[:0]
		if len(active) == 0 {
			r, ok := <-replies
			if !ok {
				open = false
				continue
			}
			takeReply(r, &batch, &active)
		}
		for yields := 0; open; {
		gather:
			for len(batch) < maxMuxWriteBatch {
				select {
				case more, ok := <-replies:
					if !ok {
						open = false
						break gather
					}
					takeReply(more, &batch, &active)
				default:
					break gather
				}
			}
			if len(active) > 0 || yields >= 2 || len(batch) >= maxMuxWriteBatch || outstanding() <= len(batch) {
				break
			}
			yields++
			runtime.Gosched()
		}
		if len(batch) > 0 {
			bufs = bufs[:0]
			for i := range batch {
				bufs = append(bufs, stampReply(batch[i]))
			}
			if !broken {
				// muxWriteLoop is the connection's serialization point.
				if err := protocol.WriteStampedFrames(conn, bufs); err != nil {
					broken = true
					s.logf("ninf server: mux write: %v", err)
					conn.Close() // wake the read loop so the conn tears down
				}
			}
			for i := range batch {
				if !broken && batch[i].sent != nil {
					batch[i].sent()
				}
				bufs[i].Release()
				// Written or lost with the connection, this reply is no
				// longer pending; on a broken conn the client's retry path
				// owns recovery and Drain must not wait for it.
				s.replyDone()
			}
		}
		if len(active) == 0 {
			continue
		}
		rr %= len(active)
		bf := active[rr]
		done := broken
		if !broken {
			var err error
			done, err = s.bulkReplyStep(conn, bf)
			if err != nil {
				broken = true
				s.logf("ninf server: mux write: %v", err)
				conn.Close()
			}
		}
		if broken || done {
			// Fully streamed, or lost with the connection: either way
			// this reply is settled and its sent hook may run (only on a
			// complete write — a job must stay fetchable otherwise).
			if !broken && bf.r.sent != nil {
				bf.r.sent()
			}
			bf.r.bulk.Release()
			s.replyDone()
			active[rr] = active[len(active)-1]
			active = active[:len(active)-1]
			burst = 0
		} else if burst++; burst >= bulkBurstChunks {
			// Take a few consecutive chunks from one reply before
			// rotating: control replies still preempt between every
			// chunk, so this only trades inter-bulk fairness for the
			// streaming locality concurrent transfers need.
			rr++
			burst = 0
		}
	}
}

// takeReply routes one reply to the control batch or the bulk actives.
func takeReply(r muxReply, batch *[]muxReply, active *[]*bulkFlight) {
	if r.bulk != nil {
		*active = append(*active, &bulkFlight{r: r, cur: r.bulk.Cursor()})
		return
	}
	*batch = append(*batch, r)
}

// bulkReplyStep writes one frame of a streaming reply: its begin
// header first, then one bounded chunk per turn. It reports whether
// the reply is fully on the wire.
func (s *Server) bulkReplyStep(conn net.Conn, bf *bulkFlight) (bool, error) {
	if !bf.begun {
		fb := bf.r.bulk.EncodeBegin()
		//lint:ninflint sharedwrite,featgate — muxWriteLoop IS the serialization point; replies enter bulkq only via bulkOK-gated muxReplyFor
		err := protocol.WriteMuxFrameBuf(conn, protocol.MsgBulkBegin, bf.r.seq, fb)
		fb.Release()
		if err != nil {
			return false, err
		}
		bf.begun = true
		return false, nil
	}
	// muxWriteLoop is the connection's serialization point.
	return bf.cur.WriteChunk(conn, bf.r.seq, protocol.DefaultBulkChunk)
}

// maxMuxWriteBatch bounds one coalesced reply write; see mux.maxWriteBatch.
const maxMuxWriteBatch = 64

// bulkBurstChunks mirrors the client writer's burst factor (see
// internal/mux): consecutive chunks taken from one streaming reply
// before the writer rotates to the next.
const bulkBurstChunks = 4

// stampReply stamps one reply's mux header, materializing an empty
// buffer for payload-less replies (Pong).
func stampReply(r muxReply) *protocol.Buffer {
	//lint:ninflint releasecheck — a materialized empty buffer's ownership flows out through the return
	fb := r.fb
	if fb == nil {
		fb = protocol.AcquireBuffer(0)
	}
	protocol.StampMux(fb, r.t, r.seq)
	return fb
}

// muxErrReply builds a MsgError reply buffer (nil sent hook).
func muxErrReply(code uint32, detail string) (protocol.MsgType, *protocol.Buffer, *protocol.BulkMsg, func()) {
	return muxErrReplyHint(code, detail, 0)
}

// muxErrReplyHint is muxErrReply carrying a retry-after hint on
// overload rejections.
func muxErrReplyHint(code uint32, detail string, retryAfterMillis uint32) (protocol.MsgType, *protocol.Buffer, *protocol.BulkMsg, func()) {
	return protocol.MsgError, protocol.BufferFor(protocol.EncodeErrorReplyHint(code, detail, retryAfterMillis)), nil, nil
}

// muxReplyFor services one sequenced request and returns its reply —
// a complete frame buffer, or a BulkMsg for the writer to stream
// chunked. It owns fb and releases it once the payload is decoded
// (bulk requests included: admit copies every argument out of the
// reassembly buffer). bulk carries the segment metadata of a
// reassembled chunked request; bulkOK says the peer accepts chunked
// replies. It runs on a dispatch goroutine: any number of these
// proceed concurrently on one connection, so nothing here may touch
// the connection — replies go back through the serialized writer.
//
// Blocking calls run without a callback invoker: the connection
// carries interleaved sequenced frames, not the quiet parked stream
// the §2.3 callback facility needs, so executables that call back get
// ErrNoCallback (clients with registered callbacks stay on the
// lockstep path).
func (s *Server) muxReplyFor(client string, typ protocol.MsgType, fb *protocol.Buffer, bulk *protocol.BulkInfo, bulkOK, cacheOK bool) (protocol.MsgType, *protocol.Buffer, *protocol.BulkMsg, func()) {
	payload := fb.Payload()
	if bulk != nil {
		if typ != protocol.MsgCall && typ != protocol.MsgSubmit {
			fb.Release()
			return muxErrReply(protocol.CodeBadArguments, fmt.Sprintf("unexpected bulk frame %v", typ))
		}
		payload = bulk.Head()
	}
	switch typ {
	case protocol.MsgPing:
		fb.Release()
		return protocol.MsgPong, nil, nil, nil

	case protocol.MsgList:
		fb.Release()
		reply := protocol.ListReply{Names: s.registry.Names()}
		return protocol.MsgListReply, protocol.BufferFor(reply.Encode()), nil, nil

	case protocol.MsgStats:
		fb.Release()
		st := s.Stats()
		return protocol.MsgStatsOK, protocol.BufferFor(st.Encode()), nil, nil

	case protocol.MsgTrace:
		fb.Release()
		return protocol.MsgTraceOK, protocol.BufferFor(encodeTraces(s.Trace())), nil, nil

	case protocol.MsgInterface:
		req, err := protocol.DecodeInterfaceRequest(payload)
		fb.Release()
		if err != nil {
			return muxErrReply(protocol.CodeBadArguments, err.Error())
		}
		ex := s.registry.Lookup(req.Name)
		if ex == nil {
			return muxErrReply(protocol.CodeUnknownRoutine, fmt.Sprintf("no routine %q", req.Name))
		}
		p, err := protocol.EncodeInterfaceReply(ex.Info)
		if err != nil {
			return muxErrReply(protocol.CodeInternal, err.Error())
		}
		return protocol.MsgInterfaceOK, protocol.BufferFor(p), nil, nil

	case protocol.MsgCall:
		bulk = s.attachCache(bulk, payload, cacheOK)
		t, code, hint, err := s.admit(payload, bulk, false, nil, 0, client)
		fb.Release() // arguments are decoded and copied by admit
		if err != nil {
			return muxErrReplyHint(code, err.Error(), hint)
		}
		<-t.done
		if t.err != nil {
			return muxErrReplyHint(t.failCode(), t.err.Error(), t.retryAfter)
		}
		if bulkOK {
			// Large results stream back chunked; the BulkMsg's segment
			// spans alias t.args, which stay live (and unmutated — the
			// task is complete) until the writer finishes with them.
			bm, err := protocol.EncodeCallReplyChunks(t.ex.Info, t.timings, t.args, s.bulkThreshold())
			if err != nil {
				return muxErrReply(protocol.CodeInternal, err.Error())
			}
			if bm != nil {
				return protocol.MsgCallOK, nil, bm, nil
			}
		}
		reply, err := protocol.EncodeCallReplyBuf(t.ex.Info, t.timings, t.args)
		if err != nil {
			return muxErrReply(protocol.CodeInternal, err.Error())
		}
		return protocol.MsgCallOK, reply, nil, nil

	case protocol.MsgSubmit:
		key, rest, err := protocol.DecodeSubmitKey(payload)
		if err != nil {
			fb.Release()
			return muxErrReply(protocol.CodeBadArguments, err.Error())
		}
		bulk = s.attachCache(bulk, rest, cacheOK)
		t, code, hint, err := s.admit(rest, bulk, true, nil, key, client)
		fb.Release()
		if err != nil {
			return muxErrReplyHint(code, err.Error(), hint)
		}
		reply := protocol.SubmitReply{JobID: t.job.ID}
		return protocol.MsgSubmitOK, protocol.BufferFor(reply.Encode()), nil, nil

	case protocol.MsgFetch:
		req, err := protocol.DecodeFetchRequest(payload)
		fb.Release()
		if err != nil {
			return muxErrReply(protocol.CodeBadArguments, err.Error())
		}
		return s.muxFetch(req, bulkOK)

	case protocol.MsgCallDigest:
		digs, err := protocol.DecodeDigestQuery(payload)
		fb.Release()
		if err != nil {
			return muxErrReply(protocol.CodeBadArguments, err.Error())
		}
		if !cacheOK {
			return muxErrReply(protocol.CodeInternal, "argument cache disabled")
		}
		warm := make([]bool, len(digs))
		for i, d := range digs {
			warm[i] = s.cache.contains(d)
		}
		return protocol.MsgDigestStatus, protocol.EncodeDigestStatusBuf(warm), nil, nil

	case protocol.MsgDataHandle:
		d, err := protocol.DecodeDataHandleRequest(payload)
		fb.Release()
		if err != nil {
			return muxErrReply(protocol.CodeBadArguments, err.Error())
		}
		if !cacheOK {
			return muxErrReply(protocol.CodeInternal, "argument cache disabled")
		}
		b, ok := s.cache.get(d)
		if !ok {
			return muxErrReply(protocol.CodeCacheMiss, fmt.Sprintf("no cached value %v", d))
		}
		return protocol.MsgDataHandleOK, protocol.EncodeDataHandleReplyBuf(d, b), nil, nil

	default:
		fb.Release()
		return muxErrReply(protocol.CodeInternal, fmt.Sprintf("unexpected frame %v", typ))
	}
}

// attachCache gives a level-4 call's decode a per-call cache view: the
// resolver that answers digest markers (pinning what it resolves) and
// retains uploaded segments. A monolithic frame gets a synthesized
// BulkInfo — digest markers carry no offsets, so a head-only Base is
// sound, and inline arrays take the non-marker decode path untouched.
// Below level 4 (or with the cache off) bulk passes through unchanged
// and decode rejects any digest marker.
func (s *Server) attachCache(bulk *protocol.BulkInfo, head []byte, cacheOK bool) *protocol.BulkInfo {
	if !cacheOK {
		return bulk
	}
	if bulk == nil {
		bulk = &protocol.BulkInfo{Base: head, HeadLen: len(head)}
	}
	bulk.Resolver = &callPins{c: s.cache}
	return bulk
}

// muxFetch is fetch for the mux path. Like the lockstep fetch it must
// not mark the job delivered until the reply frame is on the wire — a
// reply lost with the session must leave the job fully fetchable for
// the client's retried fetch on a fresh session. The writer owns the
// wire here, so delivery rides the reply's sent hook: muxWriteLoop
// runs it only after a successful write, and the job then lingers
// re-fetchable for DeliveredTTL (see markDeliveredLocked) to cover a
// written-but-lost reply. Large stored results stream back chunked
// (the BulkMsg aliases the job's pre-encoded reply, which the linger
// keeps live until well past the write). Wait:true degrades to
// not-ready polling, as the client wire protocol always sets
// Wait:false.
func (s *Server) muxFetch(req protocol.FetchRequest, bulkOK bool) (protocol.MsgType, *protocol.Buffer, *protocol.BulkMsg, func()) {
	s.mu.Lock()
	t, ok := s.jobs[req.JobID]
	s.mu.Unlock()
	if !ok {
		return muxErrReply(protocol.CodeUnknownJob, fmt.Sprintf("no job %d", req.JobID))
	}
	if req.Wait {
		<-t.done
	}
	select {
	case <-t.done:
	default:
		return muxErrReply(protocol.CodeNotReady, fmt.Sprintf("job %d still running", req.JobID))
	}
	if t.err != nil {
		return muxErrReplyHint(t.failCode(), t.err.Error(), t.retryAfter)
	}
	sent := func() {
		s.mu.Lock()
		s.markDeliveredLocked(req.JobID, t)
		s.mu.Unlock()
	}
	if thr := s.bulkThreshold(); bulkOK && thr > 0 && len(t.reply) >= thr {
		return protocol.MsgFetchOK, nil, protocol.RawBulkMsg(protocol.MsgFetchOK, t.reply), sent
	}
	reply := protocol.BufferFor(t.reply)
	return protocol.MsgFetchOK, reply, nil, sent
}
