package server

import (
	"testing"

	"ninf/internal/testleak"
)

// TestMain fails the package if the server or stress tests leave
// goroutines (acceptor loops, per-connection handlers) running after
// they pass.
func TestMain(m *testing.M) { testleak.Main(m) }
