package server

import (
	"testing"

	"ninf/internal/idl"
	"ninf/internal/protocol"
	"ninf/internal/server/journal"
)

// attach opens the journal on s with fsync-always (tests simulate
// crashes by abandoning the server, so every record must be on disk the
// moment the server acknowledged it).
func attach(t *testing.T, s *Server, dir string, opts journal.Options) Recovery {
	t.Helper()
	opts.Fsync = journal.FsyncAlways
	rec, err := s.AttachJournal(dir, opts)
	if err != nil {
		t.Fatalf("AttachJournal: %v", err)
	}
	return rec
}

// TestJournalRestoresCompletedResult proves a completed-but-unfetched
// two-phase result survives a crash: the restarted server re-serves it
// under the original job ID without re-executing.
func TestJournalRestoresCompletedResult(t *testing.T) {
	dir := t.TempDir()
	reg, _ := testRegistry(t)

	s1 := New(Config{}, reg)
	t.Cleanup(func() { s1.Close() })
	rec := attach(t, s1, dir, journal.Options{})
	if rec.Epoch != 1 || rec.Requeued != 0 || rec.Restored != 0 {
		t.Fatalf("fresh journal recovery = %+v", rec)
	}
	conn := pipeConn(t, s1)
	typ, rp := call(t, conn, protocol.MsgSubmit, submitPayload(11, encodeCall(t, reg, "double_it", int64(2), []float64{3, 4}, nil)))
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("submit → %v", typ)
	}
	sr, err := protocol.DecodeSubmitReply(rp)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		st := s1.Stats()
		return st.Running == 0 && st.Queued == 0
	}, "job done")

	// Crash: abandon s1 without Close — only what the journal persisted
	// survives into the next incarnation.
	s2 := New(Config{}, reg)
	t.Cleanup(func() { s2.Close() })
	rec = attach(t, s2, dir, journal.Options{})
	if rec.Epoch != 2 {
		t.Errorf("epoch = %d, want 2", rec.Epoch)
	}
	if rec.Restored != 1 || rec.Requeued != 0 || rec.Dropped != 0 {
		t.Fatalf("recovery = %+v, want exactly one restored job", rec)
	}
	if got := s2.Stats().TotalCalls; got != 0 {
		t.Fatalf("restored job re-executed: TotalCalls = %d", got)
	}

	conn2 := pipeConn(t, s2)
	fr := protocol.FetchRequest{JobID: sr.JobID, Wait: true}
	typ, rp = call(t, conn2, protocol.MsgFetch, fr.Encode())
	if typ != protocol.MsgFetchOK {
		t.Fatalf("fetch after restart → %v", typ)
	}
	info := reg.Lookup("double_it").Info
	vals := []idl.Value{int64(2), []float64{3, 4}, nil}
	_, out, err := protocol.DecodeCallReplyBulk(info, vals, rp, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := out[2].([]float64)
	if len(w) != 2 || w[0] != 6 || w[1] != 8 {
		t.Fatalf("restored result = %v, want [6 8]", w)
	}
}

// TestJournalRequeuesUnfinished proves a job that was queued or running
// at the crash is re-executed by the restarted server and remains
// fetchable under its original ID and idempotency key.
func TestJournalRequeuesUnfinished(t *testing.T) {
	dir := t.TempDir()
	reg1, _ := testRegistry(t) // release never closed: job stuck running
	s1 := New(Config{}, reg1)
	t.Cleanup(func() { s1.Close() })
	attach(t, s1, dir, journal.Options{})
	conn := pipeConn(t, s1)
	typ, rp := call(t, conn, protocol.MsgSubmit, submitPayload(22, encodeCall(t, reg1, "block", int64(1))))
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("submit → %v", typ)
	}
	sr, err := protocol.DecodeSubmitReply(rp)
	if err != nil {
		t.Fatal(err)
	}

	// Crash while the job runs; restart with a registry whose release
	// channel this test controls.
	reg2, release2 := testRegistry(t)
	s2 := New(Config{}, reg2)
	t.Cleanup(func() { s2.Close() })
	rec := attach(t, s2, dir, journal.Options{})
	if rec.Requeued != 1 || rec.Restored != 0 || rec.Dropped != 0 {
		t.Fatalf("recovery = %+v, want exactly one requeued job", rec)
	}

	// The original idempotency key is pinned to the replayed job: a
	// client retrying its submit across the crash re-attaches instead of
	// executing a second copy.
	typ, rp = call(t, pipeConn(t, s2), protocol.MsgSubmit, submitPayload(22, encodeCall(t, reg2, "block", int64(1))))
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("re-submit → %v", typ)
	}
	sr2, err := protocol.DecodeSubmitReply(rp)
	if err != nil {
		t.Fatal(err)
	}
	if sr2.JobID != sr.JobID {
		t.Fatalf("re-submit under journaled key admitted job %d, want %d", sr2.JobID, sr.JobID)
	}

	close(release2)
	fr := protocol.FetchRequest{JobID: sr.JobID, Wait: true}
	typ, _ = call(t, pipeConn(t, s2), protocol.MsgFetch, fr.Encode())
	if typ != protocol.MsgFetchOK {
		t.Fatalf("fetch of requeued job → %v", typ)
	}
}

// TestJournalRestoresTerminalError proves a job that failed before the
// crash reports the same terminal error after restart instead of
// re-executing or vanishing.
func TestJournalRestoresTerminalError(t *testing.T) {
	dir := t.TempDir()
	reg, _ := testRegistry(t)
	s1 := New(Config{}, reg)
	t.Cleanup(func() { s1.Close() })
	attach(t, s1, dir, journal.Options{})
	conn := pipeConn(t, s1)
	typ, rp := call(t, conn, protocol.MsgSubmit, submitPayload(33, encodeCall(t, reg, "boom", int64(1))))
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("submit → %v", typ)
	}
	sr, err := protocol.DecodeSubmitReply(rp)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		st := s1.Stats()
		return st.Running == 0 && st.Queued == 0
	}, "job failed")

	s2 := New(Config{}, reg)
	t.Cleanup(func() { s2.Close() })
	rec := attach(t, s2, dir, journal.Options{})
	if rec.Restored != 1 {
		t.Fatalf("recovery = %+v, want the failed job restored", rec)
	}
	fr := protocol.FetchRequest{JobID: sr.JobID, Wait: true}
	typ, rp = call(t, pipeConn(t, s2), protocol.MsgFetch, fr.Encode())
	if typ != protocol.MsgError {
		t.Fatalf("fetch of failed job → %v, want the journaled error", typ)
	}
	er, err := protocol.DecodeErrorReply(rp)
	if err != nil {
		t.Fatal(err)
	}
	if er.Code != protocol.CodeExecFailed {
		t.Errorf("code = %d, want exec-failed", er.Code)
	}
}

// TestJournalOversizedResultReexecutes proves a result above the
// journal's inline cap is recorded completed-without-payload and the
// replayed job re-executes rather than serving a truncated reply.
func TestJournalOversizedResultReexecutes(t *testing.T) {
	dir := t.TempDir()
	reg, _ := testRegistry(t)
	s1 := New(Config{}, reg)
	t.Cleanup(func() { s1.Close() })
	attach(t, s1, dir, journal.Options{ResultCap: 16}) // reply is ~10 doubles + framing, far over 16 bytes
	conn := pipeConn(t, s1)
	in := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	typ, rp := call(t, conn, protocol.MsgSubmit, submitPayload(44, encodeCall(t, reg, "double_it", int64(10), in, nil)))
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("submit → %v", typ)
	}
	sr, err := protocol.DecodeSubmitReply(rp)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		st := s1.Stats()
		return st.Running == 0 && st.Queued == 0
	}, "job done")

	s2 := New(Config{}, reg)
	t.Cleanup(func() { s2.Close() })
	rec := attach(t, s2, dir, journal.Options{ResultCap: 16})
	if rec.Requeued != 1 || rec.Restored != 0 {
		t.Fatalf("recovery = %+v, want the oversized job requeued for re-execution", rec)
	}
	fr := protocol.FetchRequest{JobID: sr.JobID, Wait: true}
	typ, rp = call(t, pipeConn(t, s2), protocol.MsgFetch, fr.Encode())
	if typ != protocol.MsgFetchOK {
		t.Fatalf("fetch of re-executed job → %v", typ)
	}
	info := reg.Lookup("double_it").Info
	vals := []idl.Value{int64(10), in, nil}
	_, out, err := protocol.DecodeCallReplyBulk(info, vals, rp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w := out[2].([]float64); w[9] != 20 {
		t.Fatalf("re-executed result tail = %v, want 20", w[9])
	}
}

// TestJournalJobIDsNotReusedAcrossRestart pins incarnation-scoped job
// IDs. A delivered job's records compact away (and under interval
// fsync the newest acknowledged submits may never hit disk), so a
// counter reseeded from the journal's survivors alone could re-mint an
// ID already issued before the crash — and a pre-crash client's
// retried Fetch on that ID would silently read another job's result.
// The restarted server must instead answer CodeUnknownJob.
func TestJournalJobIDsNotReusedAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	reg, _ := testRegistry(t)
	s1 := New(Config{}, reg)
	t.Cleanup(func() { s1.Close() })
	attach(t, s1, dir, journal.Options{})
	conn := pipeConn(t, s1)
	typ, rp := call(t, conn, protocol.MsgSubmit, submitPayload(11, encodeCall(t, reg, "double_it", int64(1), []float64{1}, nil)))
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("submit → %v", typ)
	}
	sr1, err := protocol.DecodeSubmitReply(rp)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver the result: the fetched record makes the whole job compact
	// away, leaving the journal with no trace the ID was ever issued.
	fr := protocol.FetchRequest{JobID: sr1.JobID, Wait: true}
	if typ, _ = call(t, conn, protocol.MsgFetch, fr.Encode()); typ != protocol.MsgFetchOK {
		t.Fatalf("fetch → %v", typ)
	}
	// The fetched record is appended after the reply frame is written;
	// it has hit the log (FsyncAlways, under mu with the delivery mark)
	// once the job reads as delivered.
	waitFor(t, func() bool {
		s1.mu.Lock()
		jt := s1.jobs[sr1.JobID]
		delivered := jt != nil && jt.delivered
		s1.mu.Unlock()
		return delivered
	}, "fetched record journaled")

	// Crash and restart from the (now job-free) journal.
	s2 := New(Config{}, reg)
	t.Cleanup(func() { s2.Close() })
	rec := attach(t, s2, dir, journal.Options{})
	if rec.Restored != 0 || rec.Requeued != 0 {
		t.Fatalf("recovery = %+v, want empty (job was delivered)", rec)
	}

	conn2 := pipeConn(t, s2)
	typ, rp = call(t, conn2, protocol.MsgSubmit, submitPayload(22, encodeCall(t, reg, "double_it", int64(1), []float64{2}, nil)))
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("submit after restart → %v", typ)
	}
	sr2, err := protocol.DecodeSubmitReply(rp)
	if err != nil {
		t.Fatal(err)
	}
	if sr2.JobID == sr1.JobID {
		t.Fatalf("restarted server re-minted pre-crash job ID %d", sr1.JobID)
	}
	if got, want := sr2.JobID>>jobIDEpochShift, rec.Epoch; got != want {
		t.Fatalf("new job ID %d carries epoch %d, want %d", sr2.JobID, got, want)
	}

	// The pre-crash client's stale fetch must terminate, not alias onto
	// the new incarnation's job.
	stale := protocol.FetchRequest{JobID: sr1.JobID, Wait: false}
	typ, rp = call(t, conn2, protocol.MsgFetch, stale.Encode())
	if typ != protocol.MsgError {
		t.Fatalf("stale fetch → %v, want an error", typ)
	}
	if er, _ := protocol.DecodeErrorReply(rp); er.Code != protocol.CodeUnknownJob {
		t.Errorf("stale fetch code = %d, want unknown job", er.Code)
	}
}

// TestJournalEpochVisible proves the minted epoch reaches the two
// places clients and the metaserver read it: Stats and the hello reply.
func TestJournalEpochVisible(t *testing.T) {
	dir := t.TempDir()
	reg, _ := testRegistry(t)
	s := New(Config{}, reg)
	t.Cleanup(func() { s.Close() })
	if got := s.Stats().Epoch; got != 0 {
		t.Fatalf("journal-less Stats.Epoch = %d, want 0", got)
	}
	attach(t, s, dir, journal.Options{})
	if got := s.Epoch(); got != 1 {
		t.Fatalf("Epoch() = %d, want 1", got)
	}
	if got := s.Stats().Epoch; got != 1 {
		t.Fatalf("Stats.Epoch = %d, want 1", got)
	}
	conn := pipeConn(t, s)
	hreq := protocol.HelloRequest{MaxVersion: protocol.MuxVersionCache}
	typ, rp := call(t, conn, protocol.MsgHello, hreq.Encode())
	if typ != protocol.MsgHelloOK {
		t.Fatalf("hello → %v", typ)
	}
	hr, err := protocol.DecodeHelloReply(rp)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Epoch != 1 {
		t.Fatalf("hello Epoch = %d, want 1", hr.Epoch)
	}
}

// TestAttachJournalGuards pins the misuse errors: double attach, attach
// after work was admitted, attach after close.
func TestAttachJournalGuards(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{}, reg)
	t.Cleanup(func() { s.Close() })
	attach(t, s, t.TempDir(), journal.Options{})
	if _, err := s.AttachJournal(t.TempDir(), journal.Options{}); err == nil {
		t.Fatal("second AttachJournal succeeded")
	}

	s2 := New(Config{}, reg)
	t.Cleanup(func() { s2.Close() })
	conn := pipeConn(t, s2)
	if typ, _ := call(t, conn, protocol.MsgSubmit, submitPayload(5, encodeCall(t, reg, "double_it", int64(1), []float64{1}, nil))); typ != protocol.MsgSubmitOK {
		t.Fatalf("submit → %v", typ)
	}
	if _, err := s2.AttachJournal(t.TempDir(), journal.Options{}); err == nil {
		t.Fatal("AttachJournal after admitting work succeeded")
	}

	s3 := New(Config{}, reg)
	s3.Close()
	if _, err := s3.AttachJournal(t.TempDir(), journal.Options{}); err == nil {
		t.Fatal("AttachJournal on closed server succeeded")
	}
}

// TestJournalLessUnchanged pins the bit-identical contract: without
// AttachJournal the server writes no files and advertises no epoch.
func TestJournalLessUnchanged(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{}, reg)
	t.Cleanup(func() { s.Close() })
	conn := pipeConn(t, s)
	typ, rp := call(t, conn, protocol.MsgSubmit, submitPayload(66, encodeCall(t, reg, "double_it", int64(1), []float64{1}, nil)))
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("submit → %v", typ)
	}
	sr, err := protocol.DecodeSubmitReply(rp)
	if err != nil {
		t.Fatal(err)
	}
	fr := protocol.FetchRequest{JobID: sr.JobID, Wait: true}
	if typ, _ = call(t, conn, protocol.MsgFetch, fr.Encode()); typ != protocol.MsgFetchOK {
		t.Fatalf("fetch → %v", typ)
	}
	// Hello carries no epoch trailer: the reply payload is the plain
	// version word (plus a flags word only when flags are set).
	hreq := protocol.HelloRequest{MaxVersion: protocol.MuxVersionCache}
	typ, rp = call(t, conn, protocol.MsgHello, hreq.Encode())
	if typ != protocol.MsgHelloOK {
		t.Fatalf("hello → %v", typ)
	}
	if len(rp) > 8 {
		t.Fatalf("journal-less hello reply is %d bytes — epoch trailer leaked onto the wire", len(rp))
	}
	if s.Stats().Epoch != 0 || s.Epoch() != 0 {
		t.Fatal("journal-less server advertises an epoch")
	}
}
