package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"ninf/internal/idl"
	"ninf/internal/protocol"
)

// encodeCallDeadline is encodeCall with the caller's absolute deadline
// attached to the request.
func encodeCallDeadline(t *testing.T, reg *Registry, deadline int64, name string, args ...idl.Value) []byte {
	t.Helper()
	ex := reg.Lookup(name)
	if ex == nil {
		t.Fatalf("no routine %q", name)
	}
	p, err := protocol.EncodeCallRequest(ex.Info, &protocol.CallRequest{Name: name, Args: args, Deadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// expectOverloaded asserts a MsgError reply with CodeOverloaded and
// returns the decoded reply so callers can inspect the hint.
func expectOverloaded(t *testing.T, typ protocol.MsgType, payload []byte) protocol.ErrorReply {
	t.Helper()
	if typ != protocol.MsgError {
		t.Fatalf("reply = %v, want MsgError", typ)
	}
	er, err := protocol.DecodeErrorReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	if er.Code != protocol.CodeOverloaded {
		t.Fatalf("code = %d (%s), want CodeOverloaded", er.Code, er.Detail)
	}
	return er
}

func TestAdmitRejectsExpiredDeadline(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{PEs: 1}, reg)
	defer s.Close()
	conn := pipeConn(t, s)

	past := time.Now().Add(-time.Second).UnixNano()
	typ, p := call(t, conn, protocol.MsgCall,
		encodeCallDeadline(t, reg, past, "double_it", int64(1), []float64{1}, nil))
	er := expectOverloaded(t, typ, p)
	if er.RetryAfterMillis == 0 {
		t.Error("expired-deadline rejection carries no retry-after hint")
	}
	if got := s.Overload().RejectedDeadline; got != 1 {
		t.Errorf("RejectedDeadline = %d, want 1", got)
	}
}

func TestAdmitRejectsUnmeetableDeadline(t *testing.T) {
	reg, release := testRegistry(t)
	s := New(Config{PEs: 1}, reg)
	defer s.Close()
	defer close(release)
	conn := pipeConn(t, s)

	// Occupy the PE and queue one job so a queue wait exists, then
	// plant a long observed service time: a deadline shorter than the
	// estimated wait must be refused at admission, not executed late.
	call(t, conn, protocol.MsgSubmit, submitPayload(1, encodeCall(t, reg, "block", int64(0))))
	call(t, conn, protocol.MsgSubmit, submitPayload(2, encodeCall(t, reg, "block", int64(0))))
	s.mu.Lock()
	s.svcNanos = float64(time.Second)
	s.mu.Unlock()

	soon := time.Now().Add(50 * time.Millisecond).UnixNano()
	typ, p := call(t, conn, protocol.MsgCall,
		encodeCallDeadline(t, reg, soon, "double_it", int64(1), []float64{1}, nil))
	er := expectOverloaded(t, typ, p)
	if !strings.Contains(er.Detail, "unmeetable") {
		t.Errorf("detail = %q", er.Detail)
	}
	if er.RetryAfterMillis == 0 {
		t.Error("unmeetable-deadline rejection carries no retry-after hint")
	}

	// A deadline the queue can meet is still admitted.
	late := time.Now().Add(time.Hour).UnixNano()
	typ, _ = call(t, conn, protocol.MsgSubmit,
		submitPayload(3, encodeCallDeadline(t, reg, late, "double_it", int64(1), []float64{1}, nil)))
	if typ != protocol.MsgSubmitOK {
		t.Errorf("loose-deadline submit = %v, want MsgSubmitOK", typ)
	}
	release <- struct{}{}
	release <- struct{}{}
}

func TestShedsExpiredAtDispatch(t *testing.T) {
	reg, release := testRegistry(t)
	s := New(Config{PEs: 1}, reg)
	defer s.Close()
	conn := pipeConn(t, s)

	// Job 1 holds the PE; job 2 is queued with a deadline that expires
	// while it waits. When the PE frees, job 2 must be shed — failed
	// with CodeOverloaded — not executed as dead work.
	call(t, conn, protocol.MsgSubmit, submitPayload(1, encodeCall(t, reg, "block", int64(0))))
	deadline := time.Now().Add(30 * time.Millisecond).UnixNano()
	typ, p := call(t, conn, protocol.MsgSubmit,
		submitPayload(2, encodeCallDeadline(t, reg, deadline, "double_it", int64(1), []float64{1}, nil)))
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("submit = %v", typ)
	}
	rep, err := protocol.DecodeSubmitReply(p)
	if err != nil {
		t.Fatal(err)
	}

	time.Sleep(60 * time.Millisecond) // let the deadline lapse in queue
	release <- struct{}{}             // free the PE

	fr := protocol.FetchRequest{JobID: rep.JobID, Wait: true}
	typ, p = call(t, conn, protocol.MsgFetch, fr.Encode())
	er := expectOverloaded(t, typ, p)
	if !strings.Contains(er.Detail, "shed") {
		t.Errorf("detail = %q", er.Detail)
	}
	if er.RetryAfterMillis == 0 {
		t.Error("shed reply carries no retry-after hint")
	}
	if got := s.Overload().ShedExpired; got != 1 {
		t.Errorf("ShedExpired = %d, want 1", got)
	}
}

func TestPerClientQueueShare(t *testing.T) {
	reg, release := testRegistry(t)
	s := New(Config{PEs: 1, MaxQueue: 10, MaxPerClient: 2}, reg)
	defer s.Close()
	defer close(release)
	greedy := pipeConn(t, s)
	other := pipeConn(t, s)

	// The greedy connection's first submit runs; two more fill its
	// queue share; the fourth must be rejected even though MaxQueue has
	// plenty of room — and the other client must still get in.
	for key := uint64(1); key <= 3; key++ {
		typ, _ := call(t, greedy, protocol.MsgSubmit, submitPayload(key, encodeCall(t, reg, "block", int64(0))))
		if typ != protocol.MsgSubmitOK {
			t.Fatalf("submit %d = %v", key, typ)
		}
	}
	typ, p := call(t, greedy, protocol.MsgSubmit, submitPayload(4, encodeCall(t, reg, "block", int64(0))))
	er := expectOverloaded(t, typ, p)
	if !strings.Contains(er.Detail, "per-client") {
		t.Errorf("detail = %q", er.Detail)
	}
	if got := s.Overload().RejectedClient; got != 1 {
		t.Errorf("RejectedClient = %d, want 1", got)
	}

	typ, _ = call(t, other, protocol.MsgSubmit, submitPayload(5, encodeCall(t, reg, "block", int64(0))))
	if typ != protocol.MsgSubmitOK {
		t.Errorf("other client's submit = %v, want MsgSubmitOK", typ)
	}

	for i := 0; i < 4; i++ {
		release <- struct{}{}
	}
}

func TestMaxQueueRejectCarriesHint(t *testing.T) {
	reg, release := testRegistry(t)
	s := New(Config{PEs: 1, MaxQueue: 1, MaxPerClient: -1}, reg)
	defer s.Close()
	defer close(release)
	conn := pipeConn(t, s)

	call(t, conn, protocol.MsgSubmit, submitPayload(1, encodeCall(t, reg, "block", int64(0))))
	call(t, conn, protocol.MsgSubmit, submitPayload(2, encodeCall(t, reg, "block", int64(0))))
	typ, p := call(t, conn, protocol.MsgSubmit, submitPayload(3, encodeCall(t, reg, "block", int64(0))))
	er := expectOverloaded(t, typ, p)
	if er.RetryAfterMillis == 0 {
		t.Error("queue-full rejection carries no retry-after hint")
	}
	if got := s.Overload().RejectedQueue; got != 1 {
		t.Errorf("RejectedQueue = %d, want 1", got)
	}
	release <- struct{}{}
	release <- struct{}{}
}

func TestDrainFinishesWorkRejectsNew(t *testing.T) {
	reg, release := testRegistry(t)
	s := New(Config{PEs: 1}, reg)
	conn := pipeConn(t, s)
	late := pipeConn(t, s)

	// One job running, one queued; then drain.
	call(t, conn, protocol.MsgSubmit, submitPayload(1, encodeCall(t, reg, "block", int64(0))))
	typ, p := call(t, conn, protocol.MsgSubmit,
		submitPayload(2, encodeCall(t, reg, "double_it", int64(1), []float64{21}, nil)))
	if typ != protocol.MsgSubmitOK {
		t.Fatalf("submit = %v", typ)
	}
	rep, err := protocol.DecodeSubmitReply(p)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(ctx) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	if !s.Stats().Draining {
		t.Error("Stats().Draining = false during drain")
	}

	// New work is refused with a steer-elsewhere hint...
	typ, p = call(t, late, protocol.MsgSubmit, submitPayload(9, encodeCall(t, reg, "block", int64(0))))
	er := expectOverloaded(t, typ, p)
	if !strings.Contains(er.Detail, "draining") || er.RetryAfterMillis == 0 {
		t.Errorf("draining rejection = %+v", er)
	}
	if got := s.Overload().RejectedDraining; got != 1 {
		t.Errorf("RejectedDraining = %d, want 1", got)
	}

	// ...but accepted work still completes and its result is
	// fetchable while the drain is in progress.
	fetched := make(chan []float64, 1)
	go func() {
		fr := protocol.FetchRequest{JobID: rep.JobID, Wait: true}
		typ, p, err := callNB(conn, protocol.MsgFetch, fr.Encode())
		if err != nil || typ != protocol.MsgFetchOK {
			fetched <- nil
			return
		}
		info := reg.Lookup("double_it").Info
		_, out, err := protocol.DecodeCallReply(info, []idl.Value{int64(1), []float64{21}, nil}, p)
		if err != nil {
			fetched <- nil
			return
		}
		fetched <- out[2].([]float64)
	}()

	release <- struct{}{} // let the running job finish
	if got := <-fetched; len(got) != 1 || got[0] != 42 {
		t.Errorf("fetched result = %v, want [42]", got)
	}
	if err := <-drained; err != nil {
		t.Errorf("Drain = %v", err)
	}
}

func TestDrainTimeoutForcesClose(t *testing.T) {
	reg, release := testRegistry(t)
	s := New(Config{PEs: 1}, reg)
	defer close(release)
	conn := pipeConn(t, s)

	// A job that never finishes: the bounded drain must give up with
	// the context's error and hard-close rather than hang forever.
	call(t, conn, protocol.MsgSubmit, submitPayload(1, encodeCall(t, reg, "block", int64(0))))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Errorf("Drain = %v, want context.DeadlineExceeded", err)
	}
}

func TestDisableSheddingAdmitsExpired(t *testing.T) {
	reg, _ := testRegistry(t)
	s := New(Config{PEs: 1, DisableShedding: true}, reg)
	defer s.Close()
	conn := pipeConn(t, s)

	// With shedding disabled an expired deadline is ignored — the
	// pre-overload-control behaviour the A/B experiment compares.
	past := time.Now().Add(-time.Second).UnixNano()
	typ, _ := call(t, conn, protocol.MsgCall,
		encodeCallDeadline(t, reg, past, "double_it", int64(1), []float64{1}, nil))
	if typ != protocol.MsgCallOK {
		t.Errorf("reply = %v, want MsgCallOK", typ)
	}
	if got := s.Overload().RejectedDeadline; got != 0 {
		t.Errorf("RejectedDeadline = %d, want 0", got)
	}
}
