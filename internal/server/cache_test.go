package server

import (
	"encoding/binary"
	"sync"
	"testing"

	"ninf/internal/protocol"
)

// fill returns n bytes of deterministic content seeded by tag.
func fill(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag ^ byte(i*131)
	}
	return b
}

// TestCacheShortKeyCollision forges two digests sharing the short
// bucket key (Digest.Lo) with different full digests: the bucket scan
// must discriminate on the full 128 bits, so a collision costs a scan,
// never a wrong payload.
func TestCacheShortKeyCollision(t *testing.T) {
	c := newArgCache(1 << 20)
	d1 := protocol.Digest{Hi: 0x1111, Lo: 0xc011151071}
	d2 := protocol.Digest{Hi: 0x2222, Lo: 0xc011151071}
	b1 := fill(1, 512)
	b2 := fill(2, 512)
	c.insert(d1, b1)
	c.insert(d2, b2)

	if !c.contains(d1) || !c.contains(d2) {
		t.Fatal("colliding entries not both resident")
	}
	got1, e1 := c.resolvePin(d1)
	got2, e2 := c.resolvePin(d2)
	if e1 == nil || e2 == nil {
		t.Fatal("resolvePin missed a resident colliding entry")
	}
	if &got1[0] != &b1[0] || &got2[0] != &b2[0] {
		t.Fatal("short-key collision resolved to the wrong payload")
	}
	// A third digest in the same bucket that was never inserted must
	// miss, not match a neighbor.
	d3 := protocol.Digest{Hi: 0x3333, Lo: 0xc011151071}
	if b, _ := c.resolvePin(d3); b != nil {
		t.Fatal("uninserted digest resolved via its colliding bucket")
	}
	c.unpin(e1)
	c.unpin(e2)

	// Eviction inside a shared bucket removes exactly the victim.
	small := newArgCache(768)
	small.insert(d1, b1)
	small.insert(d2, b2) // evicts d1 (LRU), same bucket
	if small.contains(d1) {
		t.Fatal("LRU entry survived an over-budget insert")
	}
	if !small.contains(d2) {
		t.Fatal("bucket swap-remove dropped the wrong colliding entry")
	}
}

// TestCachePinBlocksEviction: a pinned entry must survive any insert
// pressure; once unpinned it is evictable again.
func TestCachePinBlocksEviction(t *testing.T) {
	c := newArgCache(2048)
	d := protocol.Digest{Hi: 7, Lo: 7}
	c.insert(d, fill(7, 1024))
	b, e := c.resolvePin(d)
	if e == nil {
		t.Fatal("resolvePin missed fresh entry")
	}
	// Budget pressure: each insert needs the pinned entry's bytes gone,
	// but eviction must skip it and give up.
	for i := 0; i < 8; i++ {
		dx := protocol.Digest{Hi: 100 + uint64(i), Lo: 100 + uint64(i)}
		c.insert(dx, fill(byte(i), 2048))
	}
	if !c.contains(d) {
		t.Fatal("pinned entry evicted under budget pressure")
	}
	if b[0] != fill(7, 1)[0] {
		t.Fatal("pinned bytes corrupted")
	}
	st := c.stats()
	if st.PinnedBytes != 1024 {
		t.Fatalf("PinnedBytes = %d, want 1024", st.PinnedBytes)
	}
	c.unpin(e)
	if st := c.stats(); st.PinnedBytes != 0 {
		t.Fatalf("PinnedBytes after unpin = %d, want 0", st.PinnedBytes)
	}
	// Unpinned, the entry is ordinary LRU prey.
	c.insert(protocol.Digest{Hi: 999, Lo: 999}, fill(9, 2048))
	if c.contains(d) {
		t.Fatal("unpinned LRU entry survived an insert that needed its bytes")
	}
}

// TestCachePinEvictRace hammers one entry with concurrent
// pin/verify/unpin loops while writers churn the rest of the budget,
// so eviction constantly wants the pinned bytes. Run under -race this
// doubles as the locking proof; in any mode it asserts a resolved pin
// always reads the entry's own bytes and the accounting lands at zero.
func TestCachePinEvictRace(t *testing.T) {
	const (
		entrySize = 4096
		pinners   = 4
		writers   = 2
		rounds    = 400
	)
	c := newArgCache(4 * entrySize)
	hot := fill(0xAB, entrySize)
	hotDig := protocol.DigestBytesLE(hot)

	var wg sync.WaitGroup
	for p := 0; p < pinners; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				b, e := c.resolvePin(hotDig)
				if e == nil {
					// Evicted while unpinned — legal; restore and go on.
					c.insert(hotDig, hot)
					continue
				}
				if len(b) != entrySize || b[1] != hot[1] || b[entrySize-1] != hot[entrySize-1] {
					t.Error("pinned read observed foreign bytes")
					c.unpin(e)
					return
				}
				c.unpin(e)
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := make([]byte, entrySize)
			for i := 0; i < rounds; i++ {
				binary.LittleEndian.PutUint64(b, uint64(w*rounds+i))
				cp := make([]byte, entrySize)
				copy(cp, b)
				c.retainLE(cp)
			}
		}(w)
	}
	wg.Wait()

	st := c.stats()
	if st.PinnedBytes != 0 {
		t.Fatalf("PinnedBytes after quiescence = %d, want 0", st.PinnedBytes)
	}
	if st.UsedBytes < 0 || st.UsedBytes > st.Budget {
		t.Fatalf("UsedBytes = %d outside [0, budget %d]", st.UsedBytes, st.Budget)
	}
	if st.Hits == 0 || st.Evictions == 0 {
		t.Fatalf("vacuous run: hits = %d, evictions = %d", st.Hits, st.Evictions)
	}
}

// TestCacheInsertRefusesOversize: a value larger than the whole budget
// must not wipe the working set trying to fit.
func TestCacheInsertRefusesOversize(t *testing.T) {
	c := newArgCache(1024)
	d := protocol.Digest{Hi: 1, Lo: 1}
	c.insert(d, fill(1, 512))
	c.insert(protocol.Digest{Hi: 2, Lo: 2}, fill(2, 4096))
	if !c.contains(d) {
		t.Fatal("oversize insert evicted the working set")
	}
	if st := c.stats(); st.UsedBytes != 512 {
		t.Fatalf("UsedBytes = %d, want 512", st.UsedBytes)
	}
}
