// Package sched provides the job-selection policies discussed in the
// paper for the Ninf computational server: the deployed
// First-Come-First-Served discipline (§5.2), Shortest-Job-First based
// on IDL-declared complexity (§5.2), and the Fit-Processors variants
// for multi-PE servers (§5.3, citing Aida et al.).
//
// A policy inspects the queue of waiting jobs and the number of free
// processors and names the job to dispatch next. Policies are pure
// selection rules: the server owns the queue, the processors, and all
// locking.
package sched

import "fmt"

// A Job is the scheduler-visible description of one queued Ninf_call.
type Job struct {
	// ID is the server-assigned job identity, used in logs.
	ID uint64
	// Seq is the arrival order (monotone); FCFS and tie-breaks use it.
	Seq uint64
	// PEs is the number of processors the job will occupy: 1 under
	// task-parallel execution, all of them under data-parallel.
	PEs int
	// PredictedOps is the operation count from the routine's IDL
	// Complexity clause, or 0 when the IDL declares none. SJF falls
	// back to FCFS ordering among jobs without predictions.
	PredictedOps int64
}

// A Policy selects the next job to dispatch. queue is in arrival order;
// freePEs is the number of idle processors. It returns the index of the
// job to start, or -1 to leave everything queued.
type Policy interface {
	Next(queue []*Job, freePEs int) int
	Name() string
}

// New returns the named policy: "fcfs", "sjf", "fpfs" or "fpmpfs".
func New(name string) (Policy, error) {
	switch name {
	case "fcfs":
		return FCFS{}, nil
	case "sjf":
		return SJF{}, nil
	case "fpfs":
		return FPFS{}, nil
	case "fpmpfs":
		return FPMPFS{}, nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q", name)
	}
}

// FCFS dispatches strictly in arrival order; if the head job does not
// fit in the free processors nothing runs (head-of-line blocking).
// This is the behaviour of the current Ninf server, which "merely
// fork&execs a Ninf executable in a FCFS manner" (§5.2).
type FCFS struct{}

// Next implements Policy.
func (FCFS) Next(queue []*Job, freePEs int) int {
	if len(queue) == 0 || queue[0].PEs > freePEs {
		return -1
	}
	return 0
}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// SJF dispatches the fitting job with the smallest predicted operation
// count, using the IDL Complexity clause as the predictor (§5.2). Jobs
// without predictions sort after predicted ones; ties break by arrival.
type SJF struct{}

// Next implements Policy.
func (SJF) Next(queue []*Job, freePEs int) int {
	best := -1
	for i, j := range queue {
		if j.PEs > freePEs {
			continue
		}
		if best == -1 || lessSJF(j, queue[best]) {
			best = i
		}
	}
	return best
}

func lessSJF(a, b *Job) bool {
	ka, kb := a.PredictedOps, b.PredictedOps
	// Unpredicted jobs (0) are treated as longest.
	switch {
	case ka == 0 && kb == 0:
		return a.Seq < b.Seq
	case ka == 0:
		return false
	case kb == 0:
		return true
	case ka != kb:
		return ka < kb
	default:
		return a.Seq < b.Seq
	}
}

// Name implements Policy.
func (SJF) Name() string { return "sjf" }

// FPFS (Fit Processors First Served) dispatches the earliest job that
// fits in the free processors, skipping over a blocked head (§5.3).
type FPFS struct{}

// Next implements Policy.
func (FPFS) Next(queue []*Job, freePEs int) int {
	for i, j := range queue {
		if j.PEs <= freePEs {
			return i
		}
	}
	return -1
}

// Name implements Policy.
func (FPFS) Name() string { return "fpfs" }

// FPMPFS (Fit Processors Most Processors First Served) dispatches,
// among fitting jobs, the one requesting the most processors; ties
// break by arrival (§5.3). It packs wide jobs first to reduce idle PEs.
type FPMPFS struct{}

// Next implements Policy.
func (FPMPFS) Next(queue []*Job, freePEs int) int {
	best := -1
	for i, j := range queue {
		if j.PEs > freePEs {
			continue
		}
		if best == -1 || j.PEs > queue[best].PEs ||
			(j.PEs == queue[best].PEs && j.Seq < queue[best].Seq) {
			best = i
		}
	}
	return best
}

// Name implements Policy.
func (FPMPFS) Name() string { return "fpmpfs" }
