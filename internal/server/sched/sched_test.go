package sched

import (
	"math/rand"
	"testing"
)

func jobs(spec ...[3]int64) []*Job {
	out := make([]*Job, len(spec))
	for i, s := range spec {
		out[i] = &Job{ID: uint64(i), Seq: uint64(i), PEs: int(s[0]), PredictedOps: s[1]}
		_ = s[2]
	}
	return out
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"fcfs", "sjf", "fpfs", "fpmpfs"} {
		p, err := New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("Name() = %q, want %q", p.Name(), name)
		}
	}
	if _, err := New("lifo"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestFCFS(t *testing.T) {
	q := jobs([3]int64{4, 0, 0}, [3]int64{1, 0, 0})
	// Head needs 4 PEs; only 2 free → head-of-line blocking.
	if got := (FCFS{}).Next(q, 2); got != -1 {
		t.Errorf("blocked head: got %d", got)
	}
	if got := (FCFS{}).Next(q, 4); got != 0 {
		t.Errorf("fitting head: got %d", got)
	}
	if got := (FCFS{}).Next(nil, 4); got != -1 {
		t.Errorf("empty queue: got %d", got)
	}
}

func TestSJF(t *testing.T) {
	q := []*Job{
		{Seq: 0, PEs: 1, PredictedOps: 900},
		{Seq: 1, PEs: 1, PredictedOps: 100},
		{Seq: 2, PEs: 1, PredictedOps: 500},
	}
	if got := (SJF{}).Next(q, 1); got != 1 {
		t.Errorf("got %d, want 1 (smallest ops)", got)
	}
	// Unpredicted jobs go last.
	q = []*Job{
		{Seq: 0, PEs: 1, PredictedOps: 0},
		{Seq: 1, PEs: 1, PredictedOps: 100},
	}
	if got := (SJF{}).Next(q, 1); got != 1 {
		t.Errorf("got %d, want predicted job", got)
	}
	// All unpredicted → FCFS.
	q = []*Job{
		{Seq: 5, PEs: 1},
		{Seq: 6, PEs: 1},
	}
	if got := (SJF{}).Next(q, 1); got != 0 {
		t.Errorf("got %d, want arrival order", got)
	}
	// Too-wide jobs are skipped.
	q = []*Job{
		{Seq: 0, PEs: 4, PredictedOps: 1},
		{Seq: 1, PEs: 1, PredictedOps: 999},
	}
	if got := (SJF{}).Next(q, 2); got != 1 {
		t.Errorf("got %d, want fitting job", got)
	}
}

func TestFPFS(t *testing.T) {
	q := []*Job{
		{Seq: 0, PEs: 4},
		{Seq: 1, PEs: 2},
		{Seq: 2, PEs: 1},
	}
	if got := (FPFS{}).Next(q, 2); got != 1 {
		t.Errorf("got %d, want first fitting", got)
	}
	if got := (FPFS{}).Next(q, 1); got != 2 {
		t.Errorf("got %d", got)
	}
	if got := (FPFS{}).Next(q, 8); got != 0 {
		t.Errorf("got %d", got)
	}
	if got := (FPFS{}).Next(q, 0); got != -1 {
		t.Errorf("got %d", got)
	}
}

func TestFPMPFS(t *testing.T) {
	q := []*Job{
		{Seq: 0, PEs: 1},
		{Seq: 1, PEs: 3},
		{Seq: 2, PEs: 3},
		{Seq: 3, PEs: 8},
	}
	// 4 free → widest fitting is 3 PEs; earliest of the two is Seq 1.
	if got := (FPMPFS{}).Next(q, 4); got != 1 {
		t.Errorf("got %d, want widest-then-earliest", got)
	}
	if got := (FPMPFS{}).Next(q, 8); got != 3 {
		t.Errorf("got %d, want widest", got)
	}
	if got := (FPMPFS{}).Next(q, 0); got != -1 {
		t.Errorf("got %d", got)
	}
}

// TestPoliciesAlwaysPickFitting is a property: every policy either
// returns -1 or the index of a job that fits in the free processors.
func TestPoliciesAlwaysPickFitting(t *testing.T) {
	policies := []Policy{FCFS{}, SJF{}, FPFS{}, FPMPFS{}}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(8)
		q := make([]*Job, n)
		for i := range q {
			q[i] = &Job{
				Seq:          uint64(i),
				PEs:          1 + rng.Intn(8),
				PredictedOps: int64(rng.Intn(3)) * int64(rng.Intn(1000)),
			}
		}
		free := rng.Intn(10)
		for _, p := range policies {
			got := p.Next(q, free)
			if got == -1 {
				// Must be correct for FPFS/FPMPFS/SJF: no job fits.
				if p.Name() != "fcfs" {
					for _, j := range q {
						if j.PEs <= free {
							t.Fatalf("%s returned -1 with fitting job (free=%d, q=%v)", p.Name(), free, jobsPEs(q))
						}
					}
				}
				continue
			}
			if got < 0 || got >= len(q) {
				t.Fatalf("%s returned out-of-range %d", p.Name(), got)
			}
			if q[got].PEs > free {
				t.Fatalf("%s picked non-fitting job (%d PEs, %d free)", p.Name(), q[got].PEs, free)
			}
		}
	}
}

func jobsPEs(q []*Job) []int {
	out := make([]int, len(q))
	for i, j := range q {
		out[i] = j.PEs
	}
	return out
}
