package server

import (
	"sync"
	"time"
)

// A RoutineTrace is the per-routine execution history the server
// accumulates: §5.1 proposes exactly this ("IDL and server execution
// trace will give us effective information for predicting the
// communication transfer time versus computing time"). The metaserver
// and the SJF policy consume it; clients can fetch it with the Trace
// RPC.
type RoutineTrace struct {
	Name string
	// Count is the number of completed executions.
	Count int64
	// Failures counts executions that returned an error.
	Failures int64
	// MeanCompute is the mean wall-clock of the executable itself
	// (dequeue→complete).
	MeanCompute time.Duration
	// MeanWait is the mean queueing delay (enqueue→dequeue).
	MeanWait time.Duration
	// MeanBytes is the mean request payload size.
	MeanBytes int64
}

// tracer accumulates execution history per routine.
type tracer struct {
	mu sync.Mutex
	m  map[string]*traceAcc
}

type traceAcc struct {
	count, failures int64
	totalCompute    time.Duration
	totalWait       time.Duration
	totalBytes      int64
}

func newTracer() *tracer { return &tracer{m: make(map[string]*traceAcc)} }

// record folds one completed execution into the history.
func (tr *tracer) record(name string, wait, compute time.Duration, bytes int64, failed bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	acc, ok := tr.m[name]
	if !ok {
		acc = &traceAcc{}
		tr.m[name] = acc
	}
	acc.count++
	if failed {
		acc.failures++
	}
	acc.totalCompute += compute
	acc.totalWait += wait
	acc.totalBytes += bytes
}

// predictCompute returns the mean observed compute time of a routine,
// or 0 when there is no history yet. The SJF policy uses this as a
// fallback predictor for routines whose IDL declares no Complexity.
func (tr *tracer) predictCompute(name string) time.Duration {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	acc, ok := tr.m[name]
	if !ok || acc.count == 0 {
		return 0
	}
	return acc.totalCompute / time.Duration(acc.count)
}

// snapshot returns the history for every routine, sorted by name.
func (tr *tracer) snapshot() []RoutineTrace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]RoutineTrace, 0, len(tr.m))
	for name, acc := range tr.m {
		rt := RoutineTrace{
			Name:      name,
			Count:     acc.count,
			Failures:  acc.failures,
			MeanBytes: acc.totalBytes / acc.count,
		}
		rt.MeanCompute = acc.totalCompute / time.Duration(acc.count)
		rt.MeanWait = acc.totalWait / time.Duration(acc.count)
		out = append(out, rt)
	}
	sortTraces(out)
	return out
}

func sortTraces(ts []RoutineTrace) {
	// Insertion sort: the routine count is small and this avoids an
	// import for one call site.
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Name < ts[j-1].Name; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
