package linpack

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	// 2x2: [2 1; 1 3]·x = [3; 5] → x = [0.8, 1.4]
	a := []float64{2, 1, 1, 3}
	b := []float64{3, 5}
	x, err := Solve(a, 2, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.8) > 1e-12 || math.Abs(x[1]-1.4) > 1e-12 {
		t.Errorf("x = %v", x)
	}
}

func TestMatgenSolveAllOnes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 50, 100} {
		a := make([]float64, n*n)
		b := Matgen(a, n)
		x, err := Solve(a, n, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, v := range x {
			if math.Abs(v-1) > 1e-8 {
				t.Fatalf("n=%d: x[%d] = %g, want 1", n, i, v)
			}
		}
		if r := Residual(a, n, x, b); r > 10 {
			t.Errorf("n=%d: residual %g exceeds LINPACK threshold", n, r)
		}
	}
}

func TestBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 5, 47, 48, 49, 100, 130} {
		a := make([]float64, n*n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		a2 := append([]float64(nil), a...)
		ipvt1 := make([]int64, n)
		ipvt2 := make([]int64, n)
		if err := Dgefa(a, n, ipvt1); err != nil {
			t.Fatalf("n=%d Dgefa: %v", n, err)
		}
		if err := DgefaBlocked(a2, n, ipvt2, 16); err != nil {
			t.Fatalf("n=%d DgefaBlocked: %v", n, err)
		}
		for i := range ipvt1 {
			if ipvt1[i] != ipvt2[i] {
				t.Fatalf("n=%d: pivot %d differs: %d vs %d", n, i, ipvt1[i], ipvt2[i])
			}
		}
		for i := range a {
			if math.Abs(a[i]-a2[i]) > 1e-9*math.Max(1, math.Abs(a[i])) {
				t.Fatalf("n=%d: factor element %d differs: %g vs %g", n, i, a[i], a2[i])
			}
		}
	}
}

func TestBlockedSolve(t *testing.T) {
	n := 80
	a := make([]float64, n*n)
	b := Matgen(a, n)
	ac := append([]float64(nil), a...)
	ipvt := make([]int64, n)
	if err := DgefaBlocked(ac, n, ipvt, 0); err != nil { // 0 → DefaultBlock
		t.Fatal(err)
	}
	x := append([]float64(nil), b...)
	if err := Dgesl(ac, n, ipvt, x); err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, n, x, b); r > 10 {
		t.Errorf("residual %g", r)
	}
}

func TestSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4} // rank 1
	ipvt := make([]int64, 2)
	if err := Dgefa(a, 2, ipvt); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
	z := []float64{0}
	if err := Dgefa(z, 1, make([]int64, 1)); !errors.Is(err, ErrSingular) {
		t.Errorf("1x1 zero: err = %v", err)
	}
}

func TestArgumentValidation(t *testing.T) {
	if err := Dgefa(make([]float64, 5), 2, make([]int64, 2)); err == nil {
		t.Error("bad matrix length accepted")
	}
	if err := Dgefa(make([]float64, 4), 2, make([]int64, 1)); err == nil {
		t.Error("bad ipvt length accepted")
	}
	if err := Dgefa(nil, -1, nil); err == nil {
		t.Error("negative order accepted")
	}
	if err := Dgesl(make([]float64, 4), 2, make([]int64, 2), make([]float64, 1)); err == nil {
		t.Error("bad b length accepted")
	}
	if err := Dmmul(2, make([]float64, 4), make([]float64, 3), make([]float64, 4)); err == nil {
		t.Error("bad operand length accepted")
	}
	// Corrupt pivot vector must not panic.
	if err := Dgesl(make([]float64, 4), 2, []int64{99, 0}, make([]float64, 2)); err == nil {
		t.Error("out-of-range pivot accepted")
	}
}

func TestEmptySystem(t *testing.T) {
	if err := Dgefa(nil, 0, nil); err != nil {
		t.Errorf("n=0 Dgefa: %v", err)
	}
	if err := Dgesl(nil, 0, nil, nil); err != nil {
		t.Errorf("n=0 Dgesl: %v", err)
	}
}

func TestDmmulIdentity(t *testing.T) {
	n := 8
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	a := make([]float64, n*n)
	Matgen(a, n)
	c := make([]float64, n*n)
	if err := Dmmul(n, a, id, c); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if c[i] != a[i] {
			t.Fatalf("A·I ≠ A at %d", i)
		}
	}
	if err := Dmmul(n, id, a, c); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if c[i] != a[i] {
			t.Fatalf("I·A ≠ A at %d", i)
		}
	}
}

func TestDmmulAssociatesWithVector(t *testing.T) {
	// Property: (A·B)·x == A·(B·x) within roundoff, for random small
	// matrices — checks Dmmul against an independent mat-vec.
	matvec := func(n int, m, x []float64) []float64 {
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += m[i*n+j] * x[j]
			}
			y[i] = s
		}
		return y
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := make([]float64, n*n)
		b := make([]float64, n*n)
		x := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ab := make([]float64, n*n)
		if err := Dmmul(n, a, b, ab); err != nil {
			return false
		}
		lhs := matvec(n, ab, x)
		rhs := matvec(n, a, matvec(n, b, x))
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 1e-8*(1+math.Abs(rhs[i]))*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveProperty(t *testing.T) {
	// Property: for random well-conditioned A (diag-dominant), the
	// residual criterion holds for both factorizations.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		a := make([]float64, n*n)
		for i := range a {
			a[i] = rng.Float64() - 0.5
		}
		for i := 0; i < n; i++ {
			a[i*n+i] += float64(n) // diagonal dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, n, b)
		if err != nil {
			return false
		}
		return Residual(a, n, x, b) < 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFlopsAndCommBytes(t *testing.T) {
	if got, want := Flops(100), 2.0/3.0*1e6+2e4; got != want {
		t.Errorf("Flops(100) = %g, want %g", got, want)
	}
	if got, want := CommBytes(100), 8e4+2e3; got != want {
		t.Errorf("CommBytes(100) = %g, want %g", got, want)
	}
}

func BenchmarkDgefa(b *testing.B) {
	for _, n := range []int{100, 300, 600} {
		b.Run(sizeName(n), func(b *testing.B) {
			src := make([]float64, n*n)
			Matgen(src, n)
			a := make([]float64, n*n)
			ipvt := make([]int64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(a, src)
				if err := Dgefa(a, n, ipvt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(Flops(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mflops")
		})
	}
}

func BenchmarkDgefaBlocked(b *testing.B) {
	for _, n := range []int{100, 300, 600} {
		b.Run(sizeName(n), func(b *testing.B) {
			src := make([]float64, n*n)
			Matgen(src, n)
			a := make([]float64, n*n)
			ipvt := make([]int64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(a, src)
				if err := DgefaBlocked(a, n, ipvt, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(Flops(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mflops")
		})
	}
}

func sizeName(n int) string {
	return "n=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
