package linpack

import (
	"runtime"
	"testing"
)

// forceWorkers pins the kernel worker count and parallel threshold for
// the duration of a test, restoring the defaults afterwards.
func forceWorkers(t *testing.T, workers, threshold int) {
	t.Helper()
	SetKernelWorkers(workers)
	SetParallelThreshold(threshold)
	t.Cleanup(func() {
		SetKernelWorkers(0)
		SetParallelThreshold(0)
	})
}

func TestDmmulParallelBitIdentical(t *testing.T) {
	// The parallel row split must reproduce the serial product
	// bit-for-bit: each worker runs the same inner loops over its rows.
	n := 65 // odd size exercises uneven chunking
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	Matgen(a, n)
	copy(b, a)

	serial := make([]float64, n*n)
	forceWorkers(t, 1, 1)
	if err := Dmmul(n, a, b, serial); err != nil {
		t.Fatal(err)
	}

	par := make([]float64, n*n)
	for _, workers := range []int{2, 3, 4, 7} {
		SetKernelWorkers(workers)
		if err := Dmmul(n, a, b, par); err != nil {
			t.Fatal(err)
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: C[%d] = %v, serial %v", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestDgefaBlockedParallelBitIdentical(t *testing.T) {
	// The parallel trailing-matrix update must leave factors and
	// pivots bit-identical to the serial blocked path (which in turn
	// matches Dgefa — see TestBlockedMatchesUnblocked).
	n := 129
	src := make([]float64, n*n)
	Matgen(src, n)

	serialA := append([]float64(nil), src...)
	serialP := make([]int64, n)
	forceWorkers(t, 1, 1)
	if err := DgefaBlocked(serialA, n, serialP, 32); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 5} {
		SetKernelWorkers(workers)
		parA := append([]float64(nil), src...)
		parP := make([]int64, n)
		if err := DgefaBlocked(parA, n, parP, 32); err != nil {
			t.Fatal(err)
		}
		for i := range parA {
			if parA[i] != serialA[i] {
				t.Fatalf("workers=%d: a[%d] = %v, serial %v", workers, i, parA[i], serialA[i])
			}
		}
		for i := range parP {
			if parP[i] != serialP[i] {
				t.Fatalf("workers=%d: ipvt[%d] = %d, serial %d", workers, i, parP[i], serialP[i])
			}
		}
	}
}

func TestParallelSolveResidual(t *testing.T) {
	// End-to-end: a parallel blocked factor + solve still passes the
	// LINPACK residual criterion.
	forceWorkers(t, 4, 1)
	n := 200
	a := make([]float64, n*n)
	b := Matgen(a, n)
	ac := append([]float64(nil), a...)
	ipvt := make([]int64, n)
	if err := DgefaBlocked(ac, n, ipvt, 0); err != nil {
		t.Fatal(err)
	}
	x := append([]float64(nil), b...)
	if err := Dgesl(ac, n, ipvt, x); err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, n, x, b); r > 10 {
		t.Errorf("residual %g, want < 10", r)
	}
}

func TestSerialFallbackBelowThreshold(t *testing.T) {
	// Below the threshold workersFor must report a single worker, and
	// the kernels must still be correct there.
	SetKernelWorkers(0)
	SetParallelThreshold(0)
	if w := workersFor(defaultParallelThreshold - 1); w != 1 {
		t.Errorf("workersFor(threshold-1) = %d, want 1", w)
	}
	forceWorkers(t, 8, 1000)
	if w := workersFor(999); w != 1 {
		t.Errorf("below custom threshold: workers = %d, want 1", w)
	}
	if w := workersFor(1000); w != 8 {
		t.Errorf("at custom threshold: workers = %d, want 8", w)
	}
}

func TestParallelRowsCoversRange(t *testing.T) {
	marks := make([]int32, 100)
	parallelRows(0, len(marks), 7, func(start, end int) {
		for i := start; i < end; i++ {
			marks[i]++
		}
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("row %d visited %d times", i, m)
		}
	}
	// Degenerate ranges must not panic or spin.
	parallelRows(5, 5, 4, func(int, int) { t.Fatal("fn called on empty range") })
}

// benchKernelWorkers restores kernel tuning after a benchmark.
func benchKernelWorkers(b *testing.B, workers, threshold int) {
	b.Helper()
	SetKernelWorkers(workers)
	SetParallelThreshold(threshold)
	b.Cleanup(func() {
		SetKernelWorkers(0)
		SetParallelThreshold(0)
	})
}

func benchmarkDmmul(b *testing.B, n, workers int) {
	threshold := 1
	if workers == 1 {
		threshold = n + 1 // force the serial path
	}
	benchKernelWorkers(b, workers, threshold)
	a := make([]float64, n*n)
	Matgen(a, n)
	bb := append([]float64(nil), a...)
	c := make([]float64, n*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Dmmul(n, a, bb, c); err != nil {
			b.Fatal(err)
		}
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mflops")
}

func BenchmarkDmmulSerial(b *testing.B) {
	for _, n := range []int{256, 512} {
		b.Run(sizeName(n), func(b *testing.B) { benchmarkDmmul(b, n, 1) })
	}
}

func BenchmarkDmmulParallel(b *testing.B) {
	for _, n := range []int{256, 512} {
		b.Run(sizeName(n), func(b *testing.B) { benchmarkDmmul(b, n, runtime.GOMAXPROCS(0)) })
	}
}

func benchmarkDgefaBlockedWorkers(b *testing.B, n, workers int) {
	threshold := 1
	if workers == 1 {
		threshold = n + 1
	}
	benchKernelWorkers(b, workers, threshold)
	src := make([]float64, n*n)
	Matgen(src, n)
	a := make([]float64, n*n)
	ipvt := make([]int64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(a, src)
		if err := DgefaBlocked(a, n, ipvt, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(Flops(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mflops")
}

func BenchmarkDgefaBlockedSerial(b *testing.B) {
	for _, n := range []int{500, 1000} {
		b.Run(sizeName(n), func(b *testing.B) { benchmarkDgefaBlockedWorkers(b, n, 1) })
	}
}

func BenchmarkDgefaBlockedParallel(b *testing.B) {
	for _, n := range []int{500, 1000} {
		b.Run(sizeName(n), func(b *testing.B) { benchmarkDgefaBlockedWorkers(b, n, runtime.GOMAXPROCS(0)) })
	}
}
