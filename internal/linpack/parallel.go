package linpack

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Kernel parallelism. Dmmul and DgefaBlocked split their row-wise
// work across GOMAXPROCS goroutines — the software analogue of the
// paper's data-parallel J90 runs, where one Ninf_call occupies all
// PEs. Each worker executes the exact serial inner loops over its row
// range, so parallel results are bit-identical to the serial ones.
// Below ParallelThreshold (or with a single worker) the kernels run
// the serial path unchanged.

// defaultParallelThreshold is the matrix order below which the kernels
// stay serial: under ~192 the per-call goroutine fork/join overhead
// outweighs the arithmetic.
const defaultParallelThreshold = 192

var (
	parallelThreshold atomic.Int64
	kernelWorkers     atomic.Int64 // 0 means GOMAXPROCS
)

func init() { parallelThreshold.Store(defaultParallelThreshold) }

// SetParallelThreshold adjusts the matrix order below which Dmmul and
// DgefaBlocked run serially; n <= 0 restores the default.
func SetParallelThreshold(n int) {
	if n <= 0 {
		n = defaultParallelThreshold
	}
	parallelThreshold.Store(int64(n))
}

// SetKernelWorkers fixes the number of worker goroutines the parallel
// kernels use; n <= 0 restores the default of GOMAXPROCS.
func SetKernelWorkers(n int) {
	if n < 0 {
		n = 0
	}
	kernelWorkers.Store(int64(n))
}

// workersFor resolves the worker count for a kernel invocation on a
// matrix of order n.
func workersFor(n int) int {
	if n < int(parallelThreshold.Load()) {
		return 1
	}
	w := int(kernelWorkers.Load())
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelRows splits the row range [lo, hi) into contiguous chunks
// and runs fn on each chunk concurrently across the given number of
// workers. fn must only write rows inside its chunk. With one worker
// (or a single row) it degenerates to a direct call.
func parallelRows(lo, hi, workers int, fn func(start, end int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(lo, hi)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := lo; start < hi; start += chunk {
		end := start + chunk
		if end > hi {
			end = hi
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}
