// Package linpack implements the dense linear-algebra kernels the
// paper registers on Ninf servers: the LINPACK LU decomposition
// (dgefa) and backward substitution (dgesl), a blocked right-looking
// LU (the analogue of the glub4/gslv4 routines the paper uses on
// RISC workstations), and a double-precision matrix multiply (dmmul,
// the paper's §2.2 running example).
//
// Matrices are dense, row-major, flattened into []float64 of length
// n*n; element (i,j) is a[i*n+j]. This matches how Ninf RPC ships
// two-dimensional IDL arrays.
//
// Flops reports the canonical LINPACK operation count used throughout
// the paper's performance model: 2/3·n³ + 2·n².
package linpack

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular reports a (numerically) singular matrix: a zero pivot was
// found during factorization.
var ErrSingular = errors.New("linpack: matrix is singular")

// Flops returns the nominal LINPACK operation count 2/3·n³ + 2·n² for a
// factor+solve of order n, the quantity in the paper's P_Ninf_call.
func Flops(n int) float64 {
	fn := float64(n)
	return 2.0/3.0*fn*fn*fn + 2*fn*fn
}

// CommBytes returns the paper's §3.1 estimate of bytes shipped for a
// remote factor+solve of order n: 8n² + 20n.
func CommBytes(n int) float64 {
	fn := float64(n)
	return 8*fn*fn + 20*fn
}

func checkSquare(a []float64, n int) error {
	if n < 0 {
		return fmt.Errorf("linpack: negative order %d", n)
	}
	if len(a) != n*n {
		return fmt.Errorf("linpack: matrix length %d does not match order %d", len(a), n)
	}
	return nil
}

// Dgefa factors a in place by Gaussian elimination with partial
// pivoting, recording the pivot sequence in ipvt (length n). It is the
// LINPACK factorization transcribed to row-major storage, with
// full-row pivot swaps (the LAPACK convention) so that the blocked
// variant produces bit-identical factors. On return a holds L (unit
// lower, below the diagonal) and U.
func Dgefa(a []float64, n int, ipvt []int64) error {
	if err := checkSquare(a, n); err != nil {
		return err
	}
	if len(ipvt) != n {
		return fmt.Errorf("linpack: ipvt length %d, want %d", len(ipvt), n)
	}
	for k := 0; k < n-1; k++ {
		// Find the pivot: largest magnitude in column k at or below
		// the diagonal.
		p := k
		pmax := math.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i*n+k]); v > pmax {
				pmax = v
				p = i
			}
		}
		ipvt[k] = int64(p)
		if a[p*n+k] == 0 {
			return fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			rowP, rowK := a[p*n:p*n+n], a[k*n:k*n+n]
			for j := 0; j < n; j++ {
				rowP[j], rowK[j] = rowK[j], rowP[j]
			}
		}
		// Compute multipliers and eliminate.
		pivot := a[k*n+k]
		for i := k + 1; i < n; i++ {
			m := a[i*n+k] / pivot
			a[i*n+k] = m
			if m == 0 {
				continue
			}
			rowI, rowK := a[i*n:i*n+n], a[k*n:k*n+n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= m * rowK[j]
			}
		}
	}
	if n > 0 {
		ipvt[n-1] = int64(n - 1)
		if a[(n-1)*n+(n-1)] == 0 {
			return fmt.Errorf("%w: zero pivot at column %d", ErrSingular, n-1)
		}
	}
	return nil
}

// Dgesl solves A·x = b using the factors computed by Dgefa; b is
// overwritten with the solution.
func Dgesl(a []float64, n int, ipvt []int64, b []float64) error {
	if err := checkSquare(a, n); err != nil {
		return err
	}
	if len(ipvt) != n || len(b) != n {
		return fmt.Errorf("linpack: ipvt/b lengths %d/%d, want %d", len(ipvt), len(b), n)
	}
	// Apply the pivot sequence to b, then forward-eliminate with L.
	// (Full-row swaps during factorization leave the stored L in
	// final row order, so pivots must be applied before the solve.)
	for k := 0; k < n-1; k++ {
		p := int(ipvt[k])
		if p < 0 || p >= n {
			return fmt.Errorf("linpack: pivot index %d out of range", p)
		}
		if p != k {
			b[p], b[k] = b[k], b[p]
		}
	}
	for k := 0; k < n-1; k++ {
		bk := b[k]
		if bk == 0 {
			continue
		}
		for i := k + 1; i < n; i++ {
			b[i] -= a[i*n+k] * bk
		}
	}
	// Back substitution: solve U·x = y.
	for k := n - 1; k >= 0; k-- {
		piv := a[k*n+k]
		if piv == 0 {
			return fmt.Errorf("%w: zero diagonal at %d", ErrSingular, k)
		}
		b[k] /= piv
		bk := b[k]
		for i := 0; i < k; i++ {
			b[i] -= a[i*n+k] * bk
		}
	}
	return nil
}

// Solve factors a copy of a and solves for b, returning the solution
// without mutating its inputs. Convenience wrapper used by examples.
func Solve(a []float64, n int, b []float64) ([]float64, error) {
	ac := append([]float64(nil), a...)
	bc := append([]float64(nil), b...)
	ipvt := make([]int64, n)
	if err := Dgefa(ac, n, ipvt); err != nil {
		return nil, err
	}
	if err := Dgesl(ac, n, ipvt, bc); err != nil {
		return nil, err
	}
	return bc, nil
}

// DefaultBlock is the blocking factor for the blocked factorization,
// chosen so a block panel fits comfortably in L1 cache.
const DefaultBlock = 48

// DgefaBlocked is a right-looking blocked LU with partial pivoting —
// the stand-in for the paper's glub4 "blocking optimized" routine that
// runs efficiently on RISC workstations. Semantics are identical to
// Dgefa: same factors, same pivot vector.
func DgefaBlocked(a []float64, n int, ipvt []int64, block int) error {
	if err := checkSquare(a, n); err != nil {
		return err
	}
	if len(ipvt) != n {
		return fmt.Errorf("linpack: ipvt length %d, want %d", len(ipvt), n)
	}
	if block < 1 {
		block = DefaultBlock
	}
	workers := workersFor(n)
	for kb := 0; kb < n; kb += block {
		kend := kb + block
		if kend > n {
			kend = n
		}
		// Factor the panel a[kb:n, kb:kend] with partial pivoting,
		// applying row swaps across the full matrix width.
		for k := kb; k < kend; k++ {
			p := k
			pmax := math.Abs(a[k*n+k])
			for i := k + 1; i < n; i++ {
				if v := math.Abs(a[i*n+k]); v > pmax {
					pmax = v
					p = i
				}
			}
			ipvt[k] = int64(p)
			if a[p*n+k] == 0 {
				return fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
			}
			if p != k {
				rowP, rowK := a[p*n:p*n+n], a[k*n:k*n+n]
				for j := 0; j < n; j++ {
					rowP[j], rowK[j] = rowK[j], rowP[j]
				}
			}
			pivot := a[k*n+k]
			for i := k + 1; i < n; i++ {
				m := a[i*n+k] / pivot
				a[i*n+k] = m
				if m == 0 {
					continue
				}
				rowI, rowK := a[i*n:i*n+n], a[k*n:k*n+n]
				// Update only within the panel; the trailing
				// matrix is updated in the blocked GEMM below.
				for j := k + 1; j < kend; j++ {
					rowI[j] -= m * rowK[j]
				}
			}
		}
		if kend == n {
			break
		}
		// Triangular solve: U12 = L11⁻¹ · A12 for the block rows.
		for k := kb; k < kend; k++ {
			for i := k + 1; i < kend; i++ {
				m := a[i*n+k]
				if m == 0 {
					continue
				}
				rowI, rowK := a[i*n:i*n+n], a[k*n:k*n+n]
				for j := kend; j < n; j++ {
					rowI[j] -= m * rowK[j]
				}
			}
		}
		// Trailing update: A22 -= L21 · U12, blocked over k for reuse.
		// This is the O(n³) bulk of the factorization; rows are
		// independent (the panel rows kb:kend are read-only here), so
		// it is split across the kernel workers. Each worker runs the
		// serial loop over its rows, keeping the factors bit-identical
		// to the serial path.
		parallelRows(kend, n, workers, func(start, end int) {
			for i := start; i < end; i++ {
				rowI := a[i*n : i*n+n]
				for k := kb; k < kend; k++ {
					m := rowI[k]
					if m == 0 {
						continue
					}
					rowK := a[k*n : k*n+n]
					for j := kend; j < n; j++ {
						rowI[j] -= m * rowK[j]
					}
				}
			}
		})
	}
	if n > 0 {
		if a[(n-1)*n+(n-1)] == 0 {
			return fmt.Errorf("%w: zero pivot at column %d", ErrSingular, n-1)
		}
	}
	return nil
}

// Dmmul computes C = A·B for n×n row-major matrices, the paper's §2.2
// example routine. The inner loops are ordered i-k-j for stride-1
// access on both operands. At or above the parallel threshold the row
// loop is split across GOMAXPROCS workers (rows of C are independent),
// with results bit-identical to the serial path.
func Dmmul(n int, a, b, c []float64) error {
	if err := checkSquare(a, n); err != nil {
		return err
	}
	if len(b) != n*n || len(c) != n*n {
		return fmt.Errorf("linpack: operand lengths %d/%d, want %d", len(b), len(c), n*n)
	}
	parallelRows(0, n, workersFor(n), func(start, end int) {
		dmmulRows(n, a, b, c, start, end)
	})
	return nil
}

// dmmulRows computes rows [start, end) of C = A·B with the serial
// i-k-j kernel.
func dmmulRows(n int, a, b, c []float64, start, end int) {
	for i := start; i < end; i++ {
		rowC := c[i*n : i*n+n]
		for j := range rowC {
			rowC[j] = 0
		}
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			if aik == 0 {
				continue
			}
			rowB := b[k*n : k*n+n]
			for j := 0; j < n; j++ {
				rowC[j] += aik * rowB[j]
			}
		}
	}
}

// Matgen fills a with the standard LINPACK benchmark test matrix (a
// reproducible pseudo-random matrix) and returns b = A·ones so the
// exact solution of A·x=b is the all-ones vector. This is the classic
// driver's matgen, giving every client/server pair the same problem.
func Matgen(a []float64, n int) (b []float64) {
	seed := int64(1325)
	norm := 1.0 / 65536.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			seed = (3125 * seed) % 65536
			a[i*n+j] = (float64(seed) - 32768.0) * norm
		}
	}
	b = make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			b[i] += a[i*n+j]
		}
	}
	return b
}

// Residual computes the normalized LINPACK residual
// ‖A·x−b‖∞ / (‖A‖∞·‖x‖∞·n·ε), the benchmark's pass criterion. Values
// below ~10 indicate a correct solve.
func Residual(a []float64, n int, x, b []float64) float64 {
	// r = A·x − b
	resid := 0.0
	for i := 0; i < n; i++ {
		s := -b[i]
		row := a[i*n : i*n+n]
		for j := 0; j < n; j++ {
			s += row[j] * x[j]
		}
		if v := math.Abs(s); v > resid {
			resid = v
		}
	}
	anorm := 0.0
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += math.Abs(a[i*n+j])
		}
		if s > anorm {
			anorm = s
		}
	}
	xnorm := 0.0
	for i := 0; i < n; i++ {
		if v := math.Abs(x[i]); v > xnorm {
			xnorm = v
		}
	}
	eps := math.Nextafter(1, 2) - 1
	den := anorm * xnorm * float64(n) * eps
	if den == 0 {
		return math.Inf(1)
	}
	return resid / den
}
