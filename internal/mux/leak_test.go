package mux

import (
	"testing"

	"ninf/internal/testleak"
)

// TestMain fails the package if session writer or reader goroutines
// outlive the tests: every Session torn down by a test (or its
// cleanup) must have joined both loops before the process exits.
func TestMain(m *testing.M) { testleak.Main(m) }
