// Package mux implements the client side of the multiplexed Ninf RPC
// session (protocol version 2): many in-flight calls share one
// persistent connection to a server instead of one lockstep exchange
// per connection.
//
// A Session runs two goroutines. The writer drains a queue of stamped
// request frames and coalesces whatever is queued into a single
// vectored write, so a burst of small concurrent calls costs one
// syscall, not one each — the per-call overhead amortization the
// paper's §4 multi-client measurements show dominating LAN/WAN
// throughput. The reader demultiplexes reply frames by their sequence
// number to the waiting callers, so a long-running call no longer
// head-of-line-blocks pings and small calls pipelined behind it.
//
// Failure semantics compose with the client's resilience layer: when
// the connection dies (read/write error, reset, Close), every in-
// flight sequence fails with an error wrapping the underlying
// transport fault, which the client's RetryPolicy classifies as
// retryable and answers by dialing a fresh session. A caller's context
// ending abandons only its own sequence — the session and the other
// in-flight calls are untouched, which is the per-Seq analogue of the
// lockstep path's guarded-connection deadline.
package mux

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"ninf/internal/protocol"
)

// ErrLegacy reports that the peer answered MsgHello with an error:
// it predates the multiplexed protocol. The caller should close the
// connection and stay on the lockstep path.
var ErrLegacy = errors.New("mux: peer speaks the lockstep protocol only")

// errSessionClosed is the failure cause recorded by a local Close. It
// wraps net.ErrClosed so the client's transport-fault classification
// (and its closed-client refinement) applies unchanged.
var errSessionClosed = fmt.Errorf("mux: session closed: %w", net.ErrClosed)

// Negotiate upgrades conn to the multiplexed protocol: it sends
// MsgHello and reads the reply, both in version-1 framing. nil means
// the peer accepted and every subsequent frame on conn must use
// version-2 framing. ErrLegacy means the peer is a version-1 server
// (it answered with MsgError); the connection has carried a complete
// lockstep exchange and is technically still in sync, but callers are
// expected to close it and fall back. Any other error is a transport
// fault.
func Negotiate(conn net.Conn, maxPayload int) error {
	req := protocol.HelloRequest{MaxVersion: protocol.MuxVersion}
	if err := protocol.WriteFrame(conn, protocol.MsgHello, req.Encode()); err != nil {
		return err
	}
	t, p, err := protocol.ReadFrame(conn, maxPayload)
	if err != nil {
		return err
	}
	switch t {
	case protocol.MsgHelloOK:
		rep, err := protocol.DecodeHelloReply(p)
		if err != nil {
			return err
		}
		if rep.Version != protocol.MuxVersion {
			return fmt.Errorf("mux: peer chose unsupported version %d", rep.Version)
		}
		return nil
	case protocol.MsgError:
		// A pre-mux server rejects the unknown frame type; a post-mux
		// server never answers Hello with an error. Either way the
		// lockstep path is the one to use.
		return ErrLegacy
	default:
		return fmt.Errorf("mux: unexpected reply %v to hello", t)
	}
}

// maxWriteBatch bounds how many queued frames one vectored write
// gathers. 64 matches the deepest pipelines the benchmarks drive and
// stays well under the kernel's iovec limit.
const maxWriteBatch = 64

// writeQueueDepth is the writer queue's capacity. Callers enqueuing
// past it block (backpressure), still interruptible by their context.
const writeQueueDepth = 256

// result carries one demultiplexed reply to its waiting caller.
type result struct {
	t   protocol.MsgType
	fb  *protocol.Buffer
	err error
}

// A Session multiplexes sequenced request/reply exchanges over one
// negotiated connection. Create one with New after Negotiate; issue
// exchanges with Roundtrip from any number of goroutines.
type Session struct {
	conn       net.Conn
	maxPayload int

	writeq chan *protocol.Buffer

	// wakes counts callers recently woken by a delivered reply that
	// have not yet enqueued a follow-up frame; the writer uses it to
	// decide whether yielding before a flush is likely to grow the
	// batch (see writeLoop).
	wakes atomic.Int32

	mu      sync.Mutex
	pending map[uint32]chan result
	nextSeq uint32
	err     error // terminal failure cause, set once under mu

	failOnce sync.Once
	done     chan struct{} // closed when the session fails
	wg       sync.WaitGroup
}

// New wraps a connection that completed Negotiate in a running
// session. The session owns conn and closes it on failure or Close.
func New(conn net.Conn, maxPayload int) *Session {
	s := &Session{
		conn:       conn,
		maxPayload: maxPayload,
		writeq:     make(chan *protocol.Buffer, writeQueueDepth),
		pending:    make(map[uint32]chan result),
		done:       make(chan struct{}),
	}
	s.wg.Add(2)
	go s.writeLoop()
	go s.readLoop()
	return s
}

// Broken reports whether the session has failed and must be replaced.
func (s *Session) Broken() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// Err returns the terminal failure cause, nil while the session lives.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// InFlight reports the number of exchanges awaiting replies.
func (s *Session) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Close tears the session down: the connection closes, both goroutines
// exit, and every in-flight exchange fails with an error wrapping
// net.ErrClosed.
func (s *Session) Close() error {
	s.fail(errSessionClosed)
	s.wg.Wait()
	return nil
}

// fail records the terminal error, closes the connection (waking both
// loops), and fails every pending exchange. First cause wins.
func (s *Session) fail(cause error) {
	s.failOnce.Do(func() {
		s.mu.Lock()
		s.err = cause
		waiters := s.pending
		s.pending = nil
		s.mu.Unlock()
		close(s.done)
		s.conn.Close()
		for _, ch := range waiters {
			ch <- result{err: cause}
		}
	})
}

// register allocates a sequence number and its reply channel.
func (s *Session) register() (uint32, chan result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return 0, nil, s.err
	}
	s.nextSeq++
	seq := s.nextSeq
	ch := make(chan result, 1)
	s.pending[seq] = ch
	return seq, ch, nil
}

// deregister abandons a sequence (its caller's context ended). The
// reply, if it later arrives, is dropped by the reader. It returns any
// result already delivered so its buffer can be released.
func (s *Session) deregister(seq uint32, ch chan result) {
	s.mu.Lock()
	if s.pending != nil {
		delete(s.pending, seq)
	}
	s.mu.Unlock()
	select {
	case r := <-ch:
		r.fb.Release()
	default:
	}
}

// Roundtrip performs one sequenced exchange: req (consumed, whether or
// not the exchange succeeds) is stamped with a fresh Seq, queued for
// the coalescing writer, and the matching reply is awaited. The reply
// buffer is owned by the caller and must be released after decoding.
//
// ctx bounds only this exchange. When it ends mid-flight the sequence
// is abandoned — the server may still execute the request — and the
// context's error is returned; the session and other in-flight
// sequences are unaffected. A session failure instead fails all
// in-flight exchanges with the transport cause, which the client's
// retry layer classifies as retryable and answers with a fresh
// session.
func (s *Session) Roundtrip(ctx context.Context, t protocol.MsgType, req *protocol.Buffer) (protocol.MsgType, *protocol.Buffer, error) {
	seq, ch, err := s.register()
	if err != nil {
		req.Release()
		return 0, nil, err
	}
	protocol.StampMux(req, t, seq)
	select {
	case s.writeq <- req:
	case <-s.done:
		req.Release()
		s.deregister(seq, ch)
		return 0, nil, s.Err()
	case <-ctx.Done():
		req.Release()
		s.deregister(seq, ch)
		return 0, nil, ctx.Err()
	}
	select {
	case r := <-ch:
		return r.t, r.fb, r.err
	case <-ctx.Done():
		s.deregister(seq, ch)
		return 0, nil, ctx.Err()
	}
}

// writeLoop drains the queue, coalescing every frame queued at wake-up
// time (up to maxWriteBatch) into a single vectored write.
//
// Before flushing a small batch the loop may yield the processor
// (bounded): when a coalesced reply burst has just woken a crowd of
// callers, the first one's enqueue lands here before the rest have
// run, and writing immediately would cost one syscall per request —
// the lockstep cadence all over again. Yielding lets the remaining
// woken callers enqueue so the burst travels as one vectored write.
// The reader's wake count gates the yield so a lone caller pays no
// added latency: with no recently-woken callers outstanding there is
// nobody worth waiting for.
func (s *Session) writeLoop() {
	defer s.wg.Done()
	batch := make([]*protocol.Buffer, 0, maxWriteBatch)
	for {
		batch = batch[:0]
		select {
		case fb := <-s.writeq:
			batch = append(batch, fb)
		case <-s.done:
			s.drainQueue()
			return
		}
		if s.wakes.Load() > 0 {
			s.wakes.Add(-1)
		}
		for yields := 0; ; {
		gather:
			for len(batch) < maxWriteBatch {
				select {
				case fb := <-s.writeq:
					batch = append(batch, fb)
					if s.wakes.Load() > 0 {
						s.wakes.Add(-1)
					}
				default:
					break gather
				}
			}
			if yields >= 2 || len(batch) >= maxWriteBatch || s.wakes.Load() <= 0 {
				break
			}
			yields++
			runtime.Gosched()
		}
		err := protocol.WriteStampedFrames(s.conn, batch)
		for _, fb := range batch {
			fb.Release()
		}
		if err != nil {
			s.fail(fmt.Errorf("mux: session write failed: %w", err))
			s.drainQueue()
			return
		}
	}
}

// drainQueue releases frames still queued when the session fails.
// Enqueuers select on done, so nothing new arrives after this returns.
func (s *Session) drainQueue() {
	for {
		select {
		case fb := <-s.writeq:
			fb.Release()
		default:
			return
		}
	}
}

// readLoop demultiplexes reply frames to their waiting callers until
// the connection dies.
func (s *Session) readLoop() {
	defer s.wg.Done()
	// The buffered reader amortizes read syscalls across pipelined
	// small replies; large payloads bypass its buffer (io.ReadFull
	// reads straight into the frame buffer once the header is parsed).
	br := bufio.NewReaderSize(s.conn, 64<<10)
	for {
		t, seq, fb, err := protocol.ReadMuxFrameBuf(br, s.maxPayload)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF // mid-session close, not a clean end
			}
			s.fail(fmt.Errorf("mux: session read failed: %w", err))
			return
		}
		s.mu.Lock()
		ch, ok := s.pending[seq]
		if ok {
			delete(s.pending, seq)
		}
		s.mu.Unlock()
		if !ok {
			// The caller abandoned this sequence (context ended).
			fb.Release()
			continue
		}
		s.wakes.Add(1)
		ch <- result{t: t, fb: fb}
	}
}
