// Package mux implements the client side of the multiplexed Ninf RPC
// session (protocol version 2): many in-flight calls share one
// persistent connection to a server instead of one lockstep exchange
// per connection.
//
// A Session runs two goroutines. The writer drains a queue of stamped
// request frames and coalesces whatever is queued into a single
// vectored write, so a burst of small concurrent calls costs one
// syscall, not one each — the per-call overhead amortization the
// paper's §4 multi-client measurements show dominating LAN/WAN
// throughput. The reader demultiplexes reply frames by their sequence
// number to the waiting callers, so a long-running call no longer
// head-of-line-blocks pings and small calls pipelined behind it.
//
// At feature level 3 (protocol.MuxVersionBulk) large payloads go out
// chunked: the writer interleaves one bounded chunk of each active bulk
// send between flushes of the control queue, round-robin across bulk
// sends, so an 8 MiB argument transfer no longer monopolizes the wire
// while pipelined 8-byte calls wait. Chunk data is written straight
// from the caller's argument slices (zero-copy, vectored); the read
// loop reassembles inbound chunks into one pooled buffer per sequence.
//
// Failure semantics compose with the client's resilience layer: when
// the connection dies (read/write error, reset, Close), every in-
// flight sequence fails with an error wrapping the underlying
// transport fault, which the client's RetryPolicy classifies as
// retryable and answers by dialing a fresh session. A caller's context
// ending abandons only its own sequence — the session and the other
// in-flight calls are untouched, which is the per-Seq analogue of the
// lockstep path's guarded-connection deadline.
package mux

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ninf/internal/protocol"
)

// ErrLegacy reports that the peer answered MsgHello with an error:
// it predates the multiplexed protocol. The caller should close the
// connection and stay on the lockstep path.
var ErrLegacy = errors.New("mux: peer speaks the lockstep protocol only")

// errSessionClosed is the failure cause recorded by a local Close. It
// wraps net.ErrClosed so the client's transport-fault classification
// (and its closed-client refinement) applies unchanged.
var errSessionClosed = fmt.Errorf("mux: session closed: %w", net.ErrClosed)

// Negotiate upgrades conn to the multiplexed protocol: it sends
// MsgHello and reads the reply, both in version-1 framing. On success
// it returns the negotiated version — protocol.MuxVersion for a plain
// mux peer, protocol.MuxVersionBulk when both sides speak chunked bulk
// frames — and every subsequent frame on conn must use version-2
// framing. ErrLegacy means the peer is a version-1 server (it answered
// with MsgError); the connection has carried a complete lockstep
// exchange and is technically still in sync, but callers are expected
// to close it and fall back. Any other error is a transport fault.
func Negotiate(conn net.Conn, maxPayload int) (int, error) {
	v, _, err := NegotiateFlags(conn, maxPayload)
	return v, err
}

// NegotiateFlags is Negotiate returning also the server's capability
// flags from the HelloReply trailer (zero from pre-cache servers):
// HelloFlagArgCache says the peer runs an enabled argument cache, the
// precondition for the session to emit digest references.
func NegotiateFlags(conn net.Conn, maxPayload int) (int, uint32, error) {
	rep, err := NegotiateHello(conn, maxPayload)
	return int(rep.Version), rep.Flags, err
}

// NegotiateHello performs the MsgHello exchange and returns the
// server's full reply: the chosen version, the capability flags, and —
// from crash-recovery journal servers — the incarnation epoch, which
// lets the caller detect a server restart across reconnects (epoch 0
// means the server does not advertise one).
func NegotiateHello(conn net.Conn, maxPayload int) (protocol.HelloReply, error) {
	req := protocol.HelloRequest{MaxVersion: protocol.MuxVersionCache}
	if err := protocol.WriteFrame(conn, protocol.MsgHello, req.Encode()); err != nil {
		return protocol.HelloReply{}, err
	}
	t, p, err := protocol.ReadFrame(conn, maxPayload)
	if err != nil {
		return protocol.HelloReply{}, err
	}
	switch t {
	case protocol.MsgHelloOK:
		rep, err := protocol.DecodeHelloReply(p)
		if err != nil {
			return protocol.HelloReply{}, err
		}
		if rep.Version < protocol.MuxVersion || rep.Version > protocol.MuxVersionCache {
			return protocol.HelloReply{}, fmt.Errorf("mux: peer chose unsupported version %d", rep.Version)
		}
		return rep, nil
	case protocol.MsgError:
		// A pre-mux server rejects the unknown frame type; a post-mux
		// server never answers Hello with an error. Either way the
		// lockstep path is the one to use.
		return protocol.HelloReply{}, ErrLegacy
	default:
		return protocol.HelloReply{}, fmt.Errorf("mux: unexpected reply %v to hello", t)
	}
}

// maxWriteBatch bounds how many queued frames one vectored write
// gathers. 64 matches the deepest pipelines the benchmarks drive and
// stays well under the kernel's iovec limit.
const maxWriteBatch = 64

// bulkBurstChunks is how many consecutive chunks the writer takes from
// one bulk send before rotating to the next. Control frames still
// preempt between every chunk, so small-call latency is bounded by one
// chunk regardless; the burst only trades inter-bulk fairness for
// streaming locality — rotating 8 MiB transfers every single chunk
// walks a different source buffer each write and measurably hurts
// aggregate throughput on concurrent transfers.
const bulkBurstChunks = 4

// writeQueueDepth is the writer queue's capacity. Callers enqueuing
// past it block (backpressure), still interruptible by their context.
const writeQueueDepth = 256

// bulkAbandonStall bounds how long an abandoning caller waits for the
// writer to acknowledge dropping its argument-slice references before
// concluding the connection write is wedged and failing the session.
const bulkAbandonStall = 2 * time.Second

// result carries one demultiplexed reply to its waiting caller. bulk is
// non-nil when the reply arrived as a reassembled chunked message; fb
// then holds the full logical payload and bulk locates its head.
type result struct {
	t    protocol.MsgType
	fb   *protocol.Buffer
	bulk *protocol.BulkInfo
	err  error
}

// bulkSend is one chunked request travelling through the writer. The
// writer owns m's spans until it closes released; an abandoning caller
// sets abandoned and blocks on released so the shared argument slices
// are provably unreferenced before Roundtrip returns.
type bulkSend struct {
	seq       uint32
	m         *protocol.BulkMsg
	cur       protocol.BulkCursor
	begun     bool
	abandoned atomic.Bool
	released  chan struct{}
}

// A Session multiplexes sequenced request/reply exchanges over one
// negotiated connection. Create one with New after Negotiate; issue
// exchanges with Roundtrip (and RoundtripBulk at feature level 3) from
// any number of goroutines.
type Session struct {
	conn       net.Conn
	maxPayload int
	version    int

	writeq chan *protocol.Buffer
	bulkq  chan *bulkSend

	// wakes counts callers recently woken by a delivered reply that
	// have not yet enqueued a follow-up frame; the writer uses it to
	// decide whether yielding before a flush is likely to grow the
	// batch (see writeLoop).
	wakes atomic.Int32

	mu      sync.Mutex
	pending map[uint32]chan result
	nextSeq uint32
	err     error // terminal failure cause, set once under mu

	failOnce sync.Once
	done     chan struct{} // closed when the session fails
	wg       sync.WaitGroup
}

// New wraps a connection that completed Negotiate in a running session
// at the negotiated version. The session owns conn and closes it on
// failure or Close.
func New(conn net.Conn, maxPayload, version int) *Session {
	s := &Session{
		conn:       conn,
		maxPayload: maxPayload,
		version:    version,
		writeq:     make(chan *protocol.Buffer, writeQueueDepth),
		bulkq:      make(chan *bulkSend, writeQueueDepth),
		pending:    make(map[uint32]chan result),
		done:       make(chan struct{}),
	}
	s.wg.Add(2)
	go s.writeLoop()
	go s.readLoop()
	return s
}

// Bulk reports whether the peer negotiated chunked bulk streaming.
func (s *Session) Bulk() bool { return s.version >= protocol.MuxVersionBulk }

// Cache reports whether the peer negotiated content-addressed argument
// caching (feature level 4). The caller must additionally check the
// server's HelloFlagArgCache advertisement before emitting digests.
func (s *Session) Cache() bool { return s.version >= protocol.MuxVersionCache }

// Broken reports whether the session has failed and must be replaced.
func (s *Session) Broken() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// Err returns the terminal failure cause, nil while the session lives.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// InFlight reports the number of exchanges awaiting replies.
func (s *Session) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Close tears the session down: the connection closes, both goroutines
// exit, and every in-flight exchange fails with an error wrapping
// net.ErrClosed.
func (s *Session) Close() error {
	s.fail(errSessionClosed)
	s.wg.Wait()
	return nil
}

// fail records the terminal error, closes the connection (waking both
// loops), and fails every pending exchange. First cause wins.
func (s *Session) fail(cause error) {
	s.failOnce.Do(func() {
		s.mu.Lock()
		s.err = cause
		waiters := s.pending
		s.pending = nil
		s.mu.Unlock()
		close(s.done)
		s.conn.Close()
		for _, ch := range waiters {
			ch <- result{err: cause}
		}
	})
}

// register allocates a sequence number and its reply channel.
func (s *Session) register() (uint32, chan result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return 0, nil, s.err
	}
	s.nextSeq++
	seq := s.nextSeq
	ch := make(chan result, 1)
	s.pending[seq] = ch
	return seq, ch, nil
}

// deregister abandons a sequence (its caller's context ended). The
// reply, if it later arrives, is dropped by the reader. It returns any
// result already delivered so its buffer can be released.
func (s *Session) deregister(seq uint32, ch chan result) {
	s.mu.Lock()
	if s.pending != nil {
		delete(s.pending, seq)
	}
	s.mu.Unlock()
	select {
	case r := <-ch:
		r.fb.Release()
	default:
	}
}

// wants reports whether a caller still awaits seq; the read loop uses
// it to open abandoned sequences' reassemblies in discard mode.
func (s *Session) wants(seq uint32) bool {
	s.mu.Lock()
	_, ok := s.pending[seq]
	s.mu.Unlock()
	return ok
}

// Roundtrip performs one sequenced exchange: req (consumed, whether or
// not the exchange succeeds) is stamped with a fresh Seq, queued for
// the coalescing writer, and the matching reply is awaited. The reply
// buffer is owned by the caller and must be released after decoding.
// A non-nil BulkInfo means the peer streamed the reply chunked; the
// buffer then holds the full logical payload and the info locates its
// head and segments.
//
// ctx bounds only this exchange. When it ends mid-flight the sequence
// is abandoned — the server may still execute the request — and the
// context's error is returned; the session and other in-flight
// sequences are unaffected. A session failure instead fails all
// in-flight exchanges with the transport cause, which the client's
// retry layer classifies as retryable and answers with a fresh
// session.
func (s *Session) Roundtrip(ctx context.Context, t protocol.MsgType, req *protocol.Buffer) (protocol.MsgType, *protocol.Buffer, *protocol.BulkInfo, error) {
	seq, ch, err := s.register()
	if err != nil {
		req.Release()
		return 0, nil, nil, err
	}
	protocol.StampMux(req, t, seq)
	select {
	case s.writeq <- req:
	case <-s.done:
		req.Release()
		s.deregister(seq, ch)
		return 0, nil, nil, s.Err()
	case <-ctx.Done():
		req.Release()
		s.deregister(seq, ch)
		return 0, nil, nil, ctx.Err()
	}
	select {
	case r := <-ch:
		return r.t, r.fb, r.bulk, r.err
	case <-ctx.Done():
		s.deregister(seq, ch)
		return 0, nil, nil, ctx.Err()
	}
}

// RoundtripBulk performs one sequenced exchange whose request streams
// out as chunked bulk frames. m is consumed (its head buffer released
// by the session) whether or not the exchange succeeds; its segment
// spans alias the caller's argument slices, and RoundtripBulk does not
// return until the writer provably holds no reference to them — on
// success, abandonment (MsgBulkAbort covers a partially-sent stream),
// or session failure — so the caller may reuse the slices immediately
// after return.
func (s *Session) RoundtripBulk(ctx context.Context, m *protocol.BulkMsg) (protocol.MsgType, *protocol.Buffer, *protocol.BulkInfo, error) {
	if !s.Bulk() {
		m.Release()
		return 0, nil, nil, fmt.Errorf("mux: peer version %d lacks bulk streaming", s.version)
	}
	seq, ch, err := s.register()
	if err != nil {
		m.Release()
		return 0, nil, nil, err
	}
	bs := &bulkSend{seq: seq, m: m, cur: m.Cursor(), released: make(chan struct{})}
	select {
	case s.bulkq <- bs:
	case <-s.done:
		m.Release()
		s.deregister(seq, ch)
		return 0, nil, nil, s.Err()
	case <-ctx.Done():
		m.Release()
		s.deregister(seq, ch)
		return 0, nil, nil, ctx.Err()
	}
	select {
	case r := <-ch:
		// A reply (or session failure) means the writer finished with
		// this send; released closes promptly, and waiting guarantees
		// the spans are unreferenced before the caller reuses them.
		s.awaitReleased(bs)
		return r.t, r.fb, r.bulk, r.err
	case <-ctx.Done():
		bs.abandoned.Store(true)
		s.awaitReleased(bs)
		s.deregister(seq, ch)
		return 0, nil, nil, ctx.Err()
	}
}

// awaitReleased blocks until the writer drops its references to a bulk
// send's spans. A stall past bulkAbandonStall means the writer is wedged
// in a connection write; failing the session closes the connection,
// which unblocks the write and guarantees released closes.
func (s *Session) awaitReleased(bs *bulkSend) {
	select {
	case <-bs.released:
		return
	case <-time.After(bulkAbandonStall):
		s.fail(fmt.Errorf("mux: bulk send stalled: %w", errSessionClosed))
	}
	<-bs.released
}

// finishBulk drops the writer's references to one bulk send and lets
// any abandoning caller proceed.
func finishBulk(bs *bulkSend) {
	bs.m.Release()
	close(bs.released)
}

// writeLoop drains the control queue, coalescing every frame queued at
// wake-up time (up to maxWriteBatch) into a single vectored write, and
// interleaves chunks of active bulk sends between flushes: after each
// control batch it writes exactly one bounded chunk from one bulk send,
// rotating round-robin across them, so concurrent large transfers share
// the wire fairly and small calls never wait behind a whole bulk
// payload.
//
// Before flushing a small batch the loop may yield the processor
// (bounded): when a coalesced reply burst has just woken a crowd of
// callers, the first one's enqueue lands here before the rest have
// run, and writing immediately would cost one syscall per request —
// the lockstep cadence all over again. Yielding lets the remaining
// woken callers enqueue so the burst travels as one vectored write.
// The reader's wake count gates the yield so a lone caller pays no
// added latency: with no recently-woken callers outstanding there is
// nobody worth waiting for. With bulk chunks pending the loop never
// yields — the chunk write itself gives the crowd time to enqueue.
//
//ninflint:hotpath
func (s *Session) writeLoop() {
	defer s.wg.Done()
	batch := make([]*protocol.Buffer, 0, maxWriteBatch)
	var active []*bulkSend
	rr, burst := 0, 0
	for {
		batch = batch[:0]
		if len(active) == 0 {
			select {
			case fb := <-s.writeq:
				batch = append(batch, fb)
			case bs := <-s.bulkq:
				active = append(active, bs)
			case <-s.done:
				s.drainQueue(active)
				return
			}
			if s.wakes.Load() > 0 {
				s.wakes.Add(-1)
			}
		} else {
			select {
			case <-s.done:
				s.drainQueue(active)
				return
			default:
			}
		}
		for yields := 0; ; {
		gather:
			for len(batch) < maxWriteBatch {
				select {
				case fb := <-s.writeq:
					batch = append(batch, fb)
					if s.wakes.Load() > 0 {
						s.wakes.Add(-1)
					}
				case bs := <-s.bulkq:
					active = append(active, bs)
				default:
					break gather
				}
			}
			if len(active) > 0 || yields >= 2 || len(batch) >= maxWriteBatch || s.wakes.Load() <= 0 {
				break
			}
			yields++
			runtime.Gosched()
		}
		if len(batch) > 0 {
			err := protocol.WriteStampedFrames(s.conn, batch)
			for _, fb := range batch {
				fb.Release()
			}
			if err != nil {
				s.fail(fmt.Errorf("mux: session write failed: %w", err))
				s.drainQueue(active)
				return
			}
		}
		if len(active) == 0 {
			continue
		}
		rr %= len(active)
		bs := active[rr]
		done, err := s.bulkStep(bs)
		if done {
			// bulkStep finished bs (released closed) on every done or
			// error return; drop it before any drain so it cannot be
			// finished twice.
			active[rr] = active[len(active)-1]
			active = active[:len(active)-1]
			burst = 0
		} else if burst++; burst >= bulkBurstChunks {
			rr++
			burst = 0
		}
		if err != nil {
			s.fail(fmt.Errorf("mux: session write failed: %w", err))
			s.drainQueue(active)
			return
		}
	}
}

// bulkStep advances one bulk send by a single frame: its begin header,
// its next data chunk, or — when the caller abandoned it — a
// MsgBulkAbort that lets the receiver discard the partial reassembly.
// It reports whether the send is finished (fully written or aborted),
// in which case the writer's span references have been dropped.
func (s *Session) bulkStep(bs *bulkSend) (bool, error) {
	if bs.abandoned.Load() {
		var err error
		if bs.begun && !bs.cur.Done() {
			//lint:ninflint featgate — sends enter bulkq only via RoundtripBulk, which gates on s.Bulk()
			err = protocol.WriteMuxFrame(s.conn, protocol.MsgBulkAbort, bs.seq, nil)
		}
		finishBulk(bs)
		return true, err
	}
	if !bs.begun {
		fb := bs.m.EncodeBegin()
		//lint:ninflint featgate — sends enter bulkq only via RoundtripBulk, which gates on s.Bulk()
		err := protocol.WriteMuxFrameBuf(s.conn, protocol.MsgBulkBegin, bs.seq, fb)
		fb.Release()
		if err != nil {
			finishBulk(bs)
			return true, err
		}
		bs.begun = true
		return false, nil
	}
	done, err := bs.cur.WriteChunk(s.conn, bs.seq, protocol.DefaultBulkChunk)
	if err != nil || done {
		finishBulk(bs)
		return true, err
	}
	return false, nil
}

// drainQueue releases frames and bulk sends still queued or active when
// the session fails, closing every bulk send's released channel so
// abandoning callers unblock. Enqueuers select on done, so nothing new
// arrives after this returns.
func (s *Session) drainQueue(active []*bulkSend) {
	for _, bs := range active {
		finishBulk(bs)
	}
	for {
		select {
		case fb := <-s.writeq:
			fb.Release()
		case bs := <-s.bulkq:
			finishBulk(bs)
		default:
			return
		}
	}
}

// deliver routes one complete reply to its waiting caller, releasing it
// if the sequence was abandoned.
func (s *Session) deliver(seq uint32, r result) {
	s.mu.Lock()
	ch, ok := s.pending[seq]
	if ok {
		delete(s.pending, seq)
	}
	s.mu.Unlock()
	if !ok {
		// The caller abandoned this sequence (context ended).
		if r.fb != nil {
			r.fb.Release()
		}
		return
	}
	s.wakes.Add(1)
	ch <- r
}

// errPeerAborted is the constant failure delivered when the server
// abandons a streamed reply mid-send; wrapping io.ErrUnexpectedEOF
// keeps it classified retryable without allocating in the read loop.
var errPeerAborted = fmt.Errorf("mux: peer aborted reply: %w", io.ErrUnexpectedEOF)

// readLoop demultiplexes reply frames to their waiting callers until
// the connection dies. Chunked bulk replies reassemble here, the chunk
// data read straight from the buffered reader into the per-sequence
// reassembly buffer; replies to abandoned sequences reassemble in
// discard mode so the stream stays in sync without holding memory.
//
//ninflint:hotpath
func (s *Session) readLoop() {
	defer s.wg.Done()
	// The buffered reader amortizes read syscalls across pipelined
	// small replies; large payloads bypass its buffer (io.ReadFull
	// reads straight into the frame buffer once the header is parsed).
	br := bufio.NewReaderSize(s.conn, 64<<10)
	ra := protocol.NewReassembler(s.maxPayload, 0)
	defer ra.Close()
	for {
		t, seq, n, err := protocol.ReadMuxHeader(br, s.maxPayload)
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF // mid-session close, not a clean end
			}
			s.fail(fmt.Errorf("mux: session read failed: %w", err))
			return
		}
		switch t {
		case protocol.MsgBulkBegin:
			fb, err := protocol.ReadMuxPayload(br, n)
			if err != nil {
				s.fail(fmt.Errorf("mux: session read failed: %w", err))
				return
			}
			berr := ra.Begin(seq, fb.Payload(), !s.wants(seq))
			fb.Release()
			if berr != nil {
				s.fail(fmt.Errorf("mux: session read failed: %w", berr))
				return
			}
		case protocol.MsgBulkChunk:
			bd, err := ra.ReadChunk(br, seq, n)
			if err != nil {
				s.fail(fmt.Errorf("mux: session read failed: %w", err))
				return
			}
			if bd != nil {
				s.deliver(seq, result{t: bd.Type, fb: bd.FB, bulk: &bd.Bulk})
			}
		case protocol.MsgBulkAbort:
			// The server abandoned a streamed reply mid-send (drain or
			// internal failure); fail just this sequence, retryably.
			if n > 0 {
				fb, err := protocol.ReadMuxPayload(br, n)
				if err != nil {
					s.fail(fmt.Errorf("mux: session read failed: %w", err))
					return
				}
				fb.Release()
			}
			ra.Abort(seq)
			s.deliver(seq, result{err: errPeerAborted})
		default:
			fb, err := protocol.ReadMuxPayload(br, n)
			if err != nil {
				s.fail(fmt.Errorf("mux: session read failed: %w", err))
				return
			}
			s.deliver(seq, result{t: t, fb: fb})
		}
	}
}
