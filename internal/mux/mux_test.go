package mux

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"ninf/internal/protocol"
)

// fakeMuxServer accepts the Hello negotiation on conn and then serves
// mux frames with handle until the connection dies. handle returns the
// reply type and payload for one request; returning ok=false drops the
// request (never replied — a black-holed Seq).
func fakeMuxServer(t *testing.T, conn net.Conn, handle func(typ protocol.MsgType, seq uint32, payload []byte) (protocol.MsgType, []byte, bool)) {
	t.Helper()
	typ, p, err := protocol.ReadFrame(conn, 0)
	if err != nil {
		t.Errorf("fake server: hello read: %v", err)
		return
	}
	if typ != protocol.MsgHello {
		t.Errorf("fake server: expected hello, got %v", typ)
		return
	}
	if _, err := protocol.DecodeHelloRequest(p); err != nil {
		t.Errorf("fake server: hello decode: %v", err)
		return
	}
	rep := protocol.HelloReply{Version: protocol.MuxVersion}
	if err := protocol.WriteFrame(conn, protocol.MsgHelloOK, rep.Encode()); err != nil {
		t.Errorf("fake server: hello reply: %v", err)
		return
	}
	var wmu sync.Mutex
	br := bufio.NewReader(conn)
	for {
		typ, seq, fb, err := protocol.ReadMuxFrameBuf(br, 0)
		if err != nil {
			return // conn closed by the client or the test
		}
		payload := append([]byte(nil), fb.Payload()...)
		fb.Release()
		go func() {
			rt, rp, ok := handle(typ, seq, payload)
			if !ok {
				return
			}
			wmu.Lock()
			defer wmu.Unlock()
			//lint:ninflint sharedwrite — wmu is this fake server's serialized writer
			if err := protocol.WriteMuxFrame(conn, rt, seq, rp); err != nil {
				return
			}
		}()
	}
}

// dialSession builds a negotiated session against a fake server.
func dialSession(t *testing.T, handle func(typ protocol.MsgType, seq uint32, payload []byte) (protocol.MsgType, []byte, bool)) (*Session, net.Conn) {
	t.Helper()
	cc, sc := net.Pipe()
	go fakeMuxServer(t, sc, handle)
	version, err := Negotiate(cc, 0)
	if err != nil {
		t.Fatalf("negotiate: %v", err)
	}
	s := New(cc, 0, version)
	t.Cleanup(func() {
		s.Close()
		sc.Close()
	})
	return s, sc
}

func echoHandler(typ protocol.MsgType, seq uint32, payload []byte) (protocol.MsgType, []byte, bool) {
	return protocol.MsgCallOK, payload, true
}

func reqBuf(payload string) *protocol.Buffer {
	fb := protocol.AcquireBuffer(len(payload))
	fb.Write([]byte(payload))
	return fb
}

func TestSessionPipelinedEcho(t *testing.T) {
	s, _ := dialSession(t, echoHandler)
	const callers = 32
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				want := fmt.Sprintf("caller-%d-call-%d", i, k)
				rt, fb, _, err := s.Roundtrip(context.Background(), protocol.MsgCall, reqBuf(want))
				if err != nil {
					errs[i] = err
					return
				}
				if rt != protocol.MsgCallOK || string(fb.Payload()) != want {
					errs[i] = fmt.Errorf("got (%v, %q), want (CallOK, %q)", rt, fb.Payload(), want)
				}
				fb.Release()
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
	if n := s.InFlight(); n != 0 {
		t.Errorf("in-flight after drain = %d", n)
	}
}

// TestSessionDemuxOutOfOrder holds the first request's reply until the
// second has been answered: the demultiplexer must route each reply to
// its own caller regardless of arrival order.
func TestSessionDemuxOutOfOrder(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	s, _ := dialSession(t, func(typ protocol.MsgType, seq uint32, payload []byte) (protocol.MsgType, []byte, bool) {
		if string(payload) == "slow" {
			<-release
		} else {
			once.Do(func() { close(release) })
		}
		return protocol.MsgCallOK, payload, true
	})
	var wg sync.WaitGroup
	results := make([]string, 2)
	for i, p := range []string{"slow", "fast"} {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, fb, _, err := s.Roundtrip(context.Background(), protocol.MsgCall, reqBuf(p))
			if err != nil {
				t.Errorf("%s: %v", p, err)
				return
			}
			results[i] = string(fb.Payload())
			fb.Release()
		}()
		// Make sure "slow" is enqueued first.
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()
	if results[0] != "slow" || results[1] != "fast" {
		t.Errorf("demux misrouted replies: %q", results)
	}
}

// TestSessionCtxAbandonsSeq cancels one in-flight exchange: only that
// caller fails (with the context error), the session survives, and
// later exchanges work.
func TestSessionCtxAbandonsSeq(t *testing.T) {
	s, _ := dialSession(t, func(typ protocol.MsgType, seq uint32, payload []byte) (protocol.MsgType, []byte, bool) {
		if string(payload) == "blackhole" {
			return 0, nil, false // never reply
		}
		return protocol.MsgCallOK, payload, true
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, _, err := s.Roundtrip(ctx, protocol.MsgCall, reqBuf("blackhole"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned seq: got %v, want DeadlineExceeded", err)
	}
	if s.Broken() {
		t.Fatal("session died with the abandoned seq")
	}
	rt, fb, _, err := s.Roundtrip(context.Background(), protocol.MsgCall, reqBuf("after"))
	if err != nil || rt != protocol.MsgCallOK || string(fb.Payload()) != "after" {
		t.Fatalf("exchange after abandonment: %v %v", rt, err)
	}
	fb.Release()
	if n := s.InFlight(); n != 0 {
		t.Errorf("in-flight after abandonment = %d", n)
	}
}

// TestSessionTeardownFailsInFlight severs the connection under a
// pipeline of waiting calls: every one must return a transport-shaped
// error (EOF family), and the session must report Broken.
func TestSessionTeardownFailsInFlight(t *testing.T) {
	started := make(chan struct{}, 16)
	s, sc := dialSession(t, func(typ protocol.MsgType, seq uint32, payload []byte) (protocol.MsgType, []byte, bool) {
		started <- struct{}{}
		return 0, nil, false // hold every request in flight
	})
	const callers = 8
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			_, _, _, err := s.Roundtrip(context.Background(), protocol.MsgCall, reqBuf("held"))
			errs <- err
		}()
	}
	for i := 0; i < callers; i++ {
		<-started
	}
	sc.Close() // mid-session reset
	for i := 0; i < callers; i++ {
		err := <-errs
		if err == nil {
			t.Fatal("in-flight call survived session teardown")
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.ErrClosedPipe) && !errors.Is(err, net.ErrClosed) {
			t.Errorf("teardown error not transport-shaped: %v", err)
		}
	}
	if !s.Broken() {
		t.Fatal("session not Broken after teardown")
	}
	if _, _, _, err := s.Roundtrip(context.Background(), protocol.MsgCall, reqBuf("late")); err == nil {
		t.Fatal("roundtrip on a dead session succeeded")
	}
}

// TestSessionCloseFailsInFlight: a local Close has the same all-Seqs
// semantics, with net.ErrClosed as the cause.
func TestSessionCloseFailsInFlight(t *testing.T) {
	started := make(chan struct{}, 1)
	s, _ := dialSession(t, func(typ protocol.MsgType, seq uint32, payload []byte) (protocol.MsgType, []byte, bool) {
		started <- struct{}{}
		return 0, nil, false
	})
	errCh := make(chan error, 1)
	go func() {
		_, _, _, err := s.Roundtrip(context.Background(), protocol.MsgCall, reqBuf("held"))
		errCh <- err
	}()
	<-started
	s.Close()
	if err := <-errCh; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("close error = %v, want net.ErrClosed in chain", err)
	}
}

// TestNegotiateLegacy: a version-1 peer answers Hello with MsgError
// (unknown frame), which must surface as ErrLegacy.
func TestNegotiateLegacy(t *testing.T) {
	cc, sc := net.Pipe()
	defer cc.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer sc.Close()
		typ, _, err := protocol.ReadFrame(sc, 0)
		if err != nil || typ != protocol.MsgHello {
			t.Errorf("legacy server: %v %v", typ, err)
			return
		}
		// What the pre-mux dispatch does with an unknown frame type.
		protocol.WriteFrame(sc, protocol.MsgError,
			protocol.EncodeErrorReply(protocol.CodeInternal, "unexpected frame Hello"))
	}()
	_, err := Negotiate(cc, 0)
	<-done
	if !errors.Is(err, ErrLegacy) {
		t.Fatalf("negotiate against legacy peer = %v, want ErrLegacy", err)
	}
}

func TestNegotiateTransportFault(t *testing.T) {
	cc, sc := net.Pipe()
	defer cc.Close()
	go func() {
		protocol.ReadFrame(sc, 0)
		sc.Close() // die before answering
	}()
	_, err := Negotiate(cc, 0)
	if err == nil || errors.Is(err, ErrLegacy) {
		t.Fatalf("negotiate against dying peer = %v, want transport fault", err)
	}
}
