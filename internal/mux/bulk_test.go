package mux

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ninf/internal/protocol"
)

// bulkHandler services one request for fakeBulkServer. payload is the
// complete (reassembled, for chunked requests) message payload. A
// non-nil reply streams back chunked; otherwise rp goes back as one
// monolithic frame. ok=false black-holes the request.
type bulkHandler func(typ protocol.MsgType, seq uint32, payload []byte) (rt protocol.MsgType, rp []byte, bulk *protocol.BulkMsg, ok bool)

// fakeBulkServer is fakeMuxServer speaking feature level 3: it
// reassembles chunked requests and can stream chunked replies.
func fakeBulkServer(t *testing.T, conn net.Conn, handle bulkHandler) {
	t.Helper()
	typ, p, err := protocol.ReadFrame(conn, 0)
	if err != nil || typ != protocol.MsgHello {
		t.Errorf("fake bulk server: hello: %v %v", typ, err)
		return
	}
	if _, err := protocol.DecodeHelloRequest(p); err != nil {
		t.Errorf("fake bulk server: hello decode: %v", err)
		return
	}
	rep := protocol.HelloReply{Version: protocol.MuxVersionBulk}
	if err := protocol.WriteFrame(conn, protocol.MsgHelloOK, rep.Encode()); err != nil {
		t.Errorf("fake bulk server: hello reply: %v", err)
		return
	}
	var wmu sync.Mutex
	reply := func(seq uint32, rt protocol.MsgType, rp []byte, bulk *protocol.BulkMsg) {
		wmu.Lock()
		defer wmu.Unlock()
		if bulk != nil {
			defer bulk.Release()
			fb := bulk.EncodeBegin()
			//lint:ninflint sharedwrite — wmu is this fake server's serialized writer
			err := protocol.WriteMuxFrameBuf(conn, protocol.MsgBulkBegin, seq, fb)
			fb.Release()
			if err != nil {
				return
			}
			cur := bulk.Cursor()
			for {
				//lint:ninflint sharedwrite — wmu is this fake server's serialized writer
				done, err := cur.WriteChunk(conn, seq, protocol.DefaultBulkChunk)
				if err != nil || done {
					return
				}
			}
		}
		//lint:ninflint sharedwrite — wmu is this fake server's serialized writer
		protocol.WriteMuxFrame(conn, rt, seq, rp)
	}
	br := bufio.NewReader(conn)
	ra := protocol.NewReassembler(0, 0)
	defer ra.Close()
	for {
		typ, seq, n, err := protocol.ReadMuxHeader(br, 0)
		if err != nil {
			return
		}
		switch typ {
		case protocol.MsgBulkBegin:
			fb, err := protocol.ReadMuxPayload(br, n)
			if err != nil {
				return
			}
			berr := ra.Begin(seq, fb.Payload(), false)
			fb.Release()
			if berr != nil {
				t.Errorf("fake bulk server: begin: %v", berr)
				return
			}
		case protocol.MsgBulkChunk:
			bd, err := ra.ReadChunk(br, seq, n)
			if err != nil {
				t.Errorf("fake bulk server: chunk: %v", err)
				return
			}
			if bd != nil {
				payload := append([]byte(nil), bd.Bulk.Base...)
				bd.FB.Release()
				go func() {
					if rt, rp, bm, ok := handle(bd.Type, seq, payload); ok {
						reply(seq, rt, rp, bm)
					}
				}()
			}
		case protocol.MsgBulkAbort:
			if n > 0 {
				fb, err := protocol.ReadMuxPayload(br, n)
				if err != nil {
					return
				}
				fb.Release()
			}
			ra.Abort(seq)
		default:
			fb, err := protocol.ReadMuxPayload(br, n)
			if err != nil {
				return
			}
			payload := append([]byte(nil), fb.Payload()...)
			fb.Release()
			go func() {
				if rt, rp, bm, ok := handle(typ, seq, payload); ok {
					reply(seq, rt, rp, bm)
				}
			}()
		}
	}
}

func dialBulkSession(t *testing.T, handle bulkHandler) (*Session, net.Conn) {
	t.Helper()
	cc, sc := net.Pipe()
	go fakeBulkServer(t, sc, handle)
	version, err := Negotiate(cc, 0)
	if err != nil {
		t.Fatalf("negotiate: %v", err)
	}
	if version != protocol.MuxVersionBulk {
		t.Fatalf("negotiated version %d, want %d", version, protocol.MuxVersionBulk)
	}
	s := New(cc, 0, version)
	t.Cleanup(func() {
		s.Close()
		sc.Close()
	})
	return s, sc
}

func pattern(n int, salt byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + salt
	}
	return b
}

// TestRoundtripBulkEcho streams a 1 MiB request as chunks and gets the
// reassembled bytes back monolithically: the full chunked send path —
// begin, interleaved cursor writes, server reassembly — preserves the
// payload exactly.
func TestRoundtripBulkEcho(t *testing.T) {
	s, _ := dialBulkSession(t, func(typ protocol.MsgType, seq uint32, payload []byte) (protocol.MsgType, []byte, *protocol.BulkMsg, bool) {
		return protocol.MsgCallOK, payload, nil, true
	})
	want := pattern(1<<20, 3)
	rt, fb, bulk, err := s.RoundtripBulk(context.Background(), protocol.RawBulkMsg(protocol.MsgCall, want))
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Release()
	if rt != protocol.MsgCallOK || bulk != nil {
		t.Fatalf("reply %v bulk=%v", rt, bulk)
	}
	if !bytes.Equal(fb.Payload(), want) {
		t.Fatal("chunked request corrupted in flight")
	}
}

// TestRoundtripBulkReplyReassembled: the server streams a chunked
// reply; the session's read loop reassembles it and hands the caller
// the segment metadata.
func TestRoundtripBulkReplyReassembled(t *testing.T) {
	want := pattern(700<<10, 9)
	s, _ := dialBulkSession(t, func(typ protocol.MsgType, seq uint32, payload []byte) (protocol.MsgType, []byte, *protocol.BulkMsg, bool) {
		return 0, nil, protocol.RawBulkMsg(protocol.MsgFetchOK, want), true
	})
	rt, fb, bulk, err := s.Roundtrip(context.Background(), protocol.MsgFetch, reqBuf("fetch"))
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Release()
	if rt != protocol.MsgFetchOK {
		t.Fatalf("reply %v", rt)
	}
	if bulk == nil {
		t.Fatal("chunked reply delivered without bulk info")
	}
	if bulk.HeadLen != len(want) {
		t.Fatalf("raw bulk head %d, want %d", bulk.HeadLen, len(want))
	}
	if !bytes.Equal(bulk.Head(), want) {
		t.Fatal("chunked reply corrupted in flight")
	}
	if n := protocol.OpenBulkReassemblies(); n != 0 {
		t.Fatalf("open reassemblies after delivery = %d", n)
	}
}

// TestBulkInterleavesWithSmallCalls runs small echoes concurrently
// with large chunked transfers in both directions: every call must
// complete correctly — no cross-Seq corruption, no deadlock between
// the chunk stream and the control queue.
func TestBulkInterleavesWithSmallCalls(t *testing.T) {
	big := pattern(2<<20, 1)
	s, _ := dialBulkSession(t, func(typ protocol.MsgType, seq uint32, payload []byte) (protocol.MsgType, []byte, *protocol.BulkMsg, bool) {
		if typ == protocol.MsgFetch {
			return 0, nil, protocol.RawBulkMsg(protocol.MsgFetchOK, big), true
		}
		return protocol.MsgCallOK, payload, nil, true
	})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt, fb, _, err := s.RoundtripBulk(context.Background(), protocol.RawBulkMsg(protocol.MsgCall, big))
			if err != nil {
				errs <- err
				return
			}
			ok := rt == protocol.MsgCallOK && bytes.Equal(fb.Payload(), big)
			fb.Release()
			if !ok {
				errs <- errors.New("bulk echo corrupted")
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt, fb, bulk, err := s.Roundtrip(context.Background(), protocol.MsgFetch, reqBuf("f"))
			if err != nil {
				errs <- err
				return
			}
			ok := rt == protocol.MsgFetchOK && bulk != nil && bytes.Equal(bulk.Head(), big)
			fb.Release()
			if !ok {
				errs <- errors.New("bulk reply corrupted")
			}
		}()
	}
	for i := 0; i < 24; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			want := fmt.Sprintf("small-%d", i)
			rt, fb, _, err := s.Roundtrip(context.Background(), protocol.MsgCall, reqBuf(want))
			if err != nil {
				errs <- err
				return
			}
			ok := rt == protocol.MsgCallOK && string(fb.Payload()) == want
			fb.Release()
			if !ok {
				errs <- errors.New("small call corrupted under bulk load")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := s.InFlight(); n != 0 {
		t.Errorf("in-flight after drain = %d", n)
	}
	if n := protocol.OpenBulkReassemblies(); n != 0 {
		t.Errorf("open reassemblies after drain = %d", n)
	}
}

// TestRoundtripBulkCtxCancel abandons a black-holed bulk exchange:
// only that caller fails, the stream stays in sync (the writer aborts
// or finishes the transfer), and the session keeps working.
func TestRoundtripBulkCtxCancel(t *testing.T) {
	s, _ := dialBulkSession(t, func(typ protocol.MsgType, seq uint32, payload []byte) (protocol.MsgType, []byte, *protocol.BulkMsg, bool) {
		if typ == protocol.MsgCall {
			return 0, nil, nil, false // black-hole the bulk call
		}
		return protocol.MsgPong, nil, nil, true
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, _, err := s.RoundtripBulk(ctx, protocol.RawBulkMsg(protocol.MsgCall, pattern(4<<20, 5)))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned bulk: %v, want DeadlineExceeded", err)
	}
	if s.Broken() {
		t.Fatal("session died with the abandoned bulk")
	}
	rt, fb, _, err := s.Roundtrip(context.Background(), protocol.MsgPing, reqBuf(""))
	if err != nil || rt != protocol.MsgPong {
		t.Fatalf("exchange after bulk abandonment: %v %v", rt, err)
	}
	fb.Release()
}

// TestRoundtripBulkRequiresNegotiation: a feature-level-2 session must
// refuse chunked sends (callers fall back to monolithic frames).
func TestRoundtripBulkRequiresNegotiation(t *testing.T) {
	s, _ := dialSession(t, echoHandler) // fakeMuxServer negotiates version 2
	if s.Bulk() {
		t.Fatal("v2 session claims bulk support")
	}
	m := protocol.RawBulkMsg(protocol.MsgCall, make([]byte, 1<<10))
	if _, _, _, err := s.RoundtripBulk(context.Background(), m); err == nil {
		t.Fatal("chunked send accepted without negotiation")
	}
}

// TestBulkTeardownMidStream severs the connection while chunks are in
// flight: the bulk caller gets a transport error, the session reports
// Broken, and no reassembly buffers leak on either side.
func TestBulkTeardownMidStream(t *testing.T) {
	var once sync.Once
	cut := make(chan struct{})
	s, sc := dialBulkSession(t, func(typ protocol.MsgType, seq uint32, payload []byte) (protocol.MsgType, []byte, *protocol.BulkMsg, bool) {
		once.Do(func() { close(cut) })
		return 0, nil, nil, false
	})
	errCh := make(chan error, 1)
	go func() {
		_, _, _, err := s.RoundtripBulk(context.Background(), protocol.RawBulkMsg(protocol.MsgCall, pattern(8<<20, 2)))
		errCh <- err
	}()
	// Cut as soon as the first small probe arrives... there is none:
	// cut after a short delay mid-transfer instead.
	select {
	case <-cut:
	case <-time.After(2 * time.Second):
	}
	sc.Close()
	if err := <-errCh; err == nil {
		t.Fatal("bulk call survived mid-stream teardown")
	}
	if !s.Broken() {
		t.Fatal("session not Broken after mid-stream teardown")
	}
	s.Close()
	if n := protocol.OpenBulkReassemblies(); n != 0 {
		t.Fatalf("open reassemblies after teardown = %d", n)
	}
}
