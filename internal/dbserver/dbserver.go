// Package dbserver implements the Ninf numerical database server: the
// second kind of resource the paper's §2 architecture names ("Ninf
// computational and database servers"). Clients store and retrieve
// named numerical vectors and matrices with Ninf_query-style calls
// over the ordinary Ninf RPC, so a database server is a computational
// server whose executables close over a Store.
//
// The §5.1 two-phase protocol the paper says was "already implemented
// ... for database queries in Ninf" works out of the box: a db_get can
// be submitted, the connection dropped, and the result fetched later
// under its job handle (the tests exercise exactly this).
//
// Routines:
//
//	db_put(name, n, data[n])        store/overwrite a vector
//	db_size(name) → n               element count (0 = absent)
//	db_get(name, n, data[n])        retrieve (n must match db_size)
//	db_del(name) → existed          remove
//	db_stats() → entries, elements  store totals
package dbserver

import (
	"context"
	"fmt"
	"sync"

	"ninf/internal/idl"
	"ninf/internal/server"
)

// A Store holds named numerical vectors. It is safe for concurrent
// use by the server's executor goroutines.
type Store struct {
	mu    sync.RWMutex
	items map[string][]float64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{items: make(map[string][]float64)}
}

// Put stores a copy of data under name, replacing any previous value.
func (s *Store) Put(name string, data []float64) error {
	if name == "" {
		return fmt.Errorf("dbserver: empty name")
	}
	cp := append([]float64(nil), data...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[name] = cp
	return nil
}

// Get returns a copy of the named vector.
func (s *Store) Get(name string) ([]float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.items[name]
	if !ok {
		return nil, false
	}
	return append([]float64(nil), v...), true
}

// Size returns the element count of the named vector, 0 if absent.
func (s *Store) Size(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items[name])
}

// Delete removes the named vector, reporting whether it existed.
func (s *Store) Delete(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.items[name]
	delete(s.items, name)
	return ok
}

// Stats returns the entry count and the total stored elements.
func (s *Store) Stats() (entries, elements int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, v := range s.items {
		elements += len(v)
	}
	return len(s.items), elements
}

// IDL describes the database interface.
const IDL = `
Define db_put(mode_in string name, mode_in int n, mode_in double data[n])
    "store a named numerical vector"
    Complexity n
    Calls "go" dbPut(name, n, data);

Define db_size(mode_in string name, mode_out int n)
    "element count of a stored vector (0 when absent)"
    Calls "go" dbSize(name, n);

Define db_get(mode_in string name, mode_in int n, mode_out double data[n])
    "retrieve a named vector; n must equal db_size(name)"
    Complexity n
    Calls "go" dbGet(name, n, data);

Define db_del(mode_in string name, mode_out int existed)
    "delete a stored vector"
    Calls "go" dbDel(name, existed);

Define db_stats(mode_out int entries, mode_out int elements)
    "store totals"
    Calls "go" dbStats(entries, elements);
`

// Register binds the database routines, closed over st, to the
// registry. A server may host both the numerical library and a
// database on the same registry.
func Register(reg *server.Registry, st *Store) error {
	return reg.RegisterIDL(IDL, map[string]server.Handler{
		"db_put": func(_ context.Context, args []idl.Value) error {
			return st.Put(args[0].(string), args[2].([]float64))
		},
		"db_size": func(_ context.Context, args []idl.Value) error {
			args[1] = int64(st.Size(args[0].(string)))
			return nil
		},
		"db_get": func(_ context.Context, args []idl.Value) error {
			name := args[0].(string)
			n := int(args[1].(int64))
			v, ok := st.Get(name)
			if !ok {
				return fmt.Errorf("dbserver: no entry %q", name)
			}
			if len(v) != n {
				return fmt.Errorf("dbserver: %q has %d elements, request says %d", name, len(v), n)
			}
			copy(args[2].([]float64), v)
			return nil
		},
		"db_del": func(_ context.Context, args []idl.Value) error {
			if st.Delete(args[0].(string)) {
				args[1] = int64(1)
			} else {
				args[1] = int64(0)
			}
			return nil
		},
		"db_stats": func(_ context.Context, args []idl.Value) error {
			entries, elements := st.Stats()
			args[0] = int64(entries)
			args[1] = int64(elements)
			return nil
		},
	})
}
