package dbserver

import (
	"net"
	"reflect"
	"strings"
	"testing"

	"ninf"
	"ninf/internal/library"
	"ninf/internal/server"
)

func startDB(t *testing.T) (*ninf.Client, *Store) {
	t.Helper()
	st := NewStore()
	reg := server.NewRegistry()
	if err := Register(reg, st); err != nil {
		t.Fatal(err)
	}
	// A database server can host the numerical library too (§2:
	// "computational and database servers" share the machinery).
	if err := library.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{Hostname: "dbtest"}, reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	c, err := ninf.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, st
}

func TestPutGetRoundTrip(t *testing.T) {
	c, _ := startDB(t)
	data := []float64{3.14, 2.71, -1, 0}
	if _, err := c.Call("db_put", "constants", len(data), data); err != nil {
		t.Fatal(err)
	}
	var n int64
	if _, err := c.Call("db_size", "constants", &n); err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) {
		t.Fatalf("size = %d", n)
	}
	out := make([]float64, n)
	if _, err := c.Call("db_get", "constants", int(n), out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, data) {
		t.Errorf("got %v", out)
	}
}

func TestGetErrors(t *testing.T) {
	c, _ := startDB(t)
	out := make([]float64, 4)
	if _, err := c.Call("db_get", "missing", 4, out); err == nil {
		t.Error("missing entry fetched")
	}
	if _, err := c.Call("db_put", "v", 2, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("db_get", "v", 4, out); err == nil || !strings.Contains(err.Error(), "elements") {
		t.Errorf("size mismatch not reported: %v", err)
	}
	if _, err := c.Call("db_put", "", 1, []float64{1}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestDeleteAndStats(t *testing.T) {
	c, _ := startDB(t)
	if _, err := c.Call("db_put", "a", 3, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("db_put", "b", 2, []float64{4, 5}); err != nil {
		t.Fatal(err)
	}
	var entries, elements int64
	if _, err := c.Call("db_stats", &entries, &elements); err != nil {
		t.Fatal(err)
	}
	if entries != 2 || elements != 5 {
		t.Errorf("stats = %d entries, %d elements", entries, elements)
	}
	var existed int64
	if _, err := c.Call("db_del", "a", &existed); err != nil || existed != 1 {
		t.Errorf("delete a: %v existed=%d", err, existed)
	}
	if _, err := c.Call("db_del", "a", &existed); err != nil || existed != 0 {
		t.Errorf("re-delete a: %v existed=%d", err, existed)
	}
}

func TestTwoPhaseQuery(t *testing.T) {
	// The paper's §5.1: "We have already implemented such a two-phase
	// protocol for database queries in Ninf" — a db_get via
	// Submit/Fetch with the connection free in between.
	c, _ := startDB(t)
	data := make([]float64, 1000)
	for i := range data {
		data[i] = float64(i)
	}
	if _, err := c.Call("db_put", "big", len(data), data); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(data))
	job, err := c.Submit("db_get", "big", len(data), out)
	if err != nil {
		t.Fatal(err)
	}
	// The client can do unrelated work on the same connection while
	// the query is in flight.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := job.Fetch(true); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, data) {
		t.Error("two-phase query corrupted data")
	}
}

func TestComputeOverDBData(t *testing.T) {
	// Store a matrix in the database, then solve against it on the
	// same server — the compute+database composition the Ninf
	// architecture diagrams show.
	c, st := startDB(t)
	n := 16
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = 1 / float64(i+j+1)
			if i == j {
				a[i*n+j] += float64(n)
			}
		}
	}
	if err := st.Put("matrix", a); err != nil {
		t.Fatal(err)
	}

	fetched := make([]float64, n*n)
	if _, err := c.Call("db_get", "matrix", n*n, fetched); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := append([]float64(nil), b...)
	if _, err := c.Call("linsolve", n, fetched, x); err != nil {
		t.Fatal(err)
	}
	// Check A·x ≈ b.
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a[i*n+j] * x[j]
		}
		if d := s - b[i]; d > 1e-8 || d < -1e-8 {
			t.Fatalf("A·x differs from b at %d by %g", i, d)
		}
	}
}

func TestStoreDirect(t *testing.T) {
	st := NewStore()
	if err := st.Put("", nil); err == nil {
		t.Error("empty name accepted")
	}
	if err := st.Put("x", []float64{1}); err != nil {
		t.Fatal(err)
	}
	v, ok := st.Get("x")
	if !ok || len(v) != 1 {
		t.Fatal("get failed")
	}
	// Mutating the returned copy must not affect the store.
	v[0] = 99
	v2, _ := st.Get("x")
	if v2[0] != 1 {
		t.Error("store aliases caller memory")
	}
	if st.Size("x") != 1 || st.Size("y") != 0 {
		t.Error("sizes wrong")
	}
	if !st.Delete("x") || st.Delete("x") {
		t.Error("delete semantics wrong")
	}
}
