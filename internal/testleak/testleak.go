// Package testleak is a dependency-free goroutine leak detector for
// TestMain, in the spirit of go.uber.org/goleak: after the package's
// tests pass, any goroutine that is not part of the test harness or
// the runtime must have exited. Servers, pools, and stress harnesses
// that forget to tear down show up here as a failing build with a full
// stack dump.
//
// Usage, one line per package:
//
//	func TestMain(m *testing.M) { testleak.Main(m) }
package testleak

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// settleTimeout bounds how long Main waits for goroutines started by
// tests to drain before declaring a leak. Connection teardown and
// server shutdown are asynchronous, so a grace period avoids flakes.
const settleTimeout = 5 * time.Second

// Main runs the package's tests and then fails the process if
// goroutines leaked. It exits; call it from TestMain only.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := Check(settleTimeout); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "testleak: %d leaked goroutine(s) after tests:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// Check polls until no unexpected goroutines remain or the timeout
// elapses, returning the stacks of the leakers (nil when clean).
func Check(timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	var leaked []string
	for {
		leaked = interestingGoroutines()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// interestingGoroutines returns the stacks of goroutines that are
// neither the caller nor part of the test harness or runtime.
func interestingGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for i, g := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			continue // the current goroutine (TestMain itself)
		}
		if isHarnessGoroutine(g) {
			continue
		}
		out = append(out, strings.TrimSpace(g))
	}
	return out
}

// harnessMarkers identify goroutines the test framework and runtime
// own; everything else was started by the code under test.
var harnessMarkers = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).before",
	"testing.runFuzzing(",
	"testing.runFuzzTests(",
	"runtime.goexit",
	"created by runtime",
	"runtime.MHeap_Scavenger",
	"runtime.gc",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime/trace",
	"runtime.ReadTrace",
}

func isHarnessGoroutine(stack string) bool {
	if strings.TrimSpace(stack) == "" {
		return true
	}
	for _, marker := range harnessMarkers {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	// Goroutines sitting in the runtime with no user frames (GC
	// workers, timer goroutines) have a "[...]" status but no package
	// path with a dot before the first slash-less frame; keep it
	// simple: a stack whose every frame is runtime-internal is benign.
	for _, line := range strings.Split(stack, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "goroutine ") {
			continue
		}
		if strings.HasPrefix(line, "runtime.") || strings.HasPrefix(line, "\t") {
			continue
		}
		return false // a non-runtime frame: user code
	}
	return true
}
