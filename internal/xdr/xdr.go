// Package xdr implements the subset of Sun XDR (RFC 1014) external data
// representation used by the Ninf RPC protocol.
//
// XDR is a big-endian format in which every item occupies a multiple of
// four bytes. Ninf ships scalar arguments and dense numerical arrays in
// XDR, so in addition to the scalar codecs this package provides bulk
// fast paths for []float64, []float32, []int32 and []int64 that encode a
// whole vector with one buffer fill per chunk rather than one Write per
// element.
//
// The zero value of Encoder and Decoder is not usable; construct them
// with NewEncoder and NewDecoder.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Wire size constants.
const (
	// unitSize is the XDR basic block size: every encoded item is
	// padded to a multiple of unitSize bytes.
	unitSize = 4

	// DefaultMaxBytes bounds variable-length items (strings, opaque
	// data, arrays) accepted by a Decoder, protecting servers from a
	// corrupt or hostile length prefix. Callers handling large
	// matrices may raise the limit with Decoder.SetMaxBytes.
	DefaultMaxBytes = 1 << 30
)

// Errors returned by the decoder. They are wrapped with contextual detail;
// use errors.Is to test for them.
var (
	// ErrTooLong indicates a variable-length item whose declared
	// length exceeds the decoder's limit.
	ErrTooLong = errors.New("xdr: variable-length item exceeds limit")

	// ErrBadBool indicates a boolean encoded as something other than
	// the canonical 0 or 1.
	ErrBadBool = errors.New("xdr: invalid boolean")

	// ErrNegativeLen indicates a negative length prefix.
	ErrNegativeLen = errors.New("xdr: negative length")
)

var zeroPad [unitSize]byte

// pad returns the number of padding bytes needed to bring n up to a
// multiple of the XDR unit size.
func pad(n int) int { return (unitSize - n%unitSize) % unitSize }

// An Encoder writes XDR-encoded values to an underlying writer.
// Encoders maintain a small scratch buffer and an error latch: after the
// first write error every subsequent method is a no-op returning the
// same error, so call sites may encode a whole message and check the
// error once via Flush or Err.
type Encoder struct {
	w       io.Writer
	scratch [8]byte
	bulk    []byte // chunk buffer for vector fast paths, lazily allocated
	n       int64  // total bytes written
	err     error
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Reset rearms the encoder to write to w, clearing the byte count and
// the error latch while keeping the bulk chunk buffer. It lets pooled
// encoders be reused without reallocating their scratch state.
func (e *Encoder) Reset(w io.Writer) {
	e.w = w
	e.n = 0
	e.err = nil
}

// Err reports the first error encountered by the encoder.
func (e *Encoder) Err() error { return e.err }

// Len reports the total number of bytes successfully handed to the
// underlying writer.
func (e *Encoder) Len() int64 { return e.n }

func (e *Encoder) write(p []byte) {
	if e.err != nil {
		return
	}
	n, err := e.w.Write(p)
	e.n += int64(n)
	if err != nil {
		e.err = fmt.Errorf("xdr: write: %w", err)
	}
}

// PutUint32 encodes a 32-bit unsigned integer.
func (e *Encoder) PutUint32(v uint32) {
	binary.BigEndian.PutUint32(e.scratch[:4], v)
	e.write(e.scratch[:4])
}

// PutInt32 encodes a 32-bit signed integer.
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutInt encodes an int as an XDR hyper (64-bit) so that array sizes
// round-trip exactly on 64-bit hosts.
func (e *Encoder) PutInt(v int) { e.PutInt64(int64(v)) }

// PutUint64 encodes a 64-bit unsigned integer (XDR unsigned hyper).
func (e *Encoder) PutUint64(v uint64) {
	binary.BigEndian.PutUint64(e.scratch[:8], v)
	e.write(e.scratch[:8])
}

// PutInt64 encodes a 64-bit signed integer (XDR hyper).
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutBool encodes a boolean as the canonical 0 or 1.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutUint32(1)
	} else {
		e.PutUint32(0)
	}
}

// PutFloat32 encodes an IEEE-754 single-precision float.
func (e *Encoder) PutFloat32(v float32) { e.PutUint32(math.Float32bits(v)) }

// PutFloat64 encodes an IEEE-754 double-precision float.
func (e *Encoder) PutFloat64(v float64) { e.PutUint64(math.Float64bits(v)) }

// PutString encodes a counted string with trailing padding.
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	e.write([]byte(s))
	if p := pad(len(s)); p > 0 {
		e.write(zeroPad[:p])
	}
}

// PutOpaque encodes variable-length opaque data (counted bytes plus
// padding).
func (e *Encoder) PutOpaque(b []byte) {
	e.PutUint32(uint32(len(b)))
	e.PutFixedOpaque(b)
}

// PutFixedOpaque encodes fixed-length opaque data: the bytes plus
// padding, with no length prefix.
func (e *Encoder) PutFixedOpaque(b []byte) {
	e.write(b)
	if p := pad(len(b)); p > 0 {
		e.write(zeroPad[:p])
	}
}

// chunk returns the lazily-allocated bulk buffer, sized for fast-path
// vector encoding.
func (e *Encoder) chunk() []byte {
	if e.bulk == nil {
		e.bulk = make([]byte, 8192)
	}
	return e.bulk
}

// PutFloat64s encodes a counted vector of doubles. The elements are
// packed into a chunk buffer so large matrices cost a handful of Write
// calls instead of one per element.
func (e *Encoder) PutFloat64s(v []float64) {
	e.PutUint32(uint32(len(v)))
	buf := e.chunk()
	per := len(buf) / 8
	for len(v) > 0 && e.err == nil {
		n := len(v)
		if n > per {
			n = per
		}
		for i := 0; i < n; i++ {
			binary.BigEndian.PutUint64(buf[i*8:], math.Float64bits(v[i]))
		}
		e.write(buf[:n*8])
		v = v[n:]
	}
}

// PutFloat32s encodes a counted vector of single-precision floats.
func (e *Encoder) PutFloat32s(v []float32) {
	e.PutUint32(uint32(len(v)))
	buf := e.chunk()
	per := len(buf) / 4
	for len(v) > 0 && e.err == nil {
		n := len(v)
		if n > per {
			n = per
		}
		for i := 0; i < n; i++ {
			binary.BigEndian.PutUint32(buf[i*4:], math.Float32bits(v[i]))
		}
		e.write(buf[:n*4])
		v = v[n:]
	}
}

// PutInt32s encodes a counted vector of 32-bit integers.
func (e *Encoder) PutInt32s(v []int32) {
	e.PutUint32(uint32(len(v)))
	buf := e.chunk()
	per := len(buf) / 4
	for len(v) > 0 && e.err == nil {
		n := len(v)
		if n > per {
			n = per
		}
		for i := 0; i < n; i++ {
			binary.BigEndian.PutUint32(buf[i*4:], uint32(v[i]))
		}
		e.write(buf[:n*4])
		v = v[n:]
	}
}

// PutInt64s encodes a counted vector of 64-bit integers.
func (e *Encoder) PutInt64s(v []int64) {
	e.PutUint32(uint32(len(v)))
	buf := e.chunk()
	per := len(buf) / 8
	for len(v) > 0 && e.err == nil {
		n := len(v)
		if n > per {
			n = per
		}
		for i := 0; i < n; i++ {
			binary.BigEndian.PutUint64(buf[i*8:], uint64(v[i]))
		}
		e.write(buf[:n*8])
		v = v[n:]
	}
}

// A Decoder reads XDR-encoded values from an underlying reader. Like
// Encoder it latches the first error; after an error all reads return
// zero values and Err reports the cause.
type Decoder struct {
	r        io.Reader
	scratch  [8]byte
	bulk     []byte
	maxBytes int
	n        int64
	err      error
}

// NewDecoder returns a Decoder reading from r with the default
// variable-length limit.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r, maxBytes: DefaultMaxBytes}
}

// Reset rearms the decoder to read from r, clearing the byte count and
// the error latch while keeping the bulk chunk buffer. A zero-value or
// pooled decoder gains the default variable-length limit; a limit set
// with SetMaxBytes is preserved.
func (d *Decoder) Reset(r io.Reader) {
	d.r = r
	d.n = 0
	d.err = nil
	if d.maxBytes <= 0 {
		d.maxBytes = DefaultMaxBytes
	}
}

// SetMaxBytes adjusts the limit on variable-length items. Limits that
// are not positive are ignored.
func (d *Decoder) SetMaxBytes(n int) {
	if n > 0 {
		d.maxBytes = n
	}
}

// Err reports the first error encountered by the decoder.
func (d *Decoder) Err() error { return d.err }

// Len reports the total number of bytes consumed.
func (d *Decoder) Len() int64 { return d.n }

func (d *Decoder) read(p []byte) bool {
	if d.err != nil {
		return false
	}
	n, err := io.ReadFull(d.r, p)
	d.n += int64(n)
	if err != nil {
		d.err = fmt.Errorf("xdr: read: %w", err)
		return false
	}
	return true
}

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() uint32 {
	if !d.read(d.scratch[:4]) {
		return 0
	}
	return binary.BigEndian.Uint32(d.scratch[:4])
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() int32 { return int32(d.Uint32()) }

// Uint64 decodes a 64-bit unsigned integer.
func (d *Decoder) Uint64() uint64 {
	if !d.read(d.scratch[:8]) {
		return 0
	}
	return binary.BigEndian.Uint64(d.scratch[:8])
}

// Int64 decodes a 64-bit signed integer.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Int decodes an int encoded with Encoder.PutInt.
func (d *Decoder) Int() int { return int(d.Int64()) }

// Bool decodes a canonical XDR boolean.
func (d *Decoder) Bool() bool {
	switch d.Uint32() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = ErrBadBool
		}
		return false
	}
}

// Float32 decodes a single-precision float.
func (d *Decoder) Float32() float32 { return math.Float32frombits(d.Uint32()) }

// Float64 decodes a double-precision float.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// length decodes and validates a length prefix for an item whose
// elements are elemSize bytes each.
func (d *Decoder) length(elemSize int) int {
	v := d.Int32()
	if d.err != nil {
		return 0
	}
	if v < 0 {
		d.err = fmt.Errorf("%w: %d", ErrNegativeLen, v)
		return 0
	}
	n := int(v)
	if n > d.maxBytes/elemSize {
		d.err = fmt.Errorf("%w: %d elements of %d bytes (limit %d bytes)", ErrTooLong, n, elemSize, d.maxBytes)
		return 0
	}
	return n
}

// String decodes a counted string.
func (d *Decoder) String() string {
	n := d.length(1)
	if d.err != nil {
		return ""
	}
	b := make([]byte, n+pad(n))
	if !d.read(b) {
		return ""
	}
	return string(b[:n])
}

// Opaque decodes variable-length opaque data.
func (d *Decoder) Opaque() []byte {
	n := d.length(1)
	if d.err != nil {
		return nil
	}
	b := make([]byte, n+pad(n))
	if !d.read(b) {
		return nil
	}
	return b[:n:n]
}

// FixedOpaque decodes n opaque bytes plus padding.
func (d *Decoder) FixedOpaque(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 {
		d.err = fmt.Errorf("%w: %d", ErrNegativeLen, n)
		return nil
	}
	b := make([]byte, n+pad(n))
	if !d.read(b) {
		return nil
	}
	return b[:n:n]
}

func (d *Decoder) chunk() []byte {
	if d.bulk == nil {
		d.bulk = make([]byte, 8192)
	}
	return d.bulk
}

// Float64s decodes a counted vector of doubles.
func (d *Decoder) Float64s() []float64 {
	n := d.length(8)
	if d.err != nil {
		return nil
	}
	return d.Float64Vec(n)
}

// vecLen validates an externally-supplied element count against the
// decoder's variable-length limit, for vectors whose count was read out
// of band (the protocol layer's bulk-argument markers carry the count
// separately from the element stream).
func (d *Decoder) vecLen(n, elemSize int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 {
		d.err = fmt.Errorf("%w: %d", ErrNegativeLen, n)
		return false
	}
	if n > d.maxBytes/elemSize {
		d.err = fmt.Errorf("%w: %d elements of %d bytes (limit %d bytes)", ErrTooLong, n, elemSize, d.maxBytes)
		return false
	}
	return true
}

// Float64Vec decodes n doubles with no length prefix.
func (d *Decoder) Float64Vec(n int) []float64 {
	if !d.vecLen(n, 8) {
		return nil
	}
	out := make([]float64, n)
	d.readFloat64s(out)
	return out
}

// ReadFloat64sInto decodes a counted vector of doubles into dst, which
// must have exactly the encoded length. It avoids an allocation when
// the caller owns the destination (mode_out arguments).
func (d *Decoder) ReadFloat64sInto(dst []float64) {
	n := d.length(8)
	if d.err != nil {
		return
	}
	if n != len(dst) {
		d.err = fmt.Errorf("xdr: vector length %d does not match destination %d", n, len(dst))
		return
	}
	d.readFloat64s(dst)
}

func (d *Decoder) readFloat64s(out []float64) {
	buf := d.chunk()
	per := len(buf) / 8
	for len(out) > 0 && d.err == nil {
		n := len(out)
		if n > per {
			n = per
		}
		if !d.read(buf[:n*8]) {
			return
		}
		for i := 0; i < n; i++ {
			out[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[i*8:]))
		}
		out = out[n:]
	}
}

// Float32s decodes a counted vector of single-precision floats.
func (d *Decoder) Float32s() []float32 {
	n := d.length(4)
	if d.err != nil {
		return nil
	}
	return d.Float32Vec(n)
}

// Float32Vec decodes n single-precision floats with no length prefix.
func (d *Decoder) Float32Vec(n int) []float32 {
	if !d.vecLen(n, 4) {
		return nil
	}
	out := make([]float32, n)
	buf := d.chunk()
	per := len(buf) / 4
	for i := 0; i < n && d.err == nil; {
		m := n - i
		if m > per {
			m = per
		}
		if !d.read(buf[:m*4]) {
			return out
		}
		for j := 0; j < m; j++ {
			out[i+j] = math.Float32frombits(binary.BigEndian.Uint32(buf[j*4:]))
		}
		i += m
	}
	return out
}

// Int32s decodes a counted vector of 32-bit integers.
func (d *Decoder) Int32s() []int32 {
	n := d.length(4)
	if d.err != nil {
		return nil
	}
	out := make([]int32, n)
	buf := d.chunk()
	per := len(buf) / 4
	for i := 0; i < n && d.err == nil; {
		m := n - i
		if m > per {
			m = per
		}
		if !d.read(buf[:m*4]) {
			return out
		}
		for j := 0; j < m; j++ {
			out[i+j] = int32(binary.BigEndian.Uint32(buf[j*4:]))
		}
		i += m
	}
	return out
}

// Int64s decodes a counted vector of 64-bit integers.
func (d *Decoder) Int64s() []int64 {
	n := d.length(8)
	if d.err != nil {
		return nil
	}
	return d.Int64Vec(n)
}

// Int64Vec decodes n 64-bit integers with no length prefix.
func (d *Decoder) Int64Vec(n int) []int64 {
	if !d.vecLen(n, 8) {
		return nil
	}
	out := make([]int64, n)
	buf := d.chunk()
	per := len(buf) / 8
	for i := 0; i < n && d.err == nil; {
		m := n - i
		if m > per {
			m = per
		}
		if !d.read(buf[:m*8]) {
			return out
		}
		for j := 0; j < m; j++ {
			out[i+j] = int64(binary.BigEndian.Uint64(buf[j*8:]))
		}
		i += m
	}
	return out
}

// SizeString reports the encoded size in bytes of a string of length n,
// including the length prefix and padding. Used by the performance
// model and by the protocol layer to pre-compute frame lengths.
func SizeString(n int) int { return 4 + n + pad(n) }

// SizeOpaque reports the encoded size of n opaque bytes (counted form).
func SizeOpaque(n int) int { return 4 + n + pad(n) }

// SizeFloat64s reports the encoded size of an n-element double vector.
func SizeFloat64s(n int) int { return 4 + 8*n }
