package xdr

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, fill func(*Encoder), check func(*Decoder)) {
	t.Helper()
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	fill(e)
	if err := e.Err(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if buf.Len()%4 != 0 {
		t.Fatalf("encoded length %d is not a multiple of 4", buf.Len())
	}
	if e.Len() != int64(buf.Len()) {
		t.Fatalf("encoder Len=%d, buffer %d", e.Len(), buf.Len())
	}
	d := NewDecoder(&buf)
	check(d)
	if err := d.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes after decode", buf.Len())
	}
}

func TestScalarRoundTrip(t *testing.T) {
	roundTrip(t,
		func(e *Encoder) {
			e.PutInt32(-42)
			e.PutUint32(0xdeadbeef)
			e.PutInt64(-1 << 62)
			e.PutUint64(math.MaxUint64)
			e.PutBool(true)
			e.PutBool(false)
			e.PutFloat32(3.5)
			e.PutFloat64(-2.718281828459045)
			e.PutInt(123456789)
		},
		func(d *Decoder) {
			if got := d.Int32(); got != -42 {
				t.Errorf("Int32 = %d", got)
			}
			if got := d.Uint32(); got != 0xdeadbeef {
				t.Errorf("Uint32 = %#x", got)
			}
			if got := d.Int64(); got != -1<<62 {
				t.Errorf("Int64 = %d", got)
			}
			if got := d.Uint64(); got != math.MaxUint64 {
				t.Errorf("Uint64 = %d", got)
			}
			if got := d.Bool(); !got {
				t.Errorf("Bool = %v", got)
			}
			if got := d.Bool(); got {
				t.Errorf("Bool = %v", got)
			}
			if got := d.Float32(); got != 3.5 {
				t.Errorf("Float32 = %v", got)
			}
			if got := d.Float64(); got != -2.718281828459045 {
				t.Errorf("Float64 = %v", got)
			}
			if got := d.Int(); got != 123456789 {
				t.Errorf("Int = %v", got)
			}
		})
}

func TestStringPadding(t *testing.T) {
	for _, s := range []string{"", "a", "ab", "abc", "abcd", "abcde", "日本語"} {
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		e.PutString(s)
		if buf.Len()%4 != 0 {
			t.Errorf("PutString(%q): length %d not padded", s, buf.Len())
		}
		if want := SizeString(len(s)); buf.Len() != want {
			t.Errorf("PutString(%q): length %d, SizeString says %d", s, buf.Len(), want)
		}
		d := NewDecoder(&buf)
		if got := d.String(); got != s {
			t.Errorf("String() = %q, want %q", got, s)
		}
		if d.Err() != nil {
			t.Errorf("decode %q: %v", s, d.Err())
		}
	}
}

func TestOpaque(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5}
	roundTrip(t,
		func(e *Encoder) { e.PutOpaque(data); e.PutFixedOpaque(data) },
		func(d *Decoder) {
			if got := d.Opaque(); !bytes.Equal(got, data) {
				t.Errorf("Opaque = %v", got)
			}
			if got := d.FixedOpaque(len(data)); !bytes.Equal(got, data) {
				t.Errorf("FixedOpaque = %v", got)
			}
		})
}

func TestVectors(t *testing.T) {
	f64 := []float64{0, 1, -1, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	f32 := []float32{0, 2.5, -1e30}
	i32 := []int32{0, -5, math.MaxInt32, math.MinInt32}
	i64 := []int64{0, -5, math.MaxInt64, math.MinInt64}
	roundTrip(t,
		func(e *Encoder) {
			e.PutFloat64s(f64)
			e.PutFloat32s(f32)
			e.PutInt32s(i32)
			e.PutInt64s(i64)
		},
		func(d *Decoder) {
			if got := d.Float64s(); !reflect.DeepEqual(got, f64) {
				t.Errorf("Float64s = %v", got)
			}
			if got := d.Float32s(); !reflect.DeepEqual(got, f32) {
				t.Errorf("Float32s = %v", got)
			}
			if got := d.Int32s(); !reflect.DeepEqual(got, i32) {
				t.Errorf("Int32s = %v", got)
			}
			if got := d.Int64s(); !reflect.DeepEqual(got, i64) {
				t.Errorf("Int64s = %v", got)
			}
		})
}

func TestLargeVectorCrossesChunks(t *testing.T) {
	v := make([]float64, 5000) // larger than the 8192-byte chunk
	for i := range v {
		v[i] = float64(i) * 0.5
	}
	roundTrip(t,
		func(e *Encoder) { e.PutFloat64s(v) },
		func(d *Decoder) {
			got := d.Float64s()
			if !reflect.DeepEqual(got, v) {
				t.Error("large Float64s round trip mismatch")
			}
		})
}

func TestReadFloat64sInto(t *testing.T) {
	v := []float64{1, 2, 3}
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.PutFloat64s(v)

	dst := make([]float64, 3)
	d := NewDecoder(&buf)
	d.ReadFloat64sInto(dst)
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if !reflect.DeepEqual(dst, v) {
		t.Errorf("got %v", dst)
	}

	// Mismatched destination length must error.
	buf.Reset()
	e = NewEncoder(&buf)
	e.PutFloat64s(v)
	d = NewDecoder(&buf)
	d.ReadFloat64sInto(make([]float64, 2))
	if d.Err() == nil {
		t.Error("length mismatch not detected")
	}
}

func TestQuickRoundTripFloat64s(t *testing.T) {
	f := func(v []float64) bool {
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		e.PutFloat64s(v)
		if e.Err() != nil {
			return false
		}
		d := NewDecoder(&buf)
		got := d.Float64s()
		if d.Err() != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			// NaNs do not compare equal; compare bit patterns.
			if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripStrings(t *testing.T) {
	f := func(s string, u uint32, i int64) bool {
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		e.PutString(s)
		e.PutUint32(u)
		e.PutInt64(i)
		d := NewDecoder(&buf)
		return d.String() == s && d.Uint32() == u && d.Int64() == i && d.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecoderLimits(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.PutUint32(uint32(DefaultMaxBytes)) // absurd length prefix with no data
	d := NewDecoder(&buf)
	d.SetMaxBytes(16)
	_ = d.String()
	if !errors.Is(d.Err(), ErrTooLong) {
		t.Errorf("err = %v, want ErrTooLong", d.Err())
	}

	// Negative length.
	buf.Reset()
	e = NewEncoder(&buf)
	e.PutInt32(-1)
	d = NewDecoder(&buf)
	d.Opaque()
	if !errors.Is(d.Err(), ErrNegativeLen) {
		t.Errorf("err = %v, want ErrNegativeLen", d.Err())
	}

	// Oversized vector guarded by element size.
	buf.Reset()
	e = NewEncoder(&buf)
	e.PutUint32(1 << 28)
	d = NewDecoder(&buf)
	d.SetMaxBytes(1 << 20)
	d.Float64s()
	if !errors.Is(d.Err(), ErrTooLong) {
		t.Errorf("err = %v, want ErrTooLong", d.Err())
	}
}

func TestBadBool(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.PutUint32(2)
	d := NewDecoder(&buf)
	d.Bool()
	if !errors.Is(d.Err(), ErrBadBool) {
		t.Errorf("err = %v, want ErrBadBool", d.Err())
	}
}

func TestShortRead(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.PutFloat64(1.5)
	trunc := buf.Bytes()[:5]
	d := NewDecoder(bytes.NewReader(trunc))
	d.Float64()
	if d.Err() == nil {
		t.Error("short read not detected")
	}
	if !errors.Is(d.Err(), io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want wrapped ErrUnexpectedEOF", d.Err())
	}
}

func TestErrorLatch(t *testing.T) {
	// Encoder: failing writer latches the first error.
	e := NewEncoder(failWriter{})
	e.PutUint32(1)
	first := e.Err()
	if first == nil {
		t.Fatal("expected write error")
	}
	e.PutString("more")
	if e.Err() != first {
		t.Error("encoder error not latched")
	}

	// Decoder: after an error, reads return zero values.
	d := NewDecoder(bytes.NewReader(nil))
	_ = d.Uint32()
	derr := d.Err()
	if derr == nil {
		t.Fatal("expected read error")
	}
	if got := d.Float64(); got != 0 {
		t.Errorf("post-error Float64 = %v, want 0", got)
	}
	if d.Err() != derr {
		t.Error("decoder error not latched")
	}
}

func TestDecoderLenAccounting(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.PutString("hello")
	e.PutFloat64s([]float64{1, 2})
	total := int64(buf.Len())
	d := NewDecoder(&buf)
	_ = d.String()
	d.Float64s()
	if d.Len() != total {
		t.Errorf("decoder consumed %d bytes, want %d", d.Len(), total)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("boom") }

func BenchmarkPutFloat64s(b *testing.B) {
	v := make([]float64, 1<<16)
	for i := range v {
		v[i] = float64(i)
	}
	b.SetBytes(int64(8 * len(v)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(io.Discard)
		e.PutFloat64s(v)
	}
}
