package xdr

import (
	"bytes"
	"testing"
)

// FuzzDecoder drives every decoding method over arbitrary input; the
// decoder must never panic and must latch its first error.
func FuzzDecoder(f *testing.F) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.PutString("seed")
	e.PutFloat64s([]float64{1, 2, 3})
	e.PutInt64(-9)
	f.Add(buf.Bytes(), uint8(0))
	f.Add([]byte{}, uint8(1))
	f.Add(bytes.Repeat([]byte{0xff}, 32), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, which uint8) {
		d := NewDecoder(bytes.NewReader(data))
		d.SetMaxBytes(1 << 16)
		switch which % 8 {
		case 0:
			_ = d.String()
		case 1:
			d.Float64s()
		case 2:
			d.Int64s()
		case 3:
			d.Opaque()
		case 4:
			d.Bool()
		case 5:
			d.Float32s()
		case 6:
			d.Int32s()
		case 7:
			d.FixedOpaque(int(uint(len(data)) % 64))
		}
		first := d.Err()
		// Error latch: further reads keep the same error.
		_ = d.Uint32()
		if first != nil && d.Err() != first {
			t.Fatal("error latch broken")
		}
	})
}
