package experiments

import (
	"fmt"
	"io"

	"ninf/internal/machine"
	"ninf/internal/metrics"
	"ninf/internal/netmodel"
	"ninf/internal/ninfsim"
)

func init() {
	fig10 := &Experiment{
		ID:       "fig10-multisite",
		Title:    "multi-client, multi-site WAN Linpack (4 sites vs one site)",
		Artifact: "Figure 10",
	}
	fig10.Run = func(w io.Writer, opts Options) error {
		header(w, fig10)
		fmt.Fprintf(w, "%5s %-9s | %-10s %-10s | %-10s %-10s | %-7s | %s\n",
			"n", "config", "perf[Mf]", "tput[MB/s]", "OchaU tput", "degrad.", "CPU%", "aggregate[MB/s]")
		for _, n := range []int{600, 1000, 1400} {
			for _, perSite := range []int{1, 4} {
				multi, err := ninfsim.Run(ninfsim.Config{
					Server: machine.MustCatalog("j90"), Mode: ninfsim.DataParallel,
					Net: netmodel.MultiSiteWAN(perSite), Workload: ninfsim.Linpack, N: n,
					Duration: opts.dur(6000),
					Seed:     opts.seed() + uint64(n+perSite),
				})
				if err != nil {
					return err
				}
				// Baseline: the same per-site client count at Ocha-U
				// alone, for the §4.2.3 degradation comparison.
				baseline, err := ninfsim.Run(ninfsim.Config{
					Server: machine.MustCatalog("j90"), Mode: ninfsim.DataParallel,
					Net: netmodel.SingleSiteWAN(perSite), Workload: ninfsim.Linpack, N: n,
					Duration: opts.dur(6000),
					Seed:     opts.seed() + uint64(n+perSite),
				})
				if err != nil {
					return err
				}

				var perf, tput, ochaTput, baseTput metrics.Series
				totalBytes := 0.0
				for i := range multi.Calls {
					c := &multi.Calls[i]
					perf.Add(c.PerfMflops())
					tput.Add(c.ThroughputMBps())
					totalBytes += c.Bytes
					if c.Site == "Ocha-U" {
						ochaTput.Add(c.ThroughputMBps())
					}
				}
				for i := range baseline.Calls {
					baseTput.Add(baseline.Calls[i].ThroughputMBps())
				}
				degr := 0.0
				if baseTput.Mean() > 0 {
					degr = (1 - ochaTput.Mean()/baseTput.Mean()) * 100
				}
				fmt.Fprintf(w, "%5d %-9s | %-10.2f %-10.3f | %-10.3f %-9.0f%% | %-7.1f | %.3f\n",
					n, fmt.Sprintf("c=%d×4", perSite),
					perf.Mean(), tput.Mean(), ochaTput.Mean(), degr,
					multi.CPUUtil, totalBytes/multi.Duration/netmodel.MB)
			}
		}
		fmt.Fprintln(w, "(paper: Ocha-U degradation 9~18% at c=1×4 and 18~44% at c=4×4 vs Ocha-U alone;")
		fmt.Fprintln(w, " aggregate bandwidth from 4 sites ≫ single site; J90 CPU ≈ 27~34% at c=4×4)")
		return nil
	}
	register(fig10)
}
