package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ninf"
	"ninf/internal/library"
	"ninf/internal/metaserver"
	"ninf/internal/server"
)

// meta-ha measures what metaserver replication buys under a control
// plane crash: four clients push verified dmmul transactions through
// the scheduler while the primary metaserver is hard-killed between
// the "before" and "during" windows. With three gossiping replicas the
// clients fail over and goodput holds through the kill; the
// single-metaserver control (the pre-HA deployment, no failover
// targets, no usable placement cache) collapses to zero the moment its
// only metaserver dies. A full run records the cells in
// BENCH_meta_ha.json.

// metaHACell is one (mode, phase) goodput window, as serialized.
type metaHACell struct {
	Mode      string  `json:"mode"`  // "ha3" or "single"
	Phase     string  `json:"phase"` // "before", "during", "after"
	Seconds   float64 `json:"seconds"`
	Calls     int64   `json:"calls"`     // verified completed calls
	Failed    int64   `json:"failed"`    // transactions that gave up
	GoodputPS float64 `json:"goodput_per_s"`
	Degraded  int64   `json:"degraded_placements"`
}

// metaHAFile is the BENCH_meta_ha.json document.
type metaHAFile struct {
	Experiment string       `json:"experiment"`
	Generated  time.Time    `json:"generated"`
	GoVersion  string       `json:"go_version"`
	NumCPU     int          `json:"num_cpu"`
	Replicas   int          `json:"replicas"`
	Clients    int          `json:"clients"`
	Servers    int          `json:"servers"`
	Cells      []metaHACell `json:"cells"`
}

func init() {
	e := &Experiment{
		ID:       "meta-ha",
		Title:    "goodput before/during/after a primary metaserver kill, 3 replicas vs single",
		Artifact: "§2.4 metaserver availability (HA extension)",
	}
	e.Run = func(w io.Writer, opts Options) error {
		header(w, e)
		return runMetaHA(w, opts)
	}
	register(e)
}

const (
	metaHAClients = 4
	metaHAServers = 3
)

// metaHADaemon is a killable metaserver daemon: closing it severs the
// listener and every live client connection, as a crashed process
// would.
type metaHADaemon struct {
	m    *metaserver.Metaserver
	addr string
	l    net.Listener
	stop []func()

	mu    sync.Mutex
	conns map[net.Conn]bool
	dead  bool
}

func startMetaHADaemon(m *metaserver.Metaserver) (*metaHADaemon, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	d := &metaHADaemon{m: m, addr: l.Addr().String(), l: l, conns: make(map[net.Conn]bool)}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			d.mu.Lock()
			if d.dead {
				d.mu.Unlock()
				c.Close()
				continue
			}
			d.conns[c] = true
			d.mu.Unlock()
			go func() {
				defer func() {
					c.Close()
					d.mu.Lock()
					delete(d.conns, c)
					d.mu.Unlock()
				}()
				m.ServeConn(c)
			}()
		}
	}()
	return d, nil
}

func (d *metaHADaemon) kill() {
	d.l.Close()
	d.mu.Lock()
	d.dead = true
	for c := range d.conns {
		c.Close()
	}
	d.mu.Unlock()
	for _, stop := range d.stop {
		stop()
	}
	d.stop = nil
}

// metaHAWorld is one mode's full deployment: real servers, replica
// daemons, and per-client schedulers.
type metaHAWorld struct {
	servers []*server.Server
	daemons []*metaHADaemon
	scheds  []*metaserver.RemoteScheduler
}

func buildMetaHAWorld(nMeta int, cacheless bool) (*metaHAWorld, error) {
	w := &metaHAWorld{}
	type srv struct{ name, addr string }
	var srvs []srv
	for i := 0; i < metaHAServers; i++ {
		reg, err := library.NewRegistry()
		if err != nil {
			w.close()
			return nil, err
		}
		s := server.New(server.Config{Hostname: fmt.Sprintf("srv%d", i), PEs: 4}, reg)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			w.close()
			return nil, err
		}
		go s.Serve(l)
		w.servers = append(w.servers, s)
		srvs = append(srvs, srv{fmt.Sprintf("srv%d", i), l.Addr().String()})
	}
	for i := 0; i < nMeta; i++ {
		m := metaserver.New(metaserver.Config{
			Origin:          fmt.Sprintf("meta-%d", i),
			Policy:          metaserver.RoundRobin{},
			FailThreshold:   8,
			BreakerCooldown: 300 * time.Millisecond,
		})
		for _, sv := range srvs {
			addr := sv.addr
			if err := m.AddServer(sv.name, addr, 100, func() (net.Conn, error) {
				return net.Dial("tcp", addr)
			}); err != nil {
				w.close()
				return nil, err
			}
		}
		d, err := startMetaHADaemon(m)
		if err != nil {
			w.close()
			return nil, err
		}
		w.daemons = append(w.daemons, d)
	}
	for i, d := range w.daemons {
		for j, other := range w.daemons {
			if i == j {
				continue
			}
			if err := d.m.AddPeer(other.addr, nil); err != nil {
				w.close()
				return nil, err
			}
		}
		if nMeta > 1 {
			d.stop = append(d.stop, d.m.StartGossip(100*time.Millisecond))
		}
		d.stop = append(d.stop, d.m.StartMonitor(150*time.Millisecond))
	}
	for c := 0; c < metaHAClients; c++ {
		var addrs []string
		for _, d := range w.daemons {
			addrs = append(addrs, d.addr)
		}
		rs := metaserver.NewRemoteScheduler(addrs...)
		if cacheless {
			// The pre-HA client: no degraded fallback worth the name.
			rs.CacheTTL = time.Nanosecond
		}
		w.scheds = append(w.scheds, rs)
	}
	return w, nil
}

func (w *metaHAWorld) close() {
	for _, rs := range w.scheds {
		rs.Close()
	}
	for _, d := range w.daemons {
		d.kill()
	}
	for _, s := range w.servers {
		s.Close()
	}
}

// metaHAPhase drives every client in verified single-call dmmul
// transactions for dur and returns the goodput cell.
func (w *metaHAWorld) metaHAPhase(mode, phase string, dur time.Duration) metaHACell {
	const n = 8
	var calls, failed, degraded int64
	var wg sync.WaitGroup
	start := time.Now()
	for c, rs := range w.scheds {
		wg.Add(1)
		go func(c int, rs *metaserver.RemoteScheduler) {
			defer wg.Done()
			for r := 0; time.Since(start) < dur; r++ {
				a := make([]float64, n*n)
				b := make([]float64, n*n)
				got := make([]float64, n*n)
				for j := range a {
					a[j] = float64((c+1)*(r+1) + j)
					b[j] = float64(j % 7)
				}
				want := make([]float64, n*n)
				metaHAMmul(n, a, b, want)
				tx := ninf.BeginTransaction(rs)
				tx.SetMaxAttempts(2 * metaHAServers)
				tx.SetRetryPolicy(ninf.RetryPolicy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond})
				tx.SetCallTimeout(2 * time.Second)
				tx.Call("dmmul", n, a, b, got)
				err := tx.End()
				atomic.AddInt64(&degraded, int64(tx.DegradedPlacements()))
				if err != nil {
					atomic.AddInt64(&failed, 1)
					continue
				}
				ok := true
				for j := range want {
					if got[j] != want[j] {
						ok = false
						break
					}
				}
				if ok {
					atomic.AddInt64(&calls, 1)
				} else {
					atomic.AddInt64(&failed, 1)
				}
			}
		}(c, rs)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	return metaHACell{
		Mode:      mode,
		Phase:     phase,
		Seconds:   wall,
		Calls:     calls,
		Failed:    failed,
		GoodputPS: float64(calls) / wall,
		Degraded:  degraded,
	}
}

func metaHAMmul(n int, a, b, c []float64) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = s
		}
	}
}

func runMetaHA(w io.Writer, opts Options) error {
	phaseDur := 2 * time.Second
	if opts.Quick {
		phaseDur = 300 * time.Millisecond
	}
	fmt.Fprintf(w, "-- %d clients, %d servers, verified dmmul(8) transactions, %.1fs phases; primary killed before 'during' --\n",
		metaHAClients, metaHAServers, phaseDur.Seconds())
	fmt.Fprintf(w, "%-7s %-7s %8s %8s %11s %9s\n", "mode", "phase", "calls", "failed", "goodput/s", "degraded")

	var cells []metaHACell
	for _, mode := range []struct {
		name      string
		replicas  int
		cacheless bool
	}{{"ha3", 3, false}, {"single", 1, true}} {
		world, err := buildMetaHAWorld(mode.replicas, mode.cacheless)
		if err != nil {
			return err
		}
		for _, phase := range []string{"before", "during", "after"} {
			if phase == "during" {
				world.daemons[0].kill()
			}
			cell := world.metaHAPhase(mode.name, phase, phaseDur)
			cells = append(cells, cell)
			fmt.Fprintf(w, "%-7s %-7s %8d %8d %11.1f %9d\n",
				cell.Mode, cell.Phase, cell.Calls, cell.Failed, cell.GoodputPS, cell.Degraded)
		}
		world.close()
	}

	// The headline comparison: replicated goodput through the kill vs
	// the single-metaserver collapse.
	pick := func(mode, phase string) metaHACell {
		for _, c := range cells {
			if c.Mode == mode && c.Phase == phase {
				return c
			}
		}
		return metaHACell{}
	}
	haB, haD := pick("ha3", "before"), pick("ha3", "during")
	sgB, sgD := pick("single", "before"), pick("single", "during")
	ratio := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	fmt.Fprintf(w, "-- ha3 holds %.0f%% of pre-kill goodput through the kill (%d failed); single drops to %.0f%% (%d failed) --\n",
		100*ratio(haD.GoodputPS, haB.GoodputPS), haD.Failed,
		100*ratio(sgD.GoodputPS, sgB.GoodputPS), sgD.Failed)

	if opts.Quick {
		return nil
	}
	doc := metaHAFile{
		Experiment: "meta-ha",
		Generated:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Replicas:   3,
		Clients:    metaHAClients,
		Servers:    metaHAServers,
		Cells:      cells,
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile("BENCH_meta_ha.json", blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote BENCH_meta_ha.json (%d cells)\n", len(cells))
	return nil
}
